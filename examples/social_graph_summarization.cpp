// Social-graph summarization — the DBLP/LiveJournal use case of §4.1.
//
// Pick k users whose friend neighborhoods jointly reach as much of the
// network as possible (coverage of neighborhood sets). Compares four
// strategies on a scaled-down synthetic social graph:
//
//   * distributed BicriteriaGreedy at k = K and k = 2K (one round),
//   * the RandGreeDi baseline,
//   * a uniformly random selection,
//
// and reports the communication and critical-path work the cluster
// simulator metered for the distributed runs.
//
//   $ build/examples/social_graph_summarization [nodes] [K]
#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "core/baselines.h"
#include "core/bicriteria.h"
#include "core/greedy.h"
#include "core/upper_bound.h"
#include "data/graph_gen.h"
#include "objectives/coverage.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace bds;

  const std::uint32_t nodes =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 20'000;
  const std::size_t K = argc > 2 ? std::atoi(argv[2]) : 10;

  std::printf("Generating a LiveJournal-like social graph: %u users...\n",
              nodes);
  const auto sets = data::make_livejournal_like(nodes, /*seed=*/7);
  std::printf("  neighborhood sets: %zu, total friend entries: %zu\n\n",
              sets->num_sets(), sets->total_size());

  const CoverageOracle oracle(sets);
  std::vector<ElementId> ground(sets->num_sets());
  std::iota(ground.begin(), ground.end(), ElementId{0});

  struct Row {
    const char* name;
    DistributedResult result;
  };
  std::vector<Row> rows;

  {
    BicriteriaConfig cfg;
    cfg.k = K;
    cfg.output_items = K;
    cfg.runtime.seed = 1;
    rows.push_back({"BicriteriaGreedy (k=K)",
                    bicriteria_greedy(oracle, ground, cfg)});
    cfg.output_items = 2 * K;
    rows.push_back({"BicriteriaGreedy (k=2K)",
                    bicriteria_greedy(oracle, ground, cfg)});
  }
  {
    OneRoundConfig cfg;
    cfg.k = K;
    cfg.runtime.seed = 1;
    rows.push_back({"RandGreeDi (k=K)", rand_greedi(oracle, ground, cfg)});
  }
  {
    auto random_oracle = oracle.clone();
    util::Rng rng(1);
    const auto picks = random_subset(*random_oracle, ground, K, rng);
    DistributedResult r;
    r.solution = picks.picks;
    r.value = random_oracle->value();
    rows.push_back({"Random (k=K)", std::move(r)});
  }

  // Tightest upper bound on f(OPT_K) across all computed solutions.
  double ub = oracle.max_value();
  for (const auto& row : rows) {
    ub = std::min(ub,
                  solution_upper_bound(oracle, row.result.solution, ground, K));
  }

  util::Table table({"algorithm", "items", "users reached",
                     "% of upper bound", "rounds", "comm (KiB)",
                     "critical-path evals"});
  for (const auto& row : rows) {
    const auto& s = row.result.stats;
    table.add_row(
        {row.name, util::Table::fmt_int(row.result.solution.size()),
         util::Table::fmt(row.result.value, 0),
         util::Table::fmt_pct(row.result.value / ub),
         util::Table::fmt_int(s.num_rounds()),
         s.num_rounds() == 0
             ? "-"
             : util::Table::fmt(double(s.bytes_communicated()) / 1024.0, 1),
         s.num_rounds() == 0 ? "-"
                             : util::Table::fmt_int(s.critical_path_evals())});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("upper bound on f(OPT_%zu): %.0f users\n", K, ub);
  return 0;
}
