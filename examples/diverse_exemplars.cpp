// Topic-diverse exemplar selection — matroid-constrained submodular
// maximization (the library's extension beyond the paper's cardinality
// setting, following the matroid core-set line of the paper's refs [5,21]).
//
// Scenario: summarize a document corpus with k exemplars, but no more than
// `cap` exemplars per topic cluster (editorial diversity requirement).
// Unconstrained greedy piles exemplars into the dominant topics; the
// partition matroid forces spread at a small objective cost, and the
// distributed matroid greedy (RandGreeDi-style) matches the centralized
// constrained greedy.
//
//   $ build/examples/diverse_exemplars [docs] [k]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "core/greedy.h"
#include "core/matroid.h"
#include "data/vectors_gen.h"
#include "objectives/exemplar.h"
#include "util/table.h"

namespace {

// Assign each document to its nearest latent archetype by picking the max
// topic coordinate bucket — a cheap, deterministic proxy for topic labels.
std::vector<std::uint32_t> topic_labels(const bds::PointSet& points,
                                        std::uint32_t n_topics) {
  std::vector<std::uint32_t> labels(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto row = points.point(i);
    std::uint32_t best = 0;
    for (std::uint32_t d = 1; d < row.size(); ++d) {
      if (row[d] > row[best]) best = d;
    }
    labels[i] = best % n_topics;
  }
  return labels;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bds;

  data::LdaVectorsConfig gen;
  gen.documents = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1]))
                           : 4'000;
  gen.topics = 50;
  gen.clusters = 12;
  gen.seed = 21;
  const std::size_t k = argc > 2 ? std::atoi(argv[2]) : 12;
  const std::uint32_t n_groups = 6;
  const std::size_t cap = 2;  // at most 2 exemplars per topic group

  std::printf("Corpus: %u documents, %u topics -> %u topic groups, k = %zu,"
              " cap = %zu/group\n\n",
              gen.documents, gen.topics, n_groups, k, cap);
  const auto points = data::make_lda_like_vectors(gen);
  const auto labels = topic_labels(*points, n_groups);

  const ExemplarOracle oracle(points, 2.0);
  std::vector<ElementId> ground(points->size());
  for (std::size_t i = 0; i < ground.size(); ++i) {
    ground[i] = static_cast<ElementId>(i);
  }

  const auto group_histogram = [&](std::span<const ElementId> picks) {
    std::map<std::uint32_t, int> hist;
    for (const ElementId x : picks) ++hist[labels[x]];
    std::string out;
    for (std::uint32_t g = 0; g < n_groups; ++g) {
      out += std::to_string(hist.count(g) ? hist[g] : 0);
      if (g + 1 < n_groups) out += "/";
    }
    return out;
  };

  util::Table table(
      {"strategy", "f(S)", "picks per group (g0..g5)", "max per group"});

  // Unconstrained greedy.
  {
    auto o = oracle.clone();
    const auto plain = lazy_greedy(*o, ground, k, {true});
    std::map<std::uint32_t, int> hist;
    int mx = 0;
    for (const ElementId x : plain.picks) mx = std::max(mx, ++hist[labels[x]]);
    table.add_row({"greedy (no constraint)", util::Table::fmt(o->value(), 1),
                   group_histogram(plain.picks), std::to_string(mx)});
  }

  // Centralized matroid-constrained greedy (cap per topic + global k).
  const PartitionMatroid base_matroid(
      labels, std::vector<std::size_t>(n_groups, cap));
  {
    auto o = oracle.clone();
    LaminarBound constraint(base_matroid, k);
    const auto result = lazy_greedy_matroid(*o, ground, constraint);
    std::map<std::uint32_t, int> hist;
    int mx = 0;
    for (const ElementId x : result.picks) {
      mx = std::max(mx, ++hist[labels[x]]);
    }
    table.add_row({"constrained greedy", util::Table::fmt(o->value(), 1),
                   group_histogram(result.picks), std::to_string(mx)});
  }

  // Distributed matroid greedy.
  {
    const LaminarBound constraint(base_matroid, k);
    MatroidDistributedConfig cfg;
    cfg.runtime.seed = 7;
    const auto result =
        rand_greedi_matroid(oracle, ground, constraint, cfg);
    std::map<std::uint32_t, int> hist;
    int mx = 0;
    for (const ElementId x : result.solution) {
      mx = std::max(mx, ++hist[labels[x]]);
    }
    table.add_row({"distributed constrained (1 round)",
                   util::Table::fmt(result.value, 1),
                   group_histogram(result.solution), std::to_string(mx)});
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "The matroid rows never exceed %zu exemplars in any topic group; the\n"
      "unconstrained row concentrates on dominant topics. The distributed\n"
      "run matches the centralized constrained greedy closely — the\n"
      "greedy-of-greedies merge carries over to matroids.\n",
      cap);
  return 0;
}
