// Demonstrates the Theorem 3.1 lower bound on a live instance: one
// distributed round cannot reach (1-ε) of the optimum with only k items,
// because the k/2 small planted sets (family 𝔹) are information-
// theoretically indistinguishable from the random decoys (family ℂ) on
// their machines — but outputting O(k/ε) items recovers the gap.
//
//   $ build/examples/hardness_demo
#include <cstdio>
#include <vector>

#include "core/baselines.h"
#include "core/hardness.h"
#include "objectives/coverage.h"
#include "util/table.h"

int main() {
  using namespace bds;

  HardnessConfig cfg;
  cfg.k = 10;
  cfg.epsilon = 0.125;
  cfg.universe = 48'000;
  cfg.total_items = 5'000;
  cfg.seed = 11;
  const HardnessInstance instance = make_hardness_instance(cfg);

  std::printf(
      "Hardness instance (Theorem 3.1): k=%zu, eps=%.3f, universe=%u\n"
      "  family A: %zu large disjoint sets covering %.0f%% of U\n"
      "  family B: %zu small disjoint sets covering the remaining %.0f%%\n"
      "  family C: %zu random decoys, same size as B-sets\n\n",
      cfg.k, cfg.epsilon, cfg.universe, instance.family_a.size(),
      100.0 * (1 - 2 * cfg.epsilon), instance.family_b.size(),
      100.0 * 2 * cfg.epsilon, instance.family_c.size());

  const CoverageOracle oracle(instance.sets);
  const auto items = instance.all_items();

  // Centralized reference: greedy with global information finds A and B.
  const auto central = centralized_greedy(oracle, items, cfg.k);
  const auto central_outcome =
      evaluate_hardness_solution(instance, central.solution);

  util::Table table({"algorithm", "budget", "output items", "B-sets found",
                     "C-sets used", "% of optimum"});
  table.add_row({"centralized greedy", util::Table::fmt_int(cfg.k),
                 util::Table::fmt_int(central.solution.size()),
                 util::Table::fmt_int(central_outcome.b_selected),
                 util::Table::fmt_int(central_outcome.c_selected),
                 util::Table::fmt_pct(central_outcome.ratio)});

  // One distributed round with increasing output budgets.
  for (const double factor : {1.0, 2.0, 4.0, 1.0 / cfg.epsilon}) {
    const auto out = static_cast<std::size_t>(cfg.k * factor);
    OneRoundConfig rc;
    rc.k = out;
    rc.machines = 64;  // m >> k: planted B-sets are isolated on machines
    rc.runtime.seed = 3;
    const auto result = rand_greedi(oracle, items, rc);
    const auto outcome = evaluate_hardness_solution(instance, result.solution);
    char name[64];
    std::snprintf(name, sizeof(name), "1-round distributed, %.0fk items",
                  factor);
    table.add_row({name, util::Table::fmt_int(out),
                   util::Table::fmt_int(result.solution.size()),
                   util::Table::fmt_int(outcome.b_selected),
                   util::Table::fmt_int(outcome.c_selected),
                   util::Table::fmt_pct(outcome.ratio)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Target (1-eps) ratio: %.1f%%. One round with k items falls short of\n"
      "it because most B-sets are lost; only an ~k/eps-item output closes\n"
      "the gap -- matching the Omega(k/eps) lower bound.\n",
      100.0 * (1 - cfg.epsilon));
  return 0;
}
