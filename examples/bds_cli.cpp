// bds_cli — the everything-runner: generate (or load) a dataset, run any
// algorithm in the library against it, and print the solution quality and
// the distributed-execution accounting.
//
//   $ build/examples/bds_cli --dataset synthetic --algorithm hybrid \
//         --k 50 --rounds 2 --eps 0.1
//   $ build/examples/bds_cli --dataset dblp --nodes 30000 \
//         --algorithm bicriteria --k 10 --output 20 --save dblp.bds
//   $ build/examples/bds_cli --load dblp.bds --algorithm randgreedi --k 10
//
// Datasets: synthetic | dblp | livejournal | gutenberg | wiki | images,
// or --load <file> written by a previous --save (coverage datasets only).
// Algorithms: whatever core/registry.h registers — --help enumerates them
// live, so the listing can never drift from the library.
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>

#include "core/baselines.h"
#include "core/bicriteria.h"
#include "core/curvature.h"
#include "core/greedy.h"
#include "core/registry.h"
#include "core/upper_bound.h"
#include "dist/engine.h"
#include "data/bigram_gen.h"
#include "dist/report.h"
#include "data/corpus.h"
#include "data/graph_gen.h"
#include "data/io.h"
#include "data/synthetic_coverage.h"
#include "data/vectors_gen.h"
#include "objectives/coverage.h"
#include "objectives/exemplar.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace bds;

constexpr const char* kUsage = R"(usage: bds_cli [options]
  --dataset NAME     synthetic | dblp | livejournal | gutenberg | wiki | images
  --load FILE        load a coverage dataset saved with --save
  --mmap             with --load: mmap the file zero-copy instead of heap
                     loading it (v2 files from --save or bds_convert;
                     selections are bit-identical either way)
  --save FILE        save the generated coverage dataset
  --nodes N          graph dataset size            (default 20000)
  --docs N           vector dataset size           (default 5000)
  --algorithm NAME   any registered algorithm (--help lists them all)
  --k K              target cardinality            (default 10)
  --output T         bicriteria output size        (default k)
  --rounds R         rounds                        (default 1)
  --eps E            epsilon                       (default 0.1)
  --machines M       machine count (0 = auto sqrt(n/k))
  --seed S           RNG seed                      (default 1)
  --threads T        host threads (0 = hardware default)
  --fault-seed S     nonzero: inject the recoverable fault mix with this
                     seed (crashes, drops, stragglers; unlimited retries)
  --transport NAME   inproc (default) | process: run each machine in its
                     own forked bds_worker process over the wire protocol;
                     selections are bit-identical across transports
  --worker BIN       with --transport process: the bds_worker binary
                     (default: $BDS_WORKER, else bds_worker next to bds_cli)
  --checkpoint-dir D write DIR/checkpoint.bds after every completed round
                     (engine-backed algorithms; see dist/engine.h)
  --resume FILE      continue a killed run from its checkpoint file; the
                     algorithm, parameters and --seed must match the
                     original invocation
  --halt-after-round N
                     stop after N completed rounds (with --checkpoint-dir:
                     simulate a mid-run kill for later --resume)
  --trace            print the structured round trace as JSON
  --verbose          print the per-round execution report
  --certify          print curvature + upper-bound certificates
  --help             this text
)";

// When `corpus` is non-null (--transport process) the workers rebuild the
// oracle from a dataset file, so generated datasets are spilled to one (the
// --save path when given, else a temp file) and the coordinator reloads it
// through the same data::CorpusSpec::make_oracle() call the workers use —
// one canonical construction on both sides of the wire.
std::shared_ptr<const SubmodularOracle> make_oracle(
    const util::Flags& flags, std::string* description,
    data::CorpusSpec* corpus) {
  const std::string dataset = flags.get_string("dataset", "synthetic");
  const std::uint64_t seed = flags.get_uint("seed", 1);

  if (flags.has("load")) {
    const std::string path = flags.get_string("load", "");
    const bool mmap = flags.get_bool("mmap", false);
    const auto sets =
        mmap ? data::map_set_system(path) : data::load_set_system(path);
    *description = std::string(mmap ? "mapped" : "loaded") +
                   " coverage dataset (" + std::to_string(sets->num_sets()) +
                   " sets)";
    if (corpus != nullptr) {
      corpus->objective = "coverage";
      corpus->path = path;
      corpus->mmap = mmap;
    }
    return std::make_shared<CoverageOracle>(sets);
  }

  const auto spill_path = [&flags] {
    return flags.has("save")
               ? flags.get_string("save", "")
               : "/tmp/bds_cli." + std::to_string(::getpid()) + ".corpus";
  };

  if (dataset == "wiki" || dataset == "images") {
    std::shared_ptr<const PointSet> points;
    if (dataset == "wiki") {
      data::LdaVectorsConfig cfg;
      cfg.documents =
          static_cast<std::uint32_t>(flags.get_uint("docs", 5'000));
      cfg.seed = seed;
      points = data::make_lda_like_vectors(cfg);
    } else {
      data::ImageVectorsConfig cfg;
      cfg.images = static_cast<std::uint32_t>(flags.get_uint("docs", 2'000));
      cfg.dim = 512;  // CLI-scale default; use the benches for 3072
      cfg.seed = seed;
      points = data::make_image_like_vectors(cfg);
    }
    *description = dataset + "-like exemplar clustering";
    if (corpus != nullptr) {
      const std::string path = spill_path();
      data::save_point_set(*points, path);
      corpus->objective = "exemplar";
      corpus->path = path;
      corpus->p0_dist = 2.0;
      return corpus->make_oracle();
    }
    return std::make_shared<ExemplarOracle>(points, 2.0);
  }

  std::shared_ptr<const SetSystem> sets;
  if (dataset == "synthetic") {
    data::SyntheticCoverageConfig cfg;
    cfg.universe_size = static_cast<std::uint32_t>(
        flags.get_uint("universe", 10'000));
    cfg.planted_sets =
        static_cast<std::uint32_t>(flags.get_uint("planted", 100));
    cfg.random_sets =
        static_cast<std::uint32_t>(flags.get_uint("decoys", 100'000));
    cfg.seed = seed;
    sets = data::make_synthetic_coverage(cfg).sets;
    *description = "synthetic hard coverage";
  } else if (dataset == "dblp" || dataset == "livejournal") {
    const auto nodes =
        static_cast<std::uint32_t>(flags.get_uint("nodes", 20'000));
    sets = dataset == "dblp" ? data::make_dblp_like(nodes, seed)
                             : data::make_livejournal_like(nodes, seed);
    *description = dataset + "-like neighborhood coverage";
  } else if (dataset == "gutenberg") {
    data::BigramConfig cfg;
    cfg.books = static_cast<std::uint32_t>(flags.get_uint("books", 1'000));
    cfg.seed = seed;
    sets = data::make_bigram_sets(cfg);
    *description = "gutenberg-like bi-gram coverage";
  } else {
    throw std::invalid_argument("unknown --dataset " + dataset);
  }

  if (flags.has("save")) {
    data::save_set_system(*sets, flags.get_string("save", ""));
  }
  if (corpus != nullptr) {
    const std::string path = spill_path();
    if (!flags.has("save")) data::save_set_system(*sets, path);
    corpus->objective = "coverage";
    corpus->path = path;
    return corpus->make_oracle();
  }
  return std::make_shared<CoverageOracle>(sets);
}

RunResult run_algorithm(const util::Flags& flags,
                        const SubmodularOracle& oracle,
                        std::span<const ElementId> ground,
                        const data::CorpusSpec* corpus) {
  AlgorithmParams params;
  params.k = flags.get_uint("k", 10);
  params.rounds = flags.get_uint("rounds", 1);
  params.output_items = flags.get_uint("output", 0);
  params.epsilon = flags.get_double("eps", 0.1);
  params.machines = flags.get_uint("machines", 0);

  RuntimeOptions runtime;
  runtime.seed = flags.get_uint("seed", 1);
  runtime.threads = flags.get_uint("threads", 0);
  runtime.mmap_datasets = flags.get_bool("mmap", false);
  const std::uint64_t fault_seed = flags.get_uint("fault-seed", 0);
  if (fault_seed != 0) {
    // The recoverable mix with unlimited retries: every shard is eventually
    // heard, so the selection matches the fault-free run while the stats
    // pick up the retry/straggler overhead.
    runtime.faults = dist::FaultPlan::recoverable(fault_seed);
    runtime.retry.max_attempts = 0;
  }
  if (flags.has("checkpoint-dir")) {
    const std::string path =
        flags.get_string("checkpoint-dir", ".") + "/checkpoint.bds";
    runtime.checkpoint_sink = [path](const Checkpoint& checkpoint) {
      save_checkpoint_file(checkpoint, path);
    };
  }
  if (flags.has("resume")) {
    runtime.resume_from = std::make_shared<const Checkpoint>(
        load_checkpoint_file(flags.get_string("resume", "")));
  }
  runtime.halt_after_round = flags.get_uint("halt-after-round", 0);
  const std::string transport = flags.get_string("transport", "inproc");
  if (transport == "process") {
    runtime.transport = TransportKind::kProcess;
    runtime.process.worker_binary = flags.get_string("worker", "");
    runtime.process.corpus_spec = corpus->serialize();
  } else if (transport != "inproc") {
    throw std::invalid_argument("unknown --transport " + transport);
  }
  return run_distributed(flags.get_string("algorithm", "bicriteria"), oracle,
                         ground, runtime, params);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Flags flags(argc, argv);
    if (flags.has("help")) {
      std::printf("%s", kUsage);
      // Enumerated live from the registry, so the listing is always the
      // set of names run_distributed actually accepts.
      std::printf("\nalgorithms:\n");
      for (const auto& spec : algorithm_registry()) {
        std::printf("  %-20s %s%s\n", spec.name.c_str(),
                    spec.description.c_str(),
                    spec.distributed ? "" : " [centralized]");
      }
      std::printf("\nobjectives:\n");
      for (const auto& spec : objective_registry()) {
        std::printf("  %-20s %s\n", spec.name.c_str(),
                    spec.description.c_str());
      }
      return 0;
    }

    std::string description;
    const bool process_transport =
        flags.get_string("transport", "inproc") == "process";
    data::CorpusSpec corpus;
    util::Timer gen_timer;
    const auto oracle =
        make_oracle(flags, &description, process_transport ? &corpus : nullptr);
    std::vector<ElementId> ground(oracle->ground_size());
    for (std::size_t i = 0; i < ground.size(); ++i) {
      ground[i] = static_cast<ElementId>(i);
    }
    std::printf("dataset: %s — %zu items (%.1fs)\n", description.c_str(),
                ground.size(), gen_timer.elapsed_seconds());

    util::Timer run_timer;
    const auto result = run_algorithm(flags, *oracle, ground,
                                      process_transport ? &corpus : nullptr);
    const double seconds = run_timer.elapsed_seconds();

    const std::size_t k = flags.get_uint("k", 10);
    const double ub =
        solution_upper_bound(*oracle, result.solution, ground, k);

    std::printf("\nalgorithm: %s\n",
                flags.get_string("algorithm", "bicriteria").c_str());
    util::Table table({"metric", "value"});
    table.add_row({"items output", util::Table::fmt_int(result.size())});
    table.add_row({"f(S)", util::Table::fmt(result.value, 2)});
    table.add_row({"upper bound on f(OPT_k)", util::Table::fmt(ub, 2)});
    table.add_row({"f(S) / UB", util::Table::fmt_pct(result.value / ub)});
    table.add_row({"rounds", util::Table::fmt_int(result.stats.num_rounds())});
    table.add_row({"communication (KiB)",
                   util::Table::fmt(
                       double(result.stats.bytes_communicated()) / 1024.0,
                       1)});
    table.add_row({"oracle evals (total)",
                   util::Table::fmt_int(result.stats.total_evals())});
    table.add_row({"oracle evals (critical path)",
                   util::Table::fmt_int(result.stats.critical_path_evals())});
    table.add_row({"wall time (s)", util::Table::fmt(seconds, 2)});
    std::printf("%s", table.to_string().c_str());
    if (flags.get_bool("verbose", false) &&
        !result.stats.rounds.empty()) {
      std::printf("\nexecution report:\n%s",
                  dist::render_execution_report(result.stats).c_str());
    }
    if (flags.get_bool("trace", false) && !result.stats.trace.empty()) {
      std::printf("\ntrace: %s\n",
                  dist::trace_to_json(result.stats.trace).c_str());
    }
    if (flags.get_bool("certify", false)) {
      // Instance-specific certificates: the top-k-marginal bound above plus
      // a curvature-refined greedy factor (sampled estimate on big grounds).
      const std::size_t sample = ground.size() > 2'000 ? 32 : 0;
      const auto curvature =
          estimate_curvature(*oracle, ground, sample,
                             flags.get_uint("seed", 1));
      std::printf(
          "\ncertificates: f(S)/UB = %.1f%%; measured curvature c = %.3f "
          "(%s over %zu elements) -> refined greedy factor %.1f%%\n",
          100.0 * result.value / ub, curvature.curvature,
          curvature.exact ? "exact" : "sampled", curvature.elements_used,
          100.0 * curvature.refined_greedy_factor);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n%s", e.what(), kUsage);
    return 1;
  }
}
