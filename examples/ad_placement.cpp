// Ad-campaign selection under a budget — probabilistic coverage end to end.
//
// A bipartite click model: each candidate ad reaches a (heavy-tailed) set of
// users, each with a click probability; the objective is the expected number
// of distinct users who click at least one selected ad:
//
//   f(S) = Σ_u (1 − Π_{ad ∈ S} (1 − p_{ad,u}))    (monotone submodular).
//
// Unlike hard coverage, gains never hit zero — which makes this the regime
// where the bicriteria trade-off is smooth: every extra output item buys a
// predictable slice of the remaining expected audience. Compares the
// distributed BicriteriaGreedy, ParallelAlg, SieveStreaming (single pass)
// and random selection.
//
//   $ build/examples/ad_placement [ads] [k]
#include <cstdio>
#include <cstdlib>

#include "core/baselines.h"
#include "core/bicriteria.h"
#include "core/greedy.h"
#include "core/knapsack.h"
#include "core/streaming.h"
#include "core/upper_bound.h"
#include "data/prob_gen.h"
#include "objectives/prob_coverage.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace bds;

  data::ClickModelConfig model;
  model.ads = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1]))
                       : 5'000;
  model.users = 4 * model.ads;
  model.seed = 9;
  const std::size_t k = argc > 2 ? std::atoi(argv[2]) : 10;

  std::printf("Click model: %u candidate ads, %u users...\n", model.ads,
              model.users);
  const auto sets = data::make_click_model(model);
  std::printf("  bipartite entries: %zu (mean reach %.1f users/ad)\n\n",
              sets->total_entries(),
              double(sets->total_entries()) / model.ads);

  const ProbCoverageOracle oracle(sets);
  std::vector<ElementId> ground(sets->num_sets());
  for (std::size_t i = 0; i < ground.size(); ++i) {
    ground[i] = static_cast<ElementId>(i);
  }

  struct Row {
    std::string name;
    std::vector<ElementId> solution;
    double value;
  };
  std::vector<Row> rows;

  for (const std::size_t out : {k, 2 * k, 4 * k}) {
    BicriteriaConfig cfg;
    cfg.k = k;
    cfg.output_items = out;
    cfg.runtime.seed = 2;
    auto result = bicriteria_greedy(oracle, ground, cfg);
    rows.push_back({"BicriteriaGreedy (" + std::to_string(out) + " ads)",
                    std::move(result.solution), result.value});
  }
  {
    ParallelAlgConfig cfg;
    cfg.k = k;
    cfg.epsilon = 0.25;
    cfg.runtime.seed = 2;
    auto result = parallel_alg(oracle, ground, cfg);
    rows.push_back({"ParallelAlg (4 rounds, k ads)",
                    std::move(result.solution), result.value});
  }
  {
    auto result = sieve_streaming(oracle, ground, {k, 0.1});
    rows.push_back({"SieveStreaming (1 pass, k ads)",
                    std::move(result.solution), result.value});
  }
  {
    auto scratch = oracle.clone();
    util::Rng rng(2);
    const auto picks = random_subset(*scratch, ground, k, rng);
    rows.push_back({"Random (k ads)", picks.picks, scratch->value()});
  }

  double ub = oracle.max_value();
  for (const auto& row : rows) {
    ub = std::min(ub, solution_upper_bound(oracle, row.solution, ground, k));
  }

  util::Table table({"strategy", "ads", "expected clicking users",
                     "% of k-ad optimum bound"});
  for (const auto& row : rows) {
    table.add_row({row.name, util::Table::fmt_int(row.solution.size()),
                   util::Table::fmt(row.value, 1),
                   util::Table::fmt_pct(row.value / ub)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("upper bound on the best %zu-ad campaign: %.1f users\n", k, ub);

  // Budgeted variant: ad costs proportional to reach (plus overhead); a
  // spend budget replaces the count constraint.
  std::vector<double> costs(sets->num_sets());
  for (std::size_t i = 0; i < costs.size(); ++i) {
    costs[i] = 1.0 + 0.05 * double(sets->set_entries(
                                        static_cast<ElementId>(i)).size());
  }
  const double budget = double(k) * 3.0;
  const auto budgeted = knapsack_greedy(oracle, ground, costs, budget);
  std::printf(
      "\nbudgeted variant (spend <= %.0f, cost ~ reach): %zu ads, "
      "%.1f expected clicking users at cost %.1f\n",
      budget, budgeted.picks.size(), budgeted.gained, budgeted.cost);
  std::printf(
      "\nSoft coverage never saturates, so the bicriteria rows climb past\n"
      "the k-ad optimum smoothly; the streaming pass is competitive at a\n"
      "fraction of the evaluations; random lags everything.\n");
  return 0;
}
