// Active-set selection for non-parametric (Gaussian-process) learning —
// the paper's intro application [15], on the log-determinant objective:
//
//   f(S) = ½ log det(I + σ⁻² K_S)   (information gain of observing S).
//
// Greedy picks the most informative points (far apart under the RBF
// kernel); the distributed one-round pipeline matches centralized greedy;
// random wastes budget on redundant near-duplicates. Also reports the mean
// posterior variance over the dataset — the quantity a GP practitioner
// actually cares about — for each selection.
//
//   $ build/examples/active_set_selection [points] [k]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/baselines.h"
#include "core/bicriteria.h"
#include "core/greedy.h"
#include "data/vectors_gen.h"
#include "objectives/logdet.h"
#include "util/linalg.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace bds;

// Mean posterior variance of every point given observations S under the
// regularized RBF kernel — brute force, fine at example scale.
double mean_posterior_variance(const LogDetOracle& proto,
                               std::span<const ElementId> selected,
                               std::size_t n, double noise) {
  util::IncrementalCholesky chol;
  std::vector<ElementId> order;
  for (const ElementId s : selected) {
    std::vector<double> col(order.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      col[i] = proto.kernel(s, order[i]) / noise;
    }
    chol.extend(col, 1.0 + proto.kernel(s, s) / noise);
    order.push_back(s);
  }
  double total = 0.0;
  for (ElementId x = 0; x < n; ++x) {
    std::vector<double> col(order.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      col[i] = proto.kernel(x, order[i]) / noise;
    }
    // Var[x | S] (scaled): Schur complement minus the observation-noise 1.
    const double schur =
        chol.conditional_variance(col, 1.0 + proto.kernel(x, x) / noise);
    total += noise * (schur - 1.0);  // Var[x|S] = sigma^2 (schur - 1)
  }
  return total / double(n);
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t n =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 1'200;
  const std::size_t k = argc > 2 ? std::atoi(argv[2]) : 15;
  const double noise = 0.1;
  const double bandwidth = 0.5;

  data::LdaVectorsConfig gen;
  gen.documents = n;
  gen.topics = 20;
  gen.clusters = 15;
  gen.seed = 3;
  const auto points = data::make_lda_like_vectors(gen);
  std::printf("Candidate pool: %u points (20-dim), RBF bandwidth %.2f, "
              "noise %.2f, k = %zu\n\n",
              n, bandwidth, noise, k);

  const LogDetOracle oracle(points, bandwidth, noise);
  std::vector<ElementId> ground(n);
  for (std::uint32_t i = 0; i < n; ++i) ground[i] = i;

  util::Table table({"strategy", "information gain f(S)",
                     "mean posterior variance"});

  {
    auto o = oracle.clone();
    const auto result = lazy_greedy(*o, ground, k, {true});
    table.add_row({"centralized greedy", util::Table::fmt(o->value(), 3),
                   util::Table::fmt(mean_posterior_variance(
                                        oracle, result.picks, n, noise),
                                    4)});
  }
  {
    BicriteriaConfig cfg;
    cfg.k = k;
    cfg.runtime.seed = 5;
    const auto result = bicriteria_greedy(oracle, ground, cfg);
    table.add_row({"distributed (1 round)",
                   util::Table::fmt(result.value, 3),
                   util::Table::fmt(mean_posterior_variance(
                                        oracle, result.solution, n, noise),
                                    4)});
  }
  {
    auto o = oracle.clone();
    util::Rng rng(5);
    const auto result = random_subset(*o, ground, k, rng);
    table.add_row({"random", util::Table::fmt(o->value(), 3),
                   util::Table::fmt(mean_posterior_variance(
                                        oracle, result.picks, n, noise),
                                    4)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Greedy and the distributed pipeline pick mutually-distant,\n"
      "informative points (high information gain, low residual variance);\n"
      "random selections overlap clusters and leave variance on the table.\n");
  return 0;
}
