// Extractive document summarization — the paper's intro application [20]
// (Lin & Bilmes), end to end on synthetic "sentences":
//
//   1. generate sentences as Zipfian token streams grouped into topics;
//   2. build a cosine similarity matrix over token-count vectors;
//   3. maximize the Lin–Bilmes objective (saturated coverage + diversity
//      reward over topic clusters) with greedy, the one-round distributed
//      pipeline, and random selection.
//
//   $ build/examples/text_summarization [sentences] [k]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>

#include "core/bicriteria.h"
#include "core/greedy.h"
#include "objectives/saturated_coverage.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/zipf.h"

namespace {

using namespace bds;

struct Corpus {
  std::shared_ptr<const SimilarityMatrix> similarity;
  std::vector<std::uint32_t> topic_of;
  std::uint32_t n_topics;
};

// Sentences are bags of Zipf-distributed tokens; each sentence draws most
// tokens from its topic's band of the vocabulary and some from a shared
// band, giving within-topic similarity plus global overlap.
Corpus make_corpus(std::uint32_t n_sentences, std::uint32_t n_topics,
                   std::uint64_t seed) {
  constexpr std::uint32_t kVocab = 600;
  constexpr std::uint32_t kBand = 80;    // tokens per topic band
  constexpr std::uint32_t kLength = 30;  // tokens per sentence
  util::Rng rng(seed);
  const util::ZipfSampler zipf(kBand, 1.0);

  std::vector<std::map<std::uint32_t, double>> bags(n_sentences);
  Corpus corpus;
  corpus.n_topics = n_topics;
  corpus.topic_of.resize(n_sentences);
  for (std::uint32_t s = 0; s < n_sentences; ++s) {
    const auto topic = static_cast<std::uint32_t>(rng.next_below(n_topics));
    corpus.topic_of[s] = topic;
    for (std::uint32_t t = 0; t < kLength; ++t) {
      const bool shared = rng.next_bool(0.3);
      const std::uint32_t band_start =
          shared ? (n_topics * kBand) : (topic * kBand);
      const auto token =
          band_start + static_cast<std::uint32_t>(zipf.sample(rng));
      bags[s][token % kVocab] += 1.0;
    }
  }

  // Cosine similarities.
  std::vector<double> norms(n_sentences, 0.0);
  for (std::uint32_t s = 0; s < n_sentences; ++s) {
    for (const auto& [token, count] : bags[s]) norms[s] += count * count;
    norms[s] = std::sqrt(norms[s]);
  }
  std::vector<double> sim(std::size_t(n_sentences) * n_sentences, 0.0);
  for (std::uint32_t a = 0; a < n_sentences; ++a) {
    sim[std::size_t(a) * n_sentences + a] = 1.0;
    for (std::uint32_t b = a + 1; b < n_sentences; ++b) {
      double dot = 0.0;
      for (const auto& [token, count] : bags[a]) {
        const auto it = bags[b].find(token);
        if (it != bags[b].end()) dot += count * it->second;
      }
      const double value = dot / (norms[a] * norms[b]);
      sim[std::size_t(a) * n_sentences + b] = value;
      sim[std::size_t(b) * n_sentences + a] = value;
    }
  }
  corpus.similarity = std::make_shared<const SimilarityMatrix>(
      n_sentences, std::move(sim));
  return corpus;
}

std::string topic_histogram(std::span<const ElementId> picks,
                            const Corpus& corpus) {
  std::map<std::uint32_t, int> hist;
  for (const ElementId x : picks) ++hist[corpus.topic_of[x]];
  std::string out;
  for (std::uint32_t t = 0; t < corpus.n_topics; ++t) {
    out += std::to_string(hist.count(t) ? hist[t] : 0);
    if (t + 1 < corpus.n_topics) out += "/";
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t n =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 800;
  const std::size_t k = argc > 2 ? std::atoi(argv[2]) : 8;
  const std::uint32_t n_topics = 4;

  std::printf("Corpus: %u sentences across %u topics; summary size k = %zu\n",
              n, n_topics, k);
  const Corpus corpus = make_corpus(n, n_topics, 17);

  SaturatedCoverageConfig objective;
  // gamma small so per-sentence coverage saturates quickly; lambda on the
  // coverage scale so the diversity reward actually steers selection.
  objective.gamma = 0.05;
  objective.cluster_of = corpus.topic_of;
  objective.lambda = 400.0;
  const SaturatedCoverageOracle oracle(corpus.similarity, objective);

  std::vector<ElementId> ground(n);
  for (std::uint32_t i = 0; i < n; ++i) ground[i] = i;

  util::Table table({"strategy", "L(S)", "% of max", "picks per topic"});
  {
    auto o = oracle.clone();
    const auto result = lazy_greedy(*o, ground, k, {true});
    table.add_row({"centralized greedy", util::Table::fmt(o->value(), 2),
                   util::Table::fmt_pct(o->value() / oracle.max_value()),
                   topic_histogram(result.picks, corpus)});
  }
  {
    BicriteriaConfig cfg;
    cfg.k = k;
    cfg.runtime.seed = 5;
    const auto result = bicriteria_greedy(oracle, ground, cfg);
    table.add_row({"distributed (1 round)",
                   util::Table::fmt(result.value, 2),
                   util::Table::fmt_pct(result.value / oracle.max_value()),
                   topic_histogram(result.solution, corpus)});
  }
  {
    BicriteriaConfig cfg;
    cfg.k = k;
    cfg.output_items = 2 * k;
    cfg.runtime.seed = 5;
    const auto result = bicriteria_greedy(oracle, ground, cfg);
    table.add_row({"distributed (2k sentences)",
                   util::Table::fmt(result.value, 2),
                   util::Table::fmt_pct(result.value / oracle.max_value()),
                   topic_histogram(result.solution, corpus)});
  }
  {
    auto o = oracle.clone();
    util::Rng rng(5);
    const auto result = random_subset(*o, ground, k, rng);
    table.add_row({"random", util::Table::fmt(o->value(), 2),
                   util::Table::fmt_pct(o->value() / oracle.max_value()),
                   topic_histogram(result.picks, corpus)});
  }
  std::printf("\n%s\n", table.to_string().c_str());
  std::printf(
      "The diversity reward spreads the summary across topics; saturation\n"
      "stops any single topic from dominating the coverage term. The\n"
      "distributed run tracks centralized greedy, and doubling the summary\n"
      "size (the bicriteria trade) pushes L(S) further toward its cap.\n");
  return 0;
}
