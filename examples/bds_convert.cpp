// bds_convert — re-encodes datasets into the mmap-ready v2 container
// (data/format.h), so bds_cli --load --mmap and the benches can map them
// zero-copy.
//
//   $ build/examples/bds_convert com-dblp.ungraph.txt dblp.bds
//   $ build/examples/bds_convert old-v1-snapshot.bds snapshot.bds
//
// Inputs (detected from the leading bytes):
//   * text edge list ("u v" per line, '#'/'%' comments, SNAP-style ids) —
//     converted to the paper's neighborhood coverage instance: one set per
//     node holding its neighbors, universe = nodes
//   * legacy v1 binary set system / point set / prob set system — upgraded
//   * v2 files — rewritten (an integrity check + canonical re-encode)
#include <cstdio>
#include <string>

#include "data/convert.h"

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr,
                 "usage: bds_convert <input> <output.bds>\n"
                 "  input: text edge list, or a v1/v2 binary dataset file\n");
    return 2;
  }
  try {
    const auto result =
        bds::data::convert_dataset_file(argv[1], argv[2]);
    std::printf("%s: %s -> %s (%zu items, %zu entries)\n",
                result.kind.c_str(), argv[1], argv[2], result.ground_size,
                result.total_entries);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
