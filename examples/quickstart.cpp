// Quickstart: maximize coverage over a synthetic hard instance with
// BicriteriaGreedy and compare against the optimum upper bound.
//
//   $ build/examples/quickstart
//
// Walks through the whole public API surface in ~60 lines:
//   1. generate a dataset (the paper's §4.1 synthetic coverage instance);
//   2. wrap it in a submodular oracle;
//   3. run the distributed algorithm for a few (output size, rounds) combos;
//   4. certify quality with the top-k marginal upper bound.
#include <cstdio>
#include <numeric>

#include "core/bicriteria.h"
#include "core/upper_bound.h"
#include "data/synthetic_coverage.h"
#include "objectives/coverage.h"
#include "util/table.h"

int main() {
  using namespace bds;

  // 1. A universe of 2,000 elements with a planted optimal cover of K = 20
  //    disjoint sets, hidden among 20,000 slightly larger random sets.
  data::SyntheticCoverageConfig data_cfg;
  data_cfg.universe_size = 2'000;
  data_cfg.planted_sets = 20;
  data_cfg.random_sets = 20'000;
  const auto instance = data::make_synthetic_coverage(data_cfg);
  const std::size_t K = data_cfg.planted_sets;

  // 2. The coverage oracle: f(S) = |union of the selected sets|.
  const CoverageOracle oracle(instance.sets);
  std::vector<ElementId> ground(instance.sets->num_sets());
  std::iota(ground.begin(), ground.end(), ElementId{0});

  std::printf("Synthetic coverage: universe=%u, planted K=%u, decoys=%u\n\n",
              data_cfg.universe_size, data_cfg.planted_sets,
              data_cfg.random_sets);

  // 3. BicriteriaGreedy: output k >= K items in r rounds; more items and
  //    more rounds both close the gap to the optimum.
  util::Table table({"output k", "rounds", "f(S)", "% of upper bound",
                     "comm (KiB)"});
  double ub = static_cast<double>(data_cfg.universe_size);
  for (const std::size_t rounds : {1u, 3u}) {
    for (const std::size_t out : {K, 3 * K / 2, 2 * K}) {
      BicriteriaConfig cfg;
      cfg.mode = BicriteriaMode::kPractical;
      cfg.k = K;
      cfg.output_items = out;
      cfg.rounds = rounds;
      cfg.runtime.seed = 42;
      const DistributedResult result = bicriteria_greedy(oracle, ground, cfg);

      // 4. Certify: f(OPT_K) <= f(S) + sum of top-K marginals.
      ub = std::min(ub, solution_upper_bound(oracle, result.solution, ground,
                                             K));
      table.add_row({util::Table::fmt_int(out), util::Table::fmt_int(rounds),
                     util::Table::fmt(result.value, 0),
                     util::Table::fmt_pct(result.value / ub),
                     util::Table::fmt(
                         double(result.stats.bytes_communicated()) / 1024.0,
                     1)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("upper bound on f(OPT_%zu): %.0f (universe: %u)\n", K, ub,
              data_cfg.universe_size);
  std::printf(
      "\nReading the table: with k = K the greedy solution is pulled toward\n"
      "the decoy sets; outputting 1.5-2x more items (or spending a couple\n"
      "more rounds) recovers ~99%% of the optimum -- the paper's headline\n"
      "trade-off.\n");
  return 0;
}
