// bds_serve — the persistent summary service, exercised end to end: it
// registers a coverage corpus and an exemplar-clustering corpus, replays a
// scripted multi-tenant query mix against serve::SummaryService from
// concurrent client threads, and reports the serving statistics.
//
//   $ build/examples/bds_serve --queries 64 --clients 4
//   $ build/examples/bds_serve --verify --min-hit-rate 0.5
//   $ build/examples/bds_serve --mutations 24 --verify
//   $ build/examples/bds_serve --trace
//
// --verify pins the serving contract offline: the largest-budget answer
// per corpus must be bitwise equal to a direct run_distributed call at the
// same parameters, and every smaller-budget cache hit must be the bitwise
// prefix of that run with the replayed prefix value. --min-hit-rate turns
// the hit rate into an exit gate for CI.
//
// --mutations N registers a third, *dynamic* coverage corpus and runs a
// mutation storm against it: a mutator thread interleaves N inserts/erases
// with the concurrent client queries (the race CI's smoke leg exists to
// catch). With --verify, the post-storm answer must additionally be
// bitwise equal to a direct run over a from-scratch rebuild of the mutated
// corpus — the dynamic-vs-rebuild identity from data/dynamic.h.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/registry.h"
#include "data/dynamic.h"
#include "data/graph_gen.h"
#include "data/vectors_gen.h"
#include "dist/trace.h"
#include "objectives/coverage.h"
#include "objectives/exemplar.h"
#include "serve/service.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace bds;

constexpr const char* kUsage = R"(usage: bds_serve [options]
  --nodes N          coverage corpus size          (default 4000)
  --docs N           exemplar corpus size          (default 600)
  --queries N        queries in the scripted mix   (default 48)
  --clients C        concurrent client threads     (default 4)
  --tenants T        tenants in the mix            (default 3)
  --algorithm NAME   any registered algorithm      (default bicriteria)
  --mutations N      storm: N inserts/erases on a dynamic corpus (default 0)
  --seed S           corpus + runtime seed         (default 1)
  --threads T        service pool threads (0 = hardware default)
  --min-hit-rate X   exit 1 if the mix's hit rate lands below X
  --verify           check served answers bitwise against direct runs
  --trace            print per-query spans as JSON
  --help             this text
)";

struct Mix {
  serve::SummaryService& service;
  std::vector<serve::Query> queries;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> failures{0};
};

void client_loop(Mix& mix) {
  for (;;) {
    const std::size_t i = mix.next.fetch_add(1);
    if (i >= mix.queries.size()) return;
    try {
      (void)mix.service.query(mix.queries[i]);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "query %zu failed: %s\n", i, e.what());
      mix.failures.fetch_add(1);
    }
  }
}

// The verification oracle: serve at budget k' must equal the length-k'
// prefix of the direct run at the cached configuration (budget k_max),
// valued by ordered replay. Returns the number of mismatches.
std::size_t verify_corpus(serve::SummaryService& service,
                          const std::string& corpus,
                          const std::string& algorithm,
                          const SubmodularOracle& proto,
                          std::span<const ElementId> ground,
                          std::size_t k_max, std::uint64_t seed) {
  serve::Query q;
  q.corpus = corpus;
  q.algorithm = algorithm;
  q.k = k_max;
  q.runtime.seed = seed;
  const serve::ServeResult full = service.query(q);

  AlgorithmParams params;
  params.k = k_max;
  RuntimeOptions runtime;
  runtime.seed = seed;
  const RunResult direct =
      run_distributed(algorithm, proto, ground, runtime, params);

  std::size_t mismatches = 0;
  if (full.solution != direct.solution || full.value != direct.value) {
    std::fprintf(stderr, "verify: %s full answer differs from direct run\n",
                 corpus.c_str());
    ++mismatches;
  }

  // Replay the direct solution to get the reference prefix values.
  auto replay = proto.clone();
  std::vector<double> prefix_value{replay->value()};
  for (const ElementId x : direct.solution) {
    replay->add(x);
    prefix_value.push_back(replay->value());
  }

  for (std::size_t k = 1; k < k_max; k += std::max<std::size_t>(1, k_max / 7)) {
    q.k = k;
    const serve::ServeResult prefix = service.query(q);
    const std::size_t len = std::min(k, direct.solution.size());
    const bool items_match =
        prefix.solution.size() == len &&
        std::equal(prefix.solution.begin(), prefix.solution.end(),
                   direct.solution.begin());
    if (!items_match || prefix.value != prefix_value[len]) {
      std::fprintf(stderr,
                   "verify: %s budget %zu prefix differs from direct run\n",
                   corpus.c_str(), k);
      ++mismatches;
    }
  }
  return mismatches;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Flags flags(argc, argv);
    if (flags.has("help")) {
      std::printf("%s", kUsage);
      return 0;
    }
    const std::uint64_t seed = flags.get_uint("seed", 1);
    const std::string algorithm =
        flags.get_string("algorithm", "bicriteria");
    require_algorithm(algorithm);

    // Two corpora with different objective families: neighborhood coverage
    // and exemplar clustering (the latter exercises cross-query fusion).
    const auto nodes =
        static_cast<std::uint32_t>(flags.get_uint("nodes", 4'000));
    const auto sets = data::make_dblp_like(nodes, seed);
    const auto coverage = std::make_shared<CoverageOracle>(sets);

    data::LdaVectorsConfig vec_cfg;
    vec_cfg.documents = static_cast<std::uint32_t>(flags.get_uint("docs", 600));
    vec_cfg.seed = seed;
    const auto points = data::make_lda_like_vectors(vec_cfg);
    const auto exemplar = std::make_shared<ExemplarOracle>(points, 2.0);

    serve::ServiceOptions options;
    options.threads = flags.get_uint("threads", 0);
    options.record_query_spans = flags.get_bool("trace", false);
    serve::SummaryService service(options);
    service.add_corpus("dblp", "coverage", coverage);
    service.add_corpus("wiki", "exemplar", exemplar);

    // The mutation storm target: the same base set system behind a
    // DynamicCorpus, mutated concurrently with the query mix.
    const std::size_t n_mutations = flags.get_uint("mutations", 0);
    const auto dynamic = std::make_shared<data::DynamicCorpus>(sets, "churn");
    if (n_mutations > 0) {
      service.add_dynamic_corpus("churn", "coverage", dynamic);
    }

    // The scripted mix: tenants cycle; budgets cycle over a small ladder so
    // the same configurations recur (the serving workload this service is
    // for); all corpora are interleaved.
    std::vector<std::string> corpora{"dblp", "wiki"};
    if (n_mutations > 0) corpora.push_back("churn");
    const std::size_t n_queries = flags.get_uint("queries", 48);
    const std::size_t tenants = std::max<std::uint64_t>(1, flags.get_uint("tenants", 3));
    const std::size_t budgets[] = {4, 8, 16, 8, 4, 16, 32, 8};
    Mix mix{service, {}, {}, {}};
    mix.queries.reserve(n_queries);
    for (std::size_t i = 0; i < n_queries; ++i) {
      serve::Query q;
      q.corpus = corpora[i % corpora.size()];
      q.algorithm = algorithm;
      q.k = budgets[(i / corpora.size()) % std::size(budgets)];
      q.tenant = "tenant-" + std::to_string(i % tenants);
      q.runtime.seed = seed;
      mix.queries.push_back(std::move(q));
    }

    const std::size_t clients =
        std::max<std::uint64_t>(1, flags.get_uint("clients", 4));
    std::vector<std::thread> workers;
    for (std::size_t c = 0; c < clients; ++c) {
      workers.emplace_back([&mix] { client_loop(mix); });
    }

    // Mutator thread: interleaves inserts (random small sets) and erases
    // (oldest live id) with the client queries. Every mutation goes through
    // the service's endpoints, so each one bumps the epoch and runs the
    // invalidate-or-recertify pass while queries are in flight.
    std::atomic<std::size_t> mutation_failures{0};
    std::thread mutator;
    if (n_mutations > 0) {
      mutator = std::thread([&] {
        util::Rng rng(util::mix64(seed ^ 0xc0ffee));
        ElementId erase_cursor = 0;
        for (std::size_t i = 0; i < n_mutations; ++i) {
          try {
            if (i % 3 == 2) {
              while (!dynamic->is_live(erase_cursor)) ++erase_cursor;
              service.corpus_erase("churn", erase_cursor++);
            } else {
              const std::size_t len = 5 + rng.next_below(16);
              std::vector<std::uint32_t> items(len);
              for (auto& item : items) {
                item = static_cast<std::uint32_t>(
                    rng.next_below(dynamic->universe_size()));
              }
              service.corpus_insert("churn", std::move(items));
            }
          } catch (const std::exception& e) {
            std::fprintf(stderr, "mutation %zu failed: %s\n", i, e.what());
            mutation_failures.fetch_add(1);
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      });
    }

    for (auto& w : workers) w.join();
    if (mutator.joinable()) mutator.join();

    const serve::ServiceStats stats = service.stats();
    const serve::CacheStats cache = service.cache_stats();
    util::Table table({"metric", "value"});
    table.add_row({"queries", util::Table::fmt_int(stats.queries)});
    table.add_row({"hits", util::Table::fmt_int(stats.hits)});
    table.add_row({"coalesced", util::Table::fmt_int(stats.coalesced)});
    table.add_row({"computed", util::Table::fmt_int(stats.computed)});
    table.add_row({"degraded", util::Table::fmt_int(stats.degraded)});
    table.add_row({"rejected", util::Table::fmt_int(stats.rejected)});
    table.add_row({"hit rate", util::Table::fmt_pct(stats.hit_rate())});
    table.add_row({"oracle evals saved",
                   util::Table::fmt_int(stats.evals_saved)});
    table.add_row({"oracle evals spent",
                   util::Table::fmt_int(stats.evals_spent)});
    table.add_row({"cache entries", util::Table::fmt_int(service.cache_stats().insertions)});
    table.add_row({"cache evictions", util::Table::fmt_int(cache.evictions)});
    if (n_mutations > 0) {
      table.add_row({"mutations", util::Table::fmt_int(stats.mutations)});
      table.add_row({"corpus epoch",
                     util::Table::fmt_int(service.corpus_epoch("churn"))});
      table.add_row({"summaries recertified",
                     util::Table::fmt_int(stats.summaries_recertified)});
      table.add_row({"summaries invalidated",
                     util::Table::fmt_int(stats.summaries_invalidated)});
      table.add_row({"oracle rebuilds",
                     util::Table::fmt_int(stats.oracle_rebuilds)});
    }
    std::printf("%s", table.to_string().c_str());

    if (flags.get_bool("trace", false)) {
      std::printf("\nquery spans: %s\n",
                  dist::query_spans_to_json(service.drain_query_spans())
                      .c_str());
    }

    std::size_t mismatches = 0;
    if (flags.get_bool("verify", false)) {
      std::vector<ElementId> cov_ground(coverage->ground_size());
      for (std::size_t i = 0; i < cov_ground.size(); ++i) {
        cov_ground[i] = static_cast<ElementId>(i);
      }
      std::vector<ElementId> ex_ground(exemplar->ground_size());
      for (std::size_t i = 0; i < ex_ground.size(); ++i) {
        ex_ground[i] = static_cast<ElementId>(i);
      }
      mismatches += verify_corpus(service, "dblp", algorithm, *coverage,
                                  cov_ground, 32, seed);
      mismatches += verify_corpus(service, "wiki", algorithm, *exemplar,
                                  ex_ground, 16, seed);
      if (n_mutations > 0) {
        // The dynamic-vs-rebuild identity: the service answers over its
        // incrementally maintained oracle; the reference is a direct run
        // over a from-scratch rebuild of the mutated corpus at the same
        // (final) epoch. The two must agree bitwise.
        data::DynamicOracleOptions rebuild_opts;
        rebuild_opts.prefer_incremental = false;
        const auto rebuilt =
            data::make_dynamic_oracle(*dynamic, "coverage", rebuild_opts);
        mismatches += verify_corpus(service, "churn", algorithm, *rebuilt,
                                    dynamic->live_ground(), 16, seed);
      }
      std::printf("\nverify: %s\n",
                  mismatches == 0 ? "all served answers bitwise-identical "
                                    "to direct runs"
                                  : "MISMATCH");
    }

    if (mix.failures.load() != 0 || mutation_failures.load() != 0 ||
        mismatches != 0) {
      return 1;
    }
    if (flags.has("min-hit-rate") &&
        stats.hit_rate() < flags.get_double("min-hit-rate", 0.0)) {
      std::fprintf(stderr, "hit rate %.2f below required %.2f\n",
                   stats.hit_rate(), flags.get_double("min-hit-rate", 0.0));
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n%s", e.what(), kUsage);
    return 1;
  }
}
