// Exemplar-based clustering of image-like vectors — the TinyImages use case
// of §4.2, end to end:
//
//   1. generate high-dimensional "image" vectors (Gaussian mixture,
//      mean-subtracted, L2-normalized);
//   2. reduce 3072 -> 300 dims with an Achlioptas JL projection;
//   3. run distributed BicriteriaGreedy with *sampled* machine oracles
//      (each machine estimates the objective on its own 500-point sample,
//      exactly as the paper does) and stochastic-greedy selection;
//   4. score the chosen exemplars exactly on the original vectors.
//
//   $ build/examples/image_exemplars [images] [K]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <numeric>

#include "core/bicriteria.h"
#include "core/upper_bound.h"
#include "data/vectors_gen.h"
#include "objectives/exemplar.h"
#include "objectives/jl_projection.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace bds;

  const std::uint32_t images =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 3'000;
  const std::size_t K = argc > 2 ? std::atoi(argv[2]) : 10;
  constexpr double kP0Dist = 2.0;  // phantom exemplar distance (paper)

  data::ImageVectorsConfig gen;
  gen.images = images;
  gen.dim = 3'072;
  gen.clusters = 32;
  gen.seed = 5;
  std::printf("Generating %u image vectors (%u dims, %u latent clusters)...\n",
              gen.images, gen.dim, gen.clusters);
  const auto original = data::make_image_like_vectors(gen);

  util::Timer jl_timer;
  const auto projected =
      std::make_shared<const PointSet>(jl_project(*original, 300, 17));
  std::printf("JL projection 3072 -> 300 dims: %.1fs\n\n",
              jl_timer.elapsed_seconds());

  const ExemplarOracle exact_original(original, kP0Dist);
  const ExemplarOracle projected_proto(projected, kP0Dist);
  std::vector<ElementId> ground(original->size());
  std::iota(ground.begin(), ground.end(), ElementId{0});

  util::Table table({"output k", "f(S) on originals", "% of upper bound",
                     "clustering cost", "wall (s)"});
  double ub = exact_original.max_value();
  for (const std::size_t out : {K, 3 * K / 2, 2 * K, 3 * K}) {
    BicriteriaConfig cfg;
    cfg.k = K;
    cfg.output_items = out;
    cfg.runtime.seed = 3;
    cfg.selector = MachineSelector::kStochasticGreedy;
    // Each machine estimates the objective on its own 500-point sample of
    // the *projected* vectors (cheap oracle), per the paper's setup.
    cfg.machine_oracle_factory =
        [&projected,
         kP0Dist](std::size_t machine) -> std::unique_ptr<SubmodularOracle> {
      util::Rng rng(util::mix64(900 + machine));
      return std::make_unique<SampledExemplarOracle>(projected, kP0Dist, 500,
                                                     rng);
    };

    util::Timer timer;
    const auto result = bicriteria_greedy(projected_proto, ground, cfg);
    const double secs = timer.elapsed_seconds();

    // Exact scoring on the unprojected vectors (the paper always reports
    // exact values of the original objective).
    auto scorer = exact_original.clone();
    for (const ElementId x : result.solution) scorer->add(x);
    const double exact_value = scorer->value();
    const double cost = exact_original.max_value() - exact_value;

    ub = std::min(ub, solution_upper_bound(exact_original, result.solution,
                                           ground, K));
    table.add_row({util::Table::fmt_int(out),
                   util::Table::fmt(exact_value, 1),
                   util::Table::fmt_pct(exact_value / ub),
                   util::Table::fmt(cost, 1), util::Table::fmt(secs, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("upper bound on f(OPT_%zu): %.1f\n", K, ub);
  std::printf(
      "\nThe chosen exemplars summarize the image collection: clustering\n"
      "cost is the summed squared distance of every image to its nearest\n"
      "exemplar. More output items -> lower cost, approaching the K-item\n"
      "optimum bound from below.\n");
  return 0;
}
