// bds_worker — the process-transport worker executable.
//
// Spawned by dist::make_process_transport, one per logical machine, with
// the coordinator's socket as stdin/stdout. The loop is entirely reactive:
// a kHello provisions the oracle from the shipped data::CorpusSpec, then
// each kRequest executes one worker attempt through the *same*
// detail::make_machine_worker / make_threshold_worker code paths the
// in-process transport runs, which is what makes the two backends
// bit-identical. An injected crash fault makes this process genuinely
// _exit(9) — after replying, so the coordinator's wasted-eval accounting
// matches the in-process fault simulator.
#include <unistd.h>

#include <cstdlib>
#include <exception>
#include <memory>
#include <string>

#include "core/bound_heap.h"
#include "core/machine_runner.h"
#include "data/corpus.h"
#include "dist/cluster.h"
#include "dist/faults.h"
#include "dist/transport.h"
#include "dist/wire.h"
#include "util/timer.h"

namespace {

using bds::dist::FaultKind;
using bds::dist::WorkerPlanKind;
namespace wire = bds::dist::wire;

constexpr int kInFd = 0;
constexpr int kOutFd = 1;

// The coordinator is the only peer this process ever speaks to.
const std::string kPeer = "coordinator";

struct WorkerState {
  std::size_t machine = 0;
  std::size_t ground_size = 0;
  std::unique_ptr<bds::SubmodularOracle> proto;
};

void send_error(const std::string& message) {
  // Best-effort: if the coordinator is gone there is nobody to tell.
  try {
    wire::write_frame(kOutFd, wire::FrameType::kError, message, nullptr,
                      kPeer);
  } catch (...) {
  }
}

void handle_hello(const wire::Frame& frame, WorkerState& state) {
  const wire::Hello hello = wire::decode_hello(frame.payload, kPeer);
  const bds::data::CorpusSpec spec =
      bds::data::CorpusSpec::deserialize(hello.corpus_spec);
  state.proto = spec.make_oracle();
  state.machine = hello.machine;
  state.ground_size = hello.ground_size;
  wire::write_frame(kOutFd, wire::FrameType::kHelloAck,
                    wire::encode_hello_ack(static_cast<std::int64_t>(getpid())),
                    nullptr, kPeer);
}

void handle_request(const wire::Frame& frame, const WorkerState& state) {
  if (state.proto == nullptr) {
    send_error("bds_worker: request before hello");
    return;
  }
  const wire::AttemptRequest request =
      wire::decode_request(frame.payload, kPeer);
  const bds::dist::WorkerPlan& plan = request.plan;
  if (plan.kind == WorkerPlanKind::kCustom) {
    send_error("bds_worker: cannot execute custom (closure-only) work");
    return;
  }

  // Rebuild the coordinator's oracle state: same central construction,
  // same committed prefix replayed in order.
  const std::unique_ptr<bds::SubmodularOracle> central =
      bds::detail::make_central_oracle(*state.proto, plan.incremental_central);
  for (const bds::ElementId x : plan.committed) central->add(x);

  // Rehydrate the shard's warm-start certificates into a local store; the
  // worker functor reads them exactly as it would read the coordinator's.
  bds::detail::BoundStore bounds;
  if (plan.lazy_bounds) {
    bounds.reset(state.ground_size);
    for (std::size_t i = 0; i < request.bound_ids.size(); ++i) {
      bounds.record(request.bound_ids[i], request.bound_gains[i],
                    request.bound_prefixes[i]);
    }
  }

  bds::dist::Cluster::WorkerFn fn;
  if (plan.kind == WorkerPlanKind::kThreshold) {
    bds::detail::ThresholdWorkerConfig config;
    config.threshold = plan.threshold;
    config.budget = plan.budget;
    config.central = central.get();
    config.worker_oracle = plan.worker_oracle;
    fn = bds::detail::make_threshold_worker(config);
  } else {
    bds::detail::MachineWorkerConfig config;
    config.selector = plan.selector;
    config.stochastic_c = plan.stochastic_c;
    config.stop_when_no_gain = plan.stop_when_no_gain;
    config.budget = plan.budget;
    config.seed = plan.seed;
    config.round = plan.round;
    config.central = central.get();
    config.worker_oracle = plan.worker_oracle;
    if (plan.lazy_bounds) config.bounds = &bounds;
    fn = bds::detail::make_machine_worker(config);
  }

  wire::AttemptResponse response;
  bds::util::Timer timer;
  response.output = fn(request.machine, request.shard);
  response.seconds = timer.elapsed_seconds();

  wire::write_frame(kOutFd, wire::FrameType::kResponse,
                    wire::encode_response(response), nullptr, kPeer);

  if (request.fault == FaultKind::kCrash) {
    // Injected crash: die for real, post-reply, so the coordinator keeps
    // the attempt's telemetry but must respawn us for the retry.
    ::_exit(9);
  }
}

}  // namespace

int main() {
  WorkerState state;
  for (;;) {
    wire::Frame frame;
    try {
      if (wire::read_frame(kInFd, &frame, nullptr, kPeer) ==
          wire::IoStatus::kClosed) {
        return 0;  // coordinator hung up — orderly exit
      }
    } catch (const std::exception& e) {
      send_error(std::string("bds_worker: ") + e.what());
      return 1;
    }
    try {
      switch (frame.type) {
        case wire::FrameType::kHello:
          handle_hello(frame, state);
          break;
        case wire::FrameType::kRequest:
          handle_request(frame, state);
          break;
        case wire::FrameType::kShutdown:
          return 0;
        default:
          send_error("bds_worker: unexpected frame type " +
                     std::to_string(static_cast<unsigned>(frame.type)));
          break;
      }
    } catch (const std::exception& e) {
      // Report and keep serving: a failed attempt poisons neither the
      // oracle (rebuilt per request) nor the connection.
      send_error(std::string("bds_worker: ") + e.what());
    }
  }
}
