// §4.2 "Speed-ups of the distributed framework".
//
// Paper: on Wikipedia with k = 10 / 20 and m = ⌈√(N/k)⌉, the distributed
// one-round algorithm achieved > 32x / > 37x speed-up over the centralized
// lazy greedy, while returning > 99.6% / > 99.7% of its value; speed-ups
// grow with dataset size.
//
// Substitution note: the paper measured wall clock on a real cluster. Our
// cluster is simulated in-process, so the speed-up is reported in
// *critical-path work* terms: (centralized oracle evaluations) /
// (Σ_rounds max-machine evaluations + coordinator evaluations). Because
// every oracle evaluation costs the same (500-point sampled estimate on
// both sides), evaluation counts are proportional to machine-seconds on a
// real deployment. Host wall-clock for both runs is also printed.
#include <cstdio>
#include <memory>

#include "bench_support.h"
#include "core/baselines.h"
#include "core/bicriteria.h"
#include "data/vectors_gen.h"
#include "objectives/exemplar.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {
constexpr double kP0Dist = 2.0;
constexpr std::size_t kSample = 500;
}  // namespace

int main() {
  using namespace bds;
  bench::print_banner(
      "speedup", "§4.2 speed-up paragraph",
      "centralized lazy greedy vs one-round distributed run on\n"
      "Wikipedia-like vectors; k in {10, 20}; N sweep shows the speed-up\n"
      "growing with dataset size (paper: >32x at k=10, >37x at k=20, with\n"
      ">99.6% / >99.7% of the centralized value).");

  util::Table table({"N", "k", "m", "speedup (critical-path evals)",
                     "value vs centralized", "central wall (s)",
                     "distributed wall (s)"});

  for (const std::uint32_t n : {5'000u, 10'000u, 20'000u, 40'000u}) {
    data::LdaVectorsConfig cfg_data;
    cfg_data.documents = n;
    cfg_data.topics = 100;
    cfg_data.clusters = 30;
    cfg_data.seed = 11;
    const auto points = data::make_lda_like_vectors(cfg_data);
    const auto ground = bench::iota_ids(points->size());

    for (const std::size_t k : {10u, 20u}) {
      // Both sides use the same estimation oracle (500-point sample), so
      // per-evaluation cost matches and eval counts compare fairly.
      util::Rng central_rng(29);
      const SampledExemplarOracle proto(points, kP0Dist, kSample,
                                        central_rng);

      util::Timer central_timer;
      const auto central = centralized_greedy(proto, ground, k);
      const double central_wall = central_timer.elapsed_seconds();
      const auto central_evals = central.stats.rounds[0].worker_evals;

      BicriteriaConfig cfg;
      cfg.mode = BicriteriaMode::kPractical;
      cfg.k = k;
      cfg.output_items = k;
      cfg.rounds = 1;
      cfg.runtime.seed = 5;
      cfg.machine_oracle_factory =
          [&points](std::size_t machine)
          -> std::unique_ptr<SubmodularOracle> {
        util::Rng rng(util::mix64(400 + machine));
        return std::make_unique<SampledExemplarOracle>(points, kP0Dist,
                                                       kSample, rng);
      };
      util::Timer dist_timer;
      const auto dist = bicriteria_greedy(proto, ground, cfg);
      const double dist_wall = dist_timer.elapsed_seconds();

      // Exact values for the quality comparison.
      const ExemplarOracle exact(points, kP0Dist);
      const double central_value = evaluate_set(exact, central.solution);
      const double dist_value = evaluate_set(exact, dist.solution);

      const double speedup =
          double(central_evals) /
          double(std::max<std::uint64_t>(1, dist.stats.critical_path_evals()));
      table.add_row({util::Table::fmt_int(n), util::Table::fmt_int(k),
                     util::Table::fmt_int(dist.rounds[0].machines),
                     util::Table::fmt(speedup, 1) + "x",
                     util::Table::fmt_pct(dist_value / central_value),
                     util::Table::fmt(central_wall, 2),
                     util::Table::fmt(dist_wall, 2)});
    }
  }
  bench::emit_table(table, "speedup",
                    {"n", "k", "m", "speedup", "value_ratio", "central_wall",
                     "dist_wall"});

  std::printf(
      "expected shape: speed-up grows roughly like sqrt(N/k) (the paper's\n"
      "m), reaching the paper's >30x regime as N grows, while the\n"
      "distributed value stays within a fraction of a percent of the\n"
      "centralized one (paper: >99.6%%).\n");
  return 0;
}
