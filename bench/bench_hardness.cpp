// Theorem 3.1, measured: a one-distributed-round algorithm needs Ω(k/ε)
// output items to reach a (1−ε)-approximation on the lower-bound instance.
//
// For each ε the harness builds the construction, runs the one-round
// distributed greedy with growing output budgets, and reports the smallest
// budget that clears the (1−ε) target — against the k/ε scaling the theorem
// predicts and the k·ln(1/ε) a *centralized* algorithm needs on the same
// instance (the polynomial-vs-logarithmic separation of §3).
#include <cmath>
#include <cstdio>

#include "bench_support.h"
#include "core/baselines.h"
#include "core/hardness.h"
#include "objectives/coverage.h"
#include "util/stats.h"

int main() {
  using namespace bds;
  bench::print_banner(
      "hardness", "Theorem 3.1 (one-round lower bound)",
      "smallest one-round output budget reaching a (1-eps) approximation on\n"
      "the A/B/C construction, vs the k/eps lower-bound scaling and the\n"
      "centralized k*ln(1/eps) reference.");

  const std::size_t k = 10;
  constexpr int kTrials = 3;

  util::Table table({"eps", "target ratio", "1-round budget needed",
                     "k/eps", "ratio at budget k", "centralized items needed",
                     "k*ln(1/eps)"});

  for (const double eps : {0.25, 0.125, 0.0625, 0.04}) {
    HardnessConfig cfg;
    cfg.k = k;
    cfg.epsilon = eps;
    // Universe large enough that every B-chunk has many elements even for
    // small eps. The lower bound lives in the memory-limited regime: each
    // machine's shard (n/m items) must dwarf the per-machine output budget,
    // so n is large relative to m·budget; m >> k isolates the B-sets.
    cfg.universe = static_cast<std::uint32_t>(std::lround(80.0 * k / eps));
    cfg.total_items = 20'000;

    double needed_sum = 0.0;
    double ratio_at_k_sum = 0.0;
    for (int trial = 0; trial < kTrials; ++trial) {
      cfg.seed = 100 + trial;
      const auto instance = make_hardness_instance(cfg);
      const CoverageOracle oracle(instance.sets);
      const auto items = instance.all_items();
      const double opt = instance.config.universe;

      // Grow the budget until the one-round run clears (1-eps)·OPT.
      std::size_t needed = 0;
      for (std::size_t budget = k;; budget += k) {
        OneRoundConfig rc;
        rc.k = budget;
        rc.machines = 64;
        rc.runtime.seed = 1'000 + trial;
        const auto result = rand_greedi(oracle, items, rc);
        const double ratio = result.value / opt;
        if (budget == k) ratio_at_k_sum += ratio;
        if (ratio >= 1.0 - eps || budget > 40 * k) {
          needed = budget;
          break;
        }
      }
      needed_sum += double(needed);
    }

    // Centralized column measured once (it is seed-stable on this instance).
    cfg.seed = 100;
    const auto instance = make_hardness_instance(cfg);
    const CoverageOracle oracle(instance.sets);
    const auto items = instance.all_items();
    const double opt = instance.config.universe;
    const auto central = centralized_greedy(oracle, items, 6 * k);
    auto probe = oracle.clone();
    std::size_t central_needed = 6 * k;
    for (std::size_t i = 0; i < central.solution.size(); ++i) {
      probe->add(central.solution[i]);
      if (probe->value() >= (1.0 - eps) * opt) {
        central_needed = i + 1;
        break;
      }
    }

    table.add_row(
        {util::Table::fmt(eps, 4), util::Table::fmt_pct(1.0 - eps),
         util::Table::fmt(needed_sum / kTrials, 0),
         util::Table::fmt(double(k) / eps, 0),
         util::Table::fmt_pct(ratio_at_k_sum / kTrials),
         util::Table::fmt_int(central_needed),
         util::Table::fmt(k * std::log(1.0 / eps), 1)});
  }
  bench::emit_table(table, "hardness",
                    {"eps", "target", "one_round_needed", "k_over_eps",
                     "ratio_at_k", "central_needed", "k_ln_inv_eps"});

  std::printf(
      "expected shape: the one-round budget needed grows polynomially in\n"
      "1/eps (tracking k/eps), while the centralized algorithm needs only\n"
      "~k items on this instance — the polynomial-vs-logarithmic separation\n"
      "of Section 3. The budget-k ratio stays below the target for small\n"
      "eps.\n");
  return 0;
}
