// Figure 2: exemplar-based clustering.
//
// Paper setup (§4.2): target size K = 10, one distributed round,
// m = ⌈√(N/k)⌉; machines run the *lazier-than-lazy* stochastic greedy
// (c = 3) and estimate the objective on an independent 500-point sample
// each; reported values are always exact. Datasets: Wikipedia LDA vectors
// (100 dims) and TinyImages (3072 dims, JL-projected to 300 before
// optimization) — replaced by structure-matched synthetic stand-ins
// (Dirichlet-mixture topic vectors; Gaussian-mixture image vectors).
//
// Paper's observations this must reproduce: at k = 2K the ratio is already
// ≥ ~87-88% of the upper bound, rising with k, with a large gap to random;
// one round suffices.
#include <cstdio>
#include <memory>

#include "bench_support.h"
#include "core/bicriteria.h"
#include "core/greedy.h"
#include "core/upper_bound.h"
#include "data/vectors_gen.h"
#include "objectives/exemplar.h"
#include "objectives/jl_projection.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

constexpr double kP0Dist = 2.0;     // phantom exemplar distance (paper)
constexpr std::size_t kSample = 500;  // per-machine estimation sample (paper)

struct Dataset {
  std::string name;
  std::shared_ptr<const bds::PointSet> optimize_on;  // possibly projected
  std::shared_ptr<const bds::PointSet> score_on;     // always the originals
};

}  // namespace

int main() {
  using namespace bds;
  bench::print_banner(
      "fig2", "Figure 2 (§4.2, exemplar-based clustering)",
      "value/upper-bound vs output size k (K = 10, r = 1) on Wikipedia-like\n"
      "LDA vectors and TinyImages-like vectors (JL 3072->300), sampled\n"
      "machine oracles (500 points), stochastic greedy c = 3; exact "
      "reporting.");

  util::Timer gen_timer;
  data::LdaVectorsConfig wiki_cfg;
  wiki_cfg.documents = 10'000;
  wiki_cfg.topics = 100;
  wiki_cfg.clusters = 30;
  wiki_cfg.seed = 11;
  const auto wiki = data::make_lda_like_vectors(wiki_cfg);

  data::ImageVectorsConfig img_cfg;
  img_cfg.images = 4'000;
  img_cfg.dim = 3'072;
  img_cfg.clusters = 40;
  img_cfg.seed = 13;
  const auto images = data::make_image_like_vectors(img_cfg);
  std::printf("dataset generation: %.1fs\n", gen_timer.elapsed_seconds());

  util::Timer jl_timer;
  const auto images_projected =
      std::make_shared<const PointSet>(jl_project(*images, 300, 99));
  std::printf("JL projection 3072 -> 300: %.1fs\n\n",
              jl_timer.elapsed_seconds());

  const std::vector<Dataset> datasets{
      {"Wikipedia-like (100d)", wiki, wiki},
      {"TinyImages-like (3072d, JL->300)", images_projected, images},
  };

  const std::size_t K = 10;
  const std::vector<std::size_t> ks{10, 20, 30, 40, 50};

  for (const auto& dataset : datasets) {
    bench::print_section(dataset.name);
    std::printf("points: %zu, optimize dim: %zu, score dim: %zu\n",
                dataset.score_on->size(), dataset.optimize_on->dim(),
                dataset.score_on->dim());

    // Machines estimate on the (projected) optimization vectors; the
    // coordinator also uses a sampled oracle, seeded separately.
    const auto optimize_on = dataset.optimize_on;
    util::Rng central_rng(31);
    const SampledExemplarOracle central_proto(optimize_on, kP0Dist, kSample,
                                              central_rng);
    const ExemplarOracle exact_proto(dataset.score_on, kP0Dist);
    const auto ground = bench::iota_ids(optimize_on->size());

    std::vector<double> exact_values;
    std::vector<std::vector<ElementId>> solutions;
    util::Timer run_timer;
    for (const std::size_t k : ks) {
      BicriteriaConfig cfg;
      cfg.mode = BicriteriaMode::kPractical;
      cfg.k = K;
      cfg.output_items = k;
      cfg.rounds = 1;
      cfg.runtime.seed = 5;
      cfg.selector = MachineSelector::kStochasticGreedy;
      cfg.stochastic_c = 3.0;
      cfg.machine_oracle_factory =
          [&optimize_on](std::size_t machine)
          -> std::unique_ptr<SubmodularOracle> {
        util::Rng rng(util::mix64(7'000 + machine));
        return std::make_unique<SampledExemplarOracle>(optimize_on, kP0Dist,
                                                       kSample, rng);
      };
      auto result = bicriteria_greedy(central_proto, ground, cfg);

      // Exact scoring on the original vectors.
      auto scorer = exact_proto.clone();
      for (const ElementId x : result.solution) scorer->add(x);
      exact_values.push_back(scorer->value());
      solutions.push_back(std::move(result.solution));
    }
    std::printf("distributed runs: %.1fs\n", run_timer.elapsed_seconds());

    // Upper bounds with sampled marginals over the original vectors (the
    // paper estimates the UB marginals from a 500-point sample too). The
    // per-k bound is the paper's plotted denominator (<= 100%, saturating);
    // the best bound makes >100% entries certify beating the K-optimum.
    util::Timer ub_timer;
    util::Rng ub_rng(47);
    const SampledExemplarOracle ub_proto(dataset.score_on, kP0Dist, kSample,
                                         ub_rng);
    std::vector<double> per_k_ub;
    double best_ub = exact_proto.max_value();
    for (const auto& s : solutions) {
      per_k_ub.push_back(solution_upper_bound(ub_proto, s, ground, K));
      best_ub = std::min(best_ub, per_k_ub.back());
    }
    std::printf("best upper bound on f(OPT_%zu): %.1f (%.1fs)\n", K, best_ub,
                ub_timer.elapsed_seconds());

    util::Table table({"k", "vs per-k UB", "vs best UB",
                       "random vs best UB"});
    for (std::size_t i = 0; i < ks.size(); ++i) {
      auto rnd_oracle = exact_proto.clone();
      util::Rng rng(60 + i);
      const double rnd =
          random_subset(*rnd_oracle, ground, ks[i], rng).gained;
      table.add_row({util::Table::fmt_int(ks[i]),
                     util::Table::fmt_pct(exact_values[i] / per_k_ub[i]),
                     util::Table::fmt_pct(exact_values[i] / best_ub),
                     util::Table::fmt_pct(rnd / best_ub)});
    }
    bench::emit_table(table, "fig2_" + dataset.name.substr(0, 9),
                      {"k", "vs_per_k_ub", "vs_best_ub", "random"});
  }

  std::printf(
      "expected shape: ratio rises with k, clearing ~87-88%% by k = 2K on\n"
      "both datasets (paper: >87%% Wikipedia, 88%% TinyImages), with random\n"
      "well below; the JL-projected pipeline tracks the direct one.\n");
  return 0;
}
