// bench_serve — open-loop latency benchmark for the summary service.
//
// Queries arrive on a fixed-rate schedule (open loop: a query's latency is
// measured from its *scheduled* arrival to its answer, so service-side
// queueing is charged to the service, not hidden by a blocked client).
// Budgets are drawn Zipf over a ladder, the recurring-workload shape the
// cache targets: a handful of configurations dominate, so after the first
// miss per configuration almost everything is a prefix hit.
//
//   $ build/bench/bench_serve --json > BENCH_SERVE.json
//   $ build/bench/bench_serve --smoke --json
//
// Reports p50/p99/mean latency overall and split cached (hit + coalesced)
// vs uncached (computed), throughput, hit rate, and oracle evals
// saved/spent. --smoke shrinks the workload and turns the comparison into
// an exit gate: cached p50 must land below uncached p50, or the run fails —
// the regression check CI runs on every push.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/registry.h"
#include "data/graph_gen.h"
#include "objectives/coverage.h"
#include "serve/service.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/zipf.h"

namespace {

using namespace bds;
using Clock = std::chrono::steady_clock;

constexpr const char* kUsage = R"(usage: bench_serve [options]
  --nodes N        coverage corpus size              (default 4000)
  --queries N      open-loop query count             (default 64)
  --clients C      client threads draining arrivals  (default 4)
  --rate R         arrivals per second               (default 50)
  --k-base K       budget ladder base                (default 8)
  --ladder L       budget ladder rungs k, 2k, 4k...  (default 4)
  --zipf S         Zipf exponent over the ladder     (default 1.1)
  --algorithm NAME registered algorithm              (default bicriteria)
  --seed S         corpus + runtime seed             (default 1)
  --json           print the JSON report to stdout
  --out FILE       also write the JSON report to FILE
  --smoke          small workload + exit gate: cached p50 < uncached p50
  --help           this text
)";

struct Sample {
  serve::ServeOutcome outcome;
  double latency = 0.0;  // scheduled arrival -> answer
};

struct Percentiles {
  std::size_t count = 0;
  double p50 = 0.0;
  double p99 = 0.0;
  double mean = 0.0;
  double max = 0.0;
};

Percentiles summarize(const std::vector<double>& xs) {
  Percentiles p;
  p.count = xs.size();
  if (xs.empty()) return p;
  p.p50 = util::percentile(xs, 0.50);
  p.p99 = util::percentile(xs, 0.99);
  p.mean = util::mean_of(xs);
  p.max = *std::max_element(xs.begin(), xs.end());
  return p;
}

void append_percentiles(std::ostringstream& out, const char* name,
                        const Percentiles& p) {
  out << "\"" << name << "\":{\"count\":" << p.count << ",\"p50\":" << p.p50
      << ",\"p99\":" << p.p99 << ",\"mean\":" << p.mean << ",\"max\":" << p.max
      << "}";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Flags flags(argc, argv);
    if (flags.has("help")) {
      std::printf("%s", kUsage);
      return 0;
    }
    const bool smoke = flags.get_bool("smoke", false);
    const std::uint64_t seed = flags.get_uint("seed", 1);
    const std::string algorithm =
        flags.get_string("algorithm", "bicriteria");
    const auto nodes = static_cast<std::uint32_t>(
        flags.get_uint("nodes", smoke ? 2'000 : 4'000));
    const std::size_t n_queries =
        flags.get_uint("queries", smoke ? 24 : 64);
    const std::size_t clients =
        std::max<std::uint64_t>(1, flags.get_uint("clients", smoke ? 2 : 4));
    const double rate = flags.get_double("rate", 50.0);
    const std::size_t k_base = flags.get_uint("k-base", 8);
    const std::size_t ladder = std::max<std::uint64_t>(
        1, flags.get_uint("ladder", smoke ? 2 : 4));
    const double zipf_s = flags.get_double("zipf", 1.1);

    const auto sets = data::make_dblp_like(nodes, seed);
    const auto oracle = std::make_shared<CoverageOracle>(sets);

    serve::SummaryService service{serve::ServiceOptions{}};
    service.add_corpus("corpus", "coverage", oracle);

    // Zipf-over-budgets workload: rank r -> budget k_base * 2^r, rank 0
    // (the smallest budget) most frequent.
    util::Rng rng(seed);
    const util::ZipfSampler zipf(ladder, zipf_s);
    std::vector<serve::Query> queries(n_queries);
    for (std::size_t i = 0; i < n_queries; ++i) {
      queries[i].corpus = "corpus";
      queries[i].algorithm = algorithm;
      queries[i].k = k_base << zipf.sample(rng);
      queries[i].tenant = "tenant-" + std::to_string(i % 3);
      queries[i].runtime.seed = seed;
    }

    // Open loop: query i is scheduled at i / rate seconds after start.
    // Clients pull the next arrival, wait for its scheduled time if they
    // are early, and charge any lateness (service backlog) to the latency.
    std::vector<Sample> samples(n_queries);
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> failures{0};
    const auto start = Clock::now();
    auto client = [&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= n_queries) return;
        const auto arrival =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(
                            static_cast<double>(i) / rate));
        std::this_thread::sleep_until(arrival);
        try {
          const serve::ServeResult r = service.query(queries[i]);
          samples[i].outcome = r.outcome;
          samples[i].latency =
              std::chrono::duration<double>(Clock::now() - arrival).count();
        } catch (const std::exception& e) {
          std::fprintf(stderr, "query %zu failed: %s\n", i, e.what());
          failures.fetch_add(1);
        }
      }
    };
    std::vector<std::thread> workers;
    for (std::size_t c = 0; c < clients; ++c) workers.emplace_back(client);
    for (auto& w : workers) w.join();
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (failures.load() != 0) return 1;

    std::vector<double> all, cached, uncached;
    for (const Sample& s : samples) {
      all.push_back(s.latency);
      if (s.outcome == serve::ServeOutcome::kHit ||
          s.outcome == serve::ServeOutcome::kCoalesced ||
          s.outcome == serve::ServeOutcome::kDegraded) {
        cached.push_back(s.latency);
      } else {
        uncached.push_back(s.latency);
      }
    }
    const Percentiles p_all = summarize(all);
    const Percentiles p_cached = summarize(cached);
    const Percentiles p_uncached = summarize(uncached);
    const serve::ServiceStats stats = service.stats();
    const serve::CacheStats cache = service.cache_stats();

    std::ostringstream json;
    json << "{\"bench\":\"serve\",\"config\":{\"nodes\":" << nodes
         << ",\"queries\":" << n_queries << ",\"clients\":" << clients
         << ",\"rate_qps\":" << rate << ",\"k_base\":" << k_base
         << ",\"ladder\":" << ladder << ",\"zipf\":" << zipf_s
         << ",\"algorithm\":\"" << algorithm << "\",\"seed\":" << seed
         << ",\"smoke\":" << (smoke ? "true" : "false") << "},"
         << "\"elapsed_seconds\":" << elapsed
         << ",\"throughput_qps\":" << static_cast<double>(n_queries) / elapsed
         << ",\"hit_rate\":" << stats.hit_rate()
         << ",\"outcomes\":{\"hits\":" << stats.hits
         << ",\"coalesced\":" << stats.coalesced
         << ",\"computed\":" << stats.computed
         << ",\"degraded\":" << stats.degraded
         << ",\"rejected\":" << stats.rejected << "},"
         << "\"evals\":{\"saved\":" << stats.evals_saved
         << ",\"spent\":" << stats.evals_spent << "},"
         << "\"cache\":{\"insertions\":" << cache.insertions
         << ",\"replacements\":" << cache.replacements
         << ",\"evictions\":" << cache.evictions << "},";
    append_percentiles(json, "latency_seconds", p_all);
    json << ",";
    append_percentiles(json, "cached_latency_seconds", p_cached);
    json << ",";
    append_percentiles(json, "uncached_latency_seconds", p_uncached);
    json << "}";

    const std::string report = json.str();
    if (flags.get_bool("json", false)) std::printf("%s\n", report.c_str());
    if (flags.has("out")) {
      std::ofstream out(flags.get_string("out", "BENCH_SERVE.json"));
      out << report << "\n";
    }
    if (!flags.get_bool("json", false)) {
      std::printf(
          "serve: %zu queries in %.2fs (%.1f qps), hit rate %.0f%%\n"
          "  latency p50/p99: %.4fs / %.4fs\n"
          "  cached   p50: %.6fs over %zu queries\n"
          "  uncached p50: %.6fs over %zu queries\n"
          "  oracle evals saved/spent: %llu / %llu\n",
          n_queries, elapsed, static_cast<double>(n_queries) / elapsed,
          100.0 * stats.hit_rate(), p_all.p50, p_all.p99, p_cached.p50,
          p_cached.count, p_uncached.p50, p_uncached.count,
          static_cast<unsigned long long>(stats.evals_saved),
          static_cast<unsigned long long>(stats.evals_spent));
    }

    if (smoke) {
      if (p_cached.count == 0 || p_uncached.count == 0) {
        std::fprintf(stderr,
                     "smoke gate: need both cached and uncached samples "
                     "(%zu cached, %zu uncached)\n",
                     p_cached.count, p_uncached.count);
        return 1;
      }
      if (p_cached.p50 >= p_uncached.p50) {
        std::fprintf(stderr,
                     "smoke gate: cached p50 %.6fs not below uncached p50 "
                     "%.6fs\n",
                     p_cached.p50, p_uncached.p50);
        return 1;
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n%s", e.what(), kUsage);
    return 1;
  }
}
