// bench_serve — open-loop latency benchmark for the summary service.
//
// Queries arrive on a fixed-rate schedule (open loop: a query's latency is
// measured from its *scheduled* arrival to its answer, so service-side
// queueing is charged to the service, not hidden by a blocked client).
// Budgets are drawn Zipf over a ladder, the recurring-workload shape the
// cache targets: a handful of configurations dominate, so after the first
// miss per configuration almost everything is a prefix hit.
//
//   $ build/bench/bench_serve --json > BENCH_SERVE.json
//   $ build/bench/bench_serve --smoke --json
//
// Reports p50/p99/mean latency overall and split cached (hit + coalesced)
// vs uncached (computed), throughput, hit rate, and oracle evals
// saved/spent. --smoke shrinks the workload and turns the comparison into
// an exit gate: cached p50 must land below uncached p50, or the run fails —
// the regression check CI runs on every push.
//
// The report also carries a `warm_start` section: on a fresh service, two
// queries that differ only in epsilon (distinct cache keys, so both are
// uncached computes) run under forced-lazy and forced-eager accounting.
// The second lazy query warm-starts from the corpus's certified singleton
// bounds seeded by the first, so it avoids the initial full-corpus scans —
// the cross-query leg of the lazy-bound substrate (core/bound_heap.h).
// Answers must be bitwise identical across all four runs; under --smoke
// that identity plus second_avoided > first_avoided is an exit gate.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/bound_heap.h"
#include "core/registry.h"
#include "data/graph_gen.h"
#include "objectives/coverage.h"
#include "serve/service.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/zipf.h"

namespace {

using namespace bds;
using Clock = std::chrono::steady_clock;

constexpr const char* kUsage = R"(usage: bench_serve [options]
  --nodes N        coverage corpus size              (default 4000)
  --queries N      open-loop query count             (default 64)
  --clients C      client threads draining arrivals  (default 4)
  --rate R         arrivals per second               (default 50)
  --k-base K       budget ladder base                (default 8)
  --ladder L       budget ladder rungs k, 2k, 4k...  (default 4)
  --zipf S         Zipf exponent over the ladder     (default 1.1)
  --algorithm NAME registered algorithm              (default bicriteria)
  --seed S         corpus + runtime seed             (default 1)
  --json           print the JSON report to stdout
  --out FILE       also write the JSON report to FILE
  --smoke          small workload + exit gate: cached p50 < uncached p50
  --help           this text
)";

struct Sample {
  serve::ServeOutcome outcome;
  double latency = 0.0;  // scheduled arrival -> answer
};

struct Percentiles {
  std::size_t count = 0;
  double p50 = 0.0;
  double p99 = 0.0;
  double mean = 0.0;
  double max = 0.0;
};

Percentiles summarize(const std::vector<double>& xs) {
  Percentiles p;
  p.count = xs.size();
  if (xs.empty()) return p;
  p.p50 = util::percentile(xs, 0.50);
  p.p99 = util::percentile(xs, 0.99);
  p.mean = util::mean_of(xs);
  p.max = *std::max_element(xs.begin(), xs.end());
  return p;
}

void append_percentiles(std::ostringstream& out, const char* name,
                        const Percentiles& p) {
  out << "\"" << name << "\":{\"count\":" << p.count << ",\"p50\":" << p.p50
      << ",\"p99\":" << p.p99 << ",\"mean\":" << p.mean << ",\"max\":" << p.max
      << "}";
}

// Two uncached queries (distinct epsilon → distinct cache keys, identical
// runs — practical bicriteria ignores epsilon) on a fresh service, under
// one forced lazy state. per-query evals come from stats() deltas.
struct WarmProbe {
  serve::ServeResult first;
  serve::ServeResult second;
  std::uint64_t first_spent = 0;
  std::uint64_t second_spent = 0;
};

WarmProbe run_warm_probe(bool lazy_on,
                         const std::shared_ptr<CoverageOracle>& oracle,
                         const std::string& algorithm, std::size_t k,
                         std::uint64_t seed) {
  const detail::ForcedLazy guard(lazy_on);
  serve::SummaryService probe{serve::ServiceOptions{}};
  probe.add_corpus("corpus", "coverage", oracle);
  serve::Query q;
  q.corpus = "corpus";
  q.algorithm = algorithm;
  q.k = k;
  q.output_items = 2 * k;
  q.rounds = 2;
  q.tenant = "tenant-warm";
  q.runtime.seed = seed;
  WarmProbe w;
  q.epsilon = 0.1;
  w.first = probe.query(q);
  w.first_spent = probe.stats().evals_spent;
  q.epsilon = 0.2;
  w.second = probe.query(q);
  w.second_spent = probe.stats().evals_spent - w.first_spent;
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Flags flags(argc, argv);
    if (flags.has("help")) {
      std::printf("%s", kUsage);
      return 0;
    }
    const bool smoke = flags.get_bool("smoke", false);
    const std::uint64_t seed = flags.get_uint("seed", 1);
    const std::string algorithm =
        flags.get_string("algorithm", "bicriteria");
    const auto nodes = static_cast<std::uint32_t>(
        flags.get_uint("nodes", smoke ? 2'000 : 4'000));
    const std::size_t n_queries =
        flags.get_uint("queries", smoke ? 24 : 64);
    const std::size_t clients =
        std::max<std::uint64_t>(1, flags.get_uint("clients", smoke ? 2 : 4));
    const double rate = flags.get_double("rate", 50.0);
    const std::size_t k_base = flags.get_uint("k-base", 8);
    const std::size_t ladder = std::max<std::uint64_t>(
        1, flags.get_uint("ladder", smoke ? 2 : 4));
    const double zipf_s = flags.get_double("zipf", 1.1);

    const auto sets = data::make_dblp_like(nodes, seed);
    const auto oracle = std::make_shared<CoverageOracle>(sets);

    serve::SummaryService service{serve::ServiceOptions{}};
    service.add_corpus("corpus", "coverage", oracle);

    // Zipf-over-budgets workload: rank r -> budget k_base * 2^r, rank 0
    // (the smallest budget) most frequent.
    util::Rng rng(seed);
    const util::ZipfSampler zipf(ladder, zipf_s);
    std::vector<serve::Query> queries(n_queries);
    for (std::size_t i = 0; i < n_queries; ++i) {
      queries[i].corpus = "corpus";
      queries[i].algorithm = algorithm;
      queries[i].k = k_base << zipf.sample(rng);
      queries[i].tenant = "tenant-" + std::to_string(i % 3);
      queries[i].runtime.seed = seed;
    }

    // Open loop: query i is scheduled at i / rate seconds after start.
    // Clients pull the next arrival, wait for its scheduled time if they
    // are early, and charge any lateness (service backlog) to the latency.
    std::vector<Sample> samples(n_queries);
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> failures{0};
    const auto start = Clock::now();
    auto client = [&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= n_queries) return;
        const auto arrival =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(
                            static_cast<double>(i) / rate));
        std::this_thread::sleep_until(arrival);
        try {
          const serve::ServeResult r = service.query(queries[i]);
          samples[i].outcome = r.outcome;
          samples[i].latency =
              std::chrono::duration<double>(Clock::now() - arrival).count();
        } catch (const std::exception& e) {
          std::fprintf(stderr, "query %zu failed: %s\n", i, e.what());
          failures.fetch_add(1);
        }
      }
    };
    std::vector<std::thread> workers;
    for (std::size_t c = 0; c < clients; ++c) workers.emplace_back(client);
    for (auto& w : workers) w.join();
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (failures.load() != 0) return 1;

    std::vector<double> all, cached, uncached;
    for (const Sample& s : samples) {
      all.push_back(s.latency);
      if (s.outcome == serve::ServeOutcome::kHit ||
          s.outcome == serve::ServeOutcome::kCoalesced ||
          s.outcome == serve::ServeOutcome::kDegraded) {
        cached.push_back(s.latency);
      } else {
        uncached.push_back(s.latency);
      }
    }
    const Percentiles p_all = summarize(all);
    const Percentiles p_cached = summarize(cached);
    const Percentiles p_uncached = summarize(uncached);
    const serve::ServiceStats stats = service.stats();
    const serve::CacheStats cache = service.cache_stats();

    const WarmProbe lazy_probe =
        run_warm_probe(true, oracle, algorithm, k_base, seed);
    const WarmProbe eager_probe =
        run_warm_probe(false, oracle, algorithm, k_base, seed);
    const bool warm_identical =
        lazy_probe.first.solution == eager_probe.first.solution &&
        lazy_probe.second.solution == eager_probe.second.solution &&
        lazy_probe.first.solution == lazy_probe.second.solution &&
        lazy_probe.first.value == eager_probe.first.value &&
        lazy_probe.second.value == eager_probe.second.value;

    std::ostringstream json;
    json << "{\"bench\":\"serve\",\"config\":{\"nodes\":" << nodes
         << ",\"queries\":" << n_queries << ",\"clients\":" << clients
         << ",\"rate_qps\":" << rate << ",\"k_base\":" << k_base
         << ",\"ladder\":" << ladder << ",\"zipf\":" << zipf_s
         << ",\"algorithm\":\"" << algorithm << "\",\"seed\":" << seed
         << ",\"smoke\":" << (smoke ? "true" : "false")
         << ",\"hardware_concurrency\":" << std::thread::hardware_concurrency()
         << "},"
         << "\"elapsed_seconds\":" << elapsed
         << ",\"throughput_qps\":" << static_cast<double>(n_queries) / elapsed
         << ",\"hit_rate\":" << stats.hit_rate()
         << ",\"outcomes\":{\"hits\":" << stats.hits
         << ",\"coalesced\":" << stats.coalesced
         << ",\"computed\":" << stats.computed
         << ",\"degraded\":" << stats.degraded
         << ",\"rejected\":" << stats.rejected << "},"
         << "\"evals\":{\"saved\":" << stats.evals_saved
         << ",\"spent\":" << stats.evals_spent << "},"
         << "\"cache\":{\"insertions\":" << cache.insertions
         << ",\"replacements\":" << cache.replacements
         << ",\"evictions\":" << cache.evictions << "},"
         << "\"warm_start\":{\"identical_answers\":"
         << (warm_identical ? "true" : "false")
         << ",\"lazy\":{\"first_spent\":" << lazy_probe.first_spent
         << ",\"second_spent\":" << lazy_probe.second_spent
         << ",\"first_avoided\":" << lazy_probe.first.evals_avoided
         << ",\"second_avoided\":" << lazy_probe.second.evals_avoided << "}"
         << ",\"eager\":{\"first_spent\":" << eager_probe.first_spent
         << ",\"second_spent\":" << eager_probe.second_spent << "}"
         << ",\"uncached_eval_drop\":"
         << (lazy_probe.second_spent > 0
                 ? static_cast<double>(eager_probe.second_spent) /
                       static_cast<double>(lazy_probe.second_spent)
                 : 0.0)
         << "},";
    append_percentiles(json, "latency_seconds", p_all);
    json << ",";
    append_percentiles(json, "cached_latency_seconds", p_cached);
    json << ",";
    append_percentiles(json, "uncached_latency_seconds", p_uncached);
    json << "}";

    const std::string report = json.str();
    if (flags.get_bool("json", false)) std::printf("%s\n", report.c_str());
    if (flags.has("out")) {
      std::ofstream out(flags.get_string("out", "BENCH_SERVE.json"));
      out << report << "\n";
    }
    if (!flags.get_bool("json", false)) {
      std::printf(
          "serve: %zu queries in %.2fs (%.1f qps), hit rate %.0f%%\n"
          "  latency p50/p99: %.4fs / %.4fs\n"
          "  cached   p50: %.6fs over %zu queries\n"
          "  uncached p50: %.6fs over %zu queries\n"
          "  oracle evals saved/spent: %llu / %llu\n",
          n_queries, elapsed, static_cast<double>(n_queries) / elapsed,
          100.0 * stats.hit_rate(), p_all.p50, p_all.p99, p_cached.p50,
          p_cached.count, p_uncached.p50, p_uncached.count,
          static_cast<unsigned long long>(stats.evals_saved),
          static_cast<unsigned long long>(stats.evals_spent));
    }

    if (smoke) {
      if (p_cached.count == 0 || p_uncached.count == 0) {
        std::fprintf(stderr,
                     "smoke gate: need both cached and uncached samples "
                     "(%zu cached, %zu uncached)\n",
                     p_cached.count, p_uncached.count);
        return 1;
      }
      // The latency comparison is a timing assertion; on a single-core
      // container the client threads contend for the one core and cached
      // p50 can legitimately exceed uncached p50. Skip it explicitly there
      // (hardware_concurrency is recorded in the report either way) — the
      // correctness gates below still run.
      if (std::thread::hardware_concurrency() < 2) {
        std::fprintf(stderr,
                     "SKIP: cached-vs-uncached p50 gate needs >= 2 hardware "
                     "threads, host has %u\n",
                     std::thread::hardware_concurrency());
      } else if (p_cached.p50 >= p_uncached.p50) {
        std::fprintf(stderr,
                     "smoke gate: cached p50 %.6fs not below uncached p50 "
                     "%.6fs\n",
                     p_cached.p50, p_uncached.p50);
        return 1;
      }
      if (!warm_identical) {
        std::fprintf(stderr,
                     "smoke gate: warm-start answers differ across lazy/"
                     "eager accounting — bound carrying must be a pure "
                     "eval-count optimization\n");
        return 1;
      }
      if (lazy_probe.second.evals_avoided <=
          lazy_probe.first.evals_avoided) {
        std::fprintf(stderr,
                     "smoke gate: second uncached query avoided %llu evals, "
                     "not more than the first's %llu — the singleton-bound "
                     "warm start is not pruning\n",
                     static_cast<unsigned long long>(
                         lazy_probe.second.evals_avoided),
                     static_cast<unsigned long long>(
                         lazy_probe.first.evals_avoided));
        return 1;
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n%s", e.what(), kUsage);
    return 1;
  }
}
