// Microbenchmarks (google-benchmark) for the performance-critical
// primitives: oracle evaluations (scalar vs batched vs parallel-batched),
// the greedy selector family, and the partitioners. These are throughput
// sanity checks, not paper artifacts.
//
// Extra flag on top of the google-benchmark ones:
//   --json[=path]   after the run, write ns/eval per objective for the
//                   scalar / batch / parallel-batch gain paths (plus the
//                   batch speedups) to `path` (default BENCH_micro.json).
#include <benchmark/benchmark.h>

#include <cstddef>
#include <fstream>
#include <map>
#include <memory>
#include <numeric>
#include <string>
#include <string_view>
#include <vector>

#include "core/batch_eval.h"
#include "core/greedy.h"
#include "data/graph_gen.h"
#include "data/prob_gen.h"
#include "data/vectors_gen.h"
#include "dist/partitioner.h"
#include "dist/thread_pool.h"
#include "objectives/coverage.h"
#include "objectives/exemplar.h"
#include "objectives/logdet.h"
#include "objectives/prob_coverage.h"
#include "objectives/saturated_coverage.h"
#include "util/rng.h"

namespace {

using namespace bds;

std::shared_ptr<const SetSystem> shared_sets() {
  static const auto sets = data::make_dblp_like(20'000, 1);
  return sets;
}

std::shared_ptr<const PointSet> shared_points() {
  static const auto points = [] {
    data::LdaVectorsConfig cfg;
    cfg.documents = 5'000;
    cfg.topics = 100;
    cfg.clusters = 20;
    return data::make_lda_like_vectors(cfg);
  }();
  return points;
}

std::shared_ptr<const ProbSetSystem> shared_click_model() {
  static const auto model = [] {
    data::ClickModelConfig cfg;
    cfg.ads = 5'000;
    cfg.users = 20'000;
    return data::make_click_model(cfg);
  }();
  return model;
}

std::shared_ptr<const SimilarityMatrix> shared_similarity() {
  static const auto sim = [] {
    const std::size_t n = 1'000;
    util::Rng rng(41);
    std::vector<double> values(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        const double v = rng.next_double();
        values[i * n + j] = v;
        values[j * n + i] = v;
      }
    }
    return std::make_shared<const SimilarityMatrix>(n, std::move(values));
  }();
  return sim;
}

std::vector<ElementId> ids(std::size_t n) {
  std::vector<ElementId> out(n);
  std::iota(out.begin(), out.end(), ElementId{0});
  return out;
}

// Batch sizes per objective, sized so one iteration stays in the
// millisecond range (exemplar/saturated evals are O(n) each).
constexpr std::size_t kCoverageBatch = 4'096;
constexpr std::size_t kProbBatch = 4'096;
constexpr std::size_t kExemplarBatch = 128;
constexpr std::size_t kSaturatedBatch = 256;

// The same stride-walk over candidate ids the scalar benchmarks do,
// materialized up front for the batched ones.
std::vector<ElementId> stride_ids(std::size_t count, std::size_t stride,
                                  std::size_t ground) {
  std::vector<ElementId> xs(count);
  std::size_t x = 0;
  for (auto& id : xs) {
    id = static_cast<ElementId>(x);
    x = (x + stride) % ground;
  }
  return xs;
}

BatchEvalOptions parallel_options(dist::ThreadPool& pool) {
  BatchEvalOptions options;
  options.pool = &pool;
  options.min_parallel = 0;
  return options;
}

void BM_RngNextU64(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_u64());
}
BENCHMARK(BM_RngNextU64);

void BM_RngNextBelow(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_below(12345));
}
BENCHMARK(BM_RngNextBelow);

// --- coverage: scalar / batch / parallel batch ------------------------------

CoverageOracle partly_covered_oracle() {
  CoverageOracle oracle(shared_sets());
  util::Rng rng(2);
  // A partly-covered state makes gains representative of mid-greedy.
  for (int i = 0; i < 50; ++i) {
    oracle.add(static_cast<ElementId>(rng.next_below(oracle.ground_size())));
  }
  return oracle;
}

void BM_CoverageGain(benchmark::State& state) {
  auto oracle = partly_covered_oracle();
  ElementId x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.gain(x));
    x = (x + 37) % oracle.ground_size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoverageGain);

void BM_CoverageGainBatch(benchmark::State& state) {
  auto oracle = partly_covered_oracle();
  const auto xs = stride_ids(kCoverageBatch, 37, oracle.ground_size());
  std::vector<double> out(xs.size());
  for (auto _ : state) {
    oracle.gain_batch(xs, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * xs.size());
}
BENCHMARK(BM_CoverageGainBatch);

void BM_CoverageGainBatchParallel(benchmark::State& state) {
  auto oracle = partly_covered_oracle();
  const auto xs = stride_ids(kCoverageBatch, 37, oracle.ground_size());
  std::vector<double> out(xs.size());
  dist::ThreadPool pool;
  const auto options = parallel_options(pool);
  for (auto _ : state) {
    evaluate_gains(oracle, xs, out, options);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * xs.size());
}
BENCHMARK(BM_CoverageGainBatchParallel);

void BM_CoverageClone(benchmark::State& state) {
  CoverageOracle oracle(shared_sets());
  for (auto _ : state) benchmark::DoNotOptimize(oracle.clone());
}
BENCHMARK(BM_CoverageClone);

// --- exemplar clustering ----------------------------------------------------

void BM_ExemplarExactGain(benchmark::State& state) {
  ExemplarOracle oracle(shared_points(), 2.0);
  ElementId x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.gain(x));
    x = (x + 101) % oracle.ground_size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExemplarExactGain);

void BM_ExemplarExactGainBatch(benchmark::State& state) {
  ExemplarOracle oracle(shared_points(), 2.0);
  const auto xs = stride_ids(kExemplarBatch, 101, oracle.ground_size());
  std::vector<double> out(xs.size());
  for (auto _ : state) {
    oracle.gain_batch(xs, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * xs.size());
}
BENCHMARK(BM_ExemplarExactGainBatch);

void BM_ExemplarExactGainBatchParallel(benchmark::State& state) {
  ExemplarOracle oracle(shared_points(), 2.0);
  const auto xs = stride_ids(kExemplarBatch, 101, oracle.ground_size());
  std::vector<double> out(xs.size());
  dist::ThreadPool pool;
  auto options = parallel_options(pool);
  options.grain = 16;  // each index is an O(n·dim) kernel tile's worth
  for (auto _ : state) {
    evaluate_gains(oracle, xs, out, options);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * xs.size());
}
BENCHMARK(BM_ExemplarExactGainBatchParallel);

void BM_ExemplarSampledGain(benchmark::State& state) {
  util::Rng rng(3);
  SampledExemplarOracle oracle(shared_points(), 2.0, 500, rng);
  ElementId x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.gain(x));
    x = (x + 101) % oracle.ground_size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExemplarSampledGain);

// --- probabilistic coverage -------------------------------------------------

void BM_ProbCoverageGain(benchmark::State& state) {
  ProbCoverageOracle oracle(shared_click_model());
  ElementId x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.gain(x));
    x = (x + 13) % oracle.ground_size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProbCoverageGain);

void BM_ProbCoverageGainBatch(benchmark::State& state) {
  ProbCoverageOracle oracle(shared_click_model());
  const auto xs = stride_ids(kProbBatch, 13, oracle.ground_size());
  std::vector<double> out(xs.size());
  for (auto _ : state) {
    oracle.gain_batch(xs, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * xs.size());
}
BENCHMARK(BM_ProbCoverageGainBatch);

void BM_ProbCoverageGainBatchParallel(benchmark::State& state) {
  ProbCoverageOracle oracle(shared_click_model());
  const auto xs = stride_ids(kProbBatch, 13, oracle.ground_size());
  std::vector<double> out(xs.size());
  dist::ThreadPool pool;
  const auto options = parallel_options(pool);
  for (auto _ : state) {
    evaluate_gains(oracle, xs, out, options);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * xs.size());
}
BENCHMARK(BM_ProbCoverageGainBatchParallel);

// --- saturated coverage -----------------------------------------------------

SaturatedCoverageOracle saturated_oracle() {
  SaturatedCoverageConfig cfg;
  cfg.gamma = 0.25;
  SaturatedCoverageOracle oracle(shared_similarity(), std::move(cfg));
  util::Rng rng(43);
  for (int i = 0; i < 10; ++i) {
    oracle.add(static_cast<ElementId>(rng.next_below(oracle.ground_size())));
  }
  return oracle;
}

void BM_SaturatedGain(benchmark::State& state) {
  auto oracle = saturated_oracle();
  ElementId x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.gain(x));
    x = (x + 17) % oracle.ground_size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SaturatedGain);

void BM_SaturatedGainBatch(benchmark::State& state) {
  auto oracle = saturated_oracle();
  const auto xs = stride_ids(kSaturatedBatch, 17, oracle.ground_size());
  std::vector<double> out(xs.size());
  for (auto _ : state) {
    oracle.gain_batch(xs, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * xs.size());
}
BENCHMARK(BM_SaturatedGainBatch);

void BM_SaturatedGainBatchParallel(benchmark::State& state) {
  auto oracle = saturated_oracle();
  const auto xs = stride_ids(kSaturatedBatch, 17, oracle.ground_size());
  std::vector<double> out(xs.size());
  dist::ThreadPool pool;
  auto options = parallel_options(pool);
  options.grain = 32;
  for (auto _ : state) {
    evaluate_gains(oracle, xs, out, options);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * xs.size());
}
BENCHMARK(BM_SaturatedGainBatchParallel);

// --- selectors and partitioners (unchanged shapes) --------------------------

void BM_LogDetGainVsSetSize(benchmark::State& state) {
  LogDetOracle oracle(shared_points(), 1.0, 0.5);
  for (ElementId x = 0; x < ElementId(state.range(0)); ++x) {
    oracle.add(x * 17 % 5'000);
  }
  ElementId probe = 1'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.gain(probe));
    probe = (probe + 101) % oracle.ground_size();
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LogDetGainVsSetSize)->Arg(8)->Arg(32)->Arg(128)->Complexity();

void BM_GreedySelector(benchmark::State& state) {
  const auto candidates = ids(state.range(0));
  for (auto _ : state) {
    CoverageOracle oracle(shared_sets());
    benchmark::DoNotOptimize(greedy(oracle, candidates, 10));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GreedySelector)->Arg(500)->Arg(2'000)->Complexity();

void BM_LazyGreedySelector(benchmark::State& state) {
  const auto candidates = ids(state.range(0));
  for (auto _ : state) {
    CoverageOracle oracle(shared_sets());
    benchmark::DoNotOptimize(lazy_greedy(oracle, candidates, 10));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LazyGreedySelector)->Arg(500)->Arg(2'000)->Arg(8'000)->Complexity();

void BM_StochasticGreedySelector(benchmark::State& state) {
  const auto candidates = ids(state.range(0));
  util::Rng rng(5);
  for (auto _ : state) {
    CoverageOracle oracle(shared_sets());
    benchmark::DoNotOptimize(stochastic_greedy(oracle, candidates, 10, rng));
  }
}
BENCHMARK(BM_StochasticGreedySelector)->Arg(2'000)->Arg(8'000);

void BM_PartitionUniform(benchmark::State& state) {
  const auto items = ids(100'000);
  util::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dist::partition_uniform(items, state.range(0), rng));
  }
  state.SetItemsProcessed(state.iterations() * items.size());
}
BENCHMARK(BM_PartitionUniform)->Arg(16)->Arg(128);

void BM_PartitionMultiplicity(benchmark::State& state) {
  const auto items = ids(100'000);
  util::Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dist::partition_multiplicity(items, 128, state.range(0), rng));
  }
  state.SetItemsProcessed(state.iterations() * items.size() * state.range(0));
}
BENCHMARK(BM_PartitionMultiplicity)->Arg(2)->Arg(8);

// --- --json reporting -------------------------------------------------------

struct GainBenchSpec {
  const char* objective;
  const char* mode;  // "scalar" | "batch" | "parallel_batch"
  double evals_per_iter;
};

// The gain-path benchmarks the JSON report covers, keyed by benchmark name.
const std::map<std::string, GainBenchSpec>& gain_bench_specs() {
  static const std::map<std::string, GainBenchSpec> specs = {
      {"BM_CoverageGain", {"coverage", "scalar", 1}},
      {"BM_CoverageGainBatch",
       {"coverage", "batch", double(kCoverageBatch)}},
      {"BM_CoverageGainBatchParallel",
       {"coverage", "parallel_batch", double(kCoverageBatch)}},
      {"BM_ProbCoverageGain", {"prob_coverage", "scalar", 1}},
      {"BM_ProbCoverageGainBatch",
       {"prob_coverage", "batch", double(kProbBatch)}},
      {"BM_ProbCoverageGainBatchParallel",
       {"prob_coverage", "parallel_batch", double(kProbBatch)}},
      {"BM_ExemplarExactGain", {"exemplar", "scalar", 1}},
      {"BM_ExemplarExactGainBatch",
       {"exemplar", "batch", double(kExemplarBatch)}},
      {"BM_ExemplarExactGainBatchParallel",
       {"exemplar", "parallel_batch", double(kExemplarBatch)}},
      {"BM_SaturatedGain", {"saturated_coverage", "scalar", 1}},
      {"BM_SaturatedGainBatch",
       {"saturated_coverage", "batch", double(kSaturatedBatch)}},
      {"BM_SaturatedGainBatchParallel",
       {"saturated_coverage", "parallel_batch", double(kSaturatedBatch)}},
  };
  return specs;
}

// Console output as usual, plus a copy of every iteration run for the JSON
// summary written after the run.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      if (run.run_type == Run::RT_Iteration && !run.error_occurred) {
        collected_.push_back(run);
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<Run>& collected() const noexcept { return collected_; }

 private:
  std::vector<Run> collected_;
};

void write_gain_json(const std::string& path,
                     const std::vector<benchmark::BenchmarkReporter::Run>& runs) {
  // objective -> mode -> wall-clock ns per oracle evaluation.
  std::map<std::string, std::map<std::string, double>> ns_per_eval;
  for (const auto& run : runs) {
    const auto it = gain_bench_specs().find(run.benchmark_name());
    if (it == gain_bench_specs().end()) continue;
    const GainBenchSpec& spec = it->second;
    // GetAdjustedRealTime is per-iteration real time in the run's time unit
    // (ns by default); one iteration performs evals_per_iter evaluations.
    ns_per_eval[spec.objective][spec.mode] =
        run.GetAdjustedRealTime() / spec.evals_per_iter;
  }

  std::ofstream out(path);
  out << "{\n  \"unit\": \"ns_per_eval\",\n  \"objectives\": {\n";
  bool first_obj = true;
  for (const auto& [objective, modes] : ns_per_eval) {
    if (!first_obj) out << ",\n";
    first_obj = false;
    out << "    \"" << objective << "\": {";
    bool first_mode = true;
    for (const auto& [mode, ns] : modes) {
      if (!first_mode) out << ", ";
      first_mode = false;
      out << "\"" << mode << "\": " << ns;
    }
    const auto scalar = modes.find("scalar");
    if (scalar != modes.end()) {
      for (const char* mode : {"batch", "parallel_batch"}) {
        const auto m = modes.find(mode);
        if (m != modes.end() && m->second > 0.0) {
          out << ", \"" << mode << "_speedup\": " << scalar->second / m->second;
        }
      }
    }
    out << "}";
  }
  out << "\n  }\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  // Strip our --json[=path] flag before handing argv to google-benchmark.
  std::string json_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      json_path = "BENCH_micro.json";
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = std::string(arg.substr(7));
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty()) write_gain_json(json_path, reporter.collected());
  return 0;
}
