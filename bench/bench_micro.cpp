// Microbenchmarks (google-benchmark) for the performance-critical
// primitives: oracle evaluations, the greedy selector family, and the
// partitioners. These are throughput sanity checks, not paper artifacts.
#include <benchmark/benchmark.h>

#include <memory>
#include <numeric>

#include "core/greedy.h"
#include "data/graph_gen.h"
#include "data/vectors_gen.h"
#include "dist/partitioner.h"
#include "objectives/coverage.h"
#include "objectives/exemplar.h"
#include "objectives/logdet.h"
#include "objectives/prob_coverage.h"
#include "data/prob_gen.h"
#include "util/rng.h"

namespace {

using namespace bds;

std::shared_ptr<const SetSystem> shared_sets() {
  static const auto sets = data::make_dblp_like(20'000, 1);
  return sets;
}

std::shared_ptr<const PointSet> shared_points() {
  static const auto points = [] {
    data::LdaVectorsConfig cfg;
    cfg.documents = 5'000;
    cfg.topics = 100;
    cfg.clusters = 20;
    return data::make_lda_like_vectors(cfg);
  }();
  return points;
}

std::vector<ElementId> ids(std::size_t n) {
  std::vector<ElementId> out(n);
  std::iota(out.begin(), out.end(), ElementId{0});
  return out;
}

void BM_RngNextU64(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_u64());
}
BENCHMARK(BM_RngNextU64);

void BM_RngNextBelow(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_below(12345));
}
BENCHMARK(BM_RngNextBelow);

void BM_CoverageGain(benchmark::State& state) {
  CoverageOracle oracle(shared_sets());
  util::Rng rng(2);
  // A partly-covered state makes gains representative of mid-greedy.
  for (int i = 0; i < 50; ++i) {
    oracle.add(static_cast<ElementId>(rng.next_below(oracle.ground_size())));
  }
  ElementId x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.gain(x));
    x = (x + 37) % oracle.ground_size();
  }
}
BENCHMARK(BM_CoverageGain);

void BM_CoverageClone(benchmark::State& state) {
  CoverageOracle oracle(shared_sets());
  for (auto _ : state) benchmark::DoNotOptimize(oracle.clone());
}
BENCHMARK(BM_CoverageClone);

void BM_ExemplarExactGain(benchmark::State& state) {
  ExemplarOracle oracle(shared_points(), 2.0);
  ElementId x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.gain(x));
    x = (x + 101) % oracle.ground_size();
  }
}
BENCHMARK(BM_ExemplarExactGain);

void BM_ExemplarSampledGain(benchmark::State& state) {
  util::Rng rng(3);
  SampledExemplarOracle oracle(shared_points(), 2.0, 500, rng);
  ElementId x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.gain(x));
    x = (x + 101) % oracle.ground_size();
  }
}
BENCHMARK(BM_ExemplarSampledGain);

void BM_ProbCoverageGain(benchmark::State& state) {
  static const auto model = [] {
    data::ClickModelConfig cfg;
    cfg.ads = 5'000;
    cfg.users = 20'000;
    return data::make_click_model(cfg);
  }();
  ProbCoverageOracle oracle(model);
  ElementId x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.gain(x));
    x = (x + 13) % oracle.ground_size();
  }
}
BENCHMARK(BM_ProbCoverageGain);

void BM_LogDetGainVsSetSize(benchmark::State& state) {
  LogDetOracle oracle(shared_points(), 1.0, 0.5);
  for (ElementId x = 0; x < ElementId(state.range(0)); ++x) {
    oracle.add(x * 17 % 5'000);
  }
  ElementId probe = 1'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.gain(probe));
    probe = (probe + 101) % oracle.ground_size();
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LogDetGainVsSetSize)->Arg(8)->Arg(32)->Arg(128)->Complexity();

void BM_GreedySelector(benchmark::State& state) {
  const auto candidates = ids(state.range(0));
  for (auto _ : state) {
    CoverageOracle oracle(shared_sets());
    benchmark::DoNotOptimize(greedy(oracle, candidates, 10));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GreedySelector)->Arg(500)->Arg(2'000)->Complexity();

void BM_LazyGreedySelector(benchmark::State& state) {
  const auto candidates = ids(state.range(0));
  for (auto _ : state) {
    CoverageOracle oracle(shared_sets());
    benchmark::DoNotOptimize(lazy_greedy(oracle, candidates, 10));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LazyGreedySelector)->Arg(500)->Arg(2'000)->Arg(8'000)->Complexity();

void BM_StochasticGreedySelector(benchmark::State& state) {
  const auto candidates = ids(state.range(0));
  util::Rng rng(5);
  for (auto _ : state) {
    CoverageOracle oracle(shared_sets());
    benchmark::DoNotOptimize(stochastic_greedy(oracle, candidates, 10, rng));
  }
}
BENCHMARK(BM_StochasticGreedySelector)->Arg(2'000)->Arg(8'000);

void BM_PartitionUniform(benchmark::State& state) {
  const auto items = ids(100'000);
  util::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dist::partition_uniform(items, state.range(0), rng));
  }
  state.SetItemsProcessed(state.iterations() * items.size());
}
BENCHMARK(BM_PartitionUniform)->Arg(16)->Arg(128);

void BM_PartitionMultiplicity(benchmark::State& state) {
  const auto items = ids(100'000);
  util::Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dist::partition_multiplicity(items, 128, state.range(0), rng));
  }
  state.SetItemsProcessed(state.iterations() * items.size() * state.range(0));
}
BENCHMARK(BM_PartitionMultiplicity)->Arg(2)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
