// Microbenchmarks (google-benchmark) for the performance-critical
// primitives: oracle evaluations (scalar vs batched vs parallel-batched),
// the greedy selector family, and the partitioners. These are throughput
// sanity checks, not paper artifacts.
//
// Extra flag on top of the google-benchmark ones:
//   --json[=path]   after the run, write ns/eval per objective for the
//                   scalar / batch / parallel-batch gain paths (plus the
//                   batch speedups) to `path` (default BENCH_micro.json).
//                   The report also carries a `shard_view` section (clone vs
//                   compacted-view build time, worker state bytes, gain
//                   throughput), an `incremental_gain` section (plain vs
//                   inverted-index coordinator filter), a `kernels` section
//                   (exemplar gain_batch under BDS_KERNEL=legacy vs the lane
//                   scalar kernels vs the dispatched SIMD path, across dims),
//                   and a `parallel` section (exemplar batch vs the
//                   cost-dimension-parallel batch, with the host thread
//                   count), a `faults` section (fault-free vs
//                   recoverable-fault bicriteria on a canonical workload:
//                   retry overhead, wasted evals, and the degradation delta
//                   when shards go unheard), and an `mmap` section (heap vs
//                   zero-copy mapped load of a ~10M-set on-disk corpus:
//                   load time, cold-page-cache first-round latency, and
//                   O(shard) worker state vs the O(corpus) clone).
//                   A `lazy` section compares the cross-round bound
//                   substrate (core/bound_heap.h) against eager accounting
//                   on a 4-round coverage bicriteria workload: total/worker
//                   oracle evals, the metered evals_avoided, and min-of-N
//                   wall clock for both modes. A `dynamic` section times the
//                   mutation path (corpus apply, O(degree) incremental
//                   oracle update vs O(corpus) rebuild), the certified
//                   maintenance loop under churn (kept/resolved ledger and
//                   re-solve rate), and sliding-window advance latency.
//   --repeat N      repetitions for the measured-at-write-time timings (the
//                   `lazy` section): one untimed warmup run, then the
//                   minimum over N timed runs is reported. Default 1.
//   --trace         run the canonical bicriteria workload under the
//                   recoverable fault mix and print its structured round
//                   trace as JSON.
//
// When the host has >= 8 hardware threads and the exemplar batch/parallel
// benchmarks both ran, the binary exits nonzero unless the parallel path is
// >= 2x the serial batch — the CI smoke check for the oracle-internal
// cost-point split (a 1-core runner skips the assertion, it cannot scale).
// When the prob_coverage scalar and batch gain benchmarks both ran, the
// binary also exits nonzero unless the batch path beats scalar gains
// (batch_speedup > 1.0) — the regression gate for the candidate-interleaved
// batch kernel.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <numeric>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/batch_eval.h"
#include "core/bicriteria.h"
#include "core/bound_heap.h"
#include "core/greedy.h"
#include "core/maintain.h"
#include "core/window.h"
#include "data/dynamic.h"
#include "data/graph_gen.h"
#include "data/io.h"
#include "data/synthetic_coverage.h"
#include "data/prob_gen.h"
#include "data/vectors_gen.h"
#include "dist/faults.h"
#include "dist/partitioner.h"
#include "dist/thread_pool.h"
#include "dist/trace.h"
#include "objectives/coverage.h"
#include "objectives/coverage_incremental.h"
#include "objectives/exemplar.h"
#include "objectives/logdet.h"
#include "objectives/prob_coverage.h"
#include "objectives/saturated_coverage.h"
#include "util/kernels.h"
#include "util/mmap.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace bds;

std::shared_ptr<const SetSystem> shared_sets() {
  static const auto sets = data::make_dblp_like(20'000, 1);
  return sets;
}

std::shared_ptr<const PointSet> shared_points() {
  static const auto points = [] {
    data::LdaVectorsConfig cfg;
    cfg.documents = 5'000;
    cfg.topics = 100;
    cfg.clusters = 20;
    return data::make_lda_like_vectors(cfg);
  }();
  return points;
}

std::shared_ptr<const ProbSetSystem> shared_click_model() {
  static const auto model = [] {
    data::ClickModelConfig cfg;
    cfg.ads = 5'000;
    cfg.users = 20'000;
    return data::make_click_model(cfg);
  }();
  return model;
}

std::shared_ptr<const SimilarityMatrix> shared_similarity() {
  static const auto sim = [] {
    const std::size_t n = 1'000;
    util::Rng rng(41);
    std::vector<double> values(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        const double v = rng.next_double();
        values[i * n + j] = v;
        values[j * n + i] = v;
      }
    }
    return std::make_shared<const SimilarityMatrix>(n, std::move(values));
  }();
  return sim;
}

std::vector<ElementId> ids(std::size_t n) {
  std::vector<ElementId> out(n);
  std::iota(out.begin(), out.end(), ElementId{0});
  return out;
}

// Batch sizes per objective, sized so one iteration stays in the
// millisecond range (exemplar/saturated evals are O(n) each).
constexpr std::size_t kCoverageBatch = 4'096;
constexpr std::size_t kProbBatch = 4'096;
constexpr std::size_t kExemplarBatch = 128;
constexpr std::size_t kSaturatedBatch = 256;

// The same stride-walk over candidate ids the scalar benchmarks do,
// materialized up front for the batched ones.
std::vector<ElementId> stride_ids(std::size_t count, std::size_t stride,
                                  std::size_t ground) {
  std::vector<ElementId> xs(count);
  std::size_t x = 0;
  for (auto& id : xs) {
    id = static_cast<ElementId>(x);
    x = (x + stride) % ground;
  }
  return xs;
}

BatchEvalOptions parallel_options(dist::ThreadPool& pool) {
  BatchEvalOptions options;
  options.pool = &pool;
  options.min_parallel = 0;
  return options;
}

void BM_RngNextU64(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_u64());
}
BENCHMARK(BM_RngNextU64);

void BM_RngNextBelow(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_below(12345));
}
BENCHMARK(BM_RngNextBelow);

// --- coverage: scalar / batch / parallel batch ------------------------------

CoverageOracle partly_covered_oracle() {
  CoverageOracle oracle(shared_sets());
  util::Rng rng(2);
  // A partly-covered state makes gains representative of mid-greedy.
  for (int i = 0; i < 50; ++i) {
    oracle.add(static_cast<ElementId>(rng.next_below(oracle.ground_size())));
  }
  return oracle;
}

void BM_CoverageGain(benchmark::State& state) {
  auto oracle = partly_covered_oracle();
  ElementId x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.gain(x));
    x = (x + 37) % oracle.ground_size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoverageGain);

void BM_CoverageGainBatch(benchmark::State& state) {
  auto oracle = partly_covered_oracle();
  const auto xs = stride_ids(kCoverageBatch, 37, oracle.ground_size());
  std::vector<double> out(xs.size());
  for (auto _ : state) {
    oracle.gain_batch(xs, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * xs.size());
}
BENCHMARK(BM_CoverageGainBatch);

void BM_CoverageGainBatchParallel(benchmark::State& state) {
  auto oracle = partly_covered_oracle();
  const auto xs = stride_ids(kCoverageBatch, 37, oracle.ground_size());
  std::vector<double> out(xs.size());
  dist::ThreadPool pool;
  const auto options = parallel_options(pool);
  for (auto _ : state) {
    evaluate_gains(oracle, xs, out, options);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * xs.size());
}
BENCHMARK(BM_CoverageGainBatchParallel);

void BM_CoverageClone(benchmark::State& state) {
  CoverageOracle oracle(shared_sets());
  for (auto _ : state) benchmark::DoNotOptimize(oracle.clone());
}
BENCHMARK(BM_CoverageClone);

// --- shard-compacted views --------------------------------------------------
//
// A worker's shard is a small slice of the ground set; the view's state
// covers only the universe elements its shard can reach, while a clone drags
// the full covered bitmap along. The build benchmark is the per-round cost a
// machine pays instead of clone(); the gain benchmarks confirm the sliced
// CSR answers queries within a small constant of clone speed (the view
// resolves each query through the shard hash index; values bit-identical).

constexpr std::size_t kShardSize = 2'048;

void BM_CoverageShardViewBuild(benchmark::State& state) {
  auto oracle = partly_covered_oracle();
  const auto shard = stride_ids(kShardSize, 37, oracle.ground_size());
  for (auto _ : state) benchmark::DoNotOptimize(oracle.shard_view(shard));
}
BENCHMARK(BM_CoverageShardViewBuild);

void BM_CoverageCloneGainBatchOnShard(benchmark::State& state) {
  auto oracle = partly_covered_oracle();
  const auto shard = stride_ids(kShardSize, 37, oracle.ground_size());
  const auto worker = oracle.clone();
  std::vector<double> out(shard.size());
  for (auto _ : state) {
    worker->gain_batch(shard, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * shard.size());
}
BENCHMARK(BM_CoverageCloneGainBatchOnShard);

void BM_CoverageShardViewGainBatch(benchmark::State& state) {
  auto oracle = partly_covered_oracle();
  const auto shard = stride_ids(kShardSize, 37, oracle.ground_size());
  const auto worker = oracle.shard_view(shard);
  std::vector<double> out(shard.size());
  for (auto _ : state) {
    worker->gain_batch(shard, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * shard.size());
}
BENCHMARK(BM_CoverageShardViewGainBatch);

// --- incremental coverage gains ---------------------------------------------
//
// The coordinator's filter step re-scores every candidate after each add.
// Plain coverage pays O(|set|) per score; the inverted-index oracle answers
// from stored residuals in O(1) and pays for the scan once per *covered
// element* instead of once per (round × candidate). One iteration = a full
// k-round filter, including (for the incremental case) building the index.

constexpr std::size_t kFilterRounds = 16;

template <typename OracleT>
void run_filter_rounds(OracleT& oracle, std::span<const ElementId> candidates,
                       std::vector<double>& out) {
  for (std::size_t r = 0; r < kFilterRounds; ++r) {
    oracle.gain_batch(candidates, out);
    std::size_t best = 0;
    for (std::size_t i = 1; i < out.size(); ++i) {
      if (out[i] > out[best]) best = i;
    }
    oracle.add(candidates[best]);
  }
}

void BM_CoverageCoordinatorFilter(benchmark::State& state) {
  const auto sets = shared_sets();
  const auto candidates = ids(sets->num_sets());
  std::vector<double> out(candidates.size());
  for (auto _ : state) {
    CoverageOracle oracle(sets);
    run_filter_rounds(oracle, candidates, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kFilterRounds *
                          candidates.size());
}
BENCHMARK(BM_CoverageCoordinatorFilter);

void BM_IncrementalCoordinatorFilter(benchmark::State& state) {
  const auto sets = shared_sets();
  const auto candidates = ids(sets->num_sets());
  std::vector<double> out(candidates.size());
  for (auto _ : state) {
    IncrementalCoverageOracle oracle(sets);  // index build is part of the cost
    run_filter_rounds(oracle, candidates, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kFilterRounds *
                          candidates.size());
}
BENCHMARK(BM_IncrementalCoordinatorFilter);

// --- exemplar clustering ----------------------------------------------------

void BM_ExemplarExactGain(benchmark::State& state) {
  ExemplarOracle oracle(shared_points(), 2.0);
  ElementId x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.gain(x));
    x = (x + 101) % oracle.ground_size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExemplarExactGain);

void BM_ExemplarExactGainBatch(benchmark::State& state) {
  ExemplarOracle oracle(shared_points(), 2.0);
  const auto xs = stride_ids(kExemplarBatch, 101, oracle.ground_size());
  std::vector<double> out(xs.size());
  for (auto _ : state) {
    oracle.gain_batch(xs, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * xs.size());
}
BENCHMARK(BM_ExemplarExactGainBatch);

void BM_ExemplarExactGainBatchParallel(benchmark::State& state) {
  ExemplarOracle oracle(shared_points(), 2.0);
  const auto xs = stride_ids(kExemplarBatch, 101, oracle.ground_size());
  std::vector<double> out(xs.size());
  dist::ThreadPool pool;
  auto options = parallel_options(pool);
  options.grain = 16;  // each index is an O(n·dim) kernel tile's worth
  for (auto _ : state) {
    evaluate_gains(oracle, xs, out, options);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * xs.size());
}
BENCHMARK(BM_ExemplarExactGainBatchParallel);

void BM_ExemplarSampledGain(benchmark::State& state) {
  util::Rng rng(3);
  SampledExemplarOracle oracle(shared_points(), 2.0, 500, rng);
  ElementId x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.gain(x));
    x = (x + 101) % oracle.ground_size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExemplarSampledGain);

// --- SIMD kernel layer ------------------------------------------------------
//
// Exemplar gain_batch across dims and kernel modes: the pre-kernel
// sequential path (BDS_KERNEL=legacy), the lane-order scalar kernels
// (=scalar), and the runtime-dispatched SIMD path (=auto). scalar-vs-legacy
// isolates the cost of the deterministic lane contract; auto-vs-scalar is
// the SIMD win; auto-vs-legacy is the net speedup the layer delivers.

constexpr std::size_t kKernelPoints = 2'048;
constexpr std::size_t kKernelBatch = 64;

std::shared_ptr<const PointSet> kernel_points(std::size_t dim) {
  static std::map<std::size_t, std::shared_ptr<const PointSet>> cache;
  auto& entry = cache[dim];
  if (!entry) {
    util::Rng rng(17 + dim);
    std::vector<float> data(kKernelPoints * dim);
    for (auto& v : data) v = static_cast<float>(rng.next_double(-1.0, 1.0));
    auto pts = std::make_shared<PointSet>(kKernelPoints, dim, std::move(data));
    pts->normalize_rows();
    entry = std::move(pts);
  }
  return entry;
}

kern::Mode kernel_mode_from_arg(std::int64_t mode) {
  switch (mode) {
    case 0: return kern::Mode::kLegacy;
    case 1: return kern::Mode::kScalar;
    default: return kern::Mode::kAuto;
  }
}

void BM_KernelGainBatch(benchmark::State& state) {
  kern::ForcedMode forced(kernel_mode_from_arg(state.range(1)));
  ExemplarOracle oracle(kernel_points(state.range(0)), 2.0);
  const auto xs = stride_ids(kKernelBatch, 67, oracle.ground_size());
  std::vector<double> out(xs.size());
  for (auto _ : state) {
    oracle.gain_batch(xs, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * xs.size());
}
BENCHMARK(BM_KernelGainBatch)
    ->ArgNames({"dim", "mode"})
    ->Args({16, 0})->Args({16, 1})->Args({16, 2})
    ->Args({64, 0})->Args({64, 1})->Args({64, 2})
    ->Args({128, 0})->Args({128, 1})->Args({128, 2});

// --- probabilistic coverage -------------------------------------------------

void BM_ProbCoverageGain(benchmark::State& state) {
  ProbCoverageOracle oracle(shared_click_model());
  ElementId x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.gain(x));
    x = (x + 13) % oracle.ground_size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProbCoverageGain);

void BM_ProbCoverageGainBatch(benchmark::State& state) {
  ProbCoverageOracle oracle(shared_click_model());
  const auto xs = stride_ids(kProbBatch, 13, oracle.ground_size());
  std::vector<double> out(xs.size());
  for (auto _ : state) {
    oracle.gain_batch(xs, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * xs.size());
}
BENCHMARK(BM_ProbCoverageGainBatch);

void BM_ProbCoverageGainBatchParallel(benchmark::State& state) {
  ProbCoverageOracle oracle(shared_click_model());
  const auto xs = stride_ids(kProbBatch, 13, oracle.ground_size());
  std::vector<double> out(xs.size());
  dist::ThreadPool pool;
  const auto options = parallel_options(pool);
  for (auto _ : state) {
    evaluate_gains(oracle, xs, out, options);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * xs.size());
}
BENCHMARK(BM_ProbCoverageGainBatchParallel);

// --- saturated coverage -----------------------------------------------------

SaturatedCoverageOracle saturated_oracle() {
  SaturatedCoverageConfig cfg;
  cfg.gamma = 0.25;
  SaturatedCoverageOracle oracle(shared_similarity(), std::move(cfg));
  util::Rng rng(43);
  for (int i = 0; i < 10; ++i) {
    oracle.add(static_cast<ElementId>(rng.next_below(oracle.ground_size())));
  }
  return oracle;
}

void BM_SaturatedGain(benchmark::State& state) {
  auto oracle = saturated_oracle();
  ElementId x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.gain(x));
    x = (x + 17) % oracle.ground_size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SaturatedGain);

void BM_SaturatedGainBatch(benchmark::State& state) {
  auto oracle = saturated_oracle();
  const auto xs = stride_ids(kSaturatedBatch, 17, oracle.ground_size());
  std::vector<double> out(xs.size());
  for (auto _ : state) {
    oracle.gain_batch(xs, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * xs.size());
}
BENCHMARK(BM_SaturatedGainBatch);

void BM_SaturatedGainBatchParallel(benchmark::State& state) {
  auto oracle = saturated_oracle();
  const auto xs = stride_ids(kSaturatedBatch, 17, oracle.ground_size());
  std::vector<double> out(xs.size());
  dist::ThreadPool pool;
  auto options = parallel_options(pool);
  options.grain = 32;
  for (auto _ : state) {
    evaluate_gains(oracle, xs, out, options);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * xs.size());
}
BENCHMARK(BM_SaturatedGainBatchParallel);

// --- selectors and partitioners (unchanged shapes) --------------------------

void BM_LogDetGainVsSetSize(benchmark::State& state) {
  LogDetOracle oracle(shared_points(), 1.0, 0.5);
  for (ElementId x = 0; x < ElementId(state.range(0)); ++x) {
    oracle.add(x * 17 % 5'000);
  }
  ElementId probe = 1'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.gain(probe));
    probe = (probe + 101) % oracle.ground_size();
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LogDetGainVsSetSize)->Arg(8)->Arg(32)->Arg(128)->Complexity();

void BM_GreedySelector(benchmark::State& state) {
  const auto candidates = ids(state.range(0));
  for (auto _ : state) {
    CoverageOracle oracle(shared_sets());
    benchmark::DoNotOptimize(greedy(oracle, candidates, 10));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GreedySelector)->Arg(500)->Arg(2'000)->Complexity();

void BM_LazyGreedySelector(benchmark::State& state) {
  const auto candidates = ids(state.range(0));
  for (auto _ : state) {
    CoverageOracle oracle(shared_sets());
    benchmark::DoNotOptimize(lazy_greedy(oracle, candidates, 10));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LazyGreedySelector)->Arg(500)->Arg(2'000)->Arg(8'000)->Complexity();

void BM_StochasticGreedySelector(benchmark::State& state) {
  const auto candidates = ids(state.range(0));
  util::Rng rng(5);
  for (auto _ : state) {
    CoverageOracle oracle(shared_sets());
    benchmark::DoNotOptimize(stochastic_greedy(oracle, candidates, 10, rng));
  }
}
BENCHMARK(BM_StochasticGreedySelector)->Arg(2'000)->Arg(8'000);

void BM_PartitionUniform(benchmark::State& state) {
  const auto items = ids(100'000);
  util::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dist::partition_uniform(items, state.range(0), rng));
  }
  state.SetItemsProcessed(state.iterations() * items.size());
}
BENCHMARK(BM_PartitionUniform)->Arg(16)->Arg(128);

void BM_PartitionMultiplicity(benchmark::State& state) {
  const auto items = ids(100'000);
  util::Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dist::partition_multiplicity(items, 128, state.range(0), rng));
  }
  state.SetItemsProcessed(state.iterations() * items.size() * state.range(0));
}
BENCHMARK(BM_PartitionMultiplicity)->Arg(2)->Arg(8);

// --- fault-injecting executor -----------------------------------------------
//
// The canonical workload: 2-round bicriteria on a synthetic coverage
// instance. Fault-free vs the recoverable mix (crashes, drops, stragglers
// with unlimited retries) isolates the pure retry overhead — by the
// determinism contract the selection is identical, only the wasted attempts
// and metered backoff differ. The degraded variant (crash-heavy, a single
// attempt) is the graceful-degradation case the JSON report quantifies.

std::shared_ptr<const SetSystem> fault_bench_sets() {
  static const auto sets = [] {
    data::SyntheticCoverageConfig cfg;
    cfg.universe_size = 2'000;
    cfg.planted_sets = 50;
    cfg.random_sets = 2'000;
    cfg.seed = 19;
    return data::make_synthetic_coverage(cfg).sets;
  }();
  return sets;
}

BicriteriaConfig fault_bench_config() {
  BicriteriaConfig cfg;
  cfg.k = 10;
  cfg.output_items = 20;
  cfg.rounds = 2;
  cfg.runtime.seed = 7;
  return cfg;
}

DistributedResult run_fault_workload(const BicriteriaConfig& cfg) {
  const CoverageOracle proto(fault_bench_sets());
  const auto ground = ids(proto.ground_size());
  return bicriteria_greedy(proto, ground, cfg);
}

// Lazy-bound workload: heavy-tailed neighborhood coverage (the paper's
// DBLP/LiveJournal stand-in), run deep (4 commit/filter cycles, 40 output
// items) so bounds recorded in round r actually prune rounds r+1..3. The
// planted instance above is deliberately NOT reused here: its random sets
// all have the same size, so the gain profile is flat and nearly every
// stale bound ties near the top — Minoux's worst case, where carrying
// bounds saves almost nothing (~1.02x). On hub-dominated coverage the
// profile is steep, bounds stay discriminative across rounds, and the
// cross-round carry is what the numbers isolate.
std::shared_ptr<const SetSystem> lazy_bench_sets() {
  static const auto sets = data::neighborhood_sets(
      data::powerlaw_cluster(3'000, 3, 0.5, 19), true);
  return sets;
}

BicriteriaConfig lazy_bench_config() {
  BicriteriaConfig cfg;
  cfg.k = 10;
  cfg.output_items = 40;
  cfg.rounds = 4;
  cfg.runtime.seed = 7;
  return cfg;
}

DistributedResult run_lazy_workload(const BicriteriaConfig& cfg) {
  const CoverageOracle proto(lazy_bench_sets());
  const auto ground = ids(proto.ground_size());
  return bicriteria_greedy(proto, ground, cfg);
}

// --repeat N support for the measured-at-write-time sections: one untimed
// warmup call, then the minimum wall time over N timed calls. The results
// the caller inspects come from the last call — every repetition is the
// same deterministic run.
std::size_t g_repeat = 1;

template <typename Fn>
double min_wall_seconds(Fn&& fn) {
  fn();  // warmup
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t rep = 0; rep < g_repeat; ++rep) {
    util::Timer timer;
    fn();
    best = std::min(best, timer.elapsed_seconds());
  }
  return best;
}

void BM_FaultPlanDraw(benchmark::State& state) {
  const auto plan = dist::FaultPlan::recoverable(99);
  std::size_t machine = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.fault_at(1, machine, 1));
    machine = (machine + 1) & 1023;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FaultPlanDraw);

void BM_BicriteriaFaultFree(benchmark::State& state) {
  const auto cfg = fault_bench_config();
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_fault_workload(cfg));
  }
}
BENCHMARK(BM_BicriteriaFaultFree);

void BM_BicriteriaRecoverableFaults(benchmark::State& state) {
  auto cfg = fault_bench_config();
  cfg.runtime.faults = dist::FaultPlan::recoverable(99);
  cfg.runtime.retry.max_attempts = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_fault_workload(cfg));
  }
}
BENCHMARK(BM_BicriteriaRecoverableFaults);

// --- out-of-core corpus (mmap vs heap load) ---------------------------------
//
// A ~10M-set, ~10M-element CSR corpus written once to the temp dir in the
// v2 container. Big enough that the O(corpus) vs O(shard) distinction is
// unambiguous (~240 MB file, 10 MB covered bitmap per worker clone), small
// enough to generate in seconds. The flat arrays go through SetSystem's
// borrowing constructor so generation never materializes 10M little
// vectors.

constexpr std::size_t kBigSets = 10'000'000;
constexpr std::uint32_t kBigUniverse = 10'000'000;
constexpr std::size_t kBigEntriesPerSet = 4;
constexpr std::size_t kBigShard = 2'048;

struct BigCsr {
  std::vector<std::uint64_t> offsets;
  std::vector<std::uint32_t> entries;
};

std::string mmap_corpus_path() {
  return (std::filesystem::temp_directory_path() / "bds_mmap_corpus_v2.bds")
      .string();
}

void ensure_mmap_corpus(const std::string& path) {
  try {
    if (data::map_set_system(path)->num_sets() == kBigSets) return;
  } catch (const std::exception&) {
    // absent or stale — regenerate below
  }
  std::fprintf(stderr, "[mmap] generating %zu-set corpus at %s ...\n",
               kBigSets, path.c_str());
  auto csr = std::make_shared<BigCsr>();
  csr->offsets.reserve(kBigSets + 1);
  csr->offsets.push_back(0);
  csr->entries.reserve(kBigSets * kBigEntriesPerSet);
  util::Rng rng(123);
  std::uint32_t draw[kBigEntriesPerSet];
  for (std::size_t s = 0; s < kBigSets; ++s) {
    for (auto& d : draw) {
      d = static_cast<std::uint32_t>(rng.next_below(kBigUniverse));
    }
    std::sort(std::begin(draw), std::end(draw));
    const auto* const end = std::unique(std::begin(draw), std::end(draw));
    for (const auto* it = std::begin(draw); it != end; ++it) {
      csr->entries.push_back(*it);
    }
    csr->offsets.push_back(csr->entries.size());
  }
  const SetSystem view(csr->offsets.data(), kBigSets, csr->entries.data(),
                       csr->entries.size(), kBigUniverse, csr);
  data::save_set_system(view, path);
}

// --- dynamic corpus churn ---------------------------------------------------
//
// The mutation path the dynamic-corpus layer promises: a corpus apply is an
// O(items) log append into the heap-side overlay, the incremental coverage
// oracle absorbs an insert in O(degree) instead of an O(corpus) index
// rebuild, and the certified maintenance loop re-solves only when the
// bicriteria certificate decays past epsilon — the re-solve rate under
// churn is the number the exit gate pins below 100%.

std::shared_ptr<const SetSystem> churn_bench_sets() {
  static const auto sets = data::make_dblp_like(4'000, 23);
  return sets;
}

MaintainConfig churn_config() {
  MaintainConfig cfg;
  cfg.k = 10;
  cfg.epsilon = 0.25;
  cfg.max_rounds = 3;
  cfg.machines = 8;
  return cfg;
}

// Deterministic churn: three small random inserts to one erase, erases
// walking the live ids from the bottom (so some hit solution members and
// force the unaddressable re-solve path).
std::unique_ptr<CertifiedMaintainer> run_churn_workload(std::size_t steps) {
  auto corpus =
      std::make_shared<data::DynamicCorpus>(churn_bench_sets(), "bench-churn");
  auto maintainer =
      std::make_unique<CertifiedMaintainer>(corpus, churn_config());
  util::Rng rng(29);
  const std::uint32_t universe = churn_bench_sets()->universe_size();
  ElementId erase_cursor = 0;
  for (std::size_t step = 0; step < steps; ++step) {
    if (step % 4 == 3) {
      while (!corpus->is_live(erase_cursor)) ++erase_cursor;
      maintainer->erase(erase_cursor++);
    } else {
      std::vector<std::uint32_t> items(2 + rng.next_below(6));
      for (auto& e : items) {
        e = static_cast<std::uint32_t>(rng.next_below(universe));
      }
      maintainer->insert(std::move(items));
    }
  }
  return maintainer;
}

// --- --json reporting -------------------------------------------------------

struct GainBenchSpec {
  const char* objective;
  const char* mode;  // "scalar" | "batch" | "parallel_batch"
  double evals_per_iter;
};

// The gain-path benchmarks the JSON report covers, keyed by benchmark name.
const std::map<std::string, GainBenchSpec>& gain_bench_specs() {
  static const std::map<std::string, GainBenchSpec> specs = {
      {"BM_CoverageGain", {"coverage", "scalar", 1}},
      {"BM_CoverageGainBatch",
       {"coverage", "batch", double(kCoverageBatch)}},
      {"BM_CoverageGainBatchParallel",
       {"coverage", "parallel_batch", double(kCoverageBatch)}},
      {"BM_ProbCoverageGain", {"prob_coverage", "scalar", 1}},
      {"BM_ProbCoverageGainBatch",
       {"prob_coverage", "batch", double(kProbBatch)}},
      {"BM_ProbCoverageGainBatchParallel",
       {"prob_coverage", "parallel_batch", double(kProbBatch)}},
      {"BM_ExemplarExactGain", {"exemplar", "scalar", 1}},
      {"BM_ExemplarExactGainBatch",
       {"exemplar", "batch", double(kExemplarBatch)}},
      {"BM_ExemplarExactGainBatchParallel",
       {"exemplar", "parallel_batch", double(kExemplarBatch)}},
      {"BM_SaturatedGain", {"saturated_coverage", "scalar", 1}},
      {"BM_SaturatedGainBatch",
       {"saturated_coverage", "batch", double(kSaturatedBatch)}},
      {"BM_SaturatedGainBatchParallel",
       {"saturated_coverage", "parallel_batch", double(kSaturatedBatch)}},
  };
  return specs;
}

// Console output as usual, plus a copy of every iteration run for the JSON
// summary written after the run.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      if (run.run_type == Run::RT_Iteration && !run.error_occurred) {
        collected_.push_back(run);
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<Run>& collected() const noexcept { return collected_; }

 private:
  std::vector<Run> collected_;
};

void write_gain_json(const std::string& path,
                     const std::vector<benchmark::BenchmarkReporter::Run>& runs) {
  // objective -> mode -> wall-clock ns per oracle evaluation.
  std::map<std::string, std::map<std::string, double>> ns_per_eval;
  // Per-iteration real time of the shard-view / incremental benchmarks.
  std::map<std::string, double> raw_ns;
  for (const auto& run : runs) {
    raw_ns[run.benchmark_name()] = run.GetAdjustedRealTime();
    const auto it = gain_bench_specs().find(run.benchmark_name());
    if (it == gain_bench_specs().end()) continue;
    const GainBenchSpec& spec = it->second;
    // GetAdjustedRealTime is per-iteration real time in the run's time unit
    // (ns by default); one iteration performs evals_per_iter evaluations.
    ns_per_eval[spec.objective][spec.mode] =
        run.GetAdjustedRealTime() / spec.evals_per_iter;
  }

  std::ofstream out(path);
  out << "{\n  \"unit\": \"ns_per_eval\",\n  \"objectives\": {\n";
  bool first_obj = true;
  for (const auto& [objective, modes] : ns_per_eval) {
    if (!first_obj) out << ",\n";
    first_obj = false;
    out << "    \"" << objective << "\": {";
    bool first_mode = true;
    for (const auto& [mode, ns] : modes) {
      if (!first_mode) out << ", ";
      first_mode = false;
      out << "\"" << mode << "\": " << ns;
    }
    const auto scalar = modes.find("scalar");
    if (scalar != modes.end()) {
      for (const char* mode : {"batch", "parallel_batch"}) {
        const auto m = modes.find(mode);
        if (m != modes.end() && m->second > 0.0) {
          out << ", \"" << mode << "_speedup\": " << scalar->second / m->second;
        }
      }
    }
    out << "}";
  }
  out << "\n  },\n";

  // Worker memory: measured at write time on the same dblp-like instance the
  // benchmarks ran on — clone state vs compacted views of growing shards.
  // View state scales with the universe slice the shard *touches*, so the
  // table shows the crossover: small shards (many machines) are far below
  // the clone's full covered bitmap; once a shard reaches most of the
  // universe the view's richer per-element bookkeeping overtakes the 1-byte
  // bitmap and clone is the better mode.
  {
    CoverageOracle oracle(shared_sets());
    const std::size_t clone_bytes = oracle.clone()->state_bytes();
    out << "  \"shard_view\": {\n"
        << "    \"objective\": \"coverage\",\n"
        << "    \"ground_size\": " << oracle.ground_size() << ",\n"
        << "    \"bench_shard_size\": " << kShardSize << ",\n"
        << "    \"clone_state_bytes\": " << clone_bytes << ",\n"
        << "    \"view_state_bytes_by_shard\": {";
    bool first_shard = true;
    for (const std::size_t shard_size :
         {std::size_t{64}, std::size_t{256}, std::size_t{1'024}, kShardSize}) {
      const auto shard = stride_ids(shard_size, 37, oracle.ground_size());
      if (!first_shard) out << ", ";
      first_shard = false;
      out << "\"" << shard_size
          << "\": " << oracle.shard_view(shard)->state_bytes();
    }
    out << "}";
    const auto clone_build = raw_ns.find("BM_CoverageClone");
    const auto view_build = raw_ns.find("BM_CoverageShardViewBuild");
    if (clone_build != raw_ns.end() && view_build != raw_ns.end()) {
      out << ",\n    \"clone_build_ns\": " << clone_build->second
          << ",\n    \"view_build_ns\": " << view_build->second;
    }
    const auto clone_gain = raw_ns.find("BM_CoverageCloneGainBatchOnShard");
    const auto view_gain = raw_ns.find("BM_CoverageShardViewGainBatch");
    if (clone_gain != raw_ns.end() && view_gain != raw_ns.end()) {
      out << ",\n    \"clone_gain_ns_per_eval\": "
          << clone_gain->second / double(kShardSize)
          << ",\n    \"view_gain_ns_per_eval\": "
          << view_gain->second / double(kShardSize);
    }
    out << "\n  },\n";
  }

  // Coordinator filter: plain O(|set|)-per-score coverage vs the
  // inverted-index incremental oracle (index build included in its time).
  {
    out << "  \"incremental_gain\": {\n"
        << "    \"objective\": \"coverage\",\n"
        << "    \"filter_rounds\": " << kFilterRounds;
    const auto plain = raw_ns.find("BM_CoverageCoordinatorFilter");
    const auto incr = raw_ns.find("BM_IncrementalCoordinatorFilter");
    if (plain != raw_ns.end() && incr != raw_ns.end()) {
      const double evals = double(kFilterRounds) *
                           double(shared_sets()->num_sets());
      out << ",\n    \"plain_ns_per_eval\": " << plain->second / evals
          << ",\n    \"incremental_ns_per_eval\": " << incr->second / evals;
      if (incr->second > 0.0) {
        out << ",\n    \"filter_speedup\": " << plain->second / incr->second;
      }
    }
    out << "\n  },\n";
  }

  // Kernel layer: exemplar gain_batch ns/eval per dim × mode (see the
  // BM_KernelGainBatch comment for what each ratio isolates).
  {
    out << "  \"kernels\": {\n"
        << "    \"active\": \"" << kern::active_name() << "\",\n"
        << "    \"points\": " << kKernelPoints << ",\n"
        << "    \"batch\": " << kKernelBatch << ",\n"
        << "    \"dims\": {";
    const char* mode_key[] = {"legacy", "lane_scalar", "dispatched"};
    bool first_dim = true;
    for (const int dim : {16, 64, 128}) {
      double ns[3] = {0.0, 0.0, 0.0};
      for (int mode = 0; mode < 3; ++mode) {
        const auto it = raw_ns.find("BM_KernelGainBatch/dim:" +
                                    std::to_string(dim) +
                                    "/mode:" + std::to_string(mode));
        if (it != raw_ns.end()) ns[mode] = it->second / double(kKernelBatch);
      }
      if (ns[0] <= 0.0 && ns[1] <= 0.0 && ns[2] <= 0.0) continue;
      if (!first_dim) out << ", ";
      first_dim = false;
      out << "\"" << dim << "\": {";
      bool first_mode = true;
      for (int mode = 0; mode < 3; ++mode) {
        if (ns[mode] <= 0.0) continue;
        if (!first_mode) out << ", ";
        first_mode = false;
        out << "\"" << mode_key[mode] << "\": " << ns[mode];
      }
      if (ns[0] > 0.0 && ns[2] > 0.0) {
        out << ", \"dispatched_vs_legacy\": " << ns[0] / ns[2];
      }
      if (ns[1] > 0.0 && ns[2] > 0.0) {
        out << ", \"dispatched_vs_lane_scalar\": " << ns[1] / ns[2];
      }
      out << "}";
    }
    out << "}\n  },\n";
  }

  // Out-of-core: heap vs zero-copy mapped load of the big corpus, measured
  // at write time. Both loads start from a cold page cache (fadvise
  // DONTNEED), so "load + first shard round" is the honest first-round
  // latency: the heap path must read and copy all ~240 MB up front, the
  // mapped path faults in only the pages its shard touches. Worker state is
  // the other axis: a clone drags the full covered bitmap (O(corpus)), a
  // shard view carries only its slice (O(shard)).
  {
    const std::string corpus = mmap_corpus_path();
    ensure_mmap_corpus(corpus);
    const auto file_bytes = std::filesystem::file_size(corpus);
    const auto shard = stride_ids(kBigShard, 9'973, kBigSets);
    std::vector<double> heap_gains(shard.size());
    std::vector<double> mapped_gains(shard.size());

    double heap_load_s = 0.0;
    double heap_round_s = 0.0;
    std::size_t clone_bytes = 0;
    {
      util::evict_file_cache(corpus);
      util::Timer load_timer;
      const auto sets = data::load_set_system(corpus);
      heap_load_s = load_timer.elapsed_seconds();
      const CoverageOracle oracle(sets);
      util::Timer round_timer;
      const auto worker = oracle.shard_view(shard);
      worker->gain_batch(shard, heap_gains);
      heap_round_s = round_timer.elapsed_seconds();
      clone_bytes = oracle.clone()->state_bytes();
    }

    double map_load_s = 0.0;
    double map_round_s = 0.0;
    std::size_t view_bytes = 0;
    {
      util::evict_file_cache(corpus);
      util::Timer load_timer;
      const auto sets = data::map_set_system(corpus);
      map_load_s = load_timer.elapsed_seconds();
      const CoverageOracle oracle(sets);
      util::Timer round_timer;
      const auto worker = oracle.shard_view(shard);
      view_bytes = worker->state_bytes();
      worker->gain_batch(shard, mapped_gains);
      map_round_s = round_timer.elapsed_seconds();
    }

    out << "  \"mmap\": {\n"
        << "    \"corpus_sets\": " << kBigSets << ",\n"
        << "    \"corpus_universe\": " << kBigUniverse << ",\n"
        << "    \"corpus_file_bytes\": " << file_bytes << ",\n"
        << "    \"bench_shard_size\": " << kBigShard << ",\n"
        << "    \"heap_load_s\": " << heap_load_s << ",\n"
        << "    \"mmap_load_s\": " << map_load_s << ",\n"
        << "    \"load_speedup\": "
        << (map_load_s > 0.0 ? heap_load_s / map_load_s : 0.0) << ",\n"
        << "    \"first_round_cold_heap_s\": " << heap_load_s + heap_round_s
        << ",\n"
        << "    \"first_round_cold_mmap_s\": " << map_load_s + map_round_s
        << ",\n"
        << "    \"clone_state_bytes\": " << clone_bytes << ",\n"
        << "    \"peak_worker_state_bytes\": " << view_bytes << ",\n"
        << "    \"corpus_over_shard_state_ratio\": "
        << (view_bytes > 0 ? double(clone_bytes) / double(view_bytes) : 0.0)
        << ",\n"
        << "    \"gains_identical\": "
        << (heap_gains == mapped_gains ? "true" : "false") << "\n  },\n";
  }

  // Fault-injecting executor: retry overhead on the canonical bicriteria
  // workload (timings from the benchmarks above; ledgers and the degradation
  // delta measured at write time — deterministic, so stable across runs).
  {
    const auto clean = run_fault_workload(fault_bench_config());

    auto recoverable_cfg = fault_bench_config();
    recoverable_cfg.runtime.faults = dist::FaultPlan::recoverable(99);
    recoverable_cfg.runtime.retry.max_attempts = 0;
    const auto recovered = run_fault_workload(recoverable_cfg);

    auto degraded_cfg = fault_bench_config();
    degraded_cfg.runtime.faults.seed = 99;
    degraded_cfg.runtime.faults.crash_probability = 0.35;
    degraded_cfg.runtime.retry.max_attempts = 1;
    const auto degraded = run_fault_workload(degraded_cfg);

    out << "  \"faults\": {\n"
        << "    \"workload\": \"bicriteria k=10 rounds=2 on synthetic "
           "coverage (2000 sets)\",\n"
        << "    \"recoverable\": {"
        << "\"selection_identical\": "
        << (recovered.solution == clean.solution ? "true" : "false")
        << ", \"retries\": " << recovered.stats.total_retries()
        << ", \"faults_injected\": " << recovered.stats.total_faults_injected()
        << ", \"wasted_evals\": " << recovered.stats.total_wasted_evals()
        << ", \"delivered_evals\": " << recovered.stats.total_worker_evals()
        << "},\n"
        << "    \"degraded\": {"
        << "\"machines_unheard\": " << degraded.stats.total_machines_unheard()
        << ", \"value\": " << degraded.value
        << ", \"fault_free_value\": " << clean.value
        << ", \"value_retained\": "
        << (clean.value > 0.0 ? degraded.value / clean.value : 1.0) << "}";
    const auto clean_ns = raw_ns.find("BM_BicriteriaFaultFree");
    const auto faulty_ns = raw_ns.find("BM_BicriteriaRecoverableFaults");
    if (clean_ns != raw_ns.end() && faulty_ns != raw_ns.end() &&
        clean_ns->second > 0.0) {
      out << ",\n    \"fault_free_ms\": " << clean_ns->second / 1e6
          << ",\n    \"recoverable_ms\": " << faulty_ns->second / 1e6
          << ",\n    \"retry_overhead\": "
          << faulty_ns->second / clean_ns->second;
    }
    out << "\n  },\n";
  }

  // Cross-round lazy bound substrate (core/bound_heap.h): the coverage
  // bicriteria workload run deep enough (4 rounds) that bounds survive
  // several commit/filter cycles, under forced-eager and forced-lazy
  // accounting. The selection must be bit-identical — laziness is a pure
  // eval-count optimization — and the worker-eval reduction is the number
  // the PR8 acceptance gate pins.
  {
    const auto cfg = lazy_bench_config();
    DistributedResult eager;
    DistributedResult lazy;
    const double eager_s = min_wall_seconds([&] {
      detail::ForcedLazy guard(false);
      eager = run_lazy_workload(cfg);
    });
    const double lazy_s = min_wall_seconds([&] {
      detail::ForcedLazy guard(true);
      lazy = run_lazy_workload(cfg);
    });
    const double worker_eager = double(eager.stats.total_worker_evals());
    const double worker_lazy = double(lazy.stats.total_worker_evals());
    const double total_eager = double(eager.stats.total_evals());
    const double total_lazy = double(lazy.stats.total_evals());
    out << "  \"lazy\": {\n"
        << "    \"workload\": \"bicriteria k=10 rounds=4 output=40 on "
           "powerlaw-cluster neighborhood coverage (3000 nodes)\",\n"
        << "    \"repeat\": " << g_repeat << ",\n"
        << "    \"selection_identical\": "
        << (lazy.solution == eager.solution ? "true" : "false") << ",\n"
        << "    \"eager_total_evals\": " << eager.stats.total_evals()
        << ",\n"
        << "    \"lazy_total_evals\": " << lazy.stats.total_evals() << ",\n"
        << "    \"eager_worker_evals\": "
        << eager.stats.total_worker_evals() << ",\n"
        << "    \"lazy_worker_evals\": " << lazy.stats.total_worker_evals()
        << ",\n"
        << "    \"evals_avoided\": " << lazy.stats.total_evals_avoided()
        << ",\n"
        << "    \"worker_eval_reduction\": "
        << (worker_lazy > 0.0 ? worker_eager / worker_lazy : 0.0) << ",\n"
        << "    \"total_eval_reduction\": "
        << (total_lazy > 0.0 ? total_eager / total_lazy : 0.0) << ",\n"
        << "    \"eager_min_s\": " << eager_s << ",\n"
        << "    \"lazy_min_s\": " << lazy_s << ",\n"
        << "    \"wall_speedup\": " << (lazy_s > 0.0 ? eager_s / lazy_s : 0.0)
        << "\n  },\n";
  }

  // Dynamic corpus: mutation-path costs and the certified churn ledger,
  // measured at write time (deterministic seeds, so stable across runs).
  {
    const auto sets = churn_bench_sets();
    const std::uint32_t universe = sets->universe_size();
    constexpr std::size_t kMutations = 512;
    constexpr std::size_t kRebuildMutations = 32;
    util::Rng rng(31);
    // Payloads drawn up front so the timings cover apply, not generation.
    std::vector<std::vector<std::uint32_t>> payloads(kMutations);
    for (auto& p : payloads) {
      p.resize(2 + rng.next_below(6));
      for (auto& e : p) {
        e = static_cast<std::uint32_t>(rng.next_below(universe));
      }
    }

    // Corpus apply alone: canonicalize + append to the overlay and log.
    const double corpus_s = min_wall_seconds([&] {
      data::DynamicCorpus corpus(sets, "bench-apply");
      for (const auto& p : payloads) corpus.insert(p);
    });

    // Incremental path: the oracle absorbs each insert in O(degree).
    double incremental_s = 0.0;
    {
      data::DynamicCorpus corpus(sets, "bench-incremental");
      const auto oracle = data::make_dynamic_oracle(corpus, "coverage", {});
      util::Timer timer;
      for (const auto& p : payloads) {
        const ElementId id = corpus.insert(p);
        oracle->apply_insert(id, corpus.log().back().items, corpus.epoch());
      }
      incremental_s = timer.elapsed_seconds();
    }

    // Rebuild path: what a non-incremental oracle pays per mutation.
    double rebuild_s = 0.0;
    {
      data::DynamicCorpus corpus(sets, "bench-rebuild");
      data::DynamicOracleOptions opts;
      opts.prefer_incremental = false;
      util::Timer timer;
      for (std::size_t i = 0; i < kRebuildMutations; ++i) {
        corpus.insert(payloads[i]);
        benchmark::DoNotOptimize(
            data::make_dynamic_oracle(corpus, "coverage", opts));
      }
      rebuild_s = timer.elapsed_seconds();
    }
    const double incr_us = incremental_s * 1e6 / double(kMutations);
    const double rebuild_us = rebuild_s * 1e6 / double(kRebuildMutations);

    // Certified maintenance under churn, and window-advance latency.
    util::Timer churn_timer;
    const auto maintainer = run_churn_workload(200);
    const double churn_s = churn_timer.elapsed_seconds();
    const MaintainStats& churn = maintainer->stats();

    CoverageOracle window_proto(shared_sets());
    WindowConfig wcfg;
    wcfg.window = 64;
    wcfg.k = 10;
    wcfg.decay_epsilon = 0.3;
    SlidingWindowSieve sieve(window_proto, wcfg);
    util::Rng wrng(33);
    constexpr std::size_t kArrivals = 2'000;
    util::Timer window_timer;
    for (std::size_t t = 0; t < kArrivals; ++t) {
      sieve.push(
          static_cast<ElementId>(wrng.next_below(window_proto.ground_size())));
    }
    const double window_s = window_timer.elapsed_seconds();
    const WindowStats& wstats = sieve.stats();

    out << "  \"dynamic\": {\n"
        << "    \"corpus\": \"dblp-like " << sets->num_sets()
        << " sets, universe " << universe << "\",\n"
        << "    \"mutations\": " << kMutations << ",\n"
        << "    \"corpus_apply_us_per_mutation\": "
        << corpus_s * 1e6 / double(kMutations) << ",\n"
        << "    \"incremental_apply_us_per_mutation\": " << incr_us << ",\n"
        << "    \"rebuild_us_per_mutation\": " << rebuild_us << ",\n"
        << "    \"incremental_vs_rebuild_speedup\": "
        << (incr_us > 0.0 ? rebuild_us / incr_us : 0.0) << ",\n"
        << "    \"churn\": {"
        << "\"steps\": 200, \"epsilon\": " << churn_config().epsilon
        << ", \"kept\": " << churn.kept << ", \"resolved\": " << churn.resolved
        << ", \"resolve_rate\": " << churn.resolve_rate()
        << ", \"certificate_evals\": " << churn.certificate_evals
        << ", \"resolve_evals\": " << churn.resolve_evals
        << ", \"oracle_rebuilds\": " << churn.oracle_rebuilds
        << ", \"wall_s\": " << churn_s << "},\n"
        << "    \"window\": {"
        << "\"arrivals\": " << kArrivals << ", \"window\": " << wcfg.window
        << ", \"k\": " << wcfg.k
        << ", \"push_us_per_arrival\": " << window_s * 1e6 / double(kArrivals)
        << ", \"kept\": " << wstats.kept
        << ", \"resolves\": " << wstats.resolves
        << ", \"resolve_rate\": " << wstats.resolve_rate() << "}\n  },\n";
  }

  // Parallel scaling of the exemplar oracle-internal cost-point split.
  {
    out << "  \"parallel\": {\n"
        << "    \"hardware_concurrency\": "
        << std::thread::hardware_concurrency();
    const auto batch = raw_ns.find("BM_ExemplarExactGainBatch");
    const auto par = raw_ns.find("BM_ExemplarExactGainBatchParallel");
    if (batch != raw_ns.end() && par != raw_ns.end() && par->second > 0.0) {
      out << ",\n    \"exemplar_batch_ns_per_eval\": "
          << batch->second / double(kExemplarBatch)
          << ",\n    \"exemplar_parallel_ns_per_eval\": "
          << par->second / double(kExemplarBatch)
          << ",\n    \"parallel_scaling\": " << batch->second / par->second;
    }
    out << "\n  }\n}\n";
  }
}

// The bench-smoke scaling assertion: on a host with >= 8 hardware threads
// the cost-dimension-parallel exemplar batch must beat the serial batch by
// >= 2x. Returns nonzero on violation; skipped when either benchmark did
// not run (filtered out) or the host is too narrow to scale.
int check_parallel_scaling(
    const std::vector<benchmark::BenchmarkReporter::Run>& runs) {
  const unsigned hc = std::thread::hardware_concurrency();
  if (hc < 8) {
    // Narrow container (CI runners are often 1-4 cores): scaling cannot be
    // demonstrated, so the gate is skipped *explicitly* rather than failing.
    std::fprintf(stderr,
                 "SKIP: parallel-scaling gate needs >= 8 hardware threads, "
                 "host has %u\n",
                 hc);
    return 0;
  }
  double batch = 0.0, par = 0.0;
  for (const auto& run : runs) {
    if (run.benchmark_name() == "BM_ExemplarExactGainBatch") {
      batch = run.GetAdjustedRealTime();
    } else if (run.benchmark_name() == "BM_ExemplarExactGainBatchParallel") {
      par = run.GetAdjustedRealTime();
    }
  }
  if (batch <= 0.0 || par <= 0.0) return 0;
  const double scaling = batch / par;
  if (scaling < 2.0) {
    std::fprintf(stderr,
                 "FAIL: exemplar parallel batch scaling %.2fx < 2x on %u "
                 "hardware threads\n",
                 scaling, hc);
    return 1;
  }
  return 0;
}

// The prob_coverage batch regression gate: whenever the scalar and batch
// gain benchmarks both ran, batching kProbBatch candidates must be faster
// per evaluation than scalar gain() calls. Guards the candidate-interleaved
// tile in prob_coverage.cpp against re-introducing the serial-add-chain
// layout that made the batch path *slower* than scalar (0.95x in PR4).
int check_prob_batch_speedup(
    const std::vector<benchmark::BenchmarkReporter::Run>& runs) {
  double scalar = 0.0, batch = 0.0;
  for (const auto& run : runs) {
    if (run.benchmark_name() == "BM_ProbCoverageGain") {
      scalar = run.GetAdjustedRealTime();
    } else if (run.benchmark_name() == "BM_ProbCoverageGainBatch") {
      batch = run.GetAdjustedRealTime() / double(kProbBatch);
    }
  }
  if (scalar <= 0.0 || batch <= 0.0) return 0;
  const double speedup = scalar / batch;
  if (speedup <= 1.0) {
    std::fprintf(stderr,
                 "FAIL: prob_coverage batch gain %.3fx vs scalar — the batch "
                 "path must win (> 1.0x)\n",
                 speedup);
    return 1;
  }
  return 0;
}

// The lazy-pruning regression gate: on the 4-round bicriteria workload the
// bound-carrying run must produce the bit-identical selection with strictly
// fewer oracle evaluations than eager accounting. Runs unconditionally —
// it does not depend on --benchmark_filter, because it is the exit
// criterion for the bound substrate itself, not a timing comparison.
int check_lazy_pruning() {
  const auto cfg = lazy_bench_config();
  DistributedResult eager;
  DistributedResult lazy;
  {
    detail::ForcedLazy guard(false);
    eager = run_lazy_workload(cfg);
  }
  {
    detail::ForcedLazy guard(true);
    lazy = run_lazy_workload(cfg);
  }
  if (lazy.solution != eager.solution) {
    std::fprintf(stderr,
                 "FAIL: lazy bicriteria selection differs from eager — bound "
                 "carrying must be a pure eval-count optimization\n");
    return 1;
  }
  const std::uintmax_t eager_evals = eager.stats.total_evals();
  const std::uintmax_t lazy_evals = lazy.stats.total_evals();
  if (lazy_evals >= eager_evals) {
    std::fprintf(stderr,
                 "FAIL: lazy bounds avoided nothing (%ju evals lazy vs %ju "
                 "eager)\n",
                 lazy_evals, eager_evals);
    return 1;
  }
  return 0;
}

// The dynamic-churn regression gate: on the deterministic churn workload
// the certified maintenance loop must absorb at least one batch — a 100%
// re-solve rate means the certificate never pays for itself and the
// dynamic layer degenerated into solve-from-scratch-per-mutation. Runs
// unconditionally, like check_lazy_pruning.
int check_dynamic_churn() {
  const auto maintainer = run_churn_workload(64);
  const MaintainStats& stats = maintainer->stats();
  if (stats.batches == 0 || stats.resolved >= stats.batches) {
    std::fprintf(stderr,
                 "FAIL: certified maintenance re-solved %ju of %ju churn "
                 "batches — the re-solve rate must stay below 100%%\n",
                 std::uintmax_t(stats.resolved), std::uintmax_t(stats.batches));
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip our --json[=path] / --trace / --repeat flags before handing argv
  // to google-benchmark.
  std::string json_path;
  bool print_trace = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      json_path = "BENCH_micro.json";
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = std::string(arg.substr(7));
    } else if (arg == "--trace") {
      print_trace = true;
    } else if (arg.rfind("--repeat=", 0) == 0) {
      g_repeat = std::max<std::size_t>(
          1, std::strtoull(std::string(arg.substr(9)).c_str(), nullptr, 10));
    } else if (arg == "--repeat" && i + 1 < argc) {
      g_repeat = std::max<std::size_t>(
          1, std::strtoull(argv[++i], nullptr, 10));
    } else {
      args.push_back(argv[i]);
    }
  }
  if (print_trace) {
    auto cfg = fault_bench_config();
    cfg.runtime.faults = dist::FaultPlan::recoverable(99);
    cfg.runtime.retry.max_attempts = 0;
    const auto result = run_fault_workload(cfg);
    std::printf("%s\n", dist::trace_to_json(result.stats.trace).c_str());
    if (argc == 2) return 0;  // --trace alone: skip the benchmark run
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty()) write_gain_json(json_path, reporter.collected());
  return check_parallel_scaling(reporter.collected()) |
         check_prob_batch_speedup(reporter.collected()) |
         check_lazy_pruning() | check_dynamic_churn();
}
