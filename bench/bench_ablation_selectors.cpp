// Ablation A4: the machine-side selector (§4.2's "lazy variation" choice).
//
// The paper runs plain greedy for coverage and the lazier-than-lazy
// stochastic greedy (c = 3) for exemplar clustering. This harness runs all
// three selectors inside the same one-round distributed pipeline on both
// objective families and reports quality vs oracle evaluations — the
// justification for each choice: lazy is free quality-wise, stochastic
// trades a hair of quality for a large evaluation cut (decisive when each
// evaluation costs O(sample·dim) as in clustering).
#include <cstdio>
#include <memory>

#include "bench_support.h"
#include "core/bicriteria.h"
#include "data/graph_gen.h"
#include "data/vectors_gen.h"
#include "objectives/coverage.h"
#include "objectives/exemplar.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

constexpr double kP0Dist = 2.0;

struct SelectorCase {
  bds::MachineSelector selector;
  const char* name;
};

constexpr SelectorCase kSelectors[] = {
    {bds::MachineSelector::kGreedy, "naive greedy"},
    {bds::MachineSelector::kLazyGreedy, "lazy greedy"},
    {bds::MachineSelector::kStochasticGreedy, "stochastic (c=3)"},
};

}  // namespace

int main() {
  using namespace bds;
  bench::print_banner(
      "ablation_selectors", "§4.2 selector choice (lazy / stochastic)",
      "one-round distributed run with naive / lazy / stochastic machine\n"
      "selectors on a coverage and a clustering instance: quality vs\n"
      "worker oracle evaluations and wall time.");

  // --- coverage ---
  {
    bench::print_section("coverage (DBLP-like, 20k sets, k = 20)");
    const auto sets = data::make_dblp_like(20'000, 1);
    const CoverageOracle proto(sets);
    const auto ground = bench::iota_ids(sets->num_sets());

    util::Table table({"selector", "f(S)", "worker evals",
                       "critical-path evals", "wall (s)"});
    for (const auto& c : kSelectors) {
      BicriteriaConfig cfg;
      cfg.k = 20;
      cfg.selector = c.selector;
      cfg.runtime.seed = 3;
      util::Timer timer;
      const auto result = bicriteria_greedy(proto, ground, cfg);
      table.add_row({c.name, util::Table::fmt(result.value, 0),
                     util::Table::fmt_int(
                         result.stats.total_worker_evals()),
                     util::Table::fmt_int(
                         result.stats.critical_path_evals()),
                     util::Table::fmt(timer.elapsed_seconds(), 3)});
    }
    bench::emit_table(table, "ablation_selectors_coverage",
                      {"selector", "value", "worker_evals", "critical_path",
                       "wall"});
  }

  // --- exemplar clustering ---
  {
    bench::print_section("clustering (LDA-like 6k x 100, k = 10, sampled)");
    data::LdaVectorsConfig gen;
    gen.documents = 6'000;
    gen.topics = 100;
    gen.clusters = 20;
    gen.seed = 7;
    const auto points = data::make_lda_like_vectors(gen);
    util::Rng central_rng(13);
    const SampledExemplarOracle proto(points, kP0Dist, 500, central_rng);
    const ExemplarOracle exact(points, kP0Dist);
    const auto ground = bench::iota_ids(points->size());

    util::Table table({"selector", "exact f(S)", "worker evals",
                       "critical-path evals", "wall (s)"});
    for (const auto& c : kSelectors) {
      BicriteriaConfig cfg;
      cfg.k = 10;
      cfg.selector = c.selector;
      cfg.runtime.seed = 3;
      cfg.machine_oracle_factory =
          [&points](std::size_t machine)
          -> std::unique_ptr<SubmodularOracle> {
        util::Rng rng(util::mix64(600 + machine));
        return std::make_unique<SampledExemplarOracle>(points, kP0Dist, 500,
                                                       rng);
      };
      util::Timer timer;
      const auto result = bicriteria_greedy(proto, ground, cfg);
      const double exact_value = evaluate_set(exact, result.solution);
      table.add_row({c.name, util::Table::fmt(exact_value, 1),
                     util::Table::fmt_int(
                         result.stats.total_worker_evals()),
                     util::Table::fmt_int(
                         result.stats.critical_path_evals()),
                     util::Table::fmt(timer.elapsed_seconds(), 3)});
    }
    bench::emit_table(table, "ablation_selectors_clustering",
                      {"selector", "value", "worker_evals", "critical_path",
                       "wall"});
  }

  std::printf(
      "expected shape: lazy matches naive greedy's value exactly at a\n"
      "fraction of the evaluations; stochastic cuts evaluations further\n"
      "(per-pick cost c·N'/k' instead of N') at a small quality cost —\n"
      "why §4.2 uses it for the expensive clustering oracle.\n");
  return 0;
}
