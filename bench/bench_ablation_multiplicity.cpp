// Ablation A1: what the multiplicity trick and the hybrid selection buy.
//
// §2.2 claims the output-size bound drops from Õ(α²k) (plain random
// partition) to Õ(αk) with multiplicity C = α·lnα, and to O(αk) with
// HybridAlg — at the price of C× the scatter communication. This harness
// runs all three variants at equal (ε, r) on the synthetic hard instance
// and reports achieved quality, realized output size, the theorem's bound,
// and communication, across an ε sweep.
#include <cstdio>

#include "bench_support.h"
#include "core/bicriteria.h"
#include "data/synthetic_coverage.h"
#include "objectives/coverage.h"

int main() {
  using namespace bds;
  bench::print_banner(
      "ablation_multiplicity", "§2.2 / Theorems 2.2-2.4",
      "Theory vs Multiplicity vs Hybrid at equal (eps, r = 1): output size\n"
      "(realized and theorem bound), quality, and communication.");

  data::SyntheticCoverageConfig data_cfg;
  data_cfg.universe_size = 3'000;
  data_cfg.planted_sets = 30;
  data_cfg.random_sets = 30'000;
  data_cfg.seed = 2017;
  const auto instance = data::make_synthetic_coverage(data_cfg);
  const CoverageOracle oracle(instance.sets);
  const auto ground = bench::iota_ids(instance.sets->num_sets());
  const std::size_t k = data_cfg.planted_sets;
  const double opt = data_cfg.universe_size;  // planted optimum value

  util::Table table({"eps", "mode", "alpha", "multiplicity C", "|S|",
                     "bound on |S|", "f(S)/OPT", "comm (KiB)"});

  const struct {
    BicriteriaMode mode;
    const char* name;
  } modes[] = {
      {BicriteriaMode::kTheory, "Theory (mult=1)"},
      {BicriteriaMode::kMultiplicity, "Multiplicity"},
      {BicriteriaMode::kHybrid, "Hybrid"},
  };

  for (const double eps : {0.3, 0.2, 0.1}) {
    for (const auto& m : modes) {
      BicriteriaConfig cfg;
      cfg.mode = m.mode;
      cfg.k = k;
      cfg.rounds = 1;
      cfg.epsilon = eps;
      cfg.runtime.seed = 3;
      const auto plan = plan_bicriteria(cfg, ground.size());
      const auto result = bicriteria_greedy(oracle, ground, cfg);
      table.add_row(
          {util::Table::fmt(eps, 2), m.name, util::Table::fmt(plan.alpha, 1),
           util::Table::fmt_int(plan.multiplicity),
           util::Table::fmt_int(result.solution.size()),
           util::Table::fmt_int(plan.output_bound),
           util::Table::fmt_pct(result.value / opt),
           util::Table::fmt(
               double(result.stats.bytes_communicated()) / 1024.0, 0)});
    }
  }
  bench::emit_table(table, "ablation_multiplicity",
                    {"eps", "mode", "alpha", "multiplicity", "items",
                     "item_bound", "ratio", "comm_kib"});

  std::printf(
      "expected shape: all three modes clear (1-eps); the theorem bound on\n"
      "|S| orders Theory >> Multiplicity > Hybrid, while scatter\n"
      "communication orders the other way (multiplicity ships each item C\n"
      "times).\n");
  return 0;
}
