// Ablation A2: the rounds-vs-quality trade-off (Lemma 2.1 / §4.1).
//
// Lemma 2.1 says every round contracts the residual gap f(OPT) − f(S) by a
// multiplicative factor. The clean place to observe that is the practical
// configuration of §4 (fixed total output k, split k/r per round) on the
// synthetic hard instance, where the paper's Figure 1(a) shows multiple
// rounds improving the solution at equal output size. This harness prints
// the residual gap after every round and its per-round contraction factor,
// for r = 1..5 at k = K, plus a theory-mode corner (ε close to 1, so the
// budgets stay small and the contraction is not saturated).
#include <cstdio>

#include "bench_support.h"
#include "core/bicriteria.h"
#include "data/synthetic_coverage.h"
#include "objectives/coverage.h"

int main() {
  using namespace bds;
  bench::print_banner(
      "ablation_rounds", "Lemma 2.1 / Figure 1(a) rounds trade-off",
      "practical BicriteriaGreedy at fixed total output k = K on the hard\n"
      "instance: residual gap after every round and its contraction factor,\n"
      "for r = 1..5.");

  data::SyntheticCoverageConfig data_cfg;
  data_cfg.universe_size = 10'000;
  data_cfg.planted_sets = 100;
  data_cfg.random_sets = 100'000;
  data_cfg.seed = 2017;
  const auto instance = data::make_synthetic_coverage(data_cfg);
  const CoverageOracle oracle(instance.sets);
  const auto ground = bench::iota_ids(instance.sets->num_sets());
  const std::size_t K = data_cfg.planted_sets;
  const double opt = data_cfg.universe_size;  // planted optimum covers U

  util::Table gaps({"r", "round", "items so far", "f(S)/OPT",
                    "gap/OPT", "contraction vs prev round"});
  util::Table summary({"r", "final f(S)/OPT", "total items"});

  for (const std::size_t r : {1u, 2u, 3u, 4u, 5u}) {
    BicriteriaConfig cfg;
    cfg.mode = BicriteriaMode::kPractical;
    cfg.k = K;
    cfg.output_items = K;  // equal output for every r: rounds do the work
    cfg.rounds = r;
    cfg.runtime.seed = 7;
    const auto result = bicriteria_greedy(oracle, ground, cfg);

    double prev_gap = opt;  // gap before round 1 is f(OPT) - f(empty)
    std::size_t items = 0;
    for (const auto& trace : result.rounds) {
      items += trace.items_added;
      const double gap = opt - trace.value_after;
      gaps.add_row({util::Table::fmt_int(r),
                    util::Table::fmt_int(trace.round + 1),
                    util::Table::fmt_int(items),
                    util::Table::fmt_pct(trace.value_after / opt),
                    util::Table::fmt(gap / opt, 4),
                    prev_gap > 0 ? util::Table::fmt(gap / prev_gap, 3) : "-"});
      prev_gap = gap;
    }
    summary.add_row({util::Table::fmt_int(r),
                     util::Table::fmt_pct(result.value / opt),
                     util::Table::fmt_int(result.solution.size())});
  }

  bench::emit_table(gaps, "ablation_rounds_gaps",
                    {"r", "round", "items", "ratio", "gap", "contraction"});
  bench::emit_table(summary, "ablation_rounds_summary",
                    {"r", "final_ratio", "items"});

  std::printf(
      "expected shape: at equal output size the final ratio improves\n"
      "monotonically with r (paper Fig. 1(a): r=5 at k=K matches the\n"
      "single-machine greedy); every round multiplies the residual gap by\n"
      "a factor well below 1 — the geometric contraction Lemma 2.1 proves.\n");
  return 0;
}
