// Extension bench: adaptive rounds with the upper-bound certificate.
//
// A deployment can't know ahead of time how many rounds an instance needs.
// adaptive_bicriteria turns the §4.1 upper bound into a stopping rule:
// spend another round only while the solution is not yet *certified*
// within the target. An instructive subtlety this bench surfaces: the
// certificate's tightness tracks instance *saturation*, not greedy
// hardness. The synthetic "hard" instance saturates (its universe is fully
// coverable, so after two rounds the bound collapses onto f(S)) and
// certifies fast, while sparse graph/bigram instances keep fat top-k
// marginals — the bound stays loose and the rule conservatively spends its
// round budget. Either way every round contracts the gap (Lemma 2.1) and
// the trajectory is monotone.
#include <cstdio>
#include <memory>

#include "bench_support.h"
#include "core/adaptive.h"
#include "data/bigram_gen.h"
#include "data/graph_gen.h"
#include "data/synthetic_coverage.h"
#include "objectives/coverage.h"

int main() {
  using namespace bds;
  bench::print_banner(
      "adaptive", "extension: certificate-driven round count",
      "adaptive_bicriteria with target 95% on saturating and\n"
      "non-saturating instances: rounds spent and certified ratio per\n"
      "round.");

  struct Case {
    std::string name;
    std::shared_ptr<const SetSystem> sets;
    std::size_t k;
  };
  data::SyntheticCoverageConfig hard_cfg;
  hard_cfg.universe_size = 4'000;
  hard_cfg.planted_sets = 40;
  hard_cfg.random_sets = 40'000;
  hard_cfg.seed = 2017;
  data::BigramConfig bigram_cfg;
  bigram_cfg.books = 800;
  bigram_cfg.vocabulary = 2'000;
  bigram_cfg.seed = 3;
  const std::vector<Case> cases{
      {"DBLP-like (loose UB)", data::make_dblp_like(20'000, 1), 10},
      {"Gutenberg-like (loose UB)", data::make_bigram_sets(bigram_cfg), 10},
      {"synthetic hard (saturating)", data::make_synthetic_coverage(hard_cfg).sets, 40},
  };

  util::Table table({"instance", "rounds spent", "target reached",
                     "certified ratio", "items output",
                     "ratio trajectory"});
  for (const auto& c : cases) {
    const CoverageOracle oracle(c.sets);
    const auto ground = bench::iota_ids(c.sets->num_sets());
    AdaptiveConfig cfg;
    cfg.k = c.k;
    cfg.target_ratio = 0.95;
    cfg.max_rounds = 6;
    cfg.runtime.seed = 7;
    const auto adaptive = adaptive_bicriteria(oracle, ground, cfg);

    std::string trajectory;
    for (const double r : adaptive.ratio_after_round) {
      if (!trajectory.empty()) trajectory += " -> ";
      trajectory += util::Table::fmt_pct(r, 0);
    }
    table.add_row({c.name,
                   util::Table::fmt_int(adaptive.result.rounds.size()),
                   adaptive.target_reached ? "yes" : "no (max rounds)",
                   util::Table::fmt_pct(adaptive.certified_ratio),
                   util::Table::fmt_int(adaptive.result.solution.size()),
                   trajectory});
  }
  bench::emit_table(table, "adaptive",
                    {"instance", "rounds", "reached", "ratio", "items",
                     "trajectory"});

  std::printf(
      "expected shape: the saturating instance certifies 95%% within two\n"
      "rounds (its upper bound collapses onto f(S)); the sparse instances\n"
      "keep a loose bound, so the rule keeps spending rounds and each one\n"
      "still contracts the gap monotonically — a conservative certificate\n"
      "never stops too early, only too late.\n");
  return 0;
}
