// Extra comparison (related-work corner): where the one-pass streaming
// algorithm [4] sits relative to the distributed pipelines on the paper's
// synthetic hard instance — the scalability-spectrum table the related-work
// section describes in prose. Columns report the axes each model trades:
// passes/rounds over the data, items held in memory, oracle evaluations,
// and achieved quality.
#include <cstdio>

#include "bench_support.h"
#include "core/baselines.h"
#include "core/bicriteria.h"
#include "core/streaming.h"
#include "data/synthetic_coverage.h"
#include "objectives/coverage.h"

int main() {
  using namespace bds;
  bench::print_banner(
      "streaming_compare", "related work §1.1 (scalability spectrum)",
      "SieveStreaming (1 pass) vs one-round distributed vs centralized\n"
      "greedy on the synthetic hard instance; quality, memory, and work.");

  data::SyntheticCoverageConfig data_cfg;
  data_cfg.universe_size = 4'000;
  data_cfg.planted_sets = 40;
  data_cfg.random_sets = 40'000;
  data_cfg.seed = 2017;
  const auto instance = data::make_synthetic_coverage(data_cfg);
  const CoverageOracle oracle(instance.sets);
  const auto ground = bench::iota_ids(instance.sets->num_sets());
  const std::size_t k = data_cfg.planted_sets;
  const double opt = data_cfg.universe_size;

  util::Table table({"algorithm", "passes/rounds", "items in memory",
                     "oracle evals", "f(S)/OPT"});

  {
    const auto result = sieve_streaming(oracle, ground, {k, 0.2});
    table.add_row({"SieveStreaming (k items)", "1 pass",
                   util::Table::fmt_int(result.peak_memory_items),
                   util::Table::fmt_int(result.oracle_evals),
                   util::Table::fmt_pct(result.value / opt)});
  }
  {
    const auto central = centralized_greedy(oracle, ground, k);
    table.add_row({"centralized greedy (k items)", "k passes",
                   util::Table::fmt_int(ground.size()),
                   util::Table::fmt_int(central.stats.total_evals()),
                   util::Table::fmt_pct(central.value / opt)});
  }
  {
    BicriteriaConfig cfg;
    cfg.k = k;
    cfg.runtime.seed = 3;
    const auto result = bicriteria_greedy(oracle, ground, cfg);
    table.add_row({"distributed greedy (1 round, k items)", "1 round",
                   util::Table::fmt_int(
                       result.stats.rounds[0].max_machine_items),
                   util::Table::fmt_int(result.stats.total_evals()),
                   util::Table::fmt_pct(result.value / opt)});
  }
  {
    BicriteriaConfig cfg;
    cfg.k = k;
    cfg.output_items = 2 * k;
    cfg.runtime.seed = 3;
    const auto result = bicriteria_greedy(oracle, ground, cfg);
    table.add_row({"distributed bicriteria (1 round, 2k items)", "1 round",
                   util::Table::fmt_int(
                       result.stats.rounds[0].max_machine_items),
                   util::Table::fmt_int(result.stats.total_evals()),
                   util::Table::fmt_pct(result.value / opt)});
  }
  bench::emit_table(table, "streaming_compare",
                    {"algorithm", "passes", "memory", "evals", "ratio"});

  std::printf(
      "expected shape: the instance is adversarial *for greedy* — the\n"
      "inflated decoys bait every max-marginal selector (centralized and\n"
      "distributed k-item runs land near 80%%), while the threshold sieve\n"
      "accepts the planted sets as they stream by and can reach the\n"
      "optimum despite its weaker 1/2-eps worst case. The bicriteria run\n"
      "recovers greedy's gap by outputting 2k items in one round — the\n"
      "paper's trade. Memory: sieve ~ k*log(k)/eps items, distributed\n"
      "machines ~ n/m items, centralized everything.\n");
  return 0;
}
