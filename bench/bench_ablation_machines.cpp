// Ablation A3: the machine-count trade-off of footnote 3.
//
// m controls the balance between worker load (each machine holds ~n/m
// items) and the coordinator load (it gathers m·k' items). Footnote 3
// recommends m = √(n/k') to equalize the two. This harness sweeps m on a
// DBLP-like coverage instance and reports worker/coordinator evaluations,
// the critical path, and solution quality (which should be flat in m —
// quality is not what m buys).
#include <cmath>
#include <cstdio>

#include "bench_support.h"
#include "core/bicriteria.h"
#include "data/graph_gen.h"
#include "objectives/coverage.h"

int main() {
  using namespace bds;
  bench::print_banner(
      "ablation_machines", "footnote 3 (m = sqrt(n/k'))",
      "machine-count sweep at fixed k: per-round worker vs coordinator\n"
      "load, critical-path evaluations, and quality.");

  const auto sets = data::make_dblp_like(30'000, 1);
  const CoverageOracle oracle(sets);
  const auto ground = bench::iota_ids(sets->num_sets());
  const std::size_t k = 20;

  const auto balanced = static_cast<std::size_t>(
      std::ceil(std::sqrt(double(ground.size()) / double(k))));
  std::printf("n = %zu, k = %zu -> balanced m = %zu\n\n", ground.size(), k,
              balanced);

  util::Table table({"m", "max items/machine", "worker evals (max machine)",
                     "coordinator evals", "critical-path evals", "f(S)",
                     "note"});
  for (const std::size_t m :
       {std::size_t(4), std::size_t(12), balanced, std::size_t(100),
        std::size_t(300)}) {
    BicriteriaConfig cfg;
    cfg.mode = BicriteriaMode::kPractical;
    cfg.k = k;
    cfg.machines = m;
    cfg.runtime.seed = 9;
    const auto result = bicriteria_greedy(oracle, ground, cfg);
    const auto& round = result.stats.rounds[0];
    table.add_row({util::Table::fmt_int(m),
                   util::Table::fmt_int(round.max_machine_items),
                   util::Table::fmt_int(round.max_machine_evals),
                   util::Table::fmt_int(round.central_evals),
                   util::Table::fmt_int(result.stats.critical_path_evals()),
                   util::Table::fmt(result.value, 0),
                   m == balanced ? "<- sqrt(n/k)" : ""});
  }
  bench::emit_table(table, "ablation_machines",
                    {"m", "max_items", "worker_evals", "central_evals",
                     "critical_path", "value", "note"});

  std::printf(
      "expected shape: worker load falls ~1/m while coordinator load grows\n"
      "~m; the critical path is minimized near m = sqrt(n/k); quality is\n"
      "essentially flat across the sweep.\n");
  return 0;
}
