// Shared scaffolding for the experiment harness: uniform headers, table
// emission with optional CSV mirroring (set BDS_CSV_DIR), and the common
// "ratio vs upper bound" bookkeeping the figures use.
#pragma once

#include <cstdio>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "core/runtime_options.h"
#include "data/io.h"
#include "util/csv.h"
#include "util/element.h"
#include "util/table.h"

namespace bds::bench {

// Prints the standard experiment banner.
inline void print_banner(const std::string& id, const std::string& paper_ref,
                         const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s — reproduces %s\n", id.c_str(), paper_ref.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("==============================================================\n\n");
}

// Prints a sub-section header (e.g. one dataset within a figure).
inline void print_section(const std::string& title) {
  std::printf("--- %s ---\n", title.c_str());
}

// Prints the table and mirrors it to $BDS_CSV_DIR/<csv_name>.csv when set.
inline void emit_table(const util::Table& table, const std::string& csv_name,
                       const std::vector<std::string>& csv_header) {
  std::printf("%s\n", table.to_string().c_str());
  if (const auto path = util::csv_output_path(csv_name)) {
    util::CsvWriter csv(*path, csv_header);
    for (std::size_t r = 0; r < table.rows(); ++r) csv.write_row(table.row(r));
    std::printf("[csv] wrote %zu rows to %s\n\n", csv.rows_written(),
                path->c_str());
  }
}

inline std::vector<ElementId> iota_ids(std::size_t n) {
  std::vector<ElementId> ids(n);
  std::iota(ids.begin(), ids.end(), ElementId{0});
  return ids;
}

// Loads a saved coverage dataset honoring RuntimeOptions::mmap_datasets:
// zero-copy mapped when set (v2 files only), heap-loaded otherwise. Both
// backings hold identical bytes, so the harness numbers differ only in
// load time and resident memory, never in selections or values.
inline std::shared_ptr<const SetSystem> load_or_map_set_system(
    const std::string& path, const RuntimeOptions& runtime) {
  return runtime.mmap_datasets ? data::map_set_system(path)
                               : data::load_set_system(path);
}

}  // namespace bds::bench
