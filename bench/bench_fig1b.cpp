// Figure 1(b): coverage maximization on the "real" datasets.
//
// Paper setup (§4.1): target size K = 10; distributed algorithm with one
// round (r = 1), m = ⌈√(n/k)⌉; output sizes k = 10..70; value reported as a
// fraction of the best computed upper bound for K = 10, with the random
// baseline for contrast. Datasets: DBLP co-authorship, LiveJournal
// friendship and Gutenberg bi-grams — replaced here by structure-matched
// synthetic stand-ins (see DESIGN.md §2.3): BA-graph neighborhoods (sparse
// and dense) and a Zipfian bi-gram family.
//
// Paper's observations this must reproduce: already at k = 2K the ratio
// exceeds 98-99% on every dataset, and one round suffices (multi-round runs
// look the same); random stays far below.
// Real corpora: `--load=corpora/dblp.bds` (see scripts/fetch_corpora.sh)
// runs the figure on an actual converted corpus instead of the stand-ins;
// `--mmap` maps it zero-copy, `--k N` overrides the target size K.
#include <cstdio>
#include <filesystem>
#include <memory>

#include "bench_support.h"
#include "core/bicriteria.h"
#include "core/greedy.h"
#include "core/upper_bound.h"
#include "data/bigram_gen.h"
#include "data/graph_gen.h"
#include "data/io.h"
#include "data/profile.h"
#include "objectives/coverage.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

struct Dataset {
  std::string name;
  std::shared_ptr<const bds::SetSystem> sets;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace bds;
  const util::Flags flags(argc, argv);
  bench::print_banner(
      "fig1b", "Figure 1(b) (§4.1, real-dataset coverage)",
      "value/upper-bound vs output size k (K = 10, r = 1) on DBLP-like,\n"
      "LiveJournal-like and Gutenberg-like stand-in datasets, plus the\n"
      "random baseline.");

  util::Timer gen_timer;
  std::vector<Dataset> datasets;
  if (flags.has("load")) {
    // A fetched + converted real corpus (scripts/fetch_corpora.sh) in place
    // of the stand-ins — this is the paper's actual-scale configuration.
    const std::string path = flags.get_string("load", "");
    const auto sets = flags.get_bool("mmap", false)
                          ? data::map_set_system(path)
                          : data::load_set_system(path);
    datasets.push_back({std::filesystem::path(path).stem().string(), sets});
  } else {
    data::BigramConfig bigram_cfg;
    bigram_cfg.books = 2'000;
    bigram_cfg.vocabulary = 3'000;
    bigram_cfg.min_tokens = 200;
    bigram_cfg.max_tokens = 20'000;
    bigram_cfg.seed = 3;
    datasets = {
        {"DBLP-like", data::make_dblp_like(30'000, 1)},
        {"LiveJournal-like", data::make_livejournal_like(40'000, 2)},
        {"Gutenberg-like", data::make_bigram_sets(bigram_cfg)},
    };
  }
  std::printf("dataset generation: %.1fs\n", gen_timer.elapsed_seconds());
  for (const auto& d : datasets) {
    std::printf("  %-18s %s\n", d.name.c_str(),
                data::to_string(data::profile_set_system(*d.sets)).c_str());
  }
  std::printf("\n");

  const std::size_t K = flags.get_uint("k", 10);
  const std::vector<std::size_t> ks{K, 2 * K, 3 * K, 4 * K,
                                    5 * K, 6 * K, 7 * K};

  for (const auto& dataset : datasets) {
    bench::print_section(dataset.name);
    const CoverageOracle oracle(dataset.sets);
    const auto ground = bench::iota_ids(dataset.sets->num_sets());

    std::vector<double> values;       // r = 1
    std::vector<double> values_r3;    // r = 3 ("results are very similar")
    std::vector<std::vector<ElementId>> solutions;
    for (const std::size_t k : ks) {
      BicriteriaConfig cfg;
      cfg.mode = BicriteriaMode::kPractical;
      cfg.k = K;
      cfg.output_items = k;
      cfg.rounds = 1;
      cfg.runtime.seed = 5;
      auto result = bicriteria_greedy(oracle, ground, cfg);
      values.push_back(result.value);
      solutions.push_back(std::move(result.solution));

      cfg.rounds = std::min<std::size_t>(3, k);  // output_items >= rounds
      values_r3.push_back(bicriteria_greedy(oracle, ground, cfg).value);
    }

    // Two denominators, both valid bounds on f(OPT_K):
    //  * the per-k bound f(S_k) + top-K marginals at S_k (the paper's
    //    plotted curve: always <= 100%, saturating as marginals shrink);
    //  * the best (tightest) bound across all computed solutions — against
    //    it a k >> K solution can exceed 100%, which certifies that the
    //    bicriteria output provably beats the K-item optimum.
    std::vector<double> per_k_ub;
    double best_ub = oracle.max_value();
    for (const auto& s : solutions) {
      per_k_ub.push_back(solution_upper_bound(oracle, s, ground, K));
      best_ub = std::min(best_ub, per_k_ub.back());
    }

    util::Table table({"k", "vs per-k UB", "vs best UB", "r=3 vs best UB",
                       "random vs best UB"});
    for (std::size_t i = 0; i < ks.size(); ++i) {
      auto rnd_oracle = oracle.clone();
      util::Rng rng(10 + i);
      const double rnd = random_subset(*rnd_oracle, ground, ks[i], rng).gained;
      table.add_row({util::Table::fmt_int(ks[i]),
                     util::Table::fmt_pct(values[i] / per_k_ub[i]),
                     util::Table::fmt_pct(values[i] / best_ub),
                     util::Table::fmt_pct(values_r3[i] / best_ub),
                     util::Table::fmt_pct(rnd / best_ub)});
    }
    std::printf("best upper bound on f(OPT_%zu): %.0f\n", K, best_ub);
    bench::emit_table(table, "fig1b_" + dataset.name,
                      {"k", "vs_per_k_ub", "vs_best_ub", "r3_vs_best_ub",
                       "random"});
  }

  std::printf(
      "expected shape: both curves rise with k; at k = 2K the solution\n"
      "reaches ~96-99%% of the best bound on the K-item optimum (paper:\n"
      ">98%%, >99%%, >98%% for DBLP / LiveJournal / Gutenberg); random is\n"
      "far below. 'vs best UB' values above 100%% certify the k-item\n"
      "solution beats the K-item optimum — the bicriteria pay-off.\n");
  return 0;
}
