// Figure 1(a): coverage maximization on the synthetic hard instance.
//
// Paper setup (§4.1): |U| = 10,000, planted optimum K = 100 disjoint sets,
// t = 100,000 random decoy sets inflated by ε₁ = 0.2; distributed greedy
// (practical BicriteriaGreedy) run for r ∈ {1, 2, 3, 5} rounds and output
// sizes k ≥ K, against a random baseline and the single-machine greedy
// reference. Reported: objective value as a fraction of the computed upper
// bound on f(OPT_K).
//
// Paper's headline observations this must reproduce:
//   * k = 1.5K reaches ~95% and k = 2K ~99% of the optimum;
//   * multiple rounds help on this hard instance (r = 5 ≈ the single-machine
//     greedy at k = K, paper: 81% vs 81.2%);
//   * greedy always clearly beats random.
#include <algorithm>
#include <cstdio>

#include "bench_support.h"
#include "core/baselines.h"
#include "core/bicriteria.h"
#include "core/greedy.h"
#include "core/upper_bound.h"
#include "data/synthetic_coverage.h"
#include "objectives/coverage.h"
#include "util/rng.h"
#include "util/timer.h"

int main() {
  using namespace bds;
  bench::print_banner(
      "fig1a", "Figure 1(a) (§4.1, synthetic coverage)",
      "value/upper-bound vs output size k, for rounds r in {1,2,3,5},\n"
      "random baseline and single-machine greedy reference; K = 100.");

  data::SyntheticCoverageConfig data_cfg;  // paper parameters
  data_cfg.universe_size = 10'000;
  data_cfg.planted_sets = 100;
  data_cfg.random_sets = 100'000;
  data_cfg.epsilon1 = 0.2;
  data_cfg.seed = 2017;

  util::Timer gen_timer;
  const auto instance = data::make_synthetic_coverage(data_cfg);
  std::printf("instance: %zu sets over %u elements (generated in %.1fs)\n\n",
              instance.sets->num_sets(), data_cfg.universe_size,
              gen_timer.elapsed_seconds());

  const CoverageOracle oracle(instance.sets);
  const auto ground = bench::iota_ids(instance.sets->num_sets());
  const std::size_t K = data_cfg.planted_sets;
  const std::vector<std::size_t> ks{100, 120, 140, 160, 180, 200};
  const std::vector<std::size_t> rounds{1, 2, 3, 5};

  struct Cell {
    std::size_t k = 0;
    std::size_t r = 0;
    double value = 0.0;
    std::vector<ElementId> solution;
  };
  std::vector<Cell> cells;

  // Distributed runs.
  for (const std::size_t r : rounds) {
    for (const std::size_t k : ks) {
      BicriteriaConfig cfg;
      cfg.mode = BicriteriaMode::kPractical;
      cfg.k = K;
      cfg.output_items = k;
      cfg.rounds = r;
      cfg.runtime.seed = 7;
      Cell cell;
      cell.k = k;
      cell.r = r;
      auto result = bicriteria_greedy(oracle, ground, cfg);
      cell.value = result.value;
      cell.solution = std::move(result.solution);
      cells.push_back(std::move(cell));
    }
  }

  // Single-machine greedy at k = K (the paper's reference line).
  const auto central = centralized_greedy(oracle, ground, K);

  // Random baseline per k (averaged over a few trials).
  std::vector<double> random_value(ks.size(), 0.0);
  constexpr int kRandomTrials = 5;
  for (std::size_t i = 0; i < ks.size(); ++i) {
    for (int t = 0; t < kRandomTrials; ++t) {
      auto rnd_oracle = oracle.clone();
      util::Rng rng(100 + t);
      random_value[i] +=
          random_subset(*rnd_oracle, ground, ks[i], rng).gained;
    }
    random_value[i] /= kRandomTrials;
  }

  // Tightest upper bound on f(OPT_K) over all computed solutions
  // (the paper reports against the best upper bound per (dataset, k)).
  double ub = oracle.max_value();
  for (const auto& cell : cells) {
    ub = std::min(ub, solution_upper_bound(oracle, cell.solution, ground, K));
  }
  ub = std::min(ub, solution_upper_bound(oracle, central.solution, ground, K));
  std::printf("upper bound on f(OPT_%zu): %.0f (trivial cap %u)\n\n", K, ub,
              data_cfg.universe_size);

  util::Table table({"k", "r=1", "r=2", "r=3", "r=5", "random",
                     "1-machine greedy (k=K)"});
  for (std::size_t i = 0; i < ks.size(); ++i) {
    std::vector<std::string> row{util::Table::fmt_int(ks[i])};
    for (const std::size_t r : rounds) {
      const auto it =
          std::find_if(cells.begin(), cells.end(), [&](const Cell& c) {
            return c.k == ks[i] && c.r == r;
          });
      row.push_back(util::Table::fmt_pct(it->value / ub));
    }
    row.push_back(util::Table::fmt_pct(random_value[i] / ub));
    row.push_back(util::Table::fmt_pct(central.value / ub));
    table.add_row(std::move(row));
  }
  bench::emit_table(table, "fig1a",
                    {"k", "r1", "r2", "r3", "r5", "random", "central_k"});

  std::printf(
      "expected shape: each column rises with k; r=5 at k=K is within a\n"
      "point of the single-machine greedy; k=2K reaches ~99%%; random is\n"
      "far below all greedy variants.\n");
  return 0;
}
