// Table 1: algorithm comparison — rounds, output size, and achieved
// approximation for every algorithm row of the paper's summary table,
// measured empirically on the synthetic hard coverage instance.
//
// The paper's Table 1 is theoretical; this harness instantiates each row as
// a real run and reports (a) the rounds the cluster simulator actually
// counted, (b) the number of items output, and (c) the achieved fraction of
// the optimum upper bound — so the qualitative ordering of the table
// (baselines with k items stay below 1-ε; the bicriteria rows reach it, with
// output sizes Theory > Multiplicity > Hybrid; NaiveDistributedGreedy needs
// log(1/ε) rounds) can be checked at a glance.
// Real corpora: `--load=corpora/dblp.bds` (see scripts/fetch_corpora.sh)
// replaces the planted instance with a converted corpus at the paper's
// actual scale; the OPT denominator then comes from the core/upper_bound
// certificate over a single-machine lazy-greedy reference instead of the
// planted optimum. `--mmap` maps the file zero-copy, `--k N` sets k.
#include <cstdio>

#include "bench_support.h"
#include "core/baselines.h"
#include "core/bicriteria.h"
#include "core/greedy.h"
#include "core/upper_bound.h"
#include "data/io.h"
#include "data/synthetic_coverage.h"
#include "objectives/coverage.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace bds;
  const util::Flags flags(argc, argv);
  bench::print_banner(
      "table1", "Table 1 (algorithm summary)",
      "each row of the paper's comparison table, run on the synthetic hard\n"
      "coverage instance (scaled: |U|=4000, K=40, t=40000), k=K, eps=0.1.");

  std::shared_ptr<const SetSystem> sets;
  std::size_t k = flags.get_uint("k", 40);
  double opt = 0.0;
  if (flags.has("load")) {
    const std::string path = flags.get_string("load", "");
    sets = flags.get_bool("mmap", false) ? data::map_set_system(path)
                                         : data::load_set_system(path);
  } else {
    data::SyntheticCoverageConfig data_cfg;
    data_cfg.universe_size = 4'000;
    data_cfg.planted_sets = 40;
    data_cfg.random_sets = 40'000;
    data_cfg.seed = 2017;
    sets = data::make_synthetic_coverage(data_cfg).sets;
    k = data_cfg.planted_sets;
    // On this instance the planted optimum covers the whole universe.
    opt = data_cfg.universe_size;
  }
  const CoverageOracle oracle(sets);
  const auto ground = bench::iota_ids(sets->num_sets());
  const double epsilon = 0.1;

  if (opt > 0.0) {
    std::printf("instance: %zu sets, f(OPT_%zu) = %.0f (planted)\n\n",
                sets->num_sets(), k, opt);
  } else {
    // No planted optimum on a real corpus: bound f(OPT_k) with the
    // top-gain certificate at a single-machine greedy reference solution.
    auto reference = oracle.clone();
    const auto greedy_run = lazy_greedy(*reference, ground, k);
    opt = solution_upper_bound(oracle, greedy_run.picks, ground, k);
    std::printf("instance: %zu sets, f(OPT_%zu) <= %.0f (certified bound)\n\n",
                sets->num_sets(), k, opt);
  }

  struct Row {
    std::string name;
    std::string paper_guarantee;
    DistributedResult result;
  };
  std::vector<Row> rows;

  {
    GreedyScalingConfig cfg;
    cfg.k = k;
    cfg.epsilon = 0.3;
    rows.push_back({"GreedyScaling [18]", "1-1/e-eps, k items",
                    greedy_scaling(oracle, ground, cfg)});
  }
  {
    OneRoundConfig cfg;
    cfg.k = k;
    cfg.runtime.seed = 3;
    rows.push_back({"GreeDi [23]", ">=1/min(m,k), k items",
                    greedi(oracle, ground, cfg)});
    rows.push_back({"PseudoGreedy [21]", "0.54, k items",
                    pseudo_greedy(oracle, ground, cfg)});
    rows.push_back({"RandGreeDi [5]", "0.316, k items",
                    rand_greedi(oracle, ground, cfg)});
  }
  {
    ParallelAlgConfig cfg;
    cfg.k = k;
    cfg.epsilon = 0.25;
    cfg.runtime.seed = 3;
    rows.push_back({"ParallelAlg [6]", "1-1/e-eps, k items, 1/eps rounds",
                    parallel_alg(oracle, ground, cfg)});
  }
  {
    NaiveDistributedConfig cfg;
    cfg.k = k;
    cfg.epsilon = epsilon;
    cfg.runtime.seed = 3;
    rows.push_back({"NaiveDistributedGreedy", "1-eps, k log(1/eps) items",
                    naive_distributed_greedy(oracle, ground, cfg)});
  }
  for (const std::size_t r : {1u, 2u}) {
    BicriteriaConfig cfg;
    cfg.k = k;
    cfg.rounds = r;
    cfg.epsilon = epsilon;
    cfg.runtime.seed = 3;
    cfg.mode = BicriteriaMode::kTheory;
    rows.push_back({"BicriteriaGreedy* (r=" + std::to_string(r) + ")",
                    "1-eps, O(r a^2 ln^2(a) k)",
                    bicriteria_greedy(oracle, ground, cfg)});
    cfg.mode = BicriteriaMode::kMultiplicity;
    rows.push_back({"Bicriteria+multiplicity* (r=" + std::to_string(r) + ")",
                    "1-eps, O(r a ln^2(a) k)",
                    bicriteria_greedy(oracle, ground, cfg)});
    cfg.mode = BicriteriaMode::kHybrid;
    rows.push_back({"HybridAlg* (r=" + std::to_string(r) + ")",
                    "1-eps, O(r a k)",
                    bicriteria_greedy(oracle, ground, cfg)});
  }

  util::Table table({"algorithm", "paper guarantee", "rounds", "|S|",
                     "f(S)/OPT", "comm (KiB)"});
  for (const auto& row : rows) {
    table.add_row(
        {row.name, row.paper_guarantee,
         util::Table::fmt_int(row.result.stats.num_rounds()),
         util::Table::fmt_int(row.result.solution.size()),
         util::Table::fmt_pct(row.result.value / opt),
         util::Table::fmt(
             double(row.result.stats.bytes_communicated()) / 1024.0, 0)});
  }
  bench::emit_table(table, "table1",
                    {"algorithm", "guarantee", "rounds", "items", "ratio",
                     "comm_kib"});

  std::printf(
      "expected shape: the k-item baselines sit below 1-eps = %.0f%% on this\n"
      "hard instance; every bicriteria row clears it; output sizes order\n"
      "Theory > Multiplicity > Hybrid; NaiveDistributedGreedy needs\n"
      "ceil(ln(1/eps)) rounds; GreedyScaling needs the most rounds.\n",
      100.0 * (1 - epsilon));
  return 0;
}
