// The epoch-versioned dynamic corpus layer (data/dynamic.h) and its
// bit-identity contract.
//
// Load-bearing claims pinned here:
//  * DynamicCorpus mutations are canonical and versioned: inserts take the
//    next ground id, erases tombstone without reindexing set ids, and the
//    mutation log round-trips through the wire delta bit-exactly.
//  * A dynamically maintained oracle (IncrementalCoverageOracle fed
//    apply_insert/apply_erase) is *bitwise* equal to a from-scratch rebuild
//    of the mutated corpus — gains, selections, f(S) bits, and the
//    oracle-evaluation ledger — across worker-oracle modes, lazy bounds
//    on/off, and both transports (the DynamicGolden grid).
//  * Stale oracles fail by name (StaleOracleError) instead of silently
//    answering for the wrong ground set.
#include <gtest/gtest.h>
#include <unistd.h>

#include <bit>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/bound_heap.h"
#include "core/registry.h"
#include "data/corpus.h"
#include "data/dynamic.h"
#include "data/io.h"
#include "objectives/coverage.h"
#include "objectives/coverage_incremental.h"
#include "objectives/exemplar.h"
#include "test_support.h"
#include "util/rng.h"
#include "util/serialize.h"

namespace bds {
namespace {

using data::CorpusKind;
using data::DynamicCorpus;
using data::DynamicOracleOptions;
using data::Mutation;
using data::MutationKind;
using testing::iota_ids;
using testing::random_set_system;

#ifndef BDS_WORKER_BIN
#error "BDS_WORKER_BIN must point at the bds_worker executable"
#endif

std::shared_ptr<const PointSet> small_points(std::size_t n, std::size_t dim,
                                             std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> data(n * dim);
  for (auto& v : data) v = static_cast<float>(rng.next_double(-1.0, 1.0));
  return std::make_shared<const PointSet>(n, dim, std::move(data));
}

// ---------------------------------------------------------------------------
// Corpus mutations: ids, canonicalization, tombstones.

TEST(DynamicCorpus, InsertAssignsNextIdAndBumpsEpoch) {
  DynamicCorpus corpus(random_set_system(10, 30, 0.2, 1), "unit");
  EXPECT_EQ(corpus.epoch(), 0u);
  EXPECT_EQ(corpus.size(), 10u);
  EXPECT_EQ(corpus.live_count(), 10u);

  const ElementId id = corpus.insert({3, 1, 2});
  EXPECT_EQ(id, 10u);
  EXPECT_EQ(corpus.epoch(), 1u);
  EXPECT_EQ(corpus.size(), 11u);
  EXPECT_EQ(corpus.live_count(), 11u);
  EXPECT_EQ(corpus.overlay_size(), 1u);
  EXPECT_TRUE(corpus.is_live(id));
}

TEST(DynamicCorpus, InsertCanonicalizesLikeAFromScratchBuild) {
  DynamicCorpus corpus(random_set_system(4, 30, 0.2, 2), "unit");
  const ElementId id = corpus.insert({7, 3, 7, 29, 3});
  const auto items = corpus.set_items(id);
  const std::vector<std::uint32_t> expect = {3, 7, 29};
  EXPECT_EQ(std::vector<std::uint32_t>(items.begin(), items.end()), expect);
}

TEST(DynamicCorpus, InsertRejectsOutOfUniverseItems) {
  DynamicCorpus corpus(random_set_system(4, 30, 0.2, 3), "unit");
  EXPECT_THROW(corpus.insert({1, 30}), std::out_of_range);
  EXPECT_EQ(corpus.epoch(), 0u) << "a rejected insert must not bump the epoch";
}

TEST(DynamicCorpus, EraseTombstonesWithoutReindexing) {
  DynamicCorpus corpus(random_set_system(6, 30, 0.3, 4), "unit");
  const auto before = corpus.set_items(5);
  const std::vector<std::uint32_t> items5(before.begin(), before.end());

  corpus.erase(2);
  EXPECT_EQ(corpus.epoch(), 1u);
  EXPECT_TRUE(corpus.ids_stable());
  EXPECT_EQ(corpus.size(), 6u) << "tombstoned ids stay in the id space";
  EXPECT_EQ(corpus.live_count(), 5u);
  EXPECT_FALSE(corpus.is_live(2));

  const std::vector<ElementId> expect_ground = {0, 1, 3, 4, 5};
  EXPECT_EQ(corpus.live_ground(), expect_ground);

  // Set 5 keeps its id and payload; the materialized snapshot reproduces
  // the identical id space (dead sets included).
  const auto after = corpus.set_items(5);
  EXPECT_EQ(std::vector<std::uint32_t>(after.begin(), after.end()), items5);
  const auto snapshot = corpus.materialize_sets();
  EXPECT_EQ(snapshot->num_sets(), 6u);
}

TEST(DynamicCorpus, EraseUnknownOrDeadIdThrows) {
  DynamicCorpus corpus(random_set_system(3, 10, 0.3, 5), "unit");
  EXPECT_THROW(corpus.erase(3), std::out_of_range);
  corpus.erase(1);
  EXPECT_THROW(corpus.erase(1), std::out_of_range);
}

TEST(DynamicCorpus, PointEraseReindexesAndFlipsIdsStable) {
  DynamicCorpus corpus(small_points(5, 3, 6), "unit");
  EXPECT_EQ(corpus.corpus_kind(), CorpusKind::kPoints);
  EXPECT_TRUE(corpus.ids_stable());

  corpus.insert_point({0.5f, -0.25f, 1.0f});
  EXPECT_EQ(corpus.size(), 6u);
  EXPECT_TRUE(corpus.ids_stable());

  corpus.erase(1);
  EXPECT_FALSE(corpus.ids_stable())
      << "a point erase reindexes the materialized rows";
  EXPECT_EQ(corpus.live_count(), 5u);
  // Unstable ids: the candidate ground is the materialized space.
  EXPECT_EQ(corpus.live_ground(), iota_ids(5));
  const auto snapshot = corpus.materialize_points();
  EXPECT_EQ(snapshot->size(), 5u);
  EXPECT_EQ(snapshot->dim(), 3u);
}

// ---------------------------------------------------------------------------
// The wire delta: serialize_delta / parse_delta / apply.

TEST(DynamicDelta, RoundTripsSetMutationsBitExactly) {
  DynamicCorpus corpus(random_set_system(8, 40, 0.2, 7), "unit");
  corpus.insert({5, 1, 9});
  corpus.erase(3);
  corpus.insert({0, 39});
  corpus.erase(8);  // erases the first overlay insert

  const std::string delta = corpus.serialize_delta();
  const std::vector<Mutation> parsed = DynamicCorpus::parse_delta(delta);
  ASSERT_EQ(parsed.size(), corpus.log().size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    SCOPED_TRACE("record " + std::to_string(i));
    EXPECT_EQ(parsed[i], corpus.log()[i]);
  }
}

TEST(DynamicDelta, RoundTripsAwkwardFloatsBitExactly) {
  DynamicCorpus corpus(small_points(3, 4, 8), "unit");
  corpus.insert_point({1.0f / 3.0f, -0.0f, 1e-38f, 3.14159f});

  const auto parsed = DynamicCorpus::parse_delta(corpus.serialize_delta());
  ASSERT_EQ(parsed.size(), 1u);
  ASSERT_EQ(parsed[0].values.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(std::bit_cast<std::uint32_t>(parsed[0].values[i]),
              std::bit_cast<std::uint32_t>(corpus.log()[0].values[i]));
  }
}

TEST(DynamicDelta, ReplayOnTheSameBaseReproducesTheCorpus) {
  const auto base = random_set_system(8, 40, 0.2, 9);
  DynamicCorpus original(base, "orig");
  original.insert({2, 4, 6});
  original.erase(1);
  original.insert({0, 1, 2, 3});

  DynamicCorpus replica(base, "replica");
  for (const Mutation& m : DynamicCorpus::parse_delta(
           original.serialize_delta())) {
    replica.apply(m);
  }
  EXPECT_EQ(replica.epoch(), original.epoch());
  EXPECT_EQ(replica.live_ground(), original.live_ground());
  for (ElementId id = 0; id < original.size(); ++id) {
    const auto a = original.set_items(id);
    const auto b = replica.set_items(id);
    EXPECT_EQ(std::vector<std::uint32_t>(a.begin(), a.end()),
              std::vector<std::uint32_t>(b.begin(), b.end()));
  }
}

TEST(DynamicDelta, ApplyAgainstADifferentStateThrows) {
  DynamicCorpus corpus(random_set_system(5, 20, 0.2, 10), "unit");
  Mutation m;
  m.kind = MutationKind::kInsert;
  m.id = 7;  // next id would be 5
  m.items = {1, 2};
  EXPECT_THROW(corpus.apply(m), std::invalid_argument);
}

TEST(DynamicDelta, PartialDeltaStartsFromAnEpoch) {
  DynamicCorpus corpus(random_set_system(5, 20, 0.2, 11), "unit");
  corpus.insert({1});
  corpus.insert({2});
  corpus.erase(0);
  const auto tail = DynamicCorpus::parse_delta(corpus.serialize_delta(2));
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].kind, MutationKind::kErase);
  EXPECT_EQ(tail[0].id, 0u);
}

// ---------------------------------------------------------------------------
// Epoch stamps: stale use throws by name; views inherit the stamp.

TEST(DynamicEpoch, StaleOracleThrowsNamingTheCorpus) {
  DynamicCorpus corpus(random_set_system(10, 30, 0.2, 12), "dblp-holdout");
  const auto oracle = data::make_dynamic_oracle(corpus, "coverage");
  EXPECT_EQ(oracle->corpus_epoch(), 0u);
  EXPECT_NO_THROW(data::require_epoch(*oracle, corpus));

  corpus.insert({1, 2, 3});
  try {
    data::require_epoch(*oracle, corpus);
    FAIL() << "a stale oracle must throw";
  } catch (const data::StaleOracleError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("dblp-holdout"), std::string::npos) << what;
  }

  const auto fresh = data::make_dynamic_oracle(corpus, "coverage");
  EXPECT_EQ(fresh->corpus_epoch(), 1u);
  EXPECT_NO_THROW(data::require_epoch(*fresh, corpus));
}

TEST(DynamicEpoch, ClonesAndShardViewsInheritTheStamp) {
  DynamicCorpus corpus(random_set_system(10, 30, 0.2, 13), "unit");
  corpus.insert({4, 5});
  corpus.erase(2);
  const auto oracle = data::make_dynamic_oracle(corpus, "coverage");
  ASSERT_EQ(oracle->corpus_epoch(), 2u);

  EXPECT_EQ(oracle->clone()->corpus_epoch(), 2u);
  const std::vector<ElementId> shard = {0, 1, 10};
  EXPECT_EQ(oracle->shard_view(shard)->corpus_epoch(), 2u);
}

TEST(DynamicEpoch, NonIncrementalOraclesRefuseInPlaceUpdates) {
  const auto sets = random_set_system(6, 20, 0.3, 14);
  CoverageOracle frozen(sets);
  EXPECT_FALSE(frozen.supports_dynamic_updates());
  const std::vector<std::uint32_t> items = {1, 2};
  try {
    frozen.apply_insert(6, items, 1);
    FAIL() << "the rebuild-only oracle must refuse in-place updates";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("make_dynamic_oracle"),
              std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// Incremental maintenance vs from-scratch rebuild: the single-oracle claim.

TEST(DynamicOracle, IncrementalMatchesRebuildGainForGain) {
  const auto base = random_set_system(30, 80, 0.1, 15);
  DynamicCorpus corpus(base, "unit");

  // Incremental path: built at epoch 0, mutations applied in O(degree).
  const auto incremental = data::make_dynamic_oracle(corpus, "coverage");
  ASSERT_TRUE(incremental->supports_dynamic_updates());

  util::Rng rng(99);
  for (int step = 0; step < 12; ++step) {
    if (step % 3 == 2) {
      ElementId victim = static_cast<ElementId>(
          rng.next_below(corpus.size()));
      while (!corpus.is_live(victim)) {
        victim = static_cast<ElementId>(rng.next_below(corpus.size()));
      }
      corpus.erase(victim);
      incremental->apply_erase(victim, corpus.epoch());
    } else {
      std::vector<std::uint32_t> items(3 + rng.next_below(10));
      for (auto& e : items) {
        e = static_cast<std::uint32_t>(rng.next_below(80));
      }
      const ElementId id = corpus.insert(std::move(items));
      // The log holds the canonical payload the corpus committed.
      incremental->apply_insert(id, corpus.log().back().items,
                                corpus.epoch());
    }
  }
  ASSERT_NO_THROW(data::require_epoch(*incremental, corpus));

  // Rebuild path: a fresh frozen oracle over the materialized snapshot.
  DynamicOracleOptions rebuild_opts;
  rebuild_opts.prefer_incremental = false;
  const auto rebuilt =
      data::make_dynamic_oracle(corpus, "coverage", rebuild_opts);

  // Gains agree bitwise over the live ground, both fresh and mid-run.
  const auto ground = corpus.live_ground();
  auto a = incremental->clone();
  auto b = rebuilt->clone();
  for (int round = 0; round < 3; ++round) {
    ElementId best = ground[0];
    double best_gain = -1.0;
    for (const ElementId x : ground) {
      const double ga = a->gain(x);
      const double gb = b->gain(x);
      ASSERT_EQ(util::double_bits(ga), util::double_bits(gb))
          << "round " << round << " element " << x;
      if (ga > best_gain) {
        best_gain = ga;
        best = x;
      }
    }
    ASSERT_EQ(util::double_bits(a->add(best)), util::double_bits(b->add(best)));
    ASSERT_EQ(util::double_bits(a->value()), util::double_bits(b->value()));
  }
  EXPECT_EQ(a->evals(), b->evals()) << "the eval ledgers must agree too";
}

TEST(DynamicOracle, ExemplarFallbackMatchesManualRebuild) {
  DynamicCorpus corpus(small_points(12, 4, 16), "unit");
  corpus.insert_point({0.1f, 0.2f, 0.3f, 0.4f});
  corpus.erase(5);

  DynamicOracleOptions options;
  options.p0_dist = 2.0;
  const auto dynamic = data::make_dynamic_oracle(corpus, "exemplar", options);
  EXPECT_EQ(dynamic->corpus_epoch(), 2u);

  ExemplarOracle manual(corpus.materialize_points(), 2.0);
  ASSERT_EQ(dynamic->ground_size(), manual.ground_size());
  for (ElementId x = 0; x < dynamic->ground_size(); ++x) {
    EXPECT_EQ(util::double_bits(dynamic->gain(x)),
              util::double_bits(manual.gain(x)));
  }
}

// ---------------------------------------------------------------------------
// The DynamicGolden grid: mutated-corpus runs are bitwise equal to
// from-scratch rebuilds across oracle modes × lazy on/off × transports.

class DynamicGoldenEnv : public ::testing::Environment {
 public:
  void SetUp() override {
    const std::string tag = std::to_string(::getpid());
    base_path_ = ::testing::TempDir() + "dynamic_golden." + tag + ".bds";
    const auto sys = random_set_system(100, 140, 0.05, 17);
    data::save_set_system(*sys, base_path_);

    // The scripted mutation history every grid cell replays.
    corpus_ = std::make_shared<DynamicCorpus>(
        data::load_set_system(base_path_), "golden");
    util::Rng rng(18);
    for (int step = 0; step < 20; ++step) {
      if (step % 4 == 3) {
        ElementId victim =
            static_cast<ElementId>(rng.next_below(corpus_->size()));
        while (!corpus_->is_live(victim)) {
          victim = static_cast<ElementId>(rng.next_below(corpus_->size()));
        }
        corpus_->erase(victim);
      } else {
        std::vector<std::uint32_t> items(4 + rng.next_below(12));
        for (auto& e : items) {
          e = static_cast<std::uint32_t>(rng.next_below(140));
        }
        corpus_->insert(std::move(items));
      }
    }
  }

  void TearDown() override {
    corpus_.reset();
    std::remove(base_path_.c_str());
  }

  static std::string base_path_;
  static std::shared_ptr<DynamicCorpus> corpus_;
};

std::string DynamicGoldenEnv::base_path_;
std::shared_ptr<DynamicCorpus> DynamicGoldenEnv::corpus_;

const ::testing::Environment* const kDynamicEnv =
    ::testing::AddGlobalTestEnvironment(new DynamicGoldenEnv);

data::CorpusSpec mutated_spec(bool mmap_base = false) {
  data::CorpusSpec spec;
  spec.objective = "coverage";
  spec.path = DynamicGoldenEnv::base_path_;
  spec.mmap = mmap_base;
  spec.mutations = DynamicGoldenEnv::corpus_->serialize_delta();
  spec.epoch = DynamicGoldenEnv::corpus_->epoch();
  return spec;
}

void expect_bit_identical(const RunResult& expect, const RunResult& actual) {
  EXPECT_EQ(expect.solution, actual.solution);
  EXPECT_EQ(util::double_bits(expect.value), util::double_bits(actual.value));
  EXPECT_EQ(expect.stats.total_evals(), actual.stats.total_evals());
  EXPECT_EQ(expect.stats.total_evals_avoided(),
            actual.stats.total_evals_avoided());
  EXPECT_EQ(expect.stats.critical_path_evals(),
            actual.stats.critical_path_evals());
}

struct GridCell {
  const char* name;
  WorkerOracleMode mode;
  bool lazy;
  TransportKind transport;
};

class DynamicGolden : public ::testing::TestWithParam<GridCell> {};

TEST_P(DynamicGolden, MutatedRunMatchesRebuildBitwise) {
  const GridCell& cell = GetParam();
  const DynamicCorpus& corpus = *DynamicGoldenEnv::corpus_;

  AlgorithmParams params;
  params.k = 4;
  params.rounds = 2;
  params.epsilon = 0.25;
  params.machines = 5;
  const auto ground = corpus.live_ground();

  detail::ForcedLazy forced(cell.lazy);

  // Reference: a from-scratch rebuild of the mutated corpus (frozen
  // CoverageOracle over the materialized snapshot), in process, same knobs.
  DynamicOracleOptions rebuild_opts;
  rebuild_opts.prefer_incremental = false;
  const auto rebuilt =
      data::make_dynamic_oracle(corpus, "coverage", rebuild_opts);
  RuntimeOptions reference_runtime;
  reference_runtime.seed = 3;
  reference_runtime.worker_oracle = cell.mode;
  const RunResult reference = run_distributed("bicriteria", *rebuilt, ground,
                                              reference_runtime, params);

  // Cell under test: the dynamic oracle provisioned through the CorpusSpec
  // delta path — exactly what both wire sides build.
  const data::CorpusSpec spec = mutated_spec();
  const auto oracle = spec.make_oracle();
  ASSERT_EQ(oracle->corpus_epoch(), corpus.epoch());
  RuntimeOptions runtime;
  runtime.seed = 3;
  runtime.worker_oracle = cell.mode;
  runtime.transport = cell.transport;
  if (cell.transport == TransportKind::kProcess) {
    runtime.process.worker_binary = BDS_WORKER_BIN;
    runtime.process.corpus_spec = spec.serialize();
  }
  const RunResult actual =
      run_distributed("bicriteria", *oracle, ground, runtime, params);
  expect_bit_identical(reference, actual);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DynamicGolden,
    ::testing::Values(
        GridCell{"ShardViewLazyInproc", WorkerOracleMode::kShardView, true,
                 TransportKind::kInProcess},
        GridCell{"ShardViewLazyProcess", WorkerOracleMode::kShardView, true,
                 TransportKind::kProcess},
        GridCell{"ShardViewEagerInproc", WorkerOracleMode::kShardView, false,
                 TransportKind::kInProcess},
        GridCell{"ShardViewEagerProcess", WorkerOracleMode::kShardView, false,
                 TransportKind::kProcess},
        GridCell{"CloneLazyInproc", WorkerOracleMode::kClone, true,
                 TransportKind::kInProcess},
        GridCell{"CloneLazyProcess", WorkerOracleMode::kClone, true,
                 TransportKind::kProcess},
        GridCell{"CloneEagerInproc", WorkerOracleMode::kClone, false,
                 TransportKind::kInProcess},
        GridCell{"CloneEagerProcess", WorkerOracleMode::kClone, false,
                 TransportKind::kProcess}),
    [](const auto& info) { return info.param.name; });

// The v2 spec round-trips its delta; v1 specs (no epoch/mutations fields)
// still decode, as frozen corpora.
TEST(DynamicCorpusSpec, DeltaRoundTripsThroughSerialization) {
  const data::CorpusSpec spec = mutated_spec();
  const data::CorpusSpec round = data::CorpusSpec::deserialize(spec.serialize());
  EXPECT_EQ(round.mutations, spec.mutations);
  EXPECT_EQ(round.epoch, spec.epoch);
  EXPECT_EQ(round.objective, spec.objective);
  EXPECT_EQ(round.path, spec.path);
}

TEST(DynamicCorpusSpec, EpochMismatchIsRefused) {
  data::CorpusSpec spec = mutated_spec();
  spec.epoch += 1;  // claims one more mutation than the delta carries
  EXPECT_THROW(spec.make_oracle(), std::invalid_argument);
}

// The mmap-backed base stays read-only: mutations land in the heap-side
// overlay and the run is still bitwise equal to the heap-loaded path.
TEST(DynamicCorpusSpec, MmapBaseMutatesIntoHeapOverlay) {
  const auto heap_oracle = mutated_spec(false).make_oracle();
  const auto mmap_oracle = mutated_spec(true).make_oracle();
  const auto ground = DynamicGoldenEnv::corpus_->live_ground();

  AlgorithmParams params;
  params.k = 4;
  params.machines = 4;
  RuntimeOptions runtime;
  runtime.seed = 5;
  const RunResult heap_run =
      run_distributed("bicriteria", *heap_oracle, ground, runtime, params);
  const RunResult mmap_run =
      run_distributed("bicriteria", *mmap_oracle, ground, runtime, params);
  expect_bit_identical(heap_run, mmap_run);
}

}  // namespace
}  // namespace bds
