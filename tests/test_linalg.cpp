#include "util/linalg.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace bds::util {
namespace {

TEST(IncrementalCholesky, EmptyFactor) {
  IncrementalCholesky chol;
  EXPECT_EQ(chol.size(), 0u);
  EXPECT_DOUBLE_EQ(chol.log_det(), 0.0);
}

TEST(IncrementalCholesky, OneByOne) {
  IncrementalCholesky chol;
  chol.extend({}, 4.0);
  EXPECT_EQ(chol.size(), 1u);
  EXPECT_DOUBLE_EQ(chol.entry(0, 0), 2.0);
  EXPECT_NEAR(chol.log_det(), std::log(4.0), 1e-12);
}

TEST(IncrementalCholesky, HandTwoByTwo) {
  // M = [[4, 2], [2, 3]]: L = [[2, 0], [1, sqrt(2)]], det = 8.
  IncrementalCholesky chol;
  chol.extend({}, 4.0);
  const std::vector<double> col{2.0};
  chol.extend(col, 3.0);
  EXPECT_DOUBLE_EQ(chol.entry(1, 0), 1.0);
  EXPECT_NEAR(chol.entry(1, 1), std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(chol.log_det(), std::log(8.0), 1e-12);
}

TEST(IncrementalCholesky, ConditionalVarianceMatchesSchur) {
  IncrementalCholesky chol;
  chol.extend({}, 4.0);
  // For M extended with col [2], diag 3: Schur = 3 - 2*2/4 = 2.
  const std::vector<double> col{2.0};
  EXPECT_NEAR(chol.conditional_variance(col, 3.0), 2.0, 1e-12);
  // conditional_variance must not mutate.
  EXPECT_EQ(chol.size(), 1u);
}

TEST(IncrementalCholesky, RejectsNonPositiveDefinite) {
  IncrementalCholesky chol;
  chol.extend({}, 1.0);
  const std::vector<double> col{2.0};  // Schur = 1 - 4 < 0
  EXPECT_THROW(chol.extend(col, 1.0), std::domain_error);
}

TEST(IncrementalCholesky, ForwardSolve) {
  // L = [[2,0],[1,sqrt(2)]], solve L y = [4, 3] -> y = [2, 1/sqrt(2)].
  IncrementalCholesky chol;
  chol.extend({}, 4.0);
  chol.extend(std::vector<double>{2.0}, 3.0);
  std::vector<double> b{4.0, 3.0};
  chol.forward_solve(b);
  EXPECT_NEAR(b[0], 2.0, 1e-12);
  EXPECT_NEAR(b[1], 1.0 / std::sqrt(2.0), 1e-12);
}

TEST(CholeskyLogDet, MatchesKnownDeterminants) {
  // Identity.
  const std::vector<double> eye{1, 0, 0, 0, 1, 0, 0, 0, 1};
  EXPECT_NEAR(cholesky_log_det(eye, 3), 0.0, 1e-12);
  // Diagonal(2, 5): det = 10.
  const std::vector<double> diag{2, 0, 0, 5};
  EXPECT_NEAR(cholesky_log_det(diag, 2), std::log(10.0), 1e-12);
  EXPECT_THROW(cholesky_log_det(diag, 3), std::invalid_argument);
}

TEST(CholeskyLogDet, RandomPsdMatricesAgreeWithIncrementalPath) {
  // Build A A^T + I (PSD) and compare the one-shot and incremental
  // factorizations entry by entry via log_det.
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 2 + rng.next_below(6);
    std::vector<double> a(n * n);
    for (double& v : a) v = rng.next_double(-1.0, 1.0);
    std::vector<double> m(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        double acc = (i == j) ? 1.0 : 0.0;
        for (std::size_t k = 0; k < n; ++k) acc += a[i * n + k] * a[j * n + k];
        m[i * n + j] = acc;
      }
    }
    const double direct = cholesky_log_det(m, n);

    IncrementalCholesky chol;
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<double> col(i);
      for (std::size_t j = 0; j < i; ++j) col[j] = m[i * n + j];
      chol.extend(col, m[i * n + i]);
    }
    EXPECT_NEAR(chol.log_det(), direct, 1e-9);
    EXPECT_GT(direct, 0.0) << "A A^T + I has det > 1";
  }
}

TEST(CholeskyLogDet, ThrowsOnIndefinite) {
  const std::vector<double> indefinite{1, 2, 2, 1};  // eigenvalues 3, -1
  EXPECT_THROW(cholesky_log_det(indefinite, 2), std::domain_error);
}

}  // namespace
}  // namespace bds::util
