// Generic property audit over the objective registry: every registered
// objective must be monotone submodular — that pair of properties is what
// the whole lazy-bound substrate (core/bound_heap.h) and the bicriteria
// guarantees rest on. The test enumerates core/registry.h's objective list
// so a newly registered objective fails loudly here until it either passes
// the probes or is consciously exempted.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/registry.h"
#include "objectives/coverage.h"
#include "objectives/exemplar.h"
#include "objectives/logdet.h"
#include "objectives/prob_coverage.h"
#include "objectives/saturated_coverage.h"
#include "test_support.h"
#include "util/rng.h"

namespace bds {
namespace {

std::shared_ptr<const PointSet> random_points(std::size_t n, std::size_t dim,
                                              std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> data(n * dim);
  for (float& v : data) v = static_cast<float>(rng.next_double(-1.0, 1.0));
  return std::make_shared<const PointSet>(n, dim, std::move(data));
}

std::shared_ptr<const ProbSetSystem> random_prob_system(std::uint32_t n_sets,
                                                        std::uint32_t universe,
                                                        std::uint64_t seed) {
  util::Rng rng(seed);
  using Entry = ProbSetSystem::Entry;
  std::vector<std::vector<Entry>> sets(n_sets);
  for (auto& s : sets) {
    for (std::uint32_t e = 0; e < universe; ++e) {
      if (rng.next_bool(0.2)) {
        s.push_back({e, static_cast<float>(rng.next_double(0.05, 1.0))});
      }
    }
  }
  return std::make_shared<const ProbSetSystem>(std::move(sets), universe);
}

std::shared_ptr<const SimilarityMatrix> random_similarity(std::size_t n,
                                                          std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> values(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    values[i * n + i] = 1.0;
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v = rng.next_double(0.0, 1.0);
      values[i * n + j] = v;
      values[j * n + i] = v;
    }
  }
  return std::make_shared<const SimilarityMatrix>(n, std::move(values));
}

// A representative small instance for each registered objective name.
// Throws for names this test does not know — which is the point: extending
// the registry without extending this switch is a test failure.
std::unique_ptr<SubmodularOracle> make_test_oracle(const std::string& name,
                                                   std::uint64_t seed) {
  if (name == "coverage") {
    return std::make_unique<CoverageOracle>(
        bds::testing::random_set_system(50, 80, 0.1, seed));
  }
  if (name == "prob-coverage") {
    return std::make_unique<ProbCoverageOracle>(random_prob_system(40, 60,
                                                                   seed));
  }
  if (name == "exemplar") {
    return std::make_unique<ExemplarOracle>(random_points(40, 3, seed), 4.0);
  }
  if (name == "sampled-exemplar") {
    util::Rng rng(seed);
    return std::make_unique<SampledExemplarOracle>(random_points(50, 3, seed),
                                                   4.0, 20, rng);
  }
  if (name == "logdet") {
    return std::make_unique<LogDetOracle>(random_points(35, 3, seed), 1.0,
                                          0.5);
  }
  if (name == "saturated-coverage") {
    SaturatedCoverageConfig cfg;
    cfg.gamma = 0.4;
    return std::make_unique<SaturatedCoverageOracle>(
        random_similarity(30, seed), cfg);
  }
  throw std::logic_error("make_test_oracle: objective '" + name +
                         "' registered but not covered by the "
                         "submodularity audit — add an instance here");
}

TEST(SubmodularityRegistryAudit, EveryRegisteredObjectiveIsCovered) {
  for (const auto& spec : objective_registry()) {
    EXPECT_NO_THROW({ (void)make_test_oracle(spec.name, 1); }) << spec.name;
  }
}

TEST(SubmodularityRegistryAudit, GainMonotonicityOnRandomNestedSets) {
  // For random A ⊆ B and x ∉ B: Δ(x, A) ≥ Δ(x, B) up to FP noise. logdet
  // and the exemplar family accumulate rounding across kernel sums, so
  // they get a looser (still tiny) tolerance than the exact set systems.
  for (const auto& spec : objective_registry()) {
    const double tol =
        (spec.name == "coverage" || spec.name == "prob-coverage") ? 1e-9
                                                                  : 1e-7;
    for (const std::uint64_t seed : {11u, 29u}) {
      const auto proto = make_test_oracle(spec.name, seed);
      EXPECT_EQ(bds::testing::count_submodularity_violations(*proto, seed, 40,
                                                             tol),
                0)
          << spec.name << " seed " << seed;
    }
  }
}

TEST(SubmodularityRegistryAudit, MonotonicityOnRandomChains) {
  for (const auto& spec : objective_registry()) {
    const double tol =
        (spec.name == "coverage" || spec.name == "prob-coverage") ? 1e-9
                                                                  : 1e-7;
    for (const std::uint64_t seed : {13u, 31u}) {
      const auto proto = make_test_oracle(spec.name, seed);
      EXPECT_EQ(bds::testing::count_monotonicity_violations(*proto, seed, 20,
                                                            tol),
                0)
          << spec.name << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace bds
