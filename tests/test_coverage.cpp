#include "objectives/coverage.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <stdexcept>
#include <vector>

#include "test_support.h"

namespace bds {
namespace {

std::shared_ptr<const SetSystem> tiny_system() {
  // Universe {0..5}: set0={0,1,2}, set1={2,3}, set2={4}, set3={} .
  return std::make_shared<const SetSystem>(
      std::vector<std::vector<std::uint32_t>>{
          {0, 1, 2}, {2, 3}, {4}, {}},
      6);
}

TEST(SetSystem, BasicAccessors) {
  const auto sys = tiny_system();
  EXPECT_EQ(sys->num_sets(), 4u);
  EXPECT_EQ(sys->universe_size(), 6u);
  EXPECT_EQ(sys->total_size(), 6u);
  EXPECT_EQ(sys->set_size(0), 3u);
  EXPECT_EQ(sys->set_size(3), 0u);
  const auto items = sys->set_items(1);
  EXPECT_EQ(std::vector<std::uint32_t>(items.begin(), items.end()),
            (std::vector<std::uint32_t>{2, 3}));
}

TEST(SetSystem, DeduplicatesWithinSets) {
  const SetSystem sys({{1, 1, 2, 2, 2}}, 3);
  EXPECT_EQ(sys.set_size(0), 2u);
  EXPECT_EQ(sys.total_size(), 2u);
}

TEST(SetSystem, ReservesExactlyPostDedupCapacity) {
  // Regression: the constructor used to reserve the pre-dedup entry total,
  // stranding the duplicate slack in the immutable, widely shared entry
  // array for its whole lifetime. The reserve must happen after dedup.
  const SetSystem sys({{1, 1, 2, 2, 2}, {0, 0, 0, 1}, {2, 2}}, 3);
  EXPECT_EQ(sys.total_size(), 5u);
  EXPECT_EQ(sys.entries_capacity(), sys.total_size());

  const SetSystem no_dupes({{0, 1}, {2}}, 3);
  EXPECT_EQ(no_dupes.entries_capacity(), no_dupes.total_size());
}

TEST(SetSystem, RejectsOutOfUniverseElements) {
  EXPECT_THROW(SetSystem({{0, 7}}, 6), std::out_of_range);
}

TEST(CoverageOracle, GainsAndAddsAgree) {
  CoverageOracle oracle(tiny_system());
  EXPECT_DOUBLE_EQ(oracle.gain(0), 3.0);
  EXPECT_DOUBLE_EQ(oracle.add(0), 3.0);
  // Set1 overlaps on element 2.
  EXPECT_DOUBLE_EQ(oracle.gain(1), 1.0);
  EXPECT_DOUBLE_EQ(oracle.add(1), 1.0);
  EXPECT_DOUBLE_EQ(oracle.value(), 4.0);
  EXPECT_EQ(oracle.covered_count(), 4u);
}

TEST(CoverageOracle, EmptySetHasZeroGain) {
  CoverageOracle oracle(tiny_system());
  EXPECT_DOUBLE_EQ(oracle.gain(3), 0.0);
  EXPECT_DOUBLE_EQ(oracle.add(3), 0.0);
}

TEST(CoverageOracle, ReaddingIsIdempotent) {
  CoverageOracle oracle(tiny_system());
  oracle.add(0);
  EXPECT_DOUBLE_EQ(oracle.gain(0), 0.0);
  EXPECT_DOUBLE_EQ(oracle.add(0), 0.0);
  EXPECT_DOUBLE_EQ(oracle.value(), 3.0);
}

TEST(CoverageOracle, MaxValueIsUniverse) {
  CoverageOracle oracle(tiny_system());
  EXPECT_DOUBLE_EQ(oracle.max_value(), 6.0);
  oracle.add(0);
  oracle.add(1);
  oracle.add(2);
  EXPECT_DOUBLE_EQ(oracle.value(), 5.0);  // element 5 is uncoverable
  EXPECT_LE(oracle.value(), oracle.max_value());
}

TEST(CoverageOracle, CloneIsDeepAndResetsEvals) {
  CoverageOracle oracle(tiny_system());
  oracle.add(0);
  EXPECT_EQ(oracle.evals(), 1u);

  const auto copy = oracle.clone();
  EXPECT_EQ(copy->evals(), 0u);
  EXPECT_DOUBLE_EQ(copy->value(), 3.0);
  EXPECT_EQ(copy->current_set(), oracle.current_set());

  // Mutating the copy must not affect the original.
  copy->add(1);
  EXPECT_DOUBLE_EQ(copy->value(), 4.0);
  EXPECT_DOUBLE_EQ(oracle.value(), 3.0);
  EXPECT_DOUBLE_EQ(oracle.gain(1), 1.0);
}

TEST(CoverageOracle, EvalCounting) {
  CoverageOracle oracle(tiny_system());
  oracle.gain(0);
  oracle.gain(1);
  oracle.add(0);
  EXPECT_EQ(oracle.evals(), 3u);
}

TEST(CoverageOracle, CurrentSetTracksInsertionOrder) {
  CoverageOracle oracle(tiny_system());
  oracle.add(2);
  oracle.add(0);
  EXPECT_EQ(oracle.current_set(), (std::vector<ElementId>{2, 0}));
}

TEST(CoverageOracle, ValueMatchesExplicitUnion) {
  const auto sys = testing::random_set_system(30, 60, 0.15, 99);
  CoverageOracle oracle(sys);
  std::set<std::uint32_t> covered;
  util::Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    const auto x = static_cast<ElementId>(rng.next_below(30));
    oracle.add(x);
    const auto items = sys->set_items(x);
    covered.insert(items.begin(), items.end());
    EXPECT_DOUBLE_EQ(oracle.value(), double(covered.size()));
  }
}

class CoverageProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CoverageProperty, IsMonotoneSubmodular) {
  const auto sys = testing::random_set_system(25, 40, 0.2, GetParam());
  const CoverageOracle proto(sys);
  EXPECT_EQ(testing::count_submodularity_violations(proto, GetParam(), 60), 0);
  EXPECT_EQ(testing::count_monotonicity_violations(proto, GetParam(), 30), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoverageProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(WeightedCoverage, MatchesUnweightedWithUnitWeights) {
  const auto sys = testing::random_set_system(20, 30, 0.2, 7);
  CoverageOracle plain(sys);
  WeightedCoverageOracle weighted(sys, std::vector<double>(30, 1.0));
  for (ElementId x = 0; x < 20; ++x) {
    EXPECT_DOUBLE_EQ(plain.gain(x), weighted.gain(x));
  }
  plain.add(3);
  weighted.add(3);
  EXPECT_DOUBLE_EQ(plain.value(), weighted.value());
}

TEST(WeightedCoverage, UsesWeights) {
  const auto sys = std::make_shared<const SetSystem>(
      std::vector<std::vector<std::uint32_t>>{{0}, {1}, {0, 1}}, 2);
  WeightedCoverageOracle oracle(sys, {10.0, 1.0});
  EXPECT_DOUBLE_EQ(oracle.gain(0), 10.0);
  EXPECT_DOUBLE_EQ(oracle.gain(1), 1.0);
  EXPECT_DOUBLE_EQ(oracle.gain(2), 11.0);
  EXPECT_DOUBLE_EQ(oracle.max_value(), 11.0);
  oracle.add(0);
  EXPECT_DOUBLE_EQ(oracle.gain(2), 1.0);
}

TEST(WeightedCoverage, RejectsBadWeights) {
  const auto sys = tiny_system();
  EXPECT_THROW(WeightedCoverageOracle(sys, {1.0}), std::invalid_argument);
  EXPECT_THROW(WeightedCoverageOracle(sys,
                                      {1, 1, 1, 1, 1, -0.5}),
               std::invalid_argument);
}

TEST(WeightedCoverage, PropertyCheck) {
  const auto sys = testing::random_set_system(20, 25, 0.25, 11);
  util::Rng rng(11);
  std::vector<double> weights(25);
  for (double& w : weights) w = rng.next_double(0.0, 5.0);
  const WeightedCoverageOracle proto(sys, std::move(weights));
  EXPECT_EQ(testing::count_submodularity_violations(proto, 11, 50), 0);
  EXPECT_EQ(testing::count_monotonicity_violations(proto, 11, 25), 0);
}

}  // namespace
}  // namespace bds
