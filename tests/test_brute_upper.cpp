#include "core/brute_force.h"
#include "core/upper_bound.h"

#include <gtest/gtest.h>

#include <set>

#include "core/greedy.h"
#include "objectives/coverage.h"
#include "test_support.h"

namespace bds {
namespace {

using testing::iota_ids;
using testing::random_set_system;

TEST(BruteForce, FindsExactOptimumOnHandInstance) {
  // set0={0,1}, set1={2,3}, set2={0,2}: best pair is {0,1} x {2,3} = 4.
  const auto sys = std::make_shared<const SetSystem>(
      std::vector<std::vector<std::uint32_t>>{{0, 1}, {2, 3}, {0, 2}}, 4);
  const CoverageOracle proto(sys);
  const auto result = brute_force_opt(proto, iota_ids(3), 2);
  EXPECT_DOUBLE_EQ(result.value, 4.0);
  const std::set<ElementId> best(result.best.begin(), result.best.end());
  EXPECT_EQ(best, (std::set<ElementId>{0, 1}));
  EXPECT_EQ(result.subsets_evaluated, 3u);  // C(3,2)
}

TEST(BruteForce, KZeroReturnsEmpty) {
  const auto sys = random_set_system(5, 10, 0.3, 1);
  const CoverageOracle proto(sys);
  const auto result = brute_force_opt(proto, iota_ids(5), 0);
  EXPECT_TRUE(result.best.empty());
  EXPECT_DOUBLE_EQ(result.value, 0.0);
}

TEST(BruteForce, KAtLeastNTakesEverything) {
  const auto sys = random_set_system(4, 12, 0.4, 2);
  const CoverageOracle proto(sys);
  const auto result = brute_force_opt(proto, iota_ids(4), 10);
  EXPECT_EQ(result.best.size(), 4u);
  EXPECT_EQ(result.subsets_evaluated, 1u);
}

TEST(BruteForce, EnumeratesAllCombinations) {
  const auto sys = random_set_system(10, 20, 0.2, 3);
  const CoverageOracle proto(sys);
  const auto result = brute_force_opt(proto, iota_ids(10), 3);
  EXPECT_EQ(result.subsets_evaluated, 120u);  // C(10,3)
}

TEST(BruteForce, GuardsAgainstHugeInstances) {
  const auto sys = random_set_system(64, 10, 0.2, 4);
  const CoverageOracle proto(sys);
  EXPECT_THROW(brute_force_opt(proto, iota_ids(64), 20, 1'000),
               std::invalid_argument);
}

TEST(BruteForce, NeverBelowGreedy) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto sys = random_set_system(11, 22, 0.25, seed);
    const CoverageOracle proto(sys);
    auto oracle = proto.clone();
    const auto g = greedy(*oracle, iota_ids(11), 3);
    const auto opt = brute_force_opt(proto, iota_ids(11), 3);
    EXPECT_GE(opt.value + 1e-9, g.gained) << "seed " << seed;
  }
}

class UpperBoundProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UpperBoundProperty, BoundsTrueOptimumFromAnySolution) {
  const auto sys = random_set_system(12, 30, 0.2, GetParam());
  const CoverageOracle proto(sys);
  const std::size_t k = 3;
  const auto opt = brute_force_opt(proto, iota_ids(12), k);

  // From the greedy solution.
  auto oracle = proto.clone();
  const auto g = greedy(*oracle, iota_ids(12), k);
  const double ub_greedy =
      solution_upper_bound(proto, g.picks, iota_ids(12), k);
  EXPECT_GE(ub_greedy + 1e-9, opt.value);

  // From an arbitrary (bad) solution the bound must still hold.
  const std::vector<ElementId> bad{0};
  const double ub_bad = solution_upper_bound(proto, bad, iota_ids(12), k);
  EXPECT_GE(ub_bad + 1e-9, opt.value);

  // From the empty solution: bound = sum of top-k singleton values.
  const double ub_empty = solution_upper_bound(proto, {}, iota_ids(12), k);
  EXPECT_GE(ub_empty + 1e-9, opt.value);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpperBoundProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(UpperBound, CappedByTrivialMaxValue) {
  // Universe of 4: the bound can never exceed 4 even if marginals add up.
  const auto sys = std::make_shared<const SetSystem>(
      std::vector<std::vector<std::uint32_t>>{{0, 1}, {1, 2}, {2, 3}, {3, 0}},
      4);
  const CoverageOracle proto(sys);
  const double ub = solution_upper_bound(proto, {}, iota_ids(4), 4);
  EXPECT_DOUBLE_EQ(ub, 4.0);
}

TEST(UpperBound, TightWhenSolutionIsOptimal) {
  // Disjoint sets: greedy-k is optimal and the top-k marginals after it are
  // small, so the bound should be close to the optimum.
  const auto sys = std::make_shared<const SetSystem>(
      std::vector<std::vector<std::uint32_t>>{
          {0, 1, 2}, {3, 4, 5}, {6}, {7}},
      8);
  const CoverageOracle proto(sys);
  const std::vector<ElementId> solution{0, 1};
  const double ub = solution_upper_bound(proto, solution, iota_ids(4), 2);
  // f(S)=6; top-2 remaining marginals are 1+1 -> bound 8, capped at 8.
  EXPECT_DOUBLE_EQ(ub, 8.0);
  // Optimum for k=2 is 6; the ratio 6/8 = 0.75 is a valid lower bound.
}

TEST(BestUpperBound, TakesTightest) {
  const auto sys = random_set_system(14, 28, 0.2, 17);
  const CoverageOracle proto(sys);
  auto oracle = proto.clone();
  const auto g = greedy(*oracle, iota_ids(14), 8);

  const std::vector<std::vector<ElementId>> solutions{
      {}, {0}, g.picks};
  const double best = best_upper_bound(proto, solutions, iota_ids(14), 4);
  for (const auto& s : solutions) {
    EXPECT_LE(best, solution_upper_bound(proto, s, iota_ids(14), 4) + 1e-12);
  }
  const auto opt = brute_force_opt(proto, iota_ids(14), 4);
  EXPECT_GE(best + 1e-9, opt.value);
}

TEST(BestUpperBound, EmptySolutionListGivesTrivialCap) {
  const auto sys = random_set_system(5, 9, 0.4, 19);
  const CoverageOracle proto(sys);
  EXPECT_DOUBLE_EQ(best_upper_bound(proto, {}, iota_ids(5), 2), 9.0);
}

}  // namespace
}  // namespace bds
