// bds_convert pipeline: text edge list -> v2 container -> mmap load ->
// distributed run, checked against the same instance built in-process via
// graph_gen::neighborhood_sets. The checked-in tests/data/tiny.el is the
// corpus (path injected as BDS_TEST_DATA_DIR by tests/CMakeLists.txt).
#include "data/convert.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/registry.h"
#include "data/io.h"
#include "objectives/coverage.h"

namespace bds::data {
namespace {

std::string tiny_edge_list() {
  return std::string(BDS_TEST_DATA_DIR) + "/tiny.el";
}

// tiny.el's edges, minus the self-loop and the duplicate the parser must
// drop. Node ids appear in increasing order, so the first-appearance
// compaction is the identity.
Graph tiny_graph() {
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> edges{
      {0, 1},  {1, 2},   {2, 0},   {2, 3},   {3, 4},  {4, 5},
      {5, 6},  {6, 3},   {1, 7},   {7, 8},   {8, 9},  {9, 1},
      {10, 11}, {11, 12}, {12, 10}, {5, 13}, {13, 14}, {14, 15},
      {15, 5}};
  Graph graph;
  graph.adjacency.resize(16);
  for (const auto& [u, v] : edges) {
    graph.adjacency[u].push_back(v);
    graph.adjacency[v].push_back(u);
  }
  return graph;
}

class ConvertTest : public ::testing::Test {
 protected:
  std::string out_ = ::testing::TempDir() + "/bds_convert_test.bds";
  void TearDown() override { std::remove(out_.c_str()); }
};

TEST_F(ConvertTest, ParsesEdgeListDroppingLoopsAndDuplicates) {
  const Graph graph = load_edge_list(tiny_edge_list());
  const Graph expected = tiny_graph();
  ASSERT_EQ(graph.num_nodes(), expected.num_nodes());
  EXPECT_EQ(graph.num_edges(), expected.num_edges());
  const auto sets = neighborhood_sets(graph);
  const auto expected_sets = neighborhood_sets(expected);
  for (ElementId id = 0; id < sets->num_sets(); ++id) {
    const auto a = sets->set_items(id);
    const auto b = expected_sets->set_items(id);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
        << "node " << id;
  }
}

TEST_F(ConvertTest, MalformedLineNamesPathAndLine) {
  const std::string bad = ::testing::TempDir() + "/bds_convert_bad.el";
  {
    std::ofstream out(bad);
    out << "0 1\nnot an edge\n";
  }
  try {
    load_edge_list(bad);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(bad), std::string::npos) << what;
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
  }
  std::remove(bad.c_str());
}

// The satellite end-to-end check: tiny.el -> convert -> mmap load ->
// bicriteria run must match the generator-built instance exactly.
TEST_F(ConvertTest, ConvertedFileRunsIdenticallyToGeneratorBuilt) {
  const auto result = convert_dataset_file(tiny_edge_list(), out_);
  EXPECT_EQ(result.kind, "edge-list");
  EXPECT_EQ(result.ground_size, 16u);

  const auto mapped = map_set_system(out_);
  EXPECT_TRUE(mapped->borrows_storage());
  const auto reference = neighborhood_sets(tiny_graph());
  ASSERT_EQ(mapped->num_sets(), reference->num_sets());
  EXPECT_EQ(mapped->total_size(), reference->total_size());

  const CoverageOracle mapped_oracle(mapped);
  const CoverageOracle reference_oracle(reference);
  std::vector<ElementId> ground(reference->num_sets());
  for (std::size_t i = 0; i < ground.size(); ++i) {
    ground[i] = static_cast<ElementId>(i);
  }
  AlgorithmParams params;
  params.k = 3;
  params.rounds = 2;
  RuntimeOptions runtime;
  runtime.seed = 5;
  const auto a =
      run_distributed("bicriteria", mapped_oracle, ground, runtime, params);
  const auto b =
      run_distributed("bicriteria", reference_oracle, ground, runtime, params);
  EXPECT_EQ(a.solution, b.solution);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.stats.num_rounds(), b.stats.num_rounds());
}

TEST_F(ConvertTest, ReencodesLegacyAndV2Binary) {
  // v2 -> v2 rewrite preserves the instance.
  const auto graph = load_edge_list(tiny_edge_list());
  const auto sets = neighborhood_sets(graph);
  const std::string first = ::testing::TempDir() + "/bds_convert_first.bds";
  save_set_system(*sets, first);
  const auto result = convert_dataset_file(first, out_);
  EXPECT_EQ(result.kind, "set-system");
  const auto reloaded = map_set_system(out_);
  ASSERT_EQ(reloaded->num_sets(), sets->num_sets());
  EXPECT_EQ(reloaded->total_size(), sets->total_size());
  for (ElementId id = 0; id < sets->num_sets(); ++id) {
    const auto a = sets->set_items(id);
    const auto b = reloaded->set_items(id);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
  std::remove(first.c_str());
}

TEST_F(ConvertTest, MissingInputNamesPath) {
  try {
    convert_dataset_file("/nonexistent/input.el", out_);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/input.el"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace bds::data
