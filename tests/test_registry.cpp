#include "core/registry.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "objectives/coverage.h"
#include "test_support.h"

namespace bds {
namespace {

using testing::iota_ids;
using testing::random_set_system;

TEST(Registry, NamesAreUniqueAndNonEmpty) {
  const auto names = algorithm_names();
  EXPECT_GE(names.size(), 14u);
  std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size());
  for (const auto& n : names) EXPECT_FALSE(n.empty());
}

TEST(Registry, FindByName) {
  EXPECT_NE(find_algorithm("bicriteria"), nullptr);
  EXPECT_NE(find_algorithm("sieve"), nullptr);
  EXPECT_EQ(find_algorithm("nonsense"), nullptr);
  EXPECT_EQ(find_algorithm(""), nullptr);
  EXPECT_STREQ(find_algorithm("hybrid")->name.c_str(), "hybrid");
}

TEST(Registry, DescriptionsAndFlagsPopulated) {
  for (const auto& spec : algorithm_registry()) {
    EXPECT_FALSE(spec.description.empty()) << spec.name;
    EXPECT_TRUE(spec.run != nullptr) << spec.name;
  }
  EXPECT_TRUE(find_algorithm("randgreedi")->distributed);
  EXPECT_FALSE(find_algorithm("central")->distributed);
  EXPECT_FALSE(find_algorithm("random")->distributed);
}

class RegistryRunners : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RegistryRunners, EveryAlgorithmRunsAndReportsConsistently) {
  const auto& spec = algorithm_registry()[GetParam()];
  SCOPED_TRACE(spec.name);
  const auto sys = random_set_system(100, 150, 0.05, 31);
  const CoverageOracle proto(sys);
  const auto ground = iota_ids(100);

  AlgorithmParams params;
  params.k = 4;
  params.epsilon = 0.25;
  params.machines = 5;
  RuntimeOptions runtime;
  runtime.seed = 3;
  const auto result = spec.run(proto, ground, params, runtime);

  EXPECT_FALSE(result.solution.empty());
  EXPECT_NEAR(result.value, evaluate_set(proto, result.solution), 1e-9);
  for (const ElementId x : result.solution) EXPECT_LT(x, 100u);

  // Determinism through the registry path too.
  const auto again = spec.run(proto, ground, params, runtime);
  EXPECT_EQ(again.solution, result.solution);
}

INSTANTIATE_TEST_SUITE_P(All, RegistryRunners,
                         ::testing::Range<std::size_t>(0, 15),
                         [](const auto& info) {
                           std::string name =
                               algorithm_registry()[info.param].name;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(Registry, RespectsOutputItemsForBicriteria) {
  const auto sys = random_set_system(200, 400, 0.01, 33);
  const CoverageOracle proto(sys);
  AlgorithmParams params;
  params.k = 5;
  params.output_items = 15;
  const auto result = find_algorithm("bicriteria")
                          ->run(proto, iota_ids(200), params, RuntimeOptions{});
  EXPECT_GT(result.solution.size(), 5u);
  EXPECT_LE(result.solution.size(), 15u);
}

TEST(RunDistributed, FrontDoorMatchesSpecRun) {
  const auto sys = random_set_system(120, 200, 0.04, 35);
  const CoverageOracle proto(sys);
  const auto ground = iota_ids(120);

  AlgorithmParams params;
  params.k = 5;
  RuntimeOptions runtime;
  runtime.seed = 9;

  const RunResult front = run_distributed("bicriteria", proto, ground,
                                          runtime, params);
  const DistributedResult direct =
      find_algorithm("bicriteria")->run(proto, ground, params, runtime);
  EXPECT_EQ(front.algorithm, "bicriteria");
  EXPECT_EQ(front.solution, direct.solution);
  EXPECT_DOUBLE_EQ(front.value, direct.value);
  EXPECT_EQ(front.stats.num_rounds(), direct.stats.num_rounds());
  EXPECT_EQ(front.stats.trace.rounds.size(), front.stats.num_rounds());
}

TEST(RunDistributed, UnknownAlgorithmThrowsWithNames) {
  const auto sys = random_set_system(20, 30, 0.2, 36);
  const CoverageOracle proto(sys);
  try {
    run_distributed("no-such-algo", proto, iota_ids(20), RuntimeOptions{});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-algo"), std::string::npos);
    EXPECT_NE(what.find("bicriteria"), std::string::npos);
  }
}

}  // namespace
}  // namespace bds
