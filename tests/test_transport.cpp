// Cross-backend golden suite for the ClusterTransport seam plus the wire
// protocol's failure grid.
//
// The load-bearing contract: for every registered distributed algorithm,
// a run on the multi-process backend (forked bds_worker per machine, wire
// protocol over a socketpair) must be *bitwise* equal to the in-process
// run — same selection, same value bits, same oracle-evaluation ledger,
// same lazy-bound savings — because the worker executes the identical
// selector code on an oracle rebuilt from the same CorpusSpec.
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/registry.h"
#include "data/corpus.h"
#include "data/io.h"
#include "data/vectors_gen.h"
#include "dist/transport.h"
#include "dist/wire.h"
#include "test_support.h"
#include "util/serialize.h"

namespace bds {
namespace {

using dist::MachineReport;
using dist::WorkerOutput;
using testing::iota_ids;
using testing::random_set_system;
namespace wire = dist::wire;

#ifndef BDS_WORKER_BIN
#error "BDS_WORKER_BIN must point at the bds_worker executable"
#endif

// ---------------------------------------------------------------------------
// Shared corpus: a coverage dataset written once, reloaded through the same
// CorpusSpec on the coordinator and in every worker.

class TransportGoldenEnv : public ::testing::Environment {
 public:
  void SetUp() override {
    // Pid-unique paths: under parallel ctest every test case is its own
    // process running this same environment, so a shared fixed path would
    // race one process's rewrite against another's read.
    const std::string tag = std::to_string(::getpid());
    coverage_path_ =
        ::testing::TempDir() + "transport_golden_coverage." + tag + ".bds";
    const auto sys = random_set_system(120, 150, 0.05, 31);
    data::save_set_system(*sys, coverage_path_);

    points_path_ =
        ::testing::TempDir() + "transport_golden_points." + tag + ".bds";
    data::LdaVectorsConfig cfg;
    cfg.documents = 80;
    cfg.seed = 7;
    data::save_point_set(*data::make_lda_like_vectors(cfg), points_path_);
  }

  void TearDown() override {
    std::remove(coverage_path_.c_str());
    std::remove(points_path_.c_str());
  }

  static std::string coverage_path_;
  static std::string points_path_;
};

std::string TransportGoldenEnv::coverage_path_;
std::string TransportGoldenEnv::points_path_;

const ::testing::Environment* const kEnv =
    ::testing::AddGlobalTestEnvironment(new TransportGoldenEnv);

data::CorpusSpec coverage_corpus() {
  data::CorpusSpec spec;
  spec.objective = "coverage";
  spec.path = TransportGoldenEnv::coverage_path_;
  return spec;
}

RuntimeOptions process_runtime(const data::CorpusSpec& corpus,
                               std::uint64_t seed = 3) {
  RuntimeOptions runtime;
  runtime.seed = seed;
  runtime.transport = TransportKind::kProcess;
  runtime.process.worker_binary = BDS_WORKER_BIN;
  runtime.process.corpus_spec = corpus.serialize();
  return runtime;
}

RuntimeOptions inproc_runtime(std::uint64_t seed = 3) {
  RuntimeOptions runtime;
  runtime.seed = seed;
  return runtime;
}

// Bitwise comparison of everything the runs are required to agree on.
// Wall-clock fields are the only tolerated difference between backends.
void expect_bit_identical(const RunResult& inproc, const RunResult& process) {
  EXPECT_EQ(inproc.solution, process.solution);
  EXPECT_EQ(util::double_bits(inproc.value),
            util::double_bits(process.value));
  EXPECT_EQ(inproc.stats.total_evals(), process.stats.total_evals());
  EXPECT_EQ(inproc.stats.total_evals_avoided(),
            process.stats.total_evals_avoided());
  EXPECT_EQ(inproc.stats.bytes_communicated(),
            process.stats.bytes_communicated());
  EXPECT_EQ(inproc.stats.critical_path_evals(),
            process.stats.critical_path_evals());
  ASSERT_EQ(inproc.stats.rounds.size(), process.stats.rounds.size());
  for (std::size_t r = 0; r < inproc.stats.rounds.size(); ++r) {
    SCOPED_TRACE("round " + std::to_string(r));
    const auto& a = inproc.stats.rounds[r];
    const auto& b = process.stats.rounds[r];
    EXPECT_EQ(a.worker_evals, b.worker_evals);
    EXPECT_EQ(a.central_evals, b.central_evals);
    EXPECT_EQ(a.elements_gathered, b.elements_gathered);
    EXPECT_EQ(a.evals_avoided, b.evals_avoided);
    EXPECT_EQ(a.wasted_evals, b.wasted_evals);
  }
}

// ---------------------------------------------------------------------------
// Golden equality for every registered distributed algorithm.

class TransportGolden : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TransportGolden, ProcessBackendMatchesInprocBitwise) {
  const AlgorithmSpec& spec = algorithm_registry()[GetParam()];
  if (!spec.distributed) GTEST_SKIP() << spec.name << " is centralized";
  SCOPED_TRACE(spec.name);

  const data::CorpusSpec corpus = coverage_corpus();
  const auto oracle = corpus.make_oracle();
  const auto ground = iota_ids(oracle->ground_size());

  AlgorithmParams params;
  params.k = 4;
  params.rounds = 2;
  params.epsilon = 0.25;
  params.machines = 5;

  const RunResult inproc =
      run_distributed(spec.name, *oracle, ground, inproc_runtime(), params);
  const RunResult process = run_distributed(spec.name, *oracle, ground,
                                            process_runtime(corpus), params);
  expect_bit_identical(inproc, process);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, TransportGolden,
                         ::testing::Range<std::size_t>(
                             0, algorithm_registry().size()),
                         [](const auto& info) {
                           std::string name =
                               algorithm_registry()[info.param].name;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// The exemplar family ships a PointSet and scalar parameters instead of a
// set system; sampled-exemplar additionally freezes its estimate sample
// from the spec's seed, which both sides must derive identically.
TEST(TransportGoldenObjectives, ExemplarAndSampledExemplarAcrossTheWire) {
  for (const bool sampled : {false, true}) {
    SCOPED_TRACE(sampled ? "sampled-exemplar" : "exemplar");
    data::CorpusSpec corpus;
    corpus.objective = sampled ? "sampled-exemplar" : "exemplar";
    corpus.path = TransportGoldenEnv::points_path_;
    corpus.p0_dist = 2.0;
    corpus.sample_size = 24;
    corpus.sample_seed = 11;
    const auto oracle = corpus.make_oracle();
    const auto ground = iota_ids(oracle->ground_size());

    AlgorithmParams params;
    params.k = 3;
    params.machines = 4;
    const RunResult inproc = run_distributed("randgreedi", *oracle, ground,
                                             inproc_runtime(), params);
    const RunResult process = run_distributed(
        "randgreedi", *oracle, ground, process_runtime(corpus), params);
    expect_bit_identical(inproc, process);
  }
}

// Injected faults (crash / drop / straggle) under the process backend are
// *real*: a kCrash worker replies, then _exit(9)s, and the retry respawns
// it. With unlimited retries the run must still land on the fault-free
// golden answer, with identical wasted-eval accounting to the simulator.
TEST(TransportGoldenFaults, InjectedCrashesRecoverToTheGoldenAnswer) {
  const data::CorpusSpec corpus = coverage_corpus();
  const auto oracle = corpus.make_oracle();
  const auto ground = iota_ids(oracle->ground_size());

  AlgorithmParams params;
  params.k = 4;
  params.rounds = 2;
  params.machines = 5;

  const RunResult golden = run_distributed("bicriteria", *oracle, ground,
                                           inproc_runtime(), params);

  // Not every seed fires a fault on a 5-machine instance; probe (cheaply,
  // in-process) until two seeds that do are found, then hold the process
  // backend to the simulator's exact ledger under those.
  std::size_t seeds_exercised = 0;
  for (std::uint64_t fault_seed = 1; fault_seed <= 64 && seeds_exercised < 2;
       ++fault_seed) {
    RuntimeOptions faulty_inproc = inproc_runtime();
    faulty_inproc.faults = dist::FaultPlan::recoverable(fault_seed);
    faulty_inproc.retry.max_attempts = 0;
    const RunResult inproc =
        run_distributed("bicriteria", *oracle, ground, faulty_inproc, params);
    if (inproc.stats.total_faults_injected() == 0) continue;
    ++seeds_exercised;
    SCOPED_TRACE("fault seed " + std::to_string(fault_seed));

    RuntimeOptions faulty_process = process_runtime(corpus);
    faulty_process.faults = dist::FaultPlan::recoverable(fault_seed);
    faulty_process.retry.max_attempts = 0;
    const RunResult process = run_distributed("bicriteria", *oracle, ground,
                                              faulty_process, params);
    EXPECT_EQ(inproc.solution, golden.solution);
    expect_bit_identical(inproc, process);
    EXPECT_GT(process.stats.total_faults_injected(), 0u);
  }
  EXPECT_EQ(seeds_exercised, 2u) << "no fault-injecting seeds in [1, 64]";
}

// The lazy-bound certificates a worker starts from must survive the wire:
// if they did not, the warm-started selector would recompute gains and the
// evals-avoided ledger would diverge between backends.
TEST(TransportGoldenLazyBounds, CertificatesSerializeAcrossTheWire) {
  const data::CorpusSpec corpus = coverage_corpus();
  const auto oracle = corpus.make_oracle();
  const auto ground = iota_ids(oracle->ground_size());

  AlgorithmParams params;
  params.k = 4;
  params.rounds = 3;  // bounds only pay off after round 1
  params.machines = 5;

  const RunResult inproc = run_distributed("bicriteria", *oracle, ground,
                                           inproc_runtime(), params);
  const RunResult process = run_distributed("bicriteria", *oracle, ground,
                                            process_runtime(corpus), params);
  expect_bit_identical(inproc, process);
  // Under BDS_LAZY=off the substrate is deliberately inert (and the
  // bit-identity above still must hold); only assert savings when it's on.
  if (detail::lazy_enabled()) {
    EXPECT_GT(inproc.stats.total_evals_avoided(), 0u)
        << "instance too small to exercise the lazy-bound substrate";
  }
}

// Trace spans attribute rounds to the backend that executed them and meter
// wire traffic — nonzero on the process backend, zero in-process.
TEST(TransportTrace, SpansRecordBackendAndWireBytes) {
  const data::CorpusSpec corpus = coverage_corpus();
  const auto oracle = corpus.make_oracle();
  const auto ground = iota_ids(oracle->ground_size());

  AlgorithmParams params;
  params.k = 4;
  params.machines = 4;

  const RunResult inproc = run_distributed("randgreedi", *oracle, ground,
                                           inproc_runtime(), params);
  ASSERT_FALSE(inproc.stats.trace.rounds.empty());
  for (const auto& span : inproc.stats.trace.rounds) {
    EXPECT_EQ(span.transport, "inproc");
    EXPECT_EQ(span.wire_bytes_sent, 0u);
    EXPECT_EQ(span.wire_bytes_received, 0u);
  }

  const RunResult process = run_distributed("randgreedi", *oracle, ground,
                                            process_runtime(corpus), params);
  ASSERT_FALSE(process.stats.trace.rounds.empty());
  for (const auto& span : process.stats.trace.rounds) {
    EXPECT_EQ(span.transport, "process");
    EXPECT_GT(span.wire_bytes_sent, 0u);
    EXPECT_GT(span.wire_bytes_received, 0u);
  }
}

// The v3 checkpoint format carries the new span fields; a process-backend
// run's checkpoint must round-trip them bit-exactly.
TEST(TransportTrace, CheckpointRoundTripsTransportFields) {
  const data::CorpusSpec corpus = coverage_corpus();
  const auto oracle = corpus.make_oracle();
  const auto ground = iota_ids(oracle->ground_size());

  AlgorithmParams params;
  params.k = 4;
  params.rounds = 2;
  params.machines = 4;

  RuntimeOptions runtime = process_runtime(corpus);
  std::vector<Checkpoint> checkpoints;
  runtime.checkpoint_sink = [&checkpoints](const Checkpoint& checkpoint) {
    checkpoints.push_back(checkpoint);
  };
  run_distributed("bicriteria", *oracle, ground, runtime, params);
  ASSERT_FALSE(checkpoints.empty());

  const std::string text = checkpoints.back().serialize();
  const Checkpoint restored = Checkpoint::deserialize(text);
  EXPECT_EQ(restored.serialize(), text);
  ASSERT_FALSE(restored.stats.trace.rounds.empty());
  for (const auto& span : restored.stats.trace.rounds) {
    EXPECT_EQ(span.transport, "process");
    EXPECT_GT(span.wire_bytes_sent, 0u);
  }
}

// ---------------------------------------------------------------------------
// Process-backend failure modes that must name the offending worker.

TEST(TransportProcess, RefusesClosureOnlyWorkWithWorkerName) {
  dist::ProcessTransportConfig config;
  config.machines = 4;
  config.ground_size = 10;
  config.worker_binary = BDS_WORKER_BIN;
  const auto transport = dist::make_process_transport(config);

  dist::RoundWork work;
  work.plan.kind = dist::WorkerPlanKind::kCustom;
  const std::vector<ElementId> shard = {1, 2, 3};
  try {
    transport->run_attempt(0, 3, 1, dist::FaultKind::kNone, shard, work);
    FAIL() << "custom work must be refused";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("transport worker 3"),
              std::string::npos)
        << e.what();
  }
}

TEST(TransportProcess, HandshakeDeathNamesWorkerAndBinary) {
  dist::ProcessTransportConfig config;
  config.machines = 1;
  config.ground_size = 10;
  config.worker_binary = "/bin/false";  // execs, then exits without a frame
  config.corpus_spec = coverage_corpus().serialize();
  const auto transport = dist::make_process_transport(config);

  dist::RoundWork work;
  work.plan.kind = dist::WorkerPlanKind::kSelector;
  const std::vector<ElementId> shard = {1, 2, 3};
  try {
    transport->run_attempt(0, 0, 1, dist::FaultKind::kNone, shard, work);
    FAIL() << "handshake with a silent binary must fail";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("transport worker 0"), std::string::npos) << what;
    EXPECT_NE(what.find("handshake"), std::string::npos) << what;
  }
}

// A worker killed by a *signal* before completing its handshake is a
// transient crash, not a configuration error: run_attempt reports crashed
// so the cluster's retry respawns it. (scripts/check_kill9.sh lands real
// SIGKILLs at exactly this instant.) Contrast with /bin/false above, which
// exits on its own and stays fatal.
TEST(TransportProcess, SignalDeathDuringHandshakeIsRetryableNotFatal) {
  const std::string script = ::testing::TempDir() + "transport_kill9.sh";
  {
    std::ofstream out(script);
    out << "#!/bin/sh\nkill -KILL $$\n";
  }
  ASSERT_EQ(::chmod(script.c_str(), 0755), 0);

  dist::ProcessTransportConfig config;
  config.machines = 1;
  config.ground_size = 10;
  config.worker_binary = script;
  config.corpus_spec = coverage_corpus().serialize();
  const auto transport = dist::make_process_transport(config);

  dist::RoundWork work;
  work.plan.kind = dist::WorkerPlanKind::kSelector;
  const std::vector<ElementId> shard = {1, 2, 3};
  const auto result =
      transport->run_attempt(0, 0, 1, dist::FaultKind::kNone, shard, work);
  EXPECT_TRUE(result.crashed);
  EXPECT_TRUE(result.output.summary.empty());
  std::remove(script.c_str());
}

// A worker that reports a failure (kError frame) surfaces it by name
// instead of entering the crash/retry path: a bad corpus never improves.
TEST(TransportProcess, WorkerSideErrorsSurfaceByName) {
  data::CorpusSpec corpus;
  corpus.objective = "coverage";
  corpus.path = "/nonexistent/corpus.bds";
  dist::ProcessTransportConfig config;
  config.machines = 1;
  config.ground_size = 10;
  config.worker_binary = BDS_WORKER_BIN;
  config.corpus_spec = corpus.serialize();
  const auto transport = dist::make_process_transport(config);

  dist::RoundWork work;
  work.plan.kind = dist::WorkerPlanKind::kSelector;
  const std::vector<ElementId> shard = {1, 2, 3};
  try {
    transport->run_attempt(0, 0, 1, dist::FaultKind::kNone, shard, work);
    FAIL() << "an unloadable corpus must be reported";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("transport worker 0"),
              std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// Wire protocol: framing, the corruption grid, and codec round trips.

struct Pipe {
  int fds[2] = {-1, -1};
  Pipe() { EXPECT_EQ(::pipe(fds), 0); }
  ~Pipe() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
  void write_all(const std::string& bytes) {
    ASSERT_EQ(::write(fds[1], bytes.data(), bytes.size()),
              static_cast<ssize_t>(bytes.size()));
  }
  void close_writer() {
    ::close(fds[1]);
    fds[1] = -1;
  }
};

TEST(WireProtocol, FrameRoundTripsOverAPipe) {
  Pipe pipe;
  const std::string payload = "hello across the frame boundary\n";
  std::uint64_t sent = 0;
  ASSERT_EQ(wire::write_frame(pipe.fds[1], wire::FrameType::kRequest, payload,
                              &sent, "peer"),
            wire::IoStatus::kOk);
  EXPECT_EQ(sent, wire::kHeaderBytes + payload.size());

  wire::Frame frame;
  std::uint64_t received = 0;
  ASSERT_EQ(wire::read_frame(pipe.fds[0], &frame, &received, "peer"),
            wire::IoStatus::kOk);
  EXPECT_EQ(frame.type, wire::FrameType::kRequest);
  EXPECT_EQ(frame.payload, payload);
  EXPECT_EQ(received, sent);
}

TEST(WireProtocol, EofAtFrameBoundaryIsACleanClose) {
  Pipe pipe;
  pipe.close_writer();
  wire::Frame frame;
  EXPECT_EQ(wire::read_frame(pipe.fds[0], &frame, nullptr, "peer"),
            wire::IoStatus::kClosed);
}

// Each corruption must throw WireError naming the worker, with a message
// that identifies the specific violation.
struct CorruptionCase {
  const char* name;
  std::string bytes;        // what the "worker" sends
  const char* expect_text;  // substring the error must contain
};

std::string valid_frame() {
  return wire::encode_frame(wire::FrameType::kResponse, "payload");
}

class WireCorruption : public ::testing::TestWithParam<CorruptionCase> {};

TEST_P(WireCorruption, FailsNamingTheWorker) {
  const CorruptionCase& test_case = GetParam();
  Pipe pipe;
  pipe.write_all(test_case.bytes);
  pipe.close_writer();

  wire::Frame frame;
  try {
    wire::read_frame(pipe.fds[0], &frame, nullptr,
                     "transport worker 3 (pid 12345)");
    FAIL() << test_case.name << ": corruption must not parse";
  } catch (const wire::WireError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("transport worker 3"), std::string::npos) << what;
    EXPECT_NE(what.find(test_case.expect_text), std::string::npos) << what;
  }
}

std::vector<CorruptionCase> corruption_grid() {
  std::vector<CorruptionCase> grid;
  grid.push_back({"TruncatedHeader", valid_frame().substr(0, 7),
                  "truncated frame header"});
  grid.push_back({"TruncatedPayload",
                  valid_frame().substr(0, wire::kHeaderBytes + 3),
                  "truncated frame payload"});
  {
    std::string bad = valid_frame();
    bad[0] = '\x00';
    grid.push_back({"BadMagic", bad, "bad frame magic"});
  }
  {
    std::string skew = valid_frame();
    skew[4] = static_cast<char>(wire::kVersion + 1);
    grid.push_back({"VersionSkew", skew, "wire version skew"});
  }
  {
    std::string unknown = valid_frame();
    unknown[8] = 99;
    grid.push_back({"UnknownType", unknown, "unknown frame type 99"});
  }
  {
    std::string oversized = valid_frame();
    // payload_len at offset 12, little-endian: kMaxPayload + 1.
    const std::uint64_t huge = wire::kMaxPayload + 1;
    for (int i = 0; i < 8; ++i) {
      oversized[12 + i] = static_cast<char>((huge >> (8 * i)) & 0xff);
    }
    grid.push_back({"OversizedLength", oversized, "oversized frame"});
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(Grid, WireCorruption,
                         ::testing::ValuesIn(corruption_grid()),
                         [](const auto& info) { return info.param.name; });

// ---------------------------------------------------------------------------
// Codec round trips: doubles travel as IEEE-754 bit patterns, so awkward
// values (third-roots, negative zero, denormals) must survive bit-exactly.

TEST(WireCodec, WorkerOutputRoundTripsBitExactly) {
  WorkerOutput output;
  output.summary = {4, 1, 99};
  output.oracle_evals = 12345;
  output.state_bytes = 67890;
  output.bound_ids = {7, 8};
  output.bound_gains = {1.0 / 3.0, -0.0, 5e-324};
  output.evals_avoided = 42;

  const WorkerOutput round =
      wire::decode_worker_output(wire::encode_worker_output(output), "test");
  EXPECT_EQ(round.summary, output.summary);
  EXPECT_EQ(round.oracle_evals, output.oracle_evals);
  EXPECT_EQ(round.state_bytes, output.state_bytes);
  EXPECT_EQ(round.bound_ids, output.bound_ids);
  ASSERT_EQ(round.bound_gains.size(), output.bound_gains.size());
  for (std::size_t i = 0; i < output.bound_gains.size(); ++i) {
    EXPECT_EQ(util::double_bits(round.bound_gains[i]),
              util::double_bits(output.bound_gains[i]));
  }
  EXPECT_EQ(round.evals_avoided, output.evals_avoided);
}

TEST(WireCodec, MachineReportRoundTripsBitExactly) {
  MachineReport report;
  report.worker.summary = {2, 3};
  report.worker.oracle_evals = 17;
  report.seconds = 0.1 + 0.2;  // famously not 0.3
  report.attempts = 3;
  report.last_fault = dist::FaultKind::kStraggler;
  report.status = dist::DeliveryStatus::kDegraded;

  const MachineReport round = wire::decode_machine_report(
      wire::encode_machine_report(report), "test");
  EXPECT_EQ(round.worker.summary, report.worker.summary);
  EXPECT_EQ(round.worker.oracle_evals, report.worker.oracle_evals);
  EXPECT_EQ(util::double_bits(round.seconds),
            util::double_bits(report.seconds));
  EXPECT_EQ(round.attempts, report.attempts);
  EXPECT_EQ(round.last_fault, report.last_fault);
  EXPECT_EQ(round.status, report.status);
}

TEST(WireCodec, AttemptRequestRoundTripsPlanShardAndBounds) {
  wire::AttemptRequest request;
  request.round = 2;
  request.machine = 5;
  request.attempt = 3;
  request.fault = dist::FaultKind::kCrash;
  request.plan.kind = dist::WorkerPlanKind::kThreshold;
  request.plan.selector = MachineSelector::kStochasticGreedy;
  request.plan.stochastic_c = 2.5;
  request.plan.stop_when_no_gain = false;
  request.plan.budget = 9;
  request.plan.threshold = 1.0 / 7.0;
  request.plan.seed = 99;
  request.plan.round = 2;
  request.plan.worker_oracle = WorkerOracleMode::kClone;
  request.plan.incremental_central = true;
  request.plan.lazy_bounds = true;
  request.plan.committed = {10, 20, 30};
  request.shard = {1, 2, 3, 4};
  request.bound_ids = {1, 3};
  request.bound_gains = {0.25, 1e-17};
  request.bound_prefixes = {0, 2};

  const wire::AttemptRequest round =
      wire::decode_request(wire::encode_request(request), "test");
  EXPECT_EQ(round.round, request.round);
  EXPECT_EQ(round.machine, request.machine);
  EXPECT_EQ(round.attempt, request.attempt);
  EXPECT_EQ(round.fault, request.fault);
  EXPECT_EQ(round.plan.kind, request.plan.kind);
  EXPECT_EQ(round.plan.selector, request.plan.selector);
  EXPECT_EQ(util::double_bits(round.plan.stochastic_c),
            util::double_bits(request.plan.stochastic_c));
  EXPECT_EQ(round.plan.stop_when_no_gain, request.plan.stop_when_no_gain);
  EXPECT_EQ(round.plan.budget, request.plan.budget);
  EXPECT_EQ(util::double_bits(round.plan.threshold),
            util::double_bits(request.plan.threshold));
  EXPECT_EQ(round.plan.seed, request.plan.seed);
  EXPECT_EQ(round.plan.round, request.plan.round);
  EXPECT_EQ(round.plan.worker_oracle, request.plan.worker_oracle);
  EXPECT_EQ(round.plan.incremental_central, request.plan.incremental_central);
  EXPECT_EQ(round.plan.lazy_bounds, request.plan.lazy_bounds);
  EXPECT_EQ(round.plan.committed, request.plan.committed);
  EXPECT_EQ(round.shard, request.shard);
  EXPECT_EQ(round.bound_ids, request.bound_ids);
  ASSERT_EQ(round.bound_gains.size(), request.bound_gains.size());
  for (std::size_t i = 0; i < request.bound_gains.size(); ++i) {
    EXPECT_EQ(util::double_bits(round.bound_gains[i]),
              util::double_bits(request.bound_gains[i]));
  }
  EXPECT_EQ(round.bound_prefixes, request.bound_prefixes);
}

TEST(WireCodec, HelloCarriesPathsWithWhitespace) {
  wire::Hello hello;
  hello.machine = 3;
  hello.ground_size = 1000;
  data::CorpusSpec spec;
  spec.objective = "coverage";
  spec.path = "/tmp/dir with spaces/and\nnewline.bds";
  hello.corpus_spec = spec.serialize();

  const wire::Hello round =
      wire::decode_hello(wire::encode_hello(hello), "test");
  EXPECT_EQ(round.machine, hello.machine);
  EXPECT_EQ(round.ground_size, hello.ground_size);
  EXPECT_EQ(round.corpus_spec, hello.corpus_spec);
  EXPECT_EQ(data::CorpusSpec::deserialize(round.corpus_spec).path, spec.path);
}

TEST(WireCodec, MalformedPayloadNamesTheContext) {
  try {
    wire::decode_response("seconds not-a-number\n", "transport worker 7");
    FAIL() << "malformed payload must not parse";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("transport worker 7"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace bds
