// White-box tests of the worker glue shared by every distributed algorithm.
#include "core/machine_runner.h"

#include <gtest/gtest.h>

#include <atomic>

#include "objectives/coverage.h"
#include "test_support.h"

namespace bds::detail {
namespace {

using bds::testing::iota_ids;
using bds::testing::random_set_system;

TEST(MachineRng, DeterministicPerTriple) {
  util::Rng a = machine_rng(1, 2, 3);
  util::Rng b = machine_rng(1, 2, 3);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(MachineRng, DistinctAcrossMachinesAndRounds) {
  util::Rng base = machine_rng(1, 0, 0);
  for (const auto [round, machine] :
       {std::pair<std::size_t, std::size_t>{0, 1}, {1, 0}, {1, 1}, {2, 7}}) {
    util::Rng other = machine_rng(1, round, machine);
    int equal = 0;
    util::Rng base_copy = machine_rng(1, 0, 0);
    for (int i = 0; i < 64; ++i) {
      equal += (base_copy.next_u64() == other.next_u64());
    }
    EXPECT_LT(equal, 4) << "round " << round << " machine " << machine;
  }
  static_cast<void>(base);
}

TEST(RunSelector, DispatchesAllSelectors) {
  const auto sys = random_set_system(30, 60, 0.2, 1);
  util::Rng rng(1);
  for (const auto selector :
       {MachineSelector::kGreedy, MachineSelector::kLazyGreedy,
        MachineSelector::kStochasticGreedy}) {
    CoverageOracle oracle(sys);
    const auto result =
        run_selector(oracle, iota_ids(30), 5, selector, 3.0, true, rng);
    EXPECT_GT(result.size(), 0u);
    EXPECT_LE(result.size(), 5u);
    EXPECT_NEAR(result.gained, oracle.value(), 1e-9);
  }
}

TEST(MachineWorker, ClonesCoordinatorState) {
  const auto sys = random_set_system(40, 80, 0.15, 2);
  CoverageOracle central(sys);
  central.add(0);
  const double central_value = central.value();

  MachineWorkerConfig cfg;
  cfg.budget = 3;
  cfg.central = &central;
  const auto worker = make_machine_worker(cfg);
  const std::vector<ElementId> shard{5, 6, 7, 8};
  const auto report = worker(0, shard);

  // Coordinator untouched; worker reported only its own evals.
  EXPECT_DOUBLE_EQ(central.value(), central_value);
  EXPECT_GT(report.oracle_evals, 0u);
  EXPECT_LE(report.summary.size(), 3u);
  for (const ElementId x : report.summary) {
    EXPECT_NE(std::find(shard.begin(), shard.end(), x), shard.end());
  }
}

TEST(MachineWorker, FactorySeedsWithCoordinatorSolution) {
  const auto sys = random_set_system(40, 80, 0.15, 3);
  CoverageOracle central(sys);
  central.add(1);
  central.add(2);

  std::atomic<int> calls{0};
  MachineOracleFactory factory =
      [&](std::size_t) -> std::unique_ptr<SubmodularOracle> {
    ++calls;
    return std::make_unique<CoverageOracle>(sys);
  };
  MachineWorkerConfig cfg;
  cfg.budget = 2;
  cfg.central = &central;
  cfg.factory = &factory;
  const auto worker = make_machine_worker(cfg);
  const auto report = worker(4, std::vector<ElementId>{1, 2, 10, 11});

  EXPECT_EQ(calls.load(), 1);
  // Seeding replays |S| = 2 adds, so evals >= 2 + shard work.
  EXPECT_GE(report.oracle_evals, 2u);
  // Items already in S have zero marginal; with stop_when_no_gain they are
  // never selected.
  for (const ElementId x : report.summary) {
    EXPECT_NE(x, 1u);
    EXPECT_NE(x, 2u);
  }
}

TEST(MachineWorker, ShardViewAndCloneWorkersReportIdenticalSelections) {
  const auto sys = random_set_system(60, 1200, 0.01, 6);
  CoverageOracle central(sys);
  central.add(0);
  central.add(9);

  MachineWorkerConfig cfg;
  cfg.budget = 4;
  cfg.central = &central;
  cfg.worker_oracle = WorkerOracleMode::kShardView;
  const auto view_worker = make_machine_worker(cfg);
  cfg.worker_oracle = WorkerOracleMode::kClone;
  const auto clone_worker = make_machine_worker(cfg);

  const std::vector<ElementId> shard{3, 9, 14, 21, 30, 44, 58};
  const auto view_report = view_worker(2, shard);
  const auto clone_report = clone_worker(2, shard);
  EXPECT_EQ(view_report.summary, clone_report.summary);
  EXPECT_EQ(view_report.oracle_evals, clone_report.oracle_evals);
  // The whole point of the view: strictly less worker state than a clone
  // for a shard much smaller than the ground set.
  EXPECT_GT(clone_report.state_bytes, 0u);
  EXPECT_LT(view_report.state_bytes, clone_report.state_bytes);
}

TEST(MachineWorker, ReportsStateBytesForBothModes) {
  const auto sys = random_set_system(30, 500, 0.05, 7);
  CoverageOracle central(sys);
  MachineWorkerConfig cfg;
  cfg.budget = 2;
  cfg.central = &central;
  const auto worker = make_machine_worker(cfg);
  const auto report = worker(0, std::vector<ElementId>{1, 2});
  // A 2-set view touches at most 2 rows of ~25 elements each — nowhere near
  // the 500-byte covered bitmap a clone would carry.
  EXPECT_GT(report.state_bytes, 0u);
  EXPECT_LT(report.state_bytes, central.clone()->state_bytes());
}

TEST(MachineWorker, EmptyShardYieldsEmptySummary) {
  const auto sys = random_set_system(10, 20, 0.3, 4);
  CoverageOracle central(sys);
  MachineWorkerConfig cfg;
  cfg.budget = 5;
  cfg.central = &central;
  const auto worker = make_machine_worker(cfg);
  const auto report = worker(0, std::span<const ElementId>{});
  EXPECT_TRUE(report.summary.empty());
}

TEST(MachineWorker, StochasticSelectorIsSeededPerMachine) {
  const auto sys = random_set_system(200, 150, 0.05, 5);
  CoverageOracle central(sys);
  MachineWorkerConfig cfg;
  cfg.selector = MachineSelector::kStochasticGreedy;
  cfg.budget = 5;
  cfg.seed = 11;
  cfg.central = &central;
  const auto worker = make_machine_worker(cfg);

  const auto shard = iota_ids(200);
  const auto a0 = worker(0, shard);
  const auto a0_again = worker(0, shard);
  const auto a1 = worker(1, shard);
  EXPECT_EQ(a0.summary, a0_again.summary);  // deterministic per machine
  EXPECT_NE(a0.summary, a1.summary);        // differs across machines
}

}  // namespace
}  // namespace bds::detail
