#include "objectives/saturated_coverage.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/greedy.h"
#include "test_support.h"
#include "util/rng.h"

namespace bds {
namespace {

std::shared_ptr<const SimilarityMatrix> random_similarity(std::size_t n,
                                                          std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> values(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    values[i * n + i] = 1.0;
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v = rng.next_double(0.0, 1.0);
      values[i * n + j] = v;
      values[j * n + i] = v;
    }
  }
  return std::make_shared<const SimilarityMatrix>(n, std::move(values));
}

TEST(SimilarityMatrix, ValidatesInput) {
  EXPECT_THROW(SimilarityMatrix(2, {1.0, 0.5, 0.4, 1.0}),
               std::invalid_argument);  // asymmetric
  EXPECT_THROW(SimilarityMatrix(2, {1.0, -0.5, -0.5, 1.0}),
               std::invalid_argument);  // negative
  EXPECT_THROW(SimilarityMatrix(2, {1.0}), std::invalid_argument);  // size
}

TEST(SimilarityMatrix, RowSums) {
  const SimilarityMatrix sim(2, {1.0, 0.25, 0.25, 1.0});
  EXPECT_DOUBLE_EQ(sim.row_sum(0), 1.25);
  EXPECT_DOUBLE_EQ(sim.at(0, 1), 0.25);
}

TEST(SaturatedCoverage, ValidatesConfig) {
  const auto sim = random_similarity(4, 1);
  SaturatedCoverageConfig cfg;
  cfg.gamma = 0.0;
  EXPECT_THROW(SaturatedCoverageOracle(sim, cfg), std::invalid_argument);
  cfg = {};
  cfg.gamma = 1.5;
  EXPECT_THROW(SaturatedCoverageOracle(sim, cfg), std::invalid_argument);
  cfg = {};
  cfg.lambda = -1.0;
  EXPECT_THROW(SaturatedCoverageOracle(sim, cfg), std::invalid_argument);
  cfg = {};
  cfg.cluster_of = {0, 1};  // wrong length
  EXPECT_THROW(SaturatedCoverageOracle(sim, cfg), std::invalid_argument);
}

TEST(SaturatedCoverage, HandComputedNoSaturation) {
  // gamma = 1 and a single pick never saturates: gain = column sum.
  const SimilarityMatrix sim(2, {1.0, 0.5, 0.5, 1.0});
  SaturatedCoverageConfig cfg;
  cfg.gamma = 1.0;
  SaturatedCoverageOracle oracle(
      std::make_shared<const SimilarityMatrix>(sim), cfg);
  EXPECT_DOUBLE_EQ(oracle.gain(0), 1.5);
  EXPECT_DOUBLE_EQ(oracle.add(0), 1.5);
}

TEST(SaturatedCoverage, SaturationCapsContributions) {
  // With gamma = 0.5 each sentence i contributes at most half its row sum.
  const auto sim = std::make_shared<const SimilarityMatrix>(
      2, std::vector<double>{1.0, 1.0, 1.0, 1.0});
  SaturatedCoverageConfig cfg;
  cfg.gamma = 0.5;
  SaturatedCoverageOracle oracle(sim, cfg);
  // Each row sum = 2, cap = 1; first pick covers both rows with 1 each.
  EXPECT_DOUBLE_EQ(oracle.add(0), 2.0);
  // Second pick adds nothing: both rows already at cap.
  EXPECT_DOUBLE_EQ(oracle.gain(1), 0.0);
  EXPECT_DOUBLE_EQ(oracle.value(), oracle.max_value());
}

TEST(SaturatedCoverage, ReaddIsFree) {
  const auto sim = random_similarity(5, 3);
  SaturatedCoverageOracle oracle(sim, {});
  oracle.add(2);
  EXPECT_DOUBLE_EQ(oracle.gain(2), 0.0);
  EXPECT_DOUBLE_EQ(oracle.add(2), 0.0);
}

TEST(SaturatedCoverage, DiversityRewardFavorsNewClusters) {
  // Three near-identical items; diversity puts 0,1 in cluster 0 and 2 in
  // cluster 1. After picking 0, item 2 (new cluster) must beat item 1.
  std::vector<double> values(9, 0.9);
  for (int i = 0; i < 3; ++i) values[i * 3 + i] = 1.0;
  const auto sim =
      std::make_shared<const SimilarityMatrix>(3, std::move(values));
  SaturatedCoverageConfig cfg;
  cfg.gamma = 1.0;
  cfg.cluster_of = {0, 0, 1};
  cfg.lambda = 5.0;
  SaturatedCoverageOracle oracle(sim, cfg);
  oracle.add(0);
  EXPECT_GT(oracle.gain(2), oracle.gain(1));
}

TEST(SaturatedCoverage, DiversityTermMatchesSqrtFormula) {
  const auto sim = random_similarity(4, 5);
  SaturatedCoverageConfig with_diversity;
  with_diversity.gamma = 1.0;
  with_diversity.cluster_of = {0, 0, 1, 1};
  with_diversity.lambda = 2.0;
  SaturatedCoverageOracle a(sim, with_diversity);

  SaturatedCoverageConfig coverage_only;
  coverage_only.gamma = 1.0;
  SaturatedCoverageOracle b(sim, coverage_only);

  // gain difference on an empty set = lambda * sqrt(r_x).
  const double rx = sim->row_sum(1) / 4.0;
  EXPECT_NEAR(a.gain(1) - b.gain(1), 2.0 * std::sqrt(rx), 1e-12);
}

TEST(SaturatedCoverage, ValueBoundedByMaxValue) {
  const auto sim = random_similarity(10, 7);
  SaturatedCoverageConfig cfg;
  cfg.gamma = 0.3;
  cfg.cluster_of = std::vector<std::uint32_t>{0, 1, 2, 0, 1, 2, 0, 1, 2, 0};
  cfg.lambda = 1.0;
  SaturatedCoverageOracle oracle(sim, cfg);
  for (ElementId x = 0; x < 10; ++x) oracle.add(x);
  // Selecting everything hits both caps exactly: C_i(V) >= gamma*C_i(V)
  // saturates every coverage term, and every cluster reaches its full
  // relevance mass.
  EXPECT_NEAR(oracle.value(), oracle.max_value(), 1e-9);
}

class SaturatedCoverageProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SaturatedCoverageProperty, IsMonotoneSubmodular) {
  const auto sim = random_similarity(14, GetParam());
  SaturatedCoverageConfig cfg;
  cfg.gamma = 0.4;
  cfg.cluster_of = std::vector<std::uint32_t>(14);
  util::Rng rng(GetParam());
  for (auto& c : cfg.cluster_of) {
    c = static_cast<std::uint32_t>(rng.next_below(3));
  }
  cfg.lambda = 0.7;
  const SaturatedCoverageOracle proto(sim, cfg);
  EXPECT_EQ(testing::count_submodularity_violations(proto, GetParam(), 40,
                                                    1e-9),
            0);
  EXPECT_EQ(testing::count_monotonicity_violations(proto, GetParam(), 20,
                                                   1e-9),
            0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SaturatedCoverageProperty,
                         ::testing::Values(51, 52, 53, 54, 55, 56));

TEST(SaturatedCoverage, GreedySummaryBeatsRandom) {
  const auto sim = random_similarity(60, 9);
  SaturatedCoverageConfig cfg;
  cfg.gamma = 0.2;
  const SaturatedCoverageOracle proto(sim, cfg);
  auto g = proto.clone();
  const double greedy_value =
      lazy_greedy(*g, testing::iota_ids(60), 6, {true}).gained;
  util::Rng rng(9);
  auto r = proto.clone();
  const double random_value =
      random_subset(*r, testing::iota_ids(60), 6, rng).gained;
  EXPECT_GT(greedy_value, random_value);
}

}  // namespace
}  // namespace bds
