// Edge cases and cross-module seams that the per-module suites don't cover:
// degenerate sizes, saturated instances, boundary parameters, and paths
// only reachable through unusual configurations.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/baselines.h"
#include "core/bicriteria.h"
#include "core/greedy.h"
#include "core/upper_bound.h"
#include "objectives/coverage.h"
#include "objectives/exemplar.h"
#include "test_support.h"
#include "util/table.h"

namespace bds {
namespace {

using testing::iota_ids;
using testing::random_set_system;

// --------------------------------------------------------- tiny grounds

TEST(EdgeCases, SingleItemGroundSet) {
  const auto sys = std::make_shared<const SetSystem>(
      std::vector<std::vector<std::uint32_t>>{{0, 1}}, 2);
  const CoverageOracle proto(sys);

  BicriteriaConfig cfg;
  cfg.k = 1;
  const auto result = bicriteria_greedy(proto, iota_ids(1), cfg);
  EXPECT_EQ(result.solution, (std::vector<ElementId>{0}));
  EXPECT_DOUBLE_EQ(result.value, 2.0);
}

TEST(EdgeCases, MoreMachinesThanItems) {
  const auto sys = random_set_system(5, 10, 0.4, 1);
  const CoverageOracle proto(sys);
  BicriteriaConfig cfg;
  cfg.k = 2;
  cfg.machines = 50;  // most machines get empty shards
  const auto result = bicriteria_greedy(proto, iota_ids(5), cfg);
  EXPECT_FALSE(result.solution.empty());
  EXPECT_LE(result.stats.rounds[0].machines_used, 5u);
}

TEST(EdgeCases, KLargerThanGroundSet) {
  const auto sys = random_set_system(4, 10, 0.4, 2);
  const CoverageOracle proto(sys);
  const auto central = centralized_greedy(proto, iota_ids(4), 100);
  EXPECT_LE(central.solution.size(), 4u);

  BicriteriaConfig cfg;
  cfg.k = 100;
  const auto result = bicriteria_greedy(proto, iota_ids(4), cfg);
  EXPECT_LE(result.solution.size(), 4u);
}

TEST(EdgeCases, AllSetsEmptyEverywhereGivesEmptySolution) {
  const auto sys = std::make_shared<const SetSystem>(
      std::vector<std::vector<std::uint32_t>>(10), 5);
  const CoverageOracle proto(sys);
  BicriteriaConfig cfg;
  cfg.k = 3;
  const auto result = bicriteria_greedy(proto, iota_ids(10), cfg);
  EXPECT_TRUE(result.solution.empty());  // stop_when_no_gain trims all
  EXPECT_DOUBLE_EQ(result.value, 0.0);
}

TEST(EdgeCases, FaithfulModeKeepsZeroGainPicks) {
  const auto sys = std::make_shared<const SetSystem>(
      std::vector<std::vector<std::uint32_t>>{{0}, {}, {}, {}}, 1);
  const CoverageOracle proto(sys);
  BicriteriaConfig cfg;
  cfg.k = 3;
  cfg.stop_when_no_gain = false;  // Algorithm 1 verbatim
  const auto result = bicriteria_greedy(proto, iota_ids(4), cfg);
  EXPECT_EQ(result.solution.size(), 3u);
  EXPECT_DOUBLE_EQ(result.value, 1.0);
}

// ------------------------------------------------------- plan boundaries

TEST(EdgeCases, EpsilonNearOneGivesSmallAlpha) {
  BicriteriaConfig cfg;
  cfg.mode = BicriteriaMode::kTheory;
  cfg.k = 5;
  cfg.epsilon = 0.99;
  const auto plan = plan_bicriteria(cfg, 1'000);
  EXPECT_NEAR(plan.alpha, 3.0 / 0.99, 1e-12);
  EXPECT_GE(plan.machines, 1u);
  EXPECT_GE(plan.central_budget, cfg.k);
}

TEST(EdgeCases, TinyEpsilonStaysFinite) {
  BicriteriaConfig cfg;
  cfg.mode = BicriteriaMode::kHybrid;
  cfg.k = 2;
  cfg.epsilon = 1e-6;
  cfg.rounds = 3;
  const auto plan = plan_bicriteria(cfg, 1'000'000);
  EXPECT_NEAR(plan.alpha, 3.0 * 100.0, 1e-9);  // 3/1e-2
  EXPECT_LT(plan.output_bound, 10'000u);
}

TEST(EdgeCases, PracticalModeOneItemPerRound) {
  const auto sys = random_set_system(100, 80, 0.05, 3);
  const CoverageOracle proto(sys);
  BicriteriaConfig cfg;
  cfg.k = 4;
  cfg.output_items = 4;
  cfg.rounds = 4;  // k' = 1 per round
  const auto result = bicriteria_greedy(proto, iota_ids(100), cfg);
  EXPECT_EQ(result.stats.num_rounds(), 4u);
  for (const auto& trace : result.rounds) {
    EXPECT_LE(trace.items_added, 1u);
  }
}

TEST(EdgeCases, MultiplicityClampedToMachines) {
  BicriteriaConfig cfg;
  cfg.mode = BicriteriaMode::kMultiplicity;
  cfg.k = 3;
  cfg.epsilon = 0.05;  // alpha = 60 -> C = 246, way above m
  cfg.machines = 8;
  const auto plan = plan_bicriteria(cfg, 500);
  EXPECT_EQ(plan.multiplicity, 8u);
}

// ----------------------------------------------------------- upper bound

TEST(EdgeCases, UpperBoundOnExemplarObjective) {
  util::Rng rng(7);
  std::vector<float> data(40 * 2);
  for (float& v : data) v = static_cast<float>(rng.next_double(-1.0, 1.0));
  const auto pts = std::make_shared<const PointSet>(40, 2, std::move(data));
  const ExemplarOracle proto(pts, 8.0);

  auto oracle = proto.clone();
  const auto picks = lazy_greedy(*oracle, iota_ids(40), 4, {true});
  const double ub = solution_upper_bound(proto, picks.picks, iota_ids(40), 4);
  EXPECT_GE(ub + 1e-9, oracle->value());
  EXPECT_LE(ub, proto.max_value() + 1e-9);
  // Greedy-4 on 40 points should already be within 1-1/e of the bound.
  EXPECT_GE(oracle->value(), (1.0 - 1.0 / std::exp(1.0)) * ub * 0.9);
}

TEST(EdgeCases, UpperBoundWithEmptyGround) {
  const auto sys = random_set_system(5, 10, 0.3, 8);
  const CoverageOracle proto(sys);
  // No candidates to scan: bound = f(solution) vs trivial cap.
  const std::vector<ElementId> solution{0, 1};
  const double ub = solution_upper_bound(proto, solution, {}, 3);
  EXPECT_NEAR(ub, evaluate_set(proto, solution), 1e-12);
}

// -------------------------------------------------------------- baselines

TEST(EdgeCases, OneRoundWithSingleMachineEqualsCentralized) {
  const auto sys = random_set_system(60, 100, 0.08, 9);
  const CoverageOracle proto(sys);
  OneRoundConfig cfg;
  cfg.k = 6;
  cfg.machines = 1;
  cfg.runtime.seed = 2;
  const auto dist_result = rand_greedi(proto, iota_ids(60), cfg);
  const auto central = centralized_greedy(proto, iota_ids(60), 6);
  EXPECT_DOUBLE_EQ(dist_result.value, central.value);
}

TEST(EdgeCases, NaiveDistributedWithHugeEpsilonIsOneRound) {
  const auto sys = random_set_system(50, 80, 0.1, 10);
  const CoverageOracle proto(sys);
  NaiveDistributedConfig cfg;
  cfg.k = 5;
  cfg.epsilon = 0.9;  // ceil(ln(1/0.9)) = 1
  const auto result = naive_distributed_greedy(proto, iota_ids(50), cfg);
  EXPECT_EQ(result.stats.num_rounds(), 1u);
}

TEST(EdgeCases, PseudoGreedyRespectsExplicitBudgetFactor) {
  const auto sys = random_set_system(80, 120, 0.06, 11);
  const CoverageOracle proto(sys);
  OneRoundConfig cfg;
  cfg.k = 4;
  cfg.machines = 4;
  cfg.budget_factor = 2.0;  // explicit overrides the default 4
  cfg.stop_when_no_gain = false;
  const auto result = pseudo_greedy(proto, iota_ids(80), cfg);
  EXPECT_EQ(result.stats.rounds[0].elements_gathered, 4u * 2u * 4u);
}

// ------------------------------------------------------------- formatting

TEST(EdgeCases, TableHandlesEmptyAndUnicodeHeaders) {
  util::Table table({"α", ""});
  table.add_row({"x", "1"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("α"), std::string::npos);
  EXPECT_NE(out.find('x'), std::string::npos);
}

TEST(EdgeCases, PercentFormattingExtremes) {
  EXPECT_EQ(util::Table::fmt_pct(0.0), "0.0%");
  EXPECT_EQ(util::Table::fmt_pct(-0.051), "-5.1%");
  EXPECT_EQ(util::Table::fmt_pct(2.5, 0), "250%");
}

}  // namespace
}  // namespace bds
