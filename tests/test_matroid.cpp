#include "core/matroid.h"

#include <gtest/gtest.h>

#include <functional>
#include <set>

#include "core/greedy.h"
#include "objectives/coverage.h"
#include "test_support.h"

namespace bds {
namespace {

using testing::iota_ids;
using testing::random_set_system;

// Exact optimum under an arbitrary MatroidConstraint by recursive
// enumeration (test-scale instances only).
double brute_force_matroid(const SubmodularOracle& proto,
                           std::span<const ElementId> ground,
                           const MatroidConstraint& constraint) {
  double best = 0.0;
  std::vector<ElementId> chosen;
  const std::function<void(std::size_t, const MatroidConstraint&)> recurse =
      [&](std::size_t start, const MatroidConstraint& state) {
        best = std::max(best, evaluate_set(proto, chosen));
        for (std::size_t i = start; i < ground.size(); ++i) {
          if (!state.feasible(ground[i])) continue;
          const auto next = state.clone();
          next->add(ground[i]);
          chosen.push_back(ground[i]);
          recurse(i + 1, *next);
          chosen.pop_back();
        }
      };
  recurse(0, constraint);
  return best;
}

// ----------------------------------------------------------- constraints

TEST(CardinalityConstraint, Basics) {
  CardinalityConstraint c(2);
  EXPECT_EQ(c.rank(), 2u);
  EXPECT_TRUE(c.feasible(5));
  c.add(5);
  EXPECT_FALSE(c.feasible(5)) << "no element twice";
  EXPECT_TRUE(c.feasible(6));
  c.add(6);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_FALSE(c.feasible(7)) << "rank reached";
  EXPECT_THROW(c.add(7), std::logic_error);
}

TEST(CardinalityConstraint, CloneIsIndependent) {
  CardinalityConstraint c(3);
  c.add(1);
  const auto copy = c.clone();
  copy->add(2);
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(copy->size(), 2u);
  EXPECT_FALSE(copy->feasible(1));
}

TEST(PartitionMatroid, CapsPerGroup) {
  // Elements 0,1,2 in group 0 (cap 2); 3,4 in group 1 (cap 1).
  PartitionMatroid m({0, 0, 0, 1, 1}, {2, 1});
  EXPECT_EQ(m.rank(), 3u);
  m.add(0);
  m.add(1);
  EXPECT_FALSE(m.feasible(2)) << "group 0 full";
  EXPECT_TRUE(m.feasible(3));
  m.add(3);
  EXPECT_FALSE(m.feasible(4)) << "group 1 full";
  EXPECT_EQ(m.size(), 3u);
  EXPECT_THROW(m.add(4), std::logic_error);
  EXPECT_EQ(m.group_of(4), 1u);
}

TEST(PartitionMatroid, RejectsBadGroups) {
  EXPECT_THROW(PartitionMatroid({0, 3}, {1, 1}), std::invalid_argument);
}

TEST(PartitionMatroid, OutOfRangeElementInfeasible) {
  PartitionMatroid m({0, 0}, {1});
  EXPECT_FALSE(m.feasible(5));
}

TEST(LaminarBound, GlobalCapOnTopOfGroups) {
  PartitionMatroid inner({0, 0, 1, 1, 2, 2}, {2, 2, 2});
  LaminarBound bound(std::move(inner), 3);
  EXPECT_EQ(bound.rank(), 3u);
  bound.add(0);
  bound.add(2);
  bound.add(4);
  EXPECT_FALSE(bound.feasible(1)) << "global cap reached before group cap";
  EXPECT_THROW(bound.add(1), std::logic_error);
}

// ------------------------------------------------------------ greedy

TEST(GreedyMatroid, RespectsGroupsOnHandInstance) {
  // Two groups; the two best sets are both in group 0, cap 1 forces the
  // second pick into group 1.
  const auto sys = std::make_shared<const SetSystem>(
      std::vector<std::vector<std::uint32_t>>{
          {0, 1, 2, 3}, {0, 1, 2}, {4}, {5, 6}},
      7);
  CoverageOracle oracle(sys);
  PartitionMatroid matroid({0, 0, 1, 1}, {1, 1});
  const auto result = greedy_matroid(oracle, iota_ids(4), matroid);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result.picks[0], 0u);
  EXPECT_EQ(result.picks[1], 3u);  // best feasible from group 1
  EXPECT_DOUBLE_EQ(result.gained, 6.0);
}

class LazyMatroidEquivalence
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LazyMatroidEquivalence, LazyMatchesNaive) {
  const auto sys = random_set_system(30, 60, 0.15, GetParam());
  util::Rng rng(GetParam());
  std::vector<std::uint32_t> groups(30);
  for (auto& g : groups) g = static_cast<std::uint32_t>(rng.next_below(4));

  const CoverageOracle proto(sys);
  auto o1 = proto.clone();
  PartitionMatroid m1(groups, {2, 2, 2, 2});
  const auto naive = greedy_matroid(*o1, iota_ids(30), m1);

  auto o2 = proto.clone();
  PartitionMatroid m2(groups, {2, 2, 2, 2});
  const auto lazy = lazy_greedy_matroid(*o2, iota_ids(30), m2);

  EXPECT_EQ(lazy.picks, naive.picks);
  EXPECT_EQ(lazy.gains, naive.gains);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LazyMatroidEquivalence,
                         ::testing::Range<std::uint64_t>(1, 11));

class MatroidGreedyApprox : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatroidGreedyApprox, AchievesHalfOfBruteOptimum) {
  const auto sys = random_set_system(10, 25, 0.25, GetParam() + 100);
  util::Rng rng(GetParam());
  std::vector<std::uint32_t> groups(10);
  for (auto& g : groups) g = static_cast<std::uint32_t>(rng.next_below(3));
  const PartitionMatroid matroid(groups, {1, 2, 1});

  const CoverageOracle proto(sys);
  const double opt = brute_force_matroid(proto, iota_ids(10), matroid);

  auto oracle = proto.clone();
  auto state = matroid.clone();
  const auto result = greedy_matroid(*oracle, iota_ids(10), *state);
  EXPECT_GE(result.gained, 0.5 * opt - 1e-9);
  EXPECT_LE(result.gained, opt + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatroidGreedyApprox,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(GreedyMatroid, CardinalityConstraintMatchesPlainGreedy) {
  const auto sys = random_set_system(40, 80, 0.1, 55);
  const CoverageOracle proto(sys);

  auto o1 = proto.clone();
  CardinalityConstraint c(8);
  const auto constrained = greedy_matroid(*o1, iota_ids(40), c);

  auto o2 = proto.clone();
  const auto plain = greedy(*o2, iota_ids(40), 8, {true});
  EXPECT_EQ(constrained.picks, plain.picks);
}

// -------------------------------------------------------- distributed

TEST(RandGreediMatroid, SolutionIsIndependentAndValued) {
  const auto sys = random_set_system(150, 200, 0.05, 77);
  const CoverageOracle proto(sys);
  util::Rng rng(77);
  std::vector<std::uint32_t> groups(150);
  for (auto& g : groups) g = static_cast<std::uint32_t>(rng.next_below(5));
  const PartitionMatroid matroid(groups, {2, 2, 2, 2, 2});

  MatroidDistributedConfig cfg;
  cfg.machines = 6;
  cfg.runtime.seed = 3;
  const auto result = rand_greedi_matroid(proto, iota_ids(150), matroid, cfg);

  EXPECT_LE(result.solution.size(), matroid.rank());
  // Re-verify independence by replaying into a fresh constraint.
  auto check = matroid.clone();
  for (const ElementId x : result.solution) {
    ASSERT_TRUE(check->feasible(x));
    check->add(x);
  }
  EXPECT_NEAR(result.value, evaluate_set(proto, result.solution), 1e-9);
  EXPECT_EQ(result.stats.num_rounds(), 1u);
}

TEST(RandGreediMatroid, CloseToCentralizedConstrainedGreedy) {
  const auto sys = random_set_system(200, 300, 0.04, 81);
  const CoverageOracle proto(sys);
  util::Rng rng(81);
  std::vector<std::uint32_t> groups(200);
  for (auto& g : groups) g = static_cast<std::uint32_t>(rng.next_below(4));
  const PartitionMatroid matroid(groups, {3, 3, 3, 3});

  auto central_oracle = proto.clone();
  auto central_state = matroid.clone();
  const auto central =
      lazy_greedy_matroid(*central_oracle, iota_ids(200), *central_state);

  MatroidDistributedConfig cfg;
  cfg.runtime.seed = 5;
  const auto dist_result =
      rand_greedi_matroid(proto, iota_ids(200), matroid, cfg);
  EXPECT_GE(dist_result.value, 0.8 * central.gained);
}

TEST(RandGreediMatroid, DeterministicBySeed) {
  const auto sys = random_set_system(100, 150, 0.06, 85);
  const CoverageOracle proto(sys);
  const CardinalityConstraint constraint(6);
  MatroidDistributedConfig cfg;
  cfg.runtime.seed = 9;
  const auto a = rand_greedi_matroid(proto, iota_ids(100), constraint, cfg);
  const auto b = rand_greedi_matroid(proto, iota_ids(100), constraint, cfg);
  EXPECT_EQ(a.solution, b.solution);
}

}  // namespace
}  // namespace bds
