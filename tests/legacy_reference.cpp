// Frozen pre-engine implementations — see legacy_reference.h. Copied from
// src/core/{bicriteria,baselines,matroid}.cpp as of the commit that
// introduced dist/engine.h, with only namespace/visibility edits.
#include "legacy_reference.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/greedy.h"
#include "core/machine_runner.h"
#include "dist/cluster.h"
#include "dist/partitioner.h"
#include "util/rng.h"
#include "util/timer.h"

namespace bds::legacy {

namespace {

std::size_t default_machines(std::size_t ground_size, std::size_t k) {
  if (ground_size == 0) return 1;
  const double ratio = static_cast<double>(ground_size) /
                       static_cast<double>(std::max<std::size_t>(1, k));
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(std::sqrt(ratio))));
}

// Shared skeleton for the one-round greedy-of-greedies algorithms.
DistributedResult one_round_merge(const SubmodularOracle& proto,
                                  std::span<const ElementId> ground,
                                  const OneRoundConfig& config,
                                  bool random_partition) {
  if (config.k == 0) {
    throw std::invalid_argument("one-round baseline: k must be positive");
  }
  const std::size_t machines = config.machines != 0
                                   ? config.machines
                                   : default_machines(ground.size(), config.k);
  const auto machine_budget = static_cast<std::size_t>(std::ceil(
      std::max(1.0, config.budget_factor) * static_cast<double>(config.k)));
  const RuntimeOptions runtime = config.runtime;

  auto central = detail::make_central_oracle(proto, runtime.incremental_gains);
  dist::Cluster cluster(machines, runtime.cluster_options());
  util::Rng rng(util::mix64(runtime.seed));

  const dist::Partition partition =
      random_partition ? dist::partition_uniform(ground, machines, rng)
                       : dist::partition_round_robin(ground, machines);

  detail::MachineWorkerConfig worker_config;
  worker_config.selector = config.selector;
  worker_config.stochastic_c = config.stochastic_c;
  worker_config.stop_when_no_gain = config.stop_when_no_gain;
  worker_config.budget = machine_budget;
  worker_config.seed = runtime.seed;
  worker_config.round = 0;
  worker_config.central = central.get();
  worker_config.factory = config.machine_oracle_factory
                              ? &config.machine_oracle_factory
                              : nullptr;
  worker_config.worker_oracle = runtime.worker_oracle;

  const auto reports =
      cluster.run_round(partition, detail::make_machine_worker(worker_config));

  util::Timer timer;
  std::vector<ElementId> pool;
  for (const auto& report : reports) {
    pool.insert(pool.end(), report.summary().begin(), report.summary().end());
  }
  GreedyOptions central_options{config.stop_when_no_gain};
  if (runtime.parallel_central) central_options.batch.pool = &cluster.pool();
  const GreedyResult filtered =
      lazy_greedy(*central, pool, config.k, central_options);
  cluster.record_central_stage(central->evals(), timer.elapsed_seconds(),
                               filtered.picks.size());

  double best_machine_value = -1.0;
  std::span<const ElementId> best_machine;
  for (const auto& report : reports) {
    const std::span<const ElementId> prefix(
        report.summary().data(),
        std::min(report.summary().size(), config.k));
    const double v = evaluate_set(proto, prefix);
    if (v > best_machine_value) {
      best_machine_value = v;
      best_machine = prefix;
    }
  }

  DistributedResult result;
  if (best_machine_value > central->value()) {
    result.solution.assign(best_machine.begin(), best_machine.end());
    result.value = best_machine_value;
  } else {
    result.solution = filtered.picks;
    result.value = central->value();
  }

  RoundTrace trace;
  trace.round = 0;
  trace.machines = machines;
  trace.machine_budget = machine_budget;
  trace.central_budget = config.k;
  trace.items_added = result.solution.size();
  trace.value_after = result.value;
  result.rounds.push_back(trace);
  result.stats = cluster.stats();
  return result;
}

}  // namespace

DistributedResult bicriteria_greedy(const SubmodularOracle& proto,
                                    std::span<const ElementId> ground,
                                    const BicriteriaConfig& config) {
  const BicriteriaPlan plan = plan_bicriteria(config, ground.size());
  const RuntimeOptions runtime = config.runtime;

  auto central = detail::make_central_oracle(proto, runtime.incremental_gains);
  dist::Cluster cluster(plan.machines, runtime.cluster_options());
  util::Rng scatter_rng(util::mix64(runtime.seed));

  DistributedResult result;
  GreedyOptions central_options{config.stop_when_no_gain};
  if (runtime.parallel_central) {
    central_options.batch.pool = &cluster.pool();
  }

  for (std::size_t round = 0; round < plan.rounds; ++round) {
    std::size_t machine_budget = plan.machine_budget;
    std::size_t central_budget = plan.central_budget;
    if (config.mode == BicriteriaMode::kPractical &&
        round + 1 == plan.rounds) {
      const std::size_t out =
          config.output_items == 0 ? config.k : config.output_items;
      const std::size_t rem = out % plan.rounds;
      machine_budget += rem;
      central_budget += rem;
    }

    const dist::Partition partition = dist::partition_multiplicity(
        ground, plan.machines, plan.multiplicity, scatter_rng);

    detail::MachineWorkerConfig worker_config;
    worker_config.selector = config.selector;
    worker_config.stochastic_c = config.stochastic_c;
    worker_config.stop_when_no_gain = config.stop_when_no_gain;
    worker_config.budget = machine_budget;
    worker_config.seed = runtime.seed;
    worker_config.round = round;
    worker_config.central = central.get();
    worker_config.factory = config.machine_oracle_factory
                                ? &config.machine_oracle_factory
                                : nullptr;
    worker_config.worker_oracle = runtime.worker_oracle;

    const std::vector<dist::MachineReport> reports =
        cluster.run_round(partition,
                          detail::make_machine_worker(worker_config));

    util::Timer central_timer;
    const std::uint64_t evals_before = central->evals();
    std::size_t added = 0;

    if (config.mode == BicriteriaMode::kHybrid) {
      for (const ElementId x : reports.front().summary()) {
        const double g = central->add(x);
        if (g > 0.0 || !config.stop_when_no_gain) {
          result.solution.push_back(x);
          ++added;
        }
      }
      std::vector<ElementId> pool;
      for (std::size_t i = 1; i < reports.size(); ++i) {
        pool.insert(pool.end(), reports[i].summary().begin(),
                    reports[i].summary().end());
      }
      const GreedyResult filtered =
          lazy_greedy(*central, pool, central_budget, central_options);
      result.solution.insert(result.solution.end(), filtered.picks.begin(),
                             filtered.picks.end());
      added += filtered.picks.size();
    } else {
      std::vector<ElementId> pool;
      for (const auto& report : reports) {
        pool.insert(pool.end(), report.summary().begin(),
                    report.summary().end());
      }
      const GreedyResult filtered =
          lazy_greedy(*central, pool, central_budget, central_options);
      result.solution.insert(result.solution.end(), filtered.picks.begin(),
                             filtered.picks.end());
      added += filtered.picks.size();
    }

    cluster.record_central_stage(central->evals() - evals_before,
                                 central_timer.elapsed_seconds(), added);

    RoundTrace trace;
    trace.round = round;
    trace.alpha = plan.alpha;
    trace.machines = plan.machines;
    trace.machine_budget = machine_budget;
    trace.central_budget = central_budget;
    trace.items_added = added;
    trace.value_after = central->value();
    result.rounds.push_back(trace);
  }

  result.value = central->value();
  result.stats = cluster.stats();
  return result;
}

DistributedResult greedi(const SubmodularOracle& proto,
                         std::span<const ElementId> ground,
                         const OneRoundConfig& config) {
  return one_round_merge(proto, ground, config, /*random_partition=*/false);
}

DistributedResult rand_greedi(const SubmodularOracle& proto,
                              std::span<const ElementId> ground,
                              const OneRoundConfig& config) {
  return one_round_merge(proto, ground, config, /*random_partition=*/true);
}

DistributedResult pseudo_greedy(const SubmodularOracle& proto,
                                std::span<const ElementId> ground,
                                OneRoundConfig config) {
  if (config.budget_factor <= 1.0) config.budget_factor = 4.0;
  return one_round_merge(proto, ground, config, /*random_partition=*/true);
}

DistributedResult naive_distributed_greedy(
    const SubmodularOracle& proto, std::span<const ElementId> ground,
    const NaiveDistributedConfig& config) {
  if (config.k == 0) {
    throw std::invalid_argument("naive distributed: k must be positive");
  }
  if (!(config.epsilon > 0.0 && config.epsilon < 1.0)) {
    throw std::invalid_argument("naive distributed: epsilon in (0,1)");
  }
  const auto rounds = static_cast<std::size_t>(
      std::max(1.0, std::ceil(std::log(1.0 / config.epsilon))));
  const std::size_t machines = config.machines != 0
                                   ? config.machines
                                   : default_machines(ground.size(), config.k);

  const RuntimeOptions runtime = config.runtime;
  auto central = detail::make_central_oracle(proto, runtime.incremental_gains);
  dist::Cluster cluster(machines, runtime.cluster_options());
  util::Rng rng(util::mix64(runtime.seed));

  GreedyOptions central_options{config.stop_when_no_gain};
  if (runtime.parallel_central) central_options.batch.pool = &cluster.pool();

  DistributedResult result;
  for (std::size_t round = 0; round < rounds; ++round) {
    const dist::Partition partition =
        dist::partition_uniform(ground, machines, rng);

    detail::MachineWorkerConfig worker_config;
    worker_config.selector = config.selector;
    worker_config.stochastic_c = config.stochastic_c;
    worker_config.stop_when_no_gain = config.stop_when_no_gain;
    worker_config.budget = config.k;
    worker_config.seed = runtime.seed;
    worker_config.round = round;
    worker_config.central = central.get();
    worker_config.factory = config.machine_oracle_factory
                                ? &config.machine_oracle_factory
                                : nullptr;
    worker_config.worker_oracle = runtime.worker_oracle;

    const auto reports = cluster.run_round(
        partition, detail::make_machine_worker(worker_config));

    util::Timer timer;
    const std::uint64_t evals_before = central->evals();
    std::vector<ElementId> pool;
    for (const auto& report : reports) {
      pool.insert(pool.end(), report.summary().begin(),
                  report.summary().end());
    }
    const GreedyResult filtered =
        lazy_greedy(*central, pool, config.k, central_options);
    cluster.record_central_stage(central->evals() - evals_before,
                                 timer.elapsed_seconds(),
                                 filtered.picks.size());
    result.solution.insert(result.solution.end(), filtered.picks.begin(),
                           filtered.picks.end());

    RoundTrace trace;
    trace.round = round;
    trace.machines = machines;
    trace.machine_budget = config.k;
    trace.central_budget = config.k;
    trace.items_added = filtered.picks.size();
    trace.value_after = central->value();
    result.rounds.push_back(trace);
  }

  result.value = central->value();
  result.stats = cluster.stats();
  return result;
}

DistributedResult parallel_alg(const SubmodularOracle& proto,
                               std::span<const ElementId> ground,
                               const ParallelAlgConfig& config) {
  if (config.k == 0) {
    throw std::invalid_argument("parallel alg: k must be positive");
  }
  if (!(config.epsilon > 0.0 && config.epsilon < 1.0)) {
    throw std::invalid_argument("parallel alg: epsilon in (0,1)");
  }
  const auto rounds = static_cast<std::size_t>(
      std::max(1.0, std::ceil(1.0 / config.epsilon)));
  const std::size_t machines = config.machines != 0
                                   ? config.machines
                                   : default_machines(ground.size(), config.k);

  const RuntimeOptions runtime = config.runtime;
  auto central = detail::make_central_oracle(proto, runtime.incremental_gains);
  dist::Cluster cluster(machines, runtime.cluster_options());
  util::Rng rng(util::mix64(runtime.seed));

  DistributedResult result;
  std::vector<ElementId> pool;
  std::vector<ElementId> best_machine;
  double best_machine_value = -1.0;

  for (std::size_t round = 0; round < rounds; ++round) {
    dist::Partition partition =
        dist::partition_uniform(ground, machines, rng);
    for (auto& shard : partition) {
      shard.insert(shard.end(), pool.begin(), pool.end());
    }

    detail::MachineWorkerConfig worker_config;
    worker_config.selector = config.selector;
    worker_config.stochastic_c = config.stochastic_c;
    worker_config.stop_when_no_gain = config.stop_when_no_gain;
    worker_config.budget = config.k;
    worker_config.seed = runtime.seed;
    worker_config.round = round;
    worker_config.central = central.get();
    worker_config.factory = config.machine_oracle_factory
                                ? &config.machine_oracle_factory
                                : nullptr;
    worker_config.worker_oracle = runtime.worker_oracle;

    const auto reports = cluster.run_round(
        partition, detail::make_machine_worker(worker_config));

    util::Timer timer;
    std::size_t gathered = 0;
    for (const auto& report : reports) {
      pool.insert(pool.end(), report.summary().begin(),
                  report.summary().end());
      gathered += report.summary().size();
      const double v = evaluate_set(proto, report.summary());
      if (v > best_machine_value) {
        best_machine_value = v;
        best_machine = report.summary();
      }
    }
    pool = unique_candidates(pool);
    cluster.record_central_stage(0, timer.elapsed_seconds(), 0);

    RoundTrace trace;
    trace.round = round;
    trace.machines = machines;
    trace.machine_budget = config.k;
    trace.central_budget = 0;
    trace.items_added = gathered;
    trace.value_after = best_machine_value;
    result.rounds.push_back(trace);
  }

  util::Timer final_timer;
  GreedyOptions final_options{config.stop_when_no_gain};
  if (runtime.parallel_central) final_options.batch.pool = &cluster.pool();
  const GreedyResult filtered =
      lazy_greedy(*central, pool, config.k, final_options);
  cluster.mutable_stats().rounds.back().central_evals = central->evals();
  cluster.mutable_stats().rounds.back().central_seconds +=
      final_timer.elapsed_seconds();
  cluster.mutable_stats().rounds.back().central_selected =
      filtered.picks.size();

  if (best_machine_value > central->value()) {
    result.solution = best_machine;
    result.value = best_machine_value;
  } else {
    result.solution = filtered.picks;
    result.value = central->value();
  }
  result.rounds.back().central_budget = config.k;
  result.rounds.back().value_after = result.value;
  result.stats = cluster.stats();
  return result;
}

DistributedResult greedy_scaling(const SubmodularOracle& proto,
                                 std::span<const ElementId> ground,
                                 const GreedyScalingConfig& config) {
  if (config.k == 0) {
    throw std::invalid_argument("greedy scaling: k must be positive");
  }
  if (!(config.epsilon > 0.0 && config.epsilon < 1.0)) {
    throw std::invalid_argument("greedy scaling: epsilon in (0,1)");
  }
  const std::size_t machines = config.machines != 0
                                   ? config.machines
                                   : default_machines(ground.size(), config.k);

  const RuntimeOptions runtime = config.runtime;
  auto central = detail::make_central_oracle(proto, runtime.incremental_gains);
  dist::Cluster cluster(machines, runtime.cluster_options());
  util::Rng rng(util::mix64(runtime.seed));

  DistributedResult result;
  if (ground.empty()) {
    result.stats = cluster.stats();
    return result;
  }

  double delta = 0.0;
  {
    auto probe = proto.clone();
    for (const ElementId x : ground) delta = std::max(delta, probe->gain(x));
  }
  if (delta <= 0.0) {
    result.stats = cluster.stats();
    return result;
  }

  const double floor_tau =
      config.epsilon * delta / static_cast<double>(config.k);
  double tau = delta;
  std::size_t round = 0;

  while (result.solution.size() < config.k && tau >= floor_tau) {
    const std::size_t remaining = config.k - result.solution.size();
    const dist::Partition partition =
        dist::partition_uniform(ground, machines, rng);

    const double threshold = tau;
    const SubmodularOracle* central_ptr = central.get();
    const bool use_view =
        runtime.worker_oracle == WorkerOracleMode::kShardView;
    const auto worker = [threshold, remaining, central_ptr, use_view](
                            std::size_t,
                            std::span<const ElementId> shard)
        -> dist::WorkerOutput {
      auto oracle =
          use_view ? central_ptr->shard_view(shard) : central_ptr->clone();
      dist::WorkerOutput output;
      for (const ElementId x : shard) {
        if (output.summary.size() >= remaining) break;
        if (oracle->gain(x) >= threshold) {
          oracle->add(x);
          output.summary.push_back(x);
        }
      }
      output.oracle_evals = oracle->evals();
      output.state_bytes = oracle->state_bytes();
      return output;
    };
    const auto reports = cluster.run_round(partition, worker);

    util::Timer timer;
    const std::uint64_t evals_before = central->evals();
    std::size_t added = 0;
    for (const auto& report : reports) {
      for (const ElementId x : report.summary()) {
        if (result.solution.size() >= config.k) break;
        if (central->gain(x) >= threshold) {
          central->add(x);
          result.solution.push_back(x);
          ++added;
        }
      }
    }
    cluster.record_central_stage(central->evals() - evals_before,
                                 timer.elapsed_seconds(), added);

    RoundTrace trace;
    trace.round = round++;
    trace.machines = machines;
    trace.machine_budget = remaining;
    trace.central_budget = remaining;
    trace.items_added = added;
    trace.value_after = central->value();
    result.rounds.push_back(trace);

    tau *= (1.0 - config.epsilon);
  }

  result.value = central->value();
  result.stats = cluster.stats();
  return result;
}

DistributedResult rand_greedi_matroid(const SubmodularOracle& proto,
                                      std::span<const ElementId> ground,
                                      const MatroidConstraint& constraint,
                                      const MatroidDistributedConfig& config) {
  const std::size_t rank = std::max<std::size_t>(1, constraint.rank());
  std::size_t machines = config.machines;
  if (machines == 0) {
    machines = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(std::sqrt(
               double(std::max<std::size_t>(1, ground.size())) /
               double(rank)))));
  }

  const RuntimeOptions runtime = config.runtime;
  auto central = proto.clone();
  dist::Cluster cluster(machines, runtime.cluster_options());
  util::Rng rng(util::mix64(runtime.seed));
  const dist::Partition partition =
      dist::partition_uniform(ground, machines, rng);

  const auto worker = [&proto, &constraint](
                          std::size_t, std::span<const ElementId> shard)
      -> dist::WorkerOutput {
    auto oracle = proto.clone();
    auto local = constraint.clone();
    const auto selection = lazy_greedy_matroid(*oracle, shard, *local);
    dist::WorkerOutput output;
    output.summary = selection.picks;
    output.oracle_evals = oracle->evals();
    return output;
  };
  const auto reports = cluster.run_round(partition, worker);

  util::Timer timer;
  std::vector<ElementId> pool;
  for (const auto& report : reports) {
    pool.insert(pool.end(), report.summary().begin(), report.summary().end());
  }
  auto central_constraint = constraint.clone();
  const auto filtered =
      lazy_greedy_matroid(*central, pool, *central_constraint);
  cluster.record_central_stage(central->evals(), timer.elapsed_seconds(),
                               filtered.picks.size());

  double best_machine_value = -1.0;
  std::span<const ElementId> best_machine;
  for (const auto& report : reports) {
    const double v = evaluate_set(proto, report.summary());
    if (v > best_machine_value) {
      best_machine_value = v;
      best_machine = report.summary();
    }
  }

  DistributedResult result;
  if (best_machine_value > central->value()) {
    result.solution.assign(best_machine.begin(), best_machine.end());
    result.value = best_machine_value;
  } else {
    result.solution = filtered.picks;
    result.value = central->value();
  }

  RoundTrace trace;
  trace.round = 0;
  trace.machines = machines;
  trace.machine_budget = rank;
  trace.central_budget = rank;
  trace.items_added = result.solution.size();
  trace.value_after = result.value;
  result.rounds.push_back(trace);
  result.stats = cluster.stats();
  return result;
}

}  // namespace bds::legacy
