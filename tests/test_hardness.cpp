#include "core/hardness.h"

#include <gtest/gtest.h>

#include <set>

#include "core/baselines.h"
#include "core/greedy.h"
#include "objectives/submodular.h"
#include "test_support.h"

namespace bds {
namespace {

HardnessConfig small_config() {
  HardnessConfig cfg;
  cfg.k = 6;
  cfg.epsilon = 0.125;
  cfg.universe = 9'600;
  cfg.total_items = 400;
  cfg.seed = 1;
  return cfg;
}

TEST(Hardness, ValidatesConfig) {
  HardnessConfig cfg = small_config();
  cfg.k = 5;  // odd
  EXPECT_THROW(make_hardness_instance(cfg), std::invalid_argument);
  cfg = small_config();
  cfg.epsilon = 0.5;
  EXPECT_THROW(make_hardness_instance(cfg), std::invalid_argument);
  cfg = small_config();
  cfg.total_items = 6;
  EXPECT_THROW(make_hardness_instance(cfg), std::invalid_argument);
  cfg = small_config();
  cfg.universe = 2;
  EXPECT_THROW(make_hardness_instance(cfg), std::invalid_argument);
}

TEST(Hardness, FamilySizesMatchConstruction) {
  const auto instance = make_hardness_instance(small_config());
  EXPECT_EQ(instance.family_a.size(), 3u);
  EXPECT_EQ(instance.family_b.size(), 3u);
  EXPECT_EQ(instance.family_c.size(), 400u - 6u);
  EXPECT_EQ(instance.sets->num_sets(), 400u);
  EXPECT_EQ(instance.all_items().size(), 400u);
}

TEST(Hardness, OptimumCoversWholeUniverse) {
  const auto instance = make_hardness_instance(small_config());
  const CoverageOracle proto(instance.sets);
  EXPECT_DOUBLE_EQ(evaluate_set(proto, instance.optimum()),
                   double(instance.config.universe));
}

TEST(Hardness, FamiliesAAndBAreDisjointPartitions) {
  const auto instance = make_hardness_instance(small_config());
  std::set<std::uint32_t> seen;
  for (const ElementId id : instance.optimum()) {
    for (const auto e : instance.sets->set_items(id)) {
      EXPECT_TRUE(seen.insert(e).second) << "overlap at element " << e;
    }
  }
  EXPECT_EQ(seen.size(), instance.config.universe);
}

TEST(Hardness, ACoversRoughlyOneMinusTwoEps) {
  const auto instance = make_hardness_instance(small_config());
  const CoverageOracle proto(instance.sets);
  const double a_value = evaluate_set(proto, instance.family_a);
  const double frac = a_value / instance.config.universe;
  EXPECT_NEAR(frac, 1.0 - 2 * instance.config.epsilon, 0.01);
}

TEST(Hardness, CSetsMatchBSetSize) {
  const auto instance = make_hardness_instance(small_config());
  const std::size_t b_size =
      instance.sets->set_size(instance.family_b.front());
  for (const ElementId id : instance.family_c) {
    EXPECT_EQ(instance.sets->set_size(id), b_size);
  }
}

TEST(Hardness, EvaluateSolutionCategorizesCorrectly) {
  const auto instance = make_hardness_instance(small_config());
  std::vector<ElementId> mixed;
  mixed.push_back(instance.family_a[0]);
  mixed.push_back(instance.family_b[0]);
  mixed.push_back(instance.family_b[1]);
  mixed.push_back(instance.family_c[5]);
  const auto outcome = evaluate_hardness_solution(instance, mixed);
  EXPECT_EQ(outcome.a_selected, 1u);
  EXPECT_EQ(outcome.b_selected, 2u);
  EXPECT_EQ(outcome.c_selected, 1u);
  EXPECT_GT(outcome.ratio, 0.0);
  EXPECT_LT(outcome.ratio, 1.0);
}

TEST(Hardness, CentralizedGreedyWithKItemsIsNearOptimal) {
  // With global information, greedy finds A and B directly.
  const auto instance = make_hardness_instance(small_config());
  const CoverageOracle proto(instance.sets);
  const auto result =
      centralized_greedy(proto, instance.all_items(), instance.config.k);
  const auto outcome = evaluate_hardness_solution(instance, result.solution);
  EXPECT_GT(outcome.ratio, 0.97);
}

TEST(Hardness, OneRoundAlgorithmLosesBSets) {
  // The heart of Theorem 3.1: in one distributed round with many machines,
  // 𝔹-sets are indistinguishable from ℂ-sets on their machine, so the
  // solution misses most of 𝔹 and its ratio is materially below 1-ε/2.
  HardnessConfig cfg = small_config();
  cfg.total_items = 2'000;
  cfg.seed = 3;
  const auto instance = make_hardness_instance(cfg);
  const CoverageOracle proto(instance.sets);

  OneRoundConfig rg;
  rg.k = cfg.k;
  rg.machines = 50;  // m >> k: B-sets land on machines alone
  rg.runtime.seed = 7;
  const auto result = rand_greedi(proto, instance.all_items(), rg);
  const auto outcome = evaluate_hardness_solution(instance, result.solution);
  EXPECT_LT(outcome.b_selected, instance.family_b.size());
  EXPECT_LT(outcome.ratio, 1.0 - cfg.epsilon / 2.0);
}

TEST(Hardness, LargerOutputRecoversTheGap) {
  // Allowing the one-round algorithm to output O(k/eps) items restores the
  // (1-eps) ratio — the flip side of the lower bound.
  HardnessConfig cfg = small_config();
  cfg.total_items = 2'000;
  cfg.seed = 5;
  const auto instance = make_hardness_instance(cfg);
  const CoverageOracle proto(instance.sets);

  OneRoundConfig rg;
  rg.k = static_cast<std::size_t>(double(cfg.k) / cfg.epsilon);  // k/eps
  rg.machines = 50;
  rg.runtime.seed = 9;
  const auto result = rand_greedi(proto, instance.all_items(), rg);
  const auto outcome = evaluate_hardness_solution(instance, result.solution);
  EXPECT_GT(outcome.value / instance.config.universe, 1.0 - cfg.epsilon);
}

TEST(Hardness, DeterministicBySeed) {
  const auto a = make_hardness_instance(small_config());
  const auto b = make_hardness_instance(small_config());
  for (const ElementId id : a.family_c) {
    const auto sa = a.sets->set_items(id);
    const auto sb = b.sets->set_items(id);
    EXPECT_TRUE(std::equal(sa.begin(), sa.end(), sb.begin(), sb.end()));
  }
}

}  // namespace
}  // namespace bds
