#include "data/profile.h"

#include <gtest/gtest.h>

#include <memory>

#include "data/bigram_gen.h"
#include "data/graph_gen.h"
#include "data/vectors_gen.h"
#include "test_support.h"

namespace bds::data {
namespace {

TEST(ProfileSetSystem, HandInstance) {
  const SetSystem sys({{0, 1, 2}, {3}, {}}, 6);
  const auto p = profile_set_system(sys);
  EXPECT_EQ(p.num_sets, 3u);
  EXPECT_EQ(p.universe_size, 6u);
  EXPECT_EQ(p.total_size, 4u);
  EXPECT_EQ(p.min_set_size, 0u);
  EXPECT_EQ(p.max_set_size, 3u);
  EXPECT_NEAR(p.mean_set_size, 4.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(p.median_set_size, 1.0);
  // Elements 4, 5 are never covered.
  EXPECT_NEAR(p.coverable_fraction, 4.0 / 6.0, 1e-12);
}

TEST(ProfileSetSystem, EmptySystem) {
  const SetSystem sys({}, 10);
  const auto p = profile_set_system(sys);
  EXPECT_EQ(p.num_sets, 0u);
  EXPECT_EQ(p.total_size, 0u);
}

TEST(ProfileSetSystem, HeavyTailIndicatorSeparatesGenerators) {
  // Powerlaw graph neighborhoods concentrate mass in hubs; ER does not.
  const auto heavy = neighborhood_sets(powerlaw_cluster(5'000, 2, 0.8, 1));
  const auto uniform = neighborhood_sets(erdos_renyi(2'000, 0.002, 1));
  const auto ph = profile_set_system(*heavy);
  const auto pu = profile_set_system(*uniform);
  EXPECT_GT(ph.top1pct_mass, 2.0 * pu.top1pct_mass);
}

TEST(ProfileSetSystem, MatchesBigramScale) {
  BigramConfig cfg;
  cfg.books = 100;
  cfg.vocabulary = 200;
  cfg.min_tokens = 50;
  cfg.max_tokens = 2'000;
  const auto sys = make_bigram_sets(cfg);
  const auto p = profile_set_system(*sys);
  EXPECT_EQ(p.num_sets, 100u);
  EXPECT_DOUBLE_EQ(p.coverable_fraction, 1.0);  // compacted universe
  EXPECT_GT(p.max_set_size, p.median_set_size);
}

TEST(ProfilePointSet, NormalizedVectorsHaveUnitNorm) {
  LdaVectorsConfig cfg;
  cfg.documents = 150;
  cfg.topics = 15;
  cfg.clusters = 4;
  const auto pts = make_lda_like_vectors(cfg);
  const auto p = profile_point_set(*pts, 500, 3);
  EXPECT_EQ(p.size, 150u);
  EXPECT_EQ(p.dim, 15u);
  EXPECT_NEAR(p.mean_norm, 1.0, 1e-4);
  EXPECT_GT(p.mean_pairwise_distance, 0.0);
  EXPECT_LE(p.min_sampled_distance, p.mean_pairwise_distance);
  EXPECT_GE(p.max_sampled_distance, p.mean_pairwise_distance);
}

TEST(ProfilePointSet, DeterministicGivenSeed) {
  LdaVectorsConfig cfg;
  cfg.documents = 80;
  cfg.topics = 10;
  const auto pts = make_lda_like_vectors(cfg);
  const auto a = profile_point_set(*pts, 300, 9);
  const auto b = profile_point_set(*pts, 300, 9);
  EXPECT_DOUBLE_EQ(a.mean_pairwise_distance, b.mean_pairwise_distance);
}

TEST(ProfileToString, RendersKeyNumbers) {
  const SetSystem sys({{0, 1}, {2}}, 4);
  const auto text = to_string(profile_set_system(sys));
  EXPECT_NE(text.find("2 sets"), std::string::npos);
  EXPECT_NE(text.find("total 3"), std::string::npos);

  const PointSet pts(2, 2, {1.0f, 0.0f, 0.0f, 1.0f});
  const auto ptext = to_string(profile_point_set(pts, 10, 1));
  EXPECT_NE(ptext.find("2 points x 2 dims"), std::string::npos);
}

}  // namespace
}  // namespace bds::data
