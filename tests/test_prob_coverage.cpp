#include "objectives/prob_coverage.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/greedy.h"
#include "objectives/coverage.h"
#include "test_support.h"

namespace bds {
namespace {

using Entry = ProbSetSystem::Entry;

std::shared_ptr<const ProbSetSystem> tiny_system() {
  // Universe {0,1,2}; item0 covers 0 w.p. 1 and 1 w.p. 0.5;
  // item1 covers 1 w.p. 0.5; item2 covers 2 w.p. 0.2.
  return std::make_shared<const ProbSetSystem>(
      std::vector<std::vector<Entry>>{
          {{0, 1.0f}, {1, 0.5f}}, {{1, 0.5f}}, {{2, 0.2f}}},
      3);
}

std::shared_ptr<const ProbSetSystem> random_system(std::uint32_t n_sets,
                                                   std::uint32_t universe,
                                                   std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<Entry>> sets(n_sets);
  for (auto& s : sets) {
    for (std::uint32_t e = 0; e < universe; ++e) {
      if (rng.next_bool(0.25)) {
        s.push_back({e, static_cast<float>(rng.next_double(0.05, 1.0))});
      }
    }
  }
  return std::make_shared<const ProbSetSystem>(std::move(sets), universe);
}

TEST(ProbSetSystem, AccessorsAndValidation) {
  const auto sys = tiny_system();
  EXPECT_EQ(sys->num_sets(), 3u);
  EXPECT_EQ(sys->universe_size(), 3u);
  EXPECT_EQ(sys->total_entries(), 4u);
  EXPECT_EQ(sys->set_entries(0).size(), 2u);

  EXPECT_THROW(ProbSetSystem({{{5, 0.5f}}}, 3), std::out_of_range);
  EXPECT_THROW(ProbSetSystem({{{0, 1.5f}}}, 3), std::invalid_argument);
  EXPECT_THROW(ProbSetSystem({{{0, -0.1f}}}, 3), std::invalid_argument);
  // Duplicate element within one set is rejected.
  EXPECT_THROW(ProbSetSystem({{{0, 0.5f}, {0, 0.5f}}}, 3),
               std::invalid_argument);
}

TEST(ProbCoverage, HandComputedGains) {
  ProbCoverageOracle oracle(tiny_system());
  EXPECT_DOUBLE_EQ(oracle.gain(0), 1.0 + 0.5);
  EXPECT_DOUBLE_EQ(oracle.add(0), 1.5);
  // Element 1 now uncovered w.p. 0.5, so item1 gains 0.5 * 0.5.
  EXPECT_DOUBLE_EQ(oracle.gain(1), 0.25);
  EXPECT_DOUBLE_EQ(oracle.add(1), 0.25);
  EXPECT_DOUBLE_EQ(oracle.value(), 1.75);
  EXPECT_DOUBLE_EQ(oracle.max_value(), 3.0);
}

TEST(ProbCoverage, ReaddIsFreeButDistinctItemsStack) {
  // Re-adding has zero gain (set semantics), but two *distinct* items with
  // the same entry stack: 1-(1-p)^2.
  const auto sys = std::make_shared<const ProbSetSystem>(
      std::vector<std::vector<Entry>>{{{0, 0.5f}}, {{0, 0.5f}}}, 1);
  ProbCoverageOracle oracle(sys);
  EXPECT_DOUBLE_EQ(oracle.add(0), 0.5);
  EXPECT_DOUBLE_EQ(oracle.gain(0), 0.0);
  EXPECT_DOUBLE_EQ(oracle.add(0), 0.0);
  EXPECT_DOUBLE_EQ(oracle.add(1), 0.25);
  EXPECT_DOUBLE_EQ(oracle.value(), 0.75);
}

TEST(ProbCoverage, DeterministicProbabilitiesMatchHardCoverage) {
  // p = 1 everywhere reduces to plain coverage.
  const auto hard = testing::random_set_system(15, 25, 0.3, 7);
  std::vector<std::vector<Entry>> soft_sets(15);
  for (ElementId i = 0; i < 15; ++i) {
    for (const auto e : hard->set_items(i)) soft_sets[i].push_back({e, 1.0f});
  }
  const auto soft = std::make_shared<const ProbSetSystem>(
      std::move(soft_sets), 25);

  CoverageOracle a(hard);
  ProbCoverageOracle b(soft);
  for (ElementId x = 0; x < 15; ++x) {
    EXPECT_DOUBLE_EQ(a.gain(x), b.gain(x));
  }
  a.add(4);
  b.add(4);
  a.add(9);
  b.add(9);
  EXPECT_DOUBLE_EQ(a.value(), b.value());
}

TEST(ProbCoverage, WeightsScaleGains) {
  const auto sys = std::make_shared<const ProbSetSystem>(
      std::vector<std::vector<Entry>>{{{0, 0.5f}, {1, 0.5f}}}, 2);
  ProbCoverageOracle oracle(sys, {10.0, 2.0});
  EXPECT_DOUBLE_EQ(oracle.gain(0), 5.0 + 1.0);
  EXPECT_DOUBLE_EQ(oracle.max_value(), 12.0);
  EXPECT_THROW(ProbCoverageOracle(sys, {1.0}), std::invalid_argument);
  EXPECT_THROW(ProbCoverageOracle(sys, {1.0, -1.0}), std::invalid_argument);
}

TEST(ProbCoverage, CloneIsIndependent) {
  ProbCoverageOracle oracle(tiny_system());
  oracle.add(0);
  const auto copy = oracle.clone();
  copy->add(1);
  EXPECT_GT(copy->value(), oracle.value());
  EXPECT_DOUBLE_EQ(oracle.gain(1), 0.25);
}

class ProbCoverageProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ProbCoverageProperty, IsMonotoneSubmodular) {
  const auto sys = random_system(18, 24, GetParam());
  const ProbCoverageOracle proto(sys);
  EXPECT_EQ(
      testing::count_submodularity_violations(proto, GetParam(), 50, 1e-9),
      0);
  EXPECT_EQ(
      testing::count_monotonicity_violations(proto, GetParam(), 25, 1e-9),
      0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProbCoverageProperty,
                         ::testing::Values(31, 32, 33, 34, 35, 36));

TEST(ProbCoverage, GreedyNeverSaturatesEarly) {
  // Unlike hard coverage, gains stay strictly positive (p < 1), so greedy
  // with stop_when_no_gain still uses its whole budget.
  util::Rng rng(41);
  std::vector<std::vector<Entry>> sets(30);
  for (auto& s : sets) {
    for (std::uint32_t e = 0; e < 20; ++e) {
      s.push_back({e, static_cast<float>(rng.next_double(0.05, 0.5))});
    }
  }
  const auto sys =
      std::make_shared<const ProbSetSystem>(std::move(sets), 20);
  ProbCoverageOracle oracle(sys);
  const auto result = greedy(oracle, testing::iota_ids(30), 15, {true});
  EXPECT_EQ(result.size(), 15u);
  for (const double g : result.gains) EXPECT_GT(g, 0.0);
  EXPECT_LT(oracle.value(), oracle.max_value());
}

TEST(ProbCoverage, ValueApproachesMaxGeometrically) {
  // n identical items each covering one element w.p. p: after t picks the
  // value is 1 - (1-p)^t.
  std::vector<std::vector<Entry>> sets(12, {{0u, 0.3f}});
  const auto sys =
      std::make_shared<const ProbSetSystem>(std::move(sets), 1);
  ProbCoverageOracle oracle(sys);
  for (int t = 1; t <= 12; ++t) {
    oracle.add(static_cast<ElementId>(t - 1));
    EXPECT_NEAR(oracle.value(), 1.0 - std::pow(0.7, t), 1e-6);
  }
}

}  // namespace
}  // namespace bds
