#include "dist/cluster.h"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>
#include <thread>

#include "test_support.h"

namespace bds::dist {
namespace {

// A worker that "selects" the first half of its shard and reports one eval
// per item received.
WorkerOutput half_selector(std::size_t /*machine*/,
                           std::span<const ElementId> shard) {
  WorkerOutput output;
  output.summary.assign(shard.begin(), shard.begin() + shard.size() / 2);
  output.oracle_evals = shard.size();
  return output;
}

TEST(Cluster, RejectsZeroMachines) {
  EXPECT_THROW(Cluster(0), std::invalid_argument);
}

TEST(Cluster, RunRoundReturnsPerMachineReports) {
  Cluster cluster(3, 2);
  Partition partition{{0, 1, 2, 3}, {4, 5}, {}};
  const auto reports = cluster.run_round(partition, half_selector);
  ASSERT_EQ(reports.size(), 3u);
  EXPECT_EQ(reports[0].summary(), (std::vector<ElementId>{0, 1}));
  EXPECT_EQ(reports[1].summary(), (std::vector<ElementId>{4}));
  EXPECT_TRUE(reports[2].summary().empty());
  EXPECT_EQ(reports[0].status, DeliveryStatus::kDelivered);
  EXPECT_EQ(reports[0].attempts, 1u);
  EXPECT_EQ(reports[0].last_fault, FaultKind::kNone);
}

TEST(Cluster, RoundStatsAccounting) {
  Cluster cluster(3, 1);
  Partition partition{{0, 1, 2, 3}, {4, 5}, {}};
  cluster.run_round(partition, half_selector);

  const auto& stats = cluster.stats();
  ASSERT_EQ(stats.num_rounds(), 1u);
  const auto& round = stats.rounds[0];
  EXPECT_EQ(round.machines_used, 2u);  // third machine got nothing
  EXPECT_EQ(round.elements_scattered, 6u);
  EXPECT_EQ(round.elements_gathered, 3u);
  EXPECT_EQ(round.worker_evals, 6u);
  EXPECT_EQ(round.max_machine_evals, 4u);
  EXPECT_EQ(round.max_machine_items, 4u);
}

TEST(Cluster, MultipleRoundsAccumulate) {
  Cluster cluster(2, 1);
  Partition partition{{0, 1}, {2, 3}};
  cluster.run_round(partition, half_selector);
  cluster.run_round(partition, half_selector);
  EXPECT_EQ(cluster.stats().num_rounds(), 2u);
  EXPECT_EQ(cluster.stats().total_worker_evals(), 8u);
}

TEST(Cluster, CentralStageRecording) {
  Cluster cluster(2, 1);
  Partition partition{{0, 1}, {2, 3}};
  cluster.run_round(partition, half_selector);
  cluster.record_central_stage(17, 0.25, 3);
  const auto& round = cluster.stats().rounds.back();
  EXPECT_EQ(round.central_evals, 17u);
  EXPECT_DOUBLE_EQ(round.central_seconds, 0.25);
  EXPECT_EQ(round.central_selected, 3u);
  EXPECT_EQ(cluster.stats().total_central_evals(), 17u);
  EXPECT_EQ(cluster.stats().total_evals(), 4u + 17u);
}

TEST(Cluster, CentralStageBeforeRoundThrows) {
  Cluster cluster(2);
  EXPECT_THROW(cluster.record_central_stage(1, 0.0, 1), std::logic_error);
}

TEST(Cluster, BytesCommunicated) {
  Cluster cluster(2, 1);
  Partition partition{{0, 1, 2}, {3, 4}};  // 5 scattered
  cluster.run_round(partition, half_selector);  // 1 + 1 gathered
  EXPECT_EQ(cluster.stats().bytes_communicated(),
            (5u + 2u) * sizeof(ElementId));
}

TEST(Cluster, CriticalPathUsesSlowestWorkerPlusCentral) {
  Cluster cluster(2, 2);
  Partition partition{{0}, {1}};
  const auto slow_then_fast = [](std::size_t machine,
                                 std::span<const ElementId> shard) {
    if (machine == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }
    WorkerOutput output;
    output.summary.assign(shard.begin(), shard.end());
    output.oracle_evals = machine == 0 ? 100 : 1;
    return output;
  };
  cluster.run_round(partition, slow_then_fast);
  cluster.record_central_stage(5, 0.010, 1);

  const auto& stats = cluster.stats();
  EXPECT_EQ(stats.critical_path_evals(), 105u);
  EXPECT_GE(stats.critical_path_seconds(), 0.030 + 0.010 - 1e-6);
  EXPECT_GE(stats.total_work_seconds(), stats.critical_path_seconds() - 1e-9);
}

TEST(Cluster, WorkerSecondsArePopulated) {
  Cluster cluster(1, 1);
  Partition partition{{0, 1, 2}};
  const auto reports = cluster.run_round(partition, half_selector);
  EXPECT_GE(reports[0].seconds, 0.0);
}

TEST(Cluster, WorkerExceptionPropagates) {
  Cluster cluster(2, 2);
  Partition partition{{0}, {1}};
  EXPECT_THROW(
      cluster.run_round(partition,
                        [](std::size_t m, std::span<const ElementId>)
                            -> WorkerOutput {
                          if (m == 1) throw std::runtime_error("worker died");
                          return {};
                        }),
      std::runtime_error);
}

TEST(Cluster, ConcurrentWorkersMatchSequentialExecution) {
  // The same round executed with 1 host thread and with 4 must produce
  // identical reports: worker lambdas only touch their own shard state.
  const auto sys = testing::random_set_system(200, 150, 0.05, 42);
  const auto ids = testing::iota_ids(200);
  util::Rng r1(7), r4(7);
  const Partition p1 = partition_uniform(ids, 8, r1);
  const Partition p4 = partition_uniform(ids, 8, r4);
  ASSERT_EQ(p1, p4);

  const auto worker = [&sys](std::size_t,
                             std::span<const ElementId> shard)
      -> WorkerOutput {
    // A real oracle workload: greedy-ish scan accumulating coverage.
    bds::CoverageOracle oracle(sys);
    WorkerOutput output;
    for (const ElementId x : shard) {
      if (oracle.gain(x) > 2.0) {
        oracle.add(x);
        output.summary.push_back(x);
      }
    }
    output.oracle_evals = oracle.evals();
    return output;
  };

  Cluster sequential(8, 1);
  Cluster concurrent(8, 4);
  const auto a = sequential.run_round(p1, worker);
  const auto b = concurrent.run_round(p4, worker);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].summary(), b[i].summary()) << "machine " << i;
    EXPECT_EQ(a[i].worker.oracle_evals, b[i].worker.oracle_evals);
  }
  EXPECT_EQ(sequential.stats().rounds[0].elements_gathered,
            concurrent.stats().rounds[0].elements_gathered);
}

TEST(ExecutionStats, NetworkModelAddsLatencyAndTransfer) {
  ExecutionStats stats;
  RoundStats r;
  r.elements_scattered = 1'000;
  r.elements_gathered = 250;  // 1250 ids * 4 B = 5000 B
  r.max_machine_seconds = 0.1;
  stats.rounds.push_back(r);
  stats.rounds.push_back(r);

  NetworkModel network;
  network.round_latency_seconds = 0.5;
  network.bytes_per_second = 10'000.0;  // 5000 B -> 0.5 s per round
  // 2 rounds * (0.1 compute + 0.5 latency + 0.5 transfer) = 2.2 s.
  EXPECT_NEAR(stats.modeled_cluster_seconds(network), 2.2, 1e-9);

  // Zero bandwidth disables the transfer term rather than dividing by 0.
  network.bytes_per_second = 0.0;
  EXPECT_NEAR(stats.modeled_cluster_seconds(network), 1.2, 1e-9);
}

TEST(ExecutionStats, EmptyStatsAreZero) {
  ExecutionStats stats;
  EXPECT_EQ(stats.num_rounds(), 0u);
  EXPECT_EQ(stats.total_evals(), 0u);
  EXPECT_EQ(stats.bytes_communicated(), 0u);
  EXPECT_DOUBLE_EQ(stats.critical_path_seconds(), 0.0);
}

}  // namespace
}  // namespace bds::dist
