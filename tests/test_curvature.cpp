#include "core/curvature.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/brute_force.h"
#include "core/greedy.h"
#include "objectives/coverage.h"
#include "test_support.h"

namespace bds {
namespace {

using testing::iota_ids;
using testing::random_set_system;

TEST(Curvature, RefinedFactorEndpoints) {
  EXPECT_DOUBLE_EQ(refined_greedy_factor(0.0), 1.0);
  EXPECT_NEAR(refined_greedy_factor(1.0), 1.0 - 1.0 / std::exp(1.0), 1e-12);
  // Monotone decreasing in c.
  EXPECT_GT(refined_greedy_factor(0.3), refined_greedy_factor(0.7));
  // Clamped outside [0, 1].
  EXPECT_DOUBLE_EQ(refined_greedy_factor(-1.0), 1.0);
  EXPECT_DOUBLE_EQ(refined_greedy_factor(2.0), refined_greedy_factor(1.0));
}

TEST(Curvature, ModularFunctionHasZeroCurvature) {
  // Disjoint sets: marginals never shrink => c = 0, greedy optimal.
  std::vector<std::vector<std::uint32_t>> sets;
  for (std::uint32_t i = 0; i < 10; ++i) sets.push_back({2 * i, 2 * i + 1});
  const auto sys = std::make_shared<const SetSystem>(std::move(sets), 20);
  const CoverageOracle proto(sys);
  const auto estimate = estimate_curvature(proto, iota_ids(10));
  EXPECT_TRUE(estimate.exact);
  EXPECT_NEAR(estimate.curvature, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(estimate.refined_greedy_factor, 1.0);
}

TEST(Curvature, FullyCurvedInstance) {
  // Identical sets: after the rest of V is in, x adds nothing => c = 1.
  const auto sys = std::make_shared<const SetSystem>(
      std::vector<std::vector<std::uint32_t>>{{0, 1}, {0, 1}, {0, 1}}, 2);
  const CoverageOracle proto(sys);
  const auto estimate = estimate_curvature(proto, iota_ids(3));
  EXPECT_NEAR(estimate.curvature, 1.0, 1e-12);
  EXPECT_NEAR(estimate.refined_greedy_factor, 1.0 - 1.0 / std::exp(1.0),
              1e-12);
}

TEST(Curvature, HandComputedPartialOverlap) {
  // set0 = {0,1}, set1 = {1,2}: f({set0}) = 2, Δ(set0, {set1}) = 1.
  // Ratio 1/2 both ways => c = 1/2.
  const auto sys = std::make_shared<const SetSystem>(
      std::vector<std::vector<std::uint32_t>>{{0, 1}, {1, 2}}, 3);
  const CoverageOracle proto(sys);
  const auto estimate = estimate_curvature(proto, iota_ids(2));
  EXPECT_NEAR(estimate.curvature, 0.5, 1e-12);
}

TEST(Curvature, SampledEstimateIsDeterministicAndBounded) {
  const auto sys = random_set_system(60, 100, 0.1, 5);
  const CoverageOracle proto(sys);
  const auto a = estimate_curvature(proto, iota_ids(60), 10, 7);
  const auto b = estimate_curvature(proto, iota_ids(60), 10, 7);
  EXPECT_FALSE(a.exact);
  EXPECT_EQ(a.elements_used, 10u);
  EXPECT_DOUBLE_EQ(a.curvature, b.curvature);
  EXPECT_GE(a.curvature, 0.0);
  EXPECT_LE(a.curvature, 1.0);
  // Sampled curvature can only miss high-curvature elements, so it lower-
  // bounds the exact measurement.
  const auto exact = estimate_curvature(proto, iota_ids(60));
  EXPECT_LE(a.curvature, exact.curvature + 1e-12);
}

TEST(Curvature, SkipsZeroValueElements) {
  const auto sys = std::make_shared<const SetSystem>(
      std::vector<std::vector<std::uint32_t>>{{0}, {}, {1}}, 2);
  const CoverageOracle proto(sys);
  const auto estimate = estimate_curvature(proto, iota_ids(3));
  EXPECT_EQ(estimate.elements_used, 2u);  // the empty set is skipped
}

TEST(Curvature, ValidatesEmptyGround) {
  const auto sys = random_set_system(5, 10, 0.3, 9);
  const CoverageOracle proto(sys);
  EXPECT_THROW(estimate_curvature(proto, {}), std::invalid_argument);
}

TEST(Curvature, GreedyBeatsRefinedFactorOnRandomInstances) {
  // The refined factor is a valid guarantee: greedy's value clears
  // factor * OPT on brute-forceable instances.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto sys = random_set_system(12, 24, 0.25, seed + 300);
    const CoverageOracle proto(sys);
    const auto estimate = estimate_curvature(proto, iota_ids(12));
    const auto opt = brute_force_opt(proto, iota_ids(12), 3);
    auto oracle = proto.clone();
    const auto result = greedy(*oracle, iota_ids(12), 3);
    EXPECT_GE(result.gained,
              estimate.refined_greedy_factor * opt.value - 1e-9)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace bds
