#include "data/io.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>

#include "core/registry.h"
#include "data/format.h"
#include "data/graph_gen.h"
#include "data/prob_gen.h"
#include "data/vectors_gen.h"
#include "objectives/submodular.h"
#include "test_support.h"

namespace bds::data {
namespace {

class IoTest : public ::testing::Test {
 protected:
  // Per-process path: ctest runs each test case as its own process, and a
  // shared fixed name races when cases run in parallel (ctest -j).
  std::string path_ = ::testing::TempDir() + "/bds_io_test_" +
                      std::to_string(::getpid()) + ".bin";
  void TearDown() override { std::remove(path_.c_str()); }

  // Overwrites sizeof(T) bytes at `offset` (header-field surgery for the
  // corruption tests).
  template <typename T>
  void patch(std::uint64_t offset, T value) {
    std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(reinterpret_cast<const char*>(&value), sizeof(T));
  }

  // Every io error must tell the user which file was bad.
  template <typename Fn>
  void expect_error_naming_path(Fn fn) {
    try {
      fn();
      FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(path_), std::string::npos)
          << "error does not name the path: " << e.what();
    }
  }
};

TEST_F(IoTest, SetSystemRoundTrip) {
  const auto original = bds::testing::random_set_system(50, 80, 0.15, 1);
  save_set_system(*original, path_);
  const auto loaded = load_set_system(path_);

  ASSERT_EQ(loaded->num_sets(), original->num_sets());
  EXPECT_EQ(loaded->universe_size(), original->universe_size());
  EXPECT_EQ(loaded->total_size(), original->total_size());
  for (ElementId id = 0; id < original->num_sets(); ++id) {
    const auto a = original->set_items(id);
    const auto b = loaded->set_items(id);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
        << "set " << id;
  }
}

TEST_F(IoTest, SetSystemWithEmptySets) {
  const SetSystem original({{1, 2}, {}, {0}}, 3);
  save_set_system(original, path_);
  const auto loaded = load_set_system(path_);
  EXPECT_EQ(loaded->set_size(1), 0u);
  EXPECT_EQ(loaded->set_size(0), 2u);
}

TEST_F(IoTest, PointSetRoundTrip) {
  LdaVectorsConfig cfg;
  cfg.documents = 30;
  cfg.topics = 12;
  cfg.clusters = 3;
  const auto original = make_lda_like_vectors(cfg);
  save_point_set(*original, path_);
  const auto loaded = load_point_set(path_);

  ASSERT_EQ(loaded->size(), original->size());
  ASSERT_EQ(loaded->dim(), original->dim());
  for (std::size_t i = 0; i < original->size(); ++i) {
    for (std::size_t d = 0; d < original->dim(); ++d) {
      EXPECT_FLOAT_EQ(loaded->point(i)[d], original->point(i)[d]);
    }
  }
}

TEST_F(IoTest, ProbSetSystemRoundTrip) {
  data::ClickModelConfig cfg;
  cfg.ads = 60;
  cfg.users = 200;
  cfg.mean_reach = 6.0;
  cfg.seed = 5;
  const auto original = make_click_model(cfg);
  save_prob_set_system(*original, path_);
  const auto loaded = load_prob_set_system(path_);

  ASSERT_EQ(loaded->num_sets(), original->num_sets());
  EXPECT_EQ(loaded->universe_size(), original->universe_size());
  EXPECT_EQ(loaded->total_entries(), original->total_entries());
  for (ElementId id = 0; id < original->num_sets(); ++id) {
    const auto a = original->set_entries(id);
    const auto b = loaded->set_entries(id);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].element, b[i].element);
      EXPECT_FLOAT_EQ(a[i].probability, b[i].probability);
    }
  }
}

TEST_F(IoTest, ProbFileTypeIsDistinct) {
  const auto sets = bds::testing::random_set_system(5, 10, 0.3, 6);
  save_set_system(*sets, path_);
  EXPECT_THROW(load_prob_set_system(path_), std::runtime_error);
}

TEST_F(IoTest, RejectsMissingFile) {
  EXPECT_THROW(load_set_system("/nonexistent/file.bin"), std::runtime_error);
  EXPECT_THROW(load_point_set("/nonexistent/file.bin"), std::runtime_error);
}

TEST_F(IoTest, RejectsWrongFileType) {
  const auto sets = bds::testing::random_set_system(5, 10, 0.3, 2);
  save_set_system(*sets, path_);
  EXPECT_THROW(load_point_set(path_), std::runtime_error);
}

TEST_F(IoTest, RejectsTruncatedFile) {
  const auto sets = bds::testing::random_set_system(20, 30, 0.3, 3);
  save_set_system(*sets, path_);
  // Truncate to half.
  std::ifstream in(path_, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(contents.data(), std::streamsize(contents.size() / 2));
  out.close();
  EXPECT_THROW(load_set_system(path_), std::runtime_error);
}

TEST_F(IoTest, RejectsGarbage) {
  std::ofstream out(path_, std::ios::binary);
  out << "this is not a dataset";
  out.close();
  EXPECT_THROW(load_set_system(path_), std::runtime_error);
}

TEST_F(IoTest, LoadedSystemBehavesIdentically) {
  const auto original = bds::testing::random_set_system(40, 60, 0.2, 4);
  save_set_system(*original, path_);
  const auto loaded = load_set_system(path_);
  const CoverageOracle a(original);
  const CoverageOracle b(loaded);
  const std::vector<ElementId> sol{3, 17, 29};
  EXPECT_DOUBLE_EQ(evaluate_set(a, sol), evaluate_set(b, sol));
}

// --- v2 container: mmap path ------------------------------------------------

TEST_F(IoTest, MappedSetSystemEqualsHeapLoaded) {
  const auto original = bds::testing::random_set_system(50, 80, 0.15, 7);
  save_set_system(*original, path_);
  const auto mapped = map_set_system(path_);
  const auto loaded = load_set_system(path_);

  EXPECT_TRUE(mapped->borrows_storage());
  ASSERT_EQ(mapped->num_sets(), loaded->num_sets());
  EXPECT_EQ(mapped->universe_size(), loaded->universe_size());
  EXPECT_EQ(mapped->total_size(), loaded->total_size());
  for (ElementId id = 0; id < loaded->num_sets(); ++id) {
    const auto a = loaded->set_items(id);
    const auto b = mapped->set_items(id);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
        << "set " << id;
  }
}

// Mapped and heap-loaded oracles must produce *bit-identical* gains (exact
// double equality, not tolerance) over a grid of instance seeds — they read
// the same bytes, so any divergence is a backing-dependent code path.
TEST_F(IoTest, MappedSetSystemBitIdenticalGainsOnSeedGrid) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 11u, 42u}) {
    const auto original = bds::testing::random_set_system(60, 90, 0.12, seed);
    save_set_system(*original, path_);
    CoverageOracle heap(load_set_system(path_));
    CoverageOracle mapped(map_set_system(path_));
    for (ElementId x = 0; x < heap.ground_size(); ++x) {
      ASSERT_EQ(heap.gain(x), mapped.gain(x)) << "seed " << seed;
    }
    // Interleave adds so later gains depend on identical covered state.
    for (ElementId x = 0; x < heap.ground_size(); x += 7) {
      ASSERT_EQ(heap.add(x), mapped.add(x)) << "seed " << seed;
    }
    for (ElementId x = 0; x < heap.ground_size(); ++x) {
      ASSERT_EQ(heap.gain(x), mapped.gain(x)) << "seed " << seed;
    }
  }
}

TEST_F(IoTest, MappedPointSetBitIdentical) {
  LdaVectorsConfig cfg;
  cfg.documents = 40;
  cfg.topics = 10;
  cfg.clusters = 4;
  const auto original = make_lda_like_vectors(cfg);
  save_point_set(*original, path_);
  const auto mapped = map_point_set(path_);
  const auto loaded = load_point_set(path_);

  EXPECT_TRUE(mapped->borrows_storage());
  ASSERT_EQ(mapped->size(), original->size());
  ASSERT_EQ(mapped->dim(), original->dim());
  ASSERT_EQ(mapped->stride(), original->stride());
  for (std::size_t i = 0; i < original->size(); ++i) {
    ASSERT_EQ(mapped->norm2(i), original->norm2(i)) << "norm " << i;
    for (std::size_t d = 0; d < original->stride(); ++d) {
      ASSERT_EQ(mapped->row(i)[d], original->row(i)[d]);
    }
  }

  ExemplarOracle a(loaded, 2.0);
  ExemplarOracle b(mapped, 2.0);
  for (ElementId x = 0; x < a.ground_size(); x += 3) {
    ASSERT_EQ(a.gain(x), b.gain(x));
  }
  ASSERT_EQ(a.add(0), b.add(0));
  for (ElementId x = 0; x < a.ground_size(); x += 3) {
    ASSERT_EQ(a.gain(x), b.gain(x));
  }
}

TEST_F(IoTest, MappedProbSetSystemBitIdentical) {
  ClickModelConfig cfg;
  cfg.ads = 50;
  cfg.users = 150;
  cfg.mean_reach = 5.0;
  cfg.seed = 9;
  const auto original = make_click_model(cfg);
  save_prob_set_system(*original, path_);
  const auto mapped = map_prob_set_system(path_);

  EXPECT_TRUE(mapped->borrows_storage());
  ProbCoverageOracle a(load_prob_set_system(path_));
  ProbCoverageOracle b(mapped);
  for (ElementId x = 0; x < a.ground_size(); ++x) {
    ASSERT_EQ(a.gain(x), b.gain(x));
  }
  ASSERT_EQ(a.add(3), b.add(3));
  for (ElementId x = 0; x < a.ground_size(); ++x) {
    ASSERT_EQ(a.gain(x), b.gain(x));
  }
}

// Shard views sliced out of a mapped system must match the heap-loaded
// ones; a worker's compacted state then references only its shard's rows.
TEST_F(IoTest, MappedShardViewMatchesHeap) {
  const auto original = bds::testing::random_set_system(40, 60, 0.2, 13);
  save_set_system(*original, path_);
  CoverageOracle heap(load_set_system(path_));
  CoverageOracle mapped(map_set_system(path_));
  const std::vector<ElementId> shard{2, 5, 11, 17, 23, 31};
  const auto heap_view = heap.shard_view(shard);
  const auto mapped_view = mapped.shard_view(shard);
  for (const ElementId x : shard) {
    ASSERT_EQ(heap_view->gain(x), mapped_view->gain(x));
  }
  ASSERT_EQ(heap_view->add(11), mapped_view->add(11));
  for (const ElementId x : shard) {
    ASSERT_EQ(heap_view->gain(x), mapped_view->gain(x));
  }
}

// End-to-end: every distributed algorithm must return identical selections,
// values, and round counts on mapped vs heap-loaded corpora.
TEST_F(IoTest, DistributedRunsBitIdenticalAcrossBackings) {
  const auto original = bds::testing::random_set_system(120, 150, 0.08, 21);
  save_set_system(*original, path_);
  const CoverageOracle heap(load_set_system(path_));
  const CoverageOracle mapped(map_set_system(path_));
  std::vector<ElementId> ground(heap.ground_size());
  for (std::size_t i = 0; i < ground.size(); ++i) {
    ground[i] = static_cast<ElementId>(i);
  }
  AlgorithmParams params;
  params.k = 8;
  params.rounds = 2;
  RuntimeOptions runtime;
  runtime.seed = 3;
  runtime.threads = 2;
  for (const char* algorithm :
       {"bicriteria", "greedi", "randgreedi", "hybrid", "central"}) {
    const auto a = run_distributed(algorithm, heap, ground, runtime, params);
    const auto b = run_distributed(algorithm, mapped, ground, runtime, params);
    EXPECT_EQ(a.solution, b.solution) << algorithm;
    EXPECT_EQ(a.value, b.value) << algorithm;
    EXPECT_EQ(a.stats.num_rounds(), b.stats.num_rounds()) << algorithm;
    EXPECT_EQ(a.stats.total_evals(), b.stats.total_evals()) << algorithm;
  }
}

// --- v2 container: corruption handling --------------------------------------

TEST_F(IoTest, TruncatedV2FileThrowsNamingPath) {
  const auto sets = bds::testing::random_set_system(20, 30, 0.3, 3);
  save_set_system(*sets, path_);
  std::ifstream in(path_, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(contents.data(), std::streamsize(contents.size() / 2));
  out.close();
  expect_error_naming_path([&] { load_set_system(path_); });
  expect_error_naming_path([&] { map_set_system(path_); });
}

TEST_F(IoTest, BadMagicThrowsNamingPath) {
  const auto sets = bds::testing::random_set_system(10, 20, 0.3, 3);
  save_set_system(*sets, path_);
  patch<std::uint32_t>(0, 0xDEADBEEF);
  expect_error_naming_path([&] { load_set_system(path_); });
  expect_error_naming_path([&] { map_set_system(path_); });
}

TEST_F(IoTest, WrongVersionThrowsNamingPath) {
  const auto sets = bds::testing::random_set_system(10, 20, 0.3, 3);
  save_set_system(*sets, path_);
  patch<std::uint32_t>(4, kFormatVersion + 1);  // header.version
  expect_error_naming_path([&] { load_set_system(path_); });
  expect_error_naming_path([&] { map_set_system(path_); });
}

TEST_F(IoTest, MisalignedSectionOffsetThrowsNamingPath) {
  const auto sets = bds::testing::random_set_system(10, 20, 0.3, 3);
  save_set_system(*sets, path_);
  // header.section_a lives at byte 40 (after 4 u32s + count + meta_a/b).
  patch<std::uint64_t>(40, sizeof(FileHeader) + 4);
  expect_error_naming_path([&] { load_set_system(path_); });
  expect_error_naming_path([&] { map_set_system(path_); });
}

TEST_F(IoTest, SectionOutOfBoundsThrowsNamingPath) {
  const auto sets = bds::testing::random_set_system(10, 20, 0.3, 3);
  save_set_system(*sets, path_);
  patch<std::uint64_t>(48, 1 << 20);  // header.section_b beyond the file
  expect_error_naming_path([&] { map_set_system(path_); });
}

TEST_F(IoTest, WrongPayloadKindThrowsNamingPath) {
  const auto sets = bds::testing::random_set_system(10, 20, 0.3, 3);
  save_set_system(*sets, path_);
  expect_error_naming_path([&] { map_point_set(path_); });
  expect_error_naming_path([&] { map_prob_set_system(path_); });
}

// --- legacy v1 compatibility ------------------------------------------------

// Hand-writes the v1 streamed wire format (magic, version, num_sets,
// universe, then length-prefixed rows) — what pre-v2 builds produced.
void write_v1_set_system(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  const auto put32 = [&](std::uint32_t v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  const auto put64 = [&](std::uint64_t v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  put32(kLegacySetMagic);
  put32(1);     // version
  put64(3);     // num_sets
  put32(5);     // universe
  put64(2); put32(0); put32(2);
  put64(0);
  put64(3); put32(1); put32(3); put32(4);
}

TEST_F(IoTest, LegacyV1FileStillHeapLoads) {
  write_v1_set_system(path_);
  const auto sets = load_set_system(path_);
  ASSERT_EQ(sets->num_sets(), 3u);
  EXPECT_EQ(sets->universe_size(), 5u);
  EXPECT_EQ(sets->total_size(), 5u);
  EXPECT_EQ(sets->set_size(0), 2u);
  EXPECT_EQ(sets->set_size(1), 0u);
  EXPECT_EQ(sets->set_size(2), 3u);
  EXPECT_FALSE(sets->borrows_storage());
}

TEST_F(IoTest, LegacyV1FileRejectedByMmapWithConvertHint) {
  write_v1_set_system(path_);
  try {
    map_set_system(path_);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path_), std::string::npos) << what;
    EXPECT_NE(what.find("bds_convert"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace bds::data
