#include "data/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "data/graph_gen.h"
#include "data/prob_gen.h"
#include "data/vectors_gen.h"
#include "objectives/submodular.h"
#include "test_support.h"

namespace bds::data {
namespace {

class IoTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/bds_io_test.bin";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(IoTest, SetSystemRoundTrip) {
  const auto original = bds::testing::random_set_system(50, 80, 0.15, 1);
  save_set_system(*original, path_);
  const auto loaded = load_set_system(path_);

  ASSERT_EQ(loaded->num_sets(), original->num_sets());
  EXPECT_EQ(loaded->universe_size(), original->universe_size());
  EXPECT_EQ(loaded->total_size(), original->total_size());
  for (ElementId id = 0; id < original->num_sets(); ++id) {
    const auto a = original->set_items(id);
    const auto b = loaded->set_items(id);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
        << "set " << id;
  }
}

TEST_F(IoTest, SetSystemWithEmptySets) {
  const SetSystem original({{1, 2}, {}, {0}}, 3);
  save_set_system(original, path_);
  const auto loaded = load_set_system(path_);
  EXPECT_EQ(loaded->set_size(1), 0u);
  EXPECT_EQ(loaded->set_size(0), 2u);
}

TEST_F(IoTest, PointSetRoundTrip) {
  LdaVectorsConfig cfg;
  cfg.documents = 30;
  cfg.topics = 12;
  cfg.clusters = 3;
  const auto original = make_lda_like_vectors(cfg);
  save_point_set(*original, path_);
  const auto loaded = load_point_set(path_);

  ASSERT_EQ(loaded->size(), original->size());
  ASSERT_EQ(loaded->dim(), original->dim());
  for (std::size_t i = 0; i < original->size(); ++i) {
    for (std::size_t d = 0; d < original->dim(); ++d) {
      EXPECT_FLOAT_EQ(loaded->point(i)[d], original->point(i)[d]);
    }
  }
}

TEST_F(IoTest, ProbSetSystemRoundTrip) {
  data::ClickModelConfig cfg;
  cfg.ads = 60;
  cfg.users = 200;
  cfg.mean_reach = 6.0;
  cfg.seed = 5;
  const auto original = make_click_model(cfg);
  save_prob_set_system(*original, path_);
  const auto loaded = load_prob_set_system(path_);

  ASSERT_EQ(loaded->num_sets(), original->num_sets());
  EXPECT_EQ(loaded->universe_size(), original->universe_size());
  EXPECT_EQ(loaded->total_entries(), original->total_entries());
  for (ElementId id = 0; id < original->num_sets(); ++id) {
    const auto a = original->set_entries(id);
    const auto b = loaded->set_entries(id);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].element, b[i].element);
      EXPECT_FLOAT_EQ(a[i].probability, b[i].probability);
    }
  }
}

TEST_F(IoTest, ProbFileTypeIsDistinct) {
  const auto sets = bds::testing::random_set_system(5, 10, 0.3, 6);
  save_set_system(*sets, path_);
  EXPECT_THROW(load_prob_set_system(path_), std::runtime_error);
}

TEST_F(IoTest, RejectsMissingFile) {
  EXPECT_THROW(load_set_system("/nonexistent/file.bin"), std::runtime_error);
  EXPECT_THROW(load_point_set("/nonexistent/file.bin"), std::runtime_error);
}

TEST_F(IoTest, RejectsWrongFileType) {
  const auto sets = bds::testing::random_set_system(5, 10, 0.3, 2);
  save_set_system(*sets, path_);
  EXPECT_THROW(load_point_set(path_), std::runtime_error);
}

TEST_F(IoTest, RejectsTruncatedFile) {
  const auto sets = bds::testing::random_set_system(20, 30, 0.3, 3);
  save_set_system(*sets, path_);
  // Truncate to half.
  std::ifstream in(path_, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(contents.data(), std::streamsize(contents.size() / 2));
  out.close();
  EXPECT_THROW(load_set_system(path_), std::runtime_error);
}

TEST_F(IoTest, RejectsGarbage) {
  std::ofstream out(path_, std::ios::binary);
  out << "this is not a dataset";
  out.close();
  EXPECT_THROW(load_set_system(path_), std::runtime_error);
}

TEST_F(IoTest, LoadedSystemBehavesIdentically) {
  const auto original = bds::testing::random_set_system(40, 60, 0.2, 4);
  save_set_system(*original, path_);
  const auto loaded = load_set_system(path_);
  const CoverageOracle a(original);
  const CoverageOracle b(loaded);
  const std::vector<ElementId> sol{3, 17, 29};
  EXPECT_DOUBLE_EQ(evaluate_set(a, sol), evaluate_set(b, sol));
}

}  // namespace
}  // namespace bds::data
