#include "objectives/logdet.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/greedy.h"
#include "test_support.h"
#include "util/linalg.h"
#include "util/rng.h"

namespace bds {
namespace {

std::shared_ptr<const PointSet> random_points(std::size_t n, std::size_t dim,
                                              std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> data(n * dim);
  for (float& v : data) v = static_cast<float>(rng.next_double(-1.0, 1.0));
  return std::make_shared<const PointSet>(n, dim, std::move(data));
}

TEST(LogDet, ValidatesConstruction) {
  const auto pts = random_points(5, 2, 1);
  EXPECT_THROW(LogDetOracle(nullptr, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(LogDetOracle(pts, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(LogDetOracle(pts, 1.0, 0.0), std::invalid_argument);
}

TEST(LogDet, KernelProperties) {
  const auto pts = random_points(6, 3, 2);
  const LogDetOracle oracle(pts, 1.0, 0.5);
  for (ElementId a = 0; a < 6; ++a) {
    EXPECT_DOUBLE_EQ(oracle.kernel(a, a), 1.0);
    for (ElementId b = 0; b < 6; ++b) {
      EXPECT_DOUBLE_EQ(oracle.kernel(a, b), oracle.kernel(b, a));
      EXPECT_GT(oracle.kernel(a, b), 0.0);
      EXPECT_LE(oracle.kernel(a, b), 1.0);
    }
  }
}

TEST(LogDet, FirstGainIsClosedForm) {
  // f({x}) = 1/2 log(1 + k(x,x)/sigma^2) = 1/2 log(1 + 1/noise).
  const auto pts = random_points(4, 2, 3);
  const double noise = 0.7;
  LogDetOracle oracle(pts, 1.0, noise);
  const double expected = 0.5 * std::log(1.0 + 1.0 / noise);
  EXPECT_NEAR(oracle.gain(2), expected, 1e-12);
  EXPECT_NEAR(oracle.add(2), expected, 1e-12);
}

TEST(LogDet, ValueMatchesDirectDeterminant) {
  // Cross-check against a one-shot Cholesky of I + K_S / noise.
  const auto pts = random_points(10, 3, 5);
  const double noise = 0.5;
  LogDetOracle oracle(pts, 1.2, noise);
  const std::vector<ElementId> picks{1, 4, 7, 9};
  for (const ElementId x : picks) oracle.add(x);

  const std::size_t s = picks.size();
  std::vector<double> m(s * s);
  for (std::size_t i = 0; i < s; ++i) {
    for (std::size_t j = 0; j < s; ++j) {
      m[i * s + j] = oracle.kernel(picks[i], picks[j]) / noise +
                     (i == j ? 1.0 : 0.0);
    }
  }
  EXPECT_NEAR(oracle.value(), 0.5 * util::cholesky_log_det(m, s), 1e-9);
}

TEST(LogDet, ReaddIsFree) {
  const auto pts = random_points(5, 2, 7);
  LogDetOracle oracle(pts, 1.0, 1.0);
  oracle.add(3);
  EXPECT_DOUBLE_EQ(oracle.gain(3), 0.0);
  EXPECT_DOUBLE_EQ(oracle.add(3), 0.0);
}

TEST(LogDet, DuplicatePointsGainAlmostNothingSecondTime) {
  // Two identical points: once one is chosen, the other is fully predicted
  // (up to noise) and its gain collapses.
  std::vector<float> data{0.5f, 0.5f, 0.5f, 0.5f, -1.0f, 2.0f};
  const auto pts = std::make_shared<const PointSet>(3, 2, std::move(data));
  LogDetOracle oracle(pts, 1.0, 0.1);
  const double solo = oracle.gain(0);
  oracle.add(0);
  EXPECT_LT(oracle.gain(1), 0.3 * solo);  // near-duplicate ~ predicted
  EXPECT_GT(oracle.gain(2), 0.8 * solo);  // far point keeps its value
}

TEST(LogDet, CloneIsIndependent) {
  const auto pts = random_points(8, 2, 9);
  LogDetOracle oracle(pts, 1.0, 0.5);
  oracle.add(0);
  const auto copy = oracle.clone();
  copy->add(5);
  EXPECT_GT(copy->value(), oracle.value());
  EXPECT_NEAR(oracle.value(), 0.5 * std::log(1.0 + 2.0), 1e-9);
}

class LogDetProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LogDetProperty, IsMonotoneSubmodular) {
  const auto pts = random_points(12, 3, GetParam());
  const LogDetOracle proto(pts, 1.0, 0.5);
  EXPECT_EQ(testing::count_submodularity_violations(proto, GetParam(), 40,
                                                    1e-8),
            0);
  EXPECT_EQ(testing::count_monotonicity_violations(proto, GetParam(), 20,
                                                   1e-8),
            0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LogDetProperty,
                         ::testing::Values(41, 42, 43, 44, 45));

TEST(LogDet, GreedySelectsDiversePoints) {
  // Two tight clusters of 5 points each: greedy k=2 takes one per cluster.
  std::vector<float> data;
  util::Rng rng(11);
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < 5; ++i) {
      data.push_back(static_cast<float>(c * 10.0 + 0.01 * rng.next_double()));
      data.push_back(static_cast<float>(c * 10.0 + 0.01 * rng.next_double()));
    }
  }
  const auto pts = std::make_shared<const PointSet>(10, 2, std::move(data));
  LogDetOracle oracle(pts, 1.0, 0.2);
  const auto result = lazy_greedy(oracle, testing::iota_ids(10), 2, {true});
  ASSERT_EQ(result.size(), 2u);
  const bool one_per_cluster = (result.picks[0] < 5) != (result.picks[1] < 5);
  EXPECT_TRUE(one_per_cluster);
}

TEST(LogDet, LazyMatchesNaiveGreedy) {
  const auto pts = random_points(25, 3, 13);
  const LogDetOracle proto(pts, 1.0, 0.5);
  auto o1 = proto.clone();
  const auto naive = greedy(*o1, testing::iota_ids(25), 6, {true});
  auto o2 = proto.clone();
  const auto lazy = lazy_greedy(*o2, testing::iota_ids(25), 6, {true});
  EXPECT_EQ(naive.picks, lazy.picks);
}

}  // namespace
}  // namespace bds
