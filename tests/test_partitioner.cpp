#include "dist/partitioner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <vector>

#include "test_support.h"

namespace bds::dist {
namespace {

std::vector<ElementId> items(std::size_t n) { return testing::iota_ids(n); }

// Flattens a partition into (element -> machines holding it).
std::map<ElementId, std::vector<std::size_t>> placement(const Partition& p) {
  std::map<ElementId, std::vector<std::size_t>> where;
  for (std::size_t m = 0; m < p.size(); ++m) {
    for (const ElementId e : p[m]) where[e].push_back(m);
  }
  return where;
}

TEST(PartitionUniform, EveryItemPlacedExactlyOnce) {
  util::Rng rng(1);
  const auto ids = items(1000);
  const auto p = partition_uniform(ids, 7, rng);
  ASSERT_EQ(p.size(), 7u);
  const auto where = placement(p);
  EXPECT_EQ(where.size(), 1000u);
  for (const auto& [e, machines] : where) EXPECT_EQ(machines.size(), 1u);
}

TEST(PartitionUniform, SingleMachineGetsEverything) {
  util::Rng rng(2);
  const auto ids = items(50);
  const auto p = partition_uniform(ids, 1, rng);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0].size(), 50u);
}

TEST(PartitionUniform, EmptyItems) {
  util::Rng rng(3);
  const auto p = partition_uniform({}, 4, rng);
  ASSERT_EQ(p.size(), 4u);
  for (const auto& shard : p) EXPECT_TRUE(shard.empty());
}

TEST(PartitionUniform, LoadsAreBalancedInExpectation) {
  util::Rng rng(4);
  const auto ids = items(100'000);
  const auto p = partition_uniform(ids, 10, rng);
  const auto stats = analyze_partition(p);
  EXPECT_EQ(stats.total_slots, 100'000u);
  // Each machine expects 10k items; 5 sigma ~ 475.
  EXPECT_GT(stats.min_load, 9'500u);
  EXPECT_LT(stats.max_load, 10'500u);
}

TEST(PartitionUniform, DeterministicGivenRngState) {
  const auto ids = items(500);
  util::Rng a(42), b(42);
  EXPECT_EQ(partition_uniform(ids, 5, a), partition_uniform(ids, 5, b));
}

TEST(PartitionUniform, DifferentSeedsDiffer) {
  const auto ids = items(500);
  util::Rng a(1), b(2);
  EXPECT_NE(partition_uniform(ids, 5, a), partition_uniform(ids, 5, b));
}

class MultiplicityTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MultiplicityTest, EachItemOnExactlyCDistinctMachines) {
  const std::size_t c = GetParam();
  util::Rng rng(5);
  const auto ids = items(2'000);
  const auto p = partition_multiplicity(ids, 16, c, rng);
  const auto where = placement(p);
  EXPECT_EQ(where.size(), 2'000u);
  for (const auto& [e, machines] : where) {
    EXPECT_EQ(machines.size(), std::min<std::size_t>(c, 16));
    auto sorted = machines;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end())
        << "machines must be distinct for element " << e;
  }
}

INSTANTIATE_TEST_SUITE_P(Multiplicities, MultiplicityTest,
                         ::testing::Values(1u, 2u, 3u, 8u, 16u, 40u));

TEST(PartitionMultiplicity, MultiplicityOneEqualsUniform) {
  const auto ids = items(300);
  util::Rng a(7), b(7);
  EXPECT_EQ(partition_multiplicity(ids, 6, 1, a),
            partition_uniform(ids, 6, b));
}

TEST(PartitionMultiplicity, TotalSlotsScaleWithC) {
  util::Rng rng(8);
  const auto ids = items(1'000);
  const auto p = partition_multiplicity(ids, 20, 5, rng);
  EXPECT_EQ(analyze_partition(p).total_slots, 5'000u);
}

TEST(PartitionRoundRobin, DeterministicBalancedSplit) {
  const auto ids = items(103);
  const auto p = partition_round_robin(ids, 10);
  const auto stats = analyze_partition(p);
  EXPECT_EQ(stats.total_slots, 103u);
  EXPECT_EQ(stats.max_load - stats.min_load, 1u);
  // First item goes to machine 0, second to 1, ...
  EXPECT_EQ(p[0][0], 0u);
  EXPECT_EQ(p[1][0], 1u);
  EXPECT_EQ(p[0][1], 10u);
}

TEST(AnalyzePartition, EmptyPartition) {
  const auto stats = analyze_partition({});
  EXPECT_EQ(stats.machines, 0u);
  EXPECT_EQ(stats.total_slots, 0u);
}

TEST(AnalyzePartition, MeanLoad) {
  Partition p{{1, 2, 3}, {4}, {}};
  const auto stats = analyze_partition(p);
  EXPECT_EQ(stats.machines, 3u);
  EXPECT_EQ(stats.min_load, 0u);
  EXPECT_EQ(stats.max_load, 3u);
  EXPECT_NEAR(stats.mean_load, 4.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace bds::dist
