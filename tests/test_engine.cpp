// Golden suite for the round-program engine (dist/engine.h):
//
//   1. every distributed algorithm, now a thin RoundProgram spec-builder,
//      must reproduce the frozen pre-engine loops (tests/legacy_reference.h)
//      bit-for-bit — solutions, values, RoundTraces and all deterministic
//      ExecutionStats fields — across oracle modes, fault plans and seeds;
//   2. checkpoint/resume: a run killed after round i and resumed from its
//      snapshot produces exactly the uninterrupted run's output, including
//      under injected faults;
//   3. eval accounting: per-round central_evals are deltas that sum to the
//      coordinator oracle's total, and best-of-machines merge probes are
//      metered into RoundStats::merge_evals without polluting total_evals().
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/baselines.h"
#include "core/bicriteria.h"
#include "core/bound_heap.h"
#include "core/matroid.h"
#include "dist/engine.h"
#include "legacy_reference.h"
#include "objectives/coverage.h"
#include "test_support.h"

namespace bds {
namespace {

// This suite compares engine runs against the frozen pre-engine loops down
// to exact eval counts; the cross-round bound substrate (core/bound_heap.h)
// deliberately changes eval counts, so pin it off for the whole binary.
// Lazy-on selection identity has its own suite (test_lazy_bounds.cpp).
const detail::ForcedLazy g_lazy_off(false);

using bds::testing::iota_ids;
using bds::testing::random_set_system;

CoverageOracle make_proto(std::uint64_t instance_seed = 99) {
  return CoverageOracle(random_set_system(60, 140, 0.06, instance_seed));
}

// A fault plan where work can be lost for good (crashes vs a tight retry
// budget): exercises unheard machines and wasted-eval accounting.
dist::FaultPlan lossy_plan(std::uint64_t seed) {
  dist::FaultPlan plan;
  plan.seed = seed;
  plan.crash_probability = 0.25;
  plan.drop_probability = 0.1;
  return plan;
}

struct FaultScenario {
  const char* name;
  dist::FaultPlan plan;
  dist::RetryPolicy retry;
};

std::vector<FaultScenario> fault_scenarios() {
  dist::RetryPolicy unlimited;
  unlimited.max_attempts = 0;
  dist::RetryPolicy tight;
  tight.max_attempts = 2;
  tight.backoff_base_seconds = 0.001;
  return {
      {"healthy", dist::FaultPlan{}, dist::RetryPolicy{}},
      {"recoverable", dist::FaultPlan::recoverable(7), unlimited},
      {"lossy", lossy_plan(11), tight},
  };
}

RuntimeOptions make_runtime(std::uint64_t seed, WorkerOracleMode mode,
                            const FaultScenario& scenario) {
  RuntimeOptions rt;
  rt.seed = seed;
  rt.threads = 2;
  rt.worker_oracle = mode;
  rt.faults = scenario.plan;
  rt.retry = scenario.retry;
  return rt;
}

void expect_same_round_stats(const dist::ExecutionStats& want,
                             const dist::ExecutionStats& got,
                             bool compare_merge_evals = false) {
  ASSERT_EQ(want.rounds.size(), got.rounds.size());
  for (std::size_t i = 0; i < want.rounds.size(); ++i) {
    const dist::RoundStats& w = want.rounds[i];
    const dist::RoundStats& g = got.rounds[i];
    EXPECT_EQ(w.round_index, g.round_index) << "round " << i;
    EXPECT_EQ(w.machines_used, g.machines_used) << "round " << i;
    EXPECT_EQ(w.elements_scattered, g.elements_scattered) << "round " << i;
    EXPECT_EQ(w.elements_gathered, g.elements_gathered) << "round " << i;
    EXPECT_EQ(w.worker_evals, g.worker_evals) << "round " << i;
    EXPECT_EQ(w.max_machine_evals, g.max_machine_evals) << "round " << i;
    EXPECT_EQ(w.max_machine_items, g.max_machine_items) << "round " << i;
    EXPECT_EQ(w.bytes_cloned, g.bytes_cloned) << "round " << i;
    EXPECT_EQ(w.peak_worker_state_bytes, g.peak_worker_state_bytes)
        << "round " << i;
    EXPECT_EQ(w.wasted_evals, g.wasted_evals) << "round " << i;
    EXPECT_EQ(w.retries, g.retries) << "round " << i;
    EXPECT_EQ(w.faults_injected, g.faults_injected) << "round " << i;
    EXPECT_EQ(w.machines_unheard, g.machines_unheard) << "round " << i;
    EXPECT_EQ(w.backoff_seconds, g.backoff_seconds) << "round " << i;
    EXPECT_EQ(w.central_evals, g.central_evals) << "round " << i;
    EXPECT_EQ(w.central_selected, g.central_selected) << "round " << i;
    if (compare_merge_evals) {
      EXPECT_EQ(w.merge_evals, g.merge_evals) << "round " << i;
    }
  }
}

void expect_same_result(const DistributedResult& want,
                        const DistributedResult& got,
                        bool compare_merge_evals = false) {
  EXPECT_EQ(want.solution, got.solution);
  EXPECT_EQ(want.value, got.value);  // bit-identical, not approximate
  ASSERT_EQ(want.rounds.size(), got.rounds.size());
  for (std::size_t i = 0; i < want.rounds.size(); ++i) {
    const RoundTrace& w = want.rounds[i];
    const RoundTrace& g = got.rounds[i];
    EXPECT_EQ(w.round, g.round) << "trace " << i;
    EXPECT_EQ(w.alpha, g.alpha) << "trace " << i;
    EXPECT_EQ(w.machines, g.machines) << "trace " << i;
    EXPECT_EQ(w.machine_budget, g.machine_budget) << "trace " << i;
    EXPECT_EQ(w.central_budget, g.central_budget) << "trace " << i;
    EXPECT_EQ(w.items_added, g.items_added) << "trace " << i;
    EXPECT_EQ(w.value_after, g.value_after) << "trace " << i;
  }
  expect_same_round_stats(want.stats, got.stats, compare_merge_evals);
}

// ---------------------------------------------------------------------------
// 1. Golden: engine vs frozen legacy loops

class EngineGolden
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int, int>> {
 protected:
  std::uint64_t seed() const { return std::get<0>(GetParam()); }
  WorkerOracleMode mode() const {
    return std::get<1>(GetParam()) == 0 ? WorkerOracleMode::kShardView
                                        : WorkerOracleMode::kClone;
  }
  FaultScenario scenario() const {
    return fault_scenarios()[static_cast<std::size_t>(std::get<2>(GetParam()))];
  }
  RuntimeOptions runtime() const {
    return make_runtime(seed(), mode(), scenario());
  }
};

INSTANTIATE_TEST_SUITE_P(
    Matrix, EngineGolden,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3),
                       ::testing::Values(0, 1), ::testing::Values(0, 1, 2)),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == 0 ? "_view" : "_clone") + "_" +
             fault_scenarios()[static_cast<std::size_t>(
                                   std::get<2>(info.param))]
                 .name;
    });

TEST_P(EngineGolden, BicriteriaAllModes) {
  const auto proto = make_proto();
  const auto ground = iota_ids(proto.ground_size());
  for (const BicriteriaMode m :
       {BicriteriaMode::kTheory, BicriteriaMode::kMultiplicity,
        BicriteriaMode::kHybrid, BicriteriaMode::kPractical}) {
    BicriteriaConfig config;
    config.mode = m;
    config.k = 4;
    config.rounds = 2;
    config.epsilon = 0.3;
    config.output_items = m == BicriteriaMode::kPractical ? 9 : 0;  // 9 % 2
    config.runtime = runtime();
    expect_same_result(legacy::bicriteria_greedy(proto, ground, config),
                       bicriteria_greedy(proto, ground, config));
  }
}

TEST_P(EngineGolden, OneRoundFamily) {
  const auto proto = make_proto();
  const auto ground = iota_ids(proto.ground_size());
  OneRoundConfig config;
  config.k = 5;
  config.budget_factor = 1.5;
  config.runtime = runtime();
  expect_same_result(legacy::greedi(proto, ground, config),
                     greedi(proto, ground, config));
  expect_same_result(legacy::rand_greedi(proto, ground, config),
                     rand_greedi(proto, ground, config));
  expect_same_result(legacy::pseudo_greedy(proto, ground, config),
                     pseudo_greedy(proto, ground, config));
}

TEST_P(EngineGolden, NaiveDistributed) {
  const auto proto = make_proto();
  const auto ground = iota_ids(proto.ground_size());
  NaiveDistributedConfig config;
  config.k = 4;
  config.epsilon = 0.2;  // 2 rounds
  config.runtime = runtime();
  expect_same_result(legacy::naive_distributed_greedy(proto, ground, config),
                     naive_distributed_greedy(proto, ground, config));
}

TEST_P(EngineGolden, ParallelAlg) {
  const auto proto = make_proto();
  const auto ground = iota_ids(proto.ground_size());
  ParallelAlgConfig config;
  config.k = 4;
  config.epsilon = 0.4;  // 3 rounds
  config.runtime = runtime();
  expect_same_result(legacy::parallel_alg(proto, ground, config),
                     parallel_alg(proto, ground, config));
}

TEST_P(EngineGolden, GreedyScaling) {
  const auto proto = make_proto();
  const auto ground = iota_ids(proto.ground_size());
  GreedyScalingConfig config;
  config.k = 5;
  config.epsilon = 0.3;
  config.runtime = runtime();
  expect_same_result(legacy::greedy_scaling(proto, ground, config),
                     greedy_scaling(proto, ground, config));
}

TEST_P(EngineGolden, RandGreediMatroid) {
  const auto proto = make_proto();
  const auto ground = iota_ids(proto.ground_size());
  std::vector<std::uint32_t> group(proto.ground_size());
  for (std::size_t i = 0; i < group.size(); ++i) {
    group[i] = static_cast<std::uint32_t>(i % 3);
  }
  const PartitionMatroid constraint(group, {2, 2, 2});
  MatroidDistributedConfig config;
  config.runtime = runtime();
  expect_same_result(
      legacy::rand_greedi_matroid(proto, ground, constraint, config),
      rand_greedi_matroid(proto, ground, constraint, config));
}

TEST(EngineGolden, SqrtModularOracleAgrees) {
  // Non-coverage objective: exercises the clone fallback of shard views.
  std::vector<double> weights;
  for (int i = 0; i < 40; ++i) weights.push_back(1.0 + (i * 37) % 11);
  const bds::testing::SqrtModularOracle proto(weights);
  const auto ground = iota_ids(proto.ground_size());
  NaiveDistributedConfig config;
  config.k = 3;
  config.epsilon = 0.2;
  config.runtime.seed = 5;
  expect_same_result(legacy::naive_distributed_greedy(proto, ground, config),
                     naive_distributed_greedy(proto, ground, config));
}

// ---------------------------------------------------------------------------
// 2. Checkpoint/resume

// Runs `run` three ways: uninterrupted; halted after `kill_round` (capturing
// the last snapshot through the sink); resumed from that snapshot. The
// resumed run must equal the uninterrupted one exactly.
template <typename RunFn>
void check_resume_equivalence(RunFn run, const RuntimeOptions& base,
                              std::size_t kill_round) {
  const DistributedResult full = run(base);

  RuntimeOptions halted = base;
  auto last = std::make_shared<std::optional<Checkpoint>>();
  halted.checkpoint_sink = [last](const Checkpoint& c) { *last = c; };
  halted.halt_after_round = kill_round;
  const DistributedResult partial = run(halted);
  ASSERT_TRUE(last->has_value());
  EXPECT_EQ((*last)->rounds_completed, kill_round);
  EXPECT_LE(partial.rounds.size(), full.rounds.size());

  // Round-trip the snapshot through its text serialization, as the CLI does.
  const Checkpoint restored =
      Checkpoint::deserialize((*last)->serialize());

  RuntimeOptions resumed = base;
  resumed.resume_from = std::make_shared<const Checkpoint>(restored);
  expect_same_result(full, run(resumed), /*compare_merge_evals=*/true);
}

TEST(EngineResume, BicriteriaPractical) {
  const auto proto = make_proto();
  const auto ground = iota_ids(proto.ground_size());
  BicriteriaConfig config;
  config.k = 4;
  config.rounds = 3;
  config.output_items = 10;  // remainder lands in the last round
  RuntimeOptions base;
  base.seed = 3;
  for (const std::size_t kill : {std::size_t{1}, std::size_t{2}}) {
    check_resume_equivalence(
        [&](const RuntimeOptions& rt) {
          BicriteriaConfig c = config;
          c.runtime = rt;
          return bicriteria_greedy(proto, ground, c);
        },
        base, kill);
  }
}

TEST(EngineResume, BicriteriaHybridAdoptedZeroGainMembers) {
  // Hybrid adoption commits zero-gain items into the coordinator oracle
  // without reporting them in the solution — the case Checkpoint::
  // coordinator_set exists for.
  const auto proto = make_proto();
  const auto ground = iota_ids(proto.ground_size());
  BicriteriaConfig config;
  config.mode = BicriteriaMode::kHybrid;
  config.k = 3;
  config.rounds = 3;
  config.epsilon = 0.4;
  RuntimeOptions base;
  base.seed = 4;
  check_resume_equivalence(
      [&](const RuntimeOptions& rt) {
        BicriteriaConfig c = config;
        c.runtime = rt;
        return bicriteria_greedy(proto, ground, c);
      },
      base, 2);
}

TEST(EngineResume, ParallelAlgPoolAndBestMachineSurvive) {
  const auto proto = make_proto();
  const auto ground = iota_ids(proto.ground_size());
  ParallelAlgConfig config;
  config.k = 4;
  config.epsilon = 0.3;  // 4 rounds
  RuntimeOptions base;
  base.seed = 6;
  for (const std::size_t kill : {std::size_t{1}, std::size_t{3}}) {
    check_resume_equivalence(
        [&](const RuntimeOptions& rt) {
          ParallelAlgConfig c = config;
          c.runtime = rt;
          return parallel_alg(proto, ground, c);
        },
        base, kill);
  }
}

TEST(EngineResume, GreedyScalingThresholdScheduleSurvives) {
  const auto proto = make_proto();
  const auto ground = iota_ids(proto.ground_size());
  GreedyScalingConfig config;
  config.k = 6;
  config.epsilon = 0.25;
  RuntimeOptions base;
  base.seed = 9;
  check_resume_equivalence(
      [&](const RuntimeOptions& rt) {
        GreedyScalingConfig c = config;
        c.runtime = rt;
        return greedy_scaling(proto, ground, c);
      },
      base, 2);
}

TEST(EngineResume, UnderInjectedFaults) {
  const auto proto = make_proto();
  const auto ground = iota_ids(proto.ground_size());
  NaiveDistributedConfig config;
  config.k = 4;
  config.epsilon = 0.1;  // 3 rounds
  RuntimeOptions base;
  base.seed = 12;
  base.faults = dist::FaultPlan::recoverable(21);
  base.retry.max_attempts = 0;  // unlimited
  check_resume_equivalence(
      [&](const RuntimeOptions& rt) {
        NaiveDistributedConfig c = config;
        c.runtime = rt;
        return naive_distributed_greedy(proto, ground, c);
      },
      base, 2);

  base.faults = lossy_plan(31);
  base.retry.max_attempts = 2;
  check_resume_equivalence(
      [&](const RuntimeOptions& rt) {
        NaiveDistributedConfig c = config;
        c.runtime = rt;
        return naive_distributed_greedy(proto, ground, c);
      },
      base, 1);
}

TEST(EngineResume, RejectsMismatchedProgramOrSeed) {
  const auto proto = make_proto();
  const auto ground = iota_ids(proto.ground_size());
  NaiveDistributedConfig config;
  config.k = 3;
  config.epsilon = 0.2;
  config.runtime.seed = 5;
  auto snapshot = std::make_shared<std::optional<Checkpoint>>();
  config.runtime.checkpoint_sink = [snapshot](const Checkpoint& c) {
    *snapshot = c;
  };
  naive_distributed_greedy(proto, ground, config);
  ASSERT_TRUE(snapshot->has_value());

  NaiveDistributedConfig resumed = config;
  resumed.runtime.checkpoint_sink = nullptr;
  resumed.runtime.resume_from =
      std::make_shared<const Checkpoint>(**snapshot);
  resumed.runtime.seed = 6;  // wrong seed
  EXPECT_THROW(naive_distributed_greedy(proto, ground, resumed),
               std::invalid_argument);

  ParallelAlgConfig other;  // wrong program
  other.k = 3;
  other.epsilon = 0.5;
  other.runtime.seed = 5;
  other.runtime.resume_from = std::make_shared<const Checkpoint>(**snapshot);
  EXPECT_THROW(parallel_alg(proto, ground, other), std::invalid_argument);
}

TEST(EngineCheckpoint, SerializationRoundTripsEveryField) {
  const auto proto = make_proto();
  const auto ground = iota_ids(proto.ground_size());
  BicriteriaConfig config;
  config.k = 4;
  config.rounds = 2;
  config.output_items = 8;
  config.runtime.seed = 17;
  config.runtime.faults = dist::FaultPlan::recoverable(5);
  config.runtime.retry.max_attempts = 0;
  std::vector<Checkpoint> snapshots;
  config.runtime.checkpoint_sink = [&snapshots](const Checkpoint& c) {
    snapshots.push_back(c);
  };
  bicriteria_greedy(proto, ground, config);
  ASSERT_EQ(snapshots.size(), 2u);

  for (const Checkpoint& c : snapshots) {
    const Checkpoint r = Checkpoint::deserialize(c.serialize());
    EXPECT_EQ(c.program_id, r.program_id);
    EXPECT_EQ(c.seed, r.seed);
    EXPECT_EQ(c.rounds_completed, r.rounds_completed);
    EXPECT_EQ(c.rng_state, r.rng_state);
    EXPECT_EQ(c.solution, r.solution);
    EXPECT_EQ(c.coordinator_set, r.coordinator_set);
    EXPECT_EQ(c.pool, r.pool);
    EXPECT_EQ(c.best_machine, r.best_machine);
    EXPECT_EQ(c.best_machine_value, r.best_machine_value);
    ASSERT_EQ(c.rounds.size(), r.rounds.size());
    for (std::size_t i = 0; i < c.rounds.size(); ++i) {
      EXPECT_EQ(c.rounds[i].value_after, r.rounds[i].value_after);
      EXPECT_EQ(c.rounds[i].alpha, r.rounds[i].alpha);
    }
    expect_same_round_stats(c.stats, r.stats, /*compare_merge_evals=*/true);
    ASSERT_EQ(c.stats.trace.rounds.size(), r.stats.trace.rounds.size());
    for (std::size_t i = 0; i < c.stats.trace.rounds.size(); ++i) {
      const dist::RoundSpan& w = c.stats.trace.rounds[i];
      const dist::RoundSpan& g = r.stats.trace.rounds[i];
      EXPECT_EQ(w.round_index, g.round_index);
      EXPECT_EQ(w.retries, g.retries);
      EXPECT_EQ(w.faults_injected, g.faults_injected);
      EXPECT_EQ(w.unheard, g.unheard);
      ASSERT_EQ(w.machines.size(), g.machines.size());
      for (std::size_t m = 0; m < w.machines.size(); ++m) {
        EXPECT_EQ(w.machines[m].heard, g.machines[m].heard);
        EXPECT_EQ(w.machines[m].degraded, g.machines[m].degraded);
        EXPECT_EQ(w.machines[m].summary_size, g.machines[m].summary_size);
        ASSERT_EQ(w.machines[m].attempts.size(),
                  g.machines[m].attempts.size());
        for (std::size_t a = 0; a < w.machines[m].attempts.size(); ++a) {
          EXPECT_EQ(w.machines[m].attempts[a].fault,
                    g.machines[m].attempts[a].fault);
          EXPECT_EQ(w.machines[m].attempts[a].delivered,
                    g.machines[m].attempts[a].delivered);
          EXPECT_EQ(w.machines[m].attempts[a].evals,
                    g.machines[m].attempts[a].evals);
        }
      }
    }
  }
}

TEST(EngineCheckpoint, FileRoundTripAndMalformedInput) {
  Checkpoint c;
  c.program_id = "naive-distributed";
  c.seed = 42;
  c.rounds_completed = 1;
  c.rng_state = {1, 2, 3, 4};
  c.solution = {5, 7};
  c.coordinator_set = {5, 7, 9};
  c.best_machine_value = 1.5;
  c.stats.rounds.resize(1);
  c.stats.rounds[0].worker_evals = 10;
  c.stats.trace.rounds.resize(1);
  c.rounds.resize(1);

  const std::string path = ::testing::TempDir() + "/bds_engine_ckpt_test";
  save_checkpoint_file(c, path);
  const Checkpoint r = load_checkpoint_file(path);
  EXPECT_EQ(r.program_id, c.program_id);
  EXPECT_EQ(r.solution, c.solution);
  EXPECT_EQ(r.coordinator_set, c.coordinator_set);
  EXPECT_EQ(r.stats.rounds[0].worker_evals, 10u);
  std::remove(path.c_str());

  EXPECT_THROW(load_checkpoint_file(path + ".does-not-exist"),
               std::runtime_error);
  EXPECT_THROW(Checkpoint::deserialize("not a checkpoint"),
               std::invalid_argument);
  EXPECT_THROW(Checkpoint::deserialize("bdsckpt 999\nend\n"),
               std::invalid_argument);
  std::string truncated = c.serialize();
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW(Checkpoint::deserialize(truncated), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// 3. Eval accounting (the one_round_merge delta fix + merge_evals metering)

TEST(EngineEvalAccounting, PerRoundCentralDeltasSumToCoordinatorTotal) {
  const auto proto = make_proto();
  const auto ground = iota_ids(proto.ground_size());

  const auto check = [](const DistributedResult& result) {
    EXPECT_GT(result.coordinator_evals, 0u);
    EXPECT_EQ(result.stats.total_central_evals(), result.coordinator_evals);
  };

  {
    OneRoundConfig config;
    config.k = 5;
    check(greedi(proto, ground, config));
    check(rand_greedi(proto, ground, config));
  }
  {
    BicriteriaConfig config;
    config.k = 4;
    config.rounds = 3;
    config.output_items = 9;
    check(bicriteria_greedy(proto, ground, config));
  }
  {
    NaiveDistributedConfig config;
    config.k = 4;
    config.epsilon = 0.2;
    check(naive_distributed_greedy(proto, ground, config));
  }
  {
    // ParallelAlg folds its single deferred filter into the last round.
    ParallelAlgConfig config;
    config.k = 4;
    config.epsilon = 0.4;
    check(parallel_alg(proto, ground, config));
  }
  {
    GreedyScalingConfig config;
    config.k = 5;
    config.epsilon = 0.3;
    check(greedy_scaling(proto, ground, config));
  }
}

TEST(EngineEvalAccounting, MergeProbesMeteredSeparately) {
  const auto proto = make_proto();
  const auto ground = iota_ids(proto.ground_size());

  OneRoundConfig config;
  config.k = 5;
  const DistributedResult result = greedi(proto, ground, config);

  // The best-of probes re-score every delivered summary's k-prefix: at
  // least one machine delivered, so probes must have been charged...
  EXPECT_GT(result.stats.total_merge_evals(), 0u);
  // ...into merge_evals only: total_evals() remains worker + central.
  EXPECT_EQ(result.stats.total_evals(),
            result.stats.total_worker_evals() +
                result.stats.total_central_evals());
  // Probe cost: Σ over delivered machines of min(|summary|, k).
  std::uint64_t expected_probes = 0;
  for (const auto& span : result.stats.trace.rounds) {
    for (const auto& machine : span.machines) {
      expected_probes +=
          std::min<std::uint64_t>(machine.summary_size, config.k);
    }
  }
  EXPECT_EQ(result.stats.total_merge_evals(), expected_probes);

  // Plain-merge programs never probe.
  NaiveDistributedConfig naive;
  naive.k = 4;
  naive.epsilon = 0.2;
  EXPECT_EQ(naive_distributed_greedy(proto, ground, naive)
                .stats.total_merge_evals(),
            0u);
}

TEST(EngineEvalAccounting, HaltedRunReportsPartialTail) {
  const auto proto = make_proto();
  const auto ground = iota_ids(proto.ground_size());
  NaiveDistributedConfig config;
  config.k = 4;
  config.epsilon = 0.1;  // 3 rounds
  config.runtime.halt_after_round = 1;
  const DistributedResult partial =
      naive_distributed_greedy(proto, ground, config);
  EXPECT_EQ(partial.rounds.size(), 1u);
  EXPECT_EQ(partial.stats.rounds.size(), 1u);
  EXPECT_EQ(partial.coordinator_evals, partial.stats.total_central_evals());
}

TEST(Engine, DefaultMachineCountMatchesFootnote3) {
  EXPECT_EQ(default_machine_count(0, 10), 1u);
  EXPECT_EQ(default_machine_count(100, 4), 5u);   // ceil(sqrt(25))
  EXPECT_EQ(default_machine_count(101, 4), 6u);   // ceil(sqrt(25.25))
  EXPECT_EQ(default_machine_count(50, 0), 8u);    // budget clamped to 1
}

}  // namespace
}  // namespace bds
