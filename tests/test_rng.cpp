#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace bds::util {
namespace {

TEST(SplitMix64, MatchesReferenceVector) {
  // Reference values for seed 0 from the canonical splitmix64.c.
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64_next(state), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitmix64_next(state), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(splitmix64_next(state), 0x06c45d188009454fULL);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LT(equal, 4);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng rng(11);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kDraws = 100'000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBuckets)];
  const double expected = double(kDraws) / kBuckets;
  for (const int c : counts) {
    EXPECT_NEAR(c, expected, 5 * std::sqrt(expected));
  }
}

TEST(Rng, NextInCoversInclusiveRange) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Rng, NextDoubleRangeRespectsBounds) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double(-2.5, 4.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 4.5);
  }
}

TEST(Rng, NextBoolExtremes) {
  Rng rng(21);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
    EXPECT_FALSE(rng.next_bool(-1.0));
    EXPECT_TRUE(rng.next_bool(2.0));
  }
}

TEST(Rng, NextBoolMatchesProbability) {
  Rng rng(23);
  int hits = 0;
  constexpr int kTrials = 50'000;
  for (int i = 0; i < kTrials; ++i) hits += rng.next_bool(0.3);
  EXPECT_NEAR(double(hits) / kTrials, 0.3, 0.01);
}

TEST(Rng, SplitProducesIndependentStreams) {
  Rng parent(31);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  EXPECT_NE(child1.state(), child2.state());
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (child1.next_u64() == child2.next_u64());
  EXPECT_LT(equal, 4);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(55), b(55);
  Rng ca = a.split(), cb = b.split();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(37);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(std::span<int>(shuffled));
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ShuffleHandlesDegenerateSizes) {
  Rng rng(39);
  std::vector<int> empty;
  rng.shuffle(std::span<int>(empty));
  std::vector<int> one{7};
  rng.shuffle(std::span<int>(one));
  EXPECT_EQ(one[0], 7);
}

TEST(Rng, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(41);
  for (const auto [n, k] : {std::pair<std::uint64_t, std::uint64_t>{100, 5},
                            {100, 50},
                            {100, 100},
                            {1'000'000, 10}}) {
    const auto sample = rng.sample_without_replacement(n, k);
    ASSERT_EQ(sample.size(), k);
    std::set<std::uint64_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), k);
    for (const auto v : sample) EXPECT_LT(v, n);
  }
}

TEST(Rng, SampleWithoutReplacementZero) {
  Rng rng(43);
  EXPECT_TRUE(rng.sample_without_replacement(10, 0).empty());
}

TEST(Rng, SampleWithoutReplacementIsUniformish) {
  // Each of 10 elements should appear in a size-5 sample with p = 0.5.
  Rng rng(47);
  std::vector<int> counts(10, 0);
  constexpr int kTrials = 20'000;
  for (int t = 0; t < kTrials; ++t) {
    for (const auto v : rng.sample_without_replacement(10, 5)) ++counts[v];
  }
  for (const int c : counts) {
    EXPECT_NEAR(double(c) / kTrials, 0.5, 0.02);
  }
}

TEST(Mix64, InjectiveOnSmallDomain) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 10'000; ++i) outputs.insert(mix64(i));
  EXPECT_EQ(outputs.size(), 10'000u);
}

}  // namespace
}  // namespace bds::util
