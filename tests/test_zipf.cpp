#include "util/zipf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace bds::util {
namespace {

TEST(Zipf, PmfSumsToOne) {
  const ZipfSampler zipf(1000, 1.1);
  double sum = 0.0;
  for (std::uint64_t i = 0; i < zipf.size(); ++i) sum += zipf.pmf(i);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, PmfIsMonotoneNonIncreasing) {
  const ZipfSampler zipf(500, 0.9);
  for (std::uint64_t i = 1; i < zipf.size(); ++i) {
    EXPECT_GE(zipf.pmf(i - 1) + 1e-15, zipf.pmf(i));
  }
}

TEST(Zipf, PmfRatioMatchesPowerLaw) {
  const double s = 1.3;
  const ZipfSampler zipf(100, s);
  // pmf(0)/pmf(9) should equal (10/1)^s.
  EXPECT_NEAR(zipf.pmf(0) / zipf.pmf(9), std::pow(10.0, s), 1e-6);
}

TEST(Zipf, SamplesStayInRange) {
  const ZipfSampler zipf(64, 1.0);
  Rng rng(3);
  for (int i = 0; i < 10'000; ++i) EXPECT_LT(zipf.sample(rng), 64u);
}

TEST(Zipf, EmpiricalFrequenciesTrackPmf) {
  const ZipfSampler zipf(50, 1.2);
  Rng rng(5);
  constexpr int kDraws = 200'000;
  std::vector<int> counts(50, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.sample(rng)];
  for (std::uint64_t i = 0; i < 10; ++i) {
    const double expected = zipf.pmf(i) * kDraws;
    EXPECT_NEAR(counts[i], expected, 5 * std::sqrt(expected) + 5);
  }
}

TEST(Zipf, ExponentZeroIsUniform) {
  const ZipfSampler zipf(20, 0.0);
  for (std::uint64_t i = 0; i < 20; ++i) {
    EXPECT_NEAR(zipf.pmf(i), 0.05, 1e-12);
  }
}

TEST(Zipf, SingletonAlwaysReturnsZero) {
  const ZipfSampler zipf(1, 2.0);
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.sample(rng), 0u);
  EXPECT_NEAR(zipf.pmf(0), 1.0, 1e-12);
}

TEST(Zipf, DeterministicAcrossInstances) {
  const ZipfSampler a(100, 1.05), b(100, 1.05);
  Rng ra(9), rb(9);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.sample(ra), b.sample(rb));
}

}  // namespace
}  // namespace bds::util
