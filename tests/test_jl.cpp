#include "objectives/jl_projection.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "util/rng.h"
#include "util/stats.h"

namespace bds {
namespace {

PointSet random_points(std::size_t n, std::size_t dim, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> data(n * dim);
  for (float& v : data) v = static_cast<float>(rng.next_double(-1.0, 1.0));
  return PointSet(n, dim, std::move(data));
}

TEST(JlProjection, OutputShape) {
  const auto input = random_points(20, 128, 1);
  const PointSet out = jl_project(input, 16, 7);
  EXPECT_EQ(out.size(), 20u);
  EXPECT_EQ(out.dim(), 16u);
}

TEST(JlProjection, RejectsZeroTargetDim) {
  const auto input = random_points(5, 8, 2);
  EXPECT_THROW(jl_project(input, 0, 1), std::invalid_argument);
}

TEST(JlProjection, DeterministicGivenSeed) {
  const auto input = random_points(10, 64, 3);
  const PointSet a = jl_project(input, 8, 42);
  const PointSet b = jl_project(input, 8, 42);
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t d = 0; d < a.dim(); ++d) {
      EXPECT_FLOAT_EQ(a.point(i)[d], b.point(i)[d]);
    }
  }
}

TEST(JlProjection, DifferentSeedsDiffer) {
  const auto input = random_points(4, 64, 4);
  const PointSet a = jl_project(input, 8, 1);
  const PointSet b = jl_project(input, 8, 2);
  bool any_diff = false;
  for (std::size_t d = 0; d < 8; ++d) {
    any_diff |= (a.point(0)[d] != b.point(0)[d]);
  }
  EXPECT_TRUE(any_diff);
}

TEST(JlProjection, PreservesNormsInExpectation) {
  // E[||Rx||^2] = ||x||^2 for the scaled sign matrix.
  const auto input = random_points(200, 100, 5);
  const PointSet out = jl_project(input, 64, 9);
  util::RunningStat ratio;
  for (std::size_t i = 0; i < input.size(); ++i) {
    const double orig = squared_l2(input.point(i),
                                   std::vector<float>(100, 0.0f));
    const double proj = squared_l2(out.point(i),
                                   std::vector<float>(64, 0.0f));
    if (orig > 0) ratio.add(proj / orig);
  }
  EXPECT_NEAR(ratio.mean(), 1.0, 0.05);
}

TEST(JlProjection, PreservesPairwiseDistancesApproximately) {
  // With target_dim = 256 distortion should be modest for a handful of
  // pairs: within +-35% for the vast majority.
  const auto input = random_points(30, 512, 6);
  const PointSet out = jl_project(input, 256, 11);
  int within = 0, total = 0;
  for (std::size_t i = 0; i < input.size(); ++i) {
    for (std::size_t j = i + 1; j < input.size(); ++j) {
      const double orig = squared_l2(input.point(i), input.point(j));
      const double proj = squared_l2(out.point(i), out.point(j));
      ++total;
      if (proj > 0.65 * orig && proj < 1.35 * orig) ++within;
    }
  }
  EXPECT_GT(double(within) / total, 0.95);
}

TEST(JlProjection, LinearityUnderScaling) {
  // R(2x) = 2 Rx: projecting a scaled copy scales the output.
  PointSet input(2, 32, [] {
    std::vector<float> d(64);
    util::Rng rng(13);
    for (std::size_t i = 0; i < 32; ++i) {
      d[i] = static_cast<float>(rng.next_double(-1.0, 1.0));
      d[32 + i] = 2.0f * d[i];
    }
    return d;
  }());
  const PointSet out = jl_project(input, 8, 17);
  for (std::size_t d = 0; d < 8; ++d) {
    EXPECT_NEAR(out.point(1)[d], 2.0f * out.point(0)[d], 1e-4);
  }
}

}  // namespace
}  // namespace bds
