// The summary cache's certification contract (serve/cache.h): prefix
// answers bit-identical to direct runs at the cached configuration, O(1)
// certified upper bounds for every budget ≤ the cached one, strict key
// invalidation on every certified field, and LRU/replacement mechanics.
#include "serve/cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/registry.h"
#include "data/vectors_gen.h"
#include "objectives/coverage.h"
#include "objectives/exemplar.h"
#include "test_support.h"

namespace bds {
namespace {

using serve::build_summary;
using serve::CachedSummary;
using serve::cache_safe;
using serve::make_key;
using serve::QueryKey;
using serve::QueryKeyHash;
using serve::SummaryCache;
using testing::iota_ids;
using testing::random_set_system;

std::shared_ptr<SubmodularOracle> coverage_proto() {
  return std::make_shared<CoverageOracle>(
      random_set_system(150, 260, 0.04, 77));
}

std::shared_ptr<SubmodularOracle> exemplar_proto() {
  data::LdaVectorsConfig cfg;
  cfg.documents = 140;
  cfg.seed = 77;
  return std::make_shared<ExemplarOracle>(data::make_lda_like_vectors(cfg),
                                          2.0);
}

TEST(ServeCache, CacheSafePredicate) {
  RuntimeOptions runtime;
  EXPECT_TRUE(cache_safe(runtime));

  RuntimeOptions faulted = runtime;
  faulted.faults = dist::FaultPlan::recoverable(3);
  EXPECT_FALSE(cache_safe(faulted));

  RuntimeOptions resumed = runtime;
  resumed.resume_from = std::make_shared<const Checkpoint>();
  EXPECT_FALSE(cache_safe(resumed));

  RuntimeOptions halted = runtime;
  halted.halt_after_round = 1;
  EXPECT_FALSE(cache_safe(halted));
}

TEST(ServeCache, KeyInvalidationOnEveryCertifiedField) {
  RuntimeOptions runtime;
  const QueryKey base =
      make_key("corpus", "coverage", "bicriteria", 0.1, 2, 4, runtime);
  EXPECT_EQ(base, make_key("corpus", "coverage", "bicriteria", 0.1, 2, 4,
                           runtime));

  std::vector<QueryKey> variants;
  variants.push_back(
      make_key("other", "coverage", "bicriteria", 0.1, 2, 4, runtime));
  variants.push_back(
      make_key("corpus", "exemplar", "bicriteria", 0.1, 2, 4, runtime));
  variants.push_back(
      make_key("corpus", "coverage", "greedi", 0.1, 2, 4, runtime));
  variants.push_back(
      make_key("corpus", "coverage", "bicriteria", 0.2, 2, 4, runtime));
  variants.push_back(
      make_key("corpus", "coverage", "bicriteria", 0.1, 3, 4, runtime));
  variants.push_back(
      make_key("corpus", "coverage", "bicriteria", 0.1, 2, 5, runtime));
  RuntimeOptions seeded = runtime;
  seeded.seed = 99;
  variants.push_back(
      make_key("corpus", "coverage", "bicriteria", 0.1, 2, 4, seeded));
  RuntimeOptions oracle_mode = runtime;
  oracle_mode.worker_oracle = WorkerOracleMode::kClone;
  variants.push_back(
      make_key("corpus", "coverage", "bicriteria", 0.1, 2, 4, oracle_mode));
  RuntimeOptions incremental = runtime;
  incremental.incremental_gains = true;
  variants.push_back(
      make_key("corpus", "coverage", "bicriteria", 0.1, 2, 4, incremental));
  RuntimeOptions central = runtime;
  central.parallel_central = true;
  variants.push_back(
      make_key("corpus", "coverage", "bicriteria", 0.1, 2, 4, central));

  SummaryCache cache(32);
  CachedSummary seed_entry;
  seed_entry.key = base;
  seed_entry.budget_k = 10;
  seed_entry.solution.resize(10);
  auto entry = std::make_shared<const CachedSummary>(seed_entry);
  cache.insert(entry);

  EXPECT_NE(cache.lookup(base, 5), nullptr);
  for (const QueryKey& variant : variants) {
    EXPECT_NE(variant, base);
    EXPECT_EQ(cache.lookup(variant, 5), nullptr)
        << "variant unexpectedly hit the cache";
  }
  // Execution-environment-only fields must NOT invalidate: threads and
  // mmap preference cannot change a certified selection.
  RuntimeOptions threaded = runtime;
  threaded.threads = 7;
  threaded.mmap_datasets = true;
  EXPECT_EQ(base, make_key("corpus", "coverage", "bicriteria", 0.1, 2, 4,
                           threaded));
}

// The tentpole contract, pinned over an (algorithm × objective × budget)
// grid: a summary built from a direct run answers the exact budget with the
// run's bits, and every smaller budget with the bitwise prefix + replayed
// prefix value; certified bounds are monotone and valid.
TEST(ServeCache, PrefixAnswersBitIdenticalAcrossGrid) {
  const std::size_t k = 12;
  struct Corpus {
    const char* objective;
    std::shared_ptr<SubmodularOracle> proto;
  };
  const Corpus corpora[] = {{"coverage", coverage_proto()},
                           {"exemplar", exemplar_proto()}};
  const char* algorithms[] = {"bicriteria", "greedi", "central"};

  for (const Corpus& corpus : corpora) {
    const auto ground = iota_ids(corpus.proto->ground_size());
    for (const char* algorithm : algorithms) {
      RuntimeOptions runtime;
      runtime.seed = 5;
      AlgorithmParams params;
      params.k = k;
      const RunResult run = run_distributed(algorithm, *corpus.proto, ground,
                                            runtime, params);
      ASSERT_FALSE(run.solution.empty());

      const QueryKey key = make_key("corpus", corpus.objective, algorithm,
                                    params.epsilon, params.rounds,
                                    params.machines, runtime);
      const auto summary =
          build_summary(key, k, run, *corpus.proto, ground);

      // Exact budget: run output verbatim, bitwise.
      EXPECT_EQ(summary->solution, run.solution);
      EXPECT_EQ(summary->value, run.value);
      ASSERT_EQ(summary->prefix_value.size(), run.solution.size() + 1);

      // Reference replay for prefix values.
      auto replay = corpus.proto->clone();
      std::vector<double> expected{replay->value()};
      for (const ElementId x : run.solution) {
        replay->add(x);
        expected.push_back(replay->value());
      }
      for (std::size_t i = 0; i <= run.solution.size(); ++i) {
        EXPECT_EQ(summary->prefix_value[i], expected[i])
            << corpus.objective << "/" << algorithm << " prefix " << i;
      }

      // Every budget k' <= k: served items are the bitwise prefix; the
      // certified bound dominates the prefix value and grows with k'.
      double prev_bound = 0.0;
      for (std::size_t kp = 1; kp <= k; ++kp) {
        const std::size_t items = summary->items_for(kp, 0);
        EXPECT_EQ(items, std::min(kp, run.solution.size()));
        const double bound = summary->upper_bound(kp);
        EXPECT_GE(bound, summary->prefix_value[items]);
        EXPECT_GE(bound, prev_bound);
        EXPECT_LE(bound, summary->max_value);
        prev_bound = bound;
      }
      EXPECT_GT(summary->run_evals, 0u);
      EXPECT_GT(summary->build_evals, 0u);
    }
  }
}

TEST(ServeCache, ItemsForClampsToStoredSolution) {
  CachedSummary summary;
  summary.budget_k = 10;
  summary.solution.resize(8);
  EXPECT_EQ(summary.items_for(5, 0), 5u);
  EXPECT_EQ(summary.items_for(5, 3), 3u);
  EXPECT_EQ(summary.items_for(10, 0), 8u);   // run produced fewer than k
  EXPECT_EQ(summary.items_for(5, 100), 8u);  // clamp to stored items
}

TEST(ServeCache, LookupHonorsBudgetAndMinItems) {
  SummaryCache cache(4);
  CachedSummary entry;
  entry.key = make_key("c", "coverage", "bicriteria", 0.1, 1, 0, {});
  entry.budget_k = 10;
  entry.solution.resize(10);
  cache.insert(std::make_shared<const CachedSummary>(entry));

  EXPECT_NE(cache.lookup(entry.key, 10), nullptr);
  EXPECT_NE(cache.lookup(entry.key, 3, 3), nullptr);
  EXPECT_EQ(cache.lookup(entry.key, 11), nullptr);       // budget too small
  EXPECT_EQ(cache.lookup(entry.key, 10, 11), nullptr);   // too few items
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 2u);
}

TEST(ServeCache, LargerBudgetReplacesSmallerNeverTheReverse) {
  SummaryCache cache(4);
  const QueryKey key = make_key("c", "coverage", "bicriteria", 0.1, 1, 0, {});

  CachedSummary small;
  small.key = key;
  small.budget_k = 5;
  small.solution.resize(5);
  cache.insert(std::make_shared<const CachedSummary>(small));

  CachedSummary big;
  big.key = key;
  big.budget_k = 20;
  big.solution.resize(20);
  cache.insert(std::make_shared<const CachedSummary>(big));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.lookup(key, 20), nullptr);

  // Re-inserting the small budget is a no-op: the big entry stays.
  cache.insert(std::make_shared<const CachedSummary>(small));
  EXPECT_NE(cache.lookup(key, 20), nullptr);
  EXPECT_EQ(cache.stats().replacements, 1u);
}

TEST(ServeCache, LruEvictsLeastRecentlyUsed) {
  SummaryCache cache(2);
  QueryKey keys[3];
  for (int i = 0; i < 3; ++i) {
    RuntimeOptions runtime;
    runtime.seed = static_cast<std::uint64_t>(i + 1);
    keys[i] = make_key("c", "coverage", "bicriteria", 0.1, 1, 0, runtime);
    CachedSummary entry;
    entry.key = keys[i];
    entry.budget_k = 5;
    entry.solution.resize(5);
    if (i == 2) {
      // Touch key 0 so key 1 is the LRU victim.
      ASSERT_NE(cache.lookup(keys[0], 1), nullptr);
    }
    cache.insert(std::make_shared<const CachedSummary>(entry));
  }
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.peek(keys[0]), nullptr);
  EXPECT_EQ(cache.peek(keys[1]), nullptr);  // evicted
  EXPECT_NE(cache.peek(keys[2]), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ServeCache, RequireObjectiveThrowsListingNames) {
  try {
    require_objective("no-such-objective");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-objective"), std::string::npos);
    EXPECT_NE(what.find("coverage"), std::string::npos);
    EXPECT_NE(what.find("exemplar"), std::string::npos);
  }
  EXPECT_EQ(require_objective("coverage").name, "coverage");
  EXPECT_TRUE(require_objective("exemplar").cache_safe);
}

TEST(ServeCache, RequireAlgorithmThrowsListingNames) {
  try {
    require_algorithm("no-such-algorithm");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-algorithm"), std::string::npos);
    EXPECT_NE(what.find("bicriteria"), std::string::npos);
    EXPECT_NE(what.find("greedi"), std::string::npos);
  }
  EXPECT_EQ(require_algorithm("hybrid").name, "hybrid");
}

}  // namespace
}  // namespace bds
