#include "core/bicriteria.h"

#include <gtest/gtest.h>

#include <atomic>

#include <cmath>
#include <cstdlib>
#include <set>

#include "core/brute_force.h"
#include "core/greedy.h"
#include "data/synthetic_coverage.h"
#include "objectives/coverage.h"
#include "test_support.h"

namespace bds {
namespace {

using testing::iota_ids;
using testing::random_set_system;

// ------------------------------------------------------------------- plan

TEST(Plan, ValidatesArguments) {
  BicriteriaConfig cfg;
  cfg.k = 0;
  EXPECT_THROW(plan_bicriteria(cfg, 100), std::invalid_argument);
  cfg = {};
  cfg.rounds = 0;
  EXPECT_THROW(plan_bicriteria(cfg, 100), std::invalid_argument);
  cfg = {};
  cfg.mode = BicriteriaMode::kTheory;
  cfg.epsilon = 0.0;
  EXPECT_THROW(plan_bicriteria(cfg, 100), std::invalid_argument);
  cfg.epsilon = 1.0;
  EXPECT_THROW(plan_bicriteria(cfg, 100), std::invalid_argument);
}

TEST(Plan, TheoryModeMatchesFormulae) {
  BicriteriaConfig cfg;
  cfg.mode = BicriteriaMode::kTheory;
  cfg.k = 10;
  cfg.rounds = 2;
  cfg.epsilon = 0.09;
  const auto plan = plan_bicriteria(cfg, 100'000);
  const double alpha = 3.0 / std::sqrt(0.09);  // = 10
  EXPECT_NEAR(plan.alpha, alpha, 1e-12);
  EXPECT_EQ(plan.machine_budget, std::size_t(std::ceil(alpha * 10)));
  const double ln_a = std::log(alpha);
  EXPECT_EQ(plan.central_budget,
            std::size_t(std::ceil((alpha * alpha * ln_a * ln_a + ln_a) * 10)));
  EXPECT_EQ(plan.multiplicity, 1u);
  EXPECT_EQ(plan.output_bound, 2 * plan.central_budget);
  // m >= alpha * ln(alpha).
  EXPECT_GE(plan.machines, std::size_t(alpha * ln_a));
}

TEST(Plan, MultiplicityModeShrinksCentralBudget) {
  BicriteriaConfig cfg;
  cfg.k = 5;
  cfg.rounds = 1;
  cfg.epsilon = 0.2;
  cfg.mode = BicriteriaMode::kTheory;
  const auto theory = plan_bicriteria(cfg, 10'000);
  cfg.mode = BicriteriaMode::kMultiplicity;
  const auto mult = plan_bicriteria(cfg, 10'000);
  EXPECT_LT(mult.central_budget, theory.central_budget);
  EXPECT_GT(mult.multiplicity, 1u);
  EXPECT_LE(mult.multiplicity, mult.machines);
}

TEST(Plan, HybridHasSmallestOutputBound) {
  BicriteriaConfig cfg;
  cfg.k = 5;
  cfg.rounds = 1;
  cfg.epsilon = 0.2;
  cfg.mode = BicriteriaMode::kTheory;
  const auto theory = plan_bicriteria(cfg, 10'000);
  cfg.mode = BicriteriaMode::kMultiplicity;
  const auto mult = plan_bicriteria(cfg, 10'000);
  cfg.mode = BicriteriaMode::kHybrid;
  const auto hybrid = plan_bicriteria(cfg, 10'000);
  EXPECT_LT(hybrid.output_bound, mult.output_bound);
  EXPECT_LT(mult.output_bound, theory.output_bound);
}

TEST(Plan, MoreRoundsShrinkAlphaAndOutput) {
  BicriteriaConfig cfg;
  cfg.mode = BicriteriaMode::kHybrid;
  cfg.k = 10;
  cfg.epsilon = 0.01;
  cfg.rounds = 1;
  const auto r1 = plan_bicriteria(cfg, 1'000'000);
  cfg.rounds = 2;
  const auto r2 = plan_bicriteria(cfg, 1'000'000);
  cfg.rounds = 4;
  const auto r4 = plan_bicriteria(cfg, 1'000'000);
  EXPECT_GT(r1.alpha, r2.alpha);
  EXPECT_GT(r2.alpha, r4.alpha);
  // ε^(1/r): 300 vs ~30 vs ~9.5 per-round α.
  EXPECT_NEAR(r1.alpha, 300.0, 1e-9);
  EXPECT_NEAR(r2.alpha, 30.0, 1e-9);
  EXPECT_GT(r1.output_bound, r2.output_bound);
  EXPECT_GT(r2.output_bound, r4.output_bound);
}

TEST(Plan, PracticalSplitsOutputAcrossRounds) {
  BicriteriaConfig cfg;
  cfg.mode = BicriteriaMode::kPractical;
  cfg.k = 10;
  cfg.output_items = 25;
  cfg.rounds = 3;
  const auto plan = plan_bicriteria(cfg, 10'000);
  EXPECT_EQ(plan.machine_budget, 8u);  // floor(25/3); last round gets 8+1
  EXPECT_EQ(plan.output_bound, 25u);
  EXPECT_EQ(plan.multiplicity, 1u);
  // m = ceil(sqrt(10000 / 8)) = 36.
  EXPECT_EQ(plan.machines, 36u);
}

TEST(Plan, PracticalRejectsTooManyRounds) {
  BicriteriaConfig cfg;
  cfg.mode = BicriteriaMode::kPractical;
  cfg.k = 2;
  cfg.rounds = 5;
  EXPECT_THROW(plan_bicriteria(cfg, 100), std::invalid_argument);
}

TEST(Plan, ExplicitMachineCountWins) {
  BicriteriaConfig cfg;
  cfg.mode = BicriteriaMode::kPractical;
  cfg.k = 10;
  cfg.machines = 17;
  EXPECT_EQ(plan_bicriteria(cfg, 10'000).machines, 17u);
}

// -------------------------------------------------------------- execution

TEST(Bicriteria, PracticalOutputsExactlyRequestedItems) {
  const auto sys = random_set_system(400, 300, 0.02, 1);
  const CoverageOracle proto(sys);
  BicriteriaConfig cfg;
  cfg.mode = BicriteriaMode::kPractical;
  cfg.k = 10;
  cfg.output_items = 23;
  cfg.rounds = 3;
  cfg.stop_when_no_gain = false;  // faithful mode: exhaust the budget
  const auto result = bicriteria_greedy(proto, iota_ids(400), cfg);
  EXPECT_EQ(result.size(), 23u);
  EXPECT_EQ(result.stats.num_rounds(), 3u);
  EXPECT_EQ(result.rounds.size(), 3u);
}

TEST(Bicriteria, SolutionValueMatchesIndependentEvaluation) {
  const auto sys = random_set_system(300, 200, 0.03, 2);
  const CoverageOracle proto(sys);
  BicriteriaConfig cfg;
  cfg.k = 8;
  cfg.output_items = 16;
  cfg.rounds = 2;
  const auto result = bicriteria_greedy(proto, iota_ids(300), cfg);
  EXPECT_NEAR(result.value, evaluate_set(proto, result.solution), 1e-9);
}

TEST(Bicriteria, DeterministicGivenSeed) {
  const auto sys = random_set_system(200, 150, 0.04, 3);
  const CoverageOracle proto(sys);
  BicriteriaConfig cfg;
  cfg.k = 6;
  cfg.output_items = 12;
  cfg.runtime.seed = 99;
  const auto a = bicriteria_greedy(proto, iota_ids(200), cfg);
  const auto b = bicriteria_greedy(proto, iota_ids(200), cfg);
  EXPECT_EQ(a.solution, b.solution);
  EXPECT_DOUBLE_EQ(a.value, b.value);
}

TEST(Bicriteria, DifferentSeedsUsuallyDiffer) {
  const auto sys = random_set_system(200, 150, 0.04, 4);
  const CoverageOracle proto(sys);
  BicriteriaConfig cfg;
  cfg.k = 6;
  cfg.output_items = 12;
  cfg.runtime.seed = 1;
  const auto a = bicriteria_greedy(proto, iota_ids(200), cfg);
  cfg.runtime.seed = 2;
  const auto b = bicriteria_greedy(proto, iota_ids(200), cfg);
  EXPECT_NE(a.solution, b.solution);
}

TEST(Bicriteria, PicksAreDistinctWithStopOnNoGain) {
  const auto sys = random_set_system(150, 100, 0.05, 5);
  const CoverageOracle proto(sys);
  BicriteriaConfig cfg;
  cfg.k = 5;
  cfg.output_items = 20;
  cfg.rounds = 4;
  const auto result = bicriteria_greedy(proto, iota_ids(150), cfg);
  std::set<ElementId> unique(result.solution.begin(), result.solution.end());
  EXPECT_EQ(unique.size(), result.solution.size());
}

class TheoryModeGuarantee
    : public ::testing::TestWithParam<std::tuple<BicriteriaMode, int>> {};

TEST_P(TheoryModeGuarantee, AchievesOneMinusEpsilonOfBruteOptimum) {
  const auto [mode, rounds] = GetParam();
  // Small instance so brute force is feasible: k=2 over 14 sets.
  const auto sys = random_set_system(14, 40, 0.18, 7);
  const CoverageOracle proto(sys);
  const std::size_t k = 2;
  const auto opt = brute_force_opt(proto, iota_ids(14), k);

  BicriteriaConfig cfg;
  cfg.mode = mode;
  cfg.k = k;
  cfg.rounds = static_cast<std::size_t>(rounds);
  cfg.epsilon = 0.15;
  cfg.machines = 4;
  cfg.runtime.seed = 11;
  const auto result = bicriteria_greedy(proto, iota_ids(14), cfg);

  // The guarantee is in expectation; on this small instance with the full
  // budget the solution should comfortably clear (1-ε)·OPT.
  EXPECT_GE(result.value, (1.0 - cfg.epsilon) * opt.value - 1e-9);
  EXPECT_LE(result.size(), plan_bicriteria(cfg, 14).output_bound);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndRounds, TheoryModeGuarantee,
    ::testing::Combine(::testing::Values(BicriteriaMode::kTheory,
                                         BicriteriaMode::kMultiplicity,
                                         BicriteriaMode::kHybrid),
                       ::testing::Values(1, 2)));

TEST(Bicriteria, ValueIsMonotoneInOutputItems) {
  const auto sys = random_set_system(500, 400, 0.015, 13);
  const CoverageOracle proto(sys);
  double prev = 0.0;
  for (const std::size_t out : {10u, 15u, 20u, 30u}) {
    BicriteriaConfig cfg;
    cfg.k = 10;
    cfg.output_items = out;
    cfg.runtime.seed = 5;
    const auto result = bicriteria_greedy(proto, iota_ids(500), cfg);
    EXPECT_GE(result.value + 1e-9, prev);
    prev = result.value;
  }
}

TEST(Bicriteria, MultipleRoundsHelpOnHardInstance) {
  // The paper's synthetic-hard instance, scaled down: r=3 should beat r=1
  // at equal output size.
  data::SyntheticCoverageConfig data_cfg;
  data_cfg.universe_size = 2'000;
  data_cfg.planted_sets = 20;
  data_cfg.random_sets = 4'000;
  data_cfg.epsilon1 = 0.2;
  const auto instance = data::make_synthetic_coverage(data_cfg);
  const CoverageOracle proto(instance.sets);
  const auto ground = iota_ids(instance.sets->num_sets());

  BicriteriaConfig cfg;
  cfg.k = 20;
  cfg.output_items = 20;
  cfg.runtime.seed = 3;
  cfg.rounds = 1;
  const auto r1 = bicriteria_greedy(proto, ground, cfg);
  cfg.rounds = 3;
  const auto r3 = bicriteria_greedy(proto, ground, cfg);
  EXPECT_GE(r3.value, r1.value * 0.999);
}

TEST(Bicriteria, RoundTracesAreConsistent) {
  const auto sys = random_set_system(300, 250, 0.02, 17);
  const CoverageOracle proto(sys);
  BicriteriaConfig cfg;
  cfg.k = 6;
  cfg.output_items = 18;
  cfg.rounds = 3;
  const auto result = bicriteria_greedy(proto, iota_ids(300), cfg);
  ASSERT_EQ(result.rounds.size(), 3u);
  double prev_value = 0.0;
  std::size_t total_added = 0;
  for (std::size_t r = 0; r < 3; ++r) {
    const auto& trace = result.rounds[r];
    EXPECT_EQ(trace.round, r);
    EXPECT_GE(trace.value_after + 1e-9, prev_value);
    prev_value = trace.value_after;
    total_added += trace.items_added;
  }
  EXPECT_EQ(total_added, result.size());
  EXPECT_DOUBLE_EQ(result.rounds.back().value_after, result.value);
}

TEST(Bicriteria, CommunicationGrowsWithMultiplicity) {
  const auto sys = random_set_system(300, 200, 0.03, 19);
  const CoverageOracle proto(sys);
  BicriteriaConfig cfg;
  cfg.k = 3;
  cfg.rounds = 1;
  cfg.epsilon = 0.25;
  cfg.machines = 8;
  cfg.mode = BicriteriaMode::kTheory;
  const auto theory = bicriteria_greedy(proto, iota_ids(300), cfg);
  cfg.mode = BicriteriaMode::kMultiplicity;
  const auto mult = bicriteria_greedy(proto, iota_ids(300), cfg);
  EXPECT_GT(mult.stats.rounds[0].elements_scattered,
            theory.stats.rounds[0].elements_scattered);
}

TEST(Bicriteria, StochasticSelectorWorks) {
  const auto sys = random_set_system(400, 300, 0.02, 23);
  const CoverageOracle proto(sys);
  BicriteriaConfig cfg;
  cfg.k = 10;
  cfg.output_items = 20;
  cfg.selector = MachineSelector::kStochasticGreedy;
  const auto result = bicriteria_greedy(proto, iota_ids(400), cfg);
  EXPECT_GT(result.value, 0.0);
  // Naive-greedy machines for comparison; stochastic shouldn't collapse.
  cfg.selector = MachineSelector::kLazyGreedy;
  const auto exact = bicriteria_greedy(proto, iota_ids(400), cfg);
  EXPECT_GT(result.value, 0.75 * exact.value);
}

TEST(Bicriteria, NaiveGreedySelectorMatchesLazySelector) {
  const auto sys = random_set_system(200, 150, 0.04, 29);
  const CoverageOracle proto(sys);
  BicriteriaConfig cfg;
  cfg.k = 5;
  cfg.output_items = 10;
  cfg.runtime.seed = 7;
  cfg.selector = MachineSelector::kGreedy;
  const auto naive = bicriteria_greedy(proto, iota_ids(200), cfg);
  cfg.selector = MachineSelector::kLazyGreedy;
  const auto lazy = bicriteria_greedy(proto, iota_ids(200), cfg);
  EXPECT_EQ(naive.solution, lazy.solution);
}

TEST(Bicriteria, MachineOracleFactoryIsUsed) {
  const auto sys = random_set_system(100, 80, 0.06, 31);
  const CoverageOracle proto(sys);
  std::atomic<int> factory_calls{0};
  BicriteriaConfig cfg;
  cfg.k = 4;
  cfg.output_items = 8;
  cfg.machines = 5;
  cfg.machine_oracle_factory =
      [&](std::size_t) -> std::unique_ptr<SubmodularOracle> {
    ++factory_calls;
    return std::make_unique<CoverageOracle>(sys);
  };
  const auto result = bicriteria_greedy(proto, iota_ids(100), cfg);
  if (std::getenv("BDS_FAULT_SEED") == nullptr) {
    EXPECT_EQ(factory_calls.load(), 5);
  } else {
    // Injected faults re-run workers, so the factory fires once per attempt.
    EXPECT_GE(factory_calls.load(), 5);
  }
  EXPECT_GT(result.value, 0.0);
}

TEST(Bicriteria, EmptyGroundSetYieldsEmptySolution) {
  const auto sys = random_set_system(10, 20, 0.3, 37);
  const CoverageOracle proto(sys);
  BicriteriaConfig cfg;
  cfg.k = 3;
  const auto result = bicriteria_greedy(proto, {}, cfg);
  EXPECT_TRUE(result.solution.empty());
  EXPECT_DOUBLE_EQ(result.value, 0.0);
}

}  // namespace
}  // namespace bds
