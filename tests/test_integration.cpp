// End-to-end pipelines mirroring the paper's experiments at test scale:
// data generator -> oracle -> distributed algorithm -> upper bound -> ratio.
#include <gtest/gtest.h>

#include <atomic>

#include <cmath>

#include "core/baselines.h"
#include "core/bicriteria.h"
#include "core/greedy.h"
#include "core/upper_bound.h"
#include "data/bigram_gen.h"
#include "data/graph_gen.h"
#include "data/synthetic_coverage.h"
#include "data/vectors_gen.h"
#include "objectives/coverage.h"
#include "objectives/exemplar.h"
#include "objectives/jl_projection.h"
#include "test_support.h"

namespace bds {
namespace {

using testing::iota_ids;

TEST(Integration, SyntheticCoveragePipelineRatiosIncreaseWithK) {
  // Mini Figure 1(a): ratio vs output size on the hard instance.
  data::SyntheticCoverageConfig data_cfg;
  data_cfg.universe_size = 2'000;
  data_cfg.planted_sets = 20;
  data_cfg.random_sets = 5'000;
  const auto instance = data::make_synthetic_coverage(data_cfg);
  const CoverageOracle proto(instance.sets);
  const auto ground = iota_ids(instance.sets->num_sets());
  const std::size_t K = 20;

  // Upper bound from the largest solution we compute.
  BicriteriaConfig big;
  big.k = K;
  big.output_items = 2 * K;
  big.runtime.seed = 1;
  const auto big_result = bicriteria_greedy(proto, ground, big);
  const double ub =
      solution_upper_bound(proto, big_result.solution, ground, K);
  ASSERT_GT(ub, 0.0);

  double prev_ratio = 0.0;
  for (const std::size_t out : {K, K + K / 2, 2 * K}) {
    BicriteriaConfig cfg;
    cfg.k = K;
    cfg.output_items = out;
    cfg.runtime.seed = 1;
    const auto result = bicriteria_greedy(proto, ground, cfg);
    const double ratio = result.value / ub;
    EXPECT_GE(ratio + 0.02, prev_ratio);  // monotone up to small noise
    prev_ratio = ratio;
  }
  // With 2K items the hard instance is nearly solved (paper: ~99%).
  EXPECT_GT(prev_ratio, 0.90);
}

TEST(Integration, GraphCoveragePipelineBeatsRandomBaseline) {
  // Mini Figure 1(b): DBLP-like graph, distributed greedy vs random.
  const auto sys = data::make_dblp_like(3'000, 7);
  const CoverageOracle proto(sys);
  const auto ground = iota_ids(sys->num_sets());
  const std::size_t K = 10;

  BicriteriaConfig cfg;
  cfg.k = K;
  cfg.output_items = 2 * K;
  cfg.runtime.seed = 2;
  const auto dist_result = bicriteria_greedy(proto, ground, cfg);

  auto random_oracle = proto.clone();
  util::Rng rng(2);
  const auto random_result =
      random_subset(*random_oracle, ground, 2 * K, rng);

  EXPECT_GT(dist_result.value, 2.0 * random_result.gained);

  const double ub =
      solution_upper_bound(proto, dist_result.solution, ground, K);
  EXPECT_GT(dist_result.value / ub, 0.78);
}

TEST(Integration, BigramPipelineConvergesInOneRound) {
  data::BigramConfig bc;
  bc.books = 150;
  bc.vocabulary = 300;
  bc.min_tokens = 100;
  bc.max_tokens = 3'000;
  const auto sys = data::make_bigram_sets(bc);
  const CoverageOracle proto(sys);
  const auto ground = iota_ids(sys->num_sets());

  BicriteriaConfig cfg;
  cfg.k = 10;
  cfg.output_items = 20;
  cfg.runtime.seed = 3;
  const auto one_round = bicriteria_greedy(proto, ground, cfg);
  const auto central = centralized_greedy(proto, ground, 20);
  // Distributed one-round result is within a whisker of centralized.
  EXPECT_GT(one_round.value, 0.95 * central.value);
}

TEST(Integration, ExemplarClusteringPipeline) {
  // Mini Figure 2: LDA-like vectors, sampled machine oracles, exact scoring.
  data::LdaVectorsConfig vc;
  vc.documents = 600;
  vc.topics = 25;
  vc.clusters = 6;
  vc.seed = 11;
  const auto pts = data::make_lda_like_vectors(vc);
  const double p0 = 2.0;
  const ExemplarOracle exact_proto(pts, p0);
  const auto ground = iota_ids(pts->size());
  const std::size_t K = 5;

  std::atomic<std::size_t> machine_counter{0};
  BicriteriaConfig cfg;
  cfg.k = K;
  cfg.output_items = 2 * K;
  cfg.runtime.seed = 4;
  cfg.selector = MachineSelector::kStochasticGreedy;
  cfg.machine_oracle_factory =
      [&](std::size_t machine) -> std::unique_ptr<SubmodularOracle> {
    ++machine_counter;
    util::Rng rng(util::mix64(1000 + machine));
    return std::make_unique<SampledExemplarOracle>(pts, p0, 200, rng);
  };
  const auto result = bicriteria_greedy(exact_proto, ground, cfg);
  EXPECT_GT(machine_counter.load(), 0u);

  // Score exactly (the paper always reports exact values).
  const double exact_value = evaluate_set(exact_proto, result.solution);
  EXPECT_GT(exact_value, 0.0);

  auto random_oracle = exact_proto.clone();
  util::Rng rng(5);
  const auto random_result =
      random_subset(*random_oracle, ground, 2 * K, rng);
  EXPECT_GT(exact_value, random_result.gained);

  const double ub =
      solution_upper_bound(exact_proto, result.solution, ground, K);
  EXPECT_GT(exact_value / ub, 0.5);
}

TEST(Integration, JlProjectionPreservesExemplarChoicesApproximately) {
  // TinyImages-style path: optimize on JL-projected vectors, score on the
  // originals; the scored value should be close to optimizing directly.
  data::ImageVectorsConfig ic;
  ic.images = 300;
  ic.dim = 256;
  ic.clusters = 8;
  ic.seed = 13;
  const auto original = data::make_image_like_vectors(ic);
  const auto projected = std::make_shared<const PointSet>(
      jl_project(*original, 64, 99));

  const double p0 = 2.0;
  const ExemplarOracle orig_proto(original, p0);
  const ExemplarOracle proj_proto(projected, p0);
  const auto ground = iota_ids(original->size());

  const auto direct = centralized_greedy(orig_proto, ground, 8);
  const auto via_jl = centralized_greedy(proj_proto, ground, 8);
  const double scored = evaluate_set(orig_proto, via_jl.solution);
  EXPECT_GT(scored, 0.9 * direct.value);
}

TEST(Integration, SpeedupAccountingFavorsDistribution) {
  // §4.2 speed-up logic at test scale: the distributed critical path does
  // far fewer oracle evaluations than the centralized run.
  const auto sys = data::make_dblp_like(4'000, 17);
  const CoverageOracle proto(sys);
  const auto ground = iota_ids(sys->num_sets());
  const std::size_t k = 10;

  const auto central = centralized_greedy(proto, ground, k, /*lazy=*/false);
  BicriteriaConfig cfg;
  cfg.k = k;
  cfg.selector = MachineSelector::kGreedy;  // same selector both sides
  cfg.runtime.seed = 6;
  const auto dist_result = bicriteria_greedy(proto, ground, cfg);

  const auto central_evals = central.stats.rounds[0].worker_evals;
  const auto dist_critical = dist_result.stats.critical_path_evals();
  EXPECT_LT(dist_critical, central_evals / 4);
  // And quality stays close.
  EXPECT_GT(dist_result.value, 0.9 * central.value);
}

TEST(Integration, AllAlgorithmsAgreeOnEasyInstance) {
  // Disjoint equal sets: every sensible algorithm finds an optimal cover.
  std::vector<std::vector<std::uint32_t>> sets;
  for (std::uint32_t i = 0; i < 40; ++i) {
    sets.push_back({i * 3, i * 3 + 1, i * 3 + 2});
  }
  const auto sys =
      std::make_shared<const SetSystem>(std::move(sets), 120);
  const CoverageOracle proto(sys);
  const auto ground = iota_ids(40);
  const std::size_t k = 10;
  const double opt = 30.0;  // any k disjoint triples

  EXPECT_DOUBLE_EQ(centralized_greedy(proto, ground, k).value, opt);

  OneRoundConfig rc;
  rc.k = k;
  rc.runtime.seed = 1;
  EXPECT_DOUBLE_EQ(rand_greedi(proto, ground, rc).value, opt);
  EXPECT_DOUBLE_EQ(greedi(proto, ground, rc).value, opt);
  EXPECT_DOUBLE_EQ(pseudo_greedy(proto, ground, rc).value, opt);

  BicriteriaConfig bc;
  bc.k = k;
  bc.runtime.seed = 1;
  EXPECT_DOUBLE_EQ(bicriteria_greedy(proto, ground, bc).value, opt);
}

}  // namespace
}  // namespace bds
