#include "objectives/exemplar.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>

#include "test_support.h"
#include "util/stats.h"

namespace bds {
namespace {

// Four points on a line: 0, 1, 4, 5 (1-d coordinates).
std::shared_ptr<const PointSet> line_points() {
  return std::make_shared<const PointSet>(
      4, 1, std::vector<float>{0.0f, 1.0f, 4.0f, 5.0f});
}

std::shared_ptr<const PointSet> random_points(std::size_t n, std::size_t dim,
                                              std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> data(n * dim);
  for (float& v : data) v = static_cast<float>(rng.next_double(-1.0, 1.0));
  return std::make_shared<const PointSet>(n, dim, std::move(data));
}

TEST(PointSet, AccessorsAndValidation) {
  const auto pts = line_points();
  EXPECT_EQ(pts->size(), 4u);
  EXPECT_EQ(pts->dim(), 1u);
  EXPECT_FLOAT_EQ(pts->point(2)[0], 4.0f);
  EXPECT_THROW(PointSet(2, 3, std::vector<float>(5)), std::invalid_argument);
  EXPECT_THROW(PointSet(2, 0, {}), std::invalid_argument);
}

TEST(PointSet, NormalizeRows) {
  PointSet pts(2, 2, {3.0f, 4.0f, 0.0f, 0.0f});
  pts.normalize_rows();
  EXPECT_NEAR(pts.point(0)[0], 0.6f, 1e-6);
  EXPECT_NEAR(pts.point(0)[1], 0.8f, 1e-6);
  // Zero rows untouched.
  EXPECT_FLOAT_EQ(pts.point(1)[0], 0.0f);
}

TEST(SquaredL2, HandComputed) {
  const std::vector<float> a{1.0f, 2.0f}, b{4.0f, 6.0f};
  EXPECT_DOUBLE_EQ(squared_l2(a, b), 9.0 + 16.0);
  EXPECT_DOUBLE_EQ(squared_l2(a, a), 0.0);
}

TEST(ExemplarOracle, InitialCostIsP0Everywhere) {
  const ExemplarOracle oracle(line_points(), 100.0);
  EXPECT_DOUBLE_EQ(oracle.clustering_cost(), 400.0);
  EXPECT_DOUBLE_EQ(oracle.value(), 0.0);
  EXPECT_DOUBLE_EQ(oracle.max_value(), 400.0);
}

TEST(ExemplarOracle, GainMatchesHandComputation) {
  ExemplarOracle oracle(line_points(), 100.0);
  // Adding point 1 (coord 1): distances to {0,1,4,5} are 1,0,9,16 — all
  // below 100, so gain = 400 - (1+0+9+16) = 374.
  EXPECT_DOUBLE_EQ(oracle.gain(1), 374.0);
  EXPECT_DOUBLE_EQ(oracle.add(1), 374.0);
  EXPECT_DOUBLE_EQ(oracle.clustering_cost(), 26.0);
  // Now adding point 3 (coord 5): improves points 2 (9 -> 1) and 3 (16 -> 0).
  EXPECT_DOUBLE_EQ(oracle.gain(3), 8.0 + 16.0);
}

TEST(ExemplarOracle, ValueEqualsCostReduction) {
  ExemplarOracle oracle(line_points(), 50.0);
  const double initial = oracle.clustering_cost();
  oracle.add(0);
  oracle.add(2);
  EXPECT_NEAR(oracle.value(), initial - oracle.clustering_cost(), 1e-9);
}

TEST(ExemplarOracle, ReaddingGainsNothing) {
  ExemplarOracle oracle(line_points(), 10.0);
  oracle.add(2);
  EXPECT_DOUBLE_EQ(oracle.gain(2), 0.0);
  EXPECT_DOUBLE_EQ(oracle.add(2), 0.0);
}

TEST(ExemplarOracle, CloneIsIndependent) {
  ExemplarOracle oracle(line_points(), 10.0);
  oracle.add(0);
  const auto copy = oracle.clone();
  copy->add(3);
  EXPECT_GT(copy->value(), oracle.value());
}

TEST(ExemplarOracle, RejectsBadConstruction) {
  EXPECT_THROW(ExemplarOracle(nullptr, 1.0), std::invalid_argument);
  EXPECT_THROW(ExemplarOracle(line_points(), 0.0), std::invalid_argument);
  EXPECT_THROW(ExemplarOracle(line_points(), -2.0), std::invalid_argument);
}

class ExemplarProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExemplarProperty, IsMonotoneSubmodular) {
  const auto pts = random_points(15, 3, GetParam());
  const ExemplarOracle proto(pts, 8.0);
  EXPECT_EQ(testing::count_submodularity_violations(proto, GetParam(), 40,
                                                    1e-7),
            0);
  EXPECT_EQ(
      testing::count_monotonicity_violations(proto, GetParam(), 20, 1e-7), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExemplarProperty,
                         ::testing::Values(21, 22, 23, 24, 25));

TEST(SampledExemplar, FullSampleMatchesExactOracle) {
  const auto pts = random_points(40, 4, 31);
  util::Rng rng(31);
  SampledExemplarOracle sampled(pts, 16.0, 40, rng);  // sample == everything
  ExemplarOracle exact(pts, 16.0);
  for (ElementId x = 0; x < 40; x += 7) {
    EXPECT_NEAR(sampled.gain(x), exact.gain(x), 1e-6);
  }
  sampled.add(5);
  exact.add(5);
  EXPECT_NEAR(sampled.value(), exact.value(), 1e-6);
}

TEST(SampledExemplar, SampleSizeClampedToPopulation) {
  const auto pts = random_points(10, 2, 33);
  util::Rng rng(33);
  SampledExemplarOracle oracle(pts, 4.0, 500, rng);
  EXPECT_EQ(oracle.sample_ids().size(), 10u);
}

TEST(SampledExemplar, EstimateIsUnbiasedAcrossSamples) {
  const auto pts = random_points(300, 3, 35);
  ExemplarOracle exact(pts, 12.0);
  const double true_gain = exact.gain(7);

  util::Rng rng(35);
  util::RunningStat estimates;
  for (int trial = 0; trial < 200; ++trial) {
    SampledExemplarOracle sampled(pts, 12.0, 50, rng);
    estimates.add(sampled.gain(7));
  }
  // Mean of the estimates should be within a few standard errors of truth.
  EXPECT_NEAR(estimates.mean(), true_gain,
              4.0 * estimates.stddev() / std::sqrt(200.0) + 1e-9);
}

TEST(SampledExemplar, IndependentRngsGiveDifferentSamples) {
  const auto pts = random_points(100, 2, 37);
  util::Rng r1(1), r2(2);
  SampledExemplarOracle a(pts, 4.0, 20, r1), b(pts, 4.0, 20, r2);
  const auto sa = a.sample_ids(), sb = b.sample_ids();
  EXPECT_NE(std::vector<std::uint32_t>(sa.begin(), sa.end()),
            std::vector<std::uint32_t>(sb.begin(), sb.end()));
}

TEST(SampledExemplar, RejectsZeroSample) {
  const auto pts = random_points(10, 2, 39);
  util::Rng rng(39);
  EXPECT_THROW(SampledExemplarOracle(pts, 4.0, 0, rng),
               std::invalid_argument);
}

TEST(SampledExemplar, PropertyCheckOnSampledObjective) {
  // The sampled objective is itself a (scaled) exemplar objective on the
  // sample, hence monotone submodular as a set function.
  const auto pts = random_points(60, 2, 41);
  util::Rng rng(41);
  const SampledExemplarOracle proto(pts, 6.0, 25, rng);
  EXPECT_EQ(testing::count_submodularity_violations(proto, 41, 30, 1e-7), 0);
  EXPECT_EQ(testing::count_monotonicity_violations(proto, 41, 15, 1e-7), 0);
}

}  // namespace
}  // namespace bds
