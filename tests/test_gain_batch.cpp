// The batch-oracle contract (objectives/submodular.h + core/batch_eval.h):
//
//  * gain_batch produces exactly the values the scalar gain() path would —
//    same floating-point accumulation order — for every oracle type, both
//    the cache-friendly overrides (coverage family, exemplar) and the
//    default scalar-loop kernel;
//  * a batch of B elements charges exactly B evaluations to the owning
//    oracle on every path, including the parallel evaluator;
//  * selections made by greedy / lazy_greedy are unchanged by the batched
//    rewiring, with and without the parallel evaluator.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/batch_eval.h"
#include "core/greedy.h"
#include "data/prob_gen.h"
#include "dist/thread_pool.h"
#include "objectives/coverage.h"
#include "objectives/exemplar.h"
#include "objectives/prob_coverage.h"
#include "objectives/saturated_coverage.h"
#include "objectives/submodular.h"
#include "test_support.h"
#include "util/rng.h"

namespace bds {
namespace {

struct OracleCase {
  std::string name;
  std::function<std::unique_ptr<SubmodularOracle>()> make;
};

std::unique_ptr<SubmodularOracle> make_coverage() {
  return std::make_unique<CoverageOracle>(
      testing::random_set_system(120, 300, 0.05, 11));
}

std::unique_ptr<SubmodularOracle> make_weighted_coverage() {
  auto sets = testing::random_set_system(120, 300, 0.05, 12);
  util::Rng rng(13);
  std::vector<double> weights(sets->universe_size());
  for (auto& w : weights) w = rng.next_double();
  return std::make_unique<WeightedCoverageOracle>(std::move(sets),
                                                  std::move(weights));
}

std::unique_ptr<SubmodularOracle> make_prob_coverage() {
  data::ClickModelConfig cfg;
  cfg.ads = 100;
  cfg.users = 250;
  cfg.mean_reach = 12.0;
  cfg.seed = 14;
  return std::make_unique<ProbCoverageOracle>(data::make_click_model(cfg));
}

std::unique_ptr<SubmodularOracle> make_weighted_prob_coverage() {
  data::ClickModelConfig cfg;
  cfg.ads = 100;
  cfg.users = 250;
  cfg.mean_reach = 12.0;
  cfg.seed = 15;
  auto model = data::make_click_model(cfg);
  util::Rng rng(16);
  std::vector<double> weights(model->universe_size());
  for (auto& w : weights) w = 0.5 + rng.next_double();
  return std::make_unique<ProbCoverageOracle>(std::move(model),
                                              std::move(weights));
}

std::unique_ptr<SubmodularOracle> make_saturated() {
  const std::size_t n = 60;
  util::Rng rng(17);
  std::vector<double> values(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = rng.next_double();
      values[i * n + j] = v;
      values[j * n + i] = v;
    }
  }
  SaturatedCoverageConfig cfg;
  cfg.gamma = 0.3;
  cfg.lambda = 2.0;
  cfg.cluster_of.resize(n);
  for (auto& c : cfg.cluster_of) {
    c = static_cast<std::uint32_t>(rng.next_below(5));
  }
  return std::make_unique<SaturatedCoverageOracle>(
      std::make_shared<const SimilarityMatrix>(n, std::move(values)),
      std::move(cfg));
}

std::shared_ptr<const PointSet> make_points(std::uint64_t seed) {
  const std::size_t n = 150;
  const std::size_t dim = 12;
  util::Rng rng(seed);
  std::vector<float> data(n * dim);
  for (auto& v : data) v = static_cast<float>(rng.next_double());
  auto points = std::make_shared<PointSet>(n, dim, std::move(data));
  points->normalize_rows();
  return points;
}

std::unique_ptr<SubmodularOracle> make_exemplar() {
  return std::make_unique<ExemplarOracle>(make_points(18), 2.0);
}

std::unique_ptr<SubmodularOracle> make_sampled_exemplar() {
  // The sample is drawn at construction from a pinned RNG, so the oracle
  // (and hence batch == scalar) is deterministic across the test body.
  util::Rng rng(19);
  return std::make_unique<SampledExemplarOracle>(make_points(20), 2.0, 40,
                                                 rng);
}

std::unique_ptr<SubmodularOracle> make_sqrt_modular() {
  // Exercises the default do_gain_batch (scalar-loop) kernel.
  util::Rng rng(21);
  std::vector<double> weights(80);
  for (auto& w : weights) w = rng.next_double() * 3.0;
  return std::make_unique<bds::testing::SqrtModularOracle>(std::move(weights));
}

std::vector<OracleCase> all_cases() {
  return {
      {"Coverage", make_coverage},
      {"WeightedCoverage", make_weighted_coverage},
      {"ProbCoverage", make_prob_coverage},
      {"WeightedProbCoverage", make_weighted_prob_coverage},
      {"SaturatedCoverage", make_saturated},
      {"Exemplar", make_exemplar},
      {"SampledExemplar", make_sampled_exemplar},
      {"SqrtModularDefaultKernel", make_sqrt_modular},
  };
}

class GainBatchTest : public ::testing::TestWithParam<OracleCase> {};

// A candidate list covering every id plus duplicates and reversed order —
// batch kernels must not assume sorted or unique input.
std::vector<ElementId> probe_ids(std::size_t n) {
  std::vector<ElementId> xs;
  xs.reserve(n + n / 2);
  for (std::size_t i = 0; i < n; ++i) {
    xs.push_back(static_cast<ElementId>(n - 1 - i));
  }
  for (std::size_t i = 0; i < n; i += 2) {
    xs.push_back(static_cast<ElementId>(i));
  }
  return xs;
}

TEST_P(GainBatchTest, BatchMatchesScalarExactly) {
  const auto oracle = GetParam().make();
  const std::size_t n = oracle->ground_size();
  util::Rng rng(23);

  // Check on the empty set and on three progressively grown states.
  for (int stage = 0; stage < 4; ++stage) {
    if (stage > 0) {
      for (int a = 0; a < 3; ++a) {
        oracle->add(static_cast<ElementId>(rng.next_below(n)));
      }
    }
    const std::vector<ElementId> xs = probe_ids(n);
    std::vector<double> batch(xs.size());
    oracle->gain_batch(xs, batch);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      EXPECT_EQ(batch[i], oracle->gain(xs[i]))
          << GetParam().name << " stage " << stage << " element " << xs[i];
    }
  }
}

TEST_P(GainBatchTest, AllocatingOverloadMatchesSpanOverload) {
  const auto oracle = GetParam().make();
  const std::vector<ElementId> xs = probe_ids(oracle->ground_size());
  std::vector<double> via_span(xs.size());
  oracle->gain_batch(xs, via_span);
  const std::vector<double> via_vector = oracle->gain_batch(xs);
  EXPECT_EQ(via_span, via_vector);
}

TEST_P(GainBatchTest, BatchCountsOneEvalPerElement) {
  const auto oracle = GetParam().make();
  const std::vector<ElementId> xs = probe_ids(oracle->ground_size());
  std::vector<double> out(xs.size());

  const std::uint64_t before = oracle->evals();
  oracle->gain_batch(xs, out);
  EXPECT_EQ(oracle->evals(), before + xs.size());

  // Unaccounted evaluation leaves the counter alone; charge_evals pairs
  // with it to restore exact accounting.
  oracle->gain_batch_unaccounted(xs, out);
  EXPECT_EQ(oracle->evals(), before + xs.size());
  oracle->charge_evals(xs.size());
  EXPECT_EQ(oracle->evals(), before + 2 * xs.size());
}

TEST_P(GainBatchTest, ParallelEvaluatorMatchesSerialAndCountsOnce) {
  const auto serial_oracle = GetParam().make();
  const auto parallel_oracle = GetParam().make();
  // Same pinned growth on both copies.
  for (ElementId x : {2u, 5u, 11u}) {
    serial_oracle->add(x);
    parallel_oracle->add(x);
  }
  const std::vector<ElementId> xs = probe_ids(serial_oracle->ground_size());

  std::vector<double> serial(xs.size());
  serial_oracle->gain_batch(xs, serial);

  dist::ThreadPool pool(4);
  BatchEvalOptions options;
  options.pool = &pool;
  options.min_parallel = 0;  // force the parallel path
  options.grain = 7;         // deliberately awkward chunking
  std::vector<double> parallel(xs.size());
  const std::uint64_t before = parallel_oracle->evals();
  evaluate_gains(*parallel_oracle, xs, parallel, options);

  EXPECT_EQ(serial, parallel) << GetParam().name;
  EXPECT_EQ(parallel_oracle->evals(), before + xs.size());
}

INSTANTIATE_TEST_SUITE_P(AllOracles, GainBatchTest,
                         ::testing::ValuesIn(all_cases()),
                         [](const auto& info) { return info.param.name; });

// ---------------------------------------------------------------------------
// Determinism regression: the batched rewiring of the selector family must
// not change a single pick relative to the seed's scalar implementation,
// reproduced here verbatim as the reference.

GreedyResult reference_scalar_greedy(SubmodularOracle& oracle,
                                     std::span<const ElementId> candidates,
                                     std::size_t budget,
                                     bool stop_when_no_gain) {
  const std::vector<ElementId> pool = unique_candidates(candidates);
  std::vector<bool> taken(pool.size(), false);
  GreedyResult result;
  const std::size_t rounds = std::min(budget, pool.size());
  for (std::size_t iter = 0; iter < rounds; ++iter) {
    double best_gain = 0.0;
    std::size_t best_idx = pool.size();
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (taken[i]) continue;
      const double g = oracle.gain(pool[i]);
      if (best_idx == pool.size() || g > best_gain) {
        best_gain = g;
        best_idx = i;
      }
    }
    if (best_idx == pool.size()) break;
    if (stop_when_no_gain && best_gain <= 0.0) break;
    taken[best_idx] = true;
    const double realized = oracle.add(pool[best_idx]);
    result.picks.push_back(pool[best_idx]);
    result.gains.push_back(realized);
    result.gained += realized;
  }
  return result;
}

class SelectorRegressionTest : public ::testing::TestWithParam<OracleCase> {};

TEST_P(SelectorRegressionTest, GreedyPicksUnchangedByBatching) {
  for (const bool stop : {false, true}) {
    const auto reference_oracle = GetParam().make();
    const auto batched_oracle = GetParam().make();
    const auto ids = testing::iota_ids(reference_oracle->ground_size());
    const GreedyResult reference =
        reference_scalar_greedy(*reference_oracle, ids, 12, stop);
    const GreedyResult batched =
        greedy(*batched_oracle, ids, 12, GreedyOptions{stop});
    EXPECT_EQ(reference.picks, batched.picks) << GetParam().name;
    EXPECT_EQ(reference.gains, batched.gains) << GetParam().name;
    // Work accounting must be untouched by batching: one eval per scanned
    // candidate per pass, plus one per add.
    EXPECT_EQ(reference_oracle->evals(), batched_oracle->evals())
        << GetParam().name;
  }
}

TEST_P(SelectorRegressionTest, LazyGreedyPicksUnchangedByBatching) {
  const auto reference_oracle = GetParam().make();
  const auto lazy_oracle = GetParam().make();
  const auto ids = testing::iota_ids(reference_oracle->ground_size());
  const GreedyResult reference =
      reference_scalar_greedy(*reference_oracle, ids, 12, true);
  const GreedyResult lazy =
      lazy_greedy(*lazy_oracle, ids, 12, GreedyOptions{true});
  EXPECT_EQ(reference.picks, lazy.picks) << GetParam().name;
  EXPECT_EQ(reference.gains, lazy.gains) << GetParam().name;
}

TEST_P(SelectorRegressionTest, ParallelBatchKeepsSelectionsIdentical) {
  dist::ThreadPool pool(4);
  GreedyOptions parallel_options{true};
  parallel_options.batch.pool = &pool;
  parallel_options.batch.min_parallel = 0;
  parallel_options.batch.grain = 5;

  const auto serial_oracle = GetParam().make();
  const auto parallel_oracle = GetParam().make();
  const auto ids = testing::iota_ids(serial_oracle->ground_size());
  const GreedyResult serial =
      greedy(*serial_oracle, ids, 10, GreedyOptions{true});
  const GreedyResult parallel =
      greedy(*parallel_oracle, ids, 10, parallel_options);
  EXPECT_EQ(serial.picks, parallel.picks) << GetParam().name;
  EXPECT_EQ(serial_oracle->evals(), parallel_oracle->evals());

  const auto serial_lazy = GetParam().make();
  const auto parallel_lazy = GetParam().make();
  const GreedyResult lazy_serial =
      lazy_greedy(*serial_lazy, ids, 10, GreedyOptions{true});
  const GreedyResult lazy_parallel =
      lazy_greedy(*parallel_lazy, ids, 10, parallel_options);
  EXPECT_EQ(lazy_serial.picks, lazy_parallel.picks) << GetParam().name;
  EXPECT_EQ(serial_lazy->evals(), parallel_lazy->evals());
}

INSTANTIATE_TEST_SUITE_P(AllOracles, SelectorRegressionTest,
                         ::testing::ValuesIn(all_cases()),
                         [](const auto& info) { return info.param.name; });

// Stochastic greedy consumes the RNG identically on both paths (the batch
// only replaces the gain scan), so picks must match the seed behavior too.
TEST(StochasticGreedyBatch, SampleScanUnchangedByParallelBatch) {
  const auto sets = testing::random_set_system(200, 400, 0.03, 31);
  dist::ThreadPool pool(4);
  StochasticGreedyOptions parallel_options;
  parallel_options.stop_when_no_gain = true;
  parallel_options.batch.pool = &pool;
  parallel_options.batch.min_parallel = 0;
  parallel_options.batch.grain = 9;
  StochasticGreedyOptions serial_options;
  serial_options.stop_when_no_gain = true;

  CoverageOracle serial_oracle(sets);
  CoverageOracle parallel_oracle(sets);
  const auto ids = testing::iota_ids(sets->num_sets());
  util::Rng serial_rng(77);
  util::Rng parallel_rng(77);
  const GreedyResult serial =
      stochastic_greedy(serial_oracle, ids, 15, serial_rng, serial_options);
  const GreedyResult parallel = stochastic_greedy(parallel_oracle, ids, 15,
                                                  parallel_rng,
                                                  parallel_options);
  EXPECT_EQ(serial.picks, parallel.picks);
  EXPECT_EQ(serial_oracle.evals(), parallel_oracle.evals());
}

}  // namespace
}  // namespace bds
