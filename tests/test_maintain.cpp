// CertifiedMaintainer (core/maintain.h): the certified maintenance loop
// that keeps a bicriteria answer valid across corpus mutations, re-solving
// only when the certificate decays past ε or the answer becomes
// unaddressable.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/maintain.h"
#include "core/upper_bound.h"
#include "data/dynamic.h"
#include "test_support.h"
#include "util/rng.h"

namespace bds {
namespace {

using data::DynamicCorpus;
using data::Mutation;
using data::MutationKind;
using testing::random_set_system;

MaintainConfig small_config() {
  MaintainConfig config;
  config.k = 5;
  config.epsilon = 0.2;
  config.max_rounds = 3;
  config.machines = 4;
  return config;
}

std::shared_ptr<DynamicCorpus> small_corpus(std::uint64_t seed) {
  return std::make_shared<DynamicCorpus>(random_set_system(40, 90, 0.08, seed),
                                         "maintain");
}

// Sets confined to the first 25 items of a 90-item universe: the maintained
// solution saturates what the corpus can cover, leaving a wide gap a
// dominating insert can exploit.
std::shared_ptr<DynamicCorpus> narrow_corpus(std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<std::uint32_t>> sets(40);
  for (auto& s : sets) {
    const std::size_t len = 2 + rng.next_below(5);
    for (std::size_t i = 0; i < len; ++i) {
      s.push_back(static_cast<std::uint32_t>(rng.next_below(25)));
    }
  }
  return std::make_shared<DynamicCorpus>(
      std::make_shared<const SetSystem>(std::move(sets), 90), "narrow");
}

TEST(DynamicMaintain, InitialSolveIsCertified) {
  CertifiedMaintainer maintainer(small_corpus(1), small_config());
  EXPECT_FALSE(maintainer.solution().empty());
  EXPECT_GT(maintainer.value(), 0.0);
  EXPECT_GE(maintainer.upper_bound(), maintainer.value());
  EXPECT_GE(maintainer.certified_ratio(), 1.0 - 0.2);
  EXPECT_EQ(maintainer.stats().batches, 0u)
      << "the initial solve is not a mutation batch";
  EXPECT_EQ(maintainer.oracle().corpus_epoch(), 0u);
}

TEST(DynamicMaintain, IrrelevantInsertIsKeptByTheCertificate) {
  const auto corpus = small_corpus(2);
  CertifiedMaintainer maintainer(corpus, small_config());
  const double value_before = maintainer.value();

  // A duplicate of an existing set adds no new coverage anywhere: the
  // certificate cannot decay, so the batch must be absorbed.
  const auto dup = corpus->set_items(0);
  const auto decision = maintainer.insert(
      std::vector<std::uint32_t>(dup.begin(), dup.end()));
  EXPECT_EQ(decision, MaintainDecision::kKept);
  EXPECT_EQ(maintainer.value(), value_before);
  EXPECT_EQ(maintainer.stats().kept, 1u);
  EXPECT_EQ(maintainer.stats().resolved, 0u);
  EXPECT_GT(maintainer.stats().certificate_evals, 0u);
  EXPECT_EQ(maintainer.stats().resolve_evals, 0u);
  EXPECT_EQ(maintainer.oracle().corpus_epoch(), corpus->epoch());
}

TEST(DynamicMaintain, ErasingASolutionMemberForcesAReSolve) {
  const auto corpus = small_corpus(3);
  CertifiedMaintainer maintainer(corpus, small_config());
  const ElementId member = maintainer.solution().front();

  EXPECT_EQ(maintainer.erase(member), MaintainDecision::kResolved);
  EXPECT_EQ(maintainer.stats().resolved, 1u);
  EXPECT_GT(maintainer.stats().resolve_evals, 0u);
  for (const ElementId x : maintainer.solution()) {
    EXPECT_NE(x, member) << "the re-solved answer must not contain the dead id";
    EXPECT_TRUE(corpus->is_live(x));
  }
  EXPECT_GE(maintainer.certified_ratio(), 1.0 - 0.2);
}

TEST(DynamicMaintain, DominatingInsertDecaysTheCertificate) {
  const auto corpus = narrow_corpus(4);
  CertifiedMaintainer maintainer(corpus, small_config());
  EXPECT_LE(maintainer.value(), 25.0);

  // One set covering the whole universe: f(OPT_k) jumps from <= 25 to 90,
  // the cached ratio collapses, and the maintainer must re-solve (and then
  // select the new set).
  std::vector<std::uint32_t> everything(90);
  for (std::uint32_t e = 0; e < 90; ++e) everything[e] = e;
  EXPECT_EQ(maintainer.insert(std::move(everything)),
            MaintainDecision::kResolved);
  const ElementId giant = static_cast<ElementId>(corpus->size() - 1);
  EXPECT_EQ(maintainer.solution().front(), giant);
  EXPECT_GE(maintainer.certified_ratio(), 1.0 - 0.2);
}

TEST(DynamicMaintain, BatchIsOneDecision) {
  const auto corpus = small_corpus(5);
  CertifiedMaintainer maintainer(corpus, small_config());

  std::vector<Mutation> batch(3);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i].kind = MutationKind::kInsert;
    batch[i].id = static_cast<ElementId>(corpus->size() + i);
    batch[i].items = {static_cast<std::uint32_t>(i)};
  }
  maintainer.apply(batch);
  EXPECT_EQ(maintainer.stats().batches, 1u);
  EXPECT_EQ(maintainer.stats().mutations, 3u);
  EXPECT_EQ(corpus->epoch(), 3u);
}

TEST(DynamicMaintain, ChurnKeepsMoreThanItReSolves) {
  const auto corpus = small_corpus(6);
  MaintainConfig config = small_config();
  config.epsilon = 0.3;  // generous tolerance: most churn must be absorbed
  CertifiedMaintainer maintainer(corpus, config);

  util::Rng rng(7);
  for (int step = 0; step < 30; ++step) {
    if (step % 5 == 4) {
      // Erase non-members so the unaddressable path stays out of the way.
      ElementId victim =
          static_cast<ElementId>(rng.next_below(corpus->size()));
      int guard = 0;
      while ((!corpus->is_live(victim) ||
              std::find(maintainer.solution().begin(),
                        maintainer.solution().end(),
                        victim) != maintainer.solution().end()) &&
             guard++ < 1000) {
        victim = static_cast<ElementId>(rng.next_below(corpus->size()));
      }
      maintainer.erase(victim);
    } else {
      std::vector<std::uint32_t> items(1 + rng.next_below(4));
      for (auto& e : items) {
        e = static_cast<std::uint32_t>(rng.next_below(90));
      }
      maintainer.insert(std::move(items));
    }
  }
  const MaintainStats& stats = maintainer.stats();
  EXPECT_EQ(stats.batches, 30u);
  EXPECT_LT(stats.resolve_rate(), 1.0)
      << "certified maintenance must absorb some of the churn";
  EXPECT_GT(stats.kept, stats.resolved)
      << "small mutations should mostly be kept under epsilon = 0.3";
  EXPECT_GE(maintainer.certified_ratio(), 1.0 - config.epsilon);
  EXPECT_EQ(maintainer.oracle().corpus_epoch(), corpus->epoch());
}

TEST(DynamicMaintain, RecertifiedRatioMatchesUpperBoundModule) {
  // The maintainer's certificate must be the core/upper_bound math, not an
  // ad-hoc bound: after a kept batch, upper_bound() equals
  // solution_upper_bound of the cached solution on a fresh oracle.
  const auto corpus = small_corpus(8);
  CertifiedMaintainer maintainer(corpus, small_config());
  const auto dup = corpus->set_items(1);
  ASSERT_EQ(maintainer.insert(std::vector<std::uint32_t>(dup.begin(),
                                                         dup.end())),
            MaintainDecision::kKept);

  const std::vector<ElementId> ground = corpus->live_ground();
  const double reference = solution_upper_bound(
      maintainer.oracle(), maintainer.solution(), ground, small_config().k);
  EXPECT_DOUBLE_EQ(maintainer.upper_bound(), reference);
}

TEST(DynamicMaintain, RebuildFallbackCountsRebuilds) {
  MaintainConfig config = small_config();
  config.oracle.prefer_incremental = false;  // force the rebuild path
  const auto corpus = small_corpus(9);
  CertifiedMaintainer maintainer(corpus, config);
  maintainer.insert({1, 2, 3});
  EXPECT_GE(maintainer.stats().oracle_rebuilds, 1u);
  EXPECT_EQ(maintainer.oracle().corpus_epoch(), corpus->epoch());
}

}  // namespace
}  // namespace bds
