// Cross-query gain fusion (objectives/gain_fusion.h): oracles routed
// through a GainFusionGroup must produce bitwise the same gains, values,
// and selections as unfused oracles — solo and under concurrency — while
// actually sharing streaming passes when requests overlap.
#include "objectives/gain_fusion.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/greedy.h"
#include "data/vectors_gen.h"
#include "objectives/exemplar.h"
#include "test_support.h"

namespace bds {
namespace {

using testing::iota_ids;

std::shared_ptr<const PointSet> make_points(std::uint32_t docs,
                                            std::uint64_t seed) {
  data::LdaVectorsConfig cfg;
  cfg.documents = docs;
  cfg.seed = seed;
  return data::make_lda_like_vectors(cfg);
}

TEST(GainFusion, SequentialGainsBitIdenticalToUnfused) {
  const auto points = make_points(160, 11);
  ExemplarOracle fused(points, 2.0);
  ExemplarOracle plain(points, 2.0);
  fused.attach_fusion(std::make_shared<GainFusionGroup>(points));

  const auto ground = iota_ids(points->size());
  // Interleave batch evaluations with adds so fusion is exercised against
  // evolving coverage state.
  for (const ElementId pick : {ElementId{3}, ElementId{41}, ElementId{97}}) {
    std::vector<double> g_fused(ground.size());
    std::vector<double> g_plain(ground.size());
    fused.gain_batch(ground, g_fused);
    plain.gain_batch(ground, g_plain);
    for (std::size_t i = 0; i < ground.size(); ++i) {
      ASSERT_EQ(g_fused[i], g_plain[i]) << "element " << i;
    }
    EXPECT_EQ(fused.gain(pick), plain.gain(pick));
    EXPECT_EQ(fused.add(pick), plain.add(pick));
    EXPECT_EQ(fused.value(), plain.value());
  }

  const FusionStats stats = fused.fusion()->stats();
  EXPECT_GT(stats.requests, 0u);
  EXPECT_GT(stats.rounds, 0u);
  EXPECT_GT(stats.mq_tiles, 0u);
}

TEST(GainFusion, ClonesShareTheGroup) {
  const auto points = make_points(64, 12);
  ExemplarOracle proto(points, 2.0);
  proto.attach_fusion(std::make_shared<GainFusionGroup>(points));

  const auto clone = proto.clone();
  auto* as_exemplar = dynamic_cast<ExemplarOracle*>(clone.get());
  ASSERT_NE(as_exemplar, nullptr);
  EXPECT_EQ(as_exemplar->fusion().get(), proto.fusion().get());
}

TEST(GainFusion, AttachRejectsForeignPointSet) {
  const auto points = make_points(48, 13);
  const auto other = make_points(48, 14);
  ExemplarOracle oracle(points, 2.0);
  EXPECT_THROW(oracle.attach_fusion(std::make_shared<GainFusionGroup>(other)),
               std::invalid_argument);
}

// Concurrent fused evaluations from many threads (each on its own clone,
// all sharing the group) must be bitwise equal to unfused evaluations and
// must not race (this is the case the TSan leg pins).
TEST(GainFusion, ConcurrentFusedEvaluationsMatchUnfused) {
  const auto points = make_points(200, 15);
  const auto ground = iota_ids(points->size());

  ExemplarOracle proto(points, 2.0);
  proto.attach_fusion(std::make_shared<GainFusionGroup>(points));
  proto.add(7);  // shared seed state in every clone

  ExemplarOracle plain(points, 2.0);
  plain.add(7);

  constexpr std::size_t kThreads = 6;
  const std::size_t chunk = ground.size() / kThreads;
  std::vector<std::vector<double>> fused(kThreads);
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      const auto clone = proto.clone();
      const std::size_t begin = t * chunk;
      const std::size_t end =
          t + 1 == kThreads ? ground.size() : begin + chunk;
      const std::span<const ElementId> slice(ground.data() + begin,
                                             end - begin);
      fused[t].resize(slice.size());
      // Two passes per thread so combiners see queued work arrive mid-round.
      clone->gain_batch_unaccounted(slice, fused[t]);
      clone->gain_batch_unaccounted(slice, fused[t]);
    });
  }
  for (auto& w : workers) w.join();

  std::vector<double> expected(ground.size());
  plain.gain_batch_unaccounted(ground, expected);
  for (std::size_t t = 0; t < kThreads; ++t) {
    const std::size_t begin = t * chunk;
    for (std::size_t i = 0; i < fused[t].size(); ++i) {
      ASSERT_EQ(fused[t][i], expected[begin + i])
          << "thread " << t << " element " << begin + i;
    }
  }
  EXPECT_EQ(proto.fusion()->stats().requests, 2 * kThreads);
}

// Fused selection end to end: greedy over a fused oracle must pick the
// same items with the same values as over an unfused one.
TEST(GainFusion, GreedySelectionUnchangedByFusion) {
  const auto points = make_points(120, 16);
  const auto ground = iota_ids(points->size());

  ExemplarOracle fused(points, 2.0);
  fused.attach_fusion(std::make_shared<GainFusionGroup>(points));
  ExemplarOracle plain(points, 2.0);

  auto fused_oracle = fused.clone();
  auto plain_oracle = plain.clone();
  const GreedyResult picks_fused = greedy(*fused_oracle, ground, 8);
  const GreedyResult picks_plain = greedy(*plain_oracle, ground, 8);
  EXPECT_EQ(picks_fused.picks, picks_plain.picks);
  EXPECT_EQ(fused_oracle->value(), plain_oracle->value());
}

}  // namespace
}  // namespace bds
