#include "core/adaptive.h"

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "data/synthetic_coverage.h"
#include "objectives/coverage.h"
#include "test_support.h"

namespace bds {
namespace {

using testing::iota_ids;
using testing::random_set_system;

TEST(Adaptive, ValidatesArguments) {
  const auto sys = random_set_system(20, 30, 0.2, 1);
  const CoverageOracle proto(sys);
  AdaptiveConfig cfg;
  cfg.k = 0;
  EXPECT_THROW(adaptive_bicriteria(proto, iota_ids(20), cfg),
               std::invalid_argument);
  cfg = {};
  cfg.target_ratio = 1.0;
  EXPECT_THROW(adaptive_bicriteria(proto, iota_ids(20), cfg),
               std::invalid_argument);
  cfg = {};
  cfg.max_rounds = 0;
  EXPECT_THROW(adaptive_bicriteria(proto, iota_ids(20), cfg),
               std::invalid_argument);
}

TEST(Adaptive, EasyInstanceStopsAfterOneRound) {
  // Heavy-tailed instance: a handful of dominant sets, then singletons.
  // After one round the top-k marginals are tiny, so the certificate is
  // tight and the loop stops immediately. (Note the bound is inherently
  // loose on disjoint *equal* sets — every remaining marginal is as large
  // as a solution set's — so "easy" for the certificate means skewed.)
  std::vector<std::vector<std::uint32_t>> sets;
  std::uint32_t next = 0;
  for (const std::uint32_t size : {50u, 25u, 12u, 6u, 3u}) {
    std::vector<std::uint32_t> s;
    for (std::uint32_t j = 0; j < size; ++j) s.push_back(next++);
    sets.push_back(std::move(s));
  }
  for (int i = 0; i < 30; ++i) sets.push_back({next++});
  const auto sys = std::make_shared<const SetSystem>(std::move(sets), next);
  const CoverageOracle proto(sys);

  AdaptiveConfig cfg;
  cfg.k = 5;
  cfg.target_ratio = 0.9;
  const auto adaptive =
      adaptive_bicriteria(proto, iota_ids(sys->num_sets()), cfg);
  EXPECT_TRUE(adaptive.target_reached);
  EXPECT_EQ(adaptive.result.rounds.size(), 1u);
  EXPECT_GE(adaptive.certified_ratio, 0.9);
}

TEST(Adaptive, HardInstanceSpendsMoreRounds) {
  data::SyntheticCoverageConfig data_cfg;
  data_cfg.universe_size = 1'000;
  data_cfg.planted_sets = 20;
  data_cfg.random_sets = 3'000;
  const auto instance = data::make_synthetic_coverage(data_cfg);
  const CoverageOracle proto(instance.sets);
  const auto ground = iota_ids(instance.sets->num_sets());

  AdaptiveConfig cfg;
  cfg.k = 20;
  cfg.target_ratio = 0.97;
  cfg.max_rounds = 6;
  cfg.runtime.seed = 3;
  const auto adaptive = adaptive_bicriteria(proto, ground, cfg);
  // Needs >1 round of k items each to certify 97% on the hard instance.
  EXPECT_GT(adaptive.result.rounds.size(), 1u);
  // The certificate trajectory is monotone non-decreasing.
  for (std::size_t i = 1; i < adaptive.ratio_after_round.size(); ++i) {
    EXPECT_GE(adaptive.ratio_after_round[i] + 1e-9,
              adaptive.ratio_after_round[i - 1]);
  }
  if (adaptive.target_reached) {
    EXPECT_GE(adaptive.certified_ratio, cfg.target_ratio);
  } else {
    EXPECT_EQ(adaptive.result.rounds.size(), cfg.max_rounds);
  }
}

TEST(Adaptive, CertificateIsSound) {
  // Whatever the ratio claims, f(S) really is >= ratio * f(OPT_k): check
  // against brute force on a tiny instance.
  const auto sys = random_set_system(12, 24, 0.25, 5);
  const CoverageOracle proto(sys);
  AdaptiveConfig cfg;
  cfg.k = 3;
  cfg.target_ratio = 0.8;
  const auto adaptive = adaptive_bicriteria(proto, iota_ids(12), cfg);

  const auto opt = brute_force_opt(proto, iota_ids(12), 3);
  EXPECT_GE(adaptive.result.value + 1e-9,
            adaptive.certified_ratio * opt.value);
}

TEST(Adaptive, MaxRoundsBoundsWork) {
  const auto sys = random_set_system(200, 400, 0.01, 7);
  const CoverageOracle proto(sys);
  AdaptiveConfig cfg;
  cfg.k = 3;
  cfg.items_per_round = 3;
  cfg.target_ratio = 0.999;  // unreachable for k=3 on a sparse instance
  cfg.max_rounds = 2;
  const auto adaptive = adaptive_bicriteria(proto, iota_ids(200), cfg);
  EXPECT_LE(adaptive.result.rounds.size(), 2u);
  EXPECT_EQ(adaptive.ratio_after_round.size(),
            adaptive.result.rounds.size());
}

TEST(Adaptive, ValueMatchesIndependentEvaluation) {
  const auto sys = random_set_system(150, 200, 0.04, 9);
  const CoverageOracle proto(sys);
  AdaptiveConfig cfg;
  cfg.k = 6;
  cfg.target_ratio = 0.95;
  const auto adaptive = adaptive_bicriteria(proto, iota_ids(150), cfg);
  EXPECT_NEAR(adaptive.result.value,
              evaluate_set(proto, adaptive.result.solution), 1e-9);
  EXPECT_GT(adaptive.upper_bound, 0.0);
}

}  // namespace
}  // namespace bds
