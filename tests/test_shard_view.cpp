// Shard-compacted view contract (objectives/shard_view.h): over the
// elements of its shard, a view must be *bit-identical* to a clone of the
// same oracle — same gains (exact double equality), same realized add
// gains, same selections, same evaluation accounting — while compacted
// families keep only O(shard)-sized mutable state and reject out-of-shard
// queries. Parametrized over every oracle family in the tree, including
// the clone-fallback ones (exemplar, logdet), for which the view is simply
// a clone and every guarantee except compaction still holds.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/greedy.h"
#include "objectives/coverage.h"
#include "objectives/coverage_incremental.h"
#include "objectives/exemplar.h"
#include "objectives/logdet.h"
#include "objectives/prob_coverage.h"
#include "objectives/saturated_coverage.h"
#include "objectives/submodular.h"
#include "test_support.h"
#include "util/rng.h"

namespace bds {
namespace {

std::shared_ptr<const ProbSetSystem> random_prob_sets(std::uint32_t n_sets,
                                                      std::uint32_t universe,
                                                      double density,
                                                      std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<ProbSetSystem::Entry>> sets(n_sets);
  for (auto& s : sets) {
    for (std::uint32_t e = 0; e < universe; ++e) {
      if (rng.next_bool(density)) {
        s.push_back({e, static_cast<float>(0.05 + 0.9 * rng.next_double())});
      }
    }
  }
  return std::make_shared<const ProbSetSystem>(std::move(sets), universe);
}

std::vector<double> random_weights(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> w(n);
  for (auto& v : w) v = 0.1 + rng.next_double();
  return w;
}

// Block-sparse similarity matrix: elements interact mostly within their
// block, so a shard drawn from few blocks leaves many all-zero rows for the
// saturated view to drop.
std::shared_ptr<const SimilarityMatrix> block_similarity(std::size_t n,
                                                         std::size_t blocks,
                                                         std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> values(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const bool same_block = (i % blocks) == (j % blocks);
      double v = 0.0;
      if (i == j) {
        v = 1.0;
      } else if (same_block && rng.next_bool(0.7)) {
        v = rng.next_double();
      }
      values[i * n + j] = v;
      values[j * n + i] = v;
    }
  }
  return std::make_shared<const SimilarityMatrix>(n, std::move(values));
}

std::shared_ptr<const PointSet> random_points(std::size_t n, std::size_t dim,
                                              std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> data(n * dim);
  for (auto& v : data) v = static_cast<float>(rng.next_double());
  auto points = std::make_shared<PointSet>(n, dim, std::move(data));
  points->normalize_rows();
  return points;
}

struct FamilyParam {
  std::string name;
  std::unique_ptr<SubmodularOracle> (*build)();
  bool compacted;  // expected supports_compacted_shard_view()
};

std::unique_ptr<SubmodularOracle> build_coverage() {
  return std::make_unique<CoverageOracle>(
      testing::random_set_system(60, 3000, 0.004, 11));
}

std::unique_ptr<SubmodularOracle> build_weighted_coverage() {
  return std::make_unique<WeightedCoverageOracle>(
      testing::random_set_system(60, 3000, 0.004, 12),
      random_weights(3000, 13));
}

std::unique_ptr<SubmodularOracle> build_prob_coverage() {
  return std::make_unique<ProbCoverageOracle>(
      random_prob_sets(60, 3000, 0.004, 14));
}

std::unique_ptr<SubmodularOracle> build_weighted_prob_coverage() {
  return std::make_unique<ProbCoverageOracle>(
      random_prob_sets(60, 3000, 0.004, 15), random_weights(3000, 16));
}

std::unique_ptr<SubmodularOracle> build_incremental_coverage() {
  return std::make_unique<IncrementalCoverageOracle>(
      testing::random_set_system(60, 3000, 0.004, 11));
}

std::unique_ptr<SubmodularOracle> build_saturated() {
  return std::make_unique<SaturatedCoverageOracle>(
      block_similarity(48, 6, 17), SaturatedCoverageConfig{0.3, {}, 0.0});
}

std::unique_ptr<SubmodularOracle> build_saturated_diversity() {
  const std::size_t n = 48;
  SaturatedCoverageConfig config;
  config.gamma = 0.3;
  config.lambda = 0.5;
  config.cluster_of.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    config.cluster_of[i] = static_cast<std::uint32_t>(i % 5);
  }
  return std::make_unique<SaturatedCoverageOracle>(block_similarity(n, 6, 18),
                                                   std::move(config));
}

std::unique_ptr<SubmodularOracle> build_exemplar() {
  return std::make_unique<ExemplarOracle>(random_points(80, 6, 19), 2.0);
}

std::unique_ptr<SubmodularOracle> build_logdet() {
  return std::make_unique<LogDetOracle>(random_points(40, 6, 20), 1.0, 0.5);
}

class ShardViewFamily : public ::testing::TestWithParam<FamilyParam> {
 protected:
  // A deterministic shard: every third element, plus the tail element.
  static std::vector<ElementId> make_shard(std::size_t ground) {
    std::vector<ElementId> shard;
    for (std::size_t x = 0; x < ground; x += 3) {
      shard.push_back(static_cast<ElementId>(x));
    }
    shard.push_back(static_cast<ElementId>(ground - 1));
    return shard;
  }

  // Seeds an accumulated coordinator set: a few ids, some inside the shard
  // and some outside it.
  static std::vector<ElementId> make_seed(std::size_t ground) {
    return {ElementId{0}, ElementId{1}, ElementId{2},
            static_cast<ElementId>(ground / 2),
            static_cast<ElementId>(ground - 2)};
  }
};

TEST_P(ShardViewFamily, ReportsExpectedCompaction) {
  const auto proto = GetParam().build();
  EXPECT_EQ(proto->supports_compacted_shard_view(), GetParam().compacted);
}

TEST_P(ShardViewFamily, GainsBitIdenticalToCloneWithSeededState) {
  const auto proto = GetParam().build();
  const std::size_t ground = proto->ground_size();
  // Non-empty coordinator state: the view must project the accumulated S,
  // not start from scratch.
  for (const ElementId s : make_seed(ground)) proto->add(s);

  const std::vector<ElementId> shard = make_shard(ground);
  const auto view = proto->shard_view(shard);
  const auto clone = proto->clone();

  ASSERT_EQ(view->evals(), 0u);
  for (const ElementId x : shard) {
    const double expected = clone->gain(x);
    const double actual = view->gain(x);
    EXPECT_EQ(actual, expected) << "element " << x;
  }
  EXPECT_EQ(view->evals(), clone->evals());

  // Batched path agrees too (same contract, one call).
  const std::vector<double> batch_view = view->gain_batch(shard);
  const std::vector<double> batch_clone = clone->gain_batch(shard);
  for (std::size_t i = 0; i < shard.size(); ++i) {
    EXPECT_EQ(batch_view[i], batch_clone[i]) << "element " << shard[i];
  }
}

TEST_P(ShardViewFamily, AddsStayBitIdenticalToClone) {
  const auto proto = GetParam().build();
  const std::size_t ground = proto->ground_size();
  for (const ElementId s : make_seed(ground)) proto->add(s);

  const std::vector<ElementId> shard = make_shard(ground);
  const auto view = proto->shard_view(shard);
  const auto clone = proto->clone();

  // Interleave adds (including a re-add and a seeded member) with full
  // shard re-evaluations; every realized and queried gain must match.
  const std::vector<ElementId> adds = {shard[1], shard[shard.size() / 2],
                                       shard[1], shard[0],
                                       shard[shard.size() - 1]};
  for (const ElementId a : adds) {
    EXPECT_EQ(view->add(a), clone->add(a)) << "add " << a;
    for (const ElementId x : shard) {
      EXPECT_EQ(view->gain(x), clone->gain(x))
          << "element " << x << " after adding " << a;
    }
  }
  EXPECT_EQ(view->value(), clone->value());
  EXPECT_EQ(view->evals(), clone->evals());
}

TEST_P(ShardViewFamily, LazyGreedySelectionsIdentical) {
  const auto proto = GetParam().build();
  const std::size_t ground = proto->ground_size();
  for (const ElementId s : make_seed(ground)) proto->add(s);

  const std::vector<ElementId> shard = make_shard(ground);
  const auto view = proto->shard_view(shard);
  const auto clone = proto->clone();

  const GreedyResult from_view = lazy_greedy(*view, shard, 8, {true});
  const GreedyResult from_clone = lazy_greedy(*clone, shard, 8, {true});
  EXPECT_EQ(from_view.picks, from_clone.picks);
  EXPECT_EQ(view->value(), clone->value());
  EXPECT_EQ(view->evals(), clone->evals());
}

TEST_P(ShardViewFamily, CompactedViewRejectsOutsideShardAndShrinksState) {
  const auto proto = GetParam().build();
  if (!proto->supports_compacted_shard_view()) GTEST_SKIP();
  const std::size_t ground = proto->ground_size();

  // A small shard: 4 elements out of the whole ground set.
  const std::vector<ElementId> shard = {
      ElementId{0}, ElementId{3}, static_cast<ElementId>(ground / 2),
      static_cast<ElementId>(ground - 1)};
  const auto view = proto->shard_view(shard);

  const auto outside = static_cast<ElementId>(1);
  EXPECT_THROW(view->gain(outside), std::out_of_range);
  EXPECT_THROW(view->add(outside), std::out_of_range);

  // Compaction: the 4-element view must be strictly smaller than a clone.
  EXPECT_LT(view->state_bytes(), proto->clone()->state_bytes());
}

TEST_P(ShardViewFamily, DuplicateShardEntriesCollapse) {
  const auto proto = GetParam().build();
  const std::vector<ElementId> shard = {ElementId{5}, ElementId{2},
                                        ElementId{5}, ElementId{2},
                                        ElementId{9}};
  const auto view = proto->shard_view(shard);
  const auto clone = proto->clone();
  for (const ElementId x : {ElementId{2}, ElementId{5}, ElementId{9}}) {
    EXPECT_EQ(view->gain(x), clone->gain(x));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, ShardViewFamily,
    ::testing::Values(
        FamilyParam{"Coverage", &build_coverage, true},
        FamilyParam{"WeightedCoverage", &build_weighted_coverage, true},
        FamilyParam{"ProbCoverage", &build_prob_coverage, true},
        FamilyParam{"WeightedProbCoverage", &build_weighted_prob_coverage,
                    true},
        FamilyParam{"IncrementalCoverage", &build_incremental_coverage, true},
        FamilyParam{"SaturatedCoverage", &build_saturated, true},
        FamilyParam{"SaturatedCoverageDiversity", &build_saturated_diversity,
                    true},
        FamilyParam{"Exemplar", &build_exemplar, false},
        FamilyParam{"LogDet", &build_logdet, false}),
    [](const ::testing::TestParamInfo<FamilyParam>& info) {
      return info.param.name;
    });

// The saturated view's whole point is dropping similarity rows no shard
// member touches; with a block-sparse matrix and a single-block shard, the
// surviving-row state must be far below the clone's O(n) footprint.
TEST(ShardViewSaturated, DropsRowsOutsideTheShardsBlocks) {
  const std::size_t n = 48;
  SaturatedCoverageOracle oracle(block_similarity(n, 6, 21), {0.3, {}, 0.0});
  // Shard = block 0 (every 6th element): other blocks' rows only intersect
  // it on the diagonal, which is zero there, so they get dropped.
  std::vector<ElementId> shard;
  for (std::size_t i = 0; i < n; i += 6) {
    shard.push_back(static_cast<ElementId>(i));
  }
  const auto view = oracle.shard_view(shard);
  const auto clone = oracle.clone();
  EXPECT_LT(view->state_bytes() * 2, clone->state_bytes());
  for (const ElementId x : shard) {
    EXPECT_EQ(view->gain(x), clone->gain(x));
  }
}

// Views of views: a compacted view is itself an oracle, so cloning it (what
// a nested round would do) must preserve state and stay consistent.
TEST(ShardViewNesting, CloneOfViewMatchesView) {
  CoverageOracle oracle(testing::random_set_system(40, 200, 0.05, 22));
  oracle.add(ElementId{7});
  const std::vector<ElementId> shard = {ElementId{1}, ElementId{7},
                                        ElementId{13}, ElementId{21}};
  const auto view = oracle.shard_view(shard);
  view->add(ElementId{13});
  const auto copy = view->clone();
  for (const ElementId x : shard) {
    EXPECT_EQ(copy->gain(x), view->gain(x));
  }
}

}  // namespace
}  // namespace bds
