#include "dist/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace bds::dist {
namespace {

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ExplicitSize) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, SubmitVoidTask) {
  ThreadPool pool(2);
  std::atomic<int> flag{0};
  pool.submit([&flag] { flag = 1; }).get();
  EXPECT_EQ(flag.load(), 1);
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(1);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(500);
  pool.parallel_for(500, [&visits](std::size_t i) { ++visits[i]; });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ParallelForRethrowsFirstError) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 3) {
                                     throw std::invalid_argument("bad");
                                   }
                                 }),
               std::invalid_argument);
}

TEST(ThreadPool, ParallelForRunsConcurrently) {
  // With 2 threads, two 50ms sleeps should overlap (well under 100ms total).
  ThreadPool pool(2);
  const auto start = std::chrono::steady_clock::now();
  pool.parallel_for(2, [](std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  });
  const auto elapsed = std::chrono::steady_clock::now() - start;
  if (std::thread::hardware_concurrency() >= 2) {
    EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 0.095);
  } else {
    SUCCEED() << "single-core host; overlap not observable";
  }
}

TEST(ThreadPool, ChunkedParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (const std::size_t grain : {std::size_t{1}, std::size_t{7},
                                  std::size_t{64}, std::size_t{1000}}) {
    std::vector<std::atomic<int>> visits(500);
    pool.parallel_for(500, grain, [&visits](std::size_t i) { ++visits[i]; });
    for (const auto& v : visits) EXPECT_EQ(v.load(), 1) << "grain " << grain;
  }
}

TEST(ThreadPool, ChunkedParallelForGrainZeroBehavesAsOne) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> visits(30);
  pool.parallel_for(30, 0, [&visits](std::size_t i) { ++visits[i]; });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPool, ChunkedParallelForZeroIterationsIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(0, 16, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(0, 0, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ChunkedParallelForGrainLargerThanRange) {
  // n < grain must still visit every index exactly once (single chunk).
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(5);
  pool.parallel_for(5, 1000, [&visits](std::size_t i) { ++visits[i]; });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPool, ChunkedParallelForAscendingWithinChunk) {
  // A chunk is one task, so indices inside it run in ascending order on one
  // thread; with grain >= n the whole range is sequential.
  ThreadPool pool(4);
  std::vector<std::size_t> order;
  pool.parallel_for(100, 100, [&order](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 100u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, ChunkedParallelForRethrowsFirstError) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(100, 8,
                                 [](std::size_t i) {
                                   if (i == 42) {
                                     throw std::invalid_argument("bad");
                                   }
                                 }),
               std::invalid_argument);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(2);
  for (int batch = 0; batch < 5; ++batch) {
    std::atomic<int> counter{0};
    pool.parallel_for(20, [&counter](std::size_t) { ++counter; });
    EXPECT_EQ(counter.load(), 20);
  }
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++counter;
      });
    }
  }  // destructor must wait for all 50
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace bds::dist
