#include "data/prob_gen.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/greedy.h"
#include "test_support.h"

namespace bds::data {
namespace {

ClickModelConfig small_config() {
  ClickModelConfig cfg;
  cfg.ads = 200;
  cfg.users = 800;
  cfg.mean_reach = 10.0;
  cfg.seed = 5;
  return cfg;
}

TEST(ClickModel, ShapeAndRanges) {
  const auto cfg = small_config();
  const auto sets = make_click_model(cfg);
  EXPECT_EQ(sets->num_sets(), cfg.ads);
  EXPECT_EQ(sets->universe_size(), cfg.users);
  for (ElementId ad = 0; ad < cfg.ads; ++ad) {
    std::set<std::uint32_t> users;
    for (const auto& e : sets->set_entries(ad)) {
      EXPECT_LT(e.element, cfg.users);
      EXPECT_GE(e.probability, cfg.min_click);
      EXPECT_LE(e.probability, cfg.max_click);
      EXPECT_TRUE(users.insert(e.element).second)
          << "duplicate user in ad " << ad;
    }
    EXPECT_GE(users.size(), 1u);
  }
}

TEST(ClickModel, TotalEntriesNearBudget) {
  const auto cfg = small_config();
  const auto sets = make_click_model(cfg);
  const double budget = double(cfg.ads) * cfg.mean_reach;
  EXPECT_GT(double(sets->total_entries()), 0.4 * budget);
  EXPECT_LT(double(sets->total_entries()), 1.5 * budget);
}

TEST(ClickModel, ReachIsHeavyTailed) {
  auto cfg = small_config();
  cfg.ads = 1'000;
  cfg.users = 5'000;
  const auto sets = make_click_model(cfg);
  std::size_t max_reach = 0, min_reach = cfg.users;
  for (ElementId ad = 0; ad < cfg.ads; ++ad) {
    max_reach = std::max(max_reach, sets->set_entries(ad).size());
    min_reach = std::min(min_reach, sets->set_entries(ad).size());
  }
  EXPECT_GT(max_reach, 20 * std::max<std::size_t>(1, min_reach));
}

TEST(ClickModel, DeterministicBySeed) {
  const auto a = make_click_model(small_config());
  const auto b = make_click_model(small_config());
  ASSERT_EQ(a->total_entries(), b->total_entries());
  for (ElementId ad = 0; ad < a->num_sets(); ++ad) {
    const auto ea = a->set_entries(ad);
    const auto eb = b->set_entries(ad);
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t i = 0; i < ea.size(); ++i) {
      EXPECT_EQ(ea[i].element, eb[i].element);
      EXPECT_FLOAT_EQ(ea[i].probability, eb[i].probability);
    }
  }
}

TEST(ClickModel, ValidatesConfig) {
  auto cfg = small_config();
  cfg.ads = 0;
  EXPECT_THROW(make_click_model(cfg), std::invalid_argument);
  cfg = small_config();
  cfg.mean_reach = 0.0;
  EXPECT_THROW(make_click_model(cfg), std::invalid_argument);
  cfg = small_config();
  cfg.min_click = 0.7f;
  cfg.max_click = 0.3f;
  EXPECT_THROW(make_click_model(cfg), std::invalid_argument);
}

TEST(ClickModel, OracleIsSubmodularOnGeneratedInstance) {
  auto cfg = small_config();
  cfg.ads = 25;
  cfg.users = 60;
  const auto sets = make_click_model(cfg);
  const ProbCoverageOracle proto(sets);
  EXPECT_EQ(bds::testing::count_submodularity_violations(proto, 5, 40, 1e-9),
            0);
  EXPECT_EQ(bds::testing::count_monotonicity_violations(proto, 5, 20, 1e-9),
            0);
}

TEST(ClickModel, GreedyBeatsRandomClearly) {
  auto cfg = small_config();
  cfg.ads = 400;
  cfg.users = 1'500;
  const auto sets = make_click_model(cfg);
  const ProbCoverageOracle proto(sets);
  const auto ground = bds::testing::iota_ids(cfg.ads);

  auto g = proto.clone();
  const double greedy_value = lazy_greedy(*g, ground, 10).gained;
  util::Rng rng(3);
  auto r = proto.clone();
  const double random_value = random_subset(*r, ground, 10, rng).gained;
  EXPECT_GT(greedy_value, 1.5 * random_value);
}

}  // namespace
}  // namespace bds::data
