// Cross-cutting invariants every distributed algorithm in the library must
// satisfy, checked over a grid of (algorithm × objective × seed):
//
//   I1. reported value == independent re-evaluation of the solution;
//   I2. solution ids are valid and (for stop-on-no-gain runs) distinct;
//   I3. per-round traces are monotone in value and sum to the output size
//       (bicriteria family);
//   I4. stats sanity: critical path <= total work, worker evals > 0 when
//       anything was selected, bytes accounted;
//   I5. determinism: same seed -> identical solution; and
//   I6. failure injection: a throwing oracle inside a worker surfaces as an
//       exception, never a silent wrong answer.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <stdexcept>

#include "core/baselines.h"
#include "core/bicriteria.h"
#include "data/prob_gen.h"
#include "data/vectors_gen.h"
#include "objectives/coverage.h"
#include "objectives/exemplar.h"
#include "objectives/logdet.h"
#include "objectives/prob_coverage.h"
#include "test_support.h"

namespace bds {
namespace {

using testing::iota_ids;
using testing::random_set_system;

// ------------------------------------------------------------ the grid

enum class Algo {
  kPractical,
  kTheory,
  kMultiplicity,
  kHybrid,
  kGreedi,
  kRandGreedi,
  kPseudo,
  kParallel,
  kNaive,
  kScaling,
};

const char* algo_name(Algo a) {
  switch (a) {
    case Algo::kPractical: return "practical";
    case Algo::kTheory: return "theory";
    case Algo::kMultiplicity: return "multiplicity";
    case Algo::kHybrid: return "hybrid";
    case Algo::kGreedi: return "greedi";
    case Algo::kRandGreedi: return "randgreedi";
    case Algo::kPseudo: return "pseudo";
    case Algo::kParallel: return "parallel";
    case Algo::kNaive: return "naive";
    case Algo::kScaling: return "scaling";
  }
  return "?";
}

enum class Objective { kCoverage, kProbCoverage, kExemplar, kLogDet };

DistributedResult run(Algo algo, const SubmodularOracle& proto,
                      std::span<const ElementId> ground, std::uint64_t seed) {
  constexpr std::size_t kK = 5;
  switch (algo) {
    case Algo::kPractical:
    case Algo::kTheory:
    case Algo::kMultiplicity:
    case Algo::kHybrid: {
      BicriteriaConfig cfg;
      cfg.mode = algo == Algo::kPractical   ? BicriteriaMode::kPractical
                 : algo == Algo::kTheory    ? BicriteriaMode::kTheory
                 : algo == Algo::kMultiplicity
                     ? BicriteriaMode::kMultiplicity
                     : BicriteriaMode::kHybrid;
      cfg.k = kK;
      cfg.output_items = 10;
      cfg.rounds = 2;
      cfg.epsilon = 0.2;
      cfg.machines = algo == Algo::kPractical ? 0 : 6;
      cfg.runtime.seed = seed;
      return bicriteria_greedy(proto, ground, cfg);
    }
    case Algo::kGreedi:
    case Algo::kRandGreedi:
    case Algo::kPseudo: {
      OneRoundConfig cfg;
      cfg.k = kK;
      cfg.machines = 6;
      cfg.runtime.seed = seed;
      if (algo == Algo::kGreedi) return greedi(proto, ground, cfg);
      if (algo == Algo::kRandGreedi) return rand_greedi(proto, ground, cfg);
      return pseudo_greedy(proto, ground, cfg);
    }
    case Algo::kParallel: {
      ParallelAlgConfig cfg;
      cfg.k = kK;
      cfg.epsilon = 0.4;
      cfg.machines = 6;
      cfg.runtime.seed = seed;
      return parallel_alg(proto, ground, cfg);
    }
    case Algo::kNaive: {
      NaiveDistributedConfig cfg;
      cfg.k = kK;
      cfg.epsilon = 0.2;
      cfg.machines = 6;
      cfg.runtime.seed = seed;
      return naive_distributed_greedy(proto, ground, cfg);
    }
    case Algo::kScaling: {
      GreedyScalingConfig cfg;
      cfg.k = kK;
      cfg.epsilon = 0.3;
      cfg.machines = 6;
      cfg.runtime.seed = seed;
      return greedy_scaling(proto, ground, cfg);
    }
  }
  throw std::logic_error("unreachable");
}

std::unique_ptr<SubmodularOracle> make_proto(Objective objective,
                                             std::uint64_t seed) {
  if (objective == Objective::kCoverage) {
    return std::make_unique<CoverageOracle>(
        random_set_system(120, 150, 0.05, seed));
  }
  if (objective == Objective::kProbCoverage) {
    data::ClickModelConfig cfg;
    cfg.ads = 120;
    cfg.users = 300;
    cfg.mean_reach = 8.0;
    cfg.seed = seed;
    return std::make_unique<ProbCoverageOracle>(data::make_click_model(cfg));
  }
  data::LdaVectorsConfig cfg;
  cfg.documents = 120;
  cfg.topics = 8;
  cfg.clusters = 5;
  cfg.seed = seed;
  const auto points = data::make_lda_like_vectors(cfg);
  if (objective == Objective::kExemplar) {
    return std::make_unique<ExemplarOracle>(points, 2.0);
  }
  return std::make_unique<LogDetOracle>(points, 0.6, 0.3);
}

class DistributedInvariants
    : public ::testing::TestWithParam<
          std::tuple<Algo, Objective, std::uint64_t>> {};

TEST_P(DistributedInvariants, HoldAcrossTheGrid) {
  const auto [algo, objective, seed] = GetParam();
  SCOPED_TRACE(algo_name(algo));
  const auto proto = make_proto(objective, seed);
  const auto ground = iota_ids(proto->ground_size());

  const auto result = run(algo, *proto, ground, seed);

  // I1: value is real.
  EXPECT_NEAR(result.value, evaluate_set(*proto, result.solution), 1e-6);

  // I2: ids valid and distinct.
  std::set<ElementId> unique;
  for (const ElementId x : result.solution) {
    EXPECT_LT(x, proto->ground_size());
    EXPECT_TRUE(unique.insert(x).second) << "duplicate pick " << x;
  }

  // I3: traces are value-monotone.
  double prev = 0.0;
  for (const auto& trace : result.rounds) {
    EXPECT_GE(trace.value_after + 1e-9, prev);
    prev = trace.value_after;
  }
  if (!result.rounds.empty()) {
    EXPECT_NEAR(result.rounds.back().value_after, result.value, 1e-9);
  }

  // I4: stats sanity.
  const auto& stats = result.stats;
  EXPECT_LE(stats.critical_path_evals(), stats.total_evals());
  if (!result.solution.empty()) {
    EXPECT_GT(stats.total_evals(), 0u);
    EXPECT_GT(stats.bytes_communicated(), 0u);
  }
  for (const auto& round : stats.rounds) {
    EXPECT_LE(round.max_machine_evals, round.worker_evals);
    EXPECT_LE(round.max_machine_seconds, round.sum_machine_seconds + 1e-12);
  }

  // I5: determinism under the same seed.
  const auto again = run(algo, *proto, ground, seed);
  EXPECT_EQ(again.solution, result.solution);
  EXPECT_DOUBLE_EQ(again.value, result.value);
}

std::string grid_name(
    const ::testing::TestParamInfo<std::tuple<Algo, Objective, std::uint64_t>>&
        info) {
  const char* objective = "";
  switch (std::get<1>(info.param)) {
    case Objective::kCoverage: objective = "_cov_"; break;
    case Objective::kProbCoverage: objective = "_prob_"; break;
    case Objective::kExemplar: objective = "_exemplar_"; break;
    case Objective::kLogDet: objective = "_logdet_"; break;
  }
  return std::string(algo_name(std::get<0>(info.param))) + objective +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DistributedInvariants,
    ::testing::Combine(
        ::testing::Values(Algo::kPractical, Algo::kTheory,
                          Algo::kMultiplicity, Algo::kHybrid, Algo::kGreedi,
                          Algo::kRandGreedi, Algo::kPseudo, Algo::kParallel,
                          Algo::kNaive, Algo::kScaling),
        ::testing::Values(Objective::kCoverage, Objective::kProbCoverage,
                          Objective::kExemplar, Objective::kLogDet),
        ::testing::Values<std::uint64_t>(1, 2)),
    grid_name);

// ------------------------------------------------- failure injection (I6)

// An oracle that throws after a fixed number of evaluations — simulates a
// worker crashing mid-greedy.
class FusedOracle final : public SubmodularOracle {
 public:
  FusedOracle(std::shared_ptr<const SetSystem> sets, std::uint64_t fuse)
      : inner_(std::move(sets)), fuse_(fuse) {}

  std::size_t ground_size() const noexcept override {
    return inner_.ground_size();
  }

 protected:
  double do_gain(ElementId x) const override {
    burn();
    return inner_.gain(x);
  }
  double do_add(ElementId x) override {
    burn();
    return inner_.add(x);
  }
  std::unique_ptr<SubmodularOracle> do_clone() const override {
    return std::make_unique<FusedOracle>(*this);
  }

 private:
  void burn() const {
    if (++burned_ > fuse_) {
      throw std::runtime_error("fused oracle: evaluation budget exhausted");
    }
  }

  mutable CoverageOracle inner_;
  std::uint64_t fuse_;
  mutable std::uint64_t burned_ = 0;
};

TEST(FailureInjection, WorkerOracleExplosionPropagates) {
  const auto sys = random_set_system(200, 150, 0.05, 9);
  const FusedOracle proto(sys, 50);  // dies partway through round 1

  BicriteriaConfig cfg;
  cfg.k = 5;
  cfg.output_items = 10;
  EXPECT_THROW(bicriteria_greedy(proto, iota_ids(200), cfg),
               std::runtime_error);
}

TEST(FailureInjection, HealthyRunWithGenerousFuseSucceeds) {
  const auto sys = random_set_system(60, 80, 0.1, 11);
  const FusedOracle proto(sys, 1u << 20);
  BicriteriaConfig cfg;
  cfg.k = 4;
  cfg.output_items = 8;
  const auto result = bicriteria_greedy(proto, iota_ids(60), cfg);
  EXPECT_FALSE(result.solution.empty());
}

TEST(FailureInjection, BaselineAlsoPropagates) {
  const auto sys = random_set_system(200, 150, 0.05, 13);
  const FusedOracle proto(sys, 30);
  OneRoundConfig cfg;
  cfg.k = 5;
  cfg.machines = 6;
  EXPECT_THROW(rand_greedi(proto, iota_ids(200), cfg), std::runtime_error);
}

}  // namespace
}  // namespace bds
