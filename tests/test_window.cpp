// SlidingWindowSieve (core/window.h): certified sliding-window
// summarization. The certificate (UB grows by at most the arrival's
// singleton value) must stay a true upper bound at every tick, re-solves
// must fire exactly when a solution member expires or the ratio decays, and
// the churn rate must beat re-solving every tick.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/streaming.h"
#include "core/window.h"
#include "test_support.h"
#include "objectives/coverage.h"
#include "util/rng.h"

namespace bds {
namespace {

using testing::random_set_system;

CoverageOracle coverage_proto(std::uint64_t seed) {
  return CoverageOracle(random_set_system(60, 120, 0.08, seed));
}

TEST(WindowSieve, RejectsDegenerateConfigs) {
  const auto proto = coverage_proto(1);
  WindowConfig config;
  config.window = 0;
  EXPECT_THROW(SlidingWindowSieve(proto, config), std::invalid_argument);
  config.window = 8;
  config.k = 0;
  EXPECT_THROW(SlidingWindowSieve(proto, config), std::invalid_argument);
  config.k = 3;
  config.decay_epsilon = 1.5;
  EXPECT_THROW(SlidingWindowSieve(proto, config), std::invalid_argument);
}

TEST(WindowSieve, WindowHoldsTheLastWArrivals) {
  const auto proto = coverage_proto(2);
  WindowConfig config;
  config.window = 4;
  config.k = 2;
  SlidingWindowSieve sieve(proto, config);

  for (ElementId x = 0; x < 6; ++x) sieve.push(x);
  const std::vector<ElementId> expect = {2, 3, 4, 5};
  EXPECT_EQ(std::vector<ElementId>(sieve.window().begin(),
                                   sieve.window().end()),
            expect);
  EXPECT_EQ(sieve.stats().arrivals, 6u);
  EXPECT_EQ(sieve.stats().expirations, 2u);
}

TEST(WindowSieve, SolutionAlwaysDescribesTheCurrentWindow) {
  const auto proto = coverage_proto(3);
  WindowConfig config;
  config.window = 10;
  config.k = 3;
  SlidingWindowSieve sieve(proto, config);

  util::Rng rng(4);
  for (int t = 0; t < 80; ++t) {
    sieve.push(static_cast<ElementId>(rng.next_below(60)));
    const auto window = sieve.window();
    for (const ElementId s : sieve.solution()) {
      EXPECT_NE(std::find(window.begin(), window.end(), s), window.end())
          << "solution member " << s << " is not in the window at tick " << t;
    }
  }
}

TEST(WindowSieve, UpperBoundDominatesTheWindowSieveValueAtEveryTick) {
  // The running UB must bound f(OPT_k) of the *current* window. We check
  // the weaker-but-sufficient invariant it implies: UB dominates what a
  // fresh sieve over the window achieves, at every tick.
  const auto proto = coverage_proto(5);
  WindowConfig config;
  config.window = 12;
  config.k = 3;
  config.decay_epsilon = 0.3;
  SlidingWindowSieve sieve(proto, config);

  util::Rng rng(6);
  for (int t = 0; t < 60; ++t) {
    const bool resolved = sieve.push(static_cast<ElementId>(rng.next_below(60)));
    SieveStreamingConfig ref_cfg;
    ref_cfg.k = config.k;
    ref_cfg.epsilon = config.sieve_epsilon;
    const auto window = sieve.window();
    const auto reference = sieve_streaming(
        proto, std::span<const ElementId>(window.begin(), window.end()),
        ref_cfg);
    EXPECT_GE(sieve.upper_bound(), reference.value - 1e-9)
        << "tick " << t;
    EXPECT_GE(sieve.upper_bound(), sieve.value() - 1e-9) << "tick " << t;
    if (!resolved) {
      // A kept tick is a certificate claim: the cached value still clears
      // the decay threshold. (A resolved tick only promises the sieve's own
      // 1/2 - eps ratio, so the stronger bound is not asserted there.)
      EXPECT_GE(sieve.value(),
                (1.0 - config.decay_epsilon) * sieve.upper_bound() - 1e-9)
          << "a kept tick must still satisfy the certificate at tick " << t;
    }
  }
}

TEST(WindowSieve, CertificateAbsorbsMostTicks) {
  const auto proto = coverage_proto(7);
  WindowConfig config;
  config.window = 20;
  config.k = 4;
  config.decay_epsilon = 0.4;
  SlidingWindowSieve sieve(proto, config);

  util::Rng rng(8);
  for (int t = 0; t < 200; ++t) {
    sieve.push(static_cast<ElementId>(rng.next_below(60)));
  }
  const WindowStats& stats = sieve.stats();
  EXPECT_EQ(stats.arrivals, 200u);
  EXPECT_GT(stats.kept, 0u);
  EXPECT_LT(stats.resolve_rate(), 1.0)
      << "the certificate must absorb some ticks";
  EXPECT_GT(stats.resolves, 0u)
      << "a 20-wide window over 200 arrivals must expire solution members";
}

TEST(WindowSieve, ExpiringASolutionMemberTriggersAReSolve) {
  const auto proto = coverage_proto(9);
  WindowConfig config;
  config.window = 3;
  config.k = 3;
  SlidingWindowSieve sieve(proto, config);

  // Fill the window; with k == window every pushed element with gain can be
  // in the solution, so wrapping around must evict members and re-solve.
  for (ElementId x = 0; x < 3; ++x) sieve.push(x);
  const std::uint64_t resolves_before = sieve.stats().resolves;
  ASSERT_FALSE(sieve.solution().empty());
  const ElementId oldest_member = sieve.solution().front();
  ASSERT_EQ(oldest_member, sieve.window().front())
      << "test setup: the oldest window element should be in the solution";
  const bool resolved = sieve.push(10);
  EXPECT_TRUE(resolved);
  EXPECT_GT(sieve.stats().resolves, resolves_before);
}

}  // namespace
}  // namespace bds
