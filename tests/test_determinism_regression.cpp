// Golden-value regression: the repository's experiments are reproducible
// *because* every random stream is pinned — these tests freeze a few
// end-to-end outputs so an accidental change to the RNG, the partitioner's
// consumption order, or a tie-break rule is caught immediately rather than
// silently shifting every figure. If a change here is intentional (e.g. a
// deliberate algorithm fix), regenerate the constants and say so in the
// commit; EXPERIMENTS.md numbers shift with them.
#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/bicriteria.h"
#include "data/synthetic_coverage.h"
#include "objectives/coverage.h"
#include "util/rng.h"

namespace bds {
namespace {

TEST(DeterminismRegression, RngStreamIsFrozen) {
  util::Rng rng(12345);
  EXPECT_EQ(rng.next_u64(), 13720838825685603483ULL);
  EXPECT_EQ(rng.next_u64(), 2398916695208396998ULL);
  EXPECT_EQ(rng.next_u64(), 17770384849984869256ULL);
}

namespace {
struct Fixture {
  data::SyntheticCoverageInstance instance;
  std::vector<ElementId> ground;

  Fixture() {
    data::SyntheticCoverageConfig cfg;
    cfg.universe_size = 500;
    cfg.planted_sets = 10;
    cfg.random_sets = 200;
    cfg.seed = 99;
    instance = data::make_synthetic_coverage(cfg);
    ground.resize(instance.sets->num_sets());
    for (std::size_t i = 0; i < ground.size(); ++i) {
      ground[i] = static_cast<ElementId>(i);
    }
  }
};
}  // namespace

TEST(DeterminismRegression, BicriteriaPipelineIsFrozen) {
  const Fixture fx;
  const CoverageOracle proto(fx.instance.sets);
  BicriteriaConfig cfg;
  cfg.k = 5;
  cfg.output_items = 8;
  cfg.rounds = 2;
  cfg.runtime.seed = 7;
  const auto result = bicriteria_greedy(proto, fx.ground, cfg);
  EXPECT_DOUBLE_EQ(result.value, 362.0);
  EXPECT_EQ(result.solution,
            (std::vector<ElementId>{10, 143, 12, 60, 142, 132, 63, 24}));
}

// The parallel batch evaluator must not move a single golden value: same
// frozen outputs with parallel_central on (see core/batch_eval.h for the
// bit-identical guarantee this rests on).
TEST(DeterminismRegression, BicriteriaParallelCentralMatchesGolden) {
  const Fixture fx;
  const CoverageOracle proto(fx.instance.sets);
  BicriteriaConfig cfg;
  cfg.k = 5;
  cfg.output_items = 8;
  cfg.rounds = 2;
  cfg.runtime.seed = 7;
  cfg.runtime.parallel_central = true;
  cfg.runtime.threads = 4;
  const auto result = bicriteria_greedy(proto, fx.ground, cfg);
  EXPECT_DOUBLE_EQ(result.value, 362.0);
  EXPECT_EQ(result.solution,
            (std::vector<ElementId>{10, 143, 12, 60, 142, 132, 63, 24}));
}

TEST(DeterminismRegression, RandGreediParallelCentralMatchesGolden) {
  const Fixture fx;
  const CoverageOracle proto(fx.instance.sets);
  OneRoundConfig cfg;
  cfg.k = 4;
  cfg.machines = 5;
  cfg.runtime.seed = 3;
  cfg.runtime.parallel_central = true;
  cfg.runtime.threads = 4;
  const auto result = rand_greedi(proto, fx.ground, cfg);
  EXPECT_DOUBLE_EQ(result.value, 217.0);
  EXPECT_EQ(result.solution, (std::vector<ElementId>{18, 200, 33, 26}));
}

TEST(DeterminismRegression, RandGreediPipelineIsFrozen) {
  const Fixture fx;
  const CoverageOracle proto(fx.instance.sets);
  OneRoundConfig cfg;
  cfg.k = 4;
  cfg.machines = 5;
  cfg.runtime.seed = 3;
  const auto result = rand_greedi(proto, fx.ground, cfg);
  EXPECT_DOUBLE_EQ(result.value, 217.0);
  EXPECT_EQ(result.solution, (std::vector<ElementId>{18, 200, 33, 26}));
}

// Worker oracle mode (shard view, the default, vs the PR-1 clone path) must
// not move a single golden value: views are bit-identical over their shard,
// so the selections — and hence the frozen outputs — cannot shift.
TEST(DeterminismRegression, BicriteriaCloneWorkersMatchGolden) {
  const Fixture fx;
  const CoverageOracle proto(fx.instance.sets);
  BicriteriaConfig cfg;
  cfg.k = 5;
  cfg.output_items = 8;
  cfg.rounds = 2;
  cfg.runtime.seed = 7;
  cfg.runtime.worker_oracle = WorkerOracleMode::kClone;
  const auto result = bicriteria_greedy(proto, fx.ground, cfg);
  EXPECT_DOUBLE_EQ(result.value, 362.0);
  EXPECT_EQ(result.solution,
            (std::vector<ElementId>{10, 143, 12, 60, 142, 132, 63, 24}));
}

// The incremental-gain coordinator upgrade is integer-exact, so it must
// reproduce the golden values too — with or without shard-view workers.
TEST(DeterminismRegression, BicriteriaIncrementalGainsMatchGolden) {
  const Fixture fx;
  const CoverageOracle proto(fx.instance.sets);
  for (const WorkerOracleMode mode :
       {WorkerOracleMode::kShardView, WorkerOracleMode::kClone}) {
    BicriteriaConfig cfg;
    cfg.k = 5;
    cfg.output_items = 8;
    cfg.rounds = 2;
    cfg.runtime.seed = 7;
    cfg.runtime.worker_oracle = mode;
    cfg.runtime.incremental_gains = true;
    const auto result = bicriteria_greedy(proto, fx.ground, cfg);
    EXPECT_DOUBLE_EQ(result.value, 362.0);
    EXPECT_EQ(result.solution,
              (std::vector<ElementId>{10, 143, 12, 60, 142, 132, 63, 24}));
  }
}

TEST(DeterminismRegression, RandGreediBothSwitchesMatchGolden) {
  const Fixture fx;
  const CoverageOracle proto(fx.instance.sets);
  OneRoundConfig cfg;
  cfg.k = 4;
  cfg.machines = 5;
  cfg.runtime.seed = 3;
  cfg.runtime.worker_oracle = WorkerOracleMode::kClone;
  cfg.runtime.incremental_gains = true;
  const auto result = rand_greedi(proto, fx.ground, cfg);
  EXPECT_DOUBLE_EQ(result.value, 217.0);
  EXPECT_EQ(result.solution, (std::vector<ElementId>{18, 200, 33, 26}));
}

}  // namespace
}  // namespace bds
