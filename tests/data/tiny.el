# tiny.el — checked-in edge list for test_convert and the CI smoke leg.
% Both '#' and '%' comment styles, a self-loop, and a duplicate edge are
% present on purpose: the parser must drop them.
0 1
1 2
2 0
2 3
3 4
4 5
5 6
6 3
1 7
7 8
8 9
9 1
4 4
0 1
10 11
11 12
12 10
5 13
13 14
14 15
15 5
