#include "core/streaming.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/brute_force.h"
#include "core/greedy.h"
#include "objectives/coverage.h"
#include "test_support.h"

namespace bds {
namespace {

using testing::iota_ids;
using testing::random_set_system;

TEST(SieveStreaming, ValidatesArguments) {
  const auto sys = random_set_system(10, 20, 0.3, 1);
  const CoverageOracle proto(sys);
  SieveStreamingConfig cfg;
  cfg.k = 0;
  EXPECT_THROW(sieve_streaming(proto, iota_ids(10), cfg),
               std::invalid_argument);
  cfg.k = 3;
  cfg.epsilon = 0.0;
  EXPECT_THROW(sieve_streaming(proto, iota_ids(10), cfg),
               std::invalid_argument);
  cfg.epsilon = 1.0;
  EXPECT_THROW(sieve_streaming(proto, iota_ids(10), cfg),
               std::invalid_argument);
}

TEST(SieveStreaming, EmptyStreamGivesEmptySolution) {
  const auto sys = random_set_system(10, 20, 0.3, 2);
  const CoverageOracle proto(sys);
  const auto result = sieve_streaming(proto, {}, {3, 0.1});
  EXPECT_TRUE(result.solution.empty());
  EXPECT_DOUBLE_EQ(result.value, 0.0);
}

TEST(SieveStreaming, AllEmptySetsGiveZero) {
  const auto sys = std::make_shared<const SetSystem>(
      std::vector<std::vector<std::uint32_t>>{{}, {}, {}}, 5);
  const CoverageOracle proto(sys);
  const auto result = sieve_streaming(proto, iota_ids(3), {2, 0.1});
  EXPECT_DOUBLE_EQ(result.value, 0.0);
}

TEST(SieveStreaming, RespectsCardinality) {
  const auto sys = random_set_system(60, 100, 0.1, 3);
  const CoverageOracle proto(sys);
  const auto result = sieve_streaming(proto, iota_ids(60), {5, 0.2});
  EXPECT_LE(result.solution.size(), 5u);
  std::set<ElementId> unique(result.solution.begin(), result.solution.end());
  EXPECT_EQ(unique.size(), result.solution.size());
}

TEST(SieveStreaming, ValueMatchesIndependentEvaluation) {
  const auto sys = random_set_system(80, 120, 0.08, 4);
  const CoverageOracle proto(sys);
  const auto result = sieve_streaming(proto, iota_ids(80), {6, 0.15});
  EXPECT_NEAR(result.value, evaluate_set(proto, result.solution), 1e-9);
}

class SieveGuarantee : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SieveGuarantee, AchievesHalfMinusEpsilonOfOptimum) {
  const auto sys = random_set_system(14, 30, 0.2, GetParam());
  const CoverageOracle proto(sys);
  const std::size_t k = 3;
  const auto opt = brute_force_opt(proto, iota_ids(14), k);
  const double eps = 0.1;
  const auto result = sieve_streaming(proto, iota_ids(14), {k, eps});
  EXPECT_GE(result.value, (0.5 - eps) * opt.value - 1e-9) << "seed "
                                                          << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SieveGuarantee,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(SieveStreaming, OrderInsensitiveQuality) {
  // Streaming order affects the solution but not the guarantee: check a
  // reversed and a shuffled stream both stay within the bound.
  const auto sys = random_set_system(40, 80, 0.12, 21);
  const CoverageOracle proto(sys);
  const std::size_t k = 5;

  auto greedy_oracle = proto.clone();
  const double greedy_value =
      greedy(*greedy_oracle, iota_ids(40), k).gained;

  auto forward = iota_ids(40);
  auto backward = forward;
  std::reverse(backward.begin(), backward.end());
  auto shuffled = forward;
  util::Rng rng(21);
  rng.shuffle(std::span<ElementId>(shuffled));

  for (const auto& stream : {forward, backward, shuffled}) {
    const auto result = sieve_streaming(proto, stream, {k, 0.1});
    EXPECT_GE(result.value, 0.4 * greedy_value);
  }
}

TEST(SieveStreaming, SingleItemStream) {
  const auto sys = random_set_system(5, 10, 0.4, 23);
  const CoverageOracle proto(sys);
  const std::vector<ElementId> stream{2};
  const auto result = sieve_streaming(proto, stream, {3, 0.2});
  ASSERT_EQ(result.solution.size(), 1u);
  EXPECT_EQ(result.solution[0], 2u);
}

TEST(SieveStreaming, MemoryStaysBounded) {
  // O(k log(k)/eps) items across sieves — far below n.
  const auto sys = random_set_system(500, 400, 0.02, 25);
  const CoverageOracle proto(sys);
  const std::size_t k = 8;
  const double eps = 0.2;
  const auto result = sieve_streaming(proto, iota_ids(500), {k, eps});
  const double sieve_count_bound =
      std::log(2.0 * double(k)) / std::log(1.0 + eps) + 2.0;
  EXPECT_LE(result.peak_memory_items,
            std::uint64_t(double(k) * sieve_count_bound));
  EXPECT_GT(result.sieves_alive, 0u);
}

TEST(SieveStreaming, EvalCountLinearInStreamTimesSieves) {
  const auto sys = random_set_system(300, 200, 0.03, 27);
  const CoverageOracle proto(sys);
  const auto result = sieve_streaming(proto, iota_ids(300), {5, 0.25});
  // Each arrival: 1 singleton probe + <= #sieves offers (+1 per accept).
  const double sieves_upper =
      std::log(2.0 * 5.0) / std::log(1.25) + 2.0;
  EXPECT_LE(result.oracle_evals,
            std::uint64_t(300.0 * (sieves_upper + 1.0) + 100.0));
}

TEST(SieveStreaming, WorksOnNonCoverageOracle) {
  testing::SqrtModularOracle proto({1.0, 25.0, 16.0, 4.0, 9.0});
  const auto result = sieve_streaming(proto, iota_ids(5), {2, 0.1});
  // Optimum pair is {1, 2} with sqrt(41); sieve must land at >= (1/2 - eps).
  EXPECT_GE(result.value, (0.5 - 0.1) * std::sqrt(41.0) - 1e-9);
}

}  // namespace
}  // namespace bds
