// The summary service end to end (serve/service.h): bit-identity of served
// answers against direct runs, in-flight coalescing of concurrent
// identical queries, certified-field invalidation, cache-unsafe bypass,
// load shedding (degraded prefix / rejection), and per-query spans.
#include "serve/service.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/registry.h"
#include "data/dynamic.h"
#include "test_support.h"
#include "util/rng.h"

namespace bds {
namespace {

using serve::Query;
using serve::ServeOutcome;
using serve::ServeResult;
using serve::ServiceOptions;
using serve::SummaryService;
using testing::iota_ids;
using testing::random_set_system;

std::shared_ptr<SubmodularOracle> small_coverage(std::uint64_t seed = 41) {
  return std::make_shared<CoverageOracle>(
      random_set_system(120, 220, 0.05, seed));
}

Query base_query(std::size_t k) {
  Query q;
  q.corpus = "corpus";
  q.algorithm = "bicriteria";
  q.k = k;
  q.runtime.seed = 5;
  return q;
}

TEST(Serve, ExactHitBitIdenticalToDirectRun) {
  const auto proto = small_coverage();
  const auto ground = iota_ids(proto->ground_size());

  SummaryService service;
  service.add_corpus("corpus", "coverage", proto);

  const Query q = base_query(10);
  const ServeResult first = service.query(q);   // miss: computes + caches
  const ServeResult second = service.query(q);  // exact hit

  AlgorithmParams params;
  params.k = 10;
  RuntimeOptions runtime;
  runtime.seed = 5;
  const RunResult direct =
      run_distributed("bicriteria", *proto, ground, runtime, params);

  EXPECT_EQ(first.outcome, ServeOutcome::kComputed);
  EXPECT_EQ(second.outcome, ServeOutcome::kHit);
  for (const ServeResult* r : {&first, &second}) {
    EXPECT_EQ(r->solution, direct.solution);
    EXPECT_EQ(r->value, direct.value);  // bitwise
    EXPECT_GE(r->upper_bound, r->value);
  }
  EXPECT_EQ(service.stats().hits, 1u);
  EXPECT_EQ(service.stats().computed, 1u);
  EXPECT_GT(service.stats().evals_saved, 0u);
}

TEST(Serve, SmallerBudgetServedAsBitwisePrefix) {
  const auto proto = small_coverage();
  const auto ground = iota_ids(proto->ground_size());

  SummaryService service;
  service.add_corpus("corpus", "coverage", proto);
  (void)service.query(base_query(12));  // warm at k = 12

  AlgorithmParams params;
  params.k = 12;
  RuntimeOptions runtime;
  runtime.seed = 5;
  const RunResult direct =
      run_distributed("bicriteria", *proto, ground, runtime, params);
  auto replay = proto->clone();
  std::vector<double> prefix_value{replay->value()};
  for (const ElementId x : direct.solution) {
    replay->add(x);
    prefix_value.push_back(replay->value());
  }

  for (const std::size_t k : {1u, 3u, 7u, 11u}) {
    const ServeResult r = service.query(base_query(k));
    EXPECT_EQ(r.outcome, ServeOutcome::kHit) << "k=" << k;
    const std::size_t len = std::min<std::size_t>(k, direct.solution.size());
    ASSERT_EQ(r.solution.size(), len);
    EXPECT_TRUE(std::equal(r.solution.begin(), r.solution.end(),
                           direct.solution.begin()));
    EXPECT_EQ(r.value, prefix_value[len]);  // bitwise replayed prefix value
    EXPECT_GE(r.upper_bound, r.value);
  }
}

TEST(Serve, ConcurrentIdenticalQueriesCoalesceOntoOneRun) {
  const auto proto = small_coverage();
  SummaryService service;
  service.add_corpus("corpus", "coverage", proto);

  constexpr std::size_t kClients = 8;
  std::vector<ServeResult> results(kClients);
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&service, &results, c] {
      results[c] = service.query(base_query(8));
    });
  }
  for (auto& t : clients) t.join();

  // Exactly one computation; everyone else rode along (coalesced onto the
  // in-flight run, or hit the cache it populated).
  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.computed, 1u);
  EXPECT_EQ(stats.hits + stats.coalesced, kClients - 1);
  EXPECT_EQ(service.cache_stats().insertions, 1u);
  for (std::size_t c = 1; c < kClients; ++c) {
    EXPECT_EQ(results[c].solution, results[0].solution);
    EXPECT_EQ(results[c].value, results[0].value);  // bitwise
  }
}

TEST(Serve, CertifiedFieldChangesMissTheCache) {
  const auto proto = small_coverage();
  SummaryService service;
  service.add_corpus("corpus", "coverage", proto);
  (void)service.query(base_query(8));
  ASSERT_EQ(service.stats().computed, 1u);

  Query other_seed = base_query(8);
  other_seed.runtime.seed = 6;
  EXPECT_EQ(service.query(other_seed).outcome, ServeOutcome::kComputed);

  Query other_eps = base_query(8);
  other_eps.epsilon = 0.25;
  EXPECT_EQ(service.query(other_eps).outcome, ServeOutcome::kComputed);

  Query other_alg = base_query(8);
  other_alg.algorithm = "greedi";
  EXPECT_EQ(service.query(other_alg).outcome, ServeOutcome::kComputed);

  Query other_mode = base_query(8);
  other_mode.runtime.worker_oracle = WorkerOracleMode::kClone;
  EXPECT_EQ(service.query(other_mode).outcome, ServeOutcome::kComputed);

  // The original configuration is still cached.
  EXPECT_EQ(service.query(base_query(8)).outcome, ServeOutcome::kHit);
}

TEST(Serve, CacheUnsafeRuntimeComputesFreshEveryTime) {
  const auto proto = small_coverage();
  SummaryService service;
  service.add_corpus("corpus", "coverage", proto);

  Query faulted = base_query(6);
  faulted.runtime.faults = dist::FaultPlan::recoverable(3);
  faulted.runtime.retry.max_attempts = 0;

  const ServeResult first = service.query(faulted);
  const ServeResult second = service.query(faulted);
  EXPECT_EQ(first.outcome, ServeOutcome::kComputed);
  EXPECT_EQ(second.outcome, ServeOutcome::kComputed);
  EXPECT_EQ(service.stats().computed, 2u);
  EXPECT_EQ(service.cache_stats().insertions, 0u);  // never certified
  // The recoverable mix retries until heard, so the answers still agree.
  EXPECT_EQ(first.solution, second.solution);
}

TEST(Serve, FullQueueDegradesToCachedPrefixOrRejects) {
  const auto proto = small_coverage();
  const auto ground = iota_ids(proto->ground_size());

  ServiceOptions options;
  options.max_per_tenant = 0;  // every miss sheds: forces the shed paths
  SummaryService service(options);
  service.add_corpus("corpus", "coverage", proto);

  // Nothing cached yet: shedding has nothing to degrade to.
  const ServeResult rejected = service.query(base_query(8));
  EXPECT_EQ(rejected.outcome, ServeOutcome::kRejected);
  EXPECT_TRUE(rejected.solution.empty());

  // Pre-warm the cache out of band (the startup pattern), then ask for a
  // LARGER budget: the lookup misses, and shedding serves the smaller
  // cached summary as a degraded answer instead of failing.
  AlgorithmParams params;
  params.k = 6;
  RuntimeOptions runtime;
  runtime.seed = 5;
  const RunResult run =
      run_distributed("bicriteria", *proto, ground, runtime, params);
  const serve::QueryKey key = serve::make_key(
      "corpus", "coverage", "bicriteria", params.epsilon, params.rounds,
      params.machines, runtime);
  service.cache().insert(serve::build_summary(key, 6, run, *proto, ground));

  const ServeResult degraded = service.query(base_query(12));
  EXPECT_EQ(degraded.outcome, ServeOutcome::kDegraded);
  EXPECT_EQ(degraded.solution, run.solution);  // best certified prefix
  EXPECT_EQ(degraded.budget_k, 6u);            // bound covers cached budget
  // And an exact-budget query is still a plain hit: hits bypass admission.
  EXPECT_EQ(service.query(base_query(6)).outcome, ServeOutcome::kHit);
  EXPECT_EQ(service.stats().rejected, 1u);
  EXPECT_EQ(service.stats().degraded, 1u);
}

TEST(Serve, QuerySpansRecordOutcomes) {
  const auto proto = small_coverage();
  ServiceOptions options;
  options.record_query_spans = true;
  SummaryService service(options);
  service.add_corpus("corpus", "coverage", proto);

  (void)service.query(base_query(8));
  (void)service.query(base_query(8));
  (void)service.query(base_query(4));

  const auto spans = service.drain_query_spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].outcome, "computed");
  EXPECT_EQ(spans[1].outcome, "hit");
  EXPECT_EQ(spans[2].outcome, "hit");
  EXPECT_EQ(spans[0].budget_k, 8u);
  EXPECT_GT(spans[0].run_seconds, 0.0);
  EXPECT_EQ(spans[1].run_seconds, 0.0);

  const std::string json = dist::query_spans_to_json(spans);
  EXPECT_NE(json.find("\"queries\":["), std::string::npos);
  EXPECT_NE(json.find("\"outcome\":\"hit\""), std::string::npos);

  EXPECT_TRUE(service.drain_query_spans().empty());  // drained
}

TEST(Serve, MultiTenantMixDrainsCleanly) {
  const auto proto = small_coverage();
  SummaryService service;
  service.add_corpus("corpus", "coverage", proto);

  constexpr std::size_t kClients = 6;
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&service, c] {
      Query q = base_query(4 + 2 * (c % 3));
      q.tenant = "tenant-" + std::to_string(c % 3);
      (void)service.query(q);
    });
  }
  for (auto& t : clients) t.join();

  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.queries, kClients);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(service.queue_depth(), 0u);
  // Three distinct budgets over one configuration: at most 3 computations
  // (fewer if a larger budget landed first and prefix-served the rest).
  EXPECT_LE(stats.computed, 3u);
}

TEST(Serve, UnknownNamesThrowListingKnownOnes) {
  const auto proto = small_coverage();
  SummaryService service;
  service.add_corpus("corpus", "coverage", proto);

  Query bad_corpus = base_query(4);
  bad_corpus.corpus = "nope";
  try {
    (void)service.query(bad_corpus);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("corpus"), std::string::npos);
  }

  Query bad_algorithm = base_query(4);
  bad_algorithm.algorithm = "nope";
  try {
    (void)service.query(bad_algorithm);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("bicriteria"), std::string::npos);
  }

  EXPECT_THROW(service.add_corpus("c2", "not-an-objective", small_coverage()),
               std::invalid_argument);
  EXPECT_THROW(service.add_corpus("corpus", "coverage", small_coverage()),
               std::invalid_argument);  // duplicate name
}

// ---------------------------------------------------------------------------
// Dynamic corpora: epoch-keyed caching + invalidate-or-recertify mutations.

// Sets confined to the first 40 items of a 220-item universe: the cached
// solution saturates the coverable range, so a duplicate insert is exactly
// gain-neutral while a universe-covering insert collapses the certificate.
std::shared_ptr<data::DynamicCorpus> dynamic_corpus(std::uint64_t seed = 43) {
  util::Rng rng(seed);
  std::vector<std::vector<std::uint32_t>> sets(60);
  for (auto& s : sets) {
    const std::size_t len = 3 + rng.next_below(6);
    for (std::size_t i = 0; i < len; ++i) {
      s.push_back(static_cast<std::uint32_t>(rng.next_below(40)));
    }
  }
  return std::make_shared<data::DynamicCorpus>(
      std::make_shared<const SetSystem>(std::move(sets), 220), "churn");
}

TEST(ServeDynamic, MutationBumpsEpochAndStopsStaleHits) {
  SummaryService service;
  const auto corpus = dynamic_corpus();
  service.add_dynamic_corpus("churn", "coverage", corpus);

  Query q = base_query(8);
  q.corpus = "churn";
  const ServeResult before = service.query(q);
  EXPECT_EQ(before.outcome, ServeOutcome::kComputed);
  EXPECT_EQ(before.epoch, 0u);
  EXPECT_EQ(service.query(q).outcome, ServeOutcome::kHit);

  // A mutation moves the corpus to epoch 1; answers must be for epoch 1
  // (never a stale epoch-0 summary served as current).
  const auto outcome = service.corpus_insert("churn", {1, 2, 3});
  EXPECT_EQ(outcome.epoch, 1u);
  EXPECT_EQ(service.corpus_epoch("churn"), 1u);
  const ServeResult after = service.query(q);
  EXPECT_EQ(after.epoch, 1u);
  EXPECT_EQ(service.stats().mutations, 1u);
}

TEST(ServeDynamic, HarmlessMutationRecertifiesInsteadOfFlushing) {
  SummaryService service;
  const auto corpus = dynamic_corpus();
  service.add_dynamic_corpus("churn", "coverage", corpus);

  Query q = base_query(8);
  q.corpus = "churn";
  (void)service.query(q);  // populate the cache at epoch 0

  // Inserting a duplicate of an existing set changes no gain anywhere: the
  // cached summary must survive re-keyed at epoch 1, and the next query is
  // a *hit* — no re-solve, evals saved.
  const auto dup = corpus->set_items(0);
  const auto outcome = service.corpus_insert(
      "churn", std::vector<std::uint32_t>(dup.begin(), dup.end()));
  EXPECT_EQ(outcome.summaries_recertified, 1u);
  EXPECT_EQ(outcome.summaries_invalidated, 0u);

  const ServeResult after = service.query(q);
  EXPECT_EQ(after.outcome, ServeOutcome::kHit);
  EXPECT_EQ(after.epoch, 1u);
  EXPECT_EQ(service.stats().summaries_recertified, 1u);
}

TEST(ServeDynamic, DominatingInsertInvalidatesTheDecayedSummary) {
  SummaryService service;
  const auto corpus = dynamic_corpus();
  service.add_dynamic_corpus("churn", "coverage", corpus);

  Query q = base_query(8);
  q.corpus = "churn";
  const ServeResult before = service.query(q);

  // One set covering the whole universe: the old summary's certificate
  // collapses, so the mutation must drop it and the next query recomputes —
  // selecting the new set first.
  std::vector<std::uint32_t> everything(220);
  for (std::uint32_t e = 0; e < 220; ++e) everything[e] = e;
  const auto outcome = service.corpus_insert("churn", std::move(everything));
  EXPECT_EQ(outcome.summaries_recertified, 0u);
  EXPECT_EQ(outcome.summaries_invalidated, 1u);

  const ServeResult after = service.query(q);
  EXPECT_EQ(after.outcome, ServeOutcome::kComputed);
  ASSERT_FALSE(after.solution.empty());
  EXPECT_EQ(after.solution.front(), outcome.id);
  EXPECT_GT(after.value, before.value);
}

TEST(ServeDynamic, ErasingASolutionMemberInvalidates) {
  SummaryService service;
  const auto corpus = dynamic_corpus();
  service.add_dynamic_corpus("churn", "coverage", corpus);

  Query q = base_query(8);
  q.corpus = "churn";
  const ServeResult before = service.query(q);
  ASSERT_FALSE(before.solution.empty());

  const auto outcome =
      service.corpus_erase("churn", before.solution.front());
  EXPECT_EQ(outcome.summaries_invalidated, 1u);
  const ServeResult after = service.query(q);
  EXPECT_EQ(after.outcome, ServeOutcome::kComputed);
  for (const ElementId x : after.solution) {
    EXPECT_NE(x, before.solution.front());
  }
}

TEST(ServeDynamic, MutatedAnswerMatchesFreshRebuildBitwise) {
  // A query computed *after* mutations runs on the service's incremental
  // oracle; it must be bitwise what a from-scratch rebuild of the mutated
  // corpus produces. (A recertified cached answer is intentionally the old
  // certified solution, so the cache stays cold here.)
  SummaryService service;
  const auto corpus = dynamic_corpus();
  service.add_dynamic_corpus("churn", "coverage", corpus);

  service.corpus_insert("churn", {7, 8, 9, 10, 11});
  service.corpus_erase("churn", 3);

  Query q = base_query(8);
  q.corpus = "churn";
  const ServeResult served = service.query(q);
  EXPECT_EQ(served.outcome, ServeOutcome::kComputed);

  data::DynamicOracleOptions rebuild_opts;
  rebuild_opts.prefer_incremental = false;
  const auto rebuilt =
      data::make_dynamic_oracle(*corpus, "coverage", rebuild_opts);
  AlgorithmParams params;
  params.k = 8;
  RuntimeOptions runtime;
  runtime.seed = 5;
  const auto ground = corpus->live_ground();
  const RunResult direct =
      run_distributed("bicriteria", *rebuilt, ground, runtime, params);
  EXPECT_EQ(served.solution, direct.solution);
  EXPECT_EQ(served.value, direct.value);  // bitwise
}

TEST(ServeDynamic, MutationSpansRecordEpochAndDecisions) {
  ServiceOptions options;
  options.record_query_spans = true;
  SummaryService service(options);
  const auto corpus = dynamic_corpus();
  service.add_dynamic_corpus("churn", "coverage", corpus);

  Query q = base_query(6);
  q.corpus = "churn";
  (void)service.query(q);
  service.corpus_insert("churn", {1, 2});

  const auto spans = service.drain_query_spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].outcome, "computed");
  EXPECT_EQ(spans[0].epoch, 0u);
  EXPECT_EQ(spans[1].outcome, "mutate-insert");
  EXPECT_EQ(spans[1].epoch, 1u);
  EXPECT_EQ(spans[1].summaries_recertified +
                spans[1].summaries_invalidated,
            1u);
}

TEST(ServeDynamic, FrozenCorpusRefusesMutations) {
  SummaryService service;
  service.add_corpus("corpus", "coverage", small_coverage());
  EXPECT_THROW(service.corpus_insert("corpus", {1}), std::invalid_argument);
  EXPECT_THROW(service.corpus_erase("corpus", 0), std::invalid_argument);
  EXPECT_THROW(service.corpus_insert("nope", {1}), std::invalid_argument);
}

}  // namespace
}  // namespace bds
