#include "core/greedy.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/brute_force.h"
#include "objectives/coverage.h"
#include "test_support.h"

namespace bds {
namespace {

using testing::iota_ids;
using testing::random_set_system;

TEST(UniqueCandidates, SortsAndDeduplicates) {
  const std::vector<ElementId> in{5, 1, 5, 3, 1};
  EXPECT_EQ(unique_candidates(in), (std::vector<ElementId>{1, 3, 5}));
  EXPECT_TRUE(unique_candidates({}).empty());
}

TEST(Greedy, PicksObviousBestFirst) {
  // set0 covers 3, set1 covers 1 (new), set2 covers 1.
  const auto sys = std::make_shared<const SetSystem>(
      std::vector<std::vector<std::uint32_t>>{{0, 1, 2}, {2, 3}, {4}}, 5);
  CoverageOracle oracle(sys);
  const auto result = greedy(oracle, iota_ids(3), 2);
  EXPECT_EQ(result.picks[0], 0u);
  EXPECT_DOUBLE_EQ(result.gains[0], 3.0);
  EXPECT_DOUBLE_EQ(result.gained, oracle.value());
}

TEST(Greedy, RespectsBudget) {
  const auto sys = random_set_system(20, 40, 0.2, 1);
  CoverageOracle oracle(sys);
  const auto result = greedy(oracle, iota_ids(20), 5);
  EXPECT_EQ(result.size(), 5u);
}

TEST(Greedy, BudgetBeyondPoolSelectsEverything) {
  const auto sys = random_set_system(6, 20, 0.3, 2);
  CoverageOracle oracle(sys);
  const auto result = greedy(oracle, iota_ids(6), 100);
  EXPECT_EQ(result.size(), 6u);
}

TEST(Greedy, PicksAreDistinct) {
  const auto sys = random_set_system(15, 30, 0.3, 3);
  CoverageOracle oracle(sys);
  const auto result = greedy(oracle, iota_ids(15), 15);
  std::set<ElementId> unique(result.picks.begin(), result.picks.end());
  EXPECT_EQ(unique.size(), result.picks.size());
}

TEST(Greedy, DuplicateCandidatesHandled) {
  const auto sys = random_set_system(10, 20, 0.3, 4);
  CoverageOracle oracle(sys);
  std::vector<ElementId> dup;
  for (int r = 0; r < 3; ++r) {
    for (ElementId i = 0; i < 10; ++i) dup.push_back(i);
  }
  const auto result = greedy(oracle, dup, 10);
  std::set<ElementId> unique(result.picks.begin(), result.picks.end());
  EXPECT_EQ(unique.size(), result.picks.size());
}

TEST(Greedy, StopWhenNoGainTruncates) {
  // Universe of 3, after covering it all further gains are zero.
  const auto sys = std::make_shared<const SetSystem>(
      std::vector<std::vector<std::uint32_t>>{{0, 1, 2}, {0}, {1}, {2}}, 3);
  CoverageOracle stop_oracle(sys);
  const auto stopped = greedy(stop_oracle, iota_ids(4), 4, {true});
  EXPECT_EQ(stopped.size(), 1u);

  CoverageOracle full_oracle(sys);
  const auto full = greedy(full_oracle, iota_ids(4), 4, {false});
  EXPECT_EQ(full.size(), 4u);
  EXPECT_DOUBLE_EQ(full.gained, stopped.gained);
}

TEST(Greedy, EmptyCandidates) {
  const auto sys = random_set_system(5, 10, 0.3, 5);
  CoverageOracle oracle(sys);
  const auto result = greedy(oracle, {}, 3);
  EXPECT_TRUE(result.picks.empty());
  EXPECT_DOUBLE_EQ(result.gained, 0.0);
}

TEST(Greedy, ExtendsSeededOracle) {
  // Algorithm 2 semantics: marginal gains are relative to S ∪ S_i.
  const auto sys = std::make_shared<const SetSystem>(
      std::vector<std::vector<std::uint32_t>>{{0, 1, 2}, {0, 1, 3}, {4}}, 5);
  CoverageOracle proto(sys);
  const auto seeded = seeded_clone(proto, std::vector<ElementId>{0});
  const auto result = greedy(*seeded, std::vector<ElementId>{1, 2}, 1);
  // Against S = {0}: set1 gains 1 (element 3), set2 gains 1 (element 4) —
  // ties break toward the earlier candidate.
  EXPECT_EQ(result.picks[0], 1u);
}

class GreedyApproximation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GreedyApproximation, AchievesNemhauserBoundVsBruteForce) {
  const auto sys = random_set_system(12, 24, 0.25, GetParam());
  const CoverageOracle proto(sys);
  const auto opt = brute_force_opt(proto, iota_ids(12), 3);

  auto oracle = proto.clone();
  const auto result = greedy(*oracle, iota_ids(12), 3);
  EXPECT_GE(result.gained, (1.0 - 1.0 / std::exp(1.0)) * opt.value - 1e-9);
  EXPECT_LE(result.gained, opt.value + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyApproximation,
                         ::testing::Range<std::uint64_t>(1, 13));

class LazyEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LazyEquivalence, LazyGreedyMatchesNaiveExactly) {
  const auto sys = random_set_system(40, 80, 0.12, GetParam());
  const CoverageOracle proto(sys);

  auto naive_oracle = proto.clone();
  const auto naive = greedy(*naive_oracle, iota_ids(40), 12);

  auto lazy_oracle = proto.clone();
  const auto lazy = lazy_greedy(*lazy_oracle, iota_ids(40), 12);

  EXPECT_EQ(lazy.picks, naive.picks);
  EXPECT_EQ(lazy.gains, naive.gains);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LazyEquivalence,
                         ::testing::Range<std::uint64_t>(1, 16));

TEST(LazyGreedy, UsesFewerEvaluationsThanNaive) {
  const auto sys = random_set_system(200, 400, 0.05, 31);
  const CoverageOracle proto(sys);

  auto naive_oracle = proto.clone();
  greedy(*naive_oracle, iota_ids(200), 20);
  auto lazy_oracle = proto.clone();
  lazy_greedy(*lazy_oracle, iota_ids(200), 20);

  EXPECT_LT(lazy_oracle->evals(), naive_oracle->evals() / 2);
}

TEST(LazyGreedy, StopWhenNoGain) {
  const auto sys = std::make_shared<const SetSystem>(
      std::vector<std::vector<std::uint32_t>>{{0, 1}, {0}, {1}}, 2);
  CoverageOracle oracle(sys);
  const auto result = lazy_greedy(oracle, iota_ids(3), 3, {true});
  EXPECT_EQ(result.size(), 1u);
}

TEST(StochasticGreedy, FullSampleMatchesGreedyValueClosely) {
  const auto sys = random_set_system(50, 100, 0.1, 41);
  const CoverageOracle proto(sys);

  auto greedy_oracle = proto.clone();
  const auto exact = greedy(*greedy_oracle, iota_ids(50), 10);

  // With c so large every sample covers the full pool, stochastic greedy
  // behaves like plain greedy except for tie-breaking (the sample order is
  // shuffled), so values agree within a whisker.
  auto st_oracle = proto.clone();
  util::Rng rng(41);
  StochasticGreedyOptions options;
  options.c = 100.0;
  const auto st = stochastic_greedy(*st_oracle, iota_ids(50), 10, rng,
                                    options);
  EXPECT_GE(st.gained, 0.95 * exact.gained);
  EXPECT_LE(st.gained, exact.gained + 1e-9);
}

class StochasticQuality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StochasticQuality, CloseToGreedyWithDefaultC) {
  const auto sys = random_set_system(120, 200, 0.06, GetParam());
  const CoverageOracle proto(sys);

  auto g_oracle = proto.clone();
  const auto exact = greedy(*g_oracle, iota_ids(120), 12);

  auto s_oracle = proto.clone();
  util::Rng rng(GetParam() * 7 + 1);
  const auto st = stochastic_greedy(*s_oracle, iota_ids(120), 12, rng);
  EXPECT_GE(st.gained, 0.80 * exact.gained);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StochasticQuality,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(StochasticGreedy, EvaluatesFarFewerCandidates) {
  const auto sys = random_set_system(1'000, 500, 0.02, 51);
  const CoverageOracle proto(sys);
  auto oracle = proto.clone();
  util::Rng rng(51);
  stochastic_greedy(*oracle, iota_ids(1'000), 10, rng);
  // Naive would use ~10 * 1000 evals (gain) + adds; stochastic uses
  // ~10 * ceil(3 * 1000 / 10) = ~3000.
  EXPECT_LT(oracle->evals(), 4'000u);
}

TEST(StochasticGreedy, DeterministicGivenRng) {
  const auto sys = random_set_system(60, 100, 0.1, 61);
  const CoverageOracle proto(sys);
  auto o1 = proto.clone();
  auto o2 = proto.clone();
  util::Rng r1(9), r2(9);
  const auto a = stochastic_greedy(*o1, iota_ids(60), 8, r1);
  const auto b = stochastic_greedy(*o2, iota_ids(60), 8, r2);
  EXPECT_EQ(a.picks, b.picks);
}

TEST(RandomSubset, SizesAndDistinctness) {
  const auto sys = random_set_system(30, 50, 0.2, 71);
  CoverageOracle oracle(sys);
  util::Rng rng(71);
  const auto result = random_subset(oracle, iota_ids(30), 10, rng);
  EXPECT_EQ(result.size(), 10u);
  std::set<ElementId> unique(result.picks.begin(), result.picks.end());
  EXPECT_EQ(unique.size(), 10u);
  EXPECT_DOUBLE_EQ(result.gained, oracle.value());
}

TEST(RandomSubset, TypicallyWorseThanGreedy) {
  const auto sys = random_set_system(100, 300, 0.03, 81);
  const CoverageOracle proto(sys);
  double greedy_total = 0.0, random_total = 0.0;
  util::Rng rng(81);
  for (int trial = 0; trial < 10; ++trial) {
    auto g = proto.clone();
    greedy_total += greedy(*g, iota_ids(100), 10).gained;
    auto r = proto.clone();
    random_total += random_subset(*r, iota_ids(100), 10, rng).gained;
  }
  EXPECT_GT(greedy_total, random_total * 1.2);
}

TEST(GreedyFamily, WorksOnSqrtModularOracle) {
  // Non-coverage oracle: weights 9, 4, 1 — greedy takes heaviest first.
  testing::SqrtModularOracle oracle({4.0, 9.0, 1.0});
  const auto result = greedy(oracle, iota_ids(3), 2);
  EXPECT_EQ(result.picks[0], 1u);
  EXPECT_EQ(result.picks[1], 0u);
  EXPECT_NEAR(oracle.value(), std::sqrt(13.0), 1e-12);
}

}  // namespace
}  // namespace bds
