// Inverted-index incremental coverage (objectives/coverage_incremental.h):
// residuals must track the scan-based CoverageOracle gain exactly — integer
// counts, so equality is exact, not approximate — after every add, and the
// make_incremental_coverage upgrade must be a drop-in replacement on the
// coordinator filter path.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/baselines.h"
#include "core/bicriteria.h"
#include "core/greedy.h"
#include "objectives/coverage.h"
#include "objectives/coverage_incremental.h"
#include "objectives/prob_coverage.h"
#include "test_support.h"
#include "util/rng.h"

namespace bds {
namespace {

TEST(IncrementalCoverage, GainsMatchScalarOracleAfterEveryAdd) {
  const auto sets = testing::random_set_system(50, 250, 0.05, 31);
  CoverageOracle scalar(sets);
  IncrementalCoverageOracle incremental(sets);
  const std::vector<ElementId> ids = testing::iota_ids(50);

  util::Rng rng(32);
  for (int step = 0; step < 20; ++step) {
    for (const ElementId x : ids) {
      EXPECT_EQ(incremental.gain(x), scalar.gain(x))
          << "set " << x << " at step " << step;
    }
    const auto pick = static_cast<ElementId>(rng.next_below(50));
    EXPECT_EQ(incremental.add(pick), scalar.add(pick)) << "add " << pick;
    EXPECT_EQ(incremental.value(), scalar.value());
    EXPECT_EQ(incremental.covered_count(), scalar.covered_count());
  }
  EXPECT_EQ(incremental.evals(), scalar.evals());
}

TEST(IncrementalCoverage, GainBatchMatchesScalar) {
  const auto sets = testing::random_set_system(40, 200, 0.05, 33);
  CoverageOracle scalar(sets);
  IncrementalCoverageOracle incremental(sets);
  for (const ElementId x : {ElementId{4}, ElementId{17}, ElementId{30}}) {
    scalar.add(x);
    incremental.add(x);
  }
  const std::vector<ElementId> ids = testing::iota_ids(40);
  EXPECT_EQ(incremental.gain_batch(ids), scalar.gain_batch(ids));
}

TEST(IncrementalCoverage, LazyGreedySelectionsIdentical) {
  const auto sets = testing::random_set_system(60, 300, 0.04, 34);
  CoverageOracle scalar(sets);
  IncrementalCoverageOracle incremental(sets);
  const std::vector<ElementId> ids = testing::iota_ids(60);

  const GreedyResult from_scalar = lazy_greedy(scalar, ids, 12, {true});
  const GreedyResult from_incremental =
      lazy_greedy(incremental, ids, 12, {true});
  EXPECT_EQ(from_incremental.picks, from_scalar.picks);
  EXPECT_EQ(incremental.value(), scalar.value());
  EXPECT_EQ(incremental.evals(), scalar.evals());
}

TEST(IncrementalCoverage, UpgradeReplaysAccumulatedState) {
  const auto sets = testing::random_set_system(30, 150, 0.06, 35);
  CoverageOracle proto(sets);
  proto.add(ElementId{3});
  proto.add(ElementId{11});

  const auto upgraded = make_incremental_coverage(proto);
  ASSERT_NE(upgraded, nullptr);
  EXPECT_EQ(upgraded->current_set(), proto.current_set());
  EXPECT_EQ(upgraded->value(), proto.value());
  EXPECT_EQ(upgraded->evals(), 0u) << "replay must not be charged";
  for (const ElementId x : testing::iota_ids(30)) {
    EXPECT_EQ(upgraded->gain(x), proto.gain(x));
  }
}

TEST(IncrementalCoverage, UpgradeRefusesNonCoverageObjectives) {
  // Weighted / probabilistic residuals would drift under FP decrements, so
  // the factory must decline them (callers fall back to clone()).
  const auto sets = testing::random_set_system(10, 50, 0.2, 36);
  std::vector<double> weights(50, 1.5);
  WeightedCoverageOracle weighted(sets, std::move(weights));
  EXPECT_EQ(make_incremental_coverage(weighted), nullptr);

  testing::SqrtModularOracle sqrt_oracle({1.0, 2.0, 3.0});
  EXPECT_EQ(make_incremental_coverage(sqrt_oracle), nullptr);
}

TEST(IncrementalCoverage, ShardViewOfIncrementalMatchesScalarClone) {
  const auto sets = testing::random_set_system(50, 2500, 0.005, 37);
  CoverageOracle scalar(sets);
  IncrementalCoverageOracle incremental(sets);
  for (const ElementId x : {ElementId{2}, ElementId{25}}) {
    scalar.add(x);
    incremental.add(x);
  }

  const std::vector<ElementId> shard = {ElementId{1}, ElementId{2},
                                        ElementId{8}, ElementId{19},
                                        ElementId{33}, ElementId{49}};
  const auto view = incremental.shard_view(shard);
  const auto reference = scalar.clone();
  for (const ElementId x : shard) {
    EXPECT_EQ(view->gain(x), reference->gain(x));
  }
  view->add(ElementId{19});
  reference->add(ElementId{19});
  for (const ElementId x : shard) {
    EXPECT_EQ(view->gain(x), reference->gain(x));
  }
  // O(1) gains carry O(shard) state: strictly smaller than the full oracle.
  EXPECT_LT(view->state_bytes(), incremental.clone()->state_bytes());
}

TEST(IncrementalCoverage, EvalAccountingCheaperInWork) {
  // Not a value test: the point of the engine is cost. Charge model — an
  // incremental gain reads one residual; a scalar gain walks the row. We
  // can't observe instruction counts here, but we can check the structural
  // prerequisite: residuals stay consistent under a long randomized
  // add/query mix (the invariant the O(1) claim rests on).
  const auto sets = testing::random_set_system(80, 400, 0.03, 38);
  CoverageOracle scalar(sets);
  IncrementalCoverageOracle incremental(sets);
  util::Rng rng(39);
  for (int i = 0; i < 60; ++i) {
    const auto x = static_cast<ElementId>(rng.next_below(80));
    if (rng.next_bool(0.4)) {
      EXPECT_EQ(incremental.add(x), scalar.add(x));
    } else {
      EXPECT_EQ(incremental.gain(x), scalar.gain(x));
    }
  }
}

TEST(IncrementalCoverage, DistributedRunsBitIdenticalWithUpgrade) {
  // End-to-end: the same bicriteria / baseline run with the coordinator
  // upgraded must produce identical solutions and values.
  const auto sets = testing::random_set_system(120, 600, 0.02, 40);
  CoverageOracle proto(sets);
  const std::vector<ElementId> ground = testing::iota_ids(120);

  BicriteriaConfig config;
  config.mode = BicriteriaMode::kPractical;
  config.k = 6;
  config.output_items = 10;
  config.rounds = 2;
  config.runtime.seed = 9;
  const DistributedResult plain = bicriteria_greedy(proto, ground, config);
  config.runtime.incremental_gains = true;
  const DistributedResult upgraded = bicriteria_greedy(proto, ground, config);
  EXPECT_EQ(upgraded.solution, plain.solution);
  EXPECT_EQ(upgraded.value, plain.value);
  EXPECT_EQ(upgraded.stats.total_evals(), plain.stats.total_evals());

  OneRoundConfig one_round;
  one_round.k = 5;
  one_round.runtime.seed = 9;
  const DistributedResult rg_plain = rand_greedi(proto, ground, one_round);
  one_round.runtime.incremental_gains = true;
  const DistributedResult rg_upgraded =
      rand_greedi(proto, ground, one_round);
  EXPECT_EQ(rg_upgraded.solution, rg_plain.solution);
  EXPECT_EQ(rg_upgraded.value, rg_plain.value);
}

}  // namespace
}  // namespace bds
