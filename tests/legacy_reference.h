// Frozen copies of the pre-engine distributed algorithm loops, kept verbatim
// (modulo namespacing) as the golden reference for tests/test_engine.cpp:
// the round-program engine must reproduce these bit-for-bit — solutions,
// values and every deterministic ExecutionStats field.
//
// Do not "fix" or modernize this file. It is intentionally the code that
// shipped before dist/engine.h existed; divergence from src/core/* is the
// point. The only permitted edits are those required to keep it compiling
// against current headers.
#pragma once

#include <span>

#include "core/adaptive.h"
#include "core/baselines.h"
#include "core/bicriteria.h"
#include "core/matroid.h"

namespace bds::legacy {

DistributedResult bicriteria_greedy(const SubmodularOracle& proto,
                                    std::span<const ElementId> ground,
                                    const BicriteriaConfig& config);

DistributedResult greedi(const SubmodularOracle& proto,
                         std::span<const ElementId> ground,
                         const OneRoundConfig& config);

DistributedResult rand_greedi(const SubmodularOracle& proto,
                              std::span<const ElementId> ground,
                              const OneRoundConfig& config);

DistributedResult pseudo_greedy(const SubmodularOracle& proto,
                                std::span<const ElementId> ground,
                                OneRoundConfig config);

DistributedResult naive_distributed_greedy(
    const SubmodularOracle& proto, std::span<const ElementId> ground,
    const NaiveDistributedConfig& config);

DistributedResult parallel_alg(const SubmodularOracle& proto,
                               std::span<const ElementId> ground,
                               const ParallelAlgConfig& config);

DistributedResult greedy_scaling(const SubmodularOracle& proto,
                                 std::span<const ElementId> ground,
                                 const GreedyScalingConfig& config);

DistributedResult rand_greedi_matroid(const SubmodularOracle& proto,
                                      std::span<const ElementId> ground,
                                      const MatroidConstraint& constraint,
                                      const MatroidDistributedConfig& config);

}  // namespace bds::legacy
