#include "util/csv.h"
#include "util/table.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace bds::util {
namespace {

TEST(Table, FormatHelpers) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(-1.5, 0), "-2");  // round-half-even via printf
  EXPECT_EQ(Table::fmt_pct(0.981, 1), "98.1%");
  EXPECT_EQ(Table::fmt_pct(1.0, 0), "100%");
  EXPECT_EQ(Table::fmt_int(0), "0");
  EXPECT_EQ(Table::fmt_int(1234567), "1234567");
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1.5"});
  t.add_row({"a-very-long-name", "22.25"});
  const std::string out = t.to_string();
  // Header, rule, two rows.
  int newlines = 0;
  for (const char c : out) newlines += (c == '\n');
  EXPECT_EQ(newlines, 4);
  // Every line has the same length (alignment).
  std::istringstream in(out);
  std::string line;
  std::size_t len = 0;
  while (std::getline(in, line)) {
    if (len == 0) len = line.size();
    EXPECT_EQ(line.size(), len);
  }
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"only-one"});
  EXPECT_EQ(t.row(0).size(), 3u);
  EXPECT_EQ(t.row(0)[1], "");
}

TEST(Table, NumericColumnsRightAligned) {
  Table t({"label", "n"});
  t.add_row({"x", "5"});
  t.add_row({"y", "123"});
  const std::string out = t.to_string();
  // In the numeric column the shorter value is right-aligned: "  5".
  EXPECT_NE(out.find("  5\n"), std::string::npos);
}

TEST(Table, CountsRowsAndCols) {
  Table t({"a", "b"});
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1", "2"});
  EXPECT_EQ(t.rows(), 1u);
}

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/bds_csv_test.csv";

  std::string read_back() const {
    std::ifstream in(path_);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter w(path_, {"k", "ratio"});
    w.write_row({"10", "0.98"});
    w.write_row({"20", "0.99"});
    EXPECT_EQ(w.rows_written(), 2u);
  }
  EXPECT_EQ(read_back(), "k,ratio\n10,0.98\n20,0.99\n");
}

TEST_F(CsvTest, QuotesSpecialCharacters) {
  {
    CsvWriter w(path_, {"text"});
    w.write_row({"a,b"});
    w.write_row({"say \"hi\""});
  }
  EXPECT_EQ(read_back(), "text\n\"a,b\"\n\"say \"\"hi\"\"\"\n");
}

TEST_F(CsvTest, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv", {"a"}),
               std::runtime_error);
}

TEST(CsvPath, RespectsEnvironment) {
  unsetenv("BDS_CSV_DIR");
  EXPECT_FALSE(csv_output_path("fig1a").has_value());
  setenv("BDS_CSV_DIR", "/tmp/bds-out", 1);
  const auto path = csv_output_path("fig1a");
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, "/tmp/bds-out/fig1a.csv");
  unsetenv("BDS_CSV_DIR");
}

}  // namespace
}  // namespace bds::util
