#include "util/flags.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace bds::util {
namespace {

Flags parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Flags(static_cast<int>(args.size()), args.data());
}

TEST(Flags, EmptyArgv) {
  const Flags flags(0, nullptr);
  EXPECT_FALSE(flags.has("anything"));
  EXPECT_TRUE(flags.positional().empty());
}

TEST(Flags, ProgramName) {
  EXPECT_EQ(parse({}).program(), "prog");
}

TEST(Flags, EqualsForm) {
  const auto flags = parse({"--k=12", "--eps=0.25", "--name=hello"});
  EXPECT_EQ(flags.get_int("k", 0), 12);
  EXPECT_DOUBLE_EQ(flags.get_double("eps", 0.0), 0.25);
  EXPECT_EQ(flags.get_string("name", ""), "hello");
}

TEST(Flags, SpaceForm) {
  const auto flags = parse({"--k", "7", "--name", "world"});
  EXPECT_EQ(flags.get_int("k", 0), 7);
  EXPECT_EQ(flags.get_string("name", ""), "world");
}

TEST(Flags, BareBooleanForm) {
  const auto flags = parse({"--verbose", "--quiet=false", "--fast=1"});
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_FALSE(flags.get_bool("quiet", true));
  EXPECT_TRUE(flags.get_bool("fast", false));
  EXPECT_TRUE(flags.get_bool("missing", true));
}

TEST(Flags, BooleanFollowedByFlagStaysBare) {
  const auto flags = parse({"--verbose", "--k=3"});
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_EQ(flags.get_int("k", 0), 3);
}

TEST(Flags, Positional) {
  const auto flags = parse({"input.txt", "--k=3", "output.txt"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.txt");
  EXPECT_EQ(flags.positional()[1], "output.txt");
}

TEST(Flags, FallbacksWhenAbsent) {
  const auto flags = parse({});
  EXPECT_EQ(flags.get_int("k", 42), 42);
  EXPECT_EQ(flags.get_uint("n", 7u), 7u);
  EXPECT_DOUBLE_EQ(flags.get_double("x", 1.5), 1.5);
  EXPECT_EQ(flags.get_string("s", "dflt"), "dflt");
}

TEST(Flags, TypeErrors) {
  const auto flags = parse({"--k=abc", "--x=1.2.3", "--b=maybe", "--n=-4"});
  EXPECT_THROW(flags.get_int("k", 0), std::invalid_argument);
  EXPECT_THROW(flags.get_double("x", 0.0), std::invalid_argument);
  EXPECT_THROW(flags.get_bool("b", false), std::invalid_argument);
  EXPECT_THROW(flags.get_uint("n", 0), std::invalid_argument);
  EXPECT_EQ(flags.get_int("n", 0), -4);  // fine as signed
}

TEST(Flags, MalformedFlagThrows) {
  EXPECT_THROW(parse({"--=x"}), std::invalid_argument);
  EXPECT_THROW(parse({"--"}), std::invalid_argument);
}

TEST(Flags, LastValueWins) {
  const auto flags = parse({"--k=1", "--k=2"});
  EXPECT_EQ(flags.get_int("k", 0), 2);
}

TEST(Flags, NamesListsAllFlags) {
  const auto flags = parse({"--b=1", "--a=2", "pos"});
  const auto names = flags.names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");  // map order: sorted
  EXPECT_EQ(names[1], "b");
}

TEST(Flags, NegativeNumbersAsValues) {
  const auto flags = parse({"--offset=-17", "--temp", "-3.5"});
  EXPECT_EQ(flags.get_int("offset", 0), -17);
  EXPECT_DOUBLE_EQ(flags.get_double("temp", 0.0), -3.5);
}

}  // namespace
}  // namespace bds::util
