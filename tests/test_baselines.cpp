#include "core/baselines.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/brute_force.h"
#include "core/greedy.h"
#include "objectives/coverage.h"
#include "test_support.h"

namespace bds {
namespace {

using testing::iota_ids;
using testing::random_set_system;

TEST(CentralizedGreedy, MatchesDirectGreedy) {
  const auto sys = random_set_system(60, 120, 0.08, 1);
  const CoverageOracle proto(sys);
  const auto result = centralized_greedy(proto, iota_ids(60), 8);

  auto oracle = proto.clone();
  const auto direct = lazy_greedy(*oracle, iota_ids(60), 8, {true});
  EXPECT_EQ(result.solution, direct.picks);
  EXPECT_DOUBLE_EQ(result.value, oracle->value());
  EXPECT_EQ(result.stats.num_rounds(), 1u);
}

TEST(CentralizedGreedy, NaiveFlagMatchesLazy) {
  const auto sys = random_set_system(40, 80, 0.1, 2);
  const CoverageOracle proto(sys);
  const auto lazy = centralized_greedy(proto, iota_ids(40), 6, true);
  const auto naive = centralized_greedy(proto, iota_ids(40), 6, false);
  EXPECT_EQ(lazy.solution, naive.solution);
}

TEST(CentralizedBicriteria, OutputsKLogOneOverEpsItems) {
  const auto sys = random_set_system(300, 600, 0.02, 3);
  const CoverageOracle proto(sys);
  const auto result =
      centralized_bicriteria(proto, iota_ids(300), 10, 0.05);
  // k ln(1/eps) = 10 * ln 20 ~ 30.
  EXPECT_EQ(result.solution.size(),
            std::size_t(std::ceil(10 * std::log(20.0))));
  EXPECT_THROW(centralized_bicriteria(proto, iota_ids(300), 10, 0.0),
               std::invalid_argument);
}

TEST(CentralizedBicriteria, BeatsPlainGreedyValue) {
  const auto sys = random_set_system(200, 500, 0.02, 4);
  const CoverageOracle proto(sys);
  const auto plain = centralized_greedy(proto, iota_ids(200), 10);
  const auto bi = centralized_bicriteria(proto, iota_ids(200), 10, 0.1);
  EXPECT_GE(bi.value + 1e-9, plain.value);
}

class OneRoundFamily
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OneRoundFamily, AllBaselinesProduceValidSolutions) {
  const auto sys = random_set_system(150, 200, 0.04, GetParam());
  const CoverageOracle proto(sys);
  OneRoundConfig cfg;
  cfg.k = 8;
  cfg.machines = 6;
  cfg.runtime.seed = GetParam();

  for (const auto& result :
       {greedi(proto, iota_ids(150), cfg), rand_greedi(proto, iota_ids(150), cfg),
        pseudo_greedy(proto, iota_ids(150), cfg)}) {
    EXPECT_LE(result.solution.size(), 8u);
    std::set<ElementId> unique(result.solution.begin(),
                               result.solution.end());
    EXPECT_EQ(unique.size(), result.solution.size());
    EXPECT_NEAR(result.value, evaluate_set(proto, result.solution), 1e-9);
    EXPECT_EQ(result.stats.num_rounds(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OneRoundFamily, ::testing::Values(1, 2, 3, 4));

TEST(OneRoundBaselines, RespectTheirApproximationOnSmallInstances) {
  // Empirically these algorithms do far better than their worst case; check
  // a conservative floor vs brute OPT across seeds.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto sys = random_set_system(16, 40, 0.15, seed);
    const CoverageOracle proto(sys);
    const auto opt = brute_force_opt(proto, iota_ids(16), 3);
    OneRoundConfig cfg;
    cfg.k = 3;
    cfg.machines = 4;
    cfg.runtime.seed = seed;
    EXPECT_GE(rand_greedi(proto, iota_ids(16), cfg).value,
              0.316 * opt.value - 1e-9);
    EXPECT_GE(pseudo_greedy(proto, iota_ids(16), cfg).value,
              0.54 * opt.value - 1e-9);
    EXPECT_GE(greedi(proto, iota_ids(16), cfg).value,
              opt.value / 4.0 - 1e-9);  // 1/min(m,k) with m=4,k=3 -> 1/3
  }
}

TEST(PseudoGreedy, MachinesReturnFourKItems) {
  const auto sys = random_set_system(200, 300, 0.03, 7);
  const CoverageOracle proto(sys);
  OneRoundConfig cfg;
  cfg.k = 5;
  cfg.machines = 4;
  cfg.stop_when_no_gain = false;
  const auto result = pseudo_greedy(proto, iota_ids(200), cfg);
  // 4 machines x 4k = 80 items gathered.
  EXPECT_EQ(result.stats.rounds[0].elements_gathered, 4u * 4u * 5u);
}

TEST(GreediVsRandGreedi, PartitionStyleDiffers) {
  const auto sys = random_set_system(100, 150, 0.05, 9);
  const CoverageOracle proto(sys);
  OneRoundConfig cfg;
  cfg.k = 5;
  cfg.machines = 5;
  cfg.runtime.seed = 42;
  const auto det = greedi(proto, iota_ids(100), cfg);
  // GreeDi's round-robin partition is seed-independent.
  cfg.runtime.seed = 43;
  const auto det2 = greedi(proto, iota_ids(100), cfg);
  EXPECT_EQ(det.solution, det2.solution);

  // RandGreeDi depends on the seed.
  const auto ra = rand_greedi(proto, iota_ids(100), cfg);
  cfg.runtime.seed = 44;
  const auto rb = rand_greedi(proto, iota_ids(100), cfg);
  EXPECT_NE(ra.solution, rb.solution);
}

TEST(NaiveDistributed, RoundCountIsLogOneOverEps) {
  const auto sys = random_set_system(200, 300, 0.03, 11);
  const CoverageOracle proto(sys);
  NaiveDistributedConfig cfg;
  cfg.k = 5;
  cfg.epsilon = 0.05;  // ceil(ln 20) = 3
  cfg.machines = 5;
  const auto result = naive_distributed_greedy(proto, iota_ids(200), cfg);
  EXPECT_EQ(result.stats.num_rounds(), 3u);
  EXPECT_LE(result.solution.size(), 3u * 5u);
}

TEST(NaiveDistributed, ReachesNearOptimalValue) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto sys = random_set_system(16, 40, 0.15, seed + 20);
    const CoverageOracle proto(sys);
    const auto opt = brute_force_opt(proto, iota_ids(16), 3);
    NaiveDistributedConfig cfg;
    cfg.k = 3;
    cfg.epsilon = 0.1;
    cfg.machines = 4;
    cfg.runtime.seed = seed;
    const auto result = naive_distributed_greedy(proto, iota_ids(16), cfg);
    EXPECT_GE(result.value, (1.0 - cfg.epsilon) * opt.value - 1e-9);
  }
}

TEST(NaiveDistributed, ValueImprovesAcrossRounds) {
  const auto sys = random_set_system(300, 500, 0.02, 13);
  const CoverageOracle proto(sys);
  NaiveDistributedConfig cfg;
  cfg.k = 8;
  cfg.epsilon = 0.02;  // 4 rounds
  const auto result = naive_distributed_greedy(proto, iota_ids(300), cfg);
  for (std::size_t r = 1; r < result.rounds.size(); ++r) {
    EXPECT_GE(result.rounds[r].value_after + 1e-9,
              result.rounds[r - 1].value_after);
  }
}

TEST(ParallelAlg, RunsCeilOneOverEpsRounds) {
  const auto sys = random_set_system(200, 300, 0.03, 61);
  const CoverageOracle proto(sys);
  ParallelAlgConfig cfg;
  cfg.k = 6;
  cfg.epsilon = 0.34;  // ceil(1/0.34) = 3
  cfg.machines = 5;
  const auto result = parallel_alg(proto, iota_ids(200), cfg);
  EXPECT_EQ(result.stats.num_rounds(), 3u);
  EXPECT_EQ(result.rounds.size(), 3u);
  EXPECT_LE(result.solution.size(), 6u);
  EXPECT_NEAR(result.value, evaluate_set(proto, result.solution), 1e-9);
}

TEST(ParallelAlg, PoolBroadcastGrowsScatterTraffic) {
  const auto sys = random_set_system(300, 400, 0.02, 63);
  const CoverageOracle proto(sys);
  ParallelAlgConfig cfg;
  cfg.k = 5;
  cfg.epsilon = 0.5;  // 2 rounds
  cfg.machines = 6;
  const auto result = parallel_alg(proto, iota_ids(300), cfg);
  // Round 2 scatters the ground set plus the pool broadcast to 6 machines.
  EXPECT_GT(result.stats.rounds[1].elements_scattered,
            result.stats.rounds[0].elements_scattered);
}

TEST(ParallelAlg, BeatsItsGuaranteeOnSmallInstances) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto sys = random_set_system(16, 40, 0.15, seed + 60);
    const CoverageOracle proto(sys);
    const auto opt = brute_force_opt(proto, iota_ids(16), 3);
    ParallelAlgConfig cfg;
    cfg.k = 3;
    cfg.epsilon = 0.25;
    cfg.machines = 4;
    cfg.runtime.seed = seed;
    const auto result = parallel_alg(proto, iota_ids(16), cfg);
    EXPECT_GE(result.value,
              (1.0 - 1.0 / std::exp(1.0) - cfg.epsilon) * opt.value - 1e-9);
  }
}

TEST(ParallelAlg, ValidatesArguments) {
  const auto sys = random_set_system(20, 30, 0.2, 65);
  const CoverageOracle proto(sys);
  ParallelAlgConfig cfg;
  cfg.k = 0;
  EXPECT_THROW(parallel_alg(proto, iota_ids(20), cfg),
               std::invalid_argument);
  cfg.k = 3;
  cfg.epsilon = 0.0;
  EXPECT_THROW(parallel_alg(proto, iota_ids(20), cfg),
               std::invalid_argument);
}

TEST(GreedyScaling, OutputsAtMostKItemsWithGoodValue) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto sys = random_set_system(16, 40, 0.15, seed + 40);
    const CoverageOracle proto(sys);
    const auto opt = brute_force_opt(proto, iota_ids(16), 3);
    GreedyScalingConfig cfg;
    cfg.k = 3;
    cfg.epsilon = 0.2;
    cfg.machines = 4;
    cfg.runtime.seed = seed;
    const auto result = greedy_scaling(proto, iota_ids(16), cfg);
    EXPECT_LE(result.solution.size(), 3u);
    // 1 - 1/e - eps floor.
    EXPECT_GE(result.value,
              (1.0 - 1.0 / std::exp(1.0) - cfg.epsilon) * opt.value - 1e-9);
  }
}

TEST(GreedyScaling, UsesMultipleRounds) {
  const auto sys = random_set_system(300, 500, 0.02, 45);
  const CoverageOracle proto(sys);
  GreedyScalingConfig cfg;
  cfg.k = 10;
  cfg.epsilon = 0.3;
  const auto result = greedy_scaling(proto, iota_ids(300), cfg);
  // Threshold sweeps log(k/eps)/eps times unless k items found earlier.
  EXPECT_GE(result.stats.num_rounds(), 2u);
  EXPECT_NEAR(result.value, evaluate_set(proto, result.solution), 1e-9);
}

TEST(GreedyScaling, HandlesDegenerateInputs) {
  const auto sys = random_set_system(20, 30, 0.2, 47);
  const CoverageOracle proto(sys);
  GreedyScalingConfig cfg;
  cfg.k = 5;
  const auto empty = greedy_scaling(proto, {}, cfg);
  EXPECT_TRUE(empty.solution.empty());

  // All-empty sets: zero delta, no rounds.
  const auto zero_sys = std::make_shared<const SetSystem>(
      std::vector<std::vector<std::uint32_t>>{{}, {}, {}}, 4);
  const CoverageOracle zero_proto(zero_sys);
  const auto zero = greedy_scaling(zero_proto, iota_ids(3), cfg);
  EXPECT_TRUE(zero.solution.empty());
  EXPECT_EQ(zero.stats.num_rounds(), 0u);

  cfg.k = 0;
  EXPECT_THROW(greedy_scaling(proto, iota_ids(20), cfg),
               std::invalid_argument);
}

TEST(GreedyScaling, RoundCountGrowsAsEpsilonShrinks) {
  const auto sys = random_set_system(400, 800, 0.01, 49);
  const CoverageOracle proto(sys);
  GreedyScalingConfig loose, tight;
  loose.k = tight.k = 8;
  loose.epsilon = 0.5;
  tight.epsilon = 0.1;
  const auto a = greedy_scaling(proto, iota_ids(400), loose);
  const auto b = greedy_scaling(proto, iota_ids(400), tight);
  EXPECT_GE(b.stats.num_rounds(), a.stats.num_rounds());
}

TEST(Baselines, ValidateArguments) {
  const auto sys = random_set_system(20, 30, 0.2, 15);
  const CoverageOracle proto(sys);
  OneRoundConfig bad;
  bad.k = 0;
  EXPECT_THROW(greedi(proto, iota_ids(20), bad), std::invalid_argument);
  NaiveDistributedConfig nd;
  nd.k = 0;
  EXPECT_THROW(naive_distributed_greedy(proto, iota_ids(20), nd),
               std::invalid_argument);
  nd.k = 3;
  nd.epsilon = 1.5;
  EXPECT_THROW(naive_distributed_greedy(proto, iota_ids(20), nd),
               std::invalid_argument);
}

}  // namespace
}  // namespace bds
