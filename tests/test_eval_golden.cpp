// Exact oracle-evaluation-count goldens per (algorithm × worker-oracle mode
// × lazy on/off), pinned on one frozen coverage instance. Two things are
// frozen here, deliberately:
//
//  * lazy-off counts are the historical Minoux accounting — a regression
//    here means an algorithm's evaluation pattern changed, which is a
//    bigger event than any perf tweak and must be reviewed by hand;
//  * lazy-on counts pin the substrate's exact savings (and the metered
//    evals_avoided), so a change to bound carrying that silently degrades
//    (or inflates the accounting of) the pruning fails loudly.
//
// Counts are mode-invariant (shard views reset their eval counters; the
// clone/view contract is bit-identical gains), which the table also locks
// in. Skipped when BDS_FAULT_SEED injects a fault plan into every run —
// delivered-work accounting is only frozen for fault-free execution.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/bound_heap.h"
#include "core/registry.h"
#include "objectives/coverage.h"
#include "test_support.h"

namespace bds {
namespace {

struct GoldenRow {
  const char* algorithm;
  WorkerOracleMode mode;
  bool lazy;
  std::uint64_t total_evals;
  std::uint64_t evals_avoided;
};

std::size_t rounds_for(const std::string& algorithm) {
  if (algorithm == "naive" || algorithm == "multiplicity" ||
      algorithm == "scaling") {
    return 2;
  }
  if (algorithm == "greedi" || algorithm == "randgreedi") return 1;
  return 3;
}

TEST(EvalCountGolden, FrozenPerAlgorithmModeAndLazyGrid) {
  if (std::getenv("BDS_FAULT_SEED") != nullptr) {
    GTEST_SKIP() << "eval goldens are frozen for fault-free runs only";
  }
  const CoverageOracle proto(
      bds::testing::random_set_system(80, 160, 0.05, 99));
  const auto ground = bds::testing::iota_ids(proto.ground_size());

  const std::vector<GoldenRow> golden = {
      {"bicriteria", WorkerOracleMode::kShardView, false, 479u, 0u},
      {"bicriteria", WorkerOracleMode::kShardView, true, 367u, 797u},
      {"bicriteria", WorkerOracleMode::kClone, false, 479u, 0u},
      {"bicriteria", WorkerOracleMode::kClone, true, 367u, 797u},
      {"hybrid", WorkerOracleMode::kShardView, false, 4024u, 0u},
      {"hybrid", WorkerOracleMode::kShardView, true, 3328u, 18520u},
      {"hybrid", WorkerOracleMode::kClone, false, 4024u, 0u},
      {"hybrid", WorkerOracleMode::kClone, true, 3328u, 18520u},
      {"naive", WorkerOracleMode::kShardView, false, 357u, 0u},
      {"naive", WorkerOracleMode::kShardView, true, 294u, 656u},
      {"naive", WorkerOracleMode::kClone, false, 357u, 0u},
      {"naive", WorkerOracleMode::kClone, true, 294u, 656u},
      {"parallel", WorkerOracleMode::kShardView, false, 883u, 0u},
      {"parallel", WorkerOracleMode::kShardView, true, 443u, 2072u},
      {"parallel", WorkerOracleMode::kClone, false, 883u, 0u},
      {"parallel", WorkerOracleMode::kClone, true, 443u, 2072u},
      {"greedi", WorkerOracleMode::kShardView, false, 194u, 0u},
      {"greedi", WorkerOracleMode::kShardView, true, 174u, 301u},
      {"greedi", WorkerOracleMode::kClone, false, 194u, 0u},
      {"greedi", WorkerOracleMode::kClone, true, 174u, 301u},
      {"randgreedi", WorkerOracleMode::kShardView, false, 184u, 0u},
      {"randgreedi", WorkerOracleMode::kShardView, true, 164u, 311u},
      {"randgreedi", WorkerOracleMode::kClone, false, 184u, 0u},
      {"randgreedi", WorkerOracleMode::kClone, true, 164u, 311u},
      {"multiplicity", WorkerOracleMode::kShardView, false, 4746u, 0u},
      {"multiplicity", WorkerOracleMode::kShardView, true, 4710u, 23752u},
      {"multiplicity", WorkerOracleMode::kClone, false, 4746u, 0u},
      {"multiplicity", WorkerOracleMode::kClone, true, 4710u, 23752u},
      // Threshold workers have no heap to seed: the substrate is inert on
      // scaling by design, and the golden proves it stays that way.
      {"scaling", WorkerOracleMode::kShardView, false, 247u, 0u},
      {"scaling", WorkerOracleMode::kShardView, true, 247u, 0u},
      {"scaling", WorkerOracleMode::kClone, false, 247u, 0u},
      {"scaling", WorkerOracleMode::kClone, true, 247u, 0u},
  };

  for (const GoldenRow& row : golden) {
    detail::ForcedLazy guard(row.lazy);
    RuntimeOptions runtime;
    runtime.seed = 7;
    runtime.worker_oracle = row.mode;
    AlgorithmParams params;
    params.k = 5;
    params.rounds = rounds_for(row.algorithm);
    params.output_items = 12;
    params.epsilon = 0.25;
    const RunResult run =
        run_distributed(row.algorithm, proto, ground, runtime, params);
    const std::string label =
        std::string(row.algorithm) + " mode=" +
        (row.mode == WorkerOracleMode::kClone ? "clone" : "view") +
        " lazy=" + (row.lazy ? "on" : "off");
    EXPECT_EQ(run.stats.total_evals(), row.total_evals) << label;
    EXPECT_EQ(run.stats.total_evals_avoided(), row.evals_avoided) << label;
  }
}

}  // namespace
}  // namespace bds
