// Shared fixtures/helpers for the test suite: small random instances,
// submodularity property checkers, and a simple explicit-function oracle
// for hand-verifiable cases.
#pragma once

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <vector>

#include "objectives/coverage.h"
#include "objectives/submodular.h"
#include "util/element.h"
#include "util/rng.h"

namespace bds::testing {

// Random small coverage instance: `n_sets` sets over `universe` elements,
// each set drawn with inclusion probability `density`.
inline std::shared_ptr<const SetSystem> random_set_system(
    std::uint32_t n_sets, std::uint32_t universe, double density,
    std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<std::uint32_t>> sets(n_sets);
  for (auto& s : sets) {
    for (std::uint32_t e = 0; e < universe; ++e) {
      if (rng.next_bool(density)) s.push_back(e);
    }
  }
  return std::make_shared<const SetSystem>(std::move(sets), universe);
}

// All element ids [0, n).
inline std::vector<ElementId> iota_ids(std::size_t n) {
  std::vector<ElementId> ids(n);
  std::iota(ids.begin(), ids.end(), ElementId{0});
  return ids;
}

// Checks the diminishing-returns property on random chains: for random
// A ⊆ B and x ∉ B, Δ(x, A) >= Δ(x, B) (up to tolerance). Returns the number
// of violations found over `trials` random triples.
inline int count_submodularity_violations(const SubmodularOracle& proto,
                                          std::uint64_t seed, int trials,
                                          double tol = 1e-9) {
  util::Rng rng(seed);
  const std::size_t n = proto.ground_size();
  int violations = 0;
  for (int t = 0; t < trials; ++t) {
    // Random B of size <= n/2, random subset A of B, random x outside B.
    const std::size_t b_size = 1 + rng.next_below(std::max<std::size_t>(1, n / 2));
    auto b_ids = rng.sample_without_replacement(n, std::min(b_size, n));
    std::vector<ElementId> b(b_ids.begin(), b_ids.end());
    std::vector<ElementId> a;
    for (const ElementId x : b) {
      if (rng.next_bool(0.5)) a.push_back(x);
    }
    ElementId x = static_cast<ElementId>(rng.next_below(n));
    while (std::find(b.begin(), b.end(), x) != b.end()) {
      x = static_cast<ElementId>(rng.next_below(n));
    }
    const auto oracle_a = seeded_clone(proto, a);
    const auto oracle_b = seeded_clone(proto, b);
    if (oracle_a->gain(x) + tol < oracle_b->gain(x)) ++violations;
  }
  return violations;
}

// Checks monotonicity: realized add-gains are never negative.
inline int count_monotonicity_violations(const SubmodularOracle& proto,
                                         std::uint64_t seed, int trials,
                                         double tol = 1e-9) {
  util::Rng rng(seed);
  const std::size_t n = proto.ground_size();
  int violations = 0;
  for (int t = 0; t < trials; ++t) {
    auto oracle = proto.clone();
    const std::size_t len = 1 + rng.next_below(std::max<std::size_t>(1, n));
    for (const auto id : rng.sample_without_replacement(n, std::min(len, n))) {
      if (oracle->add(static_cast<ElementId>(id)) < -tol) ++violations;
    }
  }
  return violations;
}

// A tiny explicit monotone submodular function for hand-checkable tests:
// f(S) = sqrt(sum of weights of S). (Concave of modular => submodular.)
class SqrtModularOracle final : public SubmodularOracle {
 public:
  explicit SqrtModularOracle(std::vector<double> weights)
      : weights_(std::make_shared<const std::vector<double>>(
            std::move(weights))) {}

  std::size_t ground_size() const noexcept override {
    return weights_->size();
  }

 protected:
  double do_gain(ElementId x) const override {
    if (in_set_.size() > x && in_set_[x]) return 0.0;
    return std::sqrt(sum_ + (*weights_)[x]) - std::sqrt(sum_);
  }
  double do_add(ElementId x) override {
    if (in_set_.empty()) in_set_.resize(weights_->size(), false);
    if (in_set_[x]) return 0.0;
    const double before = std::sqrt(sum_);
    sum_ += (*weights_)[x];
    in_set_[x] = true;
    return std::sqrt(sum_) - before;
  }
  std::unique_ptr<SubmodularOracle> do_clone() const override {
    return std::make_unique<SqrtModularOracle>(*this);
  }

 private:
  std::shared_ptr<const std::vector<double>> weights_;
  std::vector<bool> in_set_;
  double sum_ = 0.0;
};

}  // namespace bds::testing
