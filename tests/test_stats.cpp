#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace bds::util {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStat, KnownSample) {
  RunningStat s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum sq dev = 32 -> 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, MergeMatchesSequential) {
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(0.37 * i * i - 3.0 * i + 1.0);

  RunningStat whole;
  for (const double x : xs) whole.add(x);

  RunningStat left, right;
  for (int i = 0; i < 40; ++i) left.add(xs[i]);
  for (int i = 40; i < 100; ++i) right.add(xs[i]);
  left.merge(right);

  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStat, MergeWithEmptySides) {
  RunningStat a, b;
  a.add(1.0);
  a.add(3.0);
  RunningStat a_copy = a;
  a.merge(b);  // merging empty changes nothing
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), a_copy.mean());

  b.merge(a);  // empty absorbs
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStat, Ci95ShrinksWithSamples) {
  RunningStat small, large;
  for (int i = 0; i < 10; ++i) small.add(i % 3);
  for (int i = 0; i < 1000; ++i) large.add(i % 3);
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(Percentile, MedianAndExtremes) {
  const std::vector<double> v{5.0, 1.0, 4.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
}

TEST(Percentile, InterpolatesBetweenOrderStats) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 0.75), 7.5);
}

TEST(Percentile, ClampsOutOfRangeQ) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.5), 3.0);
}

TEST(Aggregates, MeanAndStddev) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean_of(v), 2.5);
  EXPECT_NEAR(stddev_of(v), std::sqrt(5.0 / 3.0), 1e-12);
}

}  // namespace
}  // namespace bds::util
