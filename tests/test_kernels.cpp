// The SIMD kernel layer's contract tests (util/kernels.h):
//  * property tests for squared_l2 / dot / PointSet::normalize_rows
//    (zero vectors, dim 1, dims that are not a multiple of the SIMD
//    width, NaN-freeness);
//  * the equivalence suite: every supported ISA tier must produce doubles
//    bit-identical to the scalar lane reference, and the legacy sequential
//    path must agree within 1e-9 relative;
//  * oracle-level determinism: gain == gain_batch == parallel batch ==
//    add's realized gain, bitwise, at any thread count;
//  * the golden selection regression: bicriteria on an exemplar workload
//    picks identical elements under BDS_KERNEL=auto and =scalar, serial
//    and parallel.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/batch_eval.h"
#include "core/bicriteria.h"
#include "data/vectors_gen.h"
#include "dist/thread_pool.h"
#include "objectives/exemplar.h"
#include "util/aligned.h"
#include "util/kernels.h"
#include "util/rng.h"

namespace bds {
namespace {

// Bitwise equality — stricter than EXPECT_DOUBLE_EQ and distinguishes
// +0.0 from -0.0, which is exactly what the lane contract promises.
void expect_bits_eq(double a, double b) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b))
      << "values " << a << " vs " << b;
}

std::vector<float> random_floats(std::size_t n, util::Rng& rng, double lo = -1.0,
                                 double hi = 1.0) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.next_double(lo, hi));
  return v;
}

TEST(Kernels, ReduceLanesUsesTheDocumentedFixedOrder) {
  // Values chosen so every alternative association rounds differently.
  const double lanes[kern::kLanes] = {1.0,  1e16, -1e16, 3.0,
                                      1e-8, 7.0,  -3.0,  1e8};
  const double c0 = lanes[0] + lanes[4];
  const double c1 = lanes[1] + lanes[5];
  const double c2 = lanes[2] + lanes[6];
  const double c3 = lanes[3] + lanes[7];
  expect_bits_eq(kern::reduce_lanes(lanes), (c0 + c2) + (c1 + c3));
}

TEST(Kernels, PaddedDimRoundsUpToLaneMultiples) {
  EXPECT_EQ(kern::padded_dim(1), 8u);
  EXPECT_EQ(kern::padded_dim(8), 8u);
  EXPECT_EQ(kern::padded_dim(9), 16u);
  EXPECT_EQ(kern::padded_dim(100), 104u);
}

TEST(Kernels, DistanceFromDotClampsCancellationAtZero) {
  // Norms+dot on (nearly) identical unit vectors can cancel slightly
  // negative; the clamp keeps distances valid.
  EXPECT_EQ(kern::distance_from_dot(1.0, 1.0, 1.0 + 1e-16), 0.0);
  EXPECT_GT(kern::distance_from_dot(1.0, 1.0, 0.5), 0.0);
}

TEST(Kernels, SquaredL2Properties) {
  util::Rng rng(11);
  // Dims straddling lane boundaries: 1, 7, 8, 13 and a big one.
  for (const std::size_t dim : {1u, 7u, 8u, 13u, 100u, 259u}) {
    const auto a = random_floats(dim, rng);
    const auto zero = std::vector<float>(dim, 0.0f);
    // Identity and symmetry.
    EXPECT_EQ(kern::squared_l2(a.data(), a.data(), dim), 0.0);
    expect_bits_eq(kern::squared_l2(a.data(), zero.data(), dim),
                   kern::squared_l2(zero.data(), a.data(), dim));
    // Distance to the origin is the squared norm.
    expect_bits_eq(kern::squared_l2(a.data(), zero.data(), dim),
                   kern::squared_norm(a.data(), dim));
    // Non-negative and NaN-free on random data.
    const auto b = random_floats(dim, rng);
    const double d = kern::squared_l2(a.data(), b.data(), dim);
    EXPECT_GE(d, 0.0);
    EXPECT_FALSE(std::isnan(d));
    // Close to the naive sequential sum (not necessarily bit-equal —
    // different association).
    double naive = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      const double diff = double(a[i]) - double(b[i]);
      naive += diff * diff;
    }
    EXPECT_NEAR(d, naive, 1e-9 * (1.0 + naive));
  }
}

TEST(Kernels, SquaredL2ExactOnIntegerCoordinates) {
  // Small integers are exact in float and double, every partial sum is
  // exact, so any association gives the same answer: 1+4+9+16+25 = 55.
  const std::vector<float> a = {1, 2, 3, 4, 5};
  const std::vector<float> b = {0, 0, 0, 0, 0};
  EXPECT_EQ(kern::squared_l2(a.data(), b.data(), 5), 55.0);
}

TEST(Kernels, DotMatchesReferenceAndNormIsSelfDot) {
  util::Rng rng(12);
  for (const std::size_t dim : {1u, 5u, 8u, 13u, 64u}) {
    const auto a = random_floats(dim, rng);
    const auto b = random_floats(dim, rng);
    double naive = 0.0;
    for (std::size_t i = 0; i < dim; ++i) naive += double(a[i]) * double(b[i]);
    EXPECT_NEAR(kern::dot(a.data(), b.data(), dim), naive,
                1e-9 * (1.0 + std::abs(naive)));
    expect_bits_eq(kern::squared_norm(a.data(), dim),
                   kern::dot(a.data(), a.data(), dim));
  }
}

TEST(Kernels, IsaNamesAndSupport) {
  EXPECT_STREQ(kern::isa_name(kern::Isa::kScalar), "scalar");
  EXPECT_STREQ(kern::isa_name(kern::Isa::kSse2), "sse2");
  EXPECT_STREQ(kern::isa_name(kern::Isa::kAvx2), "avx2");
  EXPECT_STREQ(kern::isa_name(kern::Isa::kAvx512), "avx512");
  EXPECT_TRUE(kern::isa_supported(kern::Isa::kScalar));
}

// The scalar-fallback leg for the AVX-512 tier: forcing a mode the host
// cannot run must clamp to the best supported tier instead of dispatching
// illegal instructions.
TEST(Kernels, ForcedAvx512DegradesToBestSupported) {
  kern::Isa best;
  {
    kern::ForcedMode auto_mode(kern::Mode::kAuto);
    best = kern::active_isa();
  }
  kern::ForcedMode forced(kern::Mode::kAvx512);
  EXPECT_FALSE(kern::legacy());
  if (kern::isa_supported(kern::Isa::kAvx512)) {
    EXPECT_EQ(kern::active_isa(), kern::Isa::kAvx512);
    EXPECT_STREQ(kern::active_name(), "avx512");
  } else {
    EXPECT_EQ(kern::active_isa(), best);
  }
}

TEST(Kernels, ForcedModeOverridesAndRestores) {
  const kern::Isa ambient = kern::active_isa();
  {
    kern::ForcedMode scalar(kern::Mode::kScalar);
    EXPECT_EQ(kern::active_isa(), kern::Isa::kScalar);
    EXPECT_FALSE(kern::legacy());
    {
      kern::ForcedMode legacy(kern::Mode::kLegacy);
      EXPECT_TRUE(kern::legacy());
      EXPECT_STREQ(kern::active_name(), "legacy");
    }
    EXPECT_FALSE(kern::legacy());
    EXPECT_EQ(kern::active_isa(), kern::Isa::kScalar);
  }
  EXPECT_EQ(kern::active_isa(), ambient);
}

// --- the ISA equivalence suite ----------------------------------------------

class KernelIsaEquivalence : public ::testing::TestWithParam<kern::Isa> {};

TEST_P(KernelIsaEquivalence, PairKernelsMatchScalarBitwise) {
  const kern::Isa isa = GetParam();
  if (!kern::isa_supported(isa)) GTEST_SKIP() << "ISA not supported here";
  const kern::KernelTable& kt = kern::table_for(isa);
  const kern::KernelTable& ref = kern::table_for(kern::Isa::kScalar);
  util::Rng rng(21);
  for (const std::size_t dim : {1u, 3u, 8u, 13u, 31u, 100u, 128u}) {
    const auto a = random_floats(dim, rng, -2.0, 2.0);
    const auto b = random_floats(dim, rng, -2.0, 2.0);
    expect_bits_eq(kt.squared_l2(a.data(), b.data(), dim),
                   ref.squared_l2(a.data(), b.data(), dim));
    expect_bits_eq(kt.dot(a.data(), b.data(), dim),
                   ref.dot(a.data(), b.data(), dim));
  }
}

TEST_P(KernelIsaEquivalence, RowKernelsMatchScalarBitwise) {
  const kern::Isa isa = GetParam();
  if (!kern::isa_supported(isa)) GTEST_SKIP() << "ISA not supported here";
  const kern::KernelTable& kt = kern::table_for(isa);
  const kern::KernelTable& ref = kern::table_for(kern::Isa::kScalar);
  util::Rng rng(22);

  const std::size_t n = 137, dim = 37;  // both straddle lane boundaries
  auto points = std::make_shared<const PointSet>(
      n, dim, random_floats(n * dim, rng, -1.5, 1.5));
  // Cost terms via an id indirection (the sampled-oracle shape), including
  // repeats; and current min-dists at varied magnitudes so some candidates
  // improve some terms and not others.
  std::vector<std::uint32_t> ids;
  for (std::size_t t = 0; t < n; t += 1 + t % 3) {
    ids.push_back(static_cast<std::uint32_t>(t));
  }
  std::vector<double> min_dist(ids.size());
  for (auto& d : min_dist) d = rng.next_double(0.0, 4.0);

  const std::size_t count = ids.size();
  std::vector<double> row_a(n), row_b(n);
  const float* x = points->row(5);
  const double xn = points->norm2(5);

  // distance_row, with and without the id indirection.
  kt.distance_row(points->rows(), points->stride(), points->norms(),
                  ids.data(), 0, count, x, xn, row_a.data());
  ref.distance_row(points->rows(), points->stride(), points->norms(),
                   ids.data(), 0, count, x, xn, row_b.data());
  for (std::size_t t = 0; t < count; ++t) expect_bits_eq(row_a[t], row_b[t]);
  kt.distance_row(points->rows(), points->stride(), points->norms(), nullptr,
                  10, n - 3, x, xn, row_a.data());
  ref.distance_row(points->rows(), points->stride(), points->norms(), nullptr,
                   10, n - 3, x, xn, row_b.data());
  for (std::size_t t = 0; t + 13 < n; ++t) expect_bits_eq(row_a[t], row_b[t]);

  // gain_tile at every tile width 1..kGainTile, odd [begin, end) windows.
  for (std::size_t n_x = 1; n_x <= kern::kGainTile; ++n_x) {
    const float* xs[kern::kGainTile];
    double xnorms[kern::kGainTile];
    for (std::size_t j = 0; j < n_x; ++j) {
      xs[j] = points->row(7 * j + 2);
      xnorms[j] = points->norm2(7 * j + 2);
    }
    double out_a[kern::kGainTile], out_b[kern::kGainTile];
    kt.gain_tile(points->rows(), points->stride(), points->norms(), ids.data(),
                 min_dist.data(), 3, count - 1, xs, xnorms, n_x, out_a);
    ref.gain_tile(points->rows(), points->stride(), points->norms(),
                  ids.data(), min_dist.data(), 3, count - 1, xs, xnorms, n_x,
                  out_b);
    for (std::size_t j = 0; j < n_x; ++j) expect_bits_eq(out_a[j], out_b[j]);
  }
}

// A tile of [x, x, x, x] must equal four tiles of [x]: per-candidate
// arithmetic is independent of tile composition (the batch == scalar gain
// guarantee rests on this).
TEST_P(KernelIsaEquivalence, GainTileIsCompositionIndependent) {
  const kern::Isa isa = GetParam();
  if (!kern::isa_supported(isa)) GTEST_SKIP() << "ISA not supported here";
  const kern::KernelTable& kt = kern::table_for(isa);
  util::Rng rng(23);
  const std::size_t n = 64, dim = 20;
  auto points = std::make_shared<const PointSet>(
      n, dim, random_floats(n * dim, rng));
  std::vector<double> min_dist(n, 2.0);

  const float* xs[4];
  double xnorms[4];
  for (std::size_t j = 0; j < 4; ++j) {
    xs[j] = points->row(j * 9 + 1);
    xnorms[j] = points->norm2(j * 9 + 1);
  }
  double tiled[4];
  kt.gain_tile(points->rows(), points->stride(), points->norms(), nullptr,
               min_dist.data(), 0, n, xs, xnorms, 4, tiled);
  for (std::size_t j = 0; j < 4; ++j) {
    double solo = 0.0;
    kt.gain_tile(points->rows(), points->stride(), points->norms(), nullptr,
                 min_dist.data(), 0, n, &xs[j], &xnorms[j], 1, &solo);
    expect_bits_eq(tiled[j], solo);
  }
}

// The multi-query tile against its two defining identities: candidate j of
// a fused tile equals a solo gain_tile run with that candidate's own
// min-dist array (so fusing unrelated queries never perturbs any of them),
// and a tile where every candidate shares one min-dist array degenerates to
// gain_tile exactly.
TEST_P(KernelIsaEquivalence, MultiQueryTileMatchesSoloGainTileBitwise) {
  const kern::Isa isa = GetParam();
  if (!kern::isa_supported(isa)) GTEST_SKIP() << "ISA not supported here";
  const kern::KernelTable& kt = kern::table_for(isa);
  const kern::KernelTable& ref = kern::table_for(kern::Isa::kScalar);
  util::Rng rng(24);
  const std::size_t n = 96, dim = 19;
  auto points = std::make_shared<const PointSet>(
      n, dim, random_floats(n * dim, rng, -1.5, 1.5));

  // One min-dist array per candidate, as if each came from a different
  // query at a different coverage state.
  std::vector<std::vector<double>> mds(kern::kGainTile,
                                       std::vector<double>(n));
  for (auto& v : mds) {
    for (auto& d : v) d = rng.next_double(0.0, 3.0);
  }

  for (std::size_t n_x = 1; n_x <= kern::kGainTile; ++n_x) {
    const float* xs[kern::kGainTile];
    double xnorms[kern::kGainTile];
    const double* md_ptrs[kern::kGainTile];
    for (std::size_t j = 0; j < n_x; ++j) {
      xs[j] = points->row(11 * j + 3);
      xnorms[j] = points->norm2(11 * j + 3);
      md_ptrs[j] = mds[j].data();
    }
    double fused[kern::kGainTile], fused_ref[kern::kGainTile];
    kt.gain_tile_mq(points->rows(), points->stride(), points->norms(), nullptr,
                    md_ptrs, 0, n, xs, xnorms, n_x, fused);
    ref.gain_tile_mq(points->rows(), points->stride(), points->norms(),
                     nullptr, md_ptrs, 0, n, xs, xnorms, n_x, fused_ref);
    for (std::size_t j = 0; j < n_x; ++j) {
      expect_bits_eq(fused[j], fused_ref[j]);
      double solo = 0.0;
      kt.gain_tile(points->rows(), points->stride(), points->norms(), nullptr,
                   mds[j].data(), 0, n, &xs[j], &xnorms[j], 1, &solo);
      expect_bits_eq(fused[j], solo);
    }
  }

  // Identical min-dist arrays: mq degenerates to gain_tile bitwise.
  const float* xs[kern::kGainTile];
  double xnorms[kern::kGainTile];
  const double* same_md[kern::kGainTile];
  for (std::size_t j = 0; j < kern::kGainTile; ++j) {
    xs[j] = points->row(5 * j + 2);
    xnorms[j] = points->norm2(5 * j + 2);
    same_md[j] = mds[0].data();
  }
  double fused[kern::kGainTile], plain[kern::kGainTile];
  kt.gain_tile_mq(points->rows(), points->stride(), points->norms(), nullptr,
                  same_md, 0, n, xs, xnorms, kern::kGainTile, fused);
  kt.gain_tile(points->rows(), points->stride(), points->norms(), nullptr,
               mds[0].data(), 0, n, xs, xnorms, kern::kGainTile, plain);
  for (std::size_t j = 0; j < kern::kGainTile; ++j) {
    expect_bits_eq(fused[j], plain[j]);
  }
}

INSTANTIATE_TEST_SUITE_P(AllIsas, KernelIsaEquivalence,
                         ::testing::Values(kern::Isa::kScalar,
                                           kern::Isa::kSse2,
                                           kern::Isa::kAvx2,
                                           kern::Isa::kAvx512),
                         [](const auto& info) {
                           return kern::isa_name(info.param);
                         });

// --- PointSet layout and normalization --------------------------------------

TEST(PointSetLayout, RowsArePaddedAlignedAndZeroFilled) {
  util::Rng rng(31);
  const std::size_t n = 9, dim = 13;
  const PointSet pts(n, dim, random_floats(n * dim, rng));
  EXPECT_EQ(pts.stride(), kern::padded_dim(dim));
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(pts.rows()) % util::kSimdAlign,
            0u);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d = dim; d < pts.stride(); ++d) {
      EXPECT_EQ(pts.row(i)[d], 0.0f) << "row " << i << " pad " << d;
    }
    EXPECT_EQ(pts.point(i).size(), dim);
    EXPECT_EQ(pts.point(i).data(), pts.row(i));
  }
}

TEST(PointSetLayout, NormsCacheMatchesKernelNorm) {
  util::Rng rng(32);
  const std::size_t n = 17, dim = 29;
  const PointSet pts(n, dim, random_floats(n * dim, rng));
  for (std::size_t i = 0; i < n; ++i) {
    expect_bits_eq(pts.norm2(i), kern::squared_norm(pts.row(i), dim));
    expect_bits_eq(pts.norms()[i], pts.norm2(i));
  }
}

TEST(PointSetLayout, NormalizeRowsProperties) {
  util::Rng rng(33);
  const std::size_t n = 12, dim = 11;
  auto data = random_floats(n * dim, rng, -3.0, 3.0);
  // Plant a zero vector: it must pass through untouched, without NaNs.
  for (std::size_t d = 0; d < dim; ++d) data[4 * dim + d] = 0.0f;
  PointSet pts(n, dim, std::move(data));
  pts.normalize_rows();
  for (std::size_t i = 0; i < n; ++i) {
    if (i == 4) {
      EXPECT_EQ(pts.norm2(i), 0.0);
      continue;
    }
    EXPECT_NEAR(pts.norm2(i), 1.0, 1e-5) << "row " << i;
    for (const float v : pts.point(i)) EXPECT_FALSE(std::isnan(v));
  }
  // The cached norms were refreshed to the post-scaling values.
  for (std::size_t i = 0; i < n; ++i) {
    expect_bits_eq(pts.norm2(i), kern::squared_norm(pts.row(i), dim));
  }
}

TEST(PointSetLayout, NormalizeDimOneRow) {
  PointSet pts(2, 1, {-4.0f, 0.5f});
  pts.normalize_rows();
  EXPECT_FLOAT_EQ(pts.point(0)[0], -1.0f);
  EXPECT_FLOAT_EQ(pts.point(1)[0], 1.0f);
}

// --- oracle-level determinism -----------------------------------------------

std::shared_ptr<const PointSet> small_workload(std::size_t n = 300,
                                               std::size_t dim = 13) {
  data::LdaVectorsConfig cfg;
  cfg.documents = static_cast<std::uint32_t>(n);
  cfg.topics = static_cast<std::uint32_t>(dim);
  cfg.clusters = 6;
  cfg.seed = 77;
  return data::make_lda_like_vectors(cfg);
}

TEST(KernelOracle, GainEqualsBatchEqualsAddRealizedGainBitwise) {
  auto points = small_workload();
  ExemplarOracle oracle(points, 2.0);
  std::vector<ElementId> xs;
  for (ElementId x = 0; x < 40; ++x) xs.push_back(x * 7 % 300);
  const auto batch = oracle.gain_batch(xs);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    expect_bits_eq(oracle.gain(xs[i]), batch[i]);
  }
  // add() realizes exactly the gain just quoted.
  const double quoted = oracle.gain(xs[3]);
  expect_bits_eq(oracle.add(xs[3]), quoted);
}

TEST(KernelOracle, DispatchedModesMatchScalarBitwise) {
  auto points = small_workload();
  std::vector<ElementId> xs;
  for (ElementId x = 0; x < 64; ++x) xs.push_back((x * 5 + 1) % 300);

  const auto run = [&](kern::Mode mode) {
    kern::ForcedMode forced(mode);
    ExemplarOracle oracle(points, 2.0);
    oracle.add(17);
    oracle.add(203);
    return oracle.gain_batch(xs);
  };
  const auto scalar = run(kern::Mode::kScalar);
  for (const kern::Mode mode : {kern::Mode::kAuto, kern::Mode::kSse2,
                                kern::Mode::kAvx2, kern::Mode::kAvx512}) {
    const auto got = run(mode);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      expect_bits_eq(got[i], scalar[i]);
    }
  }
}

TEST(KernelOracle, LegacyAgreesWithinRelativeTolerance) {
  auto points = small_workload();
  std::vector<ElementId> xs;
  for (ElementId x = 0; x < 32; ++x) xs.push_back(x * 9 % 300);
  const auto run = [&](kern::Mode mode) {
    kern::ForcedMode forced(mode);
    ExemplarOracle oracle(points, 2.0);
    oracle.add(11);
    return oracle.gain_batch(xs);
  };
  const auto lane = run(kern::Mode::kScalar);
  const auto legacy = run(kern::Mode::kLegacy);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_NEAR(lane[i], legacy[i], 1e-9 * (1.0 + std::abs(legacy[i])))
        << "candidate " << xs[i];
  }
}

TEST(KernelOracle, ParallelBatchBitIdenticalAtAnyThreadCount) {
  // Pin a lane mode: under BDS_KERNEL=legacy the oracle (correctly)
  // declines the internal parallel path this test is about.
  kern::ForcedMode forced(kern::Mode::kAuto);
  auto points = small_workload(1500, 16);
  ExemplarOracle oracle(points, 2.0);
  oracle.add(3);
  std::vector<ElementId> xs;
  for (ElementId x = 0; x < 64; ++x) xs.push_back((x * 23 + 5) % 1500);

  std::vector<double> serial(xs.size());
  oracle.gain_batch_unaccounted(xs, serial);
  for (const std::size_t threads : {2u, 5u, 8u}) {
    dist::ThreadPool pool(threads);
    std::vector<double> par(xs.size());
    ASSERT_TRUE(oracle.gain_batch_parallel_unaccounted(xs, par, pool))
        << threads << " threads";
    for (std::size_t i = 0; i < xs.size(); ++i) {
      expect_bits_eq(par[i], serial[i]);
    }
  }
}

TEST(KernelOracle, ParallelBatchDeclinesTinyWork) {
  auto points = small_workload(100, 8);
  ExemplarOracle oracle(points, 2.0);
  dist::ThreadPool pool(4);
  const std::vector<ElementId> xs = {1, 2, 3};
  std::vector<double> out(xs.size());
  // 3 × 100 pairs is far below the fork threshold.
  EXPECT_FALSE(oracle.gain_batch_parallel_unaccounted(xs, out, pool));
  // evaluate_gains falls back and still fills the answers.
  BatchEvalOptions opts;
  opts.pool = &pool;
  evaluate_gains(oracle, xs, out, opts);
  std::vector<double> ref(xs.size());
  oracle.gain_batch_unaccounted(xs, ref);
  for (std::size_t i = 0; i < xs.size(); ++i) expect_bits_eq(out[i], ref[i]);
}

TEST(KernelOracle, SampledOracleParallelMatchesSerialBitwise) {
  kern::ForcedMode forced(kern::Mode::kAuto);
  auto points = small_workload(1200, 16);
  util::Rng rng(5);
  SampledExemplarOracle oracle(points, 2.0, 400, rng);
  oracle.add(9);
  std::vector<ElementId> xs;
  for (ElementId x = 0; x < 256; ++x) xs.push_back((x * 31 + 7) % 1200);
  std::vector<double> serial(xs.size());
  oracle.gain_batch_unaccounted(xs, serial);
  dist::ThreadPool pool(3);
  std::vector<double> par(xs.size());
  ASSERT_TRUE(oracle.gain_batch_parallel_unaccounted(xs, par, pool));
  for (std::size_t i = 0; i < xs.size(); ++i) expect_bits_eq(par[i], serial[i]);
}

// --- golden determinism regression (satellite: BDS_KERNEL × threads) --------

TEST(KernelDeterminismRegression, BicriteriaSelectionsInvariantAcrossModes) {
  auto points = small_workload(800, 24);
  const ExemplarOracle proto(points, 2.0);
  std::vector<ElementId> ground(points->size());
  for (std::size_t i = 0; i < ground.size(); ++i) {
    ground[i] = static_cast<ElementId>(i);
  }

  const auto run = [&](kern::Mode mode, std::size_t threads, bool parallel) {
    kern::ForcedMode forced(mode);
    BicriteriaConfig cfg;
    cfg.k = 6;
    cfg.output_items = 10;
    cfg.rounds = 2;
    cfg.runtime.seed = 7;
    cfg.runtime.threads = threads;
    cfg.runtime.parallel_central = parallel;
    return bicriteria_greedy(proto, ground, cfg);
  };

  const auto golden = run(kern::Mode::kAuto, 1, false);
  ASSERT_EQ(golden.solution.size(), 10u);
  for (const kern::Mode mode : {kern::Mode::kAuto, kern::Mode::kScalar}) {
    for (const std::size_t threads : {1u, 8u}) {
      const auto got = run(mode, threads, threads > 1);
      EXPECT_EQ(got.solution, golden.solution)
          << kern::isa_name(kern::active_isa()) << " threads=" << threads;
      EXPECT_DOUBLE_EQ(got.value, golden.value);
    }
  }
}

}  // namespace
}  // namespace bds
