#include "core/knapsack.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/greedy.h"
#include "objectives/coverage.h"
#include "test_support.h"

namespace bds {
namespace {

using testing::iota_ids;
using testing::random_set_system;

std::vector<double> unit_costs(std::size_t n) {
  return std::vector<double>(n, 1.0);
}

TEST(Knapsack, ValidatesArguments) {
  const auto sys = random_set_system(10, 20, 0.3, 1);
  CoverageOracle oracle(sys);
  EXPECT_THROW(
      cost_benefit_greedy(oracle, iota_ids(10), unit_costs(3), 5.0),
      std::invalid_argument);
  std::vector<double> bad = unit_costs(10);
  bad[4] = 0.0;
  EXPECT_THROW(cost_benefit_greedy(oracle, iota_ids(10), bad, 5.0),
               std::invalid_argument);
  EXPECT_THROW(
      cost_benefit_greedy(oracle, iota_ids(10), unit_costs(10), 0.0),
      std::invalid_argument);
}

TEST(Knapsack, UnitCostsReduceToCardinalityGreedy) {
  const auto sys = random_set_system(40, 80, 0.1, 2);
  const CoverageOracle proto(sys);
  auto o1 = proto.clone();
  const auto budgeted =
      plain_value_greedy(*o1, iota_ids(40), unit_costs(40), 6.0);
  auto o2 = proto.clone();
  const auto plain = greedy(*o2, iota_ids(40), 6, {true});
  EXPECT_EQ(budgeted.picks, plain.picks);
  EXPECT_DOUBLE_EQ(budgeted.cost, double(budgeted.picks.size()));
}

TEST(Knapsack, RespectsBudgetExactly) {
  const auto sys = random_set_system(30, 60, 0.15, 3);
  CoverageOracle oracle(sys);
  util::Rng rng(3);
  std::vector<double> costs(30);
  for (double& c : costs) c = rng.next_double(0.5, 3.0);
  const double budget = 7.0;
  const auto result =
      cost_benefit_greedy(oracle, iota_ids(30), costs, budget);
  EXPECT_LE(result.cost, budget + 1e-12);
  // The loop must not have stopped while an affordable positive-gain item
  // remained (maximality).
  for (ElementId x = 0; x < 30; ++x) {
    if (costs[x] <= budget - result.cost) {
      EXPECT_LE(oracle.gain(x), 0.0) << "affordable item " << x << " skipped";
    }
  }
}

TEST(Knapsack, ExpensiveItemsAreSkippedNotTruncated) {
  // One giant valuable set that costs more than the budget; knapsack must
  // work around it.
  const auto sys = std::make_shared<const SetSystem>(
      std::vector<std::vector<std::uint32_t>>{
          {0, 1, 2, 3, 4, 5, 6, 7}, {0, 1}, {2, 3}, {4}},
      8);
  CoverageOracle oracle(sys);
  const std::vector<double> costs{10.0, 1.0, 1.0, 1.0};
  const auto result = cost_benefit_greedy(oracle, iota_ids(4), costs, 3.0);
  for (const ElementId x : result.picks) EXPECT_NE(x, 0u);
  EXPECT_DOUBLE_EQ(result.gained, 5.0);  // sets 1,2,3 cover {0..4}
}

TEST(Knapsack, CostBenefitBeatsPlainOnCheapGems) {
  // Plain value greedy blows the budget on one big expensive set; the
  // cost-benefit rule buys many cheap sets covering more in total.
  std::vector<std::vector<std::uint32_t>> sets;
  sets.push_back({0, 1, 2, 3, 4, 5});  // big, costs the whole budget
  for (std::uint32_t i = 0; i < 10; ++i) sets.push_back({6 + i});
  const auto sys = std::make_shared<const SetSystem>(std::move(sets), 16);
  const CoverageOracle proto(sys);
  std::vector<double> costs(11, 1.0);
  costs[0] = 10.0;

  auto value_oracle = proto.clone();
  const auto value_run =
      plain_value_greedy(*value_oracle, iota_ids(11), costs, 10.0);
  EXPECT_EQ(value_run.picks.front(), 0u);
  EXPECT_DOUBLE_EQ(value_run.gained, 6.0);

  auto ratio_oracle = proto.clone();
  const auto ratio_run =
      cost_benefit_greedy(*ratio_oracle, iota_ids(11), costs, 10.0);
  EXPECT_DOUBLE_EQ(ratio_run.gained, 10.0);  // ten singletons
}

TEST(Knapsack, PlainBeatsCostBenefitOnRatioTrap) {
  // The classic trap for pure cost-benefit: a tiny cheap item with huge
  // ratio crowds out the optimal big item.
  const auto sys = std::make_shared<const SetSystem>(
      std::vector<std::vector<std::uint32_t>>{
          {0}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}},
      11);
  const CoverageOracle proto(sys);
  // Item 0: 1 element for cost 0.1 (ratio 10); item 1: 10 elements for
  // cost 1.0 (ratio 10-). Budget 1.0: cost-benefit takes item 0 first and
  // can no longer afford item 1.
  const std::vector<double> costs{0.1, 1.0};

  auto ratio_oracle = proto.clone();
  const auto ratio_run =
      cost_benefit_greedy(*ratio_oracle, iota_ids(2), costs, 1.0);
  EXPECT_DOUBLE_EQ(ratio_run.gained, 1.0);

  auto value_oracle = proto.clone();
  const auto value_run =
      plain_value_greedy(*value_oracle, iota_ids(2), costs, 1.0);
  EXPECT_DOUBLE_EQ(value_run.gained, 10.0);

  // The combined algorithm returns the better one.
  const auto combined = knapsack_greedy(proto, iota_ids(2), costs, 1.0);
  EXPECT_DOUBLE_EQ(combined.gained, 10.0);
}

class KnapsackQuality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KnapsackQuality, CombinedRuleIsConstantFactor) {
  // Brute-force the budgeted optimum on tiny instances and check the
  // (1 - 1/sqrt(e)) ~ 0.393 floor for the better-of-two rule.
  const auto sys = random_set_system(10, 25, 0.25, GetParam() + 200);
  const CoverageOracle proto(sys);
  util::Rng rng(GetParam());
  std::vector<double> costs(10);
  for (double& c : costs) c = rng.next_double(0.5, 2.0);
  const double budget = 4.0;

  // Brute force over all subsets within budget.
  double opt = 0.0;
  for (std::uint32_t mask = 0; mask < (1u << 10); ++mask) {
    double cost = 0.0;
    std::vector<ElementId> subset;
    for (std::uint32_t i = 0; i < 10; ++i) {
      if (mask & (1u << i)) {
        cost += costs[i];
        subset.push_back(i);
      }
    }
    if (cost <= budget) opt = std::max(opt, evaluate_set(proto, subset));
  }

  const auto result = knapsack_greedy(proto, iota_ids(10), costs, budget);
  EXPECT_GE(result.gained, 0.393 * opt - 1e-9) << "seed " << GetParam();
  EXPECT_LE(result.gained, opt + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnapsackQuality,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace bds
