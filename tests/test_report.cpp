#include "dist/report.h"

#include <gtest/gtest.h>

#include "core/bicriteria.h"
#include "objectives/coverage.h"
#include "test_support.h"

namespace bds::dist {
namespace {

TEST(Report, EmptyStats) {
  const std::string out = render_execution_report(ExecutionStats{});
  EXPECT_NE(out.find("no distributed rounds"), std::string::npos);
}

TEST(Report, RendersHandBuiltRounds) {
  ExecutionStats stats;
  RoundStats r;
  r.round_index = 0;
  r.machines_used = 4;
  r.elements_scattered = 100;
  r.elements_gathered = 20;
  r.worker_evals = 500;
  r.max_machine_evals = 150;
  r.central_evals = 40;
  r.central_selected = 5;
  stats.rounds.push_back(r);
  r.round_index = 1;
  r.central_selected = 3;
  stats.rounds.push_back(r);

  const std::string out = render_execution_report(stats);
  EXPECT_NE(out.find("150"), std::string::npos);  // max machine
  EXPECT_NE(out.find("2 round(s)"), std::string::npos);
  // Communication: (100+20)*2 ids * 4 bytes = 960 B = 0.9 KiB.
  EXPECT_NE(out.find("0.9 KiB"), std::string::npos);
  // Critical path = 2 * (150 + 40) = 380.
  EXPECT_NE(out.find("critical path 380"), std::string::npos);
}

TEST(Report, RendersRealExecution) {
  const auto sys = bds::testing::random_set_system(100, 150, 0.05, 3);
  const CoverageOracle proto(sys);
  BicriteriaConfig cfg;
  cfg.k = 4;
  cfg.output_items = 8;
  cfg.rounds = 2;
  const auto result =
      bicriteria_greedy(proto, bds::testing::iota_ids(100), cfg);
  const std::string out = render_execution_report(result.stats);
  EXPECT_NE(out.find("2 round(s)"), std::string::npos);
  EXPECT_NE(out.find("round"), std::string::npos);
  // One data row per round plus header/rule/totals.
  int newlines = 0;
  for (const char c : out) newlines += (c == '\n');
  EXPECT_GE(newlines, 5);
}

}  // namespace
}  // namespace bds::dist
