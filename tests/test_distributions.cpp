#include "util/distributions.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.h"

namespace bds::util {
namespace {

TEST(Normal, MomentsMatchStandardNormal) {
  Rng rng(1);
  RunningStat stat;
  for (int i = 0; i < 200'000; ++i) stat.add(sample_normal(rng));
  EXPECT_NEAR(stat.mean(), 0.0, 0.01);
  EXPECT_NEAR(stat.stddev(), 1.0, 0.01);
}

TEST(Normal, ShiftAndScale) {
  Rng rng(2);
  RunningStat stat;
  for (int i = 0; i < 100'000; ++i) stat.add(sample_normal(rng, 5.0, 2.0));
  EXPECT_NEAR(stat.mean(), 5.0, 0.05);
  EXPECT_NEAR(stat.stddev(), 2.0, 0.05);
}

TEST(Normal, ZeroSdIsDegenerate) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(sample_normal(rng, 3.5, 0.0), 3.5);
  }
}

TEST(Normal, TailProbabilityIsSane) {
  Rng rng(4);
  int beyond2 = 0;
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) beyond2 += (std::abs(sample_normal(rng)) > 2.0);
  // P(|Z| > 2) ~ 4.55%.
  EXPECT_NEAR(double(beyond2) / kDraws, 0.0455, 0.005);
}

class GammaMoments : public ::testing::TestWithParam<double> {};

TEST_P(GammaMoments, MeanAndVarianceMatchShape) {
  const double shape = GetParam();
  Rng rng(static_cast<std::uint64_t>(shape * 1000) + 5);
  RunningStat stat;
  for (int i = 0; i < 200'000; ++i) {
    const double g = sample_gamma(rng, shape);
    EXPECT_GE(g, 0.0);
    stat.add(g);
  }
  // Gamma(shape, 1): mean = shape, variance = shape.
  EXPECT_NEAR(stat.mean(), shape, 0.03 * std::max(1.0, shape));
  EXPECT_NEAR(stat.variance(), shape, 0.06 * std::max(1.0, shape));
}

INSTANTIATE_TEST_SUITE_P(Shapes, GammaMoments,
                         ::testing::Values(0.1, 0.5, 1.0, 2.0, 7.5, 30.0));

class DirichletSymmetric : public ::testing::TestWithParam<double> {};

TEST_P(DirichletSymmetric, SimplexAndMean) {
  const double alpha = GetParam();
  Rng rng(11);
  constexpr std::size_t kDim = 8;
  std::vector<RunningStat> coords(kDim);
  for (int i = 0; i < 20'000; ++i) {
    const auto v = sample_dirichlet(rng, kDim, alpha);
    ASSERT_EQ(v.size(), kDim);
    double sum = 0.0;
    for (std::size_t d = 0; d < kDim; ++d) {
      EXPECT_GE(v[d], 0.0);
      sum += v[d];
      coords[d].add(v[d]);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  // Symmetric Dirichlet: every coordinate has mean 1/dim.
  for (const auto& c : coords) EXPECT_NEAR(c.mean(), 1.0 / kDim, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Alphas, DirichletSymmetric,
                         ::testing::Values(0.1, 0.5, 1.0, 5.0));

TEST(Dirichlet, AsymmetricConcentratesOnLargeAlpha) {
  Rng rng(13);
  const std::vector<double> alphas{10.0, 1.0, 1.0, 1.0};
  RunningStat first;
  for (int i = 0; i < 20'000; ++i) {
    const auto v = sample_dirichlet(rng, std::span<const double>(alphas));
    first.add(v[0]);
  }
  // E[v0] = 10 / 13.
  EXPECT_NEAR(first.mean(), 10.0 / 13.0, 0.01);
}

TEST(Dirichlet, SparseAlphaYieldsSparseVectors) {
  Rng rng(17);
  int dominated = 0;
  double mean_max = 0.0;
  for (int i = 0; i < 2'000; ++i) {
    const auto v = sample_dirichlet(rng, 50, 0.02);
    const double mx = *std::max_element(v.begin(), v.end());
    mean_max += mx;
    dominated += (mx > 0.5);
  }
  mean_max /= 2'000;
  // With tiny alpha a single coordinate usually dominates: for comparison a
  // uniform Dirichlet(1) on 50 coords has mean max ~= 0.09.
  EXPECT_GT(mean_max, 0.5);
  EXPECT_GT(dominated, 1'000);
}

}  // namespace
}  // namespace bds::util
