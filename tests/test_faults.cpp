// Fault-injection executor tests: the determinism contract (fixed FaultPlan
// + seed → bit-identical outcomes at any thread count; all-healthy plan →
// bit-identical to the fault-free executor), retry convergence, graceful
// degradation, and the structured round trace.
#include "dist/faults.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "core/bicriteria.h"
#include "data/synthetic_coverage.h"
#include "dist/cluster.h"
#include "dist/trace.h"
#include "objectives/coverage.h"
#include "test_support.h"

namespace bds {
namespace {

using dist::Cluster;
using dist::ClusterOptions;
using dist::DeliveryStatus;
using dist::FaultKind;
using dist::FaultPlan;
using dist::Partition;
using dist::RetryPolicy;
using dist::WorkerOutput;

WorkerOutput echo_worker(std::size_t /*machine*/,
                         std::span<const ElementId> shard) {
  WorkerOutput output;
  output.summary.assign(shard.begin(), shard.end());
  output.oracle_evals = shard.size();
  return output;
}

// ---------------------------------------------------------------------------
// FaultPlan / RetryPolicy units.

TEST(FaultPlan, AllHealthyByDefault) {
  const FaultPlan plan;
  EXPECT_TRUE(plan.all_healthy());
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t m = 0; m < 8; ++m) {
      EXPECT_EQ(plan.fault_at(r, m, 1), FaultKind::kNone);
    }
  }
}

TEST(FaultPlan, DrawsAreDeterministicPerCoordinate) {
  const FaultPlan plan = FaultPlan::recoverable(42);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t m = 0; m < 16; ++m) {
      for (std::size_t a = 1; a <= 3; ++a) {
        EXPECT_EQ(plan.fault_at(r, m, a), plan.fault_at(r, m, a));
      }
    }
  }
  // Different seed → a different fault pattern somewhere in the grid.
  const FaultPlan other = FaultPlan::recoverable(43);
  int differences = 0;
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t m = 0; m < 32; ++m) {
      differences += plan.fault_at(r, m, 1) != other.fault_at(r, m, 1);
    }
  }
  EXPECT_GT(differences, 0);
}

TEST(FaultPlan, ProbabilityOneBandAlwaysFires) {
  FaultPlan plan;
  plan.seed = 7;
  plan.crash_probability = 1.0;
  for (std::size_t m = 0; m < 16; ++m) {
    EXPECT_EQ(plan.fault_at(0, m, 1), FaultKind::kCrash);
  }
}

TEST(RetryPolicy, AttemptCapAndBackoff) {
  RetryPolicy retry;
  retry.max_attempts = 3;
  retry.backoff_base_seconds = 0.5;
  retry.backoff_multiplier = 2.0;
  EXPECT_EQ(retry.attempt_cap(), 3u);
  EXPECT_DOUBLE_EQ(retry.backoff_for_attempt(1), 0.5);
  EXPECT_DOUBLE_EQ(retry.backoff_for_attempt(2), 1.0);
  EXPECT_DOUBLE_EQ(retry.backoff_for_attempt(3), 2.0);

  retry.max_attempts = 0;  // unlimited, but capped for termination
  EXPECT_EQ(retry.attempt_cap(), 64u);
  retry.backoff_base_seconds = 0.0;
  EXPECT_DOUBLE_EQ(retry.backoff_for_attempt(5), 0.0);
}

// ---------------------------------------------------------------------------
// Cluster-level fault semantics.

TEST(ClusterFaults, AllHealthyOptionsMatchLegacyExecutor) {
  Partition partition{{0, 1, 2, 3}, {4, 5}, {}};
  Cluster legacy(3, 2);
  ClusterOptions options;
  options.threads = 2;
  Cluster modern(3, options);

  const auto a = legacy.run_round(partition, echo_worker);
  const auto b = modern.run_round(partition, echo_worker);
  ASSERT_EQ(a.size(), b.size());
  // Both executors see the same (possibly BDS_FAULT_SEED-overridden) plan,
  // so delivered summaries and delivered-only accounting always agree.
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].summary(), b[i].summary());
    EXPECT_EQ(a[i].attempts, b[i].attempts);
    EXPECT_EQ(b[i].status, DeliveryStatus::kDelivered);
  }
  const auto& ra = legacy.stats().rounds[0];
  const auto& rb = modern.stats().rounds[0];
  EXPECT_EQ(ra.worker_evals, rb.worker_evals);
  EXPECT_EQ(ra.max_machine_evals, rb.max_machine_evals);
  EXPECT_EQ(ra.elements_gathered, rb.elements_gathered);
  if (std::getenv("BDS_FAULT_SEED") == nullptr) {
    for (std::size_t i = 0; i < b.size(); ++i) {
      EXPECT_EQ(b[i].attempts, 1u);
    }
    EXPECT_EQ(rb.retries, 0u);
    EXPECT_EQ(rb.faults_injected, 0u);
    EXPECT_EQ(rb.wasted_evals, 0u);
  }
  EXPECT_EQ(rb.machines_unheard, 0u);
}

TEST(ClusterFaults, CrashesRetryUntilDeliveredAndAreAccounted) {
  // 70% of attempts fail; unlimited retries guarantee every machine is
  // eventually heard, so delivered accounting matches the healthy run.
  ClusterOptions options;
  options.threads = 2;
  options.faults.seed = 11;
  options.faults.crash_probability = 0.5;
  options.faults.drop_probability = 0.2;
  options.retry.max_attempts = 0;
  options.retry.backoff_base_seconds = 0.25;
  Cluster cluster(4, options);

  Partition partition{{0, 1, 2}, {3, 4, 5}, {6, 7}, {8}};
  const auto reports = cluster.run_round(partition, echo_worker);

  std::uint64_t retries = 0;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    EXPECT_EQ(reports[i].status, DeliveryStatus::kDelivered) << i;
    EXPECT_EQ(reports[i].summary().size(), partition[i].size());
    retries += reports[i].attempts - 1;
  }
  const auto& round = cluster.stats().rounds[0];
  EXPECT_EQ(round.retries, retries);
  EXPECT_GT(round.retries, 0u);  // deterministic under seed 11
  EXPECT_GT(round.faults_injected, 0u);
  EXPECT_GT(round.wasted_evals, 0u);
  EXPECT_GT(round.backoff_seconds, 0.0);
  // Delivered-only accounting: identical to a fault-free round.
  EXPECT_EQ(round.worker_evals, 9u);
  EXPECT_EQ(round.max_machine_evals, 3u);
  EXPECT_EQ(round.elements_gathered, 9u);
  EXPECT_EQ(round.machines_unheard, 0u);
}

TEST(ClusterFaults, ExhaustedRetriesDegradeToUnheardShard) {
  ClusterOptions options;
  options.threads = 1;
  options.faults.seed = 5;
  options.faults.crash_probability = 1.0;  // nothing ever delivers
  options.retry.max_attempts = 3;
  Cluster cluster(2, options);

  Partition partition{{0, 1}, {2, 3}};
  const auto reports = cluster.run_round(partition, echo_worker);
  for (const auto& report : reports) {
    EXPECT_EQ(report.status, DeliveryStatus::kUnheard);
    EXPECT_FALSE(report.heard());
    EXPECT_TRUE(report.summary().empty());
    EXPECT_EQ(report.attempts, 3u);
  }
  const auto& round = cluster.stats().rounds[0];
  EXPECT_EQ(round.machines_unheard, 2u);
  EXPECT_EQ(round.elements_gathered, 0u);
  EXPECT_EQ(round.worker_evals, 0u);
  EXPECT_EQ(round.wasted_evals, 12u);  // 2 machines * 3 attempts * 2 evals
  EXPECT_EQ(cluster.stats().total_machines_unheard(), 2u);
}

TEST(ClusterFaults, TruncationDeliversDegradedPrefix) {
  ClusterOptions options;
  options.threads = 1;
  options.faults.seed = 3;
  options.faults.truncation_probability = 1.0;
  options.faults.truncation_keep_fraction = 0.5;
  Cluster cluster(1, options);

  Partition partition{{0, 1, 2, 3}};
  const auto reports = cluster.run_round(partition, echo_worker);
  EXPECT_EQ(reports[0].status, DeliveryStatus::kDegraded);
  EXPECT_TRUE(reports[0].heard());
  EXPECT_EQ(reports[0].summary(), (std::vector<ElementId>{0, 1}));
  EXPECT_EQ(cluster.stats().rounds[0].elements_gathered, 2u);
}

TEST(ClusterFaults, StragglerTimesOutOnlyWhenSlowdownBlowsTheBudget) {
  // Healthy cost 4 evals <= budget 16; straggled cost 4 * 8 = 32 > 16:
  // the attempt times out and retries. With the straggler firing on every
  // attempt the machine exhausts the cap and goes unheard.
  ClusterOptions options;
  options.threads = 1;
  options.faults.seed = 9;
  options.faults.straggler_probability = 1.0;
  options.faults.straggler_slowdown = 8.0;
  options.retry.max_attempts = 2;
  options.retry.timeout_evals = 16;
  Cluster timed(1, options);
  Partition partition{{0, 1, 2, 3}};
  const auto timed_reports = timed.run_round(partition, echo_worker);
  EXPECT_EQ(timed_reports[0].status, DeliveryStatus::kUnheard);
  EXPECT_EQ(timed_reports[0].attempts, 2u);
  EXPECT_EQ(timed_reports[0].last_fault, FaultKind::kStraggler);

  // Without a timeout budget the straggler only inflates the clock.
  options.retry.timeout_evals = 0;
  Cluster untimed(1, options);
  const auto untimed_reports = untimed.run_round(partition, echo_worker);
  EXPECT_EQ(untimed_reports[0].status, DeliveryStatus::kDelivered);
  EXPECT_EQ(untimed_reports[0].attempts, 1u);
  EXPECT_EQ(untimed_reports[0].summary().size(), 4u);
}

// ---------------------------------------------------------------------------
// Algorithm-level contracts.

struct Fixture {
  data::SyntheticCoverageInstance instance;
  std::vector<ElementId> ground;

  Fixture() {
    data::SyntheticCoverageConfig cfg;
    cfg.universe_size = 500;
    cfg.planted_sets = 10;
    cfg.random_sets = 200;
    cfg.seed = 99;
    instance = data::make_synthetic_coverage(cfg);
    ground.resize(instance.sets->num_sets());
    for (std::size_t i = 0; i < ground.size(); ++i) {
      ground[i] = static_cast<ElementId>(i);
    }
  }
};

BicriteriaConfig frozen_config() {
  BicriteriaConfig cfg;
  cfg.k = 5;
  cfg.output_items = 8;
  cfg.rounds = 2;
  cfg.runtime.seed = 7;
  return cfg;
}

// Golden regression: the recoverable fault mix with unlimited retries must
// reproduce the frozen no-fault selection exactly (every shard is heard
// eventually, delivered accounting ignores failed attempts), while the
// fault ledger shows the recovery work that happened along the way.
TEST(FaultGolden, RecoverableFaultsReproduceFrozenSelection) {
  const Fixture fx;
  const CoverageOracle proto(fx.instance.sets);
  BicriteriaConfig cfg = frozen_config();
  cfg.runtime.faults = FaultPlan::recoverable(1234);
  cfg.runtime.retry.max_attempts = 0;

  const auto result = bicriteria_greedy(proto, fx.ground, cfg);
  EXPECT_DOUBLE_EQ(result.value, 362.0);
  EXPECT_EQ(result.solution,
            (std::vector<ElementId>{10, 143, 12, 60, 142, 132, 63, 24}));
  EXPECT_GT(result.stats.total_faults_injected(), 0u);
}

TEST(FaultDeterminism, FixedFaultSeedIsThreadCountInvariant) {
  const Fixture fx;
  const CoverageOracle proto(fx.instance.sets);

  DistributedResult results[2];
  for (int i = 0; i < 2; ++i) {
    BicriteriaConfig cfg = frozen_config();
    cfg.runtime.threads = i == 0 ? 1 : 4;
    cfg.runtime.faults.seed = 77;
    cfg.runtime.faults.crash_probability = 0.3;
    cfg.runtime.faults.drop_probability = 0.1;
    cfg.runtime.faults.straggler_probability = 0.2;
    cfg.runtime.retry.max_attempts = 0;
    results[i] = bicriteria_greedy(proto, fx.ground, cfg);
  }
  EXPECT_EQ(results[0].solution, results[1].solution);
  EXPECT_DOUBLE_EQ(results[0].value, results[1].value);
  ASSERT_EQ(results[0].stats.num_rounds(), results[1].stats.num_rounds());
  for (std::size_t r = 0; r < results[0].stats.num_rounds(); ++r) {
    const auto& a = results[0].stats.rounds[r];
    const auto& b = results[1].stats.rounds[r];
    EXPECT_EQ(a.worker_evals, b.worker_evals) << "round " << r;
    EXPECT_EQ(a.max_machine_evals, b.max_machine_evals) << "round " << r;
    EXPECT_EQ(a.retries, b.retries) << "round " << r;
    EXPECT_EQ(a.wasted_evals, b.wasted_evals) << "round " << r;
    EXPECT_EQ(a.faults_injected, b.faults_injected) << "round " << r;
    EXPECT_EQ(a.machines_unheard, b.machines_unheard) << "round " << r;
    EXPECT_EQ(a.central_evals, b.central_evals) << "round " << r;
  }
}

TEST(FaultDegradation, UnheardShardsAreRecordedAndValueStaysMonotone) {
  const Fixture fx;
  const CoverageOracle proto(fx.instance.sets);
  BicriteriaConfig cfg = frozen_config();
  cfg.rounds = 3;
  cfg.output_items = 9;
  cfg.runtime.faults.seed = 21;
  cfg.runtime.faults.crash_probability = 0.45;
  cfg.runtime.retry.max_attempts = 1;  // no retries: shards drop out

  const auto result = bicriteria_greedy(proto, fx.ground, cfg);
  // Degradation happened (deterministic under seed 21) but the coordinator
  // kept going on the surviving summaries.
  EXPECT_GT(result.stats.total_machines_unheard(), 0u);
  EXPECT_FALSE(result.solution.empty());
  EXPECT_GT(result.value, 0.0);
  // Monotone objective: each round's value_after never decreases.
  double previous = 0.0;
  for (const auto& round : result.rounds) {
    EXPECT_GE(round.value_after, previous - 1e-9);
    previous = round.value_after;
  }
  // The trace records exactly the unheard machines the stats count.
  std::size_t traced_unheard = 0;
  for (const auto& span : result.stats.trace.rounds) {
    traced_unheard += span.unheard.size();
  }
  EXPECT_EQ(traced_unheard, result.stats.total_machines_unheard());
}

TEST(FaultTrace, SpansRecordAttemptsAndSerializeToJson) {
  const Fixture fx;
  const CoverageOracle proto(fx.instance.sets);
  BicriteriaConfig cfg = frozen_config();
  cfg.runtime.faults = FaultPlan::recoverable(1234);
  cfg.runtime.retry.max_attempts = 0;

  std::size_t sink_calls = 0;
  cfg.runtime.trace_sink = [&sink_calls](const dist::RoundSpan&) {
    ++sink_calls;
  };
  const auto result = bicriteria_greedy(proto, fx.ground, cfg);
  EXPECT_EQ(sink_calls, result.stats.num_rounds());
  ASSERT_EQ(result.stats.trace.rounds.size(), result.stats.num_rounds());

  std::uint64_t traced_retries = 0;
  for (const auto& span : result.stats.trace.rounds) {
    EXPECT_EQ(span.machines.size(),
              result.stats.rounds[span.round_index].machines_used == 0
                  ? span.machines.size()
                  : span.machines.size());
    traced_retries += span.retries;
    for (const auto& machine : span.machines) {
      ASSERT_FALSE(machine.attempts.empty());
      EXPECT_EQ(machine.attempts.back().delivered, machine.heard);
    }
  }
  EXPECT_EQ(traced_retries, result.stats.total_retries());

  const std::string json = dist::trace_to_json(result.stats.trace);
  EXPECT_NE(json.find("\"rounds\":["), std::string::npos);
  EXPECT_NE(json.find("\"phases\""), std::string::npos);
  EXPECT_NE(json.find("\"retries\""), std::string::npos);
  // Balanced braces/brackets — cheap structural validity check.
  int braces = 0;
  int brackets = 0;
  for (const char c : json) {
    braces += c == '{';
    braces -= c == '}';
    brackets += c == '[';
    brackets -= c == ']';
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

}  // namespace
}  // namespace bds
