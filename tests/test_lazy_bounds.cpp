// Cross-round lazy gain bounds (core/bound_heap.h): the substrate's own
// invariants, the bit-identity contract of seeded lazy selection, the
// engine-level identity of lazy-on vs lazy-off runs (including
// checkpoint/resume and injected faults), and the serve layer's cross-query
// singleton warm start. Suite names match the CI `Lazy|Bound` filter so
// these run under TSan and the force-scalar kernel leg.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/bound_heap.h"
#include "core/greedy.h"
#include "core/registry.h"
#include "objectives/coverage.h"
#include "serve/service.h"
#include "test_support.h"

namespace bds {
namespace {

using bds::testing::iota_ids;
using bds::testing::random_set_system;
using detail::BoundEntry;
using detail::BoundHeap;
using detail::BoundStore;
using detail::ForcedLazy;
using detail::SingletonBoundCache;

// ---------------------------------------------------------------------------
// BoundHeap

TEST(BoundHeapOrder, PopsByBoundThenIndex) {
  BoundHeap heap;
  heap.push({1.0, 5, 0});
  heap.push({3.0, 9, 0});
  heap.push({3.0, 2, 1});  // equal bound, smaller idx: must pop first
  heap.push({2.0, 0, 0});
  EXPECT_EQ(heap.size(), 4u);
  EXPECT_EQ(heap.pop().idx, 2u);
  EXPECT_EQ(heap.pop().idx, 9u);
  EXPECT_EQ(heap.pop().idx, 0u);
  EXPECT_EQ(heap.pop().idx, 5u);
  EXPECT_TRUE(heap.empty());
}

TEST(BoundHeapOrder, BulkLoadMatchesIncrementalPushes) {
  const std::vector<BoundHeap::Item> items = {
      {2.0, 3, 0}, {2.0, 1, 1}, {5.0, 0, 0}, {0.5, 2, 0}, {5.0, 4, 2}};
  BoundHeap bulk;
  bulk.bulk_load(items);
  BoundHeap incremental;
  for (const auto& item : items) incremental.push(item);
  while (!bulk.empty()) {
    ASSERT_FALSE(incremental.empty());
    const auto a = bulk.pop();
    const auto b = incremental.pop();
    EXPECT_EQ(a.idx, b.idx);
    EXPECT_EQ(a.bound, b.bound);
    EXPECT_EQ(a.prefix, b.prefix);
  }
  EXPECT_TRUE(incremental.empty());
}

// ---------------------------------------------------------------------------
// BoundStore / SingletonBoundCache

TEST(BoundStoreTable, KeepsTightestPrefixPerElement) {
  BoundStore store;
  store.reset(10);
  EXPECT_TRUE(store.empty());

  store.record(4, 7.0, 0);
  store.record(4, 3.0, 2);  // longer prefix: tighter, replaces
  BoundEntry entry;
  ASSERT_TRUE(store.lookup(4, &entry));
  EXPECT_EQ(entry.bound, 3.0);
  EXPECT_EQ(entry.prefix, 2u);

  store.record(4, 9.0, 1);  // shorter prefix than stored: ignored
  ASSERT_TRUE(store.lookup(4, &entry));
  EXPECT_EQ(entry.bound, 3.0);
  EXPECT_EQ(entry.prefix, 2u);

  EXPECT_FALSE(store.lookup(5, &entry));
  store.record(99, 1.0, 0);  // out of range: dropped, not UB
  EXPECT_EQ(store.size(), 1u);

  store.clear();
  EXPECT_FALSE(store.lookup(4, &entry));
  EXPECT_TRUE(store.empty());
}

TEST(BoundStoreTable, SingletonAttachmentSurvivesClearAndReset) {
  auto singletons = std::make_shared<SingletonBoundCache>();
  BoundStore store;
  store.reset(8);
  store.attach_singletons(singletons);

  store.record(3, 2.5, 0);  // prefix-0: harvested into the shared cache
  store.record(6, 1.5, 1);  // deeper prefix: own entry only
  double gain = 0.0;
  ASSERT_TRUE(singletons->lookup(3, &gain));
  EXPECT_EQ(gain, 2.5);
  EXPECT_FALSE(singletons->lookup(6, &gain));

  store.clear();
  BoundEntry entry;
  ASSERT_TRUE(store.lookup(3, &entry));  // served from the attachment
  EXPECT_EQ(entry.bound, 2.5);
  EXPECT_EQ(entry.prefix, 0u);
  EXPECT_FALSE(store.lookup(6, &entry));

  store.reset(8);
  ASSERT_TRUE(store.lookup(3, &entry));
  EXPECT_FALSE(store.empty());
}

TEST(BoundStoreTable, SingletonCacheFirstWriteWins) {
  SingletonBoundCache cache;
  cache.record(2, 4.0);
  cache.record(2, 9.0);  // deterministic objectives re-store the same bits;
                         // a disagreeing second write must not clobber
  double gain = 0.0;
  ASSERT_TRUE(cache.lookup(2, &gain));
  EXPECT_EQ(gain, 4.0);
  EXPECT_EQ(cache.size(), 1u);
}

// ---------------------------------------------------------------------------
// lazy_greedy_bounded: selection bit-identity

CoverageOracle lazy_proto(std::uint64_t seed) {
  return CoverageOracle(random_set_system(80, 160, 0.05, seed));
}

TEST(LazyBoundedSelection, UnseededMatchesEagerAndPlainLazy) {
  for (const std::uint64_t seed : {7u, 11u, 23u}) {
    const auto proto = lazy_proto(seed);
    const auto ids = iota_ids(proto.ground_size());
    const auto eager_oracle = proto.clone();
    const auto plain_oracle = proto.clone();
    const auto bounded_oracle = proto.clone();
    const GreedyResult eager = greedy(*eager_oracle, ids, 12, {});
    const GreedyResult plain = lazy_greedy(*plain_oracle, ids, 12, {});
    LazyGreedyStats stats;
    const GreedyResult bounded =
        lazy_greedy_bounded(*bounded_oracle, ids, 12, {}, nullptr, &stats);
    EXPECT_EQ(eager.picks, plain.picks);
    EXPECT_EQ(eager.picks, bounded.picks);
    EXPECT_EQ(eager.gains, bounded.gains);
    // stats.evals meters gain evaluations; the oracle additionally charges
    // one eval per committed add.
    EXPECT_EQ(stats.evals + bounded.picks.size(), bounded_oracle->evals());
    // Every metered eval carries its (id, gain, prefix) certificate.
    EXPECT_EQ(stats.eval_ids.size(), stats.evals);
    EXPECT_EQ(stats.eval_gains.size(), stats.evals);
    EXPECT_EQ(stats.eval_prefixes.size(), stats.evals);
  }
}

TEST(LazyBoundedSelection, SeededStoreIsBitIdenticalAndCheaper) {
  for (const std::uint64_t seed : {3u, 19u}) {
    const auto proto = lazy_proto(seed);
    const auto ids = iota_ids(proto.ground_size());

    // Cold run: collect its certificates into a store.
    BoundStore store;
    store.reset(proto.ground_size());
    const auto cold_oracle = proto.clone();
    LazyGreedyStats cold_stats;
    const GreedyResult cold =
        lazy_greedy_bounded(*cold_oracle, ids, 10, {}, &store, &cold_stats);
    for (std::size_t i = 0; i < cold_stats.eval_ids.size(); ++i) {
      store.record(cold_stats.eval_ids[i], cold_stats.eval_gains[i],
                   cold_stats.eval_prefixes[i]);
    }
    ASSERT_GT(store.size(), 0u);

    // Warm run from the same empty prefix: identical picks, fewer evals
    // (the initial scan is fully seeded), avoided metering consistent.
    const auto warm_oracle = proto.clone();
    LazyGreedyStats warm_stats;
    const GreedyResult warm =
        lazy_greedy_bounded(*warm_oracle, ids, 10, {}, &store, &warm_stats);
    EXPECT_EQ(cold.picks, warm.picks);
    EXPECT_EQ(cold.gains, warm.gains);
    EXPECT_LT(warm_stats.evals, cold_stats.evals);
    EXPECT_GT(warm_stats.evals_avoided, cold_stats.evals_avoided);
  }
}

TEST(LazyBoundedSelection, StaleSeedsFromDeeperBaseStayExact) {
  // Seed a store at prefix 0, then select on an oracle whose committed set
  // is already non-empty: the stale singleton bounds must behave as upper
  // bounds only — same picks as a cold run from that prefix.
  const auto proto = lazy_proto(31);
  const auto ids = iota_ids(proto.ground_size());

  BoundStore store;
  store.reset(proto.ground_size());
  {
    const auto scan = proto.clone();
    for (const ElementId x : ids) store.record(x, scan->gain(x), 0);
  }

  const std::vector<ElementId> committed = {4, 17, 42};
  const auto cold = bds::seeded_clone(proto, committed);
  const auto warm = bds::seeded_clone(proto, committed);
  const GreedyResult want = lazy_greedy_bounded(*cold, ids, 8, {}, nullptr,
                                                nullptr);
  LazyGreedyStats stats;
  const GreedyResult got =
      lazy_greedy_bounded(*warm, ids, 8, {}, &store, &stats);
  EXPECT_EQ(want.picks, got.picks);
  EXPECT_EQ(want.gains, got.gains);
  EXPECT_LE(warm->evals(), cold->evals());
}

// ---------------------------------------------------------------------------
// Engine identity: lazy-on and lazy-off runs select identically everywhere.

struct EngineGridCase {
  std::string algorithm;
  std::size_t rounds;
};

RunResult run_grid_case(const CoverageOracle& proto,
                        const std::vector<ElementId>& ground,
                        const EngineGridCase& c, WorkerOracleMode mode,
                        bool faulted, std::uint64_t seed, bool lazy) {
  ForcedLazy guard(lazy);
  RuntimeOptions runtime;
  runtime.seed = seed;
  runtime.worker_oracle = mode;
  if (faulted) runtime.faults = dist::FaultPlan::recoverable(1000 + seed);
  AlgorithmParams params;
  params.k = 5;
  params.rounds = c.rounds;
  params.output_items = 12;
  params.epsilon = 0.25;
  return run_distributed(c.algorithm, proto, ground, runtime, params);
}

TEST(LazyEngineIdentity, MatchesEagerAcrossAlgorithmsModesFaultsSeeds) {
  const auto proto = lazy_proto(99);
  const auto ground = iota_ids(proto.ground_size());
  const std::vector<EngineGridCase> cases = {
      {"bicriteria", 3}, {"hybrid", 3},     {"naive", 2},
      {"parallel", 3},   {"greedi", 1},     {"randgreedi", 1},
      {"multiplicity", 2}, {"scaling", 2},
  };
  for (const auto& c : cases) {
    for (const WorkerOracleMode mode :
         {WorkerOracleMode::kShardView, WorkerOracleMode::kClone}) {
      for (const bool faulted : {false, true}) {
        for (const std::uint64_t seed : {1u, 2u}) {
          const RunResult eager =
              run_grid_case(proto, ground, c, mode, faulted, seed, false);
          const RunResult lazy =
              run_grid_case(proto, ground, c, mode, faulted, seed, true);
          const std::string label = c.algorithm + " mode=" +
                                    (mode == WorkerOracleMode::kClone
                                         ? "clone"
                                         : "view") +
                                    (faulted ? " faulted" : " healthy") +
                                    " seed=" + std::to_string(seed);
          EXPECT_EQ(eager.solution, lazy.solution) << label;
          EXPECT_EQ(eager.value, lazy.value) << label;
          ASSERT_EQ(eager.rounds.size(), lazy.rounds.size()) << label;
          for (std::size_t r = 0; r < eager.rounds.size(); ++r) {
            EXPECT_EQ(eager.rounds[r].items_added, lazy.rounds[r].items_added)
                << label << " round " << r;
            EXPECT_EQ(eager.rounds[r].value_after, lazy.rounds[r].value_after)
                << label << " round " << r;
          }
          // The substrate only removes evaluations.
          EXPECT_LE(lazy.stats.total_evals(), eager.stats.total_evals())
              << label;
          EXPECT_EQ(eager.stats.total_evals_avoided(), 0u) << label;
        }
      }
    }
  }
}

TEST(LazyEngineIdentity, MultiRoundRunsActuallyAvoidEvals) {
  const auto proto = lazy_proto(99);
  const auto ground = iota_ids(proto.ground_size());
  const EngineGridCase c{"bicriteria", 3};
  const RunResult eager = run_grid_case(proto, ground, c,
                                        WorkerOracleMode::kShardView, false,
                                        1, false);
  const RunResult lazy = run_grid_case(proto, ground, c,
                                       WorkerOracleMode::kShardView, false,
                                       1, true);
  EXPECT_LT(lazy.stats.total_evals(), eager.stats.total_evals());
  EXPECT_GT(lazy.stats.total_evals_avoided(), 0u);
  EXPECT_EQ(eager.solution, lazy.solution);
}

TEST(LazyEngineIdentity, ResumeMatchesUninterruptedLazyRun) {
  ForcedLazy guard(true);
  const auto proto = lazy_proto(55);
  const auto ground = iota_ids(proto.ground_size());
  AlgorithmParams params;
  params.k = 4;
  params.rounds = 3;
  params.output_items = 10;

  RuntimeOptions base;
  base.seed = 5;
  const RunResult full =
      run_distributed("bicriteria", proto, ground, base, params);

  for (const std::size_t kill : {std::size_t{1}, std::size_t{2}}) {
    RuntimeOptions halted = base;
    auto last = std::make_shared<std::optional<Checkpoint>>();
    halted.checkpoint_sink = [last](const Checkpoint& c) { *last = c; };
    halted.halt_after_round = kill;
    (void)run_distributed("bicriteria", proto, ground, halted, params);
    ASSERT_TRUE(last->has_value());

    RuntimeOptions resumed = base;
    resumed.resume_from = std::make_shared<const Checkpoint>(
        Checkpoint::deserialize((*last)->serialize()));
    const RunResult replay =
        run_distributed("bicriteria", proto, ground, resumed, params);
    // Same answer bit-for-bit; the bound store restarts cold on resume, so
    // the replay may spend more (never fewer... never changes selections).
    EXPECT_EQ(full.solution, replay.solution) << "kill=" << kill;
    EXPECT_EQ(full.value, replay.value) << "kill=" << kill;
    ASSERT_EQ(full.rounds.size(), replay.rounds.size()) << "kill=" << kill;
  }
}

TEST(LazyEngineIdentity, RoundSpansCarryAvoidedCounts) {
  ForcedLazy guard(true);
  const auto proto = lazy_proto(99);
  const auto ground = iota_ids(proto.ground_size());
  AlgorithmParams params;
  params.k = 5;
  params.rounds = 3;
  params.output_items = 12;
  RuntimeOptions runtime;
  runtime.seed = 1;
  const RunResult run =
      run_distributed("bicriteria", proto, ground, runtime, params);
  ASSERT_EQ(run.stats.trace.rounds.size(), run.stats.rounds.size());
  std::uint64_t span_total = 0;
  std::uint64_t stat_total = 0;
  for (std::size_t r = 0; r < run.stats.rounds.size(); ++r) {
    span_total += run.stats.trace.rounds[r].evals_avoided;
    stat_total += run.stats.rounds[r].evals_avoided;
  }
  EXPECT_GT(stat_total, 0u);
  // finish() folds the deferred final filter into RoundStats only (the
  // span already fired), so spans never exceed stats.
  EXPECT_LE(span_total, stat_total);
  EXPECT_EQ(stat_total, run.stats.total_evals_avoided());
  const std::string json = dist::trace_to_json(run.stats.trace);
  EXPECT_NE(json.find("\"evals_avoided\":"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Serve: cross-query singleton warm start.

TEST(LazyServeWarmStart, SecondUncachedQueryAvoidsInitialScans) {
  ForcedLazy guard(true);
  const auto sys = random_set_system(150, 260, 0.04, 77);

  auto run_pair = [&](bool lazy) {
    ForcedLazy inner(lazy);
    serve::ServiceOptions options;
    options.threads = 2;
    options.record_query_spans = true;
    serve::SummaryService service(options);
    service.add_corpus("news", "coverage",
                       std::make_shared<CoverageOracle>(sys));
    serve::Query q;
    q.corpus = "news";
    q.k = 6;
    q.rounds = 2;
    q.epsilon = 0.1;
    const serve::ServeResult first = service.query(q);
    // Same run modulo epsilon (practical bicriteria ignores it), distinct
    // QueryKey: a genuine cache miss that can only win via the corpus's
    // singleton warm start.
    q.epsilon = 0.2;
    const serve::ServeResult second = service.query(q);
    EXPECT_EQ(first.outcome, serve::ServeOutcome::kComputed);
    EXPECT_EQ(second.outcome, serve::ServeOutcome::kComputed);
    EXPECT_EQ(first.solution, second.solution);
    const auto spans = service.drain_query_spans();
    EXPECT_EQ(spans.size(), 2u);
    for (std::size_t i = 0; i < spans.size(); ++i) {
      EXPECT_EQ(spans[i].evals_avoided,
                i == 0 ? first.evals_avoided : second.evals_avoided);
    }
    return std::make_pair(first, second);
  };

  const auto [first_on, second_on] = run_pair(true);
  const auto [first_off, second_off] = run_pair(false);
  // Bitwise-identical answers with the substrate on or off.
  EXPECT_EQ(first_on.solution, first_off.solution);
  EXPECT_EQ(second_on.solution, second_off.solution);
  EXPECT_EQ(first_on.value, first_off.value);
  EXPECT_EQ(second_on.value, second_off.value);
  // The second query warm-starts from the first's singleton gains.
  EXPECT_GT(second_on.evals_avoided, first_on.evals_avoided);
  EXPECT_EQ(first_off.evals_avoided, 0u);
  EXPECT_EQ(second_off.evals_avoided, 0u);
}

}  // namespace
}  // namespace bds
