#include "data/bigram_gen.h"
#include "data/graph_gen.h"
#include "data/synthetic_coverage.h"
#include "data/vectors_gen.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "objectives/submodular.h"

namespace bds::data {
namespace {

// ---------------------------------------------------------------- synthetic

TEST(SyntheticCoverage, PlantedSetsPartitionUniverse) {
  SyntheticCoverageConfig cfg;
  cfg.universe_size = 1'000;
  cfg.planted_sets = 20;
  cfg.random_sets = 50;
  const auto instance = make_synthetic_coverage(cfg);

  ASSERT_EQ(instance.planted_ids.size(), 20u);
  std::set<std::uint32_t> covered;
  for (const ElementId id : instance.planted_ids) {
    const auto items = instance.sets->set_items(id);
    EXPECT_EQ(items.size(), 50u);  // n/K
    for (const auto e : items) {
      EXPECT_TRUE(covered.insert(e).second) << "planted sets must be disjoint";
    }
  }
  EXPECT_EQ(covered.size(), 1'000u);  // they cover everything
}

TEST(SyntheticCoverage, RandomSetsHaveInflatedSize) {
  SyntheticCoverageConfig cfg;
  cfg.universe_size = 1'000;
  cfg.planted_sets = 20;
  cfg.random_sets = 30;
  cfg.epsilon1 = 0.2;
  const auto instance = make_synthetic_coverage(cfg);
  // ceil(50 * 1.2) = 60.
  for (std::size_t id = 20; id < 50; ++id) {
    EXPECT_EQ(instance.sets->set_size(static_cast<ElementId>(id)), 60u);
  }
  EXPECT_EQ(instance.sets->num_sets(), 50u);
}

TEST(SyntheticCoverage, DeterministicBySeed) {
  SyntheticCoverageConfig cfg;
  cfg.universe_size = 500;
  cfg.planted_sets = 10;
  cfg.random_sets = 20;
  const auto a = make_synthetic_coverage(cfg);
  const auto b = make_synthetic_coverage(cfg);
  for (ElementId id = 0; id < 30; ++id) {
    const auto sa = a.sets->set_items(id);
    const auto sb = b.sets->set_items(id);
    EXPECT_TRUE(std::equal(sa.begin(), sa.end(), sb.begin(), sb.end()));
  }
}

TEST(SyntheticCoverage, RejectsNonDivisibleUniverse) {
  SyntheticCoverageConfig cfg;
  cfg.universe_size = 1'001;
  cfg.planted_sets = 20;
  EXPECT_THROW(make_synthetic_coverage(cfg), std::invalid_argument);
}

// -------------------------------------------------------------------- graph

TEST(BarabasiAlbert, DegreeSumAndSimplicity) {
  const Graph g = barabasi_albert(500, 3, 1);
  EXPECT_EQ(g.num_nodes(), 500u);
  // Seed clique C(4,2)=6 edges, then 3 per new node.
  EXPECT_EQ(g.num_edges(), 6u + 3u * (500 - 4));
  for (std::uint32_t u = 0; u < g.num_nodes(); ++u) {
    std::set<std::uint32_t> nbrs(g.adjacency[u].begin(), g.adjacency[u].end());
    EXPECT_EQ(nbrs.size(), g.adjacency[u].size()) << "parallel edge at " << u;
    EXPECT_EQ(nbrs.count(u), 0u) << "self loop at " << u;
  }
}

TEST(BarabasiAlbert, AdjacencyIsSymmetric) {
  const Graph g = barabasi_albert(200, 2, 3);
  for (std::uint32_t u = 0; u < g.num_nodes(); ++u) {
    for (const std::uint32_t v : g.adjacency[u]) {
      const auto& back = g.adjacency[v];
      EXPECT_NE(std::find(back.begin(), back.end(), u), back.end());
    }
  }
}

TEST(BarabasiAlbert, HeavyTailedDegrees) {
  const Graph g = barabasi_albert(5'000, 2, 5);
  std::size_t max_degree = 0;
  for (const auto& nbrs : g.adjacency) {
    max_degree = std::max(max_degree, nbrs.size());
  }
  // Preferential attachment produces hubs far above the mean degree (~4).
  EXPECT_GT(max_degree, 40u);
}

TEST(BarabasiAlbert, RejectsBadParameters) {
  EXPECT_THROW(barabasi_albert(5, 5, 1), std::invalid_argument);
  EXPECT_THROW(barabasi_albert(10, 0, 1), std::invalid_argument);
}

namespace {
double global_clustering(const Graph& g) {
  // Fraction of closed wedges (transitivity), computed naively.
  std::size_t wedges = 0, triangles = 0;
  std::vector<std::set<std::uint32_t>> nbrs(g.num_nodes());
  for (std::uint32_t u = 0; u < g.num_nodes(); ++u) {
    nbrs[u] = std::set<std::uint32_t>(g.adjacency[u].begin(),
                                      g.adjacency[u].end());
  }
  for (std::uint32_t u = 0; u < g.num_nodes(); ++u) {
    const auto d = g.adjacency[u].size();
    wedges += d * (d - 1) / 2;
    for (std::size_t a = 0; a < d; ++a) {
      for (std::size_t b = a + 1; b < d; ++b) {
        triangles += nbrs[g.adjacency[u][a]].count(g.adjacency[u][b]);
      }
    }
  }
  return wedges == 0 ? 0.0 : double(triangles) / double(wedges);
}
}  // namespace

TEST(PowerlawCluster, SimpleSymmetricAndEdgeCount) {
  const Graph g = powerlaw_cluster(400, 3, 0.7, 1);
  EXPECT_EQ(g.num_nodes(), 400u);
  // Seed clique on m+1=4 nodes (6 edges), then 3 edges per new node.
  EXPECT_EQ(g.num_edges(), 6u + 3u * (400 - 4));
  for (std::uint32_t u = 0; u < g.num_nodes(); ++u) {
    std::set<std::uint32_t> unique(g.adjacency[u].begin(),
                                   g.adjacency[u].end());
    EXPECT_EQ(unique.size(), g.adjacency[u].size());
    EXPECT_EQ(unique.count(u), 0u);
    for (const std::uint32_t v : g.adjacency[u]) {
      const auto& back = g.adjacency[v];
      EXPECT_NE(std::find(back.begin(), back.end(), u), back.end());
    }
  }
}

TEST(PowerlawCluster, TriadClosureRaisesClustering) {
  const Graph plain = barabasi_albert(1'500, 3, 5);
  const Graph clustered = powerlaw_cluster(1'500, 3, 0.9, 5);
  EXPECT_GT(global_clustering(clustered), 3.0 * global_clustering(plain));
}

TEST(PowerlawCluster, ZeroTriadBehavesLikeBa) {
  // Same edge budget and heavy tail; exact equality is not required.
  const Graph g = powerlaw_cluster(2'000, 2, 0.0, 9);
  const Graph ba = barabasi_albert(2'000, 2, 9);
  EXPECT_EQ(g.num_edges(), ba.num_edges());
}

TEST(PowerlawCluster, RejectsBadParameters) {
  EXPECT_THROW(powerlaw_cluster(5, 5, 0.5, 1), std::invalid_argument);
  EXPECT_THROW(powerlaw_cluster(10, 2, 1.5, 1), std::invalid_argument);
  EXPECT_THROW(powerlaw_cluster(10, 2, -0.1, 1), std::invalid_argument);
}

TEST(ChungLu, EdgeBudgetAndSimplicity) {
  const Graph g = chung_lu(2'000, 6.0, 0.8, 1);
  // Target edges = n * mean/2; rejection may fall slightly short.
  EXPECT_GT(g.num_edges(), 5'000u);
  EXPECT_LE(g.num_edges(), 6'000u);
  for (std::uint32_t u = 0; u < g.num_nodes(); ++u) {
    std::set<std::uint32_t> unique(g.adjacency[u].begin(),
                                   g.adjacency[u].end());
    EXPECT_EQ(unique.size(), g.adjacency[u].size());
    EXPECT_EQ(unique.count(u), 0u);
  }
}

TEST(ChungLu, ExponentControlsDegreeTail) {
  const Graph flat = chung_lu(3'000, 6.0, 0.0, 2);
  const Graph heavy = chung_lu(3'000, 6.0, 1.0, 2);
  std::size_t flat_max = 0, heavy_max = 0;
  for (const auto& nbrs : flat.adjacency) {
    flat_max = std::max(flat_max, nbrs.size());
  }
  for (const auto& nbrs : heavy.adjacency) {
    heavy_max = std::max(heavy_max, nbrs.size());
  }
  EXPECT_GT(heavy_max, 3 * flat_max);
}

TEST(ChungLu, ValidatesArguments) {
  EXPECT_THROW(chung_lu(1, 2.0, 0.5, 1), std::invalid_argument);
  EXPECT_THROW(chung_lu(10, 0.0, 0.5, 1), std::invalid_argument);
  EXPECT_THROW(chung_lu(10, 2.0, -0.5, 1), std::invalid_argument);
}

TEST(ChungLu, DeterministicBySeed) {
  const Graph a = chung_lu(500, 4.0, 0.7, 9);
  const Graph b = chung_lu(500, 4.0, 0.7, 9);
  EXPECT_EQ(a.adjacency, b.adjacency);
}

TEST(ErdosRenyi, EdgeCountNearExpectation) {
  const Graph g = erdos_renyi(400, 0.05, 7);
  const double expected = 0.05 * 400 * 399 / 2.0;
  EXPECT_NEAR(double(g.num_edges()), expected, 5 * std::sqrt(expected));
}

TEST(ErdosRenyi, ExtremesProbabilities) {
  EXPECT_EQ(erdos_renyi(50, 0.0, 1).num_edges(), 0u);
  EXPECT_EQ(erdos_renyi(50, 1.0, 1).num_edges(), 50u * 49 / 2);
  EXPECT_THROW(erdos_renyi(10, 1.5, 1), std::invalid_argument);
}

TEST(NeighborhoodSets, MatchesAdjacency) {
  const Graph g = erdos_renyi(60, 0.1, 9);
  const auto sys = neighborhood_sets(g);
  EXPECT_EQ(sys->num_sets(), 60u);
  EXPECT_EQ(sys->universe_size(), 60u);
  EXPECT_EQ(sys->total_size(), 2 * g.num_edges());
}

TEST(NeighborhoodSets, IncludeSelfAddsOnePerNode) {
  const Graph g = erdos_renyi(40, 0.1, 11);
  const auto open = neighborhood_sets(g, false);
  const auto closed = neighborhood_sets(g, true);
  EXPECT_EQ(closed->total_size(), open->total_size() + 40u);
}

TEST(DatasetProfiles, DblpAndLivejournalShapes) {
  const auto dblp = make_dblp_like(2'000, 1);
  const auto lj = make_livejournal_like(2'000, 1);
  EXPECT_EQ(dblp->num_sets(), 2'000u);
  EXPECT_EQ(lj->num_sets(), 2'000u);
  // LiveJournal-like is denser.
  EXPECT_GT(lj->total_size(), dblp->total_size());
}

// ------------------------------------------------------------------ bigrams

TEST(Bigrams, UniverseIsCompactAndCovered) {
  BigramConfig cfg;
  cfg.books = 50;
  cfg.vocabulary = 100;
  cfg.min_tokens = 50;
  cfg.max_tokens = 500;
  const auto sys = make_bigram_sets(cfg);
  EXPECT_EQ(sys->num_sets(), 50u);
  // Every universe element appears in at least one set (compaction).
  std::set<std::uint32_t> seen;
  for (ElementId id = 0; id < sys->num_sets(); ++id) {
    const auto items = sys->set_items(id);
    seen.insert(items.begin(), items.end());
  }
  EXPECT_EQ(seen.size(), sys->universe_size());
}

TEST(Bigrams, ZipfMakesFewSetsCoverMost) {
  BigramConfig cfg;
  cfg.books = 100;
  cfg.vocabulary = 500;
  cfg.min_tokens = 100;
  cfg.max_tokens = 5'000;
  cfg.zipf_exponent = 1.1;
  const auto sys = make_bigram_sets(cfg);
  // The largest set alone covers a sizable slice of the universe.
  std::size_t max_size = 0;
  for (ElementId id = 0; id < sys->num_sets(); ++id) {
    max_size = std::max(max_size, sys->set_size(id));
  }
  EXPECT_GT(double(max_size) / sys->universe_size(), 0.05);
}

TEST(Bigrams, ValidatesConfig) {
  BigramConfig cfg;
  cfg.vocabulary = 1;
  EXPECT_THROW(make_bigram_sets(cfg), std::invalid_argument);
  cfg = {};
  cfg.min_tokens = 10;
  cfg.max_tokens = 5;
  EXPECT_THROW(make_bigram_sets(cfg), std::invalid_argument);
}

// ------------------------------------------------------------------ vectors

TEST(LdaVectors, ShapeAndNormalization) {
  LdaVectorsConfig cfg;
  cfg.documents = 200;
  cfg.topics = 20;
  cfg.clusters = 4;
  const auto pts = make_lda_like_vectors(cfg);
  EXPECT_EQ(pts->size(), 200u);
  EXPECT_EQ(pts->dim(), 20u);
  for (std::size_t i = 0; i < pts->size(); i += 13) {
    double norm2 = 0.0;
    for (const float v : pts->point(i)) {
      EXPECT_GE(v, 0.0f);  // topic proportions are non-negative
      norm2 += double(v) * v;
    }
    EXPECT_NEAR(norm2, 1.0, 1e-5);
  }
}

TEST(LdaVectors, ClusterStructureExists) {
  // Same-cluster docs should typically be closer than cross-cluster docs;
  // proxy: the mean pairwise distance is clearly below the max (structure),
  // and distances vary (not a single blob).
  LdaVectorsConfig cfg;
  cfg.documents = 120;
  cfg.topics = 30;
  cfg.clusters = 3;
  cfg.concentration = 60.0;
  const auto pts = make_lda_like_vectors(cfg);
  double min_d = 1e9, max_d = 0.0;
  for (std::size_t i = 0; i < 60; ++i) {
    for (std::size_t j = i + 1; j < 60; ++j) {
      const double d = squared_l2(pts->point(i), pts->point(j));
      min_d = std::min(min_d, d);
      max_d = std::max(max_d, d);
    }
  }
  EXPECT_LT(min_d, 0.25 * max_d);
}

TEST(ImageVectors, ShapeMeanSubtractionAndNorm) {
  ImageVectorsConfig cfg;
  cfg.images = 50;
  cfg.dim = 64;
  cfg.clusters = 5;
  const auto pts = make_image_like_vectors(cfg);
  EXPECT_EQ(pts->size(), 50u);
  EXPECT_EQ(pts->dim(), 64u);
  for (std::size_t i = 0; i < pts->size(); i += 7) {
    double sum = 0.0, norm2 = 0.0;
    for (const float v : pts->point(i)) {
      sum += v;
      norm2 += double(v) * v;
    }
    EXPECT_NEAR(norm2, 1.0, 1e-4);
    // Mean subtraction happened before normalization: mean remains ~0.
    EXPECT_NEAR(sum / 64.0, 0.0, 1e-4);
  }
}

TEST(VectorsGen, DeterministicBySeed) {
  LdaVectorsConfig cfg;
  cfg.documents = 20;
  cfg.topics = 10;
  const auto a = make_lda_like_vectors(cfg);
  const auto b = make_lda_like_vectors(cfg);
  for (std::size_t i = 0; i < a->size(); ++i) {
    for (std::size_t d = 0; d < a->dim(); ++d) {
      EXPECT_FLOAT_EQ(a->point(i)[d], b->point(i)[d]);
    }
  }
}

TEST(VectorsGen, ValidatesConfig) {
  LdaVectorsConfig lda;
  lda.topics = 0;
  EXPECT_THROW(make_lda_like_vectors(lda), std::invalid_argument);
  ImageVectorsConfig img;
  img.clusters = 0;
  EXPECT_THROW(make_image_like_vectors(img), std::invalid_argument);
}

}  // namespace
}  // namespace bds::data
