#include "data/synthetic_coverage.h"

#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace bds::data {

SyntheticCoverageInstance make_synthetic_coverage(
    const SyntheticCoverageConfig& config) {
  if (config.planted_sets == 0) {
    throw std::invalid_argument("synthetic coverage: need planted sets");
  }
  if (config.universe_size % config.planted_sets != 0) {
    throw std::invalid_argument(
        "synthetic coverage: universe size must be a multiple of K");
  }
  const std::uint32_t n = config.universe_size;
  const std::uint32_t chunk = n / config.planted_sets;
  const auto random_size = static_cast<std::uint32_t>(
      std::ceil(double(n) / double(config.planted_sets) *
                (1.0 + config.epsilon1)));

  std::vector<std::vector<std::uint32_t>> sets;
  sets.reserve(config.planted_sets + config.random_sets);

  SyntheticCoverageInstance instance;
  instance.config = config;
  instance.planted_ids.reserve(config.planted_sets);

  // Planted optimum: K disjoint chunks partitioning U.
  for (std::uint32_t i = 0; i < config.planted_sets; ++i) {
    std::vector<std::uint32_t> s(chunk);
    for (std::uint32_t j = 0; j < chunk; ++j) s[j] = i * chunk + j;
    instance.planted_ids.push_back(static_cast<ElementId>(sets.size()));
    sets.push_back(std::move(s));
  }

  // t random decoys, each of (1+ε₁)·(n/K) elements without replacement.
  util::Rng rng(config.seed);
  for (std::uint32_t i = 0; i < config.random_sets; ++i) {
    const auto picks =
        rng.sample_without_replacement(n, std::min(random_size, n));
    std::vector<std::uint32_t> s(picks.begin(), picks.end());
    sets.push_back(std::move(s));
  }

  instance.sets = std::make_shared<const SetSystem>(std::move(sets), n);
  return instance;
}

}  // namespace bds::data
