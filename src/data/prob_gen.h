// Generator for probabilistic-coverage instances: an ad-placement-style
// bipartite click model. Items are ads/campaigns, universe elements are
// users; ad i reaches user u with a click probability p_{i,u}. Users have
// Zipf-distributed activity (heavy users are reachable by many ads) and ads
// have Zipf-distributed reach — the same heavy-tail structure as the
// coverage datasets, but with soft coverage so marginal gains never
// saturate to exactly zero.
#pragma once

#include <cstdint>
#include <memory>

#include "objectives/prob_coverage.h"

namespace bds::data {

struct ClickModelConfig {
  std::uint32_t ads = 5'000;       // items (sets)
  std::uint32_t users = 20'000;    // universe
  double mean_reach = 40.0;        // mean users per ad
  double reach_zipf = 0.7;         // ad-reach heavy tail (0 = uniform)
  double user_zipf = 0.7;          // user-activity heavy tail
  float min_click = 0.02f;         // click-probability range
  float max_click = 0.5f;
  std::uint64_t seed = 1;
};

// Generates the bipartite model. Preconditions: ads, users > 0,
// 0 < mean_reach, 0 <= min_click <= max_click <= 1; throws
// std::invalid_argument otherwise.
std::shared_ptr<const ProbSetSystem> make_click_model(
    const ClickModelConfig& config);

}  // namespace bds::data
