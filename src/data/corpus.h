// CorpusSpec — a machine-shippable recipe for rebuilding an oracle.
//
// The process transport's workers (examples/bds_worker) hold none of the
// coordinator's memory, so "which objective over which dataset" must travel
// to them as data. A CorpusSpec names an objective family, the dataset file
// it reads (data/io.h container formats), and the scalar construction
// parameters — everything needed to materialize a prototype oracle that is
// bit-identical to the coordinator's, including the frozen sample of
// sampled objectives (the sample RNG is derived from `sample_seed` here, on
// both sides, so the estimate is the same estimate).
//
// Drivers that want cross-backend bit-identity should build their own
// coordinator oracle through the same make_oracle() call they serialize for
// the workers; bds_cli and the golden tests do exactly that.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "objectives/submodular.h"

namespace bds::data {

struct CorpusSpec {
  // Objective family: "coverage", "prob-coverage", "exemplar",
  // "sampled-exemplar", "logdet". (Objectives without a dataset file
  // format — e.g. saturated coverage's similarity matrix — cannot be
  // shipped and are unsupported.)
  std::string objective;
  // Dataset container file (data/io.h): a SetSystem for coverage, a
  // ProbSetSystem for prob-coverage, a PointSet for the rest.
  std::string path;
  // mmap the container zero-copy instead of heap-loading it. Bit-identical
  // either way; workers on one host share the page cache.
  bool mmap = false;

  // Exemplar family: phantom-point distance.
  double p0_dist = 2.0;
  // sampled-exemplar: sample size and the seed its frozen sample is drawn
  // from (util::Rng(mix64(sample_seed)) — the canonical construction).
  std::size_t sample_size = 0;
  std::uint64_t sample_seed = 1;
  // logdet: RBF kernel bandwidth and diagonal noise.
  double bandwidth = 1.0;
  double noise_variance = 1.0;

  // Dynamic corpora (data/dynamic.h): the serialized mutation delta
  // (DynamicCorpus::serialize_delta) to replay on top of the base dataset,
  // and the epoch the replayed corpus must land on (a cheap cross-check
  // that the delta is complete). Empty delta + epoch 0 is the frozen case;
  // version-1 specs decode to exactly that, so old coordinators and
  // workers keep interoperating.
  std::string mutations;
  std::uint64_t epoch = 0;

  // Token-text round trip (util/serialize.h discipline: versioned header,
  // bit-pattern doubles, length-prefixed path blob). deserialize throws
  // std::invalid_argument on malformed input or version/objective issues.
  std::string serialize() const;
  static CorpusSpec deserialize(std::string_view text);

  // Loads the dataset and builds the prototype oracle. Deterministic:
  // equal specs produce oracles with bit-identical gains, values and eval
  // accounting on both sides of a transport. A non-empty `mutations` delta
  // is replayed through a DynamicCorpus first, so process workers
  // provision the identical mutated oracle the coordinator holds (the
  // epoch stamp travels with it). Throws on unknown objective names,
  // unreadable datasets, or a delta/epoch mismatch.
  std::unique_ptr<SubmodularOracle> make_oracle() const;
};

}  // namespace bds::data
