#include "data/dynamic.h"

#include <algorithm>
#include <bit>
#include <sstream>
#include <utility>

#include "objectives/coverage_incremental.h"
#include "objectives/logdet.h"
#include "util/rng.h"
#include "util/serialize.h"

namespace bds::data {

namespace {
constexpr std::uint32_t kDeltaVersion = 1;
}  // namespace

DynamicCorpus::DynamicCorpus(std::shared_ptr<const SetSystem> base,
                             std::string name)
    : kind_(CorpusKind::kSets), name_(std::move(name)), sets_(std::move(base)) {
  if (!sets_) {
    throw std::invalid_argument("DynamicCorpus: null SetSystem base");
  }
  base_size_ = sets_->num_sets();
  dead_.assign(base_size_, 0);
  live_ = base_size_;
}

DynamicCorpus::DynamicCorpus(std::shared_ptr<const PointSet> base,
                             std::string name)
    : kind_(CorpusKind::kPoints),
      name_(std::move(name)),
      points_(std::move(base)) {
  if (!points_) {
    throw std::invalid_argument("DynamicCorpus: null PointSet base");
  }
  base_size_ = points_->size();
  point_dim_ = points_->dim();
  dead_.assign(base_size_, 0);
  live_ = base_size_;
}

void DynamicCorpus::check_kind(CorpusKind expected, const char* op) const {
  if (kind_ != expected) {
    throw std::logic_error(std::string("DynamicCorpus '") + name_ + "': " +
                           op + " requires a " +
                           (expected == CorpusKind::kSets ? "set-system"
                                                          : "point") +
                           " corpus");
  }
}

std::uint32_t DynamicCorpus::universe_size() const {
  check_kind(CorpusKind::kSets, "universe_size");
  return sets_->universe_size();
}

std::size_t DynamicCorpus::point_dim() const {
  check_kind(CorpusKind::kPoints, "point_dim");
  return point_dim_;
}

std::span<const std::uint32_t> DynamicCorpus::set_items(ElementId id) const {
  check_kind(CorpusKind::kSets, "set_items");
  if (id >= dead_.size()) {
    throw std::out_of_range("DynamicCorpus '" + name_ + "': set id " +
                            std::to_string(id) + " out of range");
  }
  if (id < base_size_) return sets_->set_items(id);
  const std::size_t row = id - base_size_;
  return std::span<const std::uint32_t>(
      ov_entries_.data() + ov_offsets_[row],
      static_cast<std::size_t>(ov_offsets_[row + 1] - ov_offsets_[row]));
}

ElementId DynamicCorpus::insert(std::vector<std::uint32_t> items) {
  check_kind(CorpusKind::kSets, "insert");
  // Canonicalize exactly like the owning SetSystem constructor (sort, dedup,
  // range check) so a materialized snapshot stores byte-identical rows.
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());
  for (const std::uint32_t e : items) {
    if (e >= sets_->universe_size()) {
      throw std::out_of_range("DynamicCorpus '" + name_ + "': element " +
                              std::to_string(e) + " outside universe");
    }
  }
  const auto id = static_cast<ElementId>(dead_.size());
  ov_entries_.insert(ov_entries_.end(), items.begin(), items.end());
  ov_offsets_.push_back(ov_entries_.size());
  dead_.push_back(0);
  ++live_;
  log_.push_back(
      Mutation{MutationKind::kInsert, id, std::move(items), {}});
  return id;
}

ElementId DynamicCorpus::insert_point(std::vector<float> values) {
  check_kind(CorpusKind::kPoints, "insert_point");
  if (values.size() != point_dim_) {
    throw std::invalid_argument(
        "DynamicCorpus '" + name_ + "': point has " +
        std::to_string(values.size()) + " coordinates, corpus dim is " +
        std::to_string(point_dim_));
  }
  const auto id = static_cast<ElementId>(dead_.size());
  ov_rows_.insert(ov_rows_.end(), values.begin(), values.end());
  dead_.push_back(0);
  ++live_;
  log_.push_back(
      Mutation{MutationKind::kInsert, id, {}, std::move(values)});
  return id;
}

void DynamicCorpus::erase(ElementId id) {
  if (!is_live(id)) {
    throw std::out_of_range("DynamicCorpus '" + name_ + "': erase of " +
                            (id < dead_.size() ? "already-dead" : "unknown") +
                            " id " + std::to_string(id));
  }
  dead_[id] = 1;
  --live_;
  // Point erases reindex at materialization (the exemplar cost sum must
  // drop the row), so ids from older epochs stop being addressable.
  if (kind_ == CorpusKind::kPoints) ids_stable_ = false;
  log_.push_back(Mutation{MutationKind::kErase, id, {}, {}});
}

void DynamicCorpus::apply(const Mutation& mutation) {
  switch (mutation.kind) {
    case MutationKind::kInsert: {
      const auto next = static_cast<ElementId>(dead_.size());
      if (mutation.id != next) {
        throw std::invalid_argument(
            "DynamicCorpus '" + name_ + "': delta insert carries id " +
            std::to_string(mutation.id) + " but the next ground id is " +
            std::to_string(next) +
            " — the delta was built against a different corpus state");
      }
      if (kind_ == CorpusKind::kSets) {
        insert(mutation.items);
      } else {
        insert_point(mutation.values);
      }
      return;
    }
    case MutationKind::kErase:
      erase(mutation.id);
      return;
  }
  throw std::invalid_argument("DynamicCorpus '" + name_ +
                              "': unknown mutation kind");
}

std::vector<ElementId> DynamicCorpus::live_ground() const {
  std::vector<ElementId> ground;
  ground.reserve(live_);
  if (kind_ == CorpusKind::kPoints && !ids_stable_) {
    // Materialized id space: live rows packed in order.
    for (ElementId id = 0; id < live_; ++id) ground.push_back(id);
    return ground;
  }
  for (ElementId id = 0; id < dead_.size(); ++id) {
    if (dead_[id] == 0) ground.push_back(id);
  }
  return ground;
}

std::shared_ptr<const SetSystem> DynamicCorpus::materialize_sets() const {
  check_kind(CorpusKind::kSets, "materialize_sets");
  std::vector<std::vector<std::uint32_t>> all;
  all.reserve(dead_.size());
  for (ElementId id = 0; id < dead_.size(); ++id) {
    const auto items = set_items(id);
    all.emplace_back(items.begin(), items.end());
  }
  return std::make_shared<SetSystem>(std::move(all), sets_->universe_size());
}

std::shared_ptr<const PointSet> DynamicCorpus::materialize_points() const {
  check_kind(CorpusKind::kPoints, "materialize_points");
  std::vector<float> packed;
  packed.reserve(live_ * point_dim_);
  for (ElementId id = 0; id < dead_.size(); ++id) {
    if (dead_[id] != 0) continue;
    if (id < base_size_) {
      const auto row = points_->point(id);
      packed.insert(packed.end(), row.begin(), row.end());
    } else {
      const std::size_t row = (id - base_size_) * point_dim_;
      packed.insert(packed.end(), ov_rows_.begin() + row,
                    ov_rows_.begin() + row + point_dim_);
    }
  }
  return std::make_shared<PointSet>(live_, point_dim_, std::move(packed));
}

std::size_t DynamicCorpus::overlay_state_bytes() const noexcept {
  std::size_t bytes = ov_offsets_.capacity() * sizeof(std::uint64_t) +
                      ov_entries_.capacity() * sizeof(std::uint32_t) +
                      ov_rows_.capacity() * sizeof(float) +
                      dead_.capacity() * sizeof(std::uint8_t);
  for (const Mutation& m : log_) {
    bytes += sizeof(Mutation) + m.items.capacity() * sizeof(std::uint32_t) +
             m.values.capacity() * sizeof(float);
  }
  return bytes;
}

std::string DynamicCorpus::serialize_delta(std::uint64_t from_epoch) const {
  if (from_epoch > log_.size()) {
    throw std::invalid_argument(
        "DynamicCorpus '" + name_ + "': delta from epoch " +
        std::to_string(from_epoch) + " but corpus is at epoch " +
        std::to_string(log_.size()));
  }
  std::ostringstream out;
  out << "bdsdelta " << kDeltaVersion << '\n';
  out << "count " << (log_.size() - from_epoch) << '\n';
  for (std::size_t i = from_epoch; i < log_.size(); ++i) {
    const Mutation& m = log_[i];
    if (m.kind == MutationKind::kErase) {
      out << "era " << m.id << '\n';
    } else if (!m.values.empty() || kind_ == CorpusKind::kPoints) {
      out << "pins " << m.id << ' ' << m.values.size();
      for (const float v : m.values) {
        out << ' ' << std::bit_cast<std::uint32_t>(v);
      }
      out << '\n';
    } else {
      out << "ins " << m.id << ' ' << m.items.size();
      for (const std::uint32_t e : m.items) out << ' ' << e;
      out << '\n';
    }
  }
  out << "end\n";
  return std::move(out).str();
}

std::vector<Mutation> DynamicCorpus::parse_delta(std::string_view text) {
  util::TokenReader in(text, "delta");
  in.expect("bdsdelta");
  const std::uint64_t version = in.u64();
  if (version != kDeltaVersion) {
    throw std::invalid_argument("delta: unsupported version " +
                                std::to_string(version));
  }
  in.expect("count");
  const std::size_t count = in.size();
  std::vector<Mutation> log;
  log.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::string tag = in.word();
    Mutation m;
    if (tag == "era") {
      m.kind = MutationKind::kErase;
      m.id = static_cast<ElementId>(in.u64());
    } else if (tag == "ins") {
      m.kind = MutationKind::kInsert;
      m.id = static_cast<ElementId>(in.u64());
      const std::size_t n = in.size();
      m.items.reserve(n);
      for (std::size_t j = 0; j < n; ++j) {
        m.items.push_back(static_cast<std::uint32_t>(in.u64()));
      }
    } else if (tag == "pins") {
      m.kind = MutationKind::kInsert;
      m.id = static_cast<ElementId>(in.u64());
      const std::size_t n = in.size();
      m.values.reserve(n);
      for (std::size_t j = 0; j < n; ++j) {
        m.values.push_back(
            std::bit_cast<float>(static_cast<std::uint32_t>(in.u64())));
      }
    } else {
      throw std::invalid_argument("delta: unknown mutation tag '" + tag +
                                  "'");
    }
    log.push_back(std::move(m));
  }
  in.expect("end");
  return log;
}

void require_epoch(const SubmodularOracle& oracle,
                   const DynamicCorpus& corpus) {
  if (oracle.corpus_epoch() == corpus.epoch()) return;
  throw StaleOracleError(
      "stale oracle for corpus '" + corpus.name() + "': oracle built at "
      "epoch " + std::to_string(oracle.corpus_epoch()) + ", corpus is at "
      "epoch " + std::to_string(corpus.epoch()) +
      " — rebuild it or apply the missing mutations");
}

std::unique_ptr<SubmodularOracle> make_dynamic_oracle(
    const DynamicCorpus& corpus, std::string_view objective,
    const DynamicOracleOptions& options) {
  std::unique_ptr<SubmodularOracle> oracle;
  if (objective == "coverage") {
    if (corpus.corpus_kind() != CorpusKind::kSets) {
      throw std::invalid_argument(
          "make_dynamic_oracle: coverage needs a set-system corpus");
    }
    if (options.prefer_incremental) {
      // The incremental path: build over the (possibly mmap'd) base and
      // replay the mutation log in O(degree) per insert. Integer residuals
      // make the result bit-identical to a snapshot rebuild.
      auto inc =
          std::make_unique<IncrementalCoverageOracle>(corpus.base_sets());
      std::uint64_t epoch = 0;
      for (const Mutation& m : corpus.log()) {
        ++epoch;
        if (m.kind == MutationKind::kInsert) {
          inc->apply_insert(m.id, m.items, epoch);
        } else {
          inc->apply_erase(m.id, epoch);
        }
      }
      oracle = std::move(inc);
    } else {
      // Rebuild fallback: a frozen oracle over a materialized snapshot —
      // the path every objective without incremental updates takes.
      oracle = std::make_unique<CoverageOracle>(corpus.materialize_sets());
    }
  } else if (objective == "exemplar" || objective == "sampled-exemplar" ||
             objective == "logdet") {
    if (corpus.corpus_kind() != CorpusKind::kPoints) {
      throw std::invalid_argument("make_dynamic_oracle: " +
                                  std::string(objective) +
                                  " needs a point corpus");
    }
    const auto points = corpus.materialize_points();
    if (objective == "exemplar") {
      oracle = std::make_unique<ExemplarOracle>(points, options.p0_dist);
    } else if (objective == "sampled-exemplar") {
      util::Rng rng(util::mix64(options.sample_seed));
      oracle = std::make_unique<SampledExemplarOracle>(
          points, options.p0_dist, options.sample_size, rng);
    } else {
      oracle = std::make_unique<LogDetOracle>(points, options.bandwidth,
                                              options.noise_variance);
    }
  } else {
    throw std::invalid_argument("make_dynamic_oracle: objective '" +
                                std::string(objective) +
                                "' has no dynamic path");
  }
  oracle->stamp_corpus_epoch(corpus.epoch());
  return oracle;
}

}  // namespace bds::data
