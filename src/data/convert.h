// Dataset ingestion for the `bds_convert` tool: turns text edge lists (the
// distribution format of the DBLP / Friendster-style snapshots the paper
// evaluates on, §4.1) and legacy v1 binary files into the v2 mmap-ready
// container of data/format.h.
#pragma once

#include <memory>
#include <string>

#include "data/graph_gen.h"
#include "objectives/coverage.h"

namespace bds::data {

// Parses a whitespace-separated text edge list: one "u v" pair per line,
// `#` or `%` lines are comments, self-loops and duplicate edges are
// dropped. Node ids need not be contiguous — they are compacted to
// [0, num_nodes) in order of first appearance (the SNAP convention).
// Throws std::runtime_error naming `path` on IO failure or a malformed
// line.
Graph load_edge_list(const std::string& path);

// What convert_dataset_file detected/made of its input.
struct ConvertResult {
  std::string kind;          // "edge-list", "set-system", "point-set", ...
  std::size_t ground_size;   // sets / points written
  std::size_t total_entries; // CSR entries / floats written
};

// Converts `input` into a v2 container at `output`:
//  * text edge list  -> neighborhood-set coverage instance (one set per
//    node holding its neighbors, universe = nodes — the paper's coverage
//    encoding; include_self matches graph_gen::neighborhood_sets(false))
//  * v1/v2 binary set system, point set, or prob set system -> re-encoded
//    v2 (v2 input is a format-preserving rewrite, useful for integrity
//    checks)
// The input kind is detected from the leading magic bytes; anything
// non-binary falls back to the edge-list parser. Throws std::runtime_error
// naming the offending path.
ConvertResult convert_dataset_file(const std::string& input,
                                   const std::string& output);

}  // namespace bds::data
