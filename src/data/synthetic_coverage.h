// The paper's adversarial synthetic coverage instance (§4.1, "Synthetic
// instance"): a planted optimal solution of K disjoint sets exactly
// partitioning the universe, hidden among t random sets that are each
// slightly *larger* than the planted sets — so plain greedy is drawn to the
// random sets first and the instance is hard for it.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "objectives/coverage.h"
#include "util/element.h"

namespace bds::data {

struct SyntheticCoverageConfig {
  std::uint32_t universe_size = 10'000;  // |U| (paper: 10,000)
  std::uint32_t planted_sets = 100;      // K (paper: 100)
  std::uint32_t random_sets = 100'000;   // t (paper: 100,000)
  double epsilon1 = 0.2;                 // random-set inflation (paper: 0.2)
  std::uint64_t seed = 1;
};

struct SyntheticCoverageInstance {
  std::shared_ptr<const SetSystem> sets;
  // Ids of the planted optimal sets (they exactly cover the universe).
  std::vector<ElementId> planted_ids;
  SyntheticCoverageConfig config;
};

// Builds the instance. Planted sets get ids [0, K); the t random sets,
// drawn without replacement with size ⌈(n/K)(1+ε₁)⌉, get ids [K, K+t).
// Preconditions: planted_sets > 0 and universe_size % planted_sets == 0
// (the paper assumes n is a multiple of K); throws std::invalid_argument
// otherwise.
SyntheticCoverageInstance make_synthetic_coverage(
    const SyntheticCoverageConfig& config);

}  // namespace bds::data
