#include "data/profile.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "util/rng.h"
#include "util/stats.h"

namespace bds::data {

SetSystemProfile profile_set_system(const SetSystem& sets) {
  SetSystemProfile profile;
  profile.num_sets = sets.num_sets();
  profile.universe_size = sets.universe_size();
  profile.total_size = sets.total_size();
  if (sets.num_sets() == 0) return profile;

  std::vector<double> sizes(sets.num_sets());
  std::vector<std::uint8_t> touched(sets.universe_size(), 0);
  for (ElementId id = 0; id < sets.num_sets(); ++id) {
    sizes[id] = static_cast<double>(sets.set_size(id));
    for (const auto e : sets.set_items(id)) touched[e] = 1;
  }
  profile.min_set_size = static_cast<std::size_t>(
      *std::min_element(sizes.begin(), sizes.end()));
  profile.max_set_size = static_cast<std::size_t>(
      *std::max_element(sizes.begin(), sizes.end()));
  profile.mean_set_size = util::mean_of(sizes);
  profile.median_set_size = util::percentile(sizes, 0.5);
  profile.p90_set_size = util::percentile(sizes, 0.9);

  std::vector<double> sorted = sizes;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  const std::size_t top = std::max<std::size_t>(1, sorted.size() / 100);
  double top_mass = 0.0;
  for (std::size_t i = 0; i < top; ++i) top_mass += sorted[i];
  profile.top1pct_mass =
      profile.total_size > 0 ? top_mass / double(profile.total_size) : 0.0;

  std::size_t covered = 0;
  for (const auto t : touched) covered += t;
  profile.coverable_fraction =
      sets.universe_size() > 0 ? double(covered) / sets.universe_size() : 0.0;
  return profile;
}

PointSetProfile profile_point_set(const PointSet& points,
                                  std::size_t sample_pairs,
                                  std::uint64_t seed) {
  PointSetProfile profile;
  profile.size = points.size();
  profile.dim = points.dim();
  if (points.size() == 0) return profile;

  util::RunningStat norms;
  for (std::size_t i = 0; i < points.size(); ++i) {
    double norm2 = 0.0;
    for (const float v : points.point(i)) norm2 += double(v) * v;
    norms.add(std::sqrt(norm2));
  }
  profile.mean_norm = norms.mean();

  if (points.size() >= 2 && sample_pairs > 0) {
    util::Rng rng(seed);
    util::RunningStat distances;
    for (std::size_t s = 0; s < sample_pairs; ++s) {
      const auto a = rng.next_below(points.size());
      auto b = rng.next_below(points.size());
      while (b == a) b = rng.next_below(points.size());
      distances.add(squared_l2(points.point(a), points.point(b)));
    }
    profile.mean_pairwise_distance = distances.mean();
    profile.min_sampled_distance = distances.min();
    profile.max_sampled_distance = distances.max();
  }
  return profile;
}

std::string to_string(const SetSystemProfile& p) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%zu sets over %u elements, total %zu "
                "(sizes: mean %.1f, median %.0f, p90 %.0f, max %zu; "
                "top-1%% mass %.1f%%; coverable %.1f%%)",
                p.num_sets, p.universe_size, p.total_size, p.mean_set_size,
                p.median_set_size, p.p90_set_size, p.max_set_size,
                100.0 * p.top1pct_mass, 100.0 * p.coverable_fraction);
  return buf;
}

std::string to_string(const PointSetProfile& p) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "%zu points x %zu dims (mean norm %.3f; sampled sq-dist "
                "mean %.3f, range [%.3f, %.3f])",
                p.size, p.dim, p.mean_norm, p.mean_pairwise_distance,
                p.min_sampled_distance, p.max_sampled_distance);
  return buf;
}

}  // namespace bds::data
