#include "data/vectors_gen.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/distributions.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace bds::data {

std::shared_ptr<const PointSet> make_lda_like_vectors(
    const LdaVectorsConfig& config) {
  if (config.documents == 0 || config.topics == 0 || config.clusters == 0) {
    throw std::invalid_argument("lda vectors: zero dimension in config");
  }
  util::Rng rng(config.seed);

  // Archetype concentration vectors: sparse Dirichlet draws scaled by the
  // concentration strength, floored away from zero (gamma sampling requires
  // strictly positive shape).
  std::vector<std::vector<double>> archetypes(config.clusters);
  for (auto& a : archetypes) {
    a = util::sample_dirichlet(rng, config.topics, 0.2);
    for (double& v : a) v = std::max(v * config.concentration, 1e-3);
  }

  const util::ZipfSampler cluster_prior(config.clusters,
                                        std::max(0.0, config.cluster_zipf));
  std::vector<float> data;
  data.reserve(std::size_t(config.documents) * config.topics);
  for (std::uint32_t i = 0; i < config.documents; ++i) {
    const auto& alpha = archetypes[cluster_prior.sample(rng)];
    const auto theta = util::sample_dirichlet(
        rng, std::span<const double>(alpha));
    for (const double v : theta) data.push_back(static_cast<float>(v));
  }

  auto points = std::make_shared<PointSet>(config.documents, config.topics,
                                           std::move(data));
  points->normalize_rows();
  return points;
}

std::shared_ptr<const PointSet> make_image_like_vectors(
    const ImageVectorsConfig& config) {
  if (config.images == 0 || config.dim == 0 || config.clusters == 0) {
    throw std::invalid_argument("image vectors: zero dimension in config");
  }
  util::Rng rng(config.seed);

  std::vector<std::vector<float>> centers(config.clusters);
  for (auto& c : centers) {
    c.resize(config.dim);
    for (float& v : c) v = static_cast<float>(util::sample_normal(rng));
  }

  const util::ZipfSampler cluster_prior(config.clusters,
                                        std::max(0.0, config.cluster_zipf));
  std::vector<float> data;
  data.reserve(std::size_t(config.images) * config.dim);
  for (std::uint32_t i = 0; i < config.images; ++i) {
    const auto& center = centers[cluster_prior.sample(rng)];
    double mean = 0.0;
    const std::size_t base = data.size();
    for (std::uint32_t d = 0; d < config.dim; ++d) {
      const double v =
          double(center[d]) + config.noise_sigma * util::sample_normal(rng);
      data.push_back(static_cast<float>(v));
      mean += v;
    }
    // Per-vector mean subtraction (paper's TinyImages preprocessing).
    mean /= config.dim;
    for (std::uint32_t d = 0; d < config.dim; ++d) {
      data[base + d] -= static_cast<float>(mean);
    }
  }

  auto points = std::make_shared<PointSet>(config.images, config.dim,
                                           std::move(data));
  points->normalize_rows();
  return points;
}

}  // namespace bds::data
