#include "data/graph_gen.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "util/rng.h"
#include "util/zipf.h"

namespace bds::data {

std::size_t Graph::num_edges() const noexcept {
  std::size_t degree_sum = 0;
  for (const auto& nbrs : adjacency) degree_sum += nbrs.size();
  return degree_sum / 2;
}

Graph barabasi_albert(std::uint32_t nodes, std::uint32_t edges_per_node,
                      std::uint64_t seed) {
  if (edges_per_node < 1 || nodes <= edges_per_node) {
    throw std::invalid_argument("barabasi_albert: need nodes > m >= 1");
  }
  Graph g;
  g.adjacency.resize(nodes);

  // Repeated-endpoint list: picking a uniform entry samples nodes with
  // probability proportional to degree.
  std::vector<std::uint32_t> endpoints;
  endpoints.reserve(std::size_t(2) * edges_per_node * nodes);

  const std::uint32_t seed_nodes = edges_per_node + 1;
  for (std::uint32_t u = 0; u < seed_nodes; ++u) {
    for (std::uint32_t v = u + 1; v < seed_nodes; ++v) {
      g.adjacency[u].push_back(v);
      g.adjacency[v].push_back(u);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }

  util::Rng rng(seed);
  std::unordered_set<std::uint32_t> targets;
  for (std::uint32_t u = seed_nodes; u < nodes; ++u) {
    targets.clear();
    while (targets.size() < edges_per_node) {
      targets.insert(endpoints[rng.next_below(endpoints.size())]);
    }
    for (const std::uint32_t v : targets) {
      g.adjacency[u].push_back(v);
      g.adjacency[v].push_back(u);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  return g;
}

Graph powerlaw_cluster(std::uint32_t nodes, std::uint32_t edges_per_node,
                       double triad_p, std::uint64_t seed) {
  if (edges_per_node < 1 || nodes <= edges_per_node) {
    throw std::invalid_argument("powerlaw_cluster: need nodes > m >= 1");
  }
  if (triad_p < 0.0 || triad_p > 1.0) {
    throw std::invalid_argument("powerlaw_cluster: triad_p out of [0,1]");
  }
  Graph g;
  g.adjacency.resize(nodes);
  std::vector<std::uint32_t> endpoints;
  endpoints.reserve(std::size_t(2) * edges_per_node * nodes);

  const std::uint32_t seed_nodes = edges_per_node + 1;
  for (std::uint32_t u = 0; u < seed_nodes; ++u) {
    for (std::uint32_t v = u + 1; v < seed_nodes; ++v) {
      g.adjacency[u].push_back(v);
      g.adjacency[v].push_back(u);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }

  util::Rng rng(seed);
  std::unordered_set<std::uint32_t> targets;
  for (std::uint32_t u = seed_nodes; u < nodes; ++u) {
    targets.clear();
    std::uint32_t last_pref = kInvalidElement;
    while (targets.size() < edges_per_node) {
      std::uint32_t v = kInvalidElement;
      // Triad-formation step: link to a random neighbor of the previous
      // preferential target (closing a triangle) with probability triad_p.
      if (last_pref != kInvalidElement && rng.next_bool(triad_p)) {
        const auto& nbrs = g.adjacency[last_pref];
        v = nbrs[rng.next_below(nbrs.size())];
        if (v == u || targets.count(v) != 0) v = kInvalidElement;
      }
      if (v == kInvalidElement) {  // preferential-attachment step
        v = endpoints[rng.next_below(endpoints.size())];
        if (targets.count(v) != 0) continue;
        last_pref = v;
      }
      targets.insert(v);
    }
    for (const std::uint32_t v : targets) {
      g.adjacency[u].push_back(v);
      g.adjacency[v].push_back(u);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  return g;
}

Graph erdos_renyi(std::uint32_t nodes, double p, std::uint64_t seed) {
  if (nodes == 0) throw std::invalid_argument("erdos_renyi: need nodes");
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("erdos_renyi: p out of [0,1]");
  }
  Graph g;
  g.adjacency.resize(nodes);
  util::Rng rng(seed);
  for (std::uint32_t u = 0; u < nodes; ++u) {
    for (std::uint32_t v = u + 1; v < nodes; ++v) {
      if (rng.next_bool(p)) {
        g.adjacency[u].push_back(v);
        g.adjacency[v].push_back(u);
      }
    }
  }
  return g;
}

Graph chung_lu(std::uint32_t nodes, double mean_degree, double exponent,
               std::uint64_t seed) {
  if (nodes < 2) throw std::invalid_argument("chung_lu: need >= 2 nodes");
  if (mean_degree <= 0.0) {
    throw std::invalid_argument("chung_lu: mean_degree must be positive");
  }
  if (exponent < 0.0) {
    throw std::invalid_argument("chung_lu: exponent must be non-negative");
  }
  Graph g;
  g.adjacency.resize(nodes);

  const util::ZipfSampler weights(nodes, exponent);
  util::Rng rng(seed);
  const auto target_edges = static_cast<std::size_t>(
      double(nodes) * mean_degree / 2.0);

  std::unordered_set<std::uint64_t> edges;
  edges.reserve(target_edges * 2);
  std::size_t attempts = 0;
  const std::size_t max_attempts = 20 * target_edges + 100;
  while (edges.size() < target_edges && attempts < max_attempts) {
    ++attempts;
    const auto u = static_cast<std::uint32_t>(weights.sample(rng));
    const auto v = static_cast<std::uint32_t>(weights.sample(rng));
    if (u == v) continue;
    const std::uint64_t key =
        (std::uint64_t(std::min(u, v)) << 32) | std::max(u, v);
    if (!edges.insert(key).second) continue;
    g.adjacency[u].push_back(v);
    g.adjacency[v].push_back(u);
  }
  return g;
}

std::shared_ptr<const SetSystem> neighborhood_sets(const Graph& graph,
                                                   bool include_self) {
  std::vector<std::vector<std::uint32_t>> sets;
  sets.reserve(graph.num_nodes());
  for (std::uint32_t u = 0; u < graph.num_nodes(); ++u) {
    std::vector<std::uint32_t> s = graph.adjacency[u];
    if (include_self) s.push_back(u);
    sets.push_back(std::move(s));
  }
  return std::make_shared<const SetSystem>(
      std::move(sets), static_cast<std::uint32_t>(graph.num_nodes()));
}

std::shared_ptr<const SetSystem> make_dblp_like(std::uint32_t nodes,
                                                std::uint64_t seed) {
  // DBLP: ~300k sets over ~300k elements, mean set size ~3.3 — a sparse
  // co-authorship graph with heavy-tailed degrees and strong triadic
  // closure (co-authors of co-authors collaborate). m=2 gives mean
  // degree ~4; triad_p=0.8 yields the high neighborhood overlap that makes
  // coverage saturate once the hubs are selected.
  return neighborhood_sets(powerlaw_cluster(nodes, 2, 0.8, seed));
}

std::shared_ptr<const SetSystem> make_livejournal_like(std::uint32_t nodes,
                                                       std::uint64_t seed) {
  // LiveJournal: 4m sets, total size 34m, mean degree ~8.5 and clustered
  // friendships. m=4, triad_p=0.8.
  return neighborhood_sets(powerlaw_cluster(nodes, 4, 0.8, seed));
}

}  // namespace bds::data
