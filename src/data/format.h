// The versioned binary on-disk container for dataset substrates (format v2,
// "BDS2") — the layout both the writers in data/io.cpp and the mmap load
// path share. See DESIGN.md §2.3.1 for the layout diagram and the
// version/alignment policy.
//
//   byte 0                                            64-byte aligned
//   ┌──────────────┬───────────┬─────────────┬───────────┬─────────────┐
//   │ FileHeader   │ (padding) │ section A   │ (padding) │ section B   │
//   │ (64 bytes)   │           │             │           │             │
//   └──────────────┴───────────┴─────────────┴───────────┴─────────────┘
//
// Every section starts at a file offset that is a multiple of
// kSectionAlign (64 — a cache line, and a divisor of the page size), so a
// page-aligned mmap base makes every section pointer safely aligned for
// its element type, including the kSimdAlign (32) requirement of
// PointSet's padded row matrix. All integers are little-endian; the header
// carries an endianness tag so a wrong-endian host fails loudly instead of
// reading garbage.
//
// Version policy: the header's `version` is the format generation, bumped
// on any layout change (no in-place migration — bds_convert re-encodes).
// Readers reject other versions; the v1 streamed format (magic "BDSS" /
// "BDSP" / "BDSB") predates this header and remains readable through the
// legacy heap-load path only.
#pragma once

#include <cstddef>
#include <cstdint>

namespace bds::data {

inline constexpr std::uint32_t kFormatMagic = 0x32534442;  // "BDS2"
inline constexpr std::uint32_t kFormatVersion = 2;
// Written as 0x01020304 by the (little-endian) writer; a big-endian reader
// sees 0x04030201 and rejects the file.
inline constexpr std::uint32_t kEndianTag = 0x01020304;
inline constexpr std::uint64_t kSectionAlign = 64;

// The v1 streamed-format magics (pre-header, parse-and-copy only).
inline constexpr std::uint32_t kLegacySetMagic = 0x42445353;    // "BDSS"
inline constexpr std::uint32_t kLegacyPointMagic = 0x42445350;  // "BDSP"
inline constexpr std::uint32_t kLegacyProbMagic = 0x42445342;   // "BDSB"

enum class PayloadKind : std::uint32_t {
  kSetSystem = 1,      // A: (count+1) u64 CSR offsets, B: meta_b u32 entries
  kPointSet = 2,       // A: count·meta_b f32 padded rows, B: count f64 norms
  kProbSetSystem = 3,  // A: (count+1) u64 offsets, B: meta_b {u32,f32} entries
};

// 64-byte fixed header at file offset 0.
struct FileHeader {
  std::uint32_t magic;       // kFormatMagic
  std::uint32_t version;     // kFormatVersion
  std::uint32_t endian;      // kEndianTag
  std::uint32_t kind;        // PayloadKind
  std::uint64_t count;       // sets (set kinds) / points (kPointSet)
  std::uint64_t meta_a;      // universe_size / dim
  std::uint64_t meta_b;      // total entries / row stride (floats)
  std::uint64_t section_a;   // byte offset of section A (kSectionAlign'ed)
  std::uint64_t section_b;   // byte offset of section B (kSectionAlign'ed)
  std::uint64_t file_bytes;  // exact total file size (truncation check)
};
static_assert(sizeof(FileHeader) == 64, "header layout is load-bearing");

inline constexpr std::uint64_t align_up(std::uint64_t offset) noexcept {
  return (offset + kSectionAlign - 1) / kSectionAlign * kSectionAlign;
}

}  // namespace bds::data
