#include "data/convert.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "data/format.h"
#include "data/io.h"

namespace bds::data {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error("dataset convert: " + what + ": " + path);
}

// Reads the leading magic word; 0 when the file is shorter than 4 bytes
// (then it can only be a — tiny — text file).
std::uint32_t peek_magic(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot read", path);
  std::uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  return in ? magic : 0;
}

// Reads the v2 header's payload kind (the magic was already matched).
PayloadKind peek_kind(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot read", path);
  FileHeader header{};
  in.read(reinterpret_cast<char*>(&header), sizeof(header));
  if (!in) fail("truncated file", path);
  return static_cast<PayloadKind>(header.kind);
}

}  // namespace

Graph load_edge_list(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot read", path);
  Graph graph;
  std::unordered_map<std::uint64_t, std::uint32_t> compact;
  const auto node_of = [&](std::uint64_t raw) {
    const auto [it, inserted] =
        compact.emplace(raw, static_cast<std::uint32_t>(compact.size()));
    if (inserted) graph.adjacency.emplace_back();
    return it->second;
  };
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream fields(line);
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    if (!(fields >> u >> v)) {
      fail("malformed edge at line " + std::to_string(line_no), path);
    }
    if (u == v) continue;  // drop self-loops
    const std::uint32_t a = node_of(u);
    const std::uint32_t b = node_of(v);
    graph.adjacency[a].push_back(b);
    graph.adjacency[b].push_back(a);
  }
  if (in.bad()) fail("read error", path);
  // Drop duplicate edges (text snapshots often list both directions).
  for (auto& neighbors : graph.adjacency) {
    std::sort(neighbors.begin(), neighbors.end());
    neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                    neighbors.end());
  }
  return graph;
}

ConvertResult convert_dataset_file(const std::string& input,
                                   const std::string& output) {
  const std::uint32_t magic = peek_magic(input);

  if (magic == kLegacySetMagic ||
      (magic == kFormatMagic && peek_kind(input) == PayloadKind::kSetSystem)) {
    const auto sets = load_set_system(input);
    save_set_system(*sets, output);
    return {"set-system", sets->num_sets(), sets->total_size()};
  }
  if (magic == kLegacyPointMagic ||
      (magic == kFormatMagic && peek_kind(input) == PayloadKind::kPointSet)) {
    const auto points = load_point_set(input);
    save_point_set(*points, output);
    return {"point-set", points->size(), points->size() * points->dim()};
  }
  if (magic == kLegacyProbMagic ||
      (magic == kFormatMagic &&
       peek_kind(input) == PayloadKind::kProbSetSystem)) {
    const auto sets = load_prob_set_system(input);
    save_prob_set_system(*sets, output);
    return {"prob-set-system", sets->num_sets(), sets->total_entries()};
  }
  if (magic == kFormatMagic) fail("unknown v2 payload kind", input);

  // Not one of ours: treat as a text edge list.
  const Graph graph = load_edge_list(input);
  const auto sets = neighborhood_sets(graph);
  save_set_system(*sets, output);
  return {"edge-list", sets->num_sets(), sets->total_size()};
}

}  // namespace bds::data
