#include "data/bigram_gen.h"

#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "util/rng.h"
#include "util/zipf.h"

namespace bds::data {

std::shared_ptr<const SetSystem> make_bigram_sets(const BigramConfig& config) {
  if (config.books == 0) throw std::invalid_argument("bigram: need books");
  if (config.vocabulary < 2) {
    throw std::invalid_argument("bigram: vocabulary must exceed 1");
  }
  if (config.min_tokens == 0 || config.min_tokens > config.max_tokens) {
    throw std::invalid_argument("bigram: bad token length range");
  }

  util::Rng rng(config.seed);
  const util::ZipfSampler zipf(config.vocabulary, config.zipf_exponent);

  // Dense re-labelling of (t1, t2) pairs in first-occurrence order.
  std::unordered_map<std::uint64_t, std::uint32_t> bigram_id;
  std::vector<std::vector<std::uint32_t>> sets;
  sets.reserve(config.books);

  for (std::uint32_t b = 0; b < config.books; ++b) {
    const auto length = static_cast<std::uint32_t>(rng.next_in(
        config.min_tokens, config.max_tokens));
    std::vector<std::uint32_t> book;
    book.reserve(length);
    std::uint64_t prev = zipf.sample(rng);
    for (std::uint32_t t = 1; t < length; ++t) {
      const std::uint64_t cur = zipf.sample(rng);
      const std::uint64_t key = prev * config.vocabulary + cur;
      const auto [it, inserted] = bigram_id.try_emplace(
          key, static_cast<std::uint32_t>(bigram_id.size()));
      book.push_back(it->second);
      prev = cur;
    }
    sets.push_back(std::move(book));  // SetSystem deduplicates per set
  }

  const auto universe = static_cast<std::uint32_t>(bigram_id.size());
  return std::make_shared<const SetSystem>(std::move(sets), universe);
}

}  // namespace bds::data
