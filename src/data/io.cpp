#include "data/io.h"

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "data/format.h"
#include "util/aligned.h"

namespace bds::data {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error("dataset io: " + what + ": " + path);
}

// ---------------------------------------------------------------------------
// v2 container plumbing: one writer and one byte-view reader shared by all
// three payload kinds. The heap and mmap load paths differ only in where
// the bytes live; everything after `RawFile` is identical, which is what
// makes the two backings bit-identical by construction.

// A read-only byte range plus whatever owns it (a MappedFile or a heap
// buffer), threaded into the dataset objects as their keep-alive handle.
struct RawFile {
  std::shared_ptr<const void> storage;
  const char* data = nullptr;
  std::uint64_t size = 0;
  std::string path;
};

// Heap buffers replicate the mapping's alignment guarantee: sections are
// kSectionAlign'ed within the file, so a kSectionAlign'ed base keeps every
// section pointer aligned for its element type.
using HeapBuffer = std::vector<char, util::AlignedAllocator<char, kSectionAlign>>;

RawFile map_raw(const std::string& path, util::MapAdvice advice) {
  auto file = util::MappedFile::open(path, advice);
  RawFile raw;
  raw.data = reinterpret_cast<const char*>(file->data());
  raw.size = file->size();
  raw.path = path;
  raw.storage = std::move(file);
  return raw;
}

RawFile read_raw(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) fail("cannot read", path);
  const auto size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0);
  auto buffer = std::make_shared<HeapBuffer>(size);
  in.read(buffer->data(), static_cast<std::streamsize>(size));
  if (!in) fail("truncated file", path);
  RawFile raw;
  raw.data = buffer->data();
  raw.size = size;
  raw.path = path;
  raw.storage = std::move(buffer);
  return raw;
}

bool is_legacy_magic(std::uint32_t magic) {
  return magic == kLegacySetMagic || magic == kLegacyPointMagic ||
         magic == kLegacyProbMagic;
}

// Validates the fixed header and the per-kind section geometry. Every
// check is O(1) — map-time validation must not scan the payload (the whole
// point is not to touch it); entry-level invariants are the writer's
// contract, checked by the round-trip tests.
const FileHeader& check_v2(const RawFile& raw, PayloadKind kind) {
  if (raw.size < sizeof(FileHeader)) fail("truncated file", raw.path);
  const auto& header = *reinterpret_cast<const FileHeader*>(raw.data);
  if (header.magic != kFormatMagic) {
    if (is_legacy_magic(header.magic)) {
      fail("legacy v1 file; re-encode with bds_convert", raw.path);
    }
    fail("wrong file type (bad magic)", raw.path);
  }
  if (header.version != kFormatVersion) fail("unsupported version", raw.path);
  if (header.endian != kEndianTag) fail("endianness mismatch", raw.path);
  if (header.kind != static_cast<std::uint32_t>(kind)) {
    fail("wrong payload kind", raw.path);
  }
  if (header.file_bytes != raw.size) fail("truncated file", raw.path);

  std::uint64_t a_bytes = 0;
  std::uint64_t b_bytes = 0;
  switch (kind) {
    case PayloadKind::kSetSystem:
      a_bytes = (header.count + 1) * sizeof(std::uint64_t);
      b_bytes = header.meta_b * sizeof(std::uint32_t);
      break;
    case PayloadKind::kPointSet:
      a_bytes = header.count * header.meta_b * sizeof(float);
      b_bytes = header.count * sizeof(double);
      break;
    case PayloadKind::kProbSetSystem:
      a_bytes = (header.count + 1) * sizeof(std::uint64_t);
      b_bytes = header.meta_b * sizeof(ProbSetSystem::Entry);
      break;
  }
  if (header.section_a % kSectionAlign != 0 ||
      header.section_b % kSectionAlign != 0) {
    fail("misaligned section offset", raw.path);
  }
  if (header.section_a < sizeof(FileHeader) ||
      header.section_a + a_bytes > raw.size ||
      header.section_b < header.section_a + a_bytes ||
      header.section_b + b_bytes > raw.size) {
    fail("section out of bounds", raw.path);
  }
  return header;
}

template <typename T>
const T* section_ptr(const RawFile& raw, std::uint64_t offset) {
  return reinterpret_cast<const T*>(raw.data + offset);
}

std::shared_ptr<const SetSystem> view_set_system(RawFile raw) {
  const FileHeader& header = check_v2(raw, PayloadKind::kSetSystem);
  try {
    return std::make_shared<const SetSystem>(
        section_ptr<std::uint64_t>(raw, header.section_a),
        static_cast<std::size_t>(header.count),
        section_ptr<std::uint32_t>(raw, header.section_b),
        static_cast<std::size_t>(header.meta_b),
        static_cast<std::uint32_t>(header.meta_a), raw.storage);
  } catch (const std::invalid_argument& e) {
    fail(e.what(), raw.path);
  }
}

std::shared_ptr<const PointSet> view_point_set(RawFile raw) {
  const FileHeader& header = check_v2(raw, PayloadKind::kPointSet);
  try {
    return std::make_shared<const PointSet>(
        static_cast<std::size_t>(header.count),
        static_cast<std::size_t>(header.meta_a),
        static_cast<std::size_t>(header.meta_b),
        section_ptr<float>(raw, header.section_a),
        section_ptr<double>(raw, header.section_b), raw.storage);
  } catch (const std::invalid_argument& e) {
    fail(e.what(), raw.path);
  }
}

std::shared_ptr<const ProbSetSystem> view_prob_set_system(RawFile raw) {
  const FileHeader& header = check_v2(raw, PayloadKind::kProbSetSystem);
  try {
    return std::make_shared<const ProbSetSystem>(
        section_ptr<std::uint64_t>(raw, header.section_a),
        static_cast<std::size_t>(header.count),
        section_ptr<ProbSetSystem::Entry>(raw, header.section_b),
        static_cast<std::size_t>(header.meta_b),
        static_cast<std::uint32_t>(header.meta_a), raw.storage);
  } catch (const std::invalid_argument& e) {
    fail(e.what(), raw.path);
  }
}

// Writes header + zero padding + section A + padding + section B.
void write_v2(const std::string& path, PayloadKind kind, std::uint64_t count,
              std::uint64_t meta_a, std::uint64_t meta_b, const void* a,
              std::uint64_t a_bytes, const void* b, std::uint64_t b_bytes) {
  FileHeader header{};
  header.magic = kFormatMagic;
  header.version = kFormatVersion;
  header.endian = kEndianTag;
  header.kind = static_cast<std::uint32_t>(kind);
  header.count = count;
  header.meta_a = meta_a;
  header.meta_b = meta_b;
  header.section_a = align_up(sizeof(FileHeader));
  header.section_b = align_up(header.section_a + a_bytes);
  header.file_bytes = header.section_b + b_bytes;

  std::ofstream out(path, std::ios::binary);
  if (!out) fail("cannot write", path);
  const char zeros[kSectionAlign] = {};
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  out.write(zeros,
            static_cast<std::streamsize>(header.section_a - sizeof(header)));
  out.write(static_cast<const char*>(a),
            static_cast<std::streamsize>(a_bytes));
  out.write(zeros, static_cast<std::streamsize>(
                       header.section_b - (header.section_a + a_bytes)));
  out.write(static_cast<const char*>(b),
            static_cast<std::streamsize>(b_bytes));
  if (!out) fail("write failed", path);
}

// ---------------------------------------------------------------------------
// Legacy v1 streamed readers (magic "BDSS"/"BDSP"/"BDSB", length-prefixed
// per-row payloads). Kept so pre-v2 files remain heap-loadable; map_*
// rejects them, and bds_convert re-encodes them.

constexpr std::uint32_t kLegacyVersion = 1;

template <typename T>
T read_pod(std::ifstream& in, const std::string& path) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) fail("truncated file", path);
  return value;
}

std::ifstream open_legacy(const std::string& path,
                          std::uint32_t expected_magic) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot read", path);
  const auto magic = read_pod<std::uint32_t>(in, path);
  const auto version = read_pod<std::uint32_t>(in, path);
  if (magic != expected_magic) fail("wrong file type (bad magic)", path);
  if (version != kLegacyVersion) fail("unsupported version", path);
  return in;
}

std::uint32_t peek_magic(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot read", path);
  std::uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in) fail("truncated file", path);
  return magic;
}

std::shared_ptr<const SetSystem> load_set_system_v1(const std::string& path) {
  auto in = open_legacy(path, kLegacySetMagic);
  const auto num_sets = read_pod<std::uint64_t>(in, path);
  const auto universe = read_pod<std::uint32_t>(in, path);
  std::vector<std::vector<std::uint32_t>> sets(num_sets);
  for (auto& s : sets) {
    const auto size = read_pod<std::uint64_t>(in, path);
    s.resize(size);
    in.read(reinterpret_cast<char*>(s.data()),
            std::streamsize(size * sizeof(std::uint32_t)));
    if (!in) fail("truncated file", path);
  }
  return std::make_shared<const SetSystem>(std::move(sets), universe);
}

std::shared_ptr<const PointSet> load_point_set_v1(const std::string& path) {
  auto in = open_legacy(path, kLegacyPointMagic);
  const auto n = read_pod<std::uint64_t>(in, path);
  const auto dim = read_pod<std::uint64_t>(in, path);
  std::vector<float> data(n * dim);
  in.read(reinterpret_cast<char*>(data.data()),
          std::streamsize(data.size() * sizeof(float)));
  if (!in) fail("truncated file", path);
  return std::make_shared<const PointSet>(n, dim, std::move(data));
}

std::shared_ptr<const ProbSetSystem> load_prob_set_system_v1(
    const std::string& path) {
  auto in = open_legacy(path, kLegacyProbMagic);
  const auto num_sets = read_pod<std::uint64_t>(in, path);
  const auto universe = read_pod<std::uint32_t>(in, path);
  std::vector<std::vector<ProbSetSystem::Entry>> sets(num_sets);
  for (auto& s : sets) {
    const auto size = read_pod<std::uint64_t>(in, path);
    s.reserve(size);
    for (std::uint64_t i = 0; i < size; ++i) {
      ProbSetSystem::Entry e;
      e.element = read_pod<std::uint32_t>(in, path);
      e.probability = read_pod<float>(in, path);
      s.push_back(e);
    }
  }
  return std::make_shared<const ProbSetSystem>(std::move(sets), universe);
}

}  // namespace

// --- SetSystem -------------------------------------------------------------

void save_set_system(const SetSystem& sets, const std::string& path) {
  write_v2(path, PayloadKind::kSetSystem, sets.num_sets(),
           sets.universe_size(), sets.total_size(), sets.offsets_data(),
           (sets.num_sets() + 1) * sizeof(std::uint64_t), sets.entries_data(),
           sets.total_size() * sizeof(std::uint32_t));
}

std::shared_ptr<const SetSystem> load_set_system(const std::string& path) {
  if (peek_magic(path) == kLegacySetMagic) return load_set_system_v1(path);
  return view_set_system(read_raw(path));
}

std::shared_ptr<const SetSystem> map_set_system(const std::string& path,
                                                util::MapAdvice advice) {
  return view_set_system(map_raw(path, advice));
}

// --- PointSet --------------------------------------------------------------

void save_point_set(const PointSet& points, const std::string& path) {
  write_v2(path, PayloadKind::kPointSet, points.size(), points.dim(),
           points.stride(), points.rows(),
           points.size() * points.stride() * sizeof(float), points.norms(),
           points.size() * sizeof(double));
}

std::shared_ptr<const PointSet> load_point_set(const std::string& path) {
  if (peek_magic(path) == kLegacyPointMagic) return load_point_set_v1(path);
  return view_point_set(read_raw(path));
}

std::shared_ptr<const PointSet> map_point_set(const std::string& path,
                                              util::MapAdvice advice) {
  return view_point_set(map_raw(path, advice));
}

// --- ProbSetSystem ---------------------------------------------------------

void save_prob_set_system(const ProbSetSystem& sets,
                          const std::string& path) {
  write_v2(path, PayloadKind::kProbSetSystem, sets.num_sets(),
           sets.universe_size(), sets.total_entries(), sets.offsets_data(),
           (sets.num_sets() + 1) * sizeof(std::uint64_t), sets.entries_data(),
           sets.total_entries() * sizeof(ProbSetSystem::Entry));
}

std::shared_ptr<const ProbSetSystem> load_prob_set_system(
    const std::string& path) {
  if (peek_magic(path) == kLegacyProbMagic) {
    return load_prob_set_system_v1(path);
  }
  return view_prob_set_system(read_raw(path));
}

std::shared_ptr<const ProbSetSystem> map_prob_set_system(
    const std::string& path, util::MapAdvice advice) {
  return view_prob_set_system(map_raw(path, advice));
}

}  // namespace bds::data
