#include "data/io.h"

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace bds::data {

namespace {

constexpr std::uint32_t kSetMagic = 0x42445353;    // "BDSS"
constexpr std::uint32_t kPointMagic = 0x42445350;  // "BDSP"
constexpr std::uint32_t kProbMagic = 0x42445342;   // "BDSB" (bipartite)
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("dataset io: truncated file");
  return value;
}

std::ofstream open_out(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("dataset io: cannot write " + path);
  return out;
}

std::ifstream open_in(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("dataset io: cannot read " + path);
  return in;
}

void check_header(std::ifstream& in, std::uint32_t expected_magic) {
  const auto magic = read_pod<std::uint32_t>(in);
  const auto version = read_pod<std::uint32_t>(in);
  if (magic != expected_magic) {
    throw std::runtime_error("dataset io: wrong file type");
  }
  if (version != kVersion) {
    throw std::runtime_error("dataset io: unsupported version");
  }
}

}  // namespace

void save_set_system(const SetSystem& sets, const std::string& path) {
  auto out = open_out(path);
  write_pod(out, kSetMagic);
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint64_t>(sets.num_sets()));
  write_pod(out, sets.universe_size());
  for (ElementId id = 0; id < sets.num_sets(); ++id) {
    const auto items = sets.set_items(id);
    write_pod(out, static_cast<std::uint64_t>(items.size()));
    out.write(reinterpret_cast<const char*>(items.data()),
              std::streamsize(items.size() * sizeof(std::uint32_t)));
  }
  if (!out) throw std::runtime_error("dataset io: write failed: " + path);
}

std::shared_ptr<const SetSystem> load_set_system(const std::string& path) {
  auto in = open_in(path);
  check_header(in, kSetMagic);
  const auto num_sets = read_pod<std::uint64_t>(in);
  const auto universe = read_pod<std::uint32_t>(in);
  std::vector<std::vector<std::uint32_t>> sets(num_sets);
  for (auto& s : sets) {
    const auto size = read_pod<std::uint64_t>(in);
    s.resize(size);
    in.read(reinterpret_cast<char*>(s.data()),
            std::streamsize(size * sizeof(std::uint32_t)));
    if (!in) throw std::runtime_error("dataset io: truncated file");
  }
  return std::make_shared<const SetSystem>(std::move(sets), universe);
}

void save_point_set(const PointSet& points, const std::string& path) {
  auto out = open_out(path);
  write_pod(out, kPointMagic);
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint64_t>(points.size()));
  write_pod(out, static_cast<std::uint64_t>(points.dim()));
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto row = points.point(i);
    out.write(reinterpret_cast<const char*>(row.data()),
              std::streamsize(row.size() * sizeof(float)));
  }
  if (!out) throw std::runtime_error("dataset io: write failed: " + path);
}

std::shared_ptr<const PointSet> load_point_set(const std::string& path) {
  auto in = open_in(path);
  check_header(in, kPointMagic);
  const auto n = read_pod<std::uint64_t>(in);
  const auto dim = read_pod<std::uint64_t>(in);
  std::vector<float> data(n * dim);
  in.read(reinterpret_cast<char*>(data.data()),
          std::streamsize(data.size() * sizeof(float)));
  if (!in) throw std::runtime_error("dataset io: truncated file");
  return std::make_shared<const PointSet>(n, dim, std::move(data));
}

void save_prob_set_system(const ProbSetSystem& sets,
                          const std::string& path) {
  auto out = open_out(path);
  write_pod(out, kProbMagic);
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint64_t>(sets.num_sets()));
  write_pod(out, sets.universe_size());
  for (ElementId id = 0; id < sets.num_sets(); ++id) {
    const auto entries = sets.set_entries(id);
    write_pod(out, static_cast<std::uint64_t>(entries.size()));
    for (const auto& e : entries) {
      write_pod(out, e.element);
      write_pod(out, e.probability);
    }
  }
  if (!out) throw std::runtime_error("dataset io: write failed: " + path);
}

std::shared_ptr<const ProbSetSystem> load_prob_set_system(
    const std::string& path) {
  auto in = open_in(path);
  check_header(in, kProbMagic);
  const auto num_sets = read_pod<std::uint64_t>(in);
  const auto universe = read_pod<std::uint32_t>(in);
  std::vector<std::vector<ProbSetSystem::Entry>> sets(num_sets);
  for (auto& s : sets) {
    const auto size = read_pod<std::uint64_t>(in);
    s.reserve(size);
    for (std::uint64_t i = 0; i < size; ++i) {
      ProbSetSystem::Entry e;
      e.element = read_pod<std::uint32_t>(in);
      e.probability = read_pod<float>(in);
      s.push_back(e);
    }
  }
  return std::make_shared<const ProbSetSystem>(std::move(sets), universe);
}

}  // namespace bds::data
