#include "data/prob_gen.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "util/rng.h"
#include "util/zipf.h"

namespace bds::data {

std::shared_ptr<const ProbSetSystem> make_click_model(
    const ClickModelConfig& config) {
  if (config.ads == 0 || config.users == 0) {
    throw std::invalid_argument("click model: need ads and users");
  }
  if (config.mean_reach <= 0.0) {
    throw std::invalid_argument("click model: mean_reach must be positive");
  }
  if (config.min_click < 0.0f || config.max_click > 1.0f ||
      config.min_click > config.max_click) {
    throw std::invalid_argument("click model: bad click range");
  }

  util::Rng rng(config.seed);
  const util::ZipfSampler user_prior(config.users,
                                     std::max(0.0, config.user_zipf));
  const util::ZipfSampler reach_prior(config.ads,
                                      std::max(0.0, config.reach_zipf));

  // Ad i's reach is its share of a total entry budget of ads * mean_reach,
  // distributed by Zipf rank: the total stays near the budget while the top
  // ads reach far more users than the tail.
  std::vector<std::vector<ProbSetSystem::Entry>> sets(config.ads);
  std::unordered_set<std::uint32_t> touched;
  for (std::uint32_t ad = 0; ad < config.ads; ++ad) {
    const double scale = config.mean_reach *
                         static_cast<double>(config.ads) *
                         reach_prior.pmf(ad);
    const auto reach = static_cast<std::uint32_t>(std::max(
        1.0, std::min(static_cast<double>(config.users), scale)));

    touched.clear();
    auto& entries = sets[ad];
    entries.reserve(reach);
    // Heavy users are drawn more often; dedupe within the ad.
    std::uint32_t attempts = 0;
    while (entries.size() < reach && attempts < 8 * reach) {
      ++attempts;
      const auto user = static_cast<std::uint32_t>(user_prior.sample(rng));
      if (!touched.insert(user).second) continue;
      const auto p = static_cast<float>(
          rng.next_double(config.min_click, config.max_click));
      entries.push_back({user, p});
    }
  }
  return std::make_shared<const ProbSetSystem>(std::move(sets),
                                               config.users);
}

}  // namespace bds::data
