// Dataset profiling: the summary statistics the paper quotes per dataset
// ("~300k sets over ~300k elements for a total size of 1.0m", set-size
// distributions, coverage concentration). Used by benches/examples to print
// dataset headers and by tests to validate generator shapes.
#pragma once

#include <cstdint>
#include <string>

#include "objectives/coverage.h"
#include "objectives/exemplar.h"

namespace bds::data {

struct SetSystemProfile {
  std::size_t num_sets = 0;
  std::uint32_t universe_size = 0;
  std::size_t total_size = 0;       // Σ set sizes
  std::size_t min_set_size = 0;
  std::size_t max_set_size = 0;
  double mean_set_size = 0.0;
  double median_set_size = 0.0;
  double p90_set_size = 0.0;
  // Heavy-tail indicator: fraction of the total size held by the largest
  // 1% of sets (>= 0.01 means "uniform"; real graphs/bigram corpora are
  // far above it).
  double top1pct_mass = 0.0;
  // Fraction of the universe covered by any set at all.
  double coverable_fraction = 0.0;
};

SetSystemProfile profile_set_system(const SetSystem& sets);

struct PointSetProfile {
  std::size_t size = 0;
  std::size_t dim = 0;
  double mean_norm = 0.0;   // mean L2 norm (1.0 after normalization)
  double mean_pairwise_distance = 0.0;  // sampled squared-L2
  double min_sampled_distance = 0.0;
  double max_sampled_distance = 0.0;
};

// Pairwise statistics are estimated from `sample_pairs` random pairs.
PointSetProfile profile_point_set(const PointSet& points,
                                  std::size_t sample_pairs = 2'000,
                                  std::uint64_t seed = 1);

// One-line human-readable renderings for bench/example headers.
std::string to_string(const SetSystemProfile& profile);
std::string to_string(const PointSetProfile& profile);

}  // namespace bds::data
