// Binary serialization for the dataset substrates, so generated instances
// can be produced once and reused across benchmark runs (and shared between
// the CLI tools).
//
// Writers emit the v2 container of data/format.h: a 64-byte header followed
// by two 64-byte-aligned sections holding the in-memory CSR arrays
// verbatim. That makes two load paths possible:
//
//  * load_* — heap load: the file bytes are read into an aligned heap
//    buffer and the returned object borrows its CSR arrays from it. Also
//    accepts the legacy v1 streamed format (parse-and-copy).
//  * map_* — zero-copy: the file is mmap'd read-only (util/mmap.h) and the
//    CSR arrays alias the mapping, so load time is O(1) and a process only
//    pays resident memory for the pages it actually touches — workers
//    evaluating a compacted shard view stay O(shard). v2 files only; v1
//    files get an error telling the caller to re-encode with bds_convert.
//
// Heap-loaded and mapped objects are backed by the identical bytes, so
// gains/adds/selections are bit-identical between the two paths. All
// functions throw std::runtime_error naming the offending path on IO
// failure or a malformed/mismatched file.
#pragma once

#include <memory>
#include <string>

#include "objectives/coverage.h"
#include "objectives/exemplar.h"
#include "objectives/prob_coverage.h"
#include "util/mmap.h"

namespace bds::data {

// SetSystem <-> file.
void save_set_system(const SetSystem& sets, const std::string& path);
std::shared_ptr<const SetSystem> load_set_system(const std::string& path);
std::shared_ptr<const SetSystem> map_set_system(
    const std::string& path, util::MapAdvice advice = util::MapAdvice::kRandom);

// PointSet <-> file. v2 stores the kernel-padded row matrix plus the
// cached norms (bit-identical across ISA tiers), so a mapped PointSet is
// oracle-ready without touching the data.
void save_point_set(const PointSet& points, const std::string& path);
std::shared_ptr<const PointSet> load_point_set(const std::string& path);
std::shared_ptr<const PointSet> map_point_set(
    const std::string& path, util::MapAdvice advice = util::MapAdvice::kRandom);

// ProbSetSystem <-> file.
void save_prob_set_system(const ProbSetSystem& sets, const std::string& path);
std::shared_ptr<const ProbSetSystem> load_prob_set_system(
    const std::string& path);
std::shared_ptr<const ProbSetSystem> map_prob_set_system(
    const std::string& path, util::MapAdvice advice = util::MapAdvice::kRandom);

}  // namespace bds::data
