// Binary serialization for the dataset substrates, so generated instances
// can be produced once and reused across benchmark runs (and shared between
// the CLI tools). Format: little-endian, magic + version header, then raw
// CSR payloads. Not portable to big-endian hosts (none in scope).
#pragma once

#include <memory>
#include <string>

#include "objectives/coverage.h"
#include "objectives/exemplar.h"
#include "objectives/prob_coverage.h"

namespace bds::data {

// SetSystem <-> file. Throws std::runtime_error on IO failure or a
// malformed/mismatched file.
void save_set_system(const SetSystem& sets, const std::string& path);
std::shared_ptr<const SetSystem> load_set_system(const std::string& path);

// PointSet <-> file.
void save_point_set(const PointSet& points, const std::string& path);
std::shared_ptr<const PointSet> load_point_set(const std::string& path);

// ProbSetSystem <-> file.
void save_prob_set_system(const ProbSetSystem& sets, const std::string& path);
std::shared_ptr<const ProbSetSystem> load_prob_set_system(
    const std::string& path);

}  // namespace bds::data
