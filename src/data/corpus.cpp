#include "data/corpus.h"

#include <sstream>
#include <stdexcept>

#include "data/dynamic.h"
#include "data/io.h"
#include "objectives/coverage.h"
#include "objectives/exemplar.h"
#include "objectives/logdet.h"
#include "objectives/prob_coverage.h"
#include "util/rng.h"
#include "util/serialize.h"

namespace bds::data {

namespace {
// Version 2 appends the dynamic-corpus fields (mutation delta + epoch).
// Version-1 documents are still accepted and decode as frozen corpora.
constexpr std::uint32_t kCorpusVersion = 2;
}  // namespace

std::string CorpusSpec::serialize() const {
  std::ostringstream out;
  out << "bdscorpus " << kCorpusVersion << '\n';
  out << "objective " << objective << '\n';
  out << "path ";
  util::write_blob(out, path);
  out << '\n';
  out << "mmap " << (mmap ? 1 : 0) << '\n';
  out << "p0 " << util::double_bits(p0_dist) << '\n';
  out << "sample_size " << sample_size << '\n';
  out << "sample_seed " << sample_seed << '\n';
  out << "bandwidth " << util::double_bits(bandwidth) << '\n';
  out << "noise " << util::double_bits(noise_variance) << '\n';
  out << "epoch " << epoch << '\n';
  out << "mutations ";
  util::write_blob(out, mutations);
  out << '\n';
  out << "end\n";
  return std::move(out).str();
}

CorpusSpec CorpusSpec::deserialize(std::string_view text) {
  util::TokenReader in(text, "corpus");
  in.expect("bdscorpus");
  const std::uint64_t version = in.u64();
  if (version == 0 || version > kCorpusVersion) {
    throw std::invalid_argument("corpus: unsupported version " +
                                std::to_string(version));
  }
  CorpusSpec spec;
  in.expect("objective");
  spec.objective = in.word();
  in.expect("path");
  spec.path = in.blob();
  in.expect("mmap");
  spec.mmap = in.flag();
  in.expect("p0");
  spec.p0_dist = in.real();
  in.expect("sample_size");
  spec.sample_size = in.size();
  in.expect("sample_seed");
  spec.sample_seed = in.u64();
  in.expect("bandwidth");
  spec.bandwidth = in.real();
  in.expect("noise");
  spec.noise_variance = in.real();
  if (version >= 2) {
    in.expect("epoch");
    spec.epoch = in.u64();
    in.expect("mutations");
    spec.mutations = in.blob();
  }
  in.expect("end");
  return spec;
}

std::unique_ptr<SubmodularOracle> CorpusSpec::make_oracle() const {
  // Dynamic path: rebuild the coordinator's mutated corpus from the base
  // dataset plus the shipped delta, then construct through the same
  // factory the coordinator used — bit-identical state on both ends.
  if (!mutations.empty() || epoch != 0) {
    const std::vector<Mutation> log = DynamicCorpus::parse_delta(mutations);
    DynamicOracleOptions options;
    options.p0_dist = p0_dist;
    options.sample_size = sample_size;
    options.sample_seed = sample_seed;
    options.bandwidth = bandwidth;
    options.noise_variance = noise_variance;
    std::unique_ptr<DynamicCorpus> corpus;
    if (objective == "coverage") {
      const auto sets = mmap ? map_set_system(path) : load_set_system(path);
      corpus = std::make_unique<DynamicCorpus>(sets, path);
    } else if (objective == "exemplar" || objective == "sampled-exemplar" ||
               objective == "logdet") {
      const auto points = mmap ? map_point_set(path) : load_point_set(path);
      corpus = std::make_unique<DynamicCorpus>(points, path);
    } else {
      throw std::invalid_argument("corpus: objective '" + objective +
                                  "' has no dynamic path");
    }
    for (const Mutation& m : log) corpus->apply(m);
    if (corpus->epoch() != epoch) {
      throw std::invalid_argument(
          "corpus: delta replays to epoch " +
          std::to_string(corpus->epoch()) + " but the spec claims epoch " +
          std::to_string(epoch));
    }
    return make_dynamic_oracle(*corpus, objective, options);
  }
  if (objective == "coverage") {
    const auto sets = mmap ? map_set_system(path) : load_set_system(path);
    return std::make_unique<CoverageOracle>(sets);
  }
  if (objective == "prob-coverage") {
    const auto sets =
        mmap ? map_prob_set_system(path) : load_prob_set_system(path);
    return std::make_unique<ProbCoverageOracle>(sets);
  }
  if (objective == "exemplar") {
    const auto points = mmap ? map_point_set(path) : load_point_set(path);
    return std::make_unique<ExemplarOracle>(points, p0_dist);
  }
  if (objective == "sampled-exemplar") {
    const auto points = mmap ? map_point_set(path) : load_point_set(path);
    util::Rng rng(util::mix64(sample_seed));
    return std::make_unique<SampledExemplarOracle>(points, p0_dist,
                                                   sample_size, rng);
  }
  if (objective == "logdet") {
    const auto points = mmap ? map_point_set(path) : load_point_set(path);
    return std::make_unique<LogDetOracle>(points, bandwidth, noise_variance);
  }
  throw std::invalid_argument("corpus: unknown objective '" + objective +
                              "'");
}

}  // namespace bds::data
