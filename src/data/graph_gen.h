// Random-graph generators producing neighborhood set systems — the stand-ins
// for the paper's DBLP co-authorship and LiveJournal friendship coverage
// datasets (§4.1), where each "item" is a node's neighbor set and the
// universe is the node set. Real snapshots are not redistributable offline;
// these generators match the structural properties that drive the
// experiments (heavy-tailed set sizes for BA, homogeneous ones for ER).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "objectives/coverage.h"

namespace bds::data {

// Undirected simple graph as adjacency lists (no self-loops, no parallels).
struct Graph {
  std::vector<std::vector<std::uint32_t>> adjacency;

  std::size_t num_nodes() const noexcept { return adjacency.size(); }
  std::size_t num_edges() const noexcept;  // undirected edge count
};

// Barabási–Albert preferential attachment: starts from a clique on
// (edges_per_node + 1) nodes, then each new node attaches to
// `edges_per_node` distinct existing nodes with probability proportional to
// degree. Degree distribution is heavy-tailed, like co-authorship or
// friendship graphs. Preconditions: nodes > edges_per_node >= 1.
Graph barabasi_albert(std::uint32_t nodes, std::uint32_t edges_per_node,
                      std::uint64_t seed);

// Holme–Kim "powerlaw cluster" graph: Barabási–Albert attachment where,
// after each preferential link to v, the next link closes a triangle with a
// random neighbor of v with probability triad_p. Heavy-tailed degrees PLUS
// high clustering — the neighborhood-overlap structure of real
// co-authorship/friendship graphs that makes coverage saturate after the
// hubs are taken. Preconditions: nodes > edges_per_node >= 1,
// 0 <= triad_p <= 1 (triad_p = 0 reduces to plain BA).
Graph powerlaw_cluster(std::uint32_t nodes, std::uint32_t edges_per_node,
                       double triad_p, std::uint64_t seed);

// Erdős–Rényi G(n, p) (homogeneous degrees; used for tests/ablations).
// Preconditions: nodes >= 1, 0 <= p <= 1.
Graph erdos_renyi(std::uint32_t nodes, double p, std::uint64_t seed);

// Chung–Lu random graph with Zipf-distributed expected degrees: node i has
// weight w_i ∝ 1/(i+1)^exponent; ~⌈nodes·mean_degree/2⌉ edges are sampled
// with endpoint probability ∝ weight (duplicates and self-loops rejected).
// Gives explicit, tunable degree heavy-tails without BA's growth dynamics —
// the third generator family for partition/selector ablations.
// Preconditions: nodes >= 2, mean_degree > 0, exponent >= 0.
Graph chung_lu(std::uint32_t nodes, double mean_degree, double exponent,
               std::uint64_t seed);

// Converts a graph to the coverage instance the paper uses: one set per
// node containing its neighbors (plus the node itself when
// include_self, so every set is non-empty on isolated nodes);
// universe = nodes.
std::shared_ptr<const SetSystem> neighborhood_sets(const Graph& graph,
                                                   bool include_self = false);

// Convenience bundles matching the scaled-down dataset profiles in
// DESIGN.md §2.3.
std::shared_ptr<const SetSystem> make_dblp_like(std::uint32_t nodes,
                                                std::uint64_t seed);
std::shared_ptr<const SetSystem> make_livejournal_like(std::uint32_t nodes,
                                                       std::uint64_t seed);

}  // namespace bds::data
