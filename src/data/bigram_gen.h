// Gutenberg-style bi-gram coverage generator (§4.1): few "books", each a
// Zipfian token stream; the item for a book is its set of distinct bi-grams,
// and the universe is the set of bi-grams observed anywhere. Matches the
// Gutenberg dataset's regime — a small family (41k sets) over a huge
// universe (99m bi-grams) with Zipf-driven overlap, where a handful of long
// books covers most of the mass.
#pragma once

#include <cstdint>
#include <memory>

#include "objectives/coverage.h"

namespace bds::data {

struct BigramConfig {
  std::uint32_t books = 2'000;        // number of sets
  std::uint32_t vocabulary = 4'000;   // distinct tokens
  std::uint32_t min_tokens = 200;     // book length range (uniform)
  std::uint32_t max_tokens = 20'000;
  double zipf_exponent = 1.05;        // natural-language-like token law
  std::uint64_t seed = 1;
};

// Generates the instance. Bi-gram ids are compacted: the universe contains
// exactly the distinct bi-grams that occur in some book (so coverage of 100%
// is attainable), in first-occurrence order.
// Preconditions: books > 0, vocabulary > 1, 0 < min_tokens <= max_tokens.
std::shared_ptr<const SetSystem> make_bigram_sets(const BigramConfig& config);

}  // namespace bds::data
