// DynamicCorpus — the epoch-versioned mutable corpus layer (ROADMAP item 3).
//
// Every entry point below this header assumes a frozen ground set; this
// class is where that assumption ends. A DynamicCorpus wraps an immutable
// base dataset (SetSystem or PointSet — possibly an mmap-backed, borrowing
// one from data/io.h) and layers mutations on top of it:
//
//  * insert — a new element appended after the base id range. The payload
//    lives in a small heap-side overlay (a second CSR / row block), so the
//    base stays untouched: zero-copy mmap loading keeps working, and the
//    overlay is the only thing workers must be told about to reproduce the
//    corpus (serialize_delta, shipped through data::CorpusSpec).
//  * erase — a tombstone. For set-system corpora ids are *stable*: the dead
//    set keeps its id and storage and simply leaves the candidate ground
//    (live_ground()); materialize() reproduces the identical id space, which
//    is what makes mutated-corpus runs bitwise comparable to from-scratch
//    rebuilds. For point corpora an erase must leave the exemplar cost sum,
//    so materialize() drops the row and reindexes — ids_stable() flips
//    false and cached solutions from older epochs are no longer addressable
//    (the serve layer invalidates instead of recertifying).
//
// Every mutation bumps a monotonically increasing **epoch** (== mutation-log
// length). Oracles carry the epoch they were built against
// (SubmodularOracle::corpus_epoch); require_epoch() makes stale use throw by
// name instead of silently answering for the wrong ground set.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "objectives/coverage.h"
#include "objectives/exemplar.h"
#include "objectives/submodular.h"
#include "util/element.h"

namespace bds::data {

enum class CorpusKind : std::uint8_t { kSets = 0, kPoints = 1 };

enum class MutationKind : std::uint8_t { kInsert = 0, kErase = 1 };

// One mutation-log record. Inserts carry their payload (set items or point
// coordinates) and the id the corpus assigned; replaying the log onto the
// same base therefore reproduces the identical corpus, which is the wire
// contract (CorpusSpec ships the log as a delta to process workers).
struct Mutation {
  MutationKind kind = MutationKind::kInsert;
  ElementId id = 0;
  std::vector<std::uint32_t> items;  // set-system insert payload (canonical)
  std::vector<float> values;         // point insert payload (dim floats)

  bool operator==(const Mutation&) const = default;
};

// Thrown when an oracle built at one epoch is used against a corpus that
// has moved on — see require_epoch().
class StaleOracleError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class DynamicCorpus {
 public:
  // Wraps an immutable base. The base may borrow mmap'd storage; it is
  // never written to. `name` appears in stale-oracle errors.
  explicit DynamicCorpus(std::shared_ptr<const SetSystem> base,
                         std::string name = "corpus");
  explicit DynamicCorpus(std::shared_ptr<const PointSet> base,
                         std::string name = "corpus");

  CorpusKind corpus_kind() const noexcept { return kind_; }
  const std::string& name() const noexcept { return name_; }

  // Mutation count since construction; the version every oracle and cache
  // entry is stamped with.
  std::uint64_t epoch() const noexcept { return log_.size(); }

  // Total id space: base elements plus overlay inserts (tombstones
  // included — erased ids are dead, not recycled).
  std::size_t size() const noexcept { return dead_.size(); }
  std::size_t live_count() const noexcept { return live_; }
  bool is_live(ElementId id) const {
    return id < dead_.size() && dead_[id] == 0;
  }
  std::size_t overlay_size() const noexcept {
    return kind_ == CorpusKind::kSets ? ov_offsets_.size() - 1
                                      : ov_rows_.size() / point_dim_;
  }

  // Set-system mode accessors. set_items dispatches between the base CSR
  // and the heap-side overlay; payloads are canonical (sorted unique, in
  // range) in both, exactly what a from-scratch SetSystem build produces.
  std::uint32_t universe_size() const;
  std::span<const std::uint32_t> set_items(ElementId id) const;
  std::shared_ptr<const SetSystem> base_sets() const { return sets_; }

  // Point mode accessors.
  std::size_t point_dim() const;
  std::shared_ptr<const PointSet> base_points() const { return points_; }

  // True while every live element keeps the id it was created with across
  // materialize(). Always true for set-system corpora; flips false on the
  // first point erase (materialization reindexes the rows).
  bool ids_stable() const noexcept { return ids_stable_; }

  // --- mutations (each bumps the epoch by one) ---

  // Canonicalizes (sort, dedup, range-check) and appends a new set;
  // returns its id (== size() before the call). Set-system mode only.
  ElementId insert(std::vector<std::uint32_t> items);
  // Appends a new point (values.size() == point_dim()). Point mode only.
  ElementId insert_point(std::vector<float> values);
  // Tombstones a live element. Throws std::out_of_range on an unknown or
  // already-erased id.
  void erase(ElementId id);
  // Replays one log record (the wire delta path). Insert records must
  // carry the id this corpus would assign — anything else throws, because
  // it means the delta was produced against a different corpus state.
  void apply(const Mutation& mutation);

  const std::vector<Mutation>& log() const noexcept { return log_; }

  // Candidate ground set for the current epoch: live ids ascending. For a
  // point corpus whose ids are no longer stable this is the materialized
  // id space [0, live_count()).
  std::vector<ElementId> live_ground() const;

  // From-scratch heap snapshot of the current epoch. Set-system mode keeps
  // the full id space (tombstoned sets stay, with their items — they are
  // excluded by ground, not by storage), so runs over the snapshot are id-
  // compatible with runs over the overlay. Point mode emits live rows only
  // (see ids_stable()).
  std::shared_ptr<const SetSystem> materialize_sets() const;
  std::shared_ptr<const PointSet> materialize_points() const;

  // Heap bytes the overlay holds on top of the (possibly mapped) base.
  std::size_t overlay_state_bytes() const noexcept;

  // Token-text encoding of log records [from_epoch, epoch()) — the delta a
  // CorpusSpec ships so a process worker reproduces this exact corpus from
  // the base file. Floats travel as bit patterns; round trips are exact.
  std::string serialize_delta(std::uint64_t from_epoch = 0) const;
  static std::vector<Mutation> parse_delta(std::string_view text);

 private:
  void check_kind(CorpusKind expected, const char* op) const;

  CorpusKind kind_;
  std::string name_;
  std::shared_ptr<const SetSystem> sets_;    // kSets base
  std::shared_ptr<const PointSet> points_;   // kPoints base
  std::size_t base_size_ = 0;

  // Heap-side overlay: inserted sets as a growing CSR (kSets) or packed
  // unpadded rows (kPoints).
  std::vector<std::uint64_t> ov_offsets_{0};
  std::vector<std::uint32_t> ov_entries_;
  std::vector<float> ov_rows_;
  std::size_t point_dim_ = 0;

  std::vector<std::uint8_t> dead_;  // tombstones over [0, size())
  std::vector<Mutation> log_;
  std::size_t live_ = 0;
  bool ids_stable_ = true;
};

// Throws StaleOracleError naming the corpus when `oracle` was built against
// a different epoch than the corpus currently holds. Every layer that keeps
// an oracle across mutations calls this before trusting it.
void require_epoch(const SubmodularOracle& oracle, const DynamicCorpus& corpus);

// Construction scalars for the dynamic oracle factory — the same knobs
// CorpusSpec carries for the frozen path.
struct DynamicOracleOptions {
  // Coverage: build the O(degree)-updatable IncrementalCoverageOracle
  // (supports_dynamic_updates) instead of a frozen rebuild. The rebuild
  // fallback exists so every objective works behind one interface.
  bool prefer_incremental = true;
  double p0_dist = 2.0;            // exemplar family
  std::size_t sample_size = 0;     // sampled-exemplar
  std::uint64_t sample_seed = 1;
  double bandwidth = 1.0;          // logdet
  double noise_variance = 1.0;
};

// Builds a fresh (empty-set) oracle prototype for the corpus's *current*
// epoch, stamped with it. "coverage" over a set-system corpus gets the
// incremental oracle (mutations applied in O(degree) from the log); every
// other objective is built over a materialized snapshot — the
// rebuild-on-epoch-change fallback. Throws std::invalid_argument on an
// unknown objective or an objective/corpus-kind mismatch.
std::unique_ptr<SubmodularOracle> make_dynamic_oracle(
    const DynamicCorpus& corpus, std::string_view objective,
    const DynamicOracleOptions& options = {});

}  // namespace bds::data
