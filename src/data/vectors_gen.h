// Vector dataset generators for exemplar-based clustering (§4.2), standing
// in for the paper's Wikipedia-LDA and TinyImages datasets.
#pragma once

#include <cstdint>
#include <memory>

#include "objectives/exemplar.h"

namespace bds::data {

// "Wikipedia-like": LDA-style topic-distribution vectors. `clusters`
// archetype Dirichlet concentration profiles are drawn first; each document
// samples its topic vector from its archetype's Dirichlet, yielding points
// on the probability simplex with cluster structure. Rows are then L2
// normalized (paper preprocessing).
struct LdaVectorsConfig {
  std::uint32_t documents = 20'000;
  std::uint32_t topics = 100;          // paper: 100-dim LDA vectors
  std::uint32_t clusters = 25;         // latent archetypes
  double concentration = 60.0;         // per-archetype Dirichlet strength
  // Zipf exponent for cluster sizes (0 = uniform). Real corpora have a few
  // dominant topics and a long tail; uneven mass is what separates greedy
  // (one exemplar per cluster) from random (oversamples big clusters).
  double cluster_zipf = 0.8;
  std::uint64_t seed = 1;
};

std::shared_ptr<const PointSet> make_lda_like_vectors(
    const LdaVectorsConfig& config);

// "TinyImages-like": Gaussian-mixture vectors in a high ambient dimension
// with low intrinsic dimension (cluster centers + isotropic noise). Each
// vector is mean-subtracted per coordinate-average (paper preprocessing for
// TinyImages) and L2 normalized.
struct ImageVectorsConfig {
  std::uint32_t images = 8'000;
  std::uint32_t dim = 3'072;           // paper: 3*32*32
  std::uint32_t clusters = 40;
  double noise_sigma = 0.35;           // relative to unit-scale centers
  double cluster_zipf = 0.8;           // uneven cluster sizes (0 = uniform)
  std::uint64_t seed = 1;
};

std::shared_ptr<const PointSet> make_image_like_vectors(
    const ImageVectorsConfig& config);

}  // namespace bds::data
