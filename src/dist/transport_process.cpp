// The multi-process backend: one forked bds_worker per logical machine.
//
// Spawning is lazy (machine i's process starts on its first attempt) and
// crash-tolerant: a worker that dies — by an injected kCrash (it exits for
// real after reporting its telemetry) or an external SIGKILL — is detected
// as a closed socket, surfaced to the cluster as a crash fault, and
// respawned on the retry. Workers are pure in (machine, shard), so the
// respawned attempt reproduces the exact summary the dead one would have
// delivered, which is what keeps fault recovery golden.
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "dist/transport.h"
#include "dist/wire.h"

namespace bds::dist {

namespace {

std::string resolve_worker_binary(const std::string& configured) {
  if (!configured.empty()) return configured;
  if (const char* env = std::getenv("BDS_WORKER");
      env != nullptr && *env != '\0') {
    return env;
  }
  // Default: bds_worker installed next to the running executable.
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    std::string self(buf);
    const std::size_t slash = self.rfind('/');
    if (slash != std::string::npos) {
      return self.substr(0, slash + 1) + "bds_worker";
    }
  }
  return "bds_worker";  // last resort: $PATH lookup via execvp
}

// One spawned worker. The mutex serializes the (rare) case of different
// pool threads touching the same machine across rounds — within a round
// each machine is driven by exactly one thread.
struct WorkerProc {
  std::mutex mu;
  pid_t pid = -1;
  int fd = -1;
};

class ProcessTransport final : public ClusterTransport {
 public:
  explicit ProcessTransport(ProcessTransportConfig config)
      : config_(std::move(config)),
        binary_(resolve_worker_binary(config_.worker_binary)),
        workers_(config_.machines) {
    for (auto& w : workers_) w = std::make_unique<WorkerProc>();
  }

  ~ProcessTransport() override {
    for (auto& w : workers_) {
      std::scoped_lock lock(w->mu);
      if (w->fd < 0) continue;
      try {
        wire::write_frame(w->fd, wire::FrameType::kShutdown, {}, nullptr,
                          "worker");
      } catch (...) {
        // Best-effort goodbye; reaping below is what matters.
      }
      reap(*w);
    }
  }

  std::string_view name() const noexcept override { return "process"; }

  AttemptResult run_attempt(std::size_t round, std::size_t machine,
                            std::size_t attempt, FaultKind injected,
                            std::span<const ElementId> shard,
                            const RoundWork& work) override {
    if (work.plan.kind == WorkerPlanKind::kCustom) {
      throw std::runtime_error(
          "transport worker " + std::to_string(machine) +
          ": process transport cannot execute custom (closure-only) work; "
          "run this program on the in-process transport");
    }
    WorkerProc& w = *workers_[machine];
    std::scoped_lock lock(w.mu);
    if (!ensure_alive(machine, w)) {
      // The fresh worker was killed before completing its handshake (a
      // SIGKILL can land at any instant, including this one). Same story
      // as a mid-attempt death: crash fault, respawn on the retry.
      AttemptResult result;
      result.crashed = true;
      return result;
    }
    const std::string peer = worker_name(machine, w);

    wire::AttemptRequest request;
    request.round = round;
    request.machine = machine;
    request.attempt = attempt;
    request.fault = injected;
    request.plan = work.plan;
    request.shard.assign(shard.begin(), shard.end());
    if (work.plan.lazy_bounds && work.bounds != nullptr) {
      // Ship the shard's warm-start certificates — exactly what the
      // worker's BoundStore lookups would have returned in-process. The
      // store is frozen for the whole round, so retries resend the same
      // certificates and stay pure in (machine, shard).
      for (const ElementId x : shard) {
        detail::BoundEntry entry;
        if (work.bounds->lookup(x, &entry)) {
          request.bound_ids.push_back(x);
          request.bound_gains.push_back(entry.bound);
          request.bound_prefixes.push_back(entry.prefix);
        }
      }
    }

    AttemptResult result;
    if (wire::write_frame(w.fd, wire::FrameType::kRequest,
                          wire::encode_request(request),
                          &result.wire_bytes_sent, peer) ==
        wire::IoStatus::kClosed) {
      reap(w);
      result.crashed = true;
      return result;
    }

    wire::Frame frame;
    if (wire::read_frame(w.fd, &frame, &result.wire_bytes_received, peer) ==
        wire::IoStatus::kClosed) {
      // Real worker death (SIGKILL, OOM, ...): nothing reached us. The
      // cluster maps this to a crash fault and retries on a respawn.
      reap(w);
      result.crashed = true;
      return result;
    }
    if (frame.type == wire::FrameType::kError) {
      throw std::runtime_error(peer + ": " + frame.payload);
    }
    if (frame.type != wire::FrameType::kResponse) {
      throw wire::WireError(peer + ": unexpected frame type " +
                            std::to_string(static_cast<unsigned>(frame.type)));
    }
    wire::AttemptResponse response =
        wire::decode_response(frame.payload, peer);
    result.output = std::move(response.output);
    result.seconds = response.seconds;

    if (injected == FaultKind::kCrash) {
      // Death rattle: the worker reported its telemetry (keeping
      // wasted-eval accounting identical to the simulator) and then
      // genuinely exited. Reap it now; the retry respawns.
      reap(w);
    }
    return result;
  }

 private:
  static std::string worker_name(std::size_t machine, const WorkerProc& w) {
    return "transport worker " + std::to_string(machine) + " (pid " +
           std::to_string(w.pid) + ")";
  }

  // Returns the child's waitpid status (-1 when there was no child to
  // reap) so callers can distinguish a killed worker from one that exited.
  int reap(WorkerProc& w) const {
    if (w.fd >= 0) {
      ::close(w.fd);
      w.fd = -1;
    }
    int status = -1;
    if (w.pid > 0) {
      while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
      }
      w.pid = -1;
    }
    return status;
  }

  // Spawns + handshakes machine's worker if it isn't already up. Returns
  // false when the fresh child died of a *signal* mid-handshake — a
  // transient kill the caller turns into a crash/retry. Deterministic
  // failures (exec failure, the binary exiting on its own, a rejected
  // corpus spec) throw instead: a bad configuration never gets better and
  // must not burn the retry budget producing unheard machines.
  bool ensure_alive(std::size_t machine, WorkerProc& w) const {
    if (w.fd >= 0) return true;

    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      throw std::runtime_error(
          "transport worker " + std::to_string(machine) +
          ": socketpair failed: " + std::strerror(errno));
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(sv[0]);
      ::close(sv[1]);
      throw std::runtime_error("transport worker " + std::to_string(machine) +
                               ": fork failed: " + std::strerror(errno));
    }
    if (pid == 0) {
      // Child: the socket becomes stdin/stdout, stderr stays inherited for
      // diagnostics. fork-then-immediately-exec is safe from pool threads.
      ::dup2(sv[1], 0);
      ::dup2(sv[1], 1);
      ::close(sv[0]);
      if (sv[1] > 1) ::close(sv[1]);
      char* const argv[] = {const_cast<char*>("bds_worker"), nullptr};
      ::execvp(binary_.c_str(), argv);
      const char* msg = "bds_worker: exec failed\n";
      ssize_t ignored = ::write(2, msg, std::strlen(msg));
      (void)ignored;
      ::_exit(127);
    }
    ::close(sv[1]);
    w.fd = sv[0];
    w.pid = pid;

    // Handshake: ship the corpus spec; the worker loads its oracle and
    // acks.
    const std::string peer = worker_name(machine, w);
    wire::Hello hello;
    hello.machine = machine;
    hello.ground_size = config_.ground_size;
    hello.corpus_spec = config_.corpus_spec;
    try {
      wire::Frame frame;
      const bool closed =
          wire::write_frame(w.fd, wire::FrameType::kHello,
                            wire::encode_hello(hello), nullptr,
                            peer) == wire::IoStatus::kClosed ||
          wire::read_frame(w.fd, &frame, nullptr, peer) ==
              wire::IoStatus::kClosed;
      if (closed) {
        const int status = reap(w);
        if (status >= 0 && WIFSIGNALED(status)) return false;
        throw std::runtime_error(peer + ": died during handshake (exec '" +
                                 binary_ + "' failed?)");
      }
      if (frame.type == wire::FrameType::kError) {
        throw std::runtime_error(peer + ": handshake rejected: " +
                                 frame.payload);
      }
      if (frame.type != wire::FrameType::kHelloAck) {
        throw wire::WireError(peer + ": unexpected handshake frame type " +
                              std::to_string(
                                  static_cast<unsigned>(frame.type)));
      }
      wire::decode_hello_ack(frame.payload, peer);
    } catch (...) {
      reap(w);
      throw;
    }
    return true;
  }

  ProcessTransportConfig config_;
  std::string binary_;
  std::vector<std::unique_ptr<WorkerProc>> workers_;
};

}  // namespace

std::shared_ptr<ClusterTransport> make_process_transport(
    const ProcessTransportConfig& config) {
  return std::make_shared<ProcessTransport>(config);
}

}  // namespace bds::dist
