#include "dist/faults.h"

#include <algorithm>
#include <cstdlib>

#include "util/rng.h"

namespace bds::dist {

namespace {

// Unlimited-retry safety cap. A plan with total failure probability p < 1
// has chance p^64 of exhausting this (astronomically small for any sane
// plan); the cap only exists so a pathological all-failing plan cannot hang
// the simulator.
constexpr std::size_t kUnlimitedAttemptCap = 64;

// One uniform draw in [0, 1) per (seed, round, machine, attempt), via two
// SplitMix64 mixing stages (the same construction as detail::machine_rng).
double unit_draw(std::uint64_t seed, std::size_t round, std::size_t machine,
                 std::size_t attempt) noexcept {
  std::uint64_t h = util::mix64(seed ^ 0x6a09e667f3bcc909ULL);
  h = util::mix64(h + 0x9e3779b97f4a7c15ULL * (round + 1));
  h = util::mix64(h + 0xbf58476d1ce4e5b9ULL * (machine + 1));
  h = util::mix64(h + 0x94d049bb133111ebULL * attempt);
  // 53-bit mantissa conversion, matching util::Rng::next_double.
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

const char* fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kSummaryDrop: return "summary_drop";
    case FaultKind::kTruncation: return "truncation";
    case FaultKind::kStraggler: return "straggler";
  }
  return "unknown";
}

bool FaultPlan::all_healthy() const noexcept {
  return crash_probability <= 0.0 && drop_probability <= 0.0 &&
         truncation_probability <= 0.0 && straggler_probability <= 0.0;
}

FaultKind FaultPlan::fault_at(std::size_t round, std::size_t machine,
                              std::size_t attempt) const noexcept {
  if (all_healthy()) return FaultKind::kNone;
  const double u = unit_draw(seed, round, machine, attempt);
  double band = crash_probability;
  if (u < band) return FaultKind::kCrash;
  band += drop_probability;
  if (u < band) return FaultKind::kSummaryDrop;
  band += truncation_probability;
  if (u < band) return FaultKind::kTruncation;
  band += straggler_probability;
  if (u < band) return FaultKind::kStraggler;
  return FaultKind::kNone;
}

FaultPlan FaultPlan::recoverable(std::uint64_t seed) noexcept {
  FaultPlan plan;
  plan.seed = seed;
  plan.crash_probability = 0.10;
  plan.drop_probability = 0.06;
  plan.truncation_probability = 0.0;  // would change delivered summaries
  plan.straggler_probability = 0.12;
  plan.straggler_slowdown = 4.0;
  return plan;
}

std::size_t RetryPolicy::attempt_cap() const noexcept {
  return max_attempts == 0 ? kUnlimitedAttemptCap
                           : std::min(max_attempts, kUnlimitedAttemptCap);
}

double RetryPolicy::backoff_for_attempt(std::size_t attempt) const noexcept {
  if (backoff_base_seconds <= 0.0) return 0.0;
  double backoff = backoff_base_seconds;
  for (std::size_t i = 1; i < attempt; ++i) backoff *= backoff_multiplier;
  return backoff;
}

bool apply_env_fault_override(FaultPlan& plan, RetryPolicy& retry) {
  if (!plan.all_healthy()) return false;  // explicit plans win over the env
  const char* env = std::getenv("BDS_FAULT_SEED");
  if (env == nullptr) return false;
  const std::uint64_t seed = std::strtoull(env, nullptr, 10);
  if (seed == 0) return false;
  plan = FaultPlan::recoverable(seed);
  retry = RetryPolicy{};
  retry.max_attempts = 0;  // unlimited: outputs must stay golden
  retry.timeout_evals = 0;
  retry.backoff_base_seconds = 0.0;
  return true;
}

}  // namespace bds::dist
