// Deterministic fault injection for the cluster simulator.
//
// The paper's algorithms target a MapReduce-style cluster precisely because
// real clusters fail: workers crash mid-pass, summaries are lost or arrive
// truncated, and stragglers stretch the round barrier. A FaultPlan makes
// those failure modes representable in the simulator while keeping the
// repository's determinism contract: every fault decision is a pure hash of
// (plan seed, round, machine, attempt), so identical plans produce
// bit-identical executions at any host thread count, and an all-healthy
// plan leaves the executor bit-identical to the fault-free code path.
//
// A RetryPolicy says what the coordinator does about failures: re-execute
// the machine (deterministic workers reproduce their exact summary), back
// off between attempts (metered into RoundStats, not slept), and — once the
// retry budget is exhausted — continue the round on whatever summaries
// arrived, recording the unheard shards (graceful degradation).
#pragma once

#include <cstddef>
#include <cstdint>

namespace bds::dist {

// What the plan injects into one (round, machine, attempt) execution.
// At most one fault fires per attempt (single uniform draw, disjoint
// probability bands), which keeps plans easy to reason about.
enum class FaultKind : std::uint8_t {
  kNone = 0,        // healthy attempt
  kCrash,           // worker dies: work is paid for, nothing returns
  kSummaryDrop,     // worker finishes but its summary is lost in transit
  kTruncation,      // summary arrives but loses its tail (degraded data)
  kStraggler,       // attempt completes slowed by `straggler_slowdown`
};

const char* fault_kind_name(FaultKind kind) noexcept;

// Seeded, deterministic per-(round, machine, attempt) fault schedule.
// Probabilities are per attempt and mutually exclusive (their sum is
// effectively clamped to 1 by band order: crash, drop, truncation,
// straggler). seed == 0 with all probabilities 0 is the all-healthy plan.
struct FaultPlan {
  std::uint64_t seed = 0;
  double crash_probability = 0.0;
  double drop_probability = 0.0;
  double truncation_probability = 0.0;
  double straggler_probability = 0.0;

  // Multiplier applied to a straggling attempt's wall-clock seconds and to
  // its modeled eval cost when checking RetryPolicy::timeout_evals.
  double straggler_slowdown = 8.0;

  // Fraction of a truncated summary that survives (prefix, floor).
  double truncation_keep_fraction = 0.5;

  // True when no fault can ever fire — the executor takes the legacy
  // single-attempt path and is bit-identical to the pre-fault simulator.
  bool all_healthy() const noexcept;

  // The injected fault for one attempt (1-based). Pure function of
  // (seed, round, machine, attempt): thread-count and call-order invariant.
  FaultKind fault_at(std::size_t round, std::size_t machine,
                     std::size_t attempt) const noexcept;

  // A canonical *recoverable* plan (crash + drop + straggler, no
  // truncation): under unlimited retries every machine eventually delivers
  // its exact healthy summary, so selections and delivered-eval accounting
  // stay golden. Used by the CI fault-injection leg.
  static FaultPlan recoverable(std::uint64_t seed) noexcept;
};

// What the coordinator does about failed attempts.
struct RetryPolicy {
  // Total attempts allowed per (round, machine); 0 means unlimited
  // (bounded by an internal safety cap far beyond any realistic plan).
  std::size_t max_attempts = 3;

  // Straggler timeout in the simulator's eval cost model: an attempt whose
  // slowdown-adjusted eval cost exceeds this — while its healthy cost does
  // not — counts as timed out and is retried. 0 disables timeouts.
  // (The healthy-cost guard guarantees a fault-free attempt always lands,
  // so unlimited retries always terminate.)
  std::uint64_t timeout_evals = 0;

  // Deterministic exponential backoff charged after each failed attempt:
  // backoff_base_seconds * backoff_multiplier^(attempt-1). Metered into
  // MachineReport::seconds and RoundStats::backoff_seconds, never slept.
  double backoff_base_seconds = 0.0;
  double backoff_multiplier = 2.0;

  // max_attempts with the unlimited sentinel resolved to the safety cap.
  std::size_t attempt_cap() const noexcept;

  double backoff_for_attempt(std::size_t attempt) const noexcept;
};

// CI hook: when `plan` is all-healthy and the environment variable
// BDS_FAULT_SEED is set to a nonzero integer, replaces it with
// FaultPlan::recoverable(that seed) and `retry` with unlimited, zero-backoff
// retries. Lets the whole test suite run under injected faults with golden
// outputs. Returns true when the override was applied.
bool apply_env_fault_override(FaultPlan& plan, RetryPolicy& retry);

}  // namespace bds::dist
