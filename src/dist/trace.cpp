#include "dist/trace.h"

#include <sstream>

namespace bds::dist {

namespace {

void append_attempt(std::ostringstream& out, const AttemptSpan& a) {
  out << "{\"attempt\":" << a.attempt << ",\"fault\":\""
      << fault_kind_name(a.fault) << "\",\"delivered\":"
      << (a.delivered ? "true" : "false") << ",\"evals\":" << a.evals
      << ",\"seconds\":" << a.seconds;
  if (a.backoff_seconds > 0.0) {
    out << ",\"backoff_seconds\":" << a.backoff_seconds;
  }
  out << "}";
}

void append_machine(std::ostringstream& out, const MachineSpan& m) {
  out << "{\"machine\":" << m.machine << ",\"heard\":"
      << (m.heard ? "true" : "false") << ",\"degraded\":"
      << (m.degraded ? "true" : "false")
      << ",\"summary_size\":" << m.summary_size;
  out << ",\"attempts\":[";
  for (std::size_t i = 0; i < m.attempts.size(); ++i) {
    if (i != 0) out << ",";
    append_attempt(out, m.attempts[i]);
  }
  out << "]}";
}

// A machine with one clean delivered attempt carries no information beyond
// its summary size; eliding it keeps healthy traces one line per round.
bool is_clean(const MachineSpan& m) {
  return m.heard && !m.degraded && m.attempts.size() == 1 &&
         m.attempts[0].fault == FaultKind::kNone;
}

}  // namespace

std::string trace_to_json(const ExecutionTrace& trace) {
  std::ostringstream out;
  out << "{\"rounds\":[";
  for (std::size_t r = 0; r < trace.rounds.size(); ++r) {
    const RoundSpan& round = trace.rounds[r];
    if (r != 0) out << ",";
    out << "\n{\"round\":" << round.round_index
        << ",\"phases\":{\"scatter_seconds\":" << round.scatter_seconds
        << ",\"map_seconds\":" << round.map_seconds
        << ",\"gather_seconds\":" << round.gather_seconds
        << ",\"filter_seconds\":" << round.filter_seconds << "}"
        << ",\"machines\":" << round.machines.size()
        << ",\"transport\":\"" << round.transport << "\""
        << ",\"wire_bytes_sent\":" << round.wire_bytes_sent
        << ",\"wire_bytes_received\":" << round.wire_bytes_received
        << ",\"retries\":" << round.retries
        << ",\"faults_injected\":" << round.faults_injected
        << ",\"evals_avoided\":" << round.evals_avoided;
    out << ",\"unheard\":[";
    for (std::size_t i = 0; i < round.unheard.size(); ++i) {
      if (i != 0) out << ",";
      out << round.unheard[i];
    }
    out << "]";
    out << ",\"faulted_machines\":[";
    bool first = true;
    for (const MachineSpan& m : round.machines) {
      if (is_clean(m)) continue;
      if (!first) out << ",";
      first = false;
      append_machine(out, m);
    }
    out << "]}";
  }
  out << "\n]}";
  return out.str();
}

std::string query_spans_to_json(const std::vector<QuerySpan>& spans) {
  std::ostringstream out;
  out << "{\"queries\":[";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const QuerySpan& q = spans[i];
    if (i != 0) out << ",";
    out << "\n{\"query\":" << q.query_id << ",\"tenant\":\"" << q.tenant
        << "\",\"outcome\":\"" << q.outcome << "\",\"k\":" << q.budget_k
        << ",\"items\":" << q.items
        << ",\"evals_avoided\":" << q.evals_avoided
        << ",\"queue_seconds\":" << q.queue_seconds
        << ",\"run_seconds\":" << q.run_seconds
        << ",\"total_seconds\":" << q.total_seconds
        << ",\"epoch\":" << q.epoch
        << ",\"recertified\":" << q.summaries_recertified
        << ",\"invalidated\":" << q.summaries_invalidated << "}";
  }
  out << "\n]}";
  return out.str();
}

}  // namespace bds::dist
