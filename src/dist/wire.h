// The coordinator <-> bds_worker wire protocol.
//
// Length-framed, versioned messages over a byte stream (a socketpair in
// practice; anything read()/send()-able works):
//
//   frame  := header payload
//   header := magic:u32 version:u32 type:u32 payload_len:u64   (LE, 20 B)
//
// Payloads reuse the checkpoint serialization discipline (util/serialize.h):
// whitespace-separated tokens, doubles as IEEE-754 bit patterns — so a
// WorkerOutput or MachineReport decoded on the far side is bit-identical to
// the one encoded, and `evals_avoided` metering stays comparable between
// transports.
//
// Session shape (coordinator drives; the worker only ever replies):
//
//   kHello      -> kHelloAck      handshake: machine index, ground size,
//                                 corpus spec (the worker loads its oracle)
//   kRequest    -> kResponse      one worker attempt (or kError)
//   kShutdown   -> (EOF)          orderly exit; EOF alone also suffices
//
// Failure taxonomy: *structural* violations (bad magic, version skew,
// oversized length, unknown type, truncated frame) throw WireError naming
// the peer — they mean a bug or corruption, and retrying cannot help.
// *Connection* endings (EOF at a frame boundary, ECONNRESET/EPIPE) return
// kClosed — they mean the peer died, which the transport maps to a crash
// fault and the cluster's retry machinery handles.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "dist/cluster.h"
#include "dist/faults.h"
#include "dist/transport.h"
#include "util/element.h"

namespace bds::dist::wire {

inline constexpr std::uint32_t kMagic = 0x57534442u;  // "BDSW" little-endian
inline constexpr std::uint32_t kVersion = 1;
inline constexpr std::size_t kHeaderBytes = 20;
// Largest payload either side accepts; a corrupted length field fails fast
// instead of attempting a gigantic allocation.
inline constexpr std::uint64_t kMaxPayload = 1ull << 30;

enum class FrameType : std::uint32_t {
  kHello = 1,
  kHelloAck = 2,
  kRequest = 3,
  kResponse = 4,
  kError = 5,     // payload: human-readable worker-side failure message
  kShutdown = 6,  // no payload
};

struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

// Structural protocol violation; the message names the offending peer.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class IoStatus : std::uint8_t {
  kOk,      // frame fully written / read
  kClosed,  // peer gone (EOF at boundary, EPIPE, ECONNRESET)
};

// Serializes header + payload into one contiguous buffer (what a single
// send() ships). Exposed separately so tests can craft corrupt frames.
std::string encode_frame(FrameType type, std::string_view payload);

// Writes one frame to fd. Adds header+payload size to *bytes when non-null.
// Returns kClosed if the peer is gone; throws WireError (naming `peer`) on
// any other I/O failure.
IoStatus write_frame(int fd, FrameType type, std::string_view payload,
                     std::uint64_t* bytes, const std::string& peer);

// Reads one frame from fd. Returns kClosed on EOF before any header byte
// or a reset connection; throws WireError (naming `peer`) on bad magic,
// version skew, unknown type, oversized length, or a frame truncated
// mid-header/mid-payload.
IoStatus read_frame(int fd, Frame* frame, std::uint64_t* bytes,
                    const std::string& peer);

// ---------------------------------------------------------------------------
// Payload codecs. Every decode takes a `context` that prefixes error
// messages (the transport passes its worker name). Encodes are total;
// decodes throw std::invalid_argument on malformed payloads.

// Handshake: everything a worker needs to provision itself.
struct Hello {
  std::size_t machine = 0;
  std::size_t ground_size = 0;
  std::string corpus_spec;  // serialized data::CorpusSpec
};
std::string encode_hello(const Hello& hello);
Hello decode_hello(std::string_view payload, const std::string& context);

// Handshake reply: the worker's pid (for error messages and kill tooling).
std::string encode_hello_ack(std::int64_t pid);
std::int64_t decode_hello_ack(std::string_view payload,
                              const std::string& context);

// One worker attempt: the declarative plan, the shard, the coordinator's
// committed set (inside plan), the fault to enact (kCrash makes the worker
// exit for real after replying) and the shard's warm-start certificates
// (parallel id/gain/prefix arrays; empty unless plan.lazy_bounds).
struct AttemptRequest {
  std::size_t round = 0;
  std::size_t machine = 0;
  std::size_t attempt = 0;
  FaultKind fault = FaultKind::kNone;
  WorkerPlan plan;  // kind must not be kCustom
  std::vector<ElementId> shard;
  std::vector<ElementId> bound_ids;
  std::vector<double> bound_gains;
  std::vector<std::size_t> bound_prefixes;
};
std::string encode_request(const AttemptRequest& request);
AttemptRequest decode_request(std::string_view payload,
                              const std::string& context);

// The attempt's result: the worker's full WorkerOutput plus its compute
// wall clock (reporting only, not part of the determinism contract).
struct AttemptResponse {
  WorkerOutput output;
  double seconds = 0.0;
};
std::string encode_response(const AttemptResponse& response);
AttemptResponse decode_response(std::string_view payload,
                                const std::string& context);

// Building blocks, exposed for the round-trip tests: a WorkerOutput /
// MachineReport survives encode -> decode bit-exactly (doubles included).
std::string encode_worker_output(const WorkerOutput& output);
WorkerOutput decode_worker_output(std::string_view payload,
                                  const std::string& context);
std::string encode_machine_report(const MachineReport& report);
MachineReport decode_machine_report(std::string_view payload,
                                    const std::string& context);

}  // namespace bds::dist::wire
