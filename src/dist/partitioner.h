// Ground-set placement strategies for one distributed round.
//
// BicriteriaGreedy (Alg. 1, line 6) sends each item to one machine chosen
// uniformly at random; the multiplicity variant (§2.2) sends each item to C
// distinct random machines. The hardness experiments additionally need an
// adversarial placement. All strategies are deterministic given the Rng.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/element.h"
#include "util/rng.h"

namespace bds::dist {

// The result of scattering a ground set across m machines: one element-id
// vector per machine. With multiplicity C, each element appears in C
// distinct machines' vectors.
using Partition = std::vector<std::vector<ElementId>>;

// Uniform-at-random placement (multiplicity 1): each item lands on exactly
// one of `machines` machines. Preconditions: machines > 0.
Partition partition_uniform(std::span<const ElementId> items,
                            std::size_t machines, util::Rng& rng);

// Multiplicity-C placement: each item is sent to min(C, machines) distinct
// machines chosen uniformly at random. C = 1 reduces to partition_uniform.
// Preconditions: machines > 0, multiplicity > 0.
Partition partition_multiplicity(std::span<const ElementId> items,
                                 std::size_t machines,
                                 std::size_t multiplicity, util::Rng& rng);

// Round-robin placement in the given item order — deterministic and
// perfectly balanced; used as the "worst case partitioning" hook in the
// hardness experiments (feed adversarially ordered items).
Partition partition_round_robin(std::span<const ElementId> items,
                                std::size_t machines);

// Statistics on a partition, used by load-balance tests and benches.
struct PartitionStats {
  std::size_t machines = 0;
  std::size_t total_slots = 0;  // sum of per-machine item counts
  std::size_t min_load = 0;
  std::size_t max_load = 0;
  double mean_load = 0.0;
};

PartitionStats analyze_partition(const Partition& partition);

}  // namespace bds::dist
