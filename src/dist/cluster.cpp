#include "dist/cluster.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "dist/transport.h"
#include "util/timer.h"

namespace bds::dist {

namespace {

std::size_t pool_threads(std::size_t machines, std::size_t threads) {
  // Never spin up more host threads than logical machines.
  return threads == 0
             ? std::min<std::size_t>(
                   machines, std::max<std::size_t>(
                                 1, std::thread::hardware_concurrency()))
             : std::min(threads, machines);
}

}  // namespace

std::uint64_t ExecutionStats::total_worker_evals() const noexcept {
  std::uint64_t total = 0;
  for (const auto& r : rounds) total += r.worker_evals;
  return total;
}

std::uint64_t ExecutionStats::total_central_evals() const noexcept {
  std::uint64_t total = 0;
  for (const auto& r : rounds) total += r.central_evals;
  return total;
}

std::uint64_t ExecutionStats::total_merge_evals() const noexcept {
  std::uint64_t total = 0;
  for (const auto& r : rounds) total += r.merge_evals;
  return total;
}

std::uint64_t ExecutionStats::total_evals() const noexcept {
  return total_worker_evals() + total_central_evals();
}

std::uint64_t ExecutionStats::total_evals_avoided() const noexcept {
  std::uint64_t total = 0;
  for (const auto& r : rounds) total += r.evals_avoided;
  return total;
}

std::uint64_t ExecutionStats::total_bytes_cloned() const noexcept {
  std::uint64_t total = 0;
  for (const auto& r : rounds) total += r.bytes_cloned;
  return total;
}

std::uint64_t ExecutionStats::peak_worker_state_bytes() const noexcept {
  std::uint64_t peak = 0;
  for (const auto& r : rounds) {
    peak = std::max(peak, r.peak_worker_state_bytes);
  }
  return peak;
}

std::uint64_t ExecutionStats::total_wasted_evals() const noexcept {
  std::uint64_t total = 0;
  for (const auto& r : rounds) total += r.wasted_evals;
  return total;
}

std::uint64_t ExecutionStats::total_retries() const noexcept {
  std::uint64_t total = 0;
  for (const auto& r : rounds) total += r.retries;
  return total;
}

std::uint64_t ExecutionStats::total_faults_injected() const noexcept {
  std::uint64_t total = 0;
  for (const auto& r : rounds) total += r.faults_injected;
  return total;
}

std::size_t ExecutionStats::total_machines_unheard() const noexcept {
  std::size_t total = 0;
  for (const auto& r : rounds) total += r.machines_unheard;
  return total;
}

std::uint64_t ExecutionStats::bytes_communicated() const noexcept {
  std::uint64_t ids = 0;
  for (const auto& r : rounds) {
    ids += r.elements_scattered + r.elements_gathered;
  }
  return ids * sizeof(ElementId);
}

double ExecutionStats::critical_path_seconds() const noexcept {
  double total = 0.0;
  for (const auto& r : rounds) {
    total += r.max_machine_seconds + r.central_seconds;
  }
  return total;
}

std::uint64_t ExecutionStats::critical_path_evals() const noexcept {
  std::uint64_t total = 0;
  for (const auto& r : rounds) {
    total += r.max_machine_evals + r.central_evals;
  }
  return total;
}

double ExecutionStats::total_work_seconds() const noexcept {
  double total = 0.0;
  for (const auto& r : rounds) {
    total += r.sum_machine_seconds + r.central_seconds;
  }
  return total;
}

double ExecutionStats::modeled_cluster_seconds(
    const NetworkModel& network) const noexcept {
  double total = critical_path_seconds();
  for (const auto& r : rounds) {
    const double bytes = static_cast<double>(
        (r.elements_scattered + r.elements_gathered) * sizeof(ElementId));
    total += network.round_latency_seconds;
    if (network.bytes_per_second > 0.0) {
      total += bytes / network.bytes_per_second;
    }
  }
  return total;
}

Cluster::Cluster(std::size_t machines, const ClusterOptions& options)
    : machines_(machines),
      faults_(options.faults),
      retry_(options.retry),
      trace_sink_(options.trace_sink),
      transport_(options.transport ? options.transport
                                   : make_inproc_transport()),
      pool_(pool_threads(machines, options.threads)) {
  if (machines == 0) {
    throw std::invalid_argument("Cluster: need at least one machine");
  }
  apply_env_fault_override(faults_, retry_);
}

Cluster::Cluster(std::size_t machines, std::size_t threads)
    : Cluster(machines, ClusterOptions{threads, {}, {}, {}}) {}

MachineReport Cluster::run_machine(std::size_t round, std::size_t machine,
                                   std::span<const ElementId> shard,
                                   const RoundWork& work,
                                   MachineSpan& span) const {
  span.machine = machine;

  MachineReport report;
  report.attempts = 0;

  const std::size_t cap = retry_.attempt_cap();
  for (std::size_t attempt = 1; attempt <= cap; ++attempt) {
    // The fault decision is a pure hash of (seed, round, machine, attempt),
    // so deciding it before the attempt runs changes nothing in the
    // schedule — and lets the process backend turn an injected kCrash into
    // a real worker death.
    const FaultKind injected = faults_.fault_at(round, machine, attempt);
    AttemptResult attempt_result = transport_->run_attempt(
        round, machine, attempt, injected, shard, work);
    WorkerOutput output = std::move(attempt_result.output);
    double seconds = attempt_result.seconds;

    // A real worker death (SIGKILL'd process, broken socket) surfaces as a
    // crash fault regardless of the schedule: nothing reached the
    // coordinator, and the retry path respawns and re-runs the pure
    // (machine, shard) computation.
    const FaultKind fault =
        attempt_result.crashed ? FaultKind::kCrash : injected;
    report.attempts = attempt;
    report.last_fault = fault;

    AttemptSpan attempt_span;
    attempt_span.attempt = attempt;
    attempt_span.fault = fault;
    attempt_span.evals = output.oracle_evals;
    attempt_span.wire_bytes_sent = attempt_result.wire_bytes_sent;
    attempt_span.wire_bytes_received = attempt_result.wire_bytes_received;

    bool failed = false;
    switch (fault) {
      case FaultKind::kNone:
      case FaultKind::kTruncation:
        break;
      case FaultKind::kCrash:
      case FaultKind::kSummaryDrop:
        // The work was done (crash: partially, modeled as fully; drop:
        // fully) but nothing usable reached the coordinator.
        failed = true;
        break;
      case FaultKind::kStraggler: {
        seconds *= faults_.straggler_slowdown;
        // Timeout in the eval cost model: the slowdown-adjusted cost blew
        // the budget while the healthy cost would not have (the guard that
        // makes unlimited retries terminate).
        const double modeled =
            static_cast<double>(output.oracle_evals) *
            faults_.straggler_slowdown;
        failed = retry_.timeout_evals > 0 &&
                 modeled > static_cast<double>(retry_.timeout_evals) &&
                 output.oracle_evals <= retry_.timeout_evals;
        break;
      }
    }

    attempt_span.seconds = seconds;
    report.seconds += seconds;

    if (!failed) {
      attempt_span.delivered = true;
      if (fault == FaultKind::kTruncation && !output.summary.empty()) {
        const auto keep = static_cast<std::size_t>(
            static_cast<double>(output.summary.size()) *
            std::clamp(faults_.truncation_keep_fraction, 0.0, 1.0));
        if (keep < output.summary.size()) {
          output.summary.resize(keep);
          report.status = DeliveryStatus::kDegraded;
          span.degraded = true;
        }
      }
      report.worker = std::move(output);
      span.attempts.push_back(attempt_span);
      span.summary_size = report.worker.summary.size();
      return report;
    }

    // Failed attempt: charge deterministic backoff before the retry.
    if (attempt < cap) {
      attempt_span.backoff_seconds = retry_.backoff_for_attempt(attempt);
      report.seconds += attempt_span.backoff_seconds;
    }
    span.attempts.push_back(attempt_span);
  }

  // Retry budget exhausted: the coordinator proceeds without this shard.
  report.status = DeliveryStatus::kUnheard;
  report.worker = WorkerOutput{};
  span.heard = false;
  span.summary_size = 0;
  return report;
}

std::vector<MachineReport> Cluster::run_round(const Partition& partition,
                                              const WorkerFn& worker) {
  // Closure-only work: in-process execution, declaratively opaque.
  RoundWork work;
  work.fn = worker;
  return run_round(partition, work);
}

std::vector<MachineReport> Cluster::run_round(const Partition& partition,
                                              const RoundWork& work) {
  assert(partition.size() == machines_);

  RoundSpan span;
  span.round_index = stats_.rounds.size();
  span.transport = std::string(transport_->name());
  span.machines.resize(machines_);

  util::Timer scatter_timer;
  RoundStats round;
  round.round_index = stats_.rounds.size();
  for (const auto& shard : partition) {
    if (!shard.empty()) ++round.machines_used;
    round.elements_scattered += shard.size();
    round.max_machine_items = std::max<std::uint64_t>(round.max_machine_items,
                                                      shard.size());
  }
  span.scatter_seconds = scatter_timer.elapsed_seconds();

  util::Timer map_timer;
  std::vector<MachineReport> reports(machines_);
  pool_.parallel_for(machines_, [&](std::size_t i) {
    reports[i] = run_machine(round.round_index, i,
                             std::span<const ElementId>(partition[i]), work,
                             span.machines[i]);
  });
  span.map_seconds = map_timer.elapsed_seconds();

  util::Timer gather_timer;
  for (std::size_t i = 0; i < machines_; ++i) {
    const MachineReport& rep = reports[i];
    round.max_machine_seconds = std::max(round.max_machine_seconds,
                                         rep.seconds);
    round.sum_machine_seconds += rep.seconds;
    round.bytes_cloned += rep.worker.state_bytes;
    round.peak_worker_state_bytes =
        std::max(round.peak_worker_state_bytes, rep.worker.state_bytes);

    const MachineSpan& machine_span = span.machines[i];
    round.retries +=
        machine_span.attempts.empty() ? 0 : machine_span.attempts.size() - 1;
    for (const AttemptSpan& attempt : machine_span.attempts) {
      if (attempt.fault != FaultKind::kNone) ++round.faults_injected;
      if (attempt.delivered) {
        round.worker_evals += attempt.evals;
        round.max_machine_evals =
            std::max(round.max_machine_evals, attempt.evals);
      } else {
        round.wasted_evals += attempt.evals;
      }
      round.backoff_seconds += attempt.backoff_seconds;
      span.wire_bytes_sent += attempt.wire_bytes_sent;
      span.wire_bytes_received += attempt.wire_bytes_received;
    }
    if (!rep.heard()) {
      ++round.machines_unheard;
      span.unheard.push_back(i);
    } else {
      round.elements_gathered += rep.summary().size();
    }
  }
  span.retries = round.retries;
  span.faults_injected = round.faults_injected;
  span.gather_seconds = gather_timer.elapsed_seconds();

  stats_.rounds.push_back(round);
  stats_.trace.rounds.push_back(std::move(span));
  return reports;
}

void Cluster::record_central_stage(std::uint64_t evals, double seconds,
                                   std::uint64_t selected,
                                   std::uint64_t evals_avoided) {
  if (stats_.rounds.empty()) {
    throw std::logic_error("record_central_stage before any round");
  }
  auto& round = stats_.rounds.back();
  round.central_evals = evals;
  round.central_seconds = seconds;
  round.central_selected = selected;
  round.evals_avoided = evals_avoided;

  auto& span = stats_.trace.rounds.back();
  span.filter_seconds = seconds;
  span.evals_avoided = evals_avoided;
  if (trace_sink_) trace_sink_(span);
}

}  // namespace bds::dist
