#include "dist/cluster.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/timer.h"

namespace bds::dist {

std::uint64_t ExecutionStats::total_worker_evals() const noexcept {
  std::uint64_t total = 0;
  for (const auto& r : rounds) total += r.worker_evals;
  return total;
}

std::uint64_t ExecutionStats::total_central_evals() const noexcept {
  std::uint64_t total = 0;
  for (const auto& r : rounds) total += r.central_evals;
  return total;
}

std::uint64_t ExecutionStats::total_evals() const noexcept {
  return total_worker_evals() + total_central_evals();
}

std::uint64_t ExecutionStats::total_bytes_cloned() const noexcept {
  std::uint64_t total = 0;
  for (const auto& r : rounds) total += r.bytes_cloned;
  return total;
}

std::uint64_t ExecutionStats::peak_worker_state_bytes() const noexcept {
  std::uint64_t peak = 0;
  for (const auto& r : rounds) {
    peak = std::max(peak, r.peak_worker_state_bytes);
  }
  return peak;
}

std::uint64_t ExecutionStats::bytes_communicated() const noexcept {
  std::uint64_t ids = 0;
  for (const auto& r : rounds) {
    ids += r.elements_scattered + r.elements_gathered;
  }
  return ids * sizeof(ElementId);
}

double ExecutionStats::critical_path_seconds() const noexcept {
  double total = 0.0;
  for (const auto& r : rounds) {
    total += r.max_machine_seconds + r.central_seconds;
  }
  return total;
}

std::uint64_t ExecutionStats::critical_path_evals() const noexcept {
  std::uint64_t total = 0;
  for (const auto& r : rounds) {
    total += r.max_machine_evals + r.central_evals;
  }
  return total;
}

double ExecutionStats::total_work_seconds() const noexcept {
  double total = 0.0;
  for (const auto& r : rounds) {
    total += r.sum_machine_seconds + r.central_seconds;
  }
  return total;
}

double ExecutionStats::modeled_cluster_seconds(
    const NetworkModel& network) const noexcept {
  double total = critical_path_seconds();
  for (const auto& r : rounds) {
    const double bytes = static_cast<double>(
        (r.elements_scattered + r.elements_gathered) * sizeof(ElementId));
    total += network.round_latency_seconds;
    if (network.bytes_per_second > 0.0) {
      total += bytes / network.bytes_per_second;
    }
  }
  return total;
}

Cluster::Cluster(std::size_t machines, std::size_t threads)
    : machines_(machines),
      // Never spin up more host threads than logical machines.
      pool_(threads == 0
                ? std::min<std::size_t>(
                      machines, std::max<std::size_t>(
                                    1, std::thread::hardware_concurrency()))
                : std::min(threads, machines)) {
  if (machines == 0) {
    throw std::invalid_argument("Cluster: need at least one machine");
  }
}

std::vector<MachineReport> Cluster::run_round(const Partition& partition,
                                              const WorkerFn& worker) {
  assert(partition.size() == machines_);

  std::vector<MachineReport> reports(machines_);
  pool_.parallel_for(machines_, [&](std::size_t i) {
    util::Timer timer;
    reports[i] = worker(i, std::span<const ElementId>(partition[i]));
    reports[i].seconds = timer.elapsed_seconds();
  });

  RoundStats round;
  round.round_index = stats_.rounds.size();
  for (std::size_t i = 0; i < machines_; ++i) {
    const auto& shard = partition[i];
    const auto& rep = reports[i];
    if (!shard.empty()) ++round.machines_used;
    round.elements_scattered += shard.size();
    round.elements_gathered += rep.summary.size();
    round.worker_evals += rep.oracle_evals;
    round.max_machine_evals = std::max(round.max_machine_evals,
                                       rep.oracle_evals);
    round.max_machine_seconds = std::max(round.max_machine_seconds,
                                         rep.seconds);
    round.sum_machine_seconds += rep.seconds;
    round.max_machine_items = std::max<std::uint64_t>(round.max_machine_items,
                                                      shard.size());
    round.bytes_cloned += rep.state_bytes;
    round.peak_worker_state_bytes =
        std::max(round.peak_worker_state_bytes, rep.state_bytes);
  }
  stats_.rounds.push_back(round);
  return reports;
}

void Cluster::record_central_stage(std::uint64_t evals, double seconds,
                                   std::uint64_t selected) {
  if (stats_.rounds.empty()) {
    throw std::logic_error("record_central_stage before any round");
  }
  auto& round = stats_.rounds.back();
  round.central_evals = evals;
  round.central_seconds = seconds;
  round.central_selected = selected;
}

}  // namespace bds::dist
