// Structured round tracing for the cluster simulator.
//
// Every Cluster round records a RoundSpan: wall-clock phase timings
// (scatter / map / gather / filter), one MachineSpan per logical machine
// with its full attempt history (injected-fault tags, per-attempt evals and
// seconds, retry backoff), and the degradation record (which shards went
// unheard). The spans live inside ExecutionStats — they travel with every
// DistributedResult for free — and serialize to JSON for the bench
// harness's --trace flag and external tooling.
//
// Span *structure* (attempts, faults, evals, retries, unheard sets) is
// deterministic under a fixed FaultPlan; the seconds fields are host
// wall-clock measurements and are not part of the determinism contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dist/faults.h"

namespace bds::dist {

// One worker execution attempt on one machine.
struct AttemptSpan {
  std::size_t attempt = 1;              // 1-based
  FaultKind fault = FaultKind::kNone;   // injected-fault tag
  bool delivered = false;               // summary reached the coordinator
  std::uint64_t evals = 0;              // oracle evaluations this attempt
  double seconds = 0.0;                 // wall clock, straggler-inflated
  double backoff_seconds = 0.0;         // charged after a failed attempt
  // Transport wire traffic for this attempt (request / response frames,
  // headers included); 0 under the in-process backend.
  std::uint64_t wire_bytes_sent = 0;
  std::uint64_t wire_bytes_received = 0;
};

// One machine's history within one round.
struct MachineSpan {
  std::size_t machine = 0;
  bool heard = true;       // false: retry budget exhausted, shard unheard
  bool degraded = false;   // delivered, but the summary was truncated
  std::size_t summary_size = 0;  // ids actually delivered
  std::vector<AttemptSpan> attempts;
};

// One scatter -> map -> gather -> filter round.
struct RoundSpan {
  std::size_t round_index = 0;
  double scatter_seconds = 0.0;  // shard bookkeeping before workers start
  double map_seconds = 0.0;      // parallel worker phase (incl. retries)
  double gather_seconds = 0.0;   // aggregation of delivered reports
  double filter_seconds = 0.0;   // coordinator stage (record_central_stage)
  std::uint64_t retries = 0;             // re-executions across machines
  std::uint64_t faults_injected = 0;     // fault events across attempts
  // Oracle evaluations the lazy-bound substrate saved this round (workers +
  // filter), vs. an eager re-scan; see RoundStats::evals_avoided.
  std::uint64_t evals_avoided = 0;
  // Which ClusterTransport backend executed the round's attempts
  // ("inproc", "process") and the round's summed wire traffic across all
  // attempts — 0 bytes for in-process, where nothing is serialized. Lets
  // BENCH and trace consumers attribute comms cost per round.
  std::string transport;
  std::uint64_t wire_bytes_sent = 0;
  std::uint64_t wire_bytes_received = 0;
  std::vector<std::size_t> unheard;      // machines that never delivered
  std::vector<MachineSpan> machines;
};

// The whole execution's spans, in round order.
struct ExecutionTrace {
  std::vector<RoundSpan> rounds;

  bool empty() const noexcept { return rounds.empty(); }
};

// Per-round callback, invoked when a round's span completes (at
// record_central_stage). The span reference is valid only for the call.
using TraceSink = std::function<void(const RoundSpan&)>;

// JSON serialization: {"rounds": [...]} with one object per RoundSpan.
// Machine attempt lists are elided for clean single-attempt machines to
// keep healthy traces compact; faulted machines carry full attempt spans.
std::string trace_to_json(const ExecutionTrace& trace);

// One served query's life in the summary service (serve/service.h): how it
// was admitted and answered, with queueing/compute/total latency split out.
// `outcome` is the service's ServeOutcome name ("hit", "coalesced",
// "computed", "degraded", "rejected"); seconds fields are wall clock and,
// like RoundSpan timings, not part of the determinism contract.
struct QuerySpan {
  std::uint64_t query_id = 0;
  std::string tenant;
  std::string outcome;
  std::size_t budget_k = 0;
  std::size_t items = 0;       // items actually served
  // Oracle evaluations the lazy-bound substrate saved inside this query's
  // computation (0 for hits — no run happened at all).
  std::uint64_t evals_avoided = 0;
  double queue_seconds = 0.0;  // admission until compute start (0 for hits)
  double run_seconds = 0.0;    // cache-miss computation (0 for hits)
  double total_seconds = 0.0;  // submit to answer
  // Corpus epoch the answer (or mutation) applies to; 0 for frozen corpora.
  std::uint64_t epoch = 0;
  // Mutation spans only (outcome "mutate-insert" / "mutate-erase"): how the
  // invalidate-or-recertify pass decided for this corpus's cached
  // summaries. Query spans leave both at 0.
  std::size_t summaries_recertified = 0;
  std::size_t summaries_invalidated = 0;
};

// JSON serialization: {"queries": [...]} with one object per QuerySpan.
std::string query_spans_to_json(const std::vector<QuerySpan>& spans);

}  // namespace bds::dist
