#include "dist/report.h"

#include <sstream>

#include "util/table.h"

namespace bds::dist {

std::string render_execution_report(const ExecutionStats& stats) {
  std::ostringstream out;
  if (stats.rounds.empty()) {
    out << "(no distributed rounds executed)\n";
    return out.str();
  }

  util::Table table({"round", "machines", "scattered", "gathered",
                     "worker evals", "max machine", "central evals",
                     "selected"});
  for (const auto& r : stats.rounds) {
    table.add_row({util::Table::fmt_int(r.round_index + 1),
                   util::Table::fmt_int(r.machines_used),
                   util::Table::fmt_int(r.elements_scattered),
                   util::Table::fmt_int(r.elements_gathered),
                   util::Table::fmt_int(r.worker_evals),
                   util::Table::fmt_int(r.max_machine_evals),
                   util::Table::fmt_int(r.central_evals),
                   util::Table::fmt_int(r.central_selected)});
  }
  out << table.to_string();
  if (stats.total_faults_injected() > 0 || stats.total_machines_unheard() > 0) {
    out << "faults: " << stats.total_faults_injected() << " injected, "
        << stats.total_retries() << " retries ("
        << stats.total_wasted_evals() << " wasted evals), "
        << stats.total_machines_unheard() << " shard(s) unheard\n";
  }
  out << "totals: " << stats.num_rounds() << " round(s), "
      << util::Table::fmt(double(stats.bytes_communicated()) / 1024.0, 1)
      << " KiB communicated, " << stats.total_evals()
      << " oracle evals (critical path " << stats.critical_path_evals()
      << ", " << util::Table::fmt(stats.critical_path_seconds() * 1e3, 1)
      << " ms; total work "
      << util::Table::fmt(stats.total_work_seconds() * 1e3, 1) << " ms)\n";
  return out.str();
}

}  // namespace bds::dist
