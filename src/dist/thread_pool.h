// Fixed-size thread pool used by the cluster simulator to run logical
// machines concurrently. Deliberately simple: a mutex-guarded FIFO queue is
// plenty, since every submitted task is a whole machine's greedy pass
// (milliseconds to seconds), not fine-grained work items.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace bds::dist {

class ThreadPool {
 public:
  // n_threads == 0 selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t n_threads = 0);

  // Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  // Tasks currently queued and not yet picked up by a worker. A snapshot —
  // stale the moment it returns — used by admission layers (serve/service.h)
  // as a backlog signal for load shedding, never for correctness.
  std::size_t pending() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
  }

  // Enqueues a task and returns a future for its result. Exceptions thrown
  // by the task surface through the future.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool: submit after shutdown");
      }
      queue_.emplace([task]() { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  // Runs fn(i) for every i in [0, n) on the pool and blocks until all
  // complete. The first task exception (if any) is rethrown. fn must be
  // safe to invoke concurrently from multiple threads.
  // Delegates to the chunked overload with grain 1 (one task per index).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  // Chunked variant: splits [0, n) into ⌈n/grain⌉ contiguous ranges and
  // submits one task per range, so a large batch pays one queue mutex
  // round-trip per ~grain indices instead of one per index. fn is still
  // invoked once per index, in ascending order within each chunk.
  // grain == 0 is treated as 1. Exception semantics match the per-index
  // overload: the first chunk exception is rethrown after all chunks join
  // (remaining indices of a throwing chunk are skipped).
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace bds::dist
