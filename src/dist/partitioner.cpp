#include "dist/partitioner.h"

#include <algorithm>
#include <cassert>

namespace bds::dist {

Partition partition_uniform(std::span<const ElementId> items,
                            std::size_t machines, util::Rng& rng) {
  assert(machines > 0);
  Partition parts(machines);
  const std::size_t expected = items.size() / machines + 1;
  for (auto& p : parts) p.reserve(expected);
  for (const ElementId item : items) {
    parts[rng.next_below(machines)].push_back(item);
  }
  return parts;
}

Partition partition_multiplicity(std::span<const ElementId> items,
                                 std::size_t machines,
                                 std::size_t multiplicity, util::Rng& rng) {
  assert(machines > 0);
  assert(multiplicity > 0);
  const std::size_t c = std::min(multiplicity, machines);
  if (c == 1) return partition_uniform(items, machines, rng);

  Partition parts(machines);
  const std::size_t expected = items.size() * c / machines + 1;
  for (auto& p : parts) p.reserve(expected);
  for (const ElementId item : items) {
    // c distinct machines per item; c is small (α·lnα), machines moderate,
    // so Floyd-style rejection over a tiny scratch set is fastest.
    const auto picks = rng.sample_without_replacement(machines, c);
    for (const std::uint64_t machine : picks) {
      parts[machine].push_back(item);
    }
  }
  return parts;
}

Partition partition_round_robin(std::span<const ElementId> items,
                                std::size_t machines) {
  assert(machines > 0);
  Partition parts(machines);
  for (auto& p : parts) p.reserve(items.size() / machines + 1);
  for (std::size_t i = 0; i < items.size(); ++i) {
    parts[i % machines].push_back(items[i]);
  }
  return parts;
}

PartitionStats analyze_partition(const Partition& partition) {
  PartitionStats stats;
  stats.machines = partition.size();
  if (partition.empty()) return stats;
  stats.min_load = partition.front().size();
  for (const auto& p : partition) {
    stats.total_slots += p.size();
    stats.min_load = std::min(stats.min_load, p.size());
    stats.max_load = std::max(stats.max_load, p.size());
  }
  stats.mean_load = static_cast<double>(stats.total_slots) /
                    static_cast<double>(stats.machines);
  return stats;
}

}  // namespace bds::dist
