#include <stdexcept>

#include "dist/transport.h"
#include "util/timer.h"

namespace bds::dist {

namespace {

// The original simulator execution path: the worker closure runs on the
// cluster pool thread that called run_attempt. Stateless, so one shared
// instance would do — but each Cluster gets its own via the factory to
// keep ownership uniform with the process backend.
class InprocTransport final : public ClusterTransport {
 public:
  std::string_view name() const noexcept override { return "inproc"; }

  AttemptResult run_attempt(std::size_t /*round*/, std::size_t machine,
                            std::size_t /*attempt*/, FaultKind /*injected*/,
                            std::span<const ElementId> shard,
                            const RoundWork& work) override {
    if (!work.fn) {
      throw std::logic_error("inproc transport: RoundWork has no worker fn");
    }
    AttemptResult result;
    util::Timer timer;
    result.output = work.fn(machine, shard);
    result.seconds = timer.elapsed_seconds();
    return result;
  }
};

}  // namespace

std::shared_ptr<ClusterTransport> make_inproc_transport() {
  return std::make_shared<InprocTransport>();
}

}  // namespace bds::dist
