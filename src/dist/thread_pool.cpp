#include "dist/thread_pool.h"

#include <algorithm>

namespace bds::dist {

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) {
    n_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for(n, 1, fn);
}

void ThreadPool::parallel_for(std::size_t n, std::size_t grain,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t chunks = (n + grain - 1) / grain;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * grain;
    const std::size_t end = std::min(begin + grain, n);
    futures.push_back(submit([&fn, begin, end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace bds::dist
