#include "dist/engine.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/greedy.h"
#include "core/machine_runner.h"
#include "dist/cluster.h"
#include "dist/partitioner.h"
#include "dist/transport.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/timer.h"

namespace bds {

namespace {

// ---------------------------------------------------------------------------
// Checkpoint serialization: the shared token/bit-pattern vocabulary of
// util/serialize.h under the checkpoint's own versioned header. Doubles are
// serialized as their IEEE-754 bit patterns so a restored run is bit-exact,
// not merely close.

using util::TokenReader;
using util::double_bits;
using util::write_ids;
using util::write_indices;

void serialize_round_stats(std::ostream& out, const dist::RoundStats& r) {
  out << "SR " << r.round_index << ' ' << r.machines_used << ' '
      << r.elements_scattered << ' ' << r.elements_gathered << ' '
      << r.worker_evals << ' ' << r.max_machine_evals << ' '
      << double_bits(r.max_machine_seconds) << ' '
      << double_bits(r.sum_machine_seconds) << ' ' << r.max_machine_items
      << ' ' << r.bytes_cloned << ' ' << r.peak_worker_state_bytes << ' '
      << r.wasted_evals << ' ' << r.retries << ' ' << r.faults_injected << ' '
      << r.machines_unheard << ' ' << double_bits(r.backoff_seconds) << ' '
      << r.central_evals << ' ' << double_bits(r.central_seconds) << ' '
      << r.central_selected << ' ' << r.merge_evals << ' ' << r.evals_avoided
      << '\n';
}

dist::RoundStats deserialize_round_stats(TokenReader& in) {
  in.expect("SR");
  dist::RoundStats r;
  r.round_index = in.size();
  r.machines_used = in.size();
  r.elements_scattered = in.u64();
  r.elements_gathered = in.u64();
  r.worker_evals = in.u64();
  r.max_machine_evals = in.u64();
  r.max_machine_seconds = in.real();
  r.sum_machine_seconds = in.real();
  r.max_machine_items = in.u64();
  r.bytes_cloned = in.u64();
  r.peak_worker_state_bytes = in.u64();
  r.wasted_evals = in.u64();
  r.retries = in.u64();
  r.faults_injected = in.u64();
  r.machines_unheard = in.size();
  r.backoff_seconds = in.real();
  r.central_evals = in.u64();
  r.central_seconds = in.real();
  r.central_selected = in.u64();
  r.merge_evals = in.u64();
  r.evals_avoided = in.u64();
  return r;
}

void serialize_round_span(std::ostream& out, const dist::RoundSpan& span) {
  // Transport names are single tokens ("inproc", "process"); "-" stands in
  // for the empty string so the token stream stays well-formed.
  out << "TR " << span.round_index << ' '
      << double_bits(span.scatter_seconds) << ' '
      << double_bits(span.map_seconds) << ' '
      << double_bits(span.gather_seconds) << ' '
      << double_bits(span.filter_seconds) << ' ' << span.retries << ' '
      << span.faults_injected << ' ' << span.evals_avoided << ' '
      << (span.transport.empty() ? "-" : span.transport.c_str()) << ' '
      << span.wire_bytes_sent << ' ' << span.wire_bytes_received << ' ';
  write_indices(out, span.unheard);
  out << ' ' << span.machines.size() << '\n';
  for (const dist::MachineSpan& m : span.machines) {
    out << "M " << m.machine << ' ' << (m.heard ? 1 : 0) << ' '
        << (m.degraded ? 1 : 0) << ' ' << m.summary_size << ' '
        << m.attempts.size() << '\n';
    for (const dist::AttemptSpan& a : m.attempts) {
      out << "A " << a.attempt << ' '
          << static_cast<unsigned>(a.fault) << ' ' << (a.delivered ? 1 : 0)
          << ' ' << a.evals << ' ' << double_bits(a.seconds) << ' '
          << double_bits(a.backoff_seconds) << ' ' << a.wire_bytes_sent
          << ' ' << a.wire_bytes_received << '\n';
    }
  }
}

dist::RoundSpan deserialize_round_span(TokenReader& in) {
  in.expect("TR");
  dist::RoundSpan span;
  span.round_index = in.size();
  span.scatter_seconds = in.real();
  span.map_seconds = in.real();
  span.gather_seconds = in.real();
  span.filter_seconds = in.real();
  span.retries = in.u64();
  span.faults_injected = in.u64();
  span.evals_avoided = in.u64();
  span.transport = in.word();
  if (span.transport == "-") span.transport.clear();
  span.wire_bytes_sent = in.u64();
  span.wire_bytes_received = in.u64();
  span.unheard = in.indices();
  span.machines.resize(in.size());
  for (dist::MachineSpan& m : span.machines) {
    in.expect("M");
    m.machine = in.size();
    m.heard = in.flag();
    m.degraded = in.flag();
    m.summary_size = in.size();
    m.attempts.resize(in.size());
    for (dist::AttemptSpan& a : m.attempts) {
      in.expect("A");
      a.attempt = in.size();
      a.fault = static_cast<dist::FaultKind>(in.u64());
      a.delivered = in.flag();
      a.evals = in.u64();
      a.seconds = in.real();
      a.backoff_seconds = in.real();
      a.wire_bytes_sent = in.u64();
      a.wire_bytes_received = in.u64();
    }
  }
  return span;
}

void serialize_round_trace(std::ostream& out, const RoundTrace& t) {
  out << "RT " << t.round << ' ' << double_bits(t.alpha) << ' ' << t.machines
      << ' ' << t.machine_budget << ' ' << t.central_budget << ' '
      << t.items_added << ' ' << double_bits(t.value_after) << '\n';
}

RoundTrace deserialize_round_trace(TokenReader& in) {
  in.expect("RT");
  RoundTrace t;
  t.round = in.size();
  t.alpha = in.real();
  t.machines = in.size();
  t.machine_budget = in.size();
  t.central_budget = in.size();
  t.items_added = in.size();
  t.value_after = in.real();
  return t;
}

// ---------------------------------------------------------------------------
// Engine internals

// Evaluates f(prefix) from scratch on a clone of `proto` — the
// best-of-machines merge probe — and meters its oracle evaluations.
double probe_summary(const SubmodularOracle& proto,
                     std::span<const ElementId> prefix,
                     std::uint64_t* merge_evals) {
  auto oracle = proto.clone();
  for (const ElementId x : prefix) oracle->add(x);
  *merge_evals += oracle->evals();
  return oracle->value();
}

struct EngineRun {
  const SubmodularOracle& proto;
  std::span<const ElementId> ground;
  const RoundProgram& program;
  const RuntimeOptions& runtime;

  std::unique_ptr<SubmodularOracle> central;
  std::unique_ptr<dist::Cluster> cluster;
  util::Rng rng{1};

  DistributedResult result;
  std::vector<ElementId> pool;          // accumulated candidates (deduped)
  std::vector<ElementId> best_machine;  // best-of-machines tracking
  double best_machine_value = -1.0;
  std::size_t rounds_completed = 0;
  bool halted = false;

  // Cross-round lazy-bound substrate (core/bound_heap.h). Engine-global and
  // element-keyed (shards are re-randomized per round, so per-worker heaps
  // would not survive anyway); written only between rounds, read-only while
  // workers run. Never checkpointed: a resumed run starts cold — same
  // selections, conservative eval counts (the documented invalidation-on-
  // resume contract).
  detail::BoundStore bounds;
  bool lazy_active = false;

  EngineRun(const SubmodularOracle& proto_in,
            std::span<const ElementId> ground_in,
            const RoundProgram& program_in, const RuntimeOptions& runtime_in)
      : proto(proto_in),
        ground(ground_in),
        program(program_in),
        runtime(runtime_in) {}

  void initialize() {
    central = program.central_factory
                  ? program.central_factory(proto, runtime.incremental_gains)
                  : detail::make_central_oracle(proto,
                                                runtime.incremental_gains);
    dist::ClusterOptions cluster_options = runtime.cluster_options();
    if (runtime.transport == TransportKind::kProcess) {
      dist::ProcessTransportConfig transport_config;
      transport_config.machines = program.machines;
      transport_config.ground_size = proto.ground_size();
      transport_config.worker_binary = runtime.process.worker_binary;
      transport_config.corpus_spec = runtime.process.corpus_spec;
      cluster_options.transport =
          dist::make_process_transport(transport_config);
    }
    cluster = std::make_unique<dist::Cluster>(program.machines,
                                              cluster_options);
    // The substrate stays off for factory-built machine oracles: their
    // gains are estimates over machine-local state, not marginals of the
    // coordinator's f, so nothing certifies across machines or rounds.
    lazy_active =
        detail::lazy_enabled() &&
        !(program.oracle_factory != nullptr && *program.oracle_factory);
    if (lazy_active) {
      bounds.reset(proto.ground_size());
      bounds.attach_singletons(runtime.singleton_bounds);
    }
    if (runtime.resume_from) {
      restore(*runtime.resume_from);
    } else {
      rng = util::Rng(util::mix64(runtime.seed));
    }
  }

  void restore(const Checkpoint& snapshot) {
    if (snapshot.program_id != program.id) {
      throw std::invalid_argument(
          "resume: checkpoint is for program '" + snapshot.program_id +
          "', not '" + program.id + "'");
    }
    if (snapshot.seed != runtime.seed) {
      throw std::invalid_argument("resume: checkpoint seed mismatch");
    }
    rng = util::Rng::from_state(snapshot.rng_state);
    // Replay the coordinator's exact committed set (a superset of the
    // reported solution when a filter adopts zero-gain members), then zero
    // the counter so post-resume eval deltas are unpolluted.
    for (const ElementId x : snapshot.coordinator_set) central->add(x);
    central->reset_evals();
    result.solution = snapshot.solution;
    result.rounds = snapshot.rounds;
    pool = snapshot.pool;
    best_machine = snapshot.best_machine;
    best_machine_value = snapshot.best_machine_value;
    rounds_completed = snapshot.rounds_completed;
    cluster->mutable_stats() = snapshot.stats;
  }

  Checkpoint snapshot() const {
    Checkpoint ckpt;
    ckpt.program_id = program.id;
    ckpt.seed = runtime.seed;
    ckpt.rounds_completed = rounds_completed;
    ckpt.rng_state = rng.state();
    ckpt.solution = result.solution;
    ckpt.coordinator_set = central->current_set();
    ckpt.pool = pool;
    ckpt.best_machine = best_machine;
    ckpt.best_machine_value = best_machine_value;
    ckpt.stats = cluster->stats();
    ckpt.rounds = result.rounds;
    return ckpt;
  }

  dist::Partition make_partition(const RoundSpec& spec) {
    switch (spec.partition) {
      case PartitionStrategy::kRoundRobin:
        return dist::partition_round_robin(ground, program.machines);
      case PartitionStrategy::kUniform:
        return dist::partition_uniform(ground, program.machines, rng);
      case PartitionStrategy::kMultiplicity:
        return dist::partition_multiplicity(ground, program.machines,
                                            spec.multiplicity, rng);
    }
    throw std::logic_error("unknown PartitionStrategy");
  }

  // Builds the round's work in both transport forms: the executable
  // closure (in-process backend) and the declarative WorkerPlan (process
  // backend). Work that only exists as a closure — CustomWorkerFn rounds,
  // factory-built machine oracles, custom central factories — is marked
  // kCustom, which the process backend refuses with an error naming the
  // machine; no registered algorithm hits that path.
  dist::RoundWork make_work(const RoundSpec& spec) const {
    dist::RoundWork work;
    work.plan.seed = runtime.seed;
    work.plan.round = rounds_completed;
    work.plan.worker_oracle = runtime.worker_oracle;
    work.plan.incremental_central = runtime.incremental_gains;

    const bool custom_oracles =
        (program.oracle_factory != nullptr && *program.oracle_factory) ||
        static_cast<bool>(program.central_factory);

    if (const auto* selector = std::get_if<SelectorWorkerSpec>(&spec.worker)) {
      detail::MachineWorkerConfig config;
      config.selector = selector->selector;
      config.stochastic_c = selector->stochastic_c;
      config.stop_when_no_gain = selector->stop_when_no_gain;
      config.budget = selector->budget;
      config.seed = runtime.seed;
      config.round = rounds_completed;
      config.central = central.get();
      config.factory =
          (program.oracle_factory != nullptr && *program.oracle_factory)
              ? program.oracle_factory
              : nullptr;
      config.worker_oracle = runtime.worker_oracle;
      config.bounds =
          (lazy_active && selector->selector == MachineSelector::kLazyGreedy)
              ? &bounds
              : nullptr;
      work.fn = detail::make_machine_worker(config);
      work.plan.kind = custom_oracles ? dist::WorkerPlanKind::kCustom
                                      : dist::WorkerPlanKind::kSelector;
      work.plan.selector = selector->selector;
      work.plan.stochastic_c = selector->stochastic_c;
      work.plan.stop_when_no_gain = selector->stop_when_no_gain;
      work.plan.budget = selector->budget;
      work.plan.lazy_bounds = config.bounds != nullptr;
      work.bounds = config.bounds;
    } else if (const auto* thresh =
                   std::get_if<ThresholdWorkerSpec>(&spec.worker)) {
      detail::ThresholdWorkerConfig config;
      config.threshold = thresh->threshold;
      config.budget = thresh->budget;
      config.central = central.get();
      config.worker_oracle = runtime.worker_oracle;
      work.fn = detail::make_threshold_worker(config);
      work.plan.kind = custom_oracles ? dist::WorkerPlanKind::kCustom
                                      : dist::WorkerPlanKind::kThreshold;
      work.plan.threshold = thresh->threshold;
      work.plan.budget = thresh->budget;
    } else {
      work.fn = std::get<CustomWorkerFn>(spec.worker);
      work.plan.kind = dist::WorkerPlanKind::kCustom;
    }
    if (work.plan.kind != dist::WorkerPlanKind::kCustom) {
      work.plan.committed = central->current_set();
    }
    return work;
  }

  // Coordinator-side seeded lazy greedy: warm-starts the filter's heap from
  // the cross-round store (which run_rounds just refilled with this round's
  // worker-reported gains) and feeds every exact gain it computes back into
  // the store for the next round's workers. Selections are bit-identical to
  // plain lazy_greedy; only the eval count (metered into *avoided) changes.
  GreedyResult central_lazy_greedy(std::span<const ElementId> candidates,
                                   std::size_t budget,
                                   const GreedyOptions& options,
                                   std::uint64_t* avoided) {
    if (!lazy_active) {
      return lazy_greedy(*central, candidates, budget, options);
    }
    LazyGreedyStats stats;
    const GreedyResult selection = lazy_greedy_bounded(
        *central, candidates, budget, options, &bounds, &stats);
    for (std::size_t i = 0; i < stats.eval_ids.size(); ++i) {
      bounds.record(stats.eval_ids[i], stats.eval_gains[i],
                    stats.eval_prefixes[i]);
    }
    *avoided += stats.evals_avoided;
    return selection;
  }

  // Runs the coordinator stage of one round: the filter variant, the
  // best-of-machines probes, the central-stage stats record and the
  // RoundTrace. `worker_avoided` is the sum of the round's worker-side
  // skipped evaluations, folded into the round's evals_avoided alongside
  // whatever the central filter itself skips.
  void run_filter(const RoundSpec& spec,
                  const std::vector<dist::MachineReport>& reports,
                  const GreedyOptions& central_options,
                  std::uint64_t worker_avoided) {
    util::Timer timer;
    const std::uint64_t evals_before = central->evals();
    std::uint64_t merge_evals = 0;
    std::uint64_t avoided = worker_avoided;
    std::size_t added = 0;      // items committed to S this round
    std::size_t gathered = 0;   // pool-accumulate rounds: candidates gained
    const bool pool_round = std::holds_alternative<PoolFilterSpec>(spec.filter);

    if (const auto* f = std::get_if<GreedyFilterSpec>(&spec.filter)) {
      std::vector<ElementId> candidates;
      for (const auto& report : reports) {
        candidates.insert(candidates.end(), report.summary().begin(),
                          report.summary().end());
      }
      const GreedyResult filtered =
          central_lazy_greedy(candidates, f->budget, central_options, &avoided);
      result.solution.insert(result.solution.end(), filtered.picks.begin(),
                             filtered.picks.end());
      added += filtered.picks.size();
    } else if (const auto* adopt =
                   std::get_if<AdoptThenGreedyFilterSpec>(&spec.filter)) {
      // Adopt S1 wholesale (zero-gain members may be dropped from the
      // reported solution: for monotone f they can never gain later).
      for (const ElementId x : reports.front().summary()) {
        const double g = central->add(x);
        if (g > 0.0 || !program.stop_when_no_gain) {
          result.solution.push_back(x);
          ++added;
        }
      }
      std::vector<ElementId> candidates;
      for (std::size_t i = 1; i < reports.size(); ++i) {
        candidates.insert(candidates.end(), reports[i].summary().begin(),
                          reports[i].summary().end());
      }
      const GreedyResult filtered = central_lazy_greedy(
          candidates, adopt->budget, central_options, &avoided);
      result.solution.insert(result.solution.end(), filtered.picks.begin(),
                             filtered.picks.end());
      added += filtered.picks.size();
    } else if (const auto* accept =
                   std::get_if<ThresholdFilterSpec>(&spec.filter)) {
      for (const auto& report : reports) {
        for (const ElementId x : report.summary()) {
          if (result.solution.size() >= accept->solution_cap) break;
          if (central->gain(x) >= accept->threshold) {
            central->add(x);
            result.solution.push_back(x);
            ++added;
          }
        }
      }
    } else if (pool_round) {
      for (const auto& report : reports) {
        pool.insert(pool.end(), report.summary().begin(),
                    report.summary().end());
        gathered += report.summary().size();
      }
      pool = unique_candidates(pool);
    } else {
      const auto& custom = std::get<CustomFilterSpec>(spec.filter);
      std::vector<ElementId> candidates;
      for (const auto& report : reports) {
        candidates.insert(candidates.end(), report.summary().begin(),
                          report.summary().end());
      }
      const std::vector<ElementId> picks = custom.filter(*central, candidates);
      result.solution.insert(result.solution.end(), picks.begin(),
                             picks.end());
      added += picks.size();
    }

    // Best-of-machines tracking: probe each machine's (possibly clamped)
    // summary from scratch against the prototype, in machine order.
    if (program.merge.rule == MergeRule::kBestOfMachines) {
      for (const auto& report : reports) {
        const std::span<const ElementId> prefix(
            report.summary().data(),
            std::min(report.summary().size(), program.merge.probe_prefix));
        const double v = probe_summary(proto, prefix, &merge_evals);
        if (v > best_machine_value) {
          best_machine_value = v;
          best_machine.assign(prefix.begin(), prefix.end());
        }
      }
    }

    cluster->record_central_stage(central->evals() - evals_before,
                                  timer.elapsed_seconds(), added, avoided);
    cluster->mutable_stats().rounds.back().merge_evals = merge_evals;

    RoundTrace trace;
    trace.round = rounds_completed;
    trace.alpha = spec.alpha;
    trace.machines = program.machines;
    trace.machine_budget = spec.machine_budget;
    trace.central_budget = spec.central_budget;
    trace.items_added = pool_round ? gathered : added;
    trace.value_after = pool_round ? best_machine_value : central->value();
    result.rounds.push_back(trace);
  }

  void run_rounds() {
    GreedyOptions central_options{program.stop_when_no_gain};
    if (runtime.parallel_central) {
      central_options.batch.pool = &cluster->pool();
    }

    for (;;) {
      EngineProgress progress;
      progress.round = rounds_completed;
      progress.solution_size = result.solution.size();
      progress.value = central->value();
      progress.pool_size = pool.size();
      const std::optional<RoundSpec> spec = program.next_round(progress);
      if (!spec.has_value()) break;

      dist::Partition partition = make_partition(*spec);
      if (spec->broadcast_pool) {
        for (auto& shard : partition) {
          shard.insert(shard.end(), pool.begin(), pool.end());
        }
      }

      const std::vector<dist::MachineReport> reports =
          cluster->run_round(partition, make_work(*spec));
      std::uint64_t worker_avoided = 0;
      if (lazy_active) {
        // Absorb the round's exported certificates before the filter runs so
        // the central selection warm-starts from worker-computed gains. Any
        // non-clean delivery (truncation, unheard shard) voids the whole
        // round's exports *and* the carried store: a degraded summary may
        // reflect a different delivered set than the one the gains came
        // from, and conservatively dropping everything keeps the invariant
        // "every stored bound is an exact past gain of the coordinator's f".
        const std::size_t base_prefix = central->current_set().size();
        bool clean = true;
        for (const auto& report : reports) {
          if (report.status != dist::DeliveryStatus::kDelivered) clean = false;
          if (report.heard()) worker_avoided += report.worker.evals_avoided;
        }
        if (clean) {
          for (const auto& report : reports) {
            const auto& ids = report.worker.bound_ids;
            const auto& gains = report.worker.bound_gains;
            for (std::size_t i = 0; i < ids.size(); ++i) {
              bounds.record(ids[i], gains[i], base_prefix);
            }
          }
        } else {
          bounds.clear();
        }
      }
      run_filter(*spec, reports, central_options, worker_avoided);
      ++rounds_completed;

      if (runtime.checkpoint_sink) runtime.checkpoint_sink(snapshot());
      if (runtime.halt_after_round != 0 &&
          rounds_completed >= runtime.halt_after_round) {
        halted = true;
        break;
      }
    }
  }

  DistributedResult finish() {
    if (halted) {
      // Partial result of an intentionally stopped run: merge stages are
      // skipped — the emitted checkpoint is the intended artifact.
      result.value = central->value();
      result.stats = cluster->stats();
      result.coordinator_evals = central->evals();
      return std::move(result);
    }

    std::vector<ElementId> final_picks;
    if (program.merge.final_filter_budget > 0 &&
        !cluster->stats().rounds.empty()) {
      // Deferred filter over the accumulated pool (ParallelAlg): the
      // largest candidate set any coordinator stage sees, folded into the
      // last round's central stage.
      util::Timer final_timer;
      GreedyOptions final_options{program.stop_when_no_gain};
      if (runtime.parallel_central) {
        final_options.batch.pool = &cluster->pool();
      }
      const std::uint64_t evals_before = central->evals();
      std::uint64_t final_avoided = 0;
      const GreedyResult filtered =
          central_lazy_greedy(pool, program.merge.final_filter_budget,
                              final_options, &final_avoided);
      final_picks = filtered.picks;
      auto& last = cluster->mutable_stats().rounds.back();
      last.central_evals += central->evals() - evals_before;
      last.central_seconds += final_timer.elapsed_seconds();
      last.central_selected = filtered.picks.size();
      // Folded in post-span like merge_evals: the final filter belongs to
      // the last round's stats row, but its span already fired.
      last.evals_avoided += final_avoided;
    }

    if (program.merge.rule == MergeRule::kBestOfMachines) {
      const bool deferred = program.merge.final_filter_budget > 0;
      if (deferred) result.solution = std::move(final_picks);
      if (best_machine_value > central->value()) {
        result.solution = best_machine;
        result.value = best_machine_value;
      } else {
        result.value = central->value();
      }
      if (!result.rounds.empty()) {
        RoundTrace& last = result.rounds.back();
        if (deferred) {
          last.central_budget = program.merge.final_filter_budget;
        } else {
          last.items_added = result.solution.size();
        }
        last.value_after = result.value;
      }
    } else {
      result.value = central->value();
    }

    result.stats = cluster->stats();
    result.coordinator_evals = central->evals();
    return std::move(result);
  }
};

}  // namespace

std::size_t default_machine_count(std::size_t ground_size,
                                  std::size_t machine_budget) {
  if (ground_size == 0) return 1;
  const double ratio =
      static_cast<double>(ground_size) /
      static_cast<double>(std::max<std::size_t>(1, machine_budget));
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(std::sqrt(ratio))));
}

DistributedResult run_round_program(const SubmodularOracle& proto,
                                    std::span<const ElementId> ground,
                                    const RoundProgram& program,
                                    const RuntimeOptions& runtime) {
  EngineRun run(proto, ground, program, runtime);
  run.initialize();
  run.run_rounds();
  return run.finish();
}

// ---------------------------------------------------------------------------
// Checkpoint serialization entry points

std::string Checkpoint::serialize() const {
  std::ostringstream out;
  out << "bdsckpt " << kVersion << '\n';
  out << "program " << program_id << '\n';
  out << "seed " << seed << '\n';
  out << "rounds_completed " << rounds_completed << '\n';
  out << "rng " << rng_state[0] << ' ' << rng_state[1] << ' ' << rng_state[2]
      << ' ' << rng_state[3] << '\n';
  write_ids(out, "solution", solution);
  write_ids(out, "coordinator_set", coordinator_set);
  write_ids(out, "pool", pool);
  write_ids(out, "best_machine", best_machine);
  out << "best_value " << double_bits(best_machine_value) << '\n';
  out << "stats_rounds " << stats.rounds.size() << '\n';
  for (const dist::RoundStats& r : stats.rounds) serialize_round_stats(out, r);
  out << "trace_rounds " << stats.trace.rounds.size() << '\n';
  for (const dist::RoundSpan& span : stats.trace.rounds) {
    serialize_round_span(out, span);
  }
  out << "round_traces " << rounds.size() << '\n';
  for (const RoundTrace& t : rounds) serialize_round_trace(out, t);
  out << "end\n";
  return std::move(out).str();
}

Checkpoint Checkpoint::deserialize(std::string_view text) {
  TokenReader in(text, "checkpoint");
  in.expect("bdsckpt");
  const std::uint64_t version = in.u64();
  if (version != kVersion) {
    throw std::invalid_argument("checkpoint: unsupported version " +
                                std::to_string(version));
  }
  Checkpoint ckpt;
  in.expect("program");
  ckpt.program_id = in.word();
  in.expect("seed");
  ckpt.seed = in.u64();
  in.expect("rounds_completed");
  ckpt.rounds_completed = in.size();
  in.expect("rng");
  for (auto& word : ckpt.rng_state) word = in.u64();
  ckpt.solution = in.ids("solution");
  ckpt.coordinator_set = in.ids("coordinator_set");
  ckpt.pool = in.ids("pool");
  ckpt.best_machine = in.ids("best_machine");
  in.expect("best_value");
  ckpt.best_machine_value = in.real();
  in.expect("stats_rounds");
  ckpt.stats.rounds.resize(in.size());
  for (auto& r : ckpt.stats.rounds) r = deserialize_round_stats(in);
  in.expect("trace_rounds");
  ckpt.stats.trace.rounds.resize(in.size());
  for (auto& span : ckpt.stats.trace.rounds) {
    span = deserialize_round_span(in);
  }
  in.expect("round_traces");
  ckpt.rounds.resize(in.size());
  for (auto& t : ckpt.rounds) t = deserialize_round_trace(in);
  in.expect("end");
  return ckpt;
}

void save_checkpoint_file(const Checkpoint& checkpoint,
                          const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      throw std::runtime_error("checkpoint: cannot write " + tmp);
    }
    out << checkpoint.serialize();
    if (!out.flush()) {
      throw std::runtime_error("checkpoint: short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("checkpoint: cannot rename into " + path);
  }
}

Checkpoint load_checkpoint_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("checkpoint: cannot read " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Checkpoint::deserialize(std::move(buffer).str());
}

}  // namespace bds
