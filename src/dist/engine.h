// RoundEngine — the single executor behind every distributed algorithm.
//
// Algorithms declare their rounds as a RoundProgram (core/round_spec.h);
// the engine owns everything the eight hand-copied loops used to own:
//
//   * the coordinator oracle (clone of the prototype, optionally upgraded
//     to incremental coverage gains) and its eval-delta accounting;
//   * the dist::Cluster simulator (host threads, fault injection, retries,
//     structured round spans) and the partitioning RNG;
//   * the gather -> filter -> merge stages, RoundTrace construction and
//     uniform central-stage stats (per-round eval *deltas*, so
//     Σ rounds.central_evals always equals the coordinator oracle's total;
//     best-of-machines merge probes are metered into
//     RoundStats::merge_evals);
//   * checkpoint/resume: after each round the engine can serialize
//     coordinator state through RuntimeOptions::checkpoint_sink, and a run
//     started with RuntimeOptions::resume_from continues a killed execution
//     to the exact same output — including under an injected FaultPlan,
//     whose decisions are a pure hash of (round, machine, attempt).
//
// Determinism contract: for a fixed program, runtime and prototype oracle,
// the engine's solution, value and deterministic stats fields are
// bit-identical at any host thread count, and bit-identical to the
// pre-engine per-algorithm loops (tests/test_engine.cpp proves this against
// a frozen copy of the legacy implementations).
#pragma once

#include <span>
#include <string>

#include "core/distributed.h"
#include "core/round_spec.h"
#include "core/runtime_options.h"
#include "objectives/submodular.h"

namespace bds {

// Executes `program` against `proto` / `ground` under `runtime` and returns
// the accumulated result. `proto` must outlive the call; when
// `runtime.resume_from` is set the snapshot is validated (program id,
// seed and format version; std::invalid_argument on mismatch) and the run
// continues after its last completed round.
DistributedResult run_round_program(const SubmodularOracle& proto,
                                    std::span<const ElementId> ground,
                                    const RoundProgram& program,
                                    const RuntimeOptions& runtime);

// Checkpoint file helpers for CLI/tooling (--checkpoint-dir / --resume):
// atomic-enough single-file write (temp + rename) and a loader that throws
// std::runtime_error when the file is unreadable and std::invalid_argument
// when its contents are malformed or version-mismatched.
void save_checkpoint_file(const Checkpoint& checkpoint,
                          const std::string& path);
Checkpoint load_checkpoint_file(const std::string& path);

}  // namespace bds
