// In-process simulator of the paper's distributed execution model.
//
// The paper's algorithms run on a MapReduce-style cluster: a coordinator
// scatters the ground set across m workers, every worker runs greedy on its
// shard and returns a summary (a subset of its element ids), and the
// coordinator filters the union. We reproduce that round structure exactly,
// running workers concurrently on a thread pool, and we meter what a real
// deployment would care about:
//
//   * rounds           — coordinator <-> worker interactions (the paper's r);
//   * communication    — element ids shipped worker-ward (scatter) and
//                        coordinator-ward (gather), reported in bytes;
//   * worker load      — per-machine items held and oracle evaluations;
//   * critical path    — Σ over rounds of (slowest worker + coordinator
//                        stage), in both oracle-evaluation and wall-clock
//                        terms. On a real cluster the workers of one round
//                        run simultaneously, so this is the simulated
//                        distributed makespan; it backs the §4.2 speed-up
//                        experiment.
//   * faults           — a seeded FaultPlan (dist/faults.h) injects worker
//                        crashes, lost/truncated summaries and straggler
//                        slowdowns per (round, machine, attempt); a
//                        RetryPolicy re-executes failed machines and, past
//                        the budget, the round continues on the surviving
//                        summaries with the unheard shards recorded.
//
// Determinism contract: a fixed FaultPlan + seed produces bit-identical
// summaries, selections and eval accounting at any host thread count, and
// an all-healthy plan is bit-identical to the fault-free executor.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "dist/faults.h"
#include "dist/partitioner.h"
#include "dist/thread_pool.h"
#include "dist/trace.h"
#include "util/element.h"

namespace bds::dist {

// Execution backend seam (dist/transport.h): where a worker attempt
// physically runs — in-process closure or a forked bds_worker process.
class ClusterTransport;
struct RoundWork;

// What one worker observes and returns from one execution attempt. This is
// strictly the worker's own view — the cluster stamps timing, retry and
// delivery metadata on top of it (see MachineReport).
struct WorkerOutput {
  std::vector<ElementId> summary;  // elements sent back to the coordinator
  std::uint64_t oracle_evals = 0;  // function evaluations spent by the worker
  // Heap bytes of the worker's oracle state (clone or compacted view) —
  // what materializing this machine cost in memory.
  std::uint64_t state_bytes = 0;
  // Lazy-bound certificates (core/bound_heap.h): exact gains this worker
  // computed at the round's shared committed prefix (parallel id/gain
  // arrays), exportable as upper bounds for later rounds, plus the
  // evaluations lazy pruning saved vs. an eager re-scan. Empty/zero when
  // the bound substrate is off. Certificate traffic is not counted into
  // gather bytes — oracle evaluations are the paper's cost model, and the
  // bounds ride the summary message a real deployment already sends.
  std::vector<ElementId> bound_ids;
  std::vector<double> bound_gains;
  std::uint64_t evals_avoided = 0;
};

// Delivery outcome for one machine after faults and retries resolve.
enum class DeliveryStatus : std::uint8_t {
  kDelivered,  // final attempt's summary reached the coordinator intact
  kDegraded,   // delivered, but the summary was truncated by a fault
  kUnheard,    // retry budget exhausted; the shard contributed nothing
};

// What the coordinator sees for one machine in one round: the worker's
// (possibly degraded) output plus the cluster-stamped execution record.
struct MachineReport {
  WorkerOutput worker;             // worker-observed fields (empty if unheard)
  // Cluster-stamped: total wall-clock seconds across attempts, including
  // straggler inflation and retry backoff.
  double seconds = 0.0;
  std::size_t attempts = 1;        // executions of the worker body
  FaultKind last_fault = FaultKind::kNone;  // injected-fault tag (final attempt)
  DeliveryStatus status = DeliveryStatus::kDelivered;

  bool heard() const noexcept { return status != DeliveryStatus::kUnheard; }
  const std::vector<ElementId>& summary() const noexcept {
    return worker.summary;
  }
};

// Accounting for one scatter -> map -> gather -> filter round.
struct RoundStats {
  std::size_t round_index = 0;
  std::size_t machines_used = 0;        // machines that received >= 1 item
  std::uint64_t elements_scattered = 0; // total slots incl. multiplicity
  std::uint64_t elements_gathered = 0;  // summed delivered summary sizes
  // Delivered-work accounting (bit-identical to the fault-free executor for
  // any plan whose retries eventually deliver every machine):
  std::uint64_t worker_evals = 0;       // delivered attempts, summed
  std::uint64_t max_machine_evals = 0;  // slowest delivered attempt
  double max_machine_seconds = 0.0;     // slowest machine incl. retries
  double sum_machine_seconds = 0.0;
  std::uint64_t max_machine_items = 0;
  // Worker oracle memory: bytes of oracle state materialized across the
  // round's machines, and the single largest worker footprint. Under clone
  // workers these scale with m·|ground-set state|; under shard views they
  // scale with the scattered shards.
  std::uint64_t bytes_cloned = 0;
  std::uint64_t peak_worker_state_bytes = 0;
  // Fault/retry ledger: work burnt by failed attempts, re-executions,
  // injected fault events, shards that went unheard, and the deterministic
  // backoff charged between attempts.
  std::uint64_t wasted_evals = 0;
  std::uint64_t retries = 0;
  std::uint64_t faults_injected = 0;
  std::size_t machines_unheard = 0;
  double backoff_seconds = 0.0;
  // Coordinator filter stage (recorded via Cluster::record_central_stage).
  std::uint64_t central_evals = 0;
  double central_seconds = 0.0;
  std::uint64_t central_selected = 0;
  // Oracle evaluations the lazy-bound substrate saved this round (workers +
  // coordinator filter), measured against a full eager re-scan of the same
  // selections. 0 when BDS_LAZY=off.
  std::uint64_t evals_avoided = 0;
  // Best-of-machines merge probes: evaluations spent re-scoring candidate
  // machine summaries from scratch against the prototype oracle (the
  // GreeDi-family output rule). Metered separately from central_evals —
  // these probes run on throwaway clones, not the coordinator oracle.
  std::uint64_t merge_evals = 0;
};

// A simple network-cost model for translating the simulator's communication
// counters into modeled cluster time: each round pays a fixed latency (the
// shuffle barrier) plus bytes / bandwidth for its scatter + gather traffic.
struct NetworkModel {
  double round_latency_seconds = 1e-3;       // per-round barrier cost
  double bytes_per_second = 125e6;           // 1 Gbit/s default
};

// Whole-execution accounting across rounds.
struct ExecutionStats {
  std::vector<RoundStats> rounds;
  // Structured per-round spans (phases, attempts, fault tags); see
  // dist/trace.h. Travels with the stats into every DistributedResult.
  ExecutionTrace trace;

  std::size_t num_rounds() const noexcept { return rounds.size(); }
  std::uint64_t total_worker_evals() const noexcept;
  std::uint64_t total_central_evals() const noexcept;
  // Best-of-machines merge probe evaluations across rounds (see
  // RoundStats::merge_evals); not part of total_evals(), which keeps its
  // historical worker + central definition.
  std::uint64_t total_merge_evals() const noexcept;
  std::uint64_t total_evals() const noexcept;
  // Evaluations the lazy-bound substrate saved across rounds (see
  // RoundStats::evals_avoided); informational, never part of total_evals().
  std::uint64_t total_evals_avoided() const noexcept;
  // Scatter + gather traffic in bytes (sizeof(ElementId) per shipped id).
  std::uint64_t bytes_communicated() const noexcept;
  // Worker oracle state materialized across all rounds / its per-worker peak.
  std::uint64_t total_bytes_cloned() const noexcept;
  std::uint64_t peak_worker_state_bytes() const noexcept;
  // Fault/retry totals across rounds.
  std::uint64_t total_wasted_evals() const noexcept;
  std::uint64_t total_retries() const noexcept;
  std::uint64_t total_faults_injected() const noexcept;
  std::size_t total_machines_unheard() const noexcept;
  // Simulated distributed makespan: slowest worker + coordinator, per round.
  double critical_path_seconds() const noexcept;
  std::uint64_t critical_path_evals() const noexcept;
  // Total sequential work (what a single machine would have to do).
  double total_work_seconds() const noexcept;
  // Modeled distributed wall clock: critical-path compute plus the network
  // model's per-round latency and transfer time.
  double modeled_cluster_seconds(const NetworkModel& network) const noexcept;
};

// Runtime knobs of the simulator itself (host threading, fault injection,
// retry semantics, tracing). bds::RuntimeOptions (core/runtime_options.h)
// carries these plus the algorithm-facing knobs.
struct ClusterOptions {
  // Host threads running workers concurrently; 0 = hardware default.
  std::size_t threads = 0;
  FaultPlan faults;     // all-healthy default == legacy executor
  RetryPolicy retry;
  TraceSink trace_sink; // optional per-round span callback
  // Execution backend for worker attempts; null = the in-process default
  // (dist/transport.h). Shared because the engine builds the backend and
  // the cluster must keep it alive for its own lifetime.
  std::shared_ptr<ClusterTransport> transport;
};

// The simulator. One Cluster instance is reused across the r rounds of an
// algorithm execution; stats accumulate per round.
class Cluster {
 public:
  // machines: logical worker count (the paper's m).
  explicit Cluster(std::size_t machines, const ClusterOptions& options);

  // Legacy shape: fault-free executor with `threads` host threads.
  explicit Cluster(std::size_t machines, std::size_t threads = 0);

  std::size_t machines() const noexcept { return machines_; }
  const FaultPlan& fault_plan() const noexcept { return faults_; }
  const RetryPolicy& retry_policy() const noexcept { return retry_; }

  // Worker body: given (machine index, shard) produce a WorkerOutput.
  // Invoked concurrently — must not share mutable state across machines —
  // and possibly more than once per round (retries re-execute it), so it
  // must be deterministic in (machine, shard) for retry convergence.
  using WorkerFn =
      std::function<WorkerOutput(std::size_t, std::span<const ElementId>)>;

  // Runs one scatter -> map -> gather round over a prepared partition,
  // injecting the configured faults and retrying failed machines, and
  // returns the per-machine reports (indexed by machine). Starts a new
  // RoundStats entry + RoundSpan; the caller completes them with
  // record_central_stage(). Precondition: partition.size() == machines().
  // Attempts execute on the configured ClusterTransport; the RoundWork form
  // carries the wire-serializable WorkerPlan the process backend needs, the
  // WorkerFn form wraps the closure as in-process-only custom work.
  std::vector<MachineReport> run_round(const Partition& partition,
                                       const RoundWork& work);
  std::vector<MachineReport> run_round(const Partition& partition,
                                       const WorkerFn& worker);

  // The execution backend attempts run on (never null after construction).
  const ClusterTransport& transport() const noexcept { return *transport_; }

  // Records the coordinator's filtering stage for the most recent round,
  // completes the round's trace span and fires the trace sink.
  // `evals_avoided` is the round's whole lazy-bound saving (workers +
  // filter); it must be passed here — not patched in afterwards — because
  // this call publishes the span to the sink. Precondition: run_round()
  // has been called at least once.
  void record_central_stage(std::uint64_t evals, double seconds,
                            std::uint64_t selected,
                            std::uint64_t evals_avoided = 0);

  const ExecutionStats& stats() const noexcept { return stats_; }
  ExecutionStats& mutable_stats() noexcept { return stats_; }

  // The host thread pool backing the simulated machines. Between rounds it
  // is idle, so the coordinator's filter stage may borrow it for parallel
  // batch evaluation (core/batch_eval.h) — on a real cluster the central
  // machine's cores are likewise free while no round is in flight.
  ThreadPool& pool() noexcept { return pool_; }

 private:
  // Executes one machine's attempt loop (faults, retries, backoff) and
  // returns its report + span. Deterministic per (round, machine, shard).
  MachineReport run_machine(std::size_t round, std::size_t machine,
                            std::span<const ElementId> shard,
                            const RoundWork& work, MachineSpan& span) const;

  std::size_t machines_;
  FaultPlan faults_;
  RetryPolicy retry_;
  TraceSink trace_sink_;
  std::shared_ptr<ClusterTransport> transport_;
  ThreadPool pool_;
  ExecutionStats stats_;
};

}  // namespace bds::dist
