// Human-readable rendering of ExecutionStats: the per-round scatter/work/
// filter ledger plus totals — what you'd read off a MapReduce job page.
// Used by the CLI's --verbose mode and available to any tool.
#pragma once

#include <string>

#include "dist/cluster.h"

namespace bds::dist {

// Multi-line table: one row per round (machines, elements scattered and
// gathered, worker evaluations total and max-machine, coordinator
// evaluations and selections) followed by a fault/retry line (when any
// faults were injected) and a totals/derived block (communication bytes,
// critical-path evaluations and seconds, total work).
std::string render_execution_report(const ExecutionStats& stats);

}  // namespace bds::dist
