// ClusterTransport — the one seam between "what a round's workers compute"
// and "where they physically run".
//
// dist::Cluster owns the round structure (fault schedule, retries, stats,
// spans). What it delegates is a single worker *attempt*: "execute machine
// i's work over this shard and give me its WorkerOutput". A transport is an
// implementation of that attempt:
//
//   * in-process (make_inproc_transport, the default) — runs the round's
//     WorkerFn closure directly on the calling pool thread. This is the
//     original simulator behaviour and stays the test backend.
//   * multi-process (make_process_transport) — forks/execs one bds_worker
//     process per logical machine and speaks the length-framed, versioned
//     wire protocol of dist/wire.h over a socketpair. The paper's machines
//     become literal: a worker holds only its shard, sees the coordinator
//     state only through the request message, and can be SIGKILL'd without
//     taking the coordinator down (the attempt surfaces as `crashed` and
//     the existing retry machinery re-runs it on a respawned process).
//
// Because in-process workers are closures, a RoundWork carries *two*
// descriptions of the same computation: the closure (`fn`, what the inproc
// backend calls) and a declarative WorkerPlan (what the process backend
// serializes for bds_worker to re-execute through the exact same
// detail::make_machine_worker code path). Both describe bit-identical
// work; the cross-backend golden suite holds the seam to that contract.
//
// Determinism: run_attempt is called concurrently from the cluster's pool
// threads (one machine per thread) and possibly repeatedly per machine
// (retries). A transport must be thread-safe across machines and must
// return a pure function of (round, machine, shard, work) in every field
// the determinism contract covers (summary, eval counts, bound exports);
// `seconds` and wire-byte counts are reporting, not contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/bound_heap.h"
#include "core/distributed.h"
#include "dist/cluster.h"
#include "dist/faults.h"
#include "util/element.h"

namespace bds::dist {

// Which canonical worker shape a round runs. Only the two declarative
// shapes cross a process boundary; kCustom work (matroid machines,
// factory-built oracles, ad-hoc test lambdas) exists solely as a closure
// and is rejected by the process backend with an error naming the machine.
enum class WorkerPlanKind : std::uint8_t {
  kSelector = 0,   // greedy / lazy greedy / stochastic greedy over the shard
  kThreshold = 1,  // GreedyScaling's threshold-τ accept pass
  kCustom = 2,     // closure-only; in-process execution required
};

// Declarative, wire-serializable description of one round's worker body —
// everything bds_worker needs to rebuild the in-process worker verbatim:
// the selector knobs of detail::MachineWorkerConfig plus the coordinator's
// committed set (replayed remotely so local gains are marginals on top of
// the same S) and the oracle-mode flags that shape eval accounting.
struct WorkerPlan {
  WorkerPlanKind kind = WorkerPlanKind::kCustom;

  // kSelector fields (detail::MachineWorkerConfig mirror).
  MachineSelector selector = MachineSelector::kLazyGreedy;
  double stochastic_c = 3.0;
  bool stop_when_no_gain = true;
  std::size_t budget = 0;

  // kThreshold field (the accept threshold; budget above caps the keeps).
  double threshold = 0.0;

  // Shared execution context.
  std::uint64_t seed = 1;   // base seed; per-machine streams are derived
  std::size_t round = 0;    // round index, mixed into per-machine seeds
  WorkerOracleMode worker_oracle = WorkerOracleMode::kShardView;
  // Rebuild the remote coordinator oracle with incremental coverage gains
  // (detail::make_central_oracle's upgrade) so worker clones/views match
  // the in-process oracle type bit-for-bit.
  bool incremental_central = false;
  // Lazy-bound substrate active for this round's workers: the request
  // carries shard-restricted warm-start certificates and the response
  // carries the worker's base-prefix bound exports.
  bool lazy_bounds = false;
  // The coordinator's exact committed set (selection order).
  std::vector<ElementId> committed;
};

// One round's worker work, in both executable forms. `fn` is always set
// and is what the in-process backend runs; `plan` is what the process
// backend ships. `bounds` is the coordinator's read-only bound store for
// the round (nullptr when the substrate is off) — the process backend
// extracts each shard's certificates from it into the request message.
struct RoundWork {
  Cluster::WorkerFn fn;
  WorkerPlan plan;
  const detail::BoundStore* bounds = nullptr;
};

// What one transport attempt produced. `crashed` reports a *real* worker
// death (process exited / socket broke before a response arrived) — the
// cluster maps it to FaultKind::kCrash and retries; the injected-fault
// bookkeeping stays with the cluster.
struct AttemptResult {
  WorkerOutput output;
  double seconds = 0.0;  // worker compute wall clock (reporting only)
  bool crashed = false;
  std::uint64_t wire_bytes_sent = 0;      // 0 for in-process
  std::uint64_t wire_bytes_received = 0;  // 0 for in-process
};

class ClusterTransport {
 public:
  virtual ~ClusterTransport() = default;

  // Stable backend name, recorded into every RoundSpan ("inproc",
  // "process").
  virtual std::string_view name() const noexcept = 0;

  // Executes one worker attempt. `injected` is the cluster's fault decision
  // for this (round, machine, attempt): the in-process backend ignores it
  // (the cluster simulates the fault's effect on delivery), the process
  // backend forwards kCrash so the worker genuinely dies after reporting
  // its telemetry — keeping wasted-eval accounting bit-identical to the
  // simulator while exercising a real respawn on the next attempt.
  // Throws on unrecoverable transport errors (unserializable plan, spawn
  // failure, protocol violation), naming the worker.
  virtual AttemptResult run_attempt(std::size_t round, std::size_t machine,
                                    std::size_t attempt, FaultKind injected,
                                    std::span<const ElementId> shard,
                                    const RoundWork& work) = 0;
};

// The default backend: runs RoundWork::fn on the calling thread.
std::shared_ptr<ClusterTransport> make_inproc_transport();

// Everything the process backend needs to spawn and provision its workers.
struct ProcessTransportConfig {
  std::size_t machines = 1;
  // Ground-set size of the corpus (sizes the remote BoundStore).
  std::size_t ground_size = 0;
  // Worker binary path. Empty resolves, in order: $BDS_WORKER, then
  // "bds_worker" next to the current executable.
  std::string worker_binary;
  // Serialized data::CorpusSpec handed to each worker at handshake so it
  // can load the dataset and rebuild the prototype oracle machine-locally.
  std::string corpus_spec;
};

// The multi-process backend: one forked bds_worker per logical machine,
// spawned lazily on first use and reaped on destruction (or respawned
// after a crash). Throws std::runtime_error from run_attempt on protocol
// errors; returns crashed=true for real worker deaths.
std::shared_ptr<ClusterTransport> make_process_transport(
    const ProcessTransportConfig& config);

}  // namespace bds::dist
