#include "dist/wire.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "util/serialize.h"

namespace bds::dist::wire {

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

bool valid_type(std::uint32_t type) {
  return type >= static_cast<std::uint32_t>(FrameType::kHello) &&
         type <= static_cast<std::uint32_t>(FrameType::kShutdown);
}

// A peer that vanished mid-conversation is a crash, not a protocol bug.
bool is_disconnect(int err) {
  return err == EPIPE || err == ECONNRESET || err == ESHUTDOWN;
}

// send() when fd is a socket (MSG_NOSIGNAL: a dead peer yields EPIPE, not
// a process-killing SIGPIPE); write() fallback for pipes in tests.
ssize_t write_some(int fd, const char* data, std::size_t len) {
  const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
  if (n < 0 && errno == ENOTSOCK) return ::write(fd, data, len);
  return n;
}

}  // namespace

std::string encode_frame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(kHeaderBytes + payload.size());
  put_u32(out, kMagic);
  put_u32(out, kVersion);
  put_u32(out, static_cast<std::uint32_t>(type));
  put_u64(out, payload.size());
  out.append(payload);
  return out;
}

IoStatus write_frame(int fd, FrameType type, std::string_view payload,
                     std::uint64_t* bytes, const std::string& peer) {
  const std::string frame = encode_frame(type, payload);
  std::size_t written = 0;
  while (written < frame.size()) {
    const ssize_t n =
        write_some(fd, frame.data() + written, frame.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (is_disconnect(errno)) return IoStatus::kClosed;
      throw WireError(peer + ": write failed: " + std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  if (bytes != nullptr) *bytes += frame.size();
  return IoStatus::kOk;
}

IoStatus read_frame(int fd, Frame* frame, std::uint64_t* bytes,
                    const std::string& peer) {
  unsigned char header[kHeaderBytes];
  std::size_t have = 0;
  while (have < kHeaderBytes) {
    const ssize_t n = ::read(fd, header + have, kHeaderBytes - have);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (is_disconnect(errno)) return IoStatus::kClosed;
      throw WireError(peer + ": read failed: " + std::strerror(errno));
    }
    if (n == 0) {
      // Clean close between frames is the peer hanging up; a close with a
      // partial header on the wire is corruption.
      if (have == 0) return IoStatus::kClosed;
      throw WireError(peer + ": truncated frame header (" +
                      std::to_string(have) + " of " +
                      std::to_string(kHeaderBytes) + " bytes)");
    }
    have += static_cast<std::size_t>(n);
  }

  const std::uint32_t magic = get_u32(header);
  if (magic != kMagic) {
    throw WireError(peer + ": bad frame magic 0x" + [magic] {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%08x", magic);
      return std::string(buf);
    }());
  }
  const std::uint32_t version = get_u32(header + 4);
  if (version != kVersion) {
    throw WireError(peer + ": wire version skew: peer speaks " +
                    std::to_string(version) + ", this build speaks " +
                    std::to_string(kVersion));
  }
  const std::uint32_t type = get_u32(header + 8);
  if (!valid_type(type)) {
    throw WireError(peer + ": unknown frame type " + std::to_string(type));
  }
  const std::uint64_t length = get_u64(header + 12);
  if (length > kMaxPayload) {
    throw WireError(peer + ": oversized frame: " + std::to_string(length) +
                    " bytes exceeds the " + std::to_string(kMaxPayload) +
                    "-byte cap");
  }

  frame->type = static_cast<FrameType>(type);
  frame->payload.assign(length, '\0');
  std::size_t got = 0;
  while (got < length) {
    const ssize_t n =
        ::read(fd, frame->payload.data() + got, length - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (is_disconnect(errno)) return IoStatus::kClosed;
      throw WireError(peer + ": read failed: " + std::strerror(errno));
    }
    if (n == 0) {
      throw WireError(peer + ": truncated frame payload (" +
                      std::to_string(got) + " of " + std::to_string(length) +
                      " bytes)");
    }
    got += static_cast<std::size_t>(n);
  }
  if (bytes != nullptr) *bytes += kHeaderBytes + length;
  return IoStatus::kOk;
}

// ---------------------------------------------------------------------------
// Payload codecs

namespace {

void encode_output_fields(std::ostream& out, const WorkerOutput& output) {
  util::write_ids(out, "summary", output.summary);
  out << "evals " << output.oracle_evals << '\n';
  out << "state_bytes " << output.state_bytes << '\n';
  util::write_ids(out, "bound_ids", output.bound_ids);
  out << "bound_gains ";
  util::write_reals(out, output.bound_gains);
  out << '\n';
  out << "evals_avoided " << output.evals_avoided << '\n';
}

WorkerOutput decode_output_fields(util::TokenReader& in) {
  WorkerOutput output;
  output.summary = in.ids("summary");
  in.expect("evals");
  output.oracle_evals = in.u64();
  in.expect("state_bytes");
  output.state_bytes = in.u64();
  output.bound_ids = in.ids("bound_ids");
  in.expect("bound_gains");
  output.bound_gains = in.reals();
  in.expect("evals_avoided");
  output.evals_avoided = in.u64();
  return output;
}

}  // namespace

std::string encode_hello(const Hello& hello) {
  std::ostringstream out;
  out << "hello " << hello.machine << ' ' << hello.ground_size << '\n';
  out << "corpus ";
  util::write_blob(out, hello.corpus_spec);
  out << '\n';
  out << "end\n";
  return std::move(out).str();
}

Hello decode_hello(std::string_view payload, const std::string& context) {
  util::TokenReader in(payload, context);
  in.expect("hello");
  Hello hello;
  hello.machine = in.size();
  hello.ground_size = in.size();
  in.expect("corpus");
  hello.corpus_spec = in.blob();
  in.expect("end");
  return hello;
}

std::string encode_hello_ack(std::int64_t pid) {
  return "pid " + std::to_string(pid) + "\n";
}

std::int64_t decode_hello_ack(std::string_view payload,
                              const std::string& context) {
  util::TokenReader in(payload, context);
  in.expect("pid");
  return static_cast<std::int64_t>(in.u64());
}

std::string encode_request(const AttemptRequest& request) {
  std::ostringstream out;
  out << "attempt " << request.round << ' ' << request.machine << ' '
      << request.attempt << ' ' << static_cast<unsigned>(request.fault)
      << '\n';
  const WorkerPlan& plan = request.plan;
  out << "plan " << static_cast<unsigned>(plan.kind) << ' '
      << static_cast<unsigned>(plan.selector) << ' '
      << util::double_bits(plan.stochastic_c) << ' '
      << (plan.stop_when_no_gain ? 1 : 0) << ' ' << plan.budget << ' '
      << util::double_bits(plan.threshold) << ' ' << plan.seed << ' '
      << plan.round << ' ' << static_cast<unsigned>(plan.worker_oracle)
      << ' ' << (plan.incremental_central ? 1 : 0) << ' '
      << (plan.lazy_bounds ? 1 : 0) << '\n';
  util::write_ids(out, "committed", plan.committed);
  util::write_ids(out, "shard", request.shard);
  util::write_ids(out, "bound_ids", request.bound_ids);
  out << "bound_gains ";
  util::write_reals(out, request.bound_gains);
  out << '\n';
  out << "bound_prefixes ";
  util::write_indices(out, request.bound_prefixes);
  out << '\n';
  out << "end\n";
  return std::move(out).str();
}

AttemptRequest decode_request(std::string_view payload,
                              const std::string& context) {
  util::TokenReader in(payload, context);
  AttemptRequest request;
  in.expect("attempt");
  request.round = in.size();
  request.machine = in.size();
  request.attempt = in.size();
  request.fault = static_cast<FaultKind>(in.u64());
  in.expect("plan");
  WorkerPlan& plan = request.plan;
  plan.kind = static_cast<WorkerPlanKind>(in.u64());
  plan.selector = static_cast<MachineSelector>(in.u64());
  plan.stochastic_c = in.real();
  plan.stop_when_no_gain = in.flag();
  plan.budget = in.size();
  plan.threshold = in.real();
  plan.seed = in.u64();
  plan.round = in.size();
  plan.worker_oracle = static_cast<WorkerOracleMode>(in.u64());
  plan.incremental_central = in.flag();
  plan.lazy_bounds = in.flag();
  plan.committed = in.ids("committed");
  request.shard = in.ids("shard");
  request.bound_ids = in.ids("bound_ids");
  in.expect("bound_gains");
  request.bound_gains = in.reals();
  in.expect("bound_prefixes");
  request.bound_prefixes = in.indices();
  in.expect("end");
  return request;
}

std::string encode_response(const AttemptResponse& response) {
  std::ostringstream out;
  out << "seconds " << util::double_bits(response.seconds) << '\n';
  encode_output_fields(out, response.output);
  out << "end\n";
  return std::move(out).str();
}

AttemptResponse decode_response(std::string_view payload,
                                const std::string& context) {
  util::TokenReader in(payload, context);
  AttemptResponse response;
  in.expect("seconds");
  response.seconds = in.real();
  response.output = decode_output_fields(in);
  in.expect("end");
  return response;
}

std::string encode_worker_output(const WorkerOutput& output) {
  std::ostringstream out;
  encode_output_fields(out, output);
  out << "end\n";
  return std::move(out).str();
}

WorkerOutput decode_worker_output(std::string_view payload,
                                  const std::string& context) {
  util::TokenReader in(payload, context);
  WorkerOutput output = decode_output_fields(in);
  in.expect("end");
  return output;
}

std::string encode_machine_report(const MachineReport& report) {
  std::ostringstream out;
  encode_output_fields(out, report.worker);
  out << "seconds " << util::double_bits(report.seconds) << '\n';
  out << "attempts " << report.attempts << '\n';
  out << "last_fault " << static_cast<unsigned>(report.last_fault) << '\n';
  out << "status " << static_cast<unsigned>(report.status) << '\n';
  out << "end\n";
  return std::move(out).str();
}

MachineReport decode_machine_report(std::string_view payload,
                                    const std::string& context) {
  util::TokenReader in(payload, context);
  MachineReport report;
  report.worker = decode_output_fields(in);
  in.expect("seconds");
  report.seconds = in.real();
  in.expect("attempts");
  report.attempts = in.size();
  in.expect("last_fault");
  report.last_fault = static_cast<FaultKind>(in.u64());
  in.expect("status");
  report.status = static_cast<DeliveryStatus>(in.u64());
  in.expect("end");
  return report;
}

}  // namespace bds::dist::wire
