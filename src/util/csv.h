// Minimal RFC-4180-ish CSV writer. Benches optionally mirror each printed
// table to a CSV file (BDS_CSV_DIR env var) for downstream plotting.
#pragma once

#include <fstream>
#include <optional>
#include <string>
#include <vector>

namespace bds::util {

class CsvWriter {
 public:
  // Opens `path` for writing and emits the header row.
  // Throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  // Writes one data row; cells containing commas/quotes/newlines are quoted.
  void write_row(const std::vector<std::string>& cells);

  std::size_t rows_written() const noexcept { return rows_; }

 private:
  std::ofstream out_;
  std::size_t rows_ = 0;

  void write_cells(const std::vector<std::string>& cells);
};

// If the BDS_CSV_DIR environment variable is set, returns
// "<BDS_CSV_DIR>/<name>.csv", else nullopt. Benches use this to decide
// whether to mirror tables to disk.
std::optional<std::string> csv_output_path(const std::string& name);

}  // namespace bds::util
