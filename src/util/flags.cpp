#include "util/flags.h"

#include <algorithm>
#include <stdexcept>

namespace bds::util {

Flags::Flags(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      const std::string name = body.substr(0, eq);
      if (name.empty()) {
        throw std::invalid_argument("flags: malformed argument " + arg);
      }
      values_[name] = body.substr(eq + 1);
    } else {
      if (body.empty()) {
        throw std::invalid_argument("flags: malformed argument " + arg);
      }
      // "--name value" when the next token is not itself a flag and the
      // current token has no '=', otherwise bare boolean.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[body] = argv[++i];
      } else {
        values_[body] = "";
      }
    }
  }
}

bool Flags::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::optional<std::string> Flags::raw(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Flags::get_string(const std::string& name,
                              const std::string& fallback) const {
  return raw(name).value_or(fallback);
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t fallback) const {
  const auto v = raw(name);
  if (!v) return fallback;
  try {
    std::size_t pos = 0;
    const std::int64_t parsed = std::stoll(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("trailing chars");
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("flags: --" + name + " expects an integer, got '" +
                                *v + "'");
  }
}

std::uint64_t Flags::get_uint(const std::string& name,
                              std::uint64_t fallback) const {
  const std::int64_t v =
      get_int(name, static_cast<std::int64_t>(fallback));
  if (v < 0) {
    throw std::invalid_argument("flags: --" + name + " must be non-negative");
  }
  return static_cast<std::uint64_t>(v);
}

double Flags::get_double(const std::string& name, double fallback) const {
  const auto v = raw(name);
  if (!v) return fallback;
  try {
    std::size_t pos = 0;
    const double parsed = std::stod(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("trailing chars");
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("flags: --" + name + " expects a number, got '" +
                                *v + "'");
  }
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  const auto v = raw(name);
  if (!v) return fallback;
  if (v->empty() || *v == "true" || *v == "1" || *v == "yes") return true;
  if (*v == "false" || *v == "0" || *v == "no") return false;
  throw std::invalid_argument("flags: --" + name + " expects a boolean, got '" +
                              *v + "'");
}

std::vector<std::string> Flags::names() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [name, value] : values_) out.push_back(name);
  return out;
}

}  // namespace bds::util
