// Column-aligned ASCII table builder. The benchmark harness prints every
// reproduced paper table/figure series through this so outputs stay uniform
// and diffable.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace bds::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  Table(std::initializer_list<std::string> headers);

  // Appends a row; the row is padded/truncated to the header width.
  void add_row(std::vector<std::string> cells);

  // Cell formatting helpers.
  static std::string fmt(double v, int precision = 3);
  static std::string fmt_pct(double ratio, int precision = 1);  // 0.981 -> "98.1%"
  static std::string fmt_int(std::uint64_t v);

  std::size_t rows() const noexcept { return rows_.size(); }
  std::size_t cols() const noexcept { return headers_.size(); }
  const std::vector<std::string>& row(std::size_t i) const { return rows_.at(i); }

  // Renders with a header rule; numeric-looking cells are right-aligned.
  std::string to_string() const;
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bds::util
