#include "util/kernels.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "util/aligned.h"

#if defined(__x86_64__) || defined(__i386__)
#define BDS_KERNELS_X86 1
#include <immintrin.h>
#else
#define BDS_KERNELS_X86 0
#endif

namespace bds::kern {
namespace {

// ---------------------------------------------------------------------------
// Mode selection
// ---------------------------------------------------------------------------

// In-process override installed by ForcedMode; -1 = none, otherwise a Mode.
std::atomic<int> g_forced_mode{-1};

Mode parse_env_mode() {
  const char* raw = std::getenv("BDS_KERNEL");
  if (raw == nullptr || raw[0] == '\0') return Mode::kAuto;
  const std::string v(raw);
  if (v == "auto") return Mode::kAuto;
  if (v == "scalar") return Mode::kScalar;
  if (v == "sse2") return Mode::kSse2;
  if (v == "avx2") return Mode::kAvx2;
  if (v == "avx512") return Mode::kAvx512;
  if (v == "legacy") return Mode::kLegacy;
  std::fprintf(stderr,
               "bds: unknown BDS_KERNEL value '%s' "
               "(expected auto|scalar|sse2|avx2|avx512|legacy); using auto\n",
               raw);
  return Mode::kAuto;
}

bool host_has(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kSse2:
#if BDS_KERNELS_X86
      return __builtin_cpu_supports("sse2");
#else
      return false;
#endif
    case Isa::kAvx2:
#if BDS_KERNELS_X86
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
      return false;
#endif
    case Isa::kAvx512:
#if BDS_KERNELS_X86
      // The 512-bit kernels only use foundation instructions, but they
      // reduce through the AVX2 stage, so both must be present.
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
      return false;
#endif
  }
  return false;
}

Isa best_supported() noexcept {
  if (host_has(Isa::kAvx512)) return Isa::kAvx512;
  if (host_has(Isa::kAvx2)) return Isa::kAvx2;
  if (host_has(Isa::kSse2)) return Isa::kSse2;
  return Isa::kScalar;
}

// ---------------------------------------------------------------------------
// Scalar kernels — the reference implementation of the lane contract
// ---------------------------------------------------------------------------

double squared_l2_scalar(const float* a, const float* b, std::size_t n) {
  double lanes[kLanes] = {};
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      const double diff = double(a[i + l]) - double(b[i + l]);
      lanes[l] += diff * diff;
    }
  }
  if (i < n) {
    // Virtual zero padding: the missing tail elements contribute an exact
    // +0.0 to their lanes, matching the SIMD paths' padded tail block.
    double block[kLanes] = {};
    for (std::size_t l = 0; i + l < n; ++l) {
      const double diff = double(a[i + l]) - double(b[i + l]);
      block[l] = diff * diff;
    }
    for (std::size_t l = 0; l < kLanes; ++l) lanes[l] += block[l];
  }
  return reduce_lanes(lanes);
}

double dot_scalar(const float* a, const float* b, std::size_t n) {
  double lanes[kLanes] = {};
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      lanes[l] += double(a[i + l]) * double(b[i + l]);
    }
  }
  if (i < n) {
    double block[kLanes] = {};
    for (std::size_t l = 0; i + l < n; ++l) {
      block[l] = double(a[i + l]) * double(b[i + l]);
    }
    for (std::size_t l = 0; l < kLanes; ++l) lanes[l] += block[l];
  }
  return reduce_lanes(lanes);
}

void distance_row_scalar(const float* rows, std::size_t stride,
                         const double* norms, const std::uint32_t* ids,
                         std::size_t begin, std::size_t end, const float* x,
                         double x_norm, double* out) {
  for (std::size_t t = begin; t < end; ++t) {
    const std::size_t id = ids == nullptr ? t : ids[t];
    out[t - begin] = distance_from_dot(
        norms[id], x_norm, dot_scalar(rows + id * stride, x, stride));
  }
}

void gain_tile_scalar(const float* rows, std::size_t stride,
                      const double* norms, const std::uint32_t* ids,
                      const double* min_dist, std::size_t begin,
                      std::size_t end, const float* const* xs,
                      const double* x_norms, std::size_t n_x, double* out) {
  for (std::size_t j = 0; j < n_x; ++j) out[j] = 0.0;
  for (std::size_t t = begin; t < end; ++t) {
    const std::size_t id = ids == nullptr ? t : ids[t];
    const float* row = rows + id * stride;
    const double v_norm = norms[id];
    const double md = min_dist[t];
    for (std::size_t j = 0; j < n_x; ++j) {
      const double d = distance_from_dot(v_norm, x_norms[j],
                                         dot_scalar(row, xs[j], stride));
      if (d < md) out[j] += md - d;
    }
  }
}

void gain_tile_mq_scalar(const float* rows, std::size_t stride,
                         const double* norms, const std::uint32_t* ids,
                         const double* const* min_dists, std::size_t begin,
                         std::size_t end, const float* const* xs,
                         const double* x_norms, std::size_t n_x, double* out) {
  for (std::size_t j = 0; j < n_x; ++j) out[j] = 0.0;
  for (std::size_t t = begin; t < end; ++t) {
    const std::size_t id = ids == nullptr ? t : ids[t];
    const float* row = rows + id * stride;
    const double v_norm = norms[id];
    for (std::size_t j = 0; j < n_x; ++j) {
      const double d = distance_from_dot(v_norm, x_norms[j],
                                         dot_scalar(row, xs[j], stride));
      const double md = min_dists[j][t];
      if (d < md) out[j] += md - d;
    }
  }
}

constexpr KernelTable kScalarTable = {
    &squared_l2_scalar,
    &dot_scalar,
    &distance_row_scalar,
    &gain_tile_scalar,
    &gain_tile_mq_scalar,
};

#if BDS_KERNELS_X86

// ---------------------------------------------------------------------------
// SSE2 kernels — lane pairs (0,1) (2,3) (4,5) (6,7) in four __m128d
// ---------------------------------------------------------------------------

// Reduces four lane-pair accumulators in the canonical reduce_lanes order.
inline double reduce_sse2(__m128d l01, __m128d l23, __m128d l45,
                          __m128d l67) noexcept {
  const __m128d c01 = _mm_add_pd(l01, l45);  // (c0, c1)
  const __m128d c23 = _mm_add_pd(l23, l67);  // (c2, c3)
  const __m128d s = _mm_add_pd(c01, c23);    // (c0+c2, c1+c3)
  return _mm_cvtsd_f64(s) + _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
}

// Converts one 8-float block at p into four double lane pairs.
inline void load_block_sse2(const float* p, __m128d& d01, __m128d& d23,
                            __m128d& d45, __m128d& d67) noexcept {
  const __m128 f0 = _mm_loadu_ps(p);
  const __m128 f1 = _mm_loadu_ps(p + 4);
  d01 = _mm_cvtps_pd(f0);
  d23 = _mm_cvtps_pd(_mm_movehl_ps(f0, f0));
  d45 = _mm_cvtps_pd(f1);
  d67 = _mm_cvtps_pd(_mm_movehl_ps(f1, f1));
}

double squared_l2_sse2(const float* a, const float* b, std::size_t n) {
  __m128d acc01 = _mm_setzero_pd(), acc23 = _mm_setzero_pd();
  __m128d acc45 = _mm_setzero_pd(), acc67 = _mm_setzero_pd();
  __m128d a01, a23, a45, a67, b01, b23, b45, b67;
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    load_block_sse2(a + i, a01, a23, a45, a67);
    load_block_sse2(b + i, b01, b23, b45, b67);
    const __m128d d01 = _mm_sub_pd(a01, b01);
    const __m128d d23 = _mm_sub_pd(a23, b23);
    const __m128d d45 = _mm_sub_pd(a45, b45);
    const __m128d d67 = _mm_sub_pd(a67, b67);
    acc01 = _mm_add_pd(acc01, _mm_mul_pd(d01, d01));
    acc23 = _mm_add_pd(acc23, _mm_mul_pd(d23, d23));
    acc45 = _mm_add_pd(acc45, _mm_mul_pd(d45, d45));
    acc67 = _mm_add_pd(acc67, _mm_mul_pd(d67, d67));
  }
  if (i < n) {
    alignas(16) float ta[kLanes] = {}, tb[kLanes] = {};
    for (std::size_t l = 0; i + l < n; ++l) {
      ta[l] = a[i + l];
      tb[l] = b[i + l];
    }
    load_block_sse2(ta, a01, a23, a45, a67);
    load_block_sse2(tb, b01, b23, b45, b67);
    const __m128d d01 = _mm_sub_pd(a01, b01);
    const __m128d d23 = _mm_sub_pd(a23, b23);
    const __m128d d45 = _mm_sub_pd(a45, b45);
    const __m128d d67 = _mm_sub_pd(a67, b67);
    acc01 = _mm_add_pd(acc01, _mm_mul_pd(d01, d01));
    acc23 = _mm_add_pd(acc23, _mm_mul_pd(d23, d23));
    acc45 = _mm_add_pd(acc45, _mm_mul_pd(d45, d45));
    acc67 = _mm_add_pd(acc67, _mm_mul_pd(d67, d67));
  }
  return reduce_sse2(acc01, acc23, acc45, acc67);
}

double dot_sse2(const float* a, const float* b, std::size_t n) {
  __m128d acc01 = _mm_setzero_pd(), acc23 = _mm_setzero_pd();
  __m128d acc45 = _mm_setzero_pd(), acc67 = _mm_setzero_pd();
  __m128d a01, a23, a45, a67, b01, b23, b45, b67;
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    load_block_sse2(a + i, a01, a23, a45, a67);
    load_block_sse2(b + i, b01, b23, b45, b67);
    acc01 = _mm_add_pd(acc01, _mm_mul_pd(a01, b01));
    acc23 = _mm_add_pd(acc23, _mm_mul_pd(a23, b23));
    acc45 = _mm_add_pd(acc45, _mm_mul_pd(a45, b45));
    acc67 = _mm_add_pd(acc67, _mm_mul_pd(a67, b67));
  }
  if (i < n) {
    alignas(16) float ta[kLanes] = {}, tb[kLanes] = {};
    for (std::size_t l = 0; i + l < n; ++l) {
      ta[l] = a[i + l];
      tb[l] = b[i + l];
    }
    load_block_sse2(ta, a01, a23, a45, a67);
    load_block_sse2(tb, b01, b23, b45, b67);
    acc01 = _mm_add_pd(acc01, _mm_mul_pd(a01, b01));
    acc23 = _mm_add_pd(acc23, _mm_mul_pd(a23, b23));
    acc45 = _mm_add_pd(acc45, _mm_mul_pd(a45, b45));
    acc67 = _mm_add_pd(acc67, _mm_mul_pd(a67, b67));
  }
  return reduce_sse2(acc01, acc23, acc45, acc67);
}

// Dot of two padded rows (stride % kLanes == 0): the tail never triggers.
inline double dot_padded_sse2(const float* a, const float* b,
                              std::size_t stride) noexcept {
  __m128d acc01 = _mm_setzero_pd(), acc23 = _mm_setzero_pd();
  __m128d acc45 = _mm_setzero_pd(), acc67 = _mm_setzero_pd();
  __m128d a01, a23, a45, a67, b01, b23, b45, b67;
  for (std::size_t d = 0; d < stride; d += kLanes) {
    load_block_sse2(a + d, a01, a23, a45, a67);
    load_block_sse2(b + d, b01, b23, b45, b67);
    acc01 = _mm_add_pd(acc01, _mm_mul_pd(a01, b01));
    acc23 = _mm_add_pd(acc23, _mm_mul_pd(a23, b23));
    acc45 = _mm_add_pd(acc45, _mm_mul_pd(a45, b45));
    acc67 = _mm_add_pd(acc67, _mm_mul_pd(a67, b67));
  }
  return reduce_sse2(acc01, acc23, acc45, acc67);
}

void distance_row_sse2(const float* rows, std::size_t stride,
                       const double* norms, const std::uint32_t* ids,
                       std::size_t begin, std::size_t end, const float* x,
                       double x_norm, double* out) {
  for (std::size_t t = begin; t < end; ++t) {
    const std::size_t id = ids == nullptr ? t : ids[t];
    out[t - begin] = distance_from_dot(
        norms[id], x_norm, dot_padded_sse2(rows + id * stride, x, stride));
  }
}

void gain_tile_sse2(const float* rows, std::size_t stride, const double* norms,
                    const std::uint32_t* ids, const double* min_dist,
                    std::size_t begin, std::size_t end, const float* const* xs,
                    const double* x_norms, std::size_t n_x, double* out) {
  for (std::size_t j = 0; j < n_x; ++j) out[j] = 0.0;
  for (std::size_t t = begin; t < end; ++t) {
    const std::size_t id = ids == nullptr ? t : ids[t];
    const float* row = rows + id * stride;
    const double v_norm = norms[id];
    const double md = min_dist[t];
    for (std::size_t j = 0; j < n_x; ++j) {
      const double d = distance_from_dot(v_norm, x_norms[j],
                                         dot_padded_sse2(row, xs[j], stride));
      if (d < md) out[j] += md - d;
    }
  }
}

void gain_tile_mq_sse2(const float* rows, std::size_t stride,
                       const double* norms, const std::uint32_t* ids,
                       const double* const* min_dists, std::size_t begin,
                       std::size_t end, const float* const* xs,
                       const double* x_norms, std::size_t n_x, double* out) {
  for (std::size_t j = 0; j < n_x; ++j) out[j] = 0.0;
  for (std::size_t t = begin; t < end; ++t) {
    const std::size_t id = ids == nullptr ? t : ids[t];
    const float* row = rows + id * stride;
    const double v_norm = norms[id];
    for (std::size_t j = 0; j < n_x; ++j) {
      const double d = distance_from_dot(v_norm, x_norms[j],
                                         dot_padded_sse2(row, xs[j], stride));
      const double md = min_dists[j][t];
      if (d < md) out[j] += md - d;
    }
  }
}

constexpr KernelTable kSse2Table = {
    &squared_l2_sse2,
    &dot_sse2,
    &distance_row_sse2,
    &gain_tile_sse2,
    &gain_tile_mq_sse2,
};

// ---------------------------------------------------------------------------
// AVX2+FMA kernels — lanes 0-3 / 4-7 in two __m256d accumulators
// ---------------------------------------------------------------------------

__attribute__((target("avx2,fma"))) inline double reduce_avx2(
    __m256d lo, __m256d hi) noexcept {
  const __m256d c = _mm256_add_pd(lo, hi);  // (c0, c1, c2, c3)
  const __m128d s = _mm_add_pd(_mm256_castpd256_pd128(c),
                               _mm256_extractf128_pd(c, 1));  // (c0+c2, c1+c3)
  return _mm_cvtsd_f64(s) + _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
}

__attribute__((target("avx2,fma"))) double squared_l2_avx2(const float* a,
                                                           const float* b,
                                                           std::size_t n) {
  __m256d acc_lo = _mm256_setzero_pd(), acc_hi = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256 vb = _mm256_loadu_ps(b + i);
    const __m256d d_lo =
        _mm256_sub_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(va)),
                      _mm256_cvtps_pd(_mm256_castps256_ps128(vb)));
    const __m256d d_hi =
        _mm256_sub_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(va, 1)),
                      _mm256_cvtps_pd(_mm256_extractf128_ps(vb, 1)));
    // No FMA here: the difference is already rounded, so fusing would
    // change the result relative to the scalar mul-then-add (see header).
    acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(d_lo, d_lo));
    acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(d_hi, d_hi));
  }
  if (i < n) {
    alignas(32) float ta[kLanes] = {}, tb[kLanes] = {};
    for (std::size_t l = 0; i + l < n; ++l) {
      ta[l] = a[i + l];
      tb[l] = b[i + l];
    }
    const __m256 va = _mm256_load_ps(ta);
    const __m256 vb = _mm256_load_ps(tb);
    const __m256d d_lo =
        _mm256_sub_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(va)),
                      _mm256_cvtps_pd(_mm256_castps256_ps128(vb)));
    const __m256d d_hi =
        _mm256_sub_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(va, 1)),
                      _mm256_cvtps_pd(_mm256_extractf128_ps(vb, 1)));
    acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(d_lo, d_lo));
    acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(d_hi, d_hi));
  }
  return reduce_avx2(acc_lo, acc_hi);
}

__attribute__((target("avx2,fma"))) double dot_avx2(const float* a,
                                                    const float* b,
                                                    std::size_t n) {
  __m256d acc_lo = _mm256_setzero_pd(), acc_hi = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256 vb = _mm256_loadu_ps(b + i);
    acc_lo = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(va)),
                             _mm256_cvtps_pd(_mm256_castps256_ps128(vb)),
                             acc_lo);
    acc_hi = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(va, 1)),
                             _mm256_cvtps_pd(_mm256_extractf128_ps(vb, 1)),
                             acc_hi);
  }
  if (i < n) {
    alignas(32) float ta[kLanes] = {}, tb[kLanes] = {};
    for (std::size_t l = 0; i + l < n; ++l) {
      ta[l] = a[i + l];
      tb[l] = b[i + l];
    }
    const __m256 va = _mm256_load_ps(ta);
    const __m256 vb = _mm256_load_ps(tb);
    acc_lo = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(va)),
                             _mm256_cvtps_pd(_mm256_castps256_ps128(vb)),
                             acc_lo);
    acc_hi = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(va, 1)),
                             _mm256_cvtps_pd(_mm256_extractf128_ps(vb, 1)),
                             acc_hi);
  }
  return reduce_avx2(acc_lo, acc_hi);
}

__attribute__((target("avx2,fma"))) inline double dot_padded_avx2(
    const float* a, const float* b, std::size_t stride) noexcept {
  __m256d acc_lo = _mm256_setzero_pd(), acc_hi = _mm256_setzero_pd();
  for (std::size_t d = 0; d < stride; d += kLanes) {
    const __m256 va = _mm256_loadu_ps(a + d);
    const __m256 vb = _mm256_loadu_ps(b + d);
    acc_lo = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(va)),
                             _mm256_cvtps_pd(_mm256_castps256_ps128(vb)),
                             acc_lo);
    acc_hi = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(va, 1)),
                             _mm256_cvtps_pd(_mm256_extractf128_ps(vb, 1)),
                             acc_hi);
  }
  return reduce_avx2(acc_lo, acc_hi);
}

__attribute__((target("avx2,fma"))) void distance_row_avx2(
    const float* rows, std::size_t stride, const double* norms,
    const std::uint32_t* ids, std::size_t begin, std::size_t end,
    const float* x, double x_norm, double* out) {
  for (std::size_t t = begin; t < end; ++t) {
    const std::size_t id = ids == nullptr ? t : ids[t];
    out[t - begin] = distance_from_dot(
        norms[id], x_norm, dot_padded_avx2(rows + id * stride, x, stride));
  }
}

// The blocked small-GEMM micro-kernel: a tile of kGainTile candidates is
// pre-converted to double once (amortized over the whole cost range), then
// every cost row is loaded and widened once and FMA'd against all four
// candidates — 8 accumulator registers, one streaming pass over the rows.
__attribute__((target("avx2,fma"))) void gain_tile_avx2(
    const float* rows, std::size_t stride, const double* norms,
    const std::uint32_t* ids, const double* min_dist, std::size_t begin,
    std::size_t end, const float* const* xs, const double* x_norms,
    std::size_t n_x, double* out) {
  for (std::size_t j = 0; j < n_x; ++j) out[j] = 0.0;
  if (n_x == 0) return;

  if (n_x == 1) {
    // Single-candidate fast path: no conversion scratch, no wasted slots.
    const float* x = xs[0];
    const double x_norm = x_norms[0];
    double sum = 0.0;
    for (std::size_t t = begin; t < end; ++t) {
      const std::size_t id = ids == nullptr ? t : ids[t];
      const double d = distance_from_dot(
          norms[id], x_norm, dot_padded_avx2(rows + id * stride, x, stride));
      const double md = min_dist[t];
      if (d < md) sum += md - d;
    }
    out[0] = sum;
    return;
  }

  // Widen the candidate tile to doubles (exactly — float→double conversion
  // is lossless, so the products below match the scalar path's
  // double(a)·double(b) bit for bit). Unused slots repeat the last
  // candidate; their results are discarded.
  thread_local util::AlignedVector<double> scratch;
  scratch.resize(kGainTile * stride);
  for (std::size_t s = 0; s < kGainTile; ++s) {
    const float* src = xs[s < n_x ? s : n_x - 1];
    double* dst = scratch.data() + s * stride;
    for (std::size_t d = 0; d < stride; d += 4) {
      _mm256_store_pd(dst + d, _mm256_cvtps_pd(_mm_loadu_ps(src + d)));
    }
  }
  const double* x0 = scratch.data();
  const double* x1 = scratch.data() + stride;
  const double* x2 = scratch.data() + 2 * stride;
  const double* x3 = scratch.data() + 3 * stride;

  double sums[kGainTile] = {};
  for (std::size_t t = begin; t < end; ++t) {
    const std::size_t id = ids == nullptr ? t : ids[t];
    const float* row = rows + id * stride;
    __m256d a0l = _mm256_setzero_pd(), a0h = _mm256_setzero_pd();
    __m256d a1l = _mm256_setzero_pd(), a1h = _mm256_setzero_pd();
    __m256d a2l = _mm256_setzero_pd(), a2h = _mm256_setzero_pd();
    __m256d a3l = _mm256_setzero_pd(), a3h = _mm256_setzero_pd();
    for (std::size_t d = 0; d < stride; d += kLanes) {
      const __m256 v = _mm256_loadu_ps(row + d);
      const __m256d lo = _mm256_cvtps_pd(_mm256_castps256_ps128(v));
      const __m256d hi = _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1));
      a0l = _mm256_fmadd_pd(lo, _mm256_load_pd(x0 + d), a0l);
      a0h = _mm256_fmadd_pd(hi, _mm256_load_pd(x0 + d + 4), a0h);
      a1l = _mm256_fmadd_pd(lo, _mm256_load_pd(x1 + d), a1l);
      a1h = _mm256_fmadd_pd(hi, _mm256_load_pd(x1 + d + 4), a1h);
      a2l = _mm256_fmadd_pd(lo, _mm256_load_pd(x2 + d), a2l);
      a2h = _mm256_fmadd_pd(hi, _mm256_load_pd(x2 + d + 4), a2h);
      a3l = _mm256_fmadd_pd(lo, _mm256_load_pd(x3 + d), a3l);
      a3h = _mm256_fmadd_pd(hi, _mm256_load_pd(x3 + d + 4), a3h);
    }
    const double v_norm = norms[id];
    const double md = min_dist[t];
    const double dots[kGainTile] = {
        reduce_avx2(a0l, a0h), reduce_avx2(a1l, a1h), reduce_avx2(a2l, a2h),
        reduce_avx2(a3l, a3h)};
    for (std::size_t j = 0; j < n_x; ++j) {
      const double d = distance_from_dot(v_norm, x_norms[j], dots[j]);
      if (d < md) sums[j] += md - d;
    }
  }
  for (std::size_t j = 0; j < n_x; ++j) out[j] = sums[j];
}

// Multi-query tile: identical blocked small-GEMM, but candidate j compares
// against its own min-dist array. The per-candidate accumulators and
// reductions are untouched, so each lane's arithmetic is bit-identical to
// gain_tile_avx2 with min_dist = min_dists[j].
__attribute__((target("avx2,fma"))) void gain_tile_mq_avx2(
    const float* rows, std::size_t stride, const double* norms,
    const std::uint32_t* ids, const double* const* min_dists,
    std::size_t begin, std::size_t end, const float* const* xs,
    const double* x_norms, std::size_t n_x, double* out) {
  for (std::size_t j = 0; j < n_x; ++j) out[j] = 0.0;
  if (n_x == 0) return;

  if (n_x == 1) {
    const float* x = xs[0];
    const double x_norm = x_norms[0];
    const double* md0 = min_dists[0];
    double sum = 0.0;
    for (std::size_t t = begin; t < end; ++t) {
      const std::size_t id = ids == nullptr ? t : ids[t];
      const double d = distance_from_dot(
          norms[id], x_norm, dot_padded_avx2(rows + id * stride, x, stride));
      const double md = md0[t];
      if (d < md) sum += md - d;
    }
    out[0] = sum;
    return;
  }

  thread_local util::AlignedVector<double> scratch;
  scratch.resize(kGainTile * stride);
  for (std::size_t s = 0; s < kGainTile; ++s) {
    const float* src = xs[s < n_x ? s : n_x - 1];
    double* dst = scratch.data() + s * stride;
    for (std::size_t d = 0; d < stride; d += 4) {
      _mm256_store_pd(dst + d, _mm256_cvtps_pd(_mm_loadu_ps(src + d)));
    }
  }
  const double* x0 = scratch.data();
  const double* x1 = scratch.data() + stride;
  const double* x2 = scratch.data() + 2 * stride;
  const double* x3 = scratch.data() + 3 * stride;

  double sums[kGainTile] = {};
  for (std::size_t t = begin; t < end; ++t) {
    const std::size_t id = ids == nullptr ? t : ids[t];
    const float* row = rows + id * stride;
    __m256d a0l = _mm256_setzero_pd(), a0h = _mm256_setzero_pd();
    __m256d a1l = _mm256_setzero_pd(), a1h = _mm256_setzero_pd();
    __m256d a2l = _mm256_setzero_pd(), a2h = _mm256_setzero_pd();
    __m256d a3l = _mm256_setzero_pd(), a3h = _mm256_setzero_pd();
    for (std::size_t d = 0; d < stride; d += kLanes) {
      const __m256 v = _mm256_loadu_ps(row + d);
      const __m256d lo = _mm256_cvtps_pd(_mm256_castps256_ps128(v));
      const __m256d hi = _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1));
      a0l = _mm256_fmadd_pd(lo, _mm256_load_pd(x0 + d), a0l);
      a0h = _mm256_fmadd_pd(hi, _mm256_load_pd(x0 + d + 4), a0h);
      a1l = _mm256_fmadd_pd(lo, _mm256_load_pd(x1 + d), a1l);
      a1h = _mm256_fmadd_pd(hi, _mm256_load_pd(x1 + d + 4), a1h);
      a2l = _mm256_fmadd_pd(lo, _mm256_load_pd(x2 + d), a2l);
      a2h = _mm256_fmadd_pd(hi, _mm256_load_pd(x2 + d + 4), a2h);
      a3l = _mm256_fmadd_pd(lo, _mm256_load_pd(x3 + d), a3l);
      a3h = _mm256_fmadd_pd(hi, _mm256_load_pd(x3 + d + 4), a3h);
    }
    const double v_norm = norms[id];
    const double dots[kGainTile] = {
        reduce_avx2(a0l, a0h), reduce_avx2(a1l, a1h), reduce_avx2(a2l, a2h),
        reduce_avx2(a3l, a3h)};
    for (std::size_t j = 0; j < n_x; ++j) {
      const double d = distance_from_dot(v_norm, x_norms[j], dots[j]);
      const double md = min_dists[j][t];
      if (d < md) sums[j] += md - d;
    }
  }
  for (std::size_t j = 0; j < n_x; ++j) out[j] = sums[j];
}

constexpr KernelTable kAvx2Table = {
    &squared_l2_avx2,
    &dot_avx2,
    &distance_row_avx2,
    &gain_tile_avx2,
    &gain_tile_mq_avx2,
};

// ---------------------------------------------------------------------------
// AVX-512F kernels — all 8 lanes in one __m512d accumulator
// ---------------------------------------------------------------------------
//
// The zmm register holds the whole virtual lane array, so lane l of the
// contract is literally element l of the accumulator. The reduction splits
// the zmm into its two ymm halves (lanes 0-3 and 4-7) and feeds them to the
// AVX2 reduction, which already implements reduce_lanes() exactly — so the
// 512-bit tier is bit-identical to every other tier by construction.

__attribute__((target("avx512f,avx2,fma"))) inline double reduce_avx512(
    __m512d acc) noexcept {
  return reduce_avx2(_mm512_castpd512_pd256(acc),
                     _mm512_extractf64x4_pd(acc, 1));
}

// Loads one 8-float block and widens it to the full double lane array.
__attribute__((target("avx512f,avx2,fma"))) inline __m512d widen_avx512(
    const float* p) noexcept {
  return _mm512_cvtps_pd(_mm256_loadu_ps(p));
}

__attribute__((target("avx512f,avx2,fma"))) double squared_l2_avx512(
    const float* a, const float* b, std::size_t n) {
  __m512d acc = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m512d d = _mm512_sub_pd(widen_avx512(a + i), widen_avx512(b + i));
    // No FMA on the squared difference (see header): mul-then-add, like
    // every other path.
    acc = _mm512_add_pd(acc, _mm512_mul_pd(d, d));
  }
  if (i < n) {
    alignas(32) float ta[kLanes] = {}, tb[kLanes] = {};
    for (std::size_t l = 0; i + l < n; ++l) {
      ta[l] = a[i + l];
      tb[l] = b[i + l];
    }
    const __m512d d = _mm512_sub_pd(widen_avx512(ta), widen_avx512(tb));
    acc = _mm512_add_pd(acc, _mm512_mul_pd(d, d));
  }
  return reduce_avx512(acc);
}

__attribute__((target("avx512f,avx2,fma"))) double dot_avx512(const float* a,
                                                              const float* b,
                                                              std::size_t n) {
  __m512d acc = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    acc = _mm512_fmadd_pd(widen_avx512(a + i), widen_avx512(b + i), acc);
  }
  if (i < n) {
    alignas(32) float ta[kLanes] = {}, tb[kLanes] = {};
    for (std::size_t l = 0; i + l < n; ++l) {
      ta[l] = a[i + l];
      tb[l] = b[i + l];
    }
    acc = _mm512_fmadd_pd(widen_avx512(ta), widen_avx512(tb), acc);
  }
  return reduce_avx512(acc);
}

__attribute__((target("avx512f,avx2,fma"))) inline double dot_padded_avx512(
    const float* a, const float* b, std::size_t stride) noexcept {
  __m512d acc = _mm512_setzero_pd();
  for (std::size_t d = 0; d < stride; d += kLanes) {
    acc = _mm512_fmadd_pd(widen_avx512(a + d), widen_avx512(b + d), acc);
  }
  return reduce_avx512(acc);
}

__attribute__((target("avx512f,avx2,fma"))) void distance_row_avx512(
    const float* rows, std::size_t stride, const double* norms,
    const std::uint32_t* ids, std::size_t begin, std::size_t end,
    const float* x, double x_norm, double* out) {
  for (std::size_t t = begin; t < end; ++t) {
    const std::size_t id = ids == nullptr ? t : ids[t];
    out[t - begin] = distance_from_dot(
        norms[id], x_norm, dot_padded_avx512(rows + id * stride, x, stride));
  }
}

// The multi-query tile is the core 512-bit GEMM kernel; the single-min-dist
// gain_tile is a thin wrapper that points every candidate at the same
// min-dist array (identical arithmetic, so identical bits).
__attribute__((target("avx512f,avx2,fma"))) void gain_tile_mq_avx512(
    const float* rows, std::size_t stride, const double* norms,
    const std::uint32_t* ids, const double* const* min_dists,
    std::size_t begin, std::size_t end, const float* const* xs,
    const double* x_norms, std::size_t n_x, double* out) {
  for (std::size_t j = 0; j < n_x; ++j) out[j] = 0.0;
  if (n_x == 0) return;

  if (n_x == 1) {
    const float* x = xs[0];
    const double x_norm = x_norms[0];
    const double* md0 = min_dists[0];
    double sum = 0.0;
    for (std::size_t t = begin; t < end; ++t) {
      const std::size_t id = ids == nullptr ? t : ids[t];
      const double d = distance_from_dot(
          norms[id], x_norm, dot_padded_avx512(rows + id * stride, x, stride));
      const double md = md0[t];
      if (d < md) sum += md - d;
    }
    out[0] = sum;
    return;
  }

  thread_local util::AlignedVector<double> scratch;
  scratch.resize(kGainTile * stride);
  for (std::size_t s = 0; s < kGainTile; ++s) {
    const float* src = xs[s < n_x ? s : n_x - 1];
    double* dst = scratch.data() + s * stride;
    for (std::size_t d = 0; d < stride; d += kLanes) {
      _mm512_storeu_pd(dst + d, widen_avx512(src + d));
    }
  }
  const double* x0 = scratch.data();
  const double* x1 = scratch.data() + stride;
  const double* x2 = scratch.data() + 2 * stride;
  const double* x3 = scratch.data() + 3 * stride;

  double sums[kGainTile] = {};
  for (std::size_t t = begin; t < end; ++t) {
    const std::size_t id = ids == nullptr ? t : ids[t];
    const float* row = rows + id * stride;
    __m512d a0 = _mm512_setzero_pd(), a1 = _mm512_setzero_pd();
    __m512d a2 = _mm512_setzero_pd(), a3 = _mm512_setzero_pd();
    for (std::size_t d = 0; d < stride; d += kLanes) {
      const __m512d v = widen_avx512(row + d);
      a0 = _mm512_fmadd_pd(v, _mm512_loadu_pd(x0 + d), a0);
      a1 = _mm512_fmadd_pd(v, _mm512_loadu_pd(x1 + d), a1);
      a2 = _mm512_fmadd_pd(v, _mm512_loadu_pd(x2 + d), a2);
      a3 = _mm512_fmadd_pd(v, _mm512_loadu_pd(x3 + d), a3);
    }
    const double v_norm = norms[id];
    const double dots[kGainTile] = {reduce_avx512(a0), reduce_avx512(a1),
                                    reduce_avx512(a2), reduce_avx512(a3)};
    for (std::size_t j = 0; j < n_x; ++j) {
      const double d = distance_from_dot(v_norm, x_norms[j], dots[j]);
      const double md = min_dists[j][t];
      if (d < md) sums[j] += md - d;
    }
  }
  for (std::size_t j = 0; j < n_x; ++j) out[j] = sums[j];
}

__attribute__((target("avx512f,avx2,fma"))) void gain_tile_avx512(
    const float* rows, std::size_t stride, const double* norms,
    const std::uint32_t* ids, const double* min_dist, std::size_t begin,
    std::size_t end, const float* const* xs, const double* x_norms,
    std::size_t n_x, double* out) {
  const double* mds[kGainTile] = {min_dist, min_dist, min_dist, min_dist};
  gain_tile_mq_avx512(rows, stride, norms, ids, mds, begin, end, xs, x_norms,
                      n_x, out);
}

constexpr KernelTable kAvx512Table = {
    &squared_l2_avx512,
    &dot_avx512,
    &distance_row_avx512,
    &gain_tile_avx512,
    &gain_tile_mq_avx512,
};

#endif  // BDS_KERNELS_X86

}  // namespace

Mode requested_mode() noexcept {
  const int forced = g_forced_mode.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Mode>(forced);
  static const Mode env_mode = parse_env_mode();
  return env_mode;
}

Isa active_isa() noexcept {
  switch (requested_mode()) {
    case Mode::kAuto:
      return best_supported();
    case Mode::kScalar:
    case Mode::kLegacy:
      return Isa::kScalar;
    case Mode::kSse2:
      return host_has(Isa::kSse2) ? Isa::kSse2 : Isa::kScalar;
    case Mode::kAvx2:
      return host_has(Isa::kAvx2) ? Isa::kAvx2 : best_supported();
    case Mode::kAvx512:
      return host_has(Isa::kAvx512) ? Isa::kAvx512 : best_supported();
  }
  return Isa::kScalar;
}

bool legacy() noexcept { return requested_mode() == Mode::kLegacy; }

bool isa_supported(Isa isa) noexcept { return host_has(isa); }

const char* isa_name(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kSse2:
      return "sse2";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
  }
  return "scalar";
}

const char* active_name() noexcept {
  return legacy() ? "legacy" : isa_name(active_isa());
}

ForcedMode::ForcedMode(Mode mode) noexcept
    : saved_(g_forced_mode.exchange(static_cast<int>(mode),
                                    std::memory_order_relaxed)) {}

ForcedMode::~ForcedMode() {
  g_forced_mode.store(saved_, std::memory_order_relaxed);
}

const KernelTable& table_for(Isa isa) noexcept {
#if BDS_KERNELS_X86
  switch (isa) {
    case Isa::kScalar:
      return kScalarTable;
    case Isa::kSse2:
      return kSse2Table;
    case Isa::kAvx2:
      return kAvx2Table;
    case Isa::kAvx512:
      return kAvx512Table;
  }
#else
  (void)isa;
#endif
  return kScalarTable;
}

const KernelTable& active_table() noexcept { return table_for(active_isa()); }

}  // namespace bds::kern
