// Minimal command-line flag parsing for the CLI tools and examples:
// `--name=value`, `--name value` and boolean `--name` forms, with typed
// accessors, defaults, and an auto-generated usage string. Deliberately
// tiny — no subcommands, no repeated flags.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace bds::util {

class Flags {
 public:
  // Parses argv. Unknown arguments that do not start with "--" are
  // collected as positional arguments. Throws std::invalid_argument on a
  // malformed flag (e.g. "--=x").
  Flags(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  // Typed getters with defaults. Throw std::invalid_argument when the flag
  // is present but not parseable as the requested type.
  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  std::uint64_t get_uint(const std::string& name,
                         std::uint64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  // Boolean: bare "--name" or "--name=true/false/1/0".
  bool get_bool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }
  const std::string& program() const noexcept { return program_; }

  // All parsed flag names (for unknown-flag diagnostics in tools).
  std::vector<std::string> names() const;

 private:
  std::optional<std::string> raw(const std::string& name) const;

  std::string program_;
  std::map<std::string, std::string> values_;  // "" for bare boolean flags
  std::vector<std::string> positional_;
};

}  // namespace bds::util
