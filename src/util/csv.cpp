#include "util/csv.h"

#include <cstdlib>
#include <stdexcept>

namespace bds::util {

namespace {

std::string escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
  write_cells(header);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  write_cells(cells);
  ++rows_;
}

void CsvWriter::write_cells(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

std::optional<std::string> csv_output_path(const std::string& name) {
  const char* dir = std::getenv("BDS_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return std::nullopt;
  return std::string(dir) + "/" + name + ".csv";
}

}  // namespace bds::util
