// Portable samplers for the continuous distributions the dataset generators
// need (normal, gamma, Dirichlet). Hand-rolled on top of util::Rng so every
// generated dataset is bit-reproducible across standard libraries.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.h"

namespace bds::util {

// Standard normal draw via Marsaglia's polar method (deterministic given the
// Rng stream; no internal caching so call sites stay stateless).
double sample_normal(Rng& rng) noexcept;

// Normal with the given mean and standard deviation. Precondition: sd >= 0.
double sample_normal(Rng& rng, double mean, double sd) noexcept;

// Gamma(shape, 1) via Marsaglia & Tsang's squeeze method; handles
// shape < 1 with the boosting trick. Precondition: shape > 0.
double sample_gamma(Rng& rng, double shape) noexcept;

// Dirichlet(alpha, ..., alpha) over `dim` coordinates: normalized i.i.d.
// gamma draws. Preconditions: dim > 0, alpha > 0.
std::vector<double> sample_dirichlet(Rng& rng, std::size_t dim, double alpha);

// Dirichlet with a per-coordinate concentration vector.
// Precondition: every alphas[i] > 0, alphas non-empty.
std::vector<double> sample_dirichlet(Rng& rng, std::span<const double> alphas);

}  // namespace bds::util
