#include "util/serialize.h"

#include <bit>
#include <ostream>
#include <stdexcept>

namespace bds::util {

std::uint64_t double_bits(double v) noexcept {
  return std::bit_cast<std::uint64_t>(v);
}

double bits_double(std::uint64_t bits) noexcept {
  return std::bit_cast<double>(bits);
}

void write_ids(std::ostream& out, const char* tag,
               const std::vector<ElementId>& ids) {
  out << tag << ' ' << ids.size();
  for (const ElementId x : ids) out << ' ' << x;
  out << '\n';
}

void write_indices(std::ostream& out, const std::vector<std::size_t>& ids) {
  out << ids.size();
  for (const std::size_t x : ids) out << ' ' << x;
}

void write_reals(std::ostream& out, const std::vector<double>& values) {
  out << values.size();
  for (const double v : values) out << ' ' << double_bits(v);
}

void write_blob(std::ostream& out, std::string_view bytes) {
  out << bytes.size() << ' ';
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TokenReader::TokenReader(std::string_view text, std::string context)
    : in_(std::string(text)), context_(std::move(context)) {}

void TokenReader::fail(const std::string& what) const {
  throw std::invalid_argument(context_ + ": " + what);
}

std::string TokenReader::word() {
  std::string token;
  if (!(in_ >> token)) fail("truncated input");
  return token;
}

void TokenReader::expect(const char* tag) {
  const std::string token = word();
  if (token != tag) {
    fail(std::string("expected '") + tag + "', found '" + token + "'");
  }
}

std::uint64_t TokenReader::u64() {
  const std::string token = word();
  try {
    std::size_t used = 0;
    const std::uint64_t value = std::stoull(token, &used);
    if (used != token.size()) throw std::invalid_argument(token);
    return value;
  } catch (const std::exception&) {
    fail("bad integer '" + token + "'");
  }
}

std::vector<ElementId> TokenReader::ids() {
  std::vector<ElementId> out(size());
  for (auto& x : out) x = static_cast<ElementId>(u64());
  return out;
}

std::vector<std::size_t> TokenReader::indices() {
  std::vector<std::size_t> out(size());
  for (auto& x : out) x = size();
  return out;
}

std::vector<double> TokenReader::reals() {
  std::vector<double> out(size());
  for (auto& x : out) x = real();
  return out;
}

std::string TokenReader::blob() {
  const std::size_t n = size();
  in_.get();  // the single separator byte after the length token
  std::string bytes(n, '\0');
  if (n != 0) in_.read(bytes.data(), static_cast<std::streamsize>(n));
  if (!in_ && n != 0) fail("truncated blob");
  return bytes;
}

bool TokenReader::at_end() {
  return !(in_ >> std::ws) || in_.peek() == std::istringstream::traits_type::eof();
}

}  // namespace bds::util
