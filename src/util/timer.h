// Monotonic wall-clock timer (header-only).
#pragma once

#include <chrono>

namespace bds::util {

class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_ms() const noexcept { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace bds::util
