#include "util/mmap.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#if defined(_WIN32)
#include <cstdio>
#else
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace bds::util {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error("mmap: " + what + ": " + path + " (" +
                           std::strerror(errno) + ")");
}

#if !defined(_WIN32)
int advice_flag(MapAdvice advice) noexcept {
  switch (advice) {
    case MapAdvice::kRandom: return MADV_RANDOM;
    case MapAdvice::kSequential: return MADV_SEQUENTIAL;
    case MapAdvice::kWillNeed: return MADV_WILLNEED;
    case MapAdvice::kNormal: break;
  }
  return MADV_NORMAL;
}
#endif

}  // namespace

#if defined(_WIN32)

// Portability fallback: no mmap — read the file into a heap buffer. The
// interface (and the dataset code above it) is unchanged; only the
// O(1)-load / O(touched)-resident properties are lost.
std::shared_ptr<const MappedFile> MappedFile::open(const std::string& path,
                                                   MapAdvice /*advice*/) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) fail("cannot open", path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  char* buffer = size > 0 ? new char[static_cast<std::size_t>(size)] : nullptr;
  if (size > 0 &&
      std::fread(buffer, 1, static_cast<std::size_t>(size), f) !=
          static_cast<std::size_t>(size)) {
    delete[] buffer;
    std::fclose(f);
    fail("short read", path);
  }
  std::fclose(f);
  return std::shared_ptr<const MappedFile>(new MappedFile(
      buffer, static_cast<std::size_t>(size), /*owned_heap=*/true, path));
}

MappedFile::~MappedFile() { delete[] static_cast<char*>(base_); }
void MappedFile::advise(MapAdvice) const noexcept {}
void MappedFile::drop_resident_pages() const noexcept {}
void evict_file_cache(const std::string&) noexcept {}

#else

std::shared_ptr<const MappedFile> MappedFile::open(const std::string& path,
                                                   MapAdvice advice) {
  const int fd = ::open(path.c_str(), O_RDONLY);  // NOLINT(*-vararg)
  if (fd < 0) fail("cannot open", path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    fail("cannot stat", path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  void* base = nullptr;
  if (size > 0) {
    base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (base == MAP_FAILED) {
      ::close(fd);
      fail("cannot map", path);
    }
    ::madvise(base, size, advice_flag(advice));
  }
  // The mapping survives the close; no fd is held for the file's lifetime.
  ::close(fd);
  return std::shared_ptr<const MappedFile>(
      new MappedFile(base, size, /*owned_heap=*/false, path));
}

MappedFile::~MappedFile() {
  if (base_ != nullptr && !owned_heap_) ::munmap(base_, size_);
}

void MappedFile::advise(MapAdvice advice) const noexcept {
  if (base_ != nullptr) ::madvise(base_, size_, advice_flag(advice));
}

void MappedFile::drop_resident_pages() const noexcept {
  if (base_ != nullptr) ::madvise(base_, size_, MADV_DONTNEED);
}

void evict_file_cache(const std::string& path) noexcept {
  const int fd = ::open(path.c_str(), O_RDONLY);  // NOLINT(*-vararg)
  if (fd < 0) return;
#if defined(POSIX_FADV_DONTNEED)
  ::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
#endif
  ::close(fd);
}

#endif

}  // namespace bds::util
