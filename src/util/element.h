// The ground-set element handle shared by every module: objectives score
// elements, partitioners place them on machines, algorithms select them.
// 32 bits covers every dataset in the paper's evaluation (max 80M items).
#pragma once

#include <cstdint>
#include <limits>

namespace bds {

using ElementId = std::uint32_t;

inline constexpr ElementId kInvalidElement =
    std::numeric_limits<ElementId>::max();

}  // namespace bds
