#include "util/rng.h"

#include <cassert>
#include <unordered_set>

namespace bds::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t x) noexcept { return splitmix64_next(x); }

Rng Rng::from_state(const std::array<std::uint64_t, 4>& state) noexcept {
  Rng rng(0);
  rng.state_ = state;
  if ((state[0] | state[1] | state[2] | state[3]) == 0) rng.state_[0] = 1;
  return rng;
}

Rng::Rng(std::uint64_t seed) noexcept {
  // Expand the seed; xoshiro requires a not-all-zero state, which SplitMix64
  // guarantees with overwhelming probability (and we guard regardless).
  for (auto& word : state_) word = splitmix64_next(seed);
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  assert(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  const std::uint64_t draw = (span == 0) ? next_u64() : next_below(span);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + draw);
}

double Rng::next_double() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_double(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

bool Rng::next_bool(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

Rng Rng::split() noexcept {
  // Derive the child from two fresh draws so sibling splits differ even if
  // the parent is cloned.
  const std::uint64_t a = next_u64();
  const std::uint64_t b = next_u64();
  return Rng(a ^ rotl(b, 32) ^ 0xd1b54a32d192ed03ULL);
}

std::vector<std::uint64_t> Rng::sample_without_replacement(std::uint64_t n,
                                                           std::uint64_t k) {
  assert(k <= n);
  std::vector<std::uint64_t> out;
  out.reserve(k);
  if (k == 0) return out;

  if (k * 4 <= n) {
    // Floyd's algorithm: O(k) expected time, no O(n) scratch.
    std::unordered_set<std::uint64_t> chosen;
    chosen.reserve(k * 2);
    for (std::uint64_t j = n - k; j < n; ++j) {
      const std::uint64_t t = next_below(j + 1);
      const std::uint64_t pick = chosen.insert(t).second ? t : j;
      if (pick != t) chosen.insert(pick);
      out.push_back(pick);
    }
  } else {
    // Partial Fisher-Yates over an explicit index array.
    std::vector<std::uint64_t> idx(n);
    for (std::uint64_t i = 0; i < n; ++i) idx[i] = i;
    for (std::uint64_t i = 0; i < k; ++i) {
      const std::uint64_t j = i + next_below(n - i);
      std::swap(idx[i], idx[j]);
      out.push_back(idx[i]);
    }
  }
  return out;
}

}  // namespace bds::util
