// Small numerically-stable statistics helpers used by the benchmark harness
// (Welford running moments, percentile summaries, confidence half-widths).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace bds::util {

// Single-pass running mean/variance (Welford). Merging two accumulators is
// supported so per-thread stats can be combined after a parallel section.
class RunningStat {
 public:
  void add(double x) noexcept;
  void merge(const RunningStat& other) noexcept;

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  // Normal-approximation 95% confidence half-width of the mean.
  double ci95_halfwidth() const noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Order statistic with linear interpolation; q in [0, 1].
// Precondition: values non-empty. Copies and sorts internally.
double percentile(std::span<const double> values, double q);

// Convenience aggregates over a sample vector.
double mean_of(std::span<const double> values);
double stddev_of(std::span<const double> values);

}  // namespace bds::util
