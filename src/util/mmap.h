// Read-only memory-mapped files for the out-of-core dataset path. A
// MappedFile wraps mmap(2) + madvise(2) behind RAII: open() maps the whole
// file read-only and the destructor unmaps it, so dataset objects can hold
// the mapping alive through a shared_ptr while their CSR pointers alias the
// mapped bytes directly (zero parse, zero copy — load is page-table work;
// the kernel pages data in on first touch and evicts it under pressure,
// which is what keeps a worker's resident set proportional to the shard it
// actually reads instead of the corpus).
//
// On hosts without mmap the open() falls back to reading the file into an
// anonymous buffer — same interface, heap-resident semantics.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

namespace bds::util {

// Access-pattern hint forwarded to madvise (best effort, never fails the
// open). Datasets default to kRandom: oracle gains jump between CSR rows.
enum class MapAdvice { kNormal, kRandom, kSequential, kWillNeed };

class MappedFile {
 public:
  // Maps `path` read-only. Throws std::runtime_error naming the path when
  // the file cannot be opened, stat'ed, or mapped. An empty file maps to
  // data() == nullptr, size() == 0.
  static std::shared_ptr<const MappedFile> open(
      const std::string& path, MapAdvice advice = MapAdvice::kRandom);

  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const std::byte* data() const noexcept {
    return static_cast<const std::byte*>(base_);
  }
  std::size_t size() const noexcept { return size_; }
  const std::string& path() const noexcept { return path_; }

  // Re-advises the whole mapping (e.g. kSequential before a full scan).
  void advise(MapAdvice advice) const noexcept;

  // Drops the resident pages of this mapping (MADV_DONTNEED), so the next
  // access faults them back in — the cold-cache lever the load benchmarks
  // use. Best effort; a no-op on the fallback path.
  void drop_resident_pages() const noexcept;

 private:
  MappedFile(void* base, std::size_t size, bool owned_heap, std::string path)
      : base_(base), size_(size), owned_heap_(owned_heap),
        path_(std::move(path)) {}

  void* base_;
  std::size_t size_;
  bool owned_heap_;  // fallback path: base_ is new[]'d, not mapped
  std::string path_;
};

// Best-effort eviction of `path`'s pages from the OS page cache
// (posix_fadvise DONTNEED), so a subsequent load measures cold-cache I/O.
void evict_file_cache(const std::string& path) noexcept;

}  // namespace bds::util
