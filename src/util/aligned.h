// Minimal aligned allocator so SIMD kernels can rely on aligned loads.
// PointSet stores its padded row matrix in an AlignedVector<float>; the
// kernel layer's conversion scratch uses AlignedVector<double>.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace bds::util {

// Base alignment every SIMD kernel in util/kernels.h may assume for padded
// row storage (32 bytes = one AVX register).
inline constexpr std::size_t kSimdAlign = 32;

template <typename T, std::size_t Alignment = kSimdAlign>
struct AlignedAllocator {
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "Alignment must not weaken the type's natural alignment");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t(Alignment));
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return false;
  }
};

template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T, kSimdAlign>>;

}  // namespace bds::util
