#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bds::util {

void RunningStat::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * (n2 / n);
  m2_ += other.m2_ + delta * delta * (n1 * n2 / n);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStat::ci95_halfwidth() const noexcept {
  if (count_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

double percentile(std::span<const double> values, double q) {
  assert(!values.empty());
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean_of(std::span<const double> values) {
  RunningStat s;
  for (double v : values) s.add(v);
  return s.mean();
}

double stddev_of(std::span<const double> values) {
  RunningStat s;
  for (double v : values) s.add(v);
  return s.stddev();
}

}  // namespace bds::util
