// Deterministic, portable pseudo-random number generation.
//
// Experiment reproducibility requires bit-identical random streams across
// platforms and standard-library versions, so we hand-roll the generators
// (SplitMix64 for seeding, xoshiro256** as the workhorse) instead of using
// <random> engines/distributions whose outputs are implementation-defined.
//
// Rng is cheap to copy and to split: `split()` derives an independent child
// stream, which is how the distributed simulator hands every logical machine
// its own deterministic stream regardless of thread scheduling.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace bds::util {

// SplitMix64 step: used both as a standalone mixer and to expand a 64-bit
// seed into the 256-bit xoshiro state. Reference: Steele, Lea & Flood,
// "Fast splittable pseudorandom number generators" (OOPSLA'14).
std::uint64_t splitmix64_next(std::uint64_t& state) noexcept;

// xoshiro256** 1.0 (Blackman & Vigna), a small, fast, high-quality PRNG.
class Rng {
 public:
  using result_type = std::uint64_t;

  // Seeds the four state words by iterating SplitMix64 on `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  // Next raw 64-bit draw.
  std::uint64_t next_u64() noexcept;
  result_type operator()() noexcept { return next_u64(); }

  // Unbiased uniform integer in [0, bound). Precondition: bound > 0.
  // Uses Lemire's multiply-shift rejection method.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  // Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept;

  // Uniform double in [0, 1) with 53 bits of precision.
  double next_double() noexcept;

  // Uniform double in [lo, hi).
  double next_double(double lo, double hi) noexcept;

  // Bernoulli trial with success probability p (clamped to [0, 1]).
  bool next_bool(double p) noexcept;

  // Derives an independent child generator. The parent advances, so
  // successive splits yield distinct streams.
  Rng split() noexcept;

  // Fisher-Yates shuffle of `items`.
  template <typename T>
  void shuffle(std::span<T> items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  // k distinct values sampled uniformly from [0, n) in selection order.
  // Floyd's algorithm when k << n, partial Fisher-Yates otherwise.
  // Precondition: k <= n.
  std::vector<std::uint64_t> sample_without_replacement(std::uint64_t n,
                                                        std::uint64_t k);

  // Exposes raw state for tests of stream independence and for
  // checkpointing (dist/engine.h serializes the partition RNG's position).
  std::array<std::uint64_t, 4> state() const noexcept { return state_; }

  // Rebuilds a generator at an exact stream position captured via state().
  // Precondition: `state` came from a valid Rng (never all-zero).
  static Rng from_state(const std::array<std::uint64_t, 4>& state) noexcept;

 private:
  std::array<std::uint64_t, 4> state_;
};

// Convenience: one SplitMix64 mix of `x` (stateless hash-style use).
std::uint64_t mix64(std::uint64_t x) noexcept;

}  // namespace bds::util
